(* Sensor-field scenario: a clustered deployment (sensors dropped around
   collection points), where topology control matters most — dense
   clusters waste enormous power at max range.

   Compares CBTC against the proximity-graph baselines on degree, radius,
   transmission power, energy per broadcast, and route quality.

   Run with: dune exec examples/sensor_field.exe *)

let () =
  let field = Workload.Placement.field ~width:2000. ~height:2000. in
  let prng = Prng.create ~seed:2001 in
  let positions =
    Workload.Placement.clustered prng ~field ~clusters:6 ~n:150 ~sigma:120.
  in
  let pathloss = Radio.Pathloss.make ~max_range:600. () in
  let energy = Radio.Energy.make ~rx_overhead:2000. pathloss in
  let gr = Baselines.Proximity.max_power pathloss positions in

  Fmt.pr "clustered sensor field: %d nodes, 6 clusters, R = 600, GR has %d \
          edges in %d component(s)@.@."
    (Array.length positions)
    (Graphkit.Ugraph.nb_edges gr)
    (Metrics.Connectivity.nb_components gr);

  let table =
    Metrics.Table.create
      ~columns:
        [ "topology"; "deg"; "radius"; "avg tx power"; "power stretch";
          "hop stretch"; "preserves" ]
  in
  let add name graph radius =
    let ps = Metrics.Stretch.power_stretch energy positions ~reference:gr graph in
    let hs = Metrics.Stretch.hop_stretch ~reference:gr graph in
    Metrics.Table.add_row table
      [
        name;
        Fmt.str "%.1f" (Metrics.Topo_metrics.avg_degree graph);
        Fmt.str "%.0f" (Metrics.Topo_metrics.avg_radius radius);
        Fmt.str "%.2g" (Metrics.Topo_metrics.avg_power pathloss radius);
        Fmt.str "%.2f" ps.Metrics.Stretch.max_stretch;
        Fmt.str "%.1f" hs.Metrics.Stretch.max_stretch;
        string_of_bool (Metrics.Connectivity.preserves ~reference:gr graph);
      ]
  in

  add "max power" gr
    (Baselines.Proximity.radius_of ~full_power:true pathloss positions gr);

  let run_cbtc name config plan =
    ignore config;
    let r = Cbtc.Pipeline.run_oracle pathloss positions plan in
    add name r.Cbtc.Pipeline.graph r.Cbtc.Pipeline.radius
  in
  let c56 = Cbtc.Config.make Geom.Angle.five_pi_six in
  let c23 = Cbtc.Config.make Geom.Angle.two_pi_three in
  run_cbtc "CBTC basic 5pi/6" c56 (Cbtc.Pipeline.basic c56);
  run_cbtc "CBTC all ops 5pi/6" c56 (Cbtc.Pipeline.all_ops c56);
  run_cbtc "CBTC all ops 2pi/3" c23 (Cbtc.Pipeline.all_ops c23);

  let add_baseline name graph =
    add name graph (Baselines.Proximity.radius_of pathloss positions graph)
  in
  add_baseline "RNG" (Baselines.Proximity.rng pathloss positions);
  add_baseline "Gabriel" (Baselines.Proximity.gabriel pathloss positions);
  add_baseline "Euclidean MST" (Baselines.Proximity.euclidean_mst pathloss positions);
  add_baseline "3-NN (closure)" (Baselines.Proximity.knn pathloss positions ~k:3);

  Fmt.pr "%a@." Metrics.Table.pp table;

  (* Energy of one network-wide flood: each node broadcasts once at its
     topology's power — the steady-state cost the paper's intro targets. *)
  let flood radius =
    Array.fold_left
      (fun acc r ->
        acc +. if r = 0. then 0. else Radio.Pathloss.power_for_distance pathloss r)
      0. radius
  in
  let cbtc =
    Cbtc.Pipeline.run_oracle pathloss positions
      (Cbtc.Pipeline.all_ops c56)
  in
  let full = flood (Baselines.Proximity.radius_of ~full_power:true pathloss positions gr) in
  let controlled = flood cbtc.Cbtc.Pipeline.radius in
  Fmt.pr "energy for one flood: max power %.3g, CBTC all-ops %.3g (%.0fx \
          saving)@."
    full controlled (full /. controlled);

  (* Note the k-NN cautionary tale: fixed-degree neighbor selection can
     disconnect clustered fields, which is exactly why CBTC's
     cone-coverage criterion exists. *)
  let knn = Baselines.Proximity.knn pathloss positions ~k:3 in
  if not (Metrics.Connectivity.preserves ~reference:gr knn) then
    Fmt.pr "@.note: 3-NN broke connectivity on this deployment — degree-based \
            pruning gives no guarantee, cone coverage does.@."
