(* Walkthrough of the paper's two hand constructions:

   - Example 2.1 (Figure 2): for 2pi/3 < alpha <= 5pi/6, the discovered-
     neighbor relation N_alpha can be asymmetric, so G_alpha must take
     the symmetric closure.
   - Theorem 2.4 (Figure 5): for alpha = 5pi/6 + eps, CBTC can disconnect
     a connected network — the 5pi/6 threshold is tight.

   Run with: dune exec examples/counterexample.exe *)

let pr_dist positions names i j =
  Fmt.pr "    d(%s,%s) = %.1f@." names.(i) names.(j)
    (Geom.Vec2.dist positions.(i) positions.(j))

let () =
  Fmt.pr "--- Example 2.1: N_alpha asymmetry (alpha = 5pi/6) ---@.";
  let alpha = Geom.Angle.five_pi_six in
  let ex = Cbtc.Constructions.example_2_1 ~alpha () in
  let positions = ex.Cbtc.Constructions.positions in
  let names = [| "u0"; "u1"; "u2"; "u3"; "v" |] in
  Fmt.pr "  construction (R = %g, eps = %.4f):@." ex.Cbtc.Constructions.max_range
    ex.Cbtc.Constructions.epsilon;
  Array.iteri (fun i p -> Fmt.pr "    %s at %a@." names.(i) Geom.Vec2.pp p) positions;
  pr_dist positions names 0 4;
  pr_dist positions names 0 1;
  pr_dist positions names 1 4;

  let pathloss = Radio.Pathloss.make ~max_range:ex.Cbtc.Constructions.max_range () in
  let d = Cbtc.Geo.run (Cbtc.Config.make alpha) pathloss positions in
  let na = Cbtc.Discovery.nalpha d in
  Fmt.pr "  CBTC(5pi/6) outcome:@.";
  Array.iteri
    (fun u name ->
      Fmt.pr "    N(%s) = {%s}%s@." name
        (String.concat ", " (List.map (fun v -> names.(v)) (Graphkit.Digraph.succ na u)))
        (if d.Cbtc.Discovery.boundary.(u) then "  [boundary node]" else ""))
    names;
  Fmt.pr "  v discovered u0 but u0 stopped growing before reaching v:@.";
  Fmt.pr "    (v,u0) in N_alpha = %b, (u0,v) in N_alpha = %b@."
    (Graphkit.Digraph.mem_edge na 4 0)
    (Graphkit.Digraph.mem_edge na 0 4);
  Fmt.pr "  the symmetric closure keeps the network connected: %b@.@."
    (Metrics.Connectivity.preserves
       ~reference:(Cbtc.Geo.max_power_graph pathloss positions)
       (Cbtc.Discovery.closure d));

  Fmt.pr "--- Theorem 2.4: 5pi/6 is tight ---@.";
  let epsilon = 0.1 in
  let th = Cbtc.Constructions.theorem_2_4 ~epsilon () in
  let positions = th.Cbtc.Constructions.positions in
  let names = [| "u0"; "u1"; "u2"; "u3"; "v0"; "v1"; "v2"; "v3" |] in
  Fmt.pr "  alpha = 5pi/6 + %.2f; two four-node clusters whose only GR link \
          is (u0, v0):@."
    epsilon;
  pr_dist positions names 0 4;
  pr_dist positions names 0 3;
  pr_dist positions names 3 5;

  let pathloss = Radio.Pathloss.make ~max_range:th.Cbtc.Constructions.max_range () in
  let gr = Cbtc.Geo.max_power_graph pathloss positions in
  let run a =
    Cbtc.Discovery.closure (Cbtc.Geo.run (Cbtc.Config.make a) pathloss positions)
  in
  let above = run th.Cbtc.Constructions.alpha in
  let at = run Geom.Angle.five_pi_six in
  Fmt.pr "  GR connected: %b@." (Graphkit.Traversal.is_connected gr);
  Fmt.pr "  G(5pi/6 + eps) connected: %b  <- u0's cones close before power \
          reaches v0@."
    (Graphkit.Traversal.is_connected above);
  Fmt.pr "  G(5pi/6) on the same nodes connected: %b  <- the threshold itself \
          is safe (Theorem 2.1)@."
    (Graphkit.Traversal.is_connected at);

  Fmt.pr "@.  ASCII rendering of the disconnected G(5pi/6 + eps):@.%s@."
    (Viz.Topoviz.to_ascii ~cols:64 ~rows:20 ~field_width:1000.
       ~field_height:1000.
       (Array.map
          (fun (p : Geom.Vec2.t) ->
            Geom.Vec2.make (p.Geom.Vec2.x +. 250.) (p.Geom.Vec2.y +. 500.))
          positions)
       above)
