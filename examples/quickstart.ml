(* Quickstart: build a random network, run CBTC(5pi/6) with all
   optimizations, and print what topology control bought us.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* The paper's evaluation setup: 100 nodes uniform in 1500x1500,
     maximum transmission radius 500, quadratic path loss. *)
  let scenario = Workload.Scenario.paper ~seed:7 in
  let pathloss = Workload.Scenario.pathloss scenario in
  let positions = Workload.Scenario.positions scenario in

  (* No topology control: every node at maximum power. *)
  let gr = Baselines.Proximity.max_power pathloss positions in

  (* CBTC(5pi/6) with shrink-back and pairwise edge removal. *)
  let config = Cbtc.Config.make Geom.Angle.five_pi_six in
  let result =
    Cbtc.Pipeline.run_oracle pathloss positions (Cbtc.Pipeline.all_ops config)
  in

  Fmt.pr "max power:  avg degree %.1f, radius %g@."
    (Metrics.Topo_metrics.avg_degree gr)
    (Radio.Pathloss.max_range pathloss);
  Fmt.pr "CBTC:       avg degree %.1f, avg radius %.1f@."
    (Cbtc.Pipeline.avg_degree result)
    (Cbtc.Pipeline.avg_radius result);
  Fmt.pr "connectivity preserved: %b@."
    (Metrics.Connectivity.preserves ~reference:gr result.Cbtc.Pipeline.graph);

  (* The same outcome computed by the actual distributed protocol, with
     real message passing over a simulated radio. *)
  let dist_config =
    Cbtc.Config.make ~growth:(Cbtc.Config.Double 100.) Geom.Angle.five_pi_six
  in
  let outcome = Cbtc.Distributed.run dist_config pathloss positions in
  Fmt.pr "distributed protocol: %d transmissions, %d power rounds max, \
          connectivity preserved: %b@."
    outcome.Cbtc.Distributed.stats.Cbtc.Distributed.transmissions
    outcome.Cbtc.Distributed.stats.Cbtc.Distributed.max_rounds
    (Metrics.Connectivity.preserves ~reference:gr
       (Cbtc.Discovery.closure outcome.Cbtc.Distributed.discovery))
