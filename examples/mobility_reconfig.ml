(* Mobility and reconfiguration: nodes move under random waypoint while
   the Section 4 machinery (NDP beacons, join/leave/aChange, local
   re-growth) maintains the topology; two nodes also crash mid-run.
   After motion stops, the maintained topology must preserve the
   connectivity of the *new* max-power graph.

   Run with: dune exec examples/mobility_reconfig.exe *)

let () =
  let scenario = Workload.Scenario.make ~n:60 ~seed:31 () in
  let pathloss = Workload.Scenario.pathloss scenario in
  let positions = Workload.Scenario.positions scenario in
  let config =
    Cbtc.Config.make ~growth:(Cbtc.Config.Double 100.) Geom.Angle.five_pi_six
  in
  let rc = Cbtc.Reconfig.create config pathloss positions in

  let field = Workload.Placement.field ~width:1500. ~height:1500. in
  let params = { Workload.Mobility.speed_lo = 10.; speed_hi = 40.; pause = 5. } in
  let mob =
    Workload.Mobility.create (Prng.create ~seed:99) ~field ~params positions
  in

  let count_events kind =
    List.length
      (List.filter (fun e -> e.Cbtc.Reconfig.kind = kind) (Cbtc.Reconfig.events rc))
  in
  let report label =
    let topo = Cbtc.Reconfig.topology rc in
    Fmt.pr "%-22s t=%7.0f  edges=%3d  joins=%3d leaves=%3d aChanges=%3d@."
      label (Cbtc.Reconfig.now rc)
      (Graphkit.Ugraph.nb_edges topo)
      (count_events Cbtc.Reconfig.Join)
      (count_events Cbtc.Reconfig.Leave)
      (count_events Cbtc.Reconfig.Achange)
  in

  report "after initial CBTC";

  (* 10 epochs of motion: move for dt, mirror positions into the radio
     network, let the protocol react. *)
  let dt = 30. in
  for epoch = 1 to 10 do
    Workload.Mobility.step mob ~dt;
    Array.iteri
      (fun u p -> Cbtc.Reconfig.set_position rc u p)
      (Workload.Mobility.positions mob);
    if epoch = 4 then begin
      Cbtc.Reconfig.crash rc 0;
      Cbtc.Reconfig.crash rc 1;
      Fmt.pr "  !! nodes 0 and 1 crashed@."
    end;
    Cbtc.Reconfig.run_for rc ~duration:dt;
    if epoch mod 2 = 0 then report (Fmt.str "epoch %d" epoch)
  done;

  (* Motion stops; let the protocol settle, then audit. *)
  Workload.Mobility.freeze mob;
  Cbtc.Reconfig.run_for rc ~duration:400.;
  report "settled";

  let final_positions = Cbtc.Reconfig.positions rc in
  let n = Array.length final_positions in
  let live_gr = Graphkit.Ugraph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if
        Cbtc.Reconfig.alive rc u && Cbtc.Reconfig.alive rc v
        && Radio.Pathloss.in_range pathloss
             ~dist:(Geom.Vec2.dist final_positions.(u) final_positions.(v))
      then Graphkit.Ugraph.add_edge live_gr u v
    done
  done;
  let topo = Cbtc.Reconfig.topology rc in
  Fmt.pr "@.final audit: components GR=%d topology=%d, connectivity of the \
          new GR preserved: %b, quiescent: %b@."
    (Metrics.Connectivity.nb_components live_gr)
    (Metrics.Connectivity.nb_components topo)
    (Metrics.Connectivity.preserves ~reference:live_gr topo)
    (Cbtc.Reconfig.quiescent rc ~for_:100.)
