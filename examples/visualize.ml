(* Visualization: renders a random network under the paper's eight
   Figure 6 configurations to SVG files, and prints a terminal ASCII
   rendering of the most and least aggressive ones.

   Run with: dune exec examples/visualize.exe [-- output-dir]
   (default output directory: examples_out) *)

let () =
  let out_dir =
    match Array.to_list Sys.argv with _ :: dir :: _ -> dir | _ -> "examples_out"
  in
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;

  let scenario = Workload.Scenario.paper ~seed:2026 in
  let pathloss = Workload.Scenario.pathloss scenario in
  let positions = Workload.Scenario.positions scenario in
  let c56 = Cbtc.Config.make Geom.Angle.five_pi_six in
  let c23 = Cbtc.Config.make Geom.Angle.two_pi_three in
  let oracle plan =
    (Cbtc.Pipeline.run_oracle pathloss positions plan).Cbtc.Pipeline.graph
  in
  let panels =
    [
      ("a-no-control", "no topology control",
       Baselines.Proximity.max_power pathloss positions);
      ("b-basic-2pi3", "basic, a=2pi/3", oracle (Cbtc.Pipeline.basic c23));
      ("c-basic-5pi6", "basic, a=5pi/6", oracle (Cbtc.Pipeline.basic c56));
      ("d-shrink-2pi3", "shrink-back, a=2pi/3", oracle (Cbtc.Pipeline.with_shrink c23));
      ("e-shrink-5pi6", "shrink-back, a=5pi/6", oracle (Cbtc.Pipeline.with_shrink c56));
      ("f-asym-2pi3", "shrink + asym removal, a=2pi/3",
       oracle (Cbtc.Pipeline.shrink_asym c23));
      ("g-all-5pi6", "all optimizations, a=5pi/6", oracle (Cbtc.Pipeline.all_ops c56));
      ("h-all-2pi3", "all optimizations, a=2pi/3", oracle (Cbtc.Pipeline.all_ops c23));
    ]
  in
  List.iter
    (fun (tag, title, graph) ->
      let path = Filename.concat out_dir (tag ^ ".svg") in
      let style = Viz.Topoviz.style ~title ~show_labels:true ~node_radius:2.5 () in
      Viz.Topoviz.write_svg ~style path ~field_width:1500. ~field_height:1500.
        positions graph;
      Fmt.pr "wrote %-28s (%d edges)@." path (Graphkit.Ugraph.nb_edges graph))
    panels;

  let ascii graph =
    Viz.Topoviz.to_ascii ~cols:70 ~rows:24 ~field_width:1500. ~field_height:1500.
      positions graph
  in
  let _, _, full = List.nth panels 0 in
  let _, _, sparse = List.nth panels 6 in
  Fmt.pr "@.no topology control (%d edges):@.%s@."
    (Graphkit.Ugraph.nb_edges full) (ascii full);
  Fmt.pr "all optimizations at 5pi/6 (%d edges):@.%s@."
    (Graphkit.Ugraph.nb_edges sparse) (ascii sparse)
