(* Message-level walkthrough of the distributed protocol on a tiny
   network, tracing every Hello/Ack through the simulated radio — useful
   for understanding (and demonstrating) the algorithm's mechanics.

   Run with: dune exec examples/protocol_trace.exe *)

type msg = Hello | Ack

let () =
  (* A five-node network: a center, two near nodes, one far node, one out
     of range.  The center closes its cones with the near ring. *)
  let positions =
    [| Geom.Vec2.make 500. 500.; Geom.Vec2.make 560. 500.;
       Geom.Vec2.make 500. 570.; Geom.Vec2.make 380. 460.;
       Geom.Vec2.make 900. 900. |]
  in
  let pathloss = Radio.Pathloss.make ~max_range:300. () in
  let sim = Dsim.Sim.create () in
  let trace = Dsim.Trace.create () in
  let net =
    Airnet.Net.create ~sim ~pathloss ~channel:Dsim.Channel.reliable
      ~prng:(Prng.create ~seed:1) ~positions ()
  in
  (* Hand-rolled two-round protocol so every message is visible: each
     node broadcasts Hello at two growing powers; receivers Ack. *)
  let alpha = Geom.Angle.five_pi_six in
  let dirs = Array.make 5 [] in
  Array.iteri
    (fun u _ ->
      Airnet.Net.set_handler net u (fun r ->
          match r.Airnet.Net.payload with
          | Hello ->
              Dsim.Trace.record trace ~time:(Dsim.Sim.now sim)
                "node %d hears Hello from %d (rx power %.3f)" r.Airnet.Net.dst
                r.Airnet.Net.src r.Airnet.Net.rx_power;
              let reply_power =
                Radio.Pathloss.estimate_link_power pathloss
                  ~tx_power:r.Airnet.Net.tx_power ~rx_power:r.Airnet.Net.rx_power
              in
              ignore
                (Airnet.Net.send net ~src:r.Airnet.Net.dst ~dst:r.Airnet.Net.src
                   ~power:reply_power Ack)
          | Ack ->
              Dsim.Trace.record trace ~time:(Dsim.Sim.now sim)
                "node %d got Ack from %d (direction %.0f deg)" r.Airnet.Net.dst
                r.Airnet.Net.src
                (Geom.Angle.to_degrees r.Airnet.Net.rx_dir);
              dirs.(r.Airnet.Net.dst) <- r.Airnet.Net.rx_dir :: dirs.(r.Airnet.Net.dst)))
    positions;
  List.iteri
    (fun round power ->
      Dsim.Trace.record trace ~time:(Dsim.Sim.now sim)
        "--- round %d: everyone broadcasts Hello at power %.0f ---" (round + 1)
        power;
      Array.iteri
        (fun u _ ->
          let reached = Airnet.Net.bcast net ~src:u ~power Hello in
          Dsim.Trace.record trace ~time:(Dsim.Sim.now sim)
            "node %d bcast Hello p=%.0f (reaches %d nodes)" u power reached)
        positions;
      ignore (Dsim.Sim.run sim))
    [ 10_000.; 90_000. ];
  Fmt.pr "%a@." Dsim.Trace.pp trace;
  Array.iteri
    (fun u ds ->
      Fmt.pr "node %d: %d directions heard, %s@." u (List.length ds)
        (if Geom.Dirset.has_gap ~alpha ds then
           "still has a 5pi/6-gap (would keep growing)"
         else "cones covered (would stop here)"))
    dirs;
  Fmt.pr "@.full protocol on the same network:@.";
  let config = Cbtc.Config.make ~growth:(Cbtc.Config.Double 10_000.) alpha in
  let outcome = Cbtc.Distributed.run config pathloss positions in
  Array.iteri
    (fun u (ns : Cbtc.Neighbor.t list) ->
      Fmt.pr "  node %d: power %.0f%s, neighbors {%s}@." u
        outcome.Cbtc.Distributed.discovery.power.(u)
        (if outcome.Cbtc.Distributed.discovery.boundary.(u) then " (boundary)"
         else "")
        (String.concat ", "
           (List.map
              (fun (n : Cbtc.Neighbor.t) -> string_of_int n.Cbtc.Neighbor.id)
              ns)))
    outcome.Cbtc.Distributed.discovery.neighbors
