(* Network lifetime under data gathering: the paper's motivating claim
   ("network protocols that minimize energy consumption are key to
   wireless sensor networks") made quantitative.

   Every round each sensor reports one packet to a sink; transmission
   costs depend on the node's configured power (its topology radius) and
   bystanders inside the transmission disk pay overhearing costs.  We
   compare no-topology-control against CBTC with all optimizations.

   Run with: dune exec examples/lifetime_sim.exe *)

let () =
  let scenario = Workload.Scenario.make ~n:80 ~seed:61 () in
  let pathloss = Workload.Scenario.pathloss scenario in
  let positions = Workload.Scenario.positions scenario in
  (* sink: node closest to the field center *)
  let center = Geom.Vec2.make 750. 750. in
  let sink = ref 0 in
  Array.iteri
    (fun u p ->
      if Geom.Vec2.dist p center < Geom.Vec2.dist positions.(!sink) center then
        sink := u)
    positions;
  Fmt.pr "80 sensors, sink = node %d (center-most); one report per node per \
          round@.@."
    !sink;

  let params =
    { Lifetime.Gather.default_params with max_rounds = 4000 }
  in
  let table =
    Metrics.Table.create
      ~columns:
        [ "topology"; "first death"; "half dead"; "sink partition";
          "packets delivered"; "deaths" ]
  in
  let show = function None -> ">end" | Some r -> string_of_int r in
  let run name topology =
    let o = Lifetime.Gather.run ~params pathloss positions ~sink:!sink ~topology in
    Metrics.Table.add_row table
      [
        name;
        show o.Lifetime.Gather.first_death;
        show o.Lifetime.Gather.half_dead;
        show o.Lifetime.Gather.sink_partition;
        string_of_int o.Lifetime.Gather.packets_delivered;
        string_of_int (List.length o.Lifetime.Gather.deaths);
      ];
    o
  in
  let base = run "max power" (Lifetime.Gather.max_power_builder pathloss) in
  let c56 = Cbtc.Config.make Geom.Angle.five_pi_six in
  let c23 = Cbtc.Config.make Geom.Angle.two_pi_three in
  let cbtc =
    run "CBTC all ops 5pi/6"
      (Lifetime.Gather.cbtc_builder (Cbtc.Pipeline.all_ops c56) pathloss)
  in
  ignore
    (run "CBTC all ops 2pi/3"
       (Lifetime.Gather.cbtc_builder (Cbtc.Pipeline.all_ops c23) pathloss));
  ignore
    (run "CBTC basic 5pi/6"
       (Lifetime.Gather.cbtc_builder (Cbtc.Pipeline.basic c56) pathloss));
  Fmt.pr "%a@." Metrics.Table.pp table;

  let ratio a b =
    match (a, b) with
    | Some x, Some y -> Fmt.str "%.1fx" (Stdlib.float_of_int x /. Stdlib.float_of_int y)
    | _ -> "n/a"
  in
  Fmt.pr "CBTC extends time-to-first-death by %s and delivers %.1fx the \
          packets before the sink is cut off.@."
    (ratio cbtc.Lifetime.Gather.first_death base.Lifetime.Gather.first_death)
    (Stdlib.float_of_int cbtc.Lifetime.Gather.packets_delivered
    /. Stdlib.float_of_int base.Lifetime.Gather.packets_delivered);

  (* Interference view of the same story. *)
  let n = Array.length positions in
  let full =
    Metrics.Interference.coverage positions ~radius:(Array.make n 500.)
  in
  let r = Cbtc.Pipeline.run_oracle pathloss positions (Cbtc.Pipeline.all_ops c56) in
  let thin =
    Metrics.Interference.coverage positions ~radius:r.Cbtc.Pipeline.radius
  in
  Fmt.pr "@.interference (nodes disturbed per transmission): max power %.1f \
          avg -> CBTC %.1f avg (%.0fx quieter)@."
    full.Metrics.Interference.avg_coverage thin.Metrics.Interference.avg_coverage
    (full.Metrics.Interference.avg_coverage
    /. Float.max 0.01 thin.Metrics.Interference.avg_coverage)
