(* The paper's 2pi/3-vs-5pi/6 trade-off (Sections 3.2 and 5), node by
   node:

   - the basic algorithm converges at lower power for alpha = 5pi/6
     (p_{u,5pi/6} <= p_{u,2pi/3}: a bigger cone is easier to cover);
   - but the radius u must actually serve can be larger at 5pi/6,
     because the symmetric closure adds incoming edges that asymmetric
     removal (only sound at 2pi/3) would have deleted;
   - after all optimizations the two are nearly tied, with second-order
     advantages to 5pi/6 (fewer growth rounds, so cheaper to construct
     and reconfigure).

   Run with: dune exec examples/alpha_tradeoff.exe *)

let () =
  let scenario = Workload.Scenario.paper ~seed:77 in
  let pathloss = Workload.Scenario.pathloss scenario in
  let positions = Workload.Scenario.positions scenario in
  let c56 = Cbtc.Config.make Geom.Angle.five_pi_six in
  let c23 = Cbtc.Config.make Geom.Angle.two_pi_three in
  let d56 = Cbtc.Geo.run c56 pathloss positions in
  let d23 = Cbtc.Geo.run c23 pathloss positions in
  let n = Array.length positions in

  (* claim 1: per-node convergence power is monotone in alpha *)
  let holds = ref 0 in
  for u = 0 to n - 1 do
    if d56.Cbtc.Discovery.power.(u) <= d23.Cbtc.Discovery.power.(u) +. 1e-9
    then incr holds
  done;
  let avg p = Array.fold_left ( +. ) 0. p /. Stdlib.float_of_int n in
  Fmt.pr "p(u, 5pi/6) <= p(u, 2pi/3) for %d/%d nodes (avg %.0f vs %.0f)@."
    !holds n
    (avg d56.Cbtc.Discovery.power)
    (avg d23.Cbtc.Discovery.power);

  (* claim 2: after the closure, the larger alpha can still demand a
     larger serving radius — and asymmetric removal at 2pi/3 undoes it *)
  let serve d = Cbtc.Discovery.radius_in d (Cbtc.Discovery.closure d) in
  let core23 = Cbtc.Discovery.radius_in d23 (Cbtc.Discovery.core d23) in
  Fmt.pr
    "serving radius (basic closure): 5pi/6 avg %.1f vs 2pi/3 avg %.1f; \
     2pi/3 after asymmetric removal: %.1f@."
    (Metrics.Topo_metrics.avg_radius (serve d56))
    (Metrics.Topo_metrics.avg_radius (serve d23))
    (Metrics.Topo_metrics.avg_radius core23);

  (* claim 3: with all optimizations, a near tie *)
  let all56 = Cbtc.Pipeline.run_oracle pathloss positions (Cbtc.Pipeline.all_ops c56) in
  let all23 = Cbtc.Pipeline.run_oracle pathloss positions (Cbtc.Pipeline.all_ops c23) in
  Fmt.pr "all optimizations: degree %.1f vs %.1f, radius %.1f vs %.1f@."
    (Cbtc.Pipeline.avg_degree all56) (Cbtc.Pipeline.avg_degree all23)
    (Cbtc.Pipeline.avg_radius all56) (Cbtc.Pipeline.avg_radius all23);

  (* claim 4: the secondary advantage — fewer growth rounds at 5pi/6 *)
  let rounds config =
    let growth = Cbtc.Config.Double 100. in
    let o =
      Cbtc.Distributed.run
        (Cbtc.Config.make ~growth config.Cbtc.Config.alpha)
        pathloss positions
    in
    (o.Cbtc.Distributed.stats.Cbtc.Distributed.max_rounds,
     o.Cbtc.Distributed.stats.Cbtc.Distributed.transmissions)
  in
  let r56, tx56 = rounds c56 and r23, tx23 = rounds c23 in
  Fmt.pr
    "distributed construction: max rounds %d vs %d, transmissions %d vs %d \
     (5pi/6 terminates sooner, as Section 5 notes)@."
    r56 r23 tx56 tx23
