(* Tests for the geometry substrate: vectors, circular angles, arc
   coverage, the gap test, cones, and circle intersection. *)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?(eps = 1e-9) msg expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let pi = Geom.Angle.pi

let two_pi = Geom.Angle.two_pi

(* ---------- Vec2 ---------- *)

let test_vec2_arith () =
  let open Geom.Vec2 in
  let a = make 1. 2. and b = make 3. (-1.) in
  Alcotest.(check bool) "add" true (equal (add a b) (make 4. 1.));
  Alcotest.(check bool) "sub" true (equal (sub a b) (make (-2.) 3.));
  Alcotest.(check bool) "scale" true (equal (scale 2. a) (make 2. 4.));
  Alcotest.(check bool) "neg" true (equal (neg a) (make (-1.) (-2.)));
  check_float "dot" 1. (dot a b);
  check_float "cross" (-7.) (cross a b)

let test_vec2_norm_dist () =
  let open Geom.Vec2 in
  check_float "norm 3-4-5" 5. (norm (make 3. 4.));
  check_float "dist" 5. (dist (make 1. 1.) (make 4. 5.));
  check_float "dist2" 25. (dist2 (make 1. 1.) (make 4. 5.));
  check_float "norm zero" 0. (norm zero)

let test_vec2_angles () =
  let open Geom.Vec2 in
  check_float "east" 0. (angle_of (make 1. 0.));
  check_float "north" (pi /. 2.) (angle_of (make 0. 1.));
  check_float "west" pi (angle_of (make (-1.) 0.));
  check_float "south" (3. *. pi /. 2.) (angle_of (make 0. (-1.)));
  check_float "zero vector" 0. (angle_of zero);
  check_float "direction" (pi /. 4.)
    (direction ~from:(make 1. 1.) ~toward:(make 2. 2.))

let test_vec2_polar_rotate () =
  let open Geom.Vec2 in
  let p = of_polar ~r:2. ~theta:(pi /. 2.) in
  Alcotest.(check bool) "polar north" true (equal ~eps:1e-12 p (make 0. 2.));
  let q = rotate (pi /. 2.) (make 1. 0.) in
  Alcotest.(check bool) "rotate east->north" true (equal q (make 0. 1.));
  Alcotest.(check bool) "lerp midpoint" true
    (equal (midpoint (make 0. 0.) (make 2. 4.)) (make 1. 2.))

(* ---------- Angle ---------- *)

let test_angle_normalize () =
  check_float "in range" 1. (Geom.Angle.normalize 1.);
  check_float "wrap down" 1. (Geom.Angle.normalize (1. +. two_pi));
  check_float "wrap up" (two_pi -. 1.) (Geom.Angle.normalize (-1.));
  check_float "zero" 0. (Geom.Angle.normalize 0.);
  check_float "two_pi" 0. (Geom.Angle.normalize two_pi)

let test_angle_diff () =
  check_float "same" 0. (Geom.Angle.diff 1. 1.);
  check_float "quarter" (pi /. 2.) (Geom.Angle.diff 0. (pi /. 2.));
  check_float "across zero" 0.2 (Geom.Angle.diff 0.1 (two_pi -. 0.1));
  check_float "max is pi" pi (Geom.Angle.diff 0. pi);
  check_float "ccw" (3. *. pi /. 2.) (Geom.Angle.ccw_delta (pi /. 2.) 0.)

let test_angle_normalize_seam () =
  (* Regression: Float.rem of a tiny negative gives a tiny negative
     remainder, and adding two_pi to it rounds to two_pi itself
     (-1e-17 +. two_pi = two_pi); normalize must still land strictly
     inside [0, 2pi). *)
  List.iter
    (fun a ->
      let n = Geom.Angle.normalize a in
      if not (n >= 0. && n < two_pi) then
        Alcotest.failf "normalize %h escaped [0, 2pi): got %h" a n)
    [ -1e-17; -1e-300; -.Float.min_float; -.two_pi; -.two_pi -. 1e-17;
      4. *. two_pi; -0. ];
  (* atan2 yields directions in (-pi, pi]; both sides of the +/-pi seam
     must normalize to the same direction *)
  check_float "minus pi maps to pi" pi (Geom.Angle.normalize (-.pi));
  check_float "seam diff" 0.
    (Geom.Angle.diff (Geom.Angle.normalize (-.pi +. 1e-12)) (pi +. 1e-12))

let test_angle_constants () =
  check_float "5pi/6" (5. *. pi /. 6.) Geom.Angle.five_pi_six;
  check_float "2pi/3" (2. *. pi /. 3.) Geom.Angle.two_pi_three;
  check_float "pi/3" (pi /. 3.) Geom.Angle.pi_three;
  check_float "degrees" pi (Geom.Angle.of_degrees 180.);
  check_float "to degrees" 180. (Geom.Angle.to_degrees pi)

(* ---------- Dirset: the CBTC gap test ---------- *)

let test_gap_empty_singleton () =
  check_float "empty" two_pi (Geom.Dirset.max_gap []);
  check_float "singleton" two_pi (Geom.Dirset.max_gap [ 1.5 ]);
  Alcotest.(check bool) "empty has gap" true
    (Geom.Dirset.has_gap ~alpha:Geom.Angle.five_pi_six []);
  Alcotest.(check bool) "duplicate dirs collapse" true
    (Geom.Dirset.has_gap ~alpha:pi [ 1.; 1.; 1. ])

let test_gap_regular_polygons () =
  (* k evenly spaced directions leave gaps of exactly 2pi/k. *)
  List.iter
    (fun k ->
      let dirs =
        List.init k (fun i -> Stdlib.float_of_int i *. two_pi /. Stdlib.float_of_int k)
      in
      check_float
        (Fmt.str "max gap of regular %d-gon" k)
        (two_pi /. Stdlib.float_of_int k)
        (Geom.Dirset.max_gap dirs);
      (* gap == alpha exactly IS an alpha-gap: the open cone spanning it
         holds no neighbor, so growth must still trigger (Theorem 2.1) *)
      Alcotest.(check bool)
        (Fmt.str "%d-gon: gap at alpha = 2pi/%d" k k)
        true
        (Geom.Dirset.has_gap ~alpha:(two_pi /. Stdlib.float_of_int k) dirs);
      Alcotest.(check bool)
        (Fmt.str "%d-gon: no gap at slightly larger alpha" k)
        false
        (Geom.Dirset.has_gap
           ~alpha:((two_pi /. Stdlib.float_of_int k) +. 0.01)
           dirs);
      Alcotest.(check bool)
        (Fmt.str "%d-gon: gap at slightly smaller alpha" k)
        true
        (Geom.Dirset.has_gap
           ~alpha:((two_pi /. Stdlib.float_of_int k) -. 0.01)
           dirs))
    [ 3; 4; 5; 6; 8; 12 ]

let test_gap_wraparound () =
  (* Directions clustered near 0: the big gap crosses the 2pi seam. *)
  let dirs = [ 0.1; 0.2; two_pi -. 0.1 ] in
  check_float "wrap gap" (two_pi -. 0.3) (Geom.Dirset.max_gap dirs);
  match Geom.Dirset.widest_gap dirs with
  | Some (start, width) ->
      check_float "gap start" 0.2 start;
      check_float "gap width" (two_pi -. 0.3) width
  | None -> Alcotest.fail "expected a gap"

let test_gap_exact_pi_multiples () =
  (* Theorem 2.1 boundary at exact multiples of pi/6 and pi/3: k
     directions spaced exactly alpha apart leave gaps of exactly alpha,
     and a gap of exactly alpha must still count as an alpha-gap (the
     open cone spanning it contains no neighbor). *)
  List.iter
    (fun (label, alpha, k) ->
      let dirs = List.init k (fun i -> Stdlib.float_of_int i *. alpha) in
      Alcotest.(check bool)
        (Fmt.str "gap of exactly %s triggers growth" label)
        true
        (Geom.Dirset.has_gap ~alpha dirs);
      Alcotest.(check bool)
        (Fmt.str "circle not covered at exactly %s" label)
        false
        (Geom.Dirset.covers_circle ~alpha dirs))
    [ ("pi/6", pi /. 6., 12); ("pi/3", Geom.Angle.pi_three, 6);
      ("2pi/3", Geom.Angle.two_pi_three, 3) ]

let test_gap_pi_seam () =
  (* Directions an ulp on either side of the +/-pi seam collapse to
     (nearly) one direction, so the remaining gap is the whole circle. *)
  let d1 = Geom.Angle.normalize (pi -. 1e-12) in
  let d2 = Geom.Angle.normalize (-.pi +. 1e-12) in
  Alcotest.(check bool) "seam-straddling pair is nearly one direction" true
    (Geom.Dirset.max_gap [ d1; d2 ] > two_pi -. 1e-9);
  check_float "gap with a neighbor exactly at -pi" (3. *. pi /. 2.)
    (Geom.Dirset.max_gap [ pi /. 2.; Geom.Angle.normalize (-.pi) ])

let test_covers_circle_gap_duality () =
  let dirs = [ 0.; 2.; 4. ] in
  List.iter
    (fun alpha ->
      Alcotest.(check bool)
        (Fmt.str "duality at alpha=%g" alpha)
        (not (Geom.Dirset.has_gap ~alpha dirs))
        (Geom.Dirset.covers_circle ~alpha dirs))
    [ 1.0; 2.0; 2.28; 2.30; 3.0 ]

(* ---------- Arcset ---------- *)

let arc start len = { Geom.Arcset.start; len }

let test_arcset_basic () =
  let open Geom.Arcset in
  Alcotest.(check bool) "empty" true (is_empty empty);
  Alcotest.(check bool) "full" true (is_full full);
  let s = of_arcs [ arc 0. 1. ] in
  check_float "total" 1. (total_length s);
  Alcotest.(check bool) "contains inside" true (contains_angle s 0.5);
  Alcotest.(check bool) "contains endpoint" true (contains_angle s 1.);
  Alcotest.(check bool) "not outside" false (contains_angle s 1.5)

let test_arcset_merge_and_wrap () =
  let open Geom.Arcset in
  (* Two overlapping arcs merge; an arc crossing 2pi is split but still
     behaves circularly. *)
  let s = of_arcs [ arc 0. 1.; arc 0.5 1. ] in
  check_float "merged length" 1.5 (total_length s);
  Alcotest.(check int) "single arc" 1 (List.length (arcs s));
  let w = of_arcs [ arc (two_pi -. 0.5) 1. ] in
  Alcotest.(check bool) "wrap contains before seam" true
    (contains_angle w (two_pi -. 0.25));
  Alcotest.(check bool) "wrap contains after seam" true (contains_angle w 0.25);
  Alcotest.(check bool) "wrap excludes opposite" false (contains_angle w pi);
  check_float "wrap length" 1. (total_length w)

let test_arcset_full_detection () =
  let open Geom.Arcset in
  let s = of_arcs [ arc 0. 3.5; arc 3. 3.5 ] in
  Alcotest.(check bool) "covers circle" true (is_full s);
  let almost = of_arcs [ arc 0. 3.; arc 3.5 2. ] in
  Alcotest.(check bool) "not full with hole" false (is_full almost)

let test_arcset_contains_arc_subsume () =
  let open Geom.Arcset in
  let s = of_arcs [ arc 0. 2.; arc 4. 1.5 ] in
  Alcotest.(check bool) "sub-arc inside" true (contains_arc s (arc 0.5 1.));
  Alcotest.(check bool) "arc spanning hole" false (contains_arc s (arc 1. 3.5));
  Alcotest.(check bool) "subsumes self" true (subsumes s s);
  Alcotest.(check bool) "equal self" true (equal s s);
  Alcotest.(check bool) "full subsumes" true (subsumes full s);
  Alcotest.(check bool) "partial does not subsume full" false (subsumes s full)

let test_arcset_of_directions () =
  let open Geom.Arcset in
  (* cover_alpha of one direction is an arc of width alpha centered there *)
  let s = of_directions ~alpha:1. [ pi ] in
  Alcotest.(check bool) "center" true (contains_angle s pi);
  Alcotest.(check bool) "edge low" true (contains_angle s (pi -. 0.5));
  Alcotest.(check bool) "edge high" true (contains_angle s (pi +. 0.5));
  Alcotest.(check bool) "beyond" false (contains_angle s (pi +. 0.6));
  check_float "width" 1. (total_length s)

let test_arcset_invalid () =
  Alcotest.check_raises "negative arc" (Invalid_argument "Arcset: negative arc length")
    (fun () -> ignore (Geom.Arcset.of_arcs [ arc 0. (-1.) ]))

(* ---------- Cone ---------- *)

let test_cone_membership () =
  let apex = Geom.Vec2.zero in
  let toward = Geom.Vec2.make 1. 0. in
  let cone = Geom.Cone.make ~apex ~alpha:(pi /. 2.) ~toward in
  Alcotest.(check bool) "axis point" true (Geom.Cone.mem cone toward);
  Alcotest.(check bool) "inside upper" true
    (Geom.Cone.mem cone (Geom.Vec2.make 1. 0.3));
  Alcotest.(check bool) "boundary 45 deg" true
    (Geom.Cone.mem cone (Geom.Vec2.make 1. 1.));
  Alcotest.(check bool) "outside" false
    (Geom.Cone.mem cone (Geom.Vec2.make 0. 1.));
  Alcotest.(check bool) "apex not member" false (Geom.Cone.mem cone apex);
  Alcotest.(check bool) "behind" false
    (Geom.Cone.mem cone (Geom.Vec2.make (-1.) 0.))

let test_cone_invalid () =
  Alcotest.check_raises "degenerate axis"
    (Invalid_argument "Cone.make: axis point coincides with apex") (fun () ->
      ignore
        (Geom.Cone.make ~apex:Geom.Vec2.zero ~alpha:1. ~toward:Geom.Vec2.zero))

(* ---------- Circle ---------- *)

let test_circle_contains () =
  let c = Geom.Circle.make ~center:(Geom.Vec2.make 1. 1.) ~radius:2. in
  Alcotest.(check bool) "inside" true (Geom.Circle.contains c (Geom.Vec2.make 2. 2.));
  Alcotest.(check bool) "boundary" true (Geom.Circle.contains c (Geom.Vec2.make 3. 1.));
  Alcotest.(check bool) "outside" false (Geom.Circle.contains c (Geom.Vec2.make 4. 1.));
  Alcotest.(check bool) "on_boundary" true
    (Geom.Circle.on_boundary c (Geom.Vec2.make 3. 1.))

let test_circle_intersect_two_points () =
  (* Unit circles at distance 1: intersections at x=1/2, y=±sqrt(3)/2. *)
  let a = Geom.Circle.make ~center:Geom.Vec2.zero ~radius:1. in
  let b = Geom.Circle.make ~center:(Geom.Vec2.make 1. 0.) ~radius:1. in
  match Geom.Circle.intersect a b with
  | [ p; q ] ->
      check_float ~eps:1e-9 "p.x" 0.5 p.Geom.Vec2.x;
      check_float ~eps:1e-9 "q.x" 0.5 q.Geom.Vec2.x;
      check_float ~eps:1e-9 "p.y" (sqrt 3. /. 2.) (Float.abs p.Geom.Vec2.y);
      Alcotest.(check bool) "opposite sides" true
        (p.Geom.Vec2.y *. q.Geom.Vec2.y < 0.)
  | other -> Alcotest.failf "expected 2 points, got %d" (List.length other)

let test_circle_intersect_edge_cases () =
  let c r x = Geom.Circle.make ~center:(Geom.Vec2.make x 0.) ~radius:r in
  Alcotest.(check int) "disjoint" 0 (List.length (Geom.Circle.intersect (c 1. 0.) (c 1. 5.)));
  Alcotest.(check int) "concentric" 0 (List.length (Geom.Circle.intersect (c 1. 0.) (c 2. 0.)));
  Alcotest.(check int) "tangent" 1 (List.length (Geom.Circle.intersect (c 1. 0.) (c 1. 2.)));
  Alcotest.(check int) "identical" 0 (List.length (Geom.Circle.intersect (c 1. 0.) (c 1. 0.)))

(* ---------- Hull ---------- *)

let test_hull_square () =
  let pts =
    [ Geom.Vec2.make 0. 0.; Geom.Vec2.make 4. 0.; Geom.Vec2.make 4. 4.;
      Geom.Vec2.make 0. 4.; Geom.Vec2.make 2. 2. (* interior *);
      Geom.Vec2.make 2. 0. (* collinear on an edge *) ]
  in
  let hull = Geom.Hull.convex_hull pts in
  Alcotest.(check int) "4 corners" 4 (List.length hull);
  Alcotest.(check bool) "starts at leftmost-lowest" true
    (Geom.Vec2.equal (List.hd hull) (Geom.Vec2.make 0. 0.));
  (* counterclockwise: next point should be (4,0) *)
  Alcotest.(check bool) "CCW" true
    (Geom.Vec2.equal (List.nth hull 1) (Geom.Vec2.make 4. 0.));
  Alcotest.(check bool) "interior inside" true
    (Geom.Hull.contains hull (Geom.Vec2.make 2. 2.));
  Alcotest.(check bool) "boundary inside" true
    (Geom.Hull.contains hull (Geom.Vec2.make 4. 2.));
  Alcotest.(check bool) "outside" false
    (Geom.Hull.contains hull (Geom.Vec2.make 5. 2.))

let test_hull_degenerate () =
  Alcotest.(check int) "empty" 0 (List.length (Geom.Hull.convex_hull []));
  Alcotest.(check int) "single" 1
    (List.length (Geom.Hull.convex_hull [ Geom.Vec2.make 1. 1. ]));
  Alcotest.(check int) "duplicates collapse" 1
    (List.length
       (Geom.Hull.convex_hull [ Geom.Vec2.make 1. 1.; Geom.Vec2.make 1. 1. ]));
  let collinear =
    Geom.Hull.convex_hull
      [ Geom.Vec2.make 0. 0.; Geom.Vec2.make 1. 0.; Geom.Vec2.make 2. 0. ]
  in
  Alcotest.(check int) "collinear keeps extremes" 2 (List.length collinear)

let test_hull_indices () =
  let positions =
    [| Geom.Vec2.make 1. 1.; Geom.Vec2.make 0. 0.; Geom.Vec2.make 2. 0.;
       Geom.Vec2.make 1. 2. |]
  in
  let idx = Geom.Hull.hull_indices positions in
  Alcotest.(check (list int)) "hull indices" [ 1; 2; 3 ] (List.sort Int.compare idx);
  Alcotest.(check bool) "interior excluded" true (not (List.mem 0 idx))

(* ---------- property tests ---------- *)

let dir_gen = QCheck.Gen.float_bound_exclusive two_pi

let dirs_gen = QCheck.Gen.(list_size (int_range 0 20) dir_gen)

let prop_gap_rotation_invariant =
  QCheck.Test.make ~count:200 ~name:"max_gap is rotation invariant"
    QCheck.(make Gen.(pair dirs_gen dir_gen))
    (fun (dirs, rot) ->
      let rotated = List.map (fun d -> Geom.Angle.normalize (d +. rot)) dirs in
      feq ~eps:1e-6 (Geom.Dirset.max_gap dirs) (Geom.Dirset.max_gap rotated))

let prop_gap_monotone_in_alpha =
  QCheck.Test.make ~count:200 ~name:"has_gap monotone: bigger alpha, fewer gaps"
    QCheck.(make dirs_gen)
    (fun dirs ->
      let small = Geom.Dirset.has_gap ~alpha:1.0 dirs in
      let large = Geom.Dirset.has_gap ~alpha:2.5 dirs in
      (not large) || small)

let prop_gap_antitone_in_dirs =
  QCheck.Test.make ~count:200 ~name:"adding directions never creates a gap"
    QCheck.(make Gen.(pair dirs_gen dir_gen))
    (fun (dirs, extra) ->
      let alpha = Geom.Angle.five_pi_six in
      let before = Geom.Dirset.has_gap ~alpha dirs in
      let after = Geom.Dirset.has_gap ~alpha (extra :: dirs) in
      (not after) || before)

let prop_cover_duality =
  QCheck.Test.make ~count:200
    ~name:"cover is the full circle iff there is no gap (nonempty)"
    QCheck.(make dirs_gen)
    (fun dirs ->
      QCheck.assume (dirs <> []);
      let alpha = 2.0 in
      let full = Geom.Arcset.is_full (Geom.Dirset.cover ~alpha dirs) in
      full = not (Geom.Dirset.has_gap ~alpha dirs))

let prop_cover_contains_dirs =
  QCheck.Test.make ~count:200 ~name:"cover contains every source direction"
    QCheck.(make dirs_gen)
    (fun dirs ->
      let cover = Geom.Dirset.cover ~alpha:0.8 dirs in
      List.for_all (fun d -> Geom.Arcset.contains_angle cover d) dirs)

let prop_circle_intersections_on_both =
  QCheck.Test.make ~count:200 ~name:"circle intersections lie on both circles"
    QCheck.(
      make
        Gen.(
          tup4 (float_bound_exclusive 10.) (float_bound_exclusive 10.)
            (float_range 0.1 5.) (float_range 0.1 5.)))
    (fun (x, y, r1, r2) ->
      let a = Geom.Circle.make ~center:Geom.Vec2.zero ~radius:r1 in
      let b = Geom.Circle.make ~center:(Geom.Vec2.make x y) ~radius:r2 in
      List.for_all
        (fun p ->
          Geom.Circle.on_boundary ~eps:1e-6 a p
          && Geom.Circle.on_boundary ~eps:1e-6 b p)
        (Geom.Circle.intersect a b))

let prop_hull_contains_all =
  QCheck.Test.make ~count:100 ~name:"every input point lies inside its hull"
    QCheck.(
      list_of_size
        (QCheck.Gen.int_range 3 30)
        (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun raw ->
      let pts = List.map (fun (x, y) -> Geom.Vec2.make x y) raw in
      let hull = Geom.Hull.convex_hull pts in
      List.for_all (Geom.Hull.contains hull) pts)

let prop_angle_normalize_range =
  QCheck.Test.make ~count:500 ~name:"normalize lands in [0, 2pi)"
    QCheck.(make Gen.(float_range (-100.) 100.))
    (fun a ->
      let n = Geom.Angle.normalize a in
      n >= 0. && n < two_pi)

(* Brute angular-gap oracle: normalize, sort, fold consecutive
   differences plus the wrap gap.  Deliberately independent of the
   Dirset/Arcset machinery. *)
let brute_max_gap dirs =
  match List.sort_uniq Float.compare (List.map Geom.Angle.normalize dirs) with
  | [] | [ _ ] -> two_pi
  | first :: _ as sorted ->
      let rec gaps acc = function
        | a :: (b :: _ as rest) -> gaps (Stdlib.max acc (b -. a)) rest
        | [ last ] -> Stdlib.max acc (first +. two_pi -. last)
        | [] -> acc
      in
      gaps 0. sorted

(* Directions biased to the boundaries: exact multiples of pi/6 (so of
   pi/3 too) on both sides of the +/-pi seam, jittered by nothing, an
   ulp-scale amount, the gap-test tolerance, or a clearly-inside
   offset. *)
let boundary_dir_gen =
  QCheck.Gen.(
    int_range (-12) 12 >>= fun k ->
    oneofl [ 0.; 1e-12; -1e-12; 1e-9; -1e-9; 0.05; -0.05 ] >|= fun j ->
    (Stdlib.float_of_int k *. pi /. 6.) +. j)

let boundary_dirs_gen = QCheck.Gen.(list_size (int_range 1 16) boundary_dir_gen)

let prop_max_gap_matches_brute_oracle =
  QCheck.Test.make ~count:300
    ~name:"max_gap = brute sorted-gap oracle on boundary configurations"
    QCheck.(make boundary_dirs_gen)
    (fun dirs -> feq (Geom.Dirset.max_gap dirs) (brute_max_gap dirs))

let prop_covers_circle_matches_gap_oracle =
  QCheck.Test.make ~count:300
    ~name:"covers_circle = brute gap oracle away from the exact boundary"
    QCheck.(make boundary_dirs_gen)
    (fun dirs ->
      let alpha = Geom.Angle.two_pi_three in
      let gap = brute_max_gap dirs in
      QCheck.assume (Float.abs (gap -. alpha) > 1e-8);
      Geom.Dirset.covers_circle ~alpha dirs = (gap < alpha))

let prop_cover_matches_pointwise_oracle =
  QCheck.Test.make ~count:300
    ~name:"Arcset cover membership = brute nearest-direction oracle"
    QCheck.(make Gen.(pair boundary_dirs_gen boundary_dir_gen))
    (fun (dirs, probe) ->
      let alpha = Geom.Angle.five_pi_six in
      let nearest =
        List.fold_left
          (fun acc d -> Stdlib.min acc (Geom.Angle.diff probe d))
          Float.infinity dirs
      in
      (* probes within tolerance of the arc boundary are excluded: there
         the closed-arc convention and eps legitimately disagree *)
      QCheck.assume (Float.abs (nearest -. (alpha /. 2.)) > 1e-8);
      Geom.Arcset.contains_angle (Geom.Dirset.cover ~alpha dirs) probe
      = (nearest < alpha /. 2.))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "geom"
    [
      ( "vec2",
        [
          Alcotest.test_case "arithmetic" `Quick test_vec2_arith;
          Alcotest.test_case "norm and dist" `Quick test_vec2_norm_dist;
          Alcotest.test_case "angles" `Quick test_vec2_angles;
          Alcotest.test_case "polar and rotate" `Quick test_vec2_polar_rotate;
        ] );
      ( "angle",
        [
          Alcotest.test_case "normalize" `Quick test_angle_normalize;
          Alcotest.test_case "normalize seam regressions" `Quick
            test_angle_normalize_seam;
          Alcotest.test_case "diff" `Quick test_angle_diff;
          Alcotest.test_case "constants" `Quick test_angle_constants;
        ] );
      ( "dirset",
        [
          Alcotest.test_case "empty and singleton" `Quick test_gap_empty_singleton;
          Alcotest.test_case "regular polygons" `Quick test_gap_regular_polygons;
          Alcotest.test_case "wraparound" `Quick test_gap_wraparound;
          Alcotest.test_case "exact pi/6 and pi/3 multiples" `Quick
            test_gap_exact_pi_multiples;
          Alcotest.test_case "pi seam" `Quick test_gap_pi_seam;
          Alcotest.test_case "cover duality" `Quick test_covers_circle_gap_duality;
        ] );
      ( "arcset",
        [
          Alcotest.test_case "basic" `Quick test_arcset_basic;
          Alcotest.test_case "merge and wrap" `Quick test_arcset_merge_and_wrap;
          Alcotest.test_case "full detection" `Quick test_arcset_full_detection;
          Alcotest.test_case "containment" `Quick test_arcset_contains_arc_subsume;
          Alcotest.test_case "of_directions" `Quick test_arcset_of_directions;
          Alcotest.test_case "invalid input" `Quick test_arcset_invalid;
        ] );
      ( "cone",
        [
          Alcotest.test_case "membership" `Quick test_cone_membership;
          Alcotest.test_case "invalid" `Quick test_cone_invalid;
        ] );
      ( "circle",
        [
          Alcotest.test_case "contains" `Quick test_circle_contains;
          Alcotest.test_case "two intersections" `Quick test_circle_intersect_two_points;
          Alcotest.test_case "edge cases" `Quick test_circle_intersect_edge_cases;
        ] );
      ( "hull",
        [
          Alcotest.test_case "square" `Quick test_hull_square;
          Alcotest.test_case "degenerate" `Quick test_hull_degenerate;
          Alcotest.test_case "indices" `Quick test_hull_indices;
        ] );
      ( "properties",
        qsuite
          [
            prop_gap_rotation_invariant;
            prop_gap_monotone_in_alpha;
            prop_gap_antitone_in_dirs;
            prop_cover_duality;
            prop_cover_contains_dirs;
            prop_circle_intersections_on_both;
            prop_hull_contains_all;
            prop_angle_normalize_range;
            prop_max_gap_matches_brute_oracle;
            prop_covers_circle_matches_gap_oracle;
            prop_cover_matches_pointwise_oracle;
          ] );
    ]
