(* Schema validator for <out>/lifetime.json (schema 1), run by the
   @bench-smoke alias: the document must carry schema/results, every
   result row must have the full column set with the right types —
   bench/family/mode (strings, mode in {passive, scheduled}), n / trials
   (positive ints), capacity / rx_overhead (positive numbers),
   rotation_period (int >= 0, 0 exactly when mode = passive), duty
   (number in [0, 1]), idle_listen (number >= 0), lifetime_rounds /
   first_death / delivered / dropped / cover_sets / epochs /
   awake_node_rounds (numbers >= 0, with first_death <= lifetime horizon
   implied by being finite), energy_per_delivered (positive number) —
   and every family must appear in both modes.  The semantic pin: for
   the max-power and CBTC families the scheduled row's lifetime_rounds
   must strictly exceed the passive row's — the claim the scheduler
   exists to establish, so a regression there is a scheduler bug, not an
   empirical finding.  Exits non-zero naming the offending row. *)

let fail fmt =
  Fmt.kstr
    (fun msg ->
      Fmt.epr "validate_lifetime: %s@." msg;
      exit 1)
    fmt

let num = function
  | Some (Obs.Jsonl.Float f) -> Some f
  | Some (Obs.Jsonl.Int i) -> Some (Stdlib.float_of_int i)
  | _ -> None

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
        Fmt.epr "usage: validate_lifetime LIFETIME.json@.";
        exit 2
  in
  let contents =
    match open_in path with
    | exception Sys_error e ->
        Fmt.epr "validate_lifetime: %s@." e;
        exit 2
    | ic ->
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        s
  in
  let doc =
    try Obs.Jsonl.of_string contents
    with Obs.Jsonl.Parse_error e -> fail "unparsable JSON: %s" e
  in
  (match Obs.Jsonl.member "schema" doc with
  | Some (Obs.Jsonl.Int 1) -> ()
  | Some (Obs.Jsonl.Int v) -> fail "unsupported schema %d (expected 1)" v
  | _ -> fail "missing integer field \"schema\"");
  let results =
    match Obs.Jsonl.member "results" doc with
    | Some (Obs.Jsonl.List rows) -> rows
    | _ -> fail "missing list field \"results\""
  in
  if results = [] then fail "\"results\" is empty";
  (* (family, mode) -> lifetime_rounds, for the cross-row pins *)
  let cells = Hashtbl.create 16 in
  List.iteri
    (fun i row ->
      let ctx = Fmt.str "results[%d]" i in
      (match Obs.Jsonl.member "bench" row with
      | Some (Obs.Jsonl.Str "lifetime") -> ()
      | _ -> fail "%s: \"bench\" must be the string \"lifetime\"" ctx);
      let family =
        match Obs.Jsonl.member "family" row with
        | Some (Obs.Jsonl.Str f) -> f
        | _ -> fail "%s: missing string field \"family\"" ctx
      in
      let mode =
        match Obs.Jsonl.member "mode" row with
        | Some (Obs.Jsonl.Str ("passive" as m))
        | Some (Obs.Jsonl.Str ("scheduled" as m)) ->
            m
        | _ -> fail "%s: \"mode\" must be \"passive\" or \"scheduled\"" ctx
      in
      let ctx = Fmt.str "%s (%s/%s)" ctx family mode in
      List.iter
        (fun name ->
          match Obs.Jsonl.member name row with
          | Some (Obs.Jsonl.Int v) when v > 0 -> ()
          | _ -> fail "%s: missing positive integer %S" ctx name)
        [ "n"; "trials" ];
      List.iter
        (fun name ->
          match num (Obs.Jsonl.member name row) with
          | Some v when v > 0. -> ()
          | _ -> fail "%s: %S must be a positive number" ctx name)
        [ "capacity"; "rx_overhead"; "energy_per_delivered" ];
      let rotation =
        match Obs.Jsonl.member "rotation_period" row with
        | Some (Obs.Jsonl.Int r) when r >= 0 -> r
        | _ -> fail "%s: \"rotation_period\" must be an integer >= 0" ctx
      in
      (match mode with
      | "passive" when rotation <> 0 ->
          fail "%s: passive rows must have rotation_period = 0" ctx
      | "scheduled" when rotation = 0 ->
          fail "%s: scheduled rows must have rotation_period >= 1" ctx
      | _ -> ());
      (match num (Obs.Jsonl.member "duty" row) with
      | Some d when d >= 0. && d <= 1. -> ()
      | _ -> fail "%s: \"duty\" must be a number in [0, 1]" ctx);
      List.iter
        (fun name ->
          match num (Obs.Jsonl.member name row) with
          | Some v when v >= 0. && Float.is_finite v -> ()
          | _ -> fail "%s: %S must be a finite number >= 0" ctx name)
        [ "idle_listen"; "lifetime_rounds"; "first_death"; "delivered";
          "dropped"; "cover_sets"; "epochs"; "awake_node_rounds" ];
      let lifetime =
        Option.get (num (Obs.Jsonl.member "lifetime_rounds" row))
      in
      (* cover sets only exist when the scheduler actually elects *)
      (match num (Obs.Jsonl.member "cover_sets" row) with
      | Some c when mode = "passive" && c <> 0. ->
          fail "%s: passive rows must report cover_sets = 0" ctx
      | Some c when mode = "scheduled" && c <= 0. ->
          fail "%s: scheduled rows must report cover_sets > 0" ctx
      | _ -> ());
      if Hashtbl.mem cells (family, mode) then
        fail "%s: duplicate (family, mode) cell" ctx;
      Hashtbl.add cells (family, mode) lifetime)
    results;
  let prefixed prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  Hashtbl.iter
    (fun (family, mode) lifetime ->
      let other = if mode = "passive" then "scheduled" else "passive" in
      (match Hashtbl.find_opt cells (family, other) with
      | Some _ -> ()
      | None -> fail "family %S has a %s row but no %s row" family mode other);
      (* the claim the scheduler exists to establish *)
      if
        mode = "passive"
        && (family = "max power" || prefixed "cbtc" family)
      then
        let scheduled = Hashtbl.find cells (family, "scheduled") in
        if not (scheduled > lifetime) then
          fail
            "family %S: scheduled lifetime (%g) must strictly exceed \
             passive (%g)"
            family scheduled lifetime)
    cells;
  Fmt.pr "validate_lifetime: %s OK (%d rows)@." path (List.length results)
