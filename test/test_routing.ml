(* Tests for routing: greedy geographic forwarding, minimum-energy
   routing, and the congestion (flow-load) measurements. *)

module U = Graphkit.Ugraph

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let pl = Radio.Pathloss.make ~max_range:100. ()

(* ---------- greedy ---------- *)

let line_positions =
  [| Geom.Vec2.zero; Geom.Vec2.make 50. 0.; Geom.Vec2.make 100. 0.;
     Geom.Vec2.make 150. 0. |]

let line = U.of_edges 4 [ (0, 1); (1, 2); (2, 3) ]

let test_greedy_delivers_on_line () =
  match Routing.Greedy.route line line_positions ~src:0 ~dst:3 with
  | Routing.Greedy.Delivered path ->
      Alcotest.(check (list int)) "hop by hop" [ 0; 1; 2; 3 ] path
  | Routing.Greedy.Stuck _ -> Alcotest.fail "should deliver"

let test_greedy_trivial () =
  match Routing.Greedy.route line line_positions ~src:2 ~dst:2 with
  | Routing.Greedy.Delivered path -> Alcotest.(check (list int)) "self" [ 2 ] path
  | Routing.Greedy.Stuck _ -> Alcotest.fail "self route"

let test_greedy_local_minimum () =
  (* A dead end: 1 is closer to 3 than 0 is, but 1's only other neighbor
     2 is farther from 3 than 1.  Greedy gets stuck at 1. *)
  let positions =
    [| Geom.Vec2.zero; Geom.Vec2.make 50. 0.; Geom.Vec2.make 50. 60.;
       Geom.Vec2.make 90. 0. |]
  in
  let g = U.of_edges 4 [ (0, 1); (1, 2) ] in
  match Routing.Greedy.route g positions ~src:0 ~dst:3 with
  | Routing.Greedy.Stuck { at; path } ->
      Alcotest.(check int) "stuck at 1" 1 at;
      Alcotest.(check (list int)) "prefix" [ 0; 1 ] path
  | Routing.Greedy.Delivered _ -> Alcotest.fail "cannot deliver: 3 is isolated"

let test_greedy_evaluate () =
  let stats =
    Routing.Greedy.evaluate line line_positions ~pairs:[ (0, 3); (3, 0); (1, 2) ]
  in
  Alcotest.(check int) "attempts" 3 stats.Routing.Greedy.attempts;
  Alcotest.(check int) "delivered" 3 stats.Routing.Greedy.delivered;
  check_float "avg hops" (7. /. 3.) stats.Routing.Greedy.avg_hops;
  check_float "length ratio straight line" 1. stats.Routing.Greedy.avg_length_ratio

let test_greedy_random_pairs () =
  let prng = Prng.create ~seed:3 in
  let pairs = Routing.Greedy.random_pairs prng ~n:10 ~count:50 in
  Alcotest.(check int) "count" 50 (List.length pairs);
  Alcotest.(check bool) "no self pairs" true
    (List.for_all (fun (a, b) -> a <> b) pairs)

(* Greedy always succeeds on a CBTC topology of a connected network?  No
   such theorem — but it should succeed often; sanity-check a healthy
   success rate on a random connected scenario. *)
let test_greedy_on_cbtc () =
  let sc = Workload.Scenario.paper ~seed:8 in
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  let config = Cbtc.Config.make Geom.Angle.five_pi_six in
  let r =
    Cbtc.Pipeline.run_oracle pl positions (Cbtc.Pipeline.basic config)
  in
  let prng = Prng.create ~seed:4 in
  let pairs = Routing.Greedy.random_pairs prng ~n:100 ~count:200 in
  let stats = Routing.Greedy.evaluate r.Cbtc.Pipeline.graph positions ~pairs in
  if stats.Routing.Greedy.delivered * 100 / stats.Routing.Greedy.attempts < 70
  then
    Alcotest.failf "greedy success rate suspiciously low: %d/%d"
      stats.Routing.Greedy.delivered stats.Routing.Greedy.attempts

(* ---------- minpower ---------- *)

let test_minpower_route () =
  let energy = Radio.Energy.make pl in
  (* p(d) = d^2: relaying beats the direct 100-unit edge *)
  let g = U.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  let positions =
    [| Geom.Vec2.zero; Geom.Vec2.make 50. 0.; Geom.Vec2.make 100. 0. |]
  in
  match Routing.Minpower.route energy positions g ~src:0 ~dst:2 with
  | Some (path, cost) ->
      Alcotest.(check (list int)) "relayed" [ 0; 1; 2 ] path;
      check_float "cost" 5000. cost;
      check_float "path_cost agrees" cost
        (Routing.Minpower.path_cost energy positions path)
  | None -> Alcotest.fail "connected"

let test_minpower_disconnected () =
  let energy = Radio.Energy.make pl in
  let g = U.of_edges 3 [ (0, 1) ] in
  let positions =
    [| Geom.Vec2.zero; Geom.Vec2.make 10. 0.; Geom.Vec2.make 20. 0. |]
  in
  Alcotest.(check bool) "no route" true
    (Routing.Minpower.route energy positions g ~src:0 ~dst:2 = None)

let test_minpower_overhead_changes_route () =
  let g = U.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  let positions =
    [| Geom.Vec2.zero; Geom.Vec2.make 50. 0.; Geom.Vec2.make 100. 0. |]
  in
  (* big per-hop overhead makes the direct edge cheaper *)
  let expensive = Radio.Energy.make ~rx_overhead:6000. pl in
  match Routing.Minpower.route expensive positions g ~src:0 ~dst:2 with
  | Some (path, _) -> Alcotest.(check (list int)) "direct" [ 0; 2 ] path
  | None -> Alcotest.fail "connected"

(* ---------- flows / congestion ---------- *)

let test_flows_min_hop () =
  let positions = line_positions in
  let load =
    Routing.Flows.measure positions line ~pairs:[ (0, 3); (1, 3); (0, 2) ]
  in
  Alcotest.(check int) "routed" 3 load.Routing.Flows.flows_routed;
  Alcotest.(check int) "failed" 0 load.Routing.Flows.flows_failed;
  Alcotest.(check int) "total hops" 7 load.Routing.Flows.total_hops;
  (* nodes 1 and 2 relay everything *)
  Alcotest.(check int) "max node load" 3 load.Routing.Flows.max_node_load;
  Alcotest.(check int) "max link load" 3 load.Routing.Flows.max_link_load

let test_flows_failures_counted () =
  let g = U.of_edges 4 [ (0, 1) ] in
  let load =
    Routing.Flows.measure line_positions g ~pairs:[ (0, 1); (0, 3) ]
  in
  Alcotest.(check int) "routed" 1 load.Routing.Flows.flows_routed;
  Alcotest.(check int) "failed" 1 load.Routing.Flows.flows_failed

let test_flows_min_energy_policy () =
  let energy = Radio.Energy.make pl in
  let g = U.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  let positions =
    [| Geom.Vec2.zero; Geom.Vec2.make 50. 0.; Geom.Vec2.make 100. 0. |]
  in
  (* min-hop uses the direct edge; min-energy relays through 1 *)
  let hop = Routing.Flows.measure positions g ~pairs:[ (0, 2) ] in
  let nrg =
    Routing.Flows.measure ~policy:(Routing.Flows.Min_energy energy) positions g
      ~pairs:[ (0, 2) ]
  in
  Alcotest.(check int) "min-hop: 1 hop" 1 hop.Routing.Flows.total_hops;
  Alcotest.(check int) "min-energy: 2 hops" 2 nrg.Routing.Flows.total_hops

(* Sparser topologies concentrate load: the paper's congestion caveat. *)
let test_congestion_increases_with_sparsity () =
  let sc = Workload.Scenario.paper ~seed:12 in
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  let gr = Baselines.Proximity.max_power pl positions in
  let config = Cbtc.Config.make Geom.Angle.five_pi_six in
  let sparse =
    (Cbtc.Pipeline.run_oracle pl positions (Cbtc.Pipeline.all_ops config)).graph
  in
  let prng = Prng.create ~seed:5 in
  let pairs = Routing.Greedy.random_pairs prng ~n:100 ~count:300 in
  let full = Routing.Flows.measure positions gr ~pairs in
  let thin = Routing.Flows.measure positions sparse ~pairs in
  Alcotest.(check bool) "sparser topology carries more load per link" true
    (thin.Routing.Flows.max_link_load > full.Routing.Flows.max_link_load);
  Alcotest.(check bool) "and needs more hops" true
    (thin.Routing.Flows.total_hops > full.Routing.Flows.total_hops)

(* ---------- shortest-path tree plumbing ---------- *)

let test_dijkstra_tree_paths () =
  let g = U.of_edges 5 [ (0, 1); (1, 2); (2, 3); (0, 4); (4, 3) ] in
  let cost _ _ = 1. in
  let dist, prev = Graphkit.Shortest.dijkstra_tree g ~cost ~src:0 in
  check_float "dist to 3" 2. dist.(3);
  (match Graphkit.Shortest.path_to ~prev ~src:0 3 with
  | Some [ 0; 4; 3 ] -> ()
  | Some p ->
      Alcotest.failf "unexpected path [%s]"
        (String.concat ";" (List.map string_of_int p))
  | None -> Alcotest.fail "reachable");
  Alcotest.(check bool) "self path" true
    (Graphkit.Shortest.path_to ~prev ~src:0 0 = Some [ 0 ])

let () =
  Alcotest.run "routing"
    [
      ( "greedy",
        [
          Alcotest.test_case "delivers on a line" `Quick test_greedy_delivers_on_line;
          Alcotest.test_case "trivial route" `Quick test_greedy_trivial;
          Alcotest.test_case "local minimum" `Quick test_greedy_local_minimum;
          Alcotest.test_case "evaluate" `Quick test_greedy_evaluate;
          Alcotest.test_case "random pairs" `Quick test_greedy_random_pairs;
          Alcotest.test_case "on CBTC topology" `Quick test_greedy_on_cbtc;
        ] );
      ( "minpower",
        [
          Alcotest.test_case "relaying beats direct" `Quick test_minpower_route;
          Alcotest.test_case "disconnected" `Quick test_minpower_disconnected;
          Alcotest.test_case "overhead changes route" `Quick
            test_minpower_overhead_changes_route;
        ] );
      ( "flows",
        [
          Alcotest.test_case "min hop loads" `Quick test_flows_min_hop;
          Alcotest.test_case "failures counted" `Quick test_flows_failures_counted;
          Alcotest.test_case "min energy policy" `Quick test_flows_min_energy_policy;
          Alcotest.test_case "congestion vs sparsity" `Quick
            test_congestion_increases_with_sparsity;
        ] );
      ( "tree",
        [ Alcotest.test_case "dijkstra tree paths" `Quick test_dijkstra_tree_paths ] );
    ]
