(* Tests for the simulated radio network: the paper's bcast/send/recv
   primitives, reception metadata, crash-stop failures, and accounting. *)

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let pl = Radio.Pathloss.make ~max_range:100. ()

(* Four nodes on a line at x = 0, 10, 50, 150. *)
let line_positions =
  [| Geom.Vec2.make 0. 0.; Geom.Vec2.make 10. 0.; Geom.Vec2.make 50. 0.;
     Geom.Vec2.make 150. 0. |]

let make_net ?(channel = Dsim.Channel.reliable) () =
  let sim = Dsim.Sim.create () in
  let net =
    Airnet.Net.create ~sim ~pathloss:pl ~channel ~prng:(Prng.create ~seed:5)
      ~positions:line_positions ()
  in
  (sim, net)

let collect net =
  let log = ref [] in
  for u = 0 to Airnet.Net.nb_nodes net - 1 do
    Airnet.Net.set_handler net u (fun r -> log := r :: !log)
  done;
  log

let test_bcast_range_semantics () =
  let sim, net = make_net () in
  let log = collect net in
  (* power p(50) = 2500 reaches nodes 1 and 2 but not 3 (at 150 > 100=R
     anyway) nor beyond. *)
  let reached = Airnet.Net.bcast net ~src:0 ~power:2500. "hello" in
  ignore (Dsim.Sim.run sim);
  Alcotest.(check int) "physically reached" 2 reached;
  let dsts =
    List.sort Int.compare (List.map (fun r -> r.Airnet.Net.dst) !log)
  in
  Alcotest.(check (list int)) "delivered to 1 and 2" [ 1; 2 ] dsts;
  Alcotest.(check int) "transmissions" 1 (Airnet.Net.transmissions net);
  Alcotest.(check int) "deliveries" 2 (Airnet.Net.deliveries net)

let test_recv_metadata () =
  let sim, net = make_net () in
  let log = collect net in
  ignore (Airnet.Net.bcast net ~src:0 ~power:200. "ping");
  ignore (Dsim.Sim.run sim);
  match !log with
  | [ r ] ->
      Alcotest.(check int) "dst" 1 r.Airnet.Net.dst;
      Alcotest.(check int) "src" 0 r.Airnet.Net.src;
      check_float "tx power" 200. r.Airnet.Net.tx_power;
      (* rx power = tx / d^2 at d = 10 *)
      check_float "rx power" 2. r.Airnet.Net.rx_power;
      (* node 1 sees node 0 to its west *)
      check_float "angle of arrival" Geom.Angle.pi r.Airnet.Net.rx_dir;
      Alcotest.(check string) "payload" "ping" r.Airnet.Net.payload;
      (* the receiver can recover p(d) exactly, per the paper *)
      check_float "estimated link power" 100.
        (Radio.Pathloss.estimate_link_power pl ~tx_power:r.Airnet.Net.tx_power
           ~rx_power:r.Airnet.Net.rx_power)
  | l -> Alcotest.failf "expected exactly one delivery, got %d" (List.length l)

let test_send_unicast () =
  let sim, net = make_net () in
  let log = collect net in
  Alcotest.(check bool) "in range" true
    (Airnet.Net.send net ~src:0 ~dst:2 ~power:2500. "direct");
  Alcotest.(check bool) "out of range" false
    (Airnet.Net.send net ~src:0 ~dst:2 ~power:100. "too-weak");
  ignore (Dsim.Sim.run sim);
  Alcotest.(check int) "only the reachable unicast arrives" 1 (List.length !log);
  Alcotest.(check int) "unicast does not hit bystanders" 2
    (List.hd !log).Airnet.Net.dst

let test_crash_stop () =
  let sim, net = make_net () in
  let log = collect net in
  Airnet.Net.crash net 1;
  Alcotest.(check bool) "dead" false (Airnet.Net.is_alive net 1);
  ignore (Airnet.Net.bcast net ~src:0 ~power:2500. "x");
  (* crashed node transmits nothing *)
  Alcotest.(check int) "crashed bcast reaches nobody" 0
    (Airnet.Net.bcast net ~src:1 ~power:2500. "y");
  ignore (Dsim.Sim.run sim);
  let dsts = List.map (fun r -> r.Airnet.Net.dst) !log in
  Alcotest.(check (list int)) "only node 2 hears" [ 2 ] dsts

let test_crash_between_send_and_delivery () =
  let sim, net = make_net () in
  let log = collect net in
  ignore (Airnet.Net.bcast net ~src:0 ~power:2500. "x");
  Airnet.Net.crash net 2;
  (* before delivery events fire *)
  ignore (Dsim.Sim.run sim);
  let dsts = List.map (fun r -> r.Airnet.Net.dst) !log in
  Alcotest.(check (list int)) "dead receiver dropped" [ 1 ] dsts

let test_energy_accounting () =
  let sim, net = make_net () in
  ignore (Airnet.Net.bcast net ~src:0 ~power:100. "a");
  ignore (Airnet.Net.bcast net ~src:0 ~power:200. "b");
  ignore (Airnet.Net.send net ~src:1 ~dst:0 ~power:150. "c");
  ignore (Dsim.Sim.run sim);
  check_float "node 0 energy" 300. (Airnet.Net.energy_used net 0);
  check_float "node 1 energy" 150. (Airnet.Net.energy_used net 1);
  check_float "node 2 untouched" 0. (Airnet.Net.energy_used net 2)

let test_mobility_updates_geometry () =
  let sim, net = make_net () in
  let log = collect net in
  Airnet.Net.set_position net 3 (Geom.Vec2.make 20. 0.);
  check_float "distance updated" 20. (Airnet.Net.distance net 0 3);
  ignore (Airnet.Net.bcast net ~src:0 ~power:500. "now-close");
  ignore (Dsim.Sim.run sim);
  let dsts = List.sort Int.compare (List.map (fun r -> r.Airnet.Net.dst) !log) in
  Alcotest.(check (list int)) "moved node now hears" [ 1; 3 ] dsts

let test_power_validation () =
  let _, net = make_net () in
  Alcotest.check_raises "zero power" (Invalid_argument "Net: non-positive power")
    (fun () -> ignore (Airnet.Net.bcast net ~src:0 ~power:0. "x"));
  Alcotest.check_raises "excess power"
    (Invalid_argument "Net: power exceeds maximum") (fun () ->
      ignore (Airnet.Net.bcast net ~src:0 ~power:1e9 "x"));
  Alcotest.check_raises "self send" (Invalid_argument "Net.send: src = dst")
    (fun () -> ignore (Airnet.Net.send net ~src:0 ~dst:0 ~power:1. "x"))

let test_lossy_channel_drops () =
  let channel = Dsim.Channel.make ~loss:0.5 () in
  let sim, net = make_net ~channel () in
  let log = collect net in
  for _ = 1 to 200 do
    ignore (Airnet.Net.bcast net ~src:0 ~power:200. "x")
  done;
  ignore (Dsim.Sim.run sim);
  let got = List.length !log in
  if got < 60 || got > 140 then
    Alcotest.failf "lossy deliveries %d too far from 100" got

let () =
  Alcotest.run "airnet"
    [
      ( "net",
        [
          Alcotest.test_case "bcast range semantics" `Quick test_bcast_range_semantics;
          Alcotest.test_case "recv metadata" `Quick test_recv_metadata;
          Alcotest.test_case "send unicast" `Quick test_send_unicast;
          Alcotest.test_case "crash stop" `Quick test_crash_stop;
          Alcotest.test_case "crash before delivery" `Quick
            test_crash_between_send_and_delivery;
          Alcotest.test_case "energy accounting" `Quick test_energy_accounting;
          Alcotest.test_case "mobility" `Quick test_mobility_updates_geometry;
          Alcotest.test_case "power validation" `Quick test_power_validation;
          Alcotest.test_case "lossy channel" `Quick test_lossy_channel_drops;
        ] );
    ]
