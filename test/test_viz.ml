(* Tests for the SVG writer and the topology renderer. *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

let test_svg_document () =
  let doc =
    Viz.Svg.document ~width:100. ~height:50.
      [
        Viz.Svg.circle ~fill:"red" ~cx:10. ~cy:20. ~r:3. ();
        Viz.Svg.line ~stroke:"blue" ~stroke_width:0.5 ~x1:0. ~y1:0. ~x2:9. ~y2:9. ();
        Viz.Svg.text ~x:1. ~y:2. "hello";
        Viz.Svg.rect ~fill:"white" ~x:0. ~y:0. ~w:100. ~h:50. ();
      ]
  in
  Alcotest.(check bool) "svg root" true (contains doc "<svg xmlns=");
  Alcotest.(check bool) "closes" true (contains doc "</svg>");
  Alcotest.(check bool) "circle" true (contains doc "<circle cx=\"10\" cy=\"20\" r=\"3\" fill=\"red\"");
  Alcotest.(check bool) "line" true (contains doc "stroke=\"blue\"");
  Alcotest.(check bool) "text" true (contains doc ">hello</text>");
  Alcotest.(check bool) "rect" true (contains doc "<rect")

let test_svg_escaping () =
  let doc = Viz.Svg.document ~width:10. ~height:10. [ Viz.Svg.text ~x:0. ~y:0. "a<b&c>\"d\"" ] in
  Alcotest.(check bool) "escaped" true (contains doc "a&lt;b&amp;c&gt;&quot;d&quot;");
  Alcotest.(check bool) "no raw angle" false (contains doc ">a<b&")

let square_positions =
  [| Geom.Vec2.zero; Geom.Vec2.make 100. 0.; Geom.Vec2.make 0. 100.;
     Geom.Vec2.make 100. 100. |]

let square_graph = Graphkit.Ugraph.of_edges 4 [ (0, 1); (1, 3); (3, 2); (2, 0) ]

let count_occurrences s needle =
  let rec go i acc =
    if i + String.length needle > String.length s then acc
    else if String.sub s i (String.length needle) = needle then
      go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_topoviz_svg () =
  let doc =
    Viz.Topoviz.to_svg ~field_width:100. ~field_height:100. square_positions
      square_graph
  in
  Alcotest.(check int) "one circle per node" 4 (count_occurrences doc "<circle");
  Alcotest.(check int) "one line per edge" 4 (count_occurrences doc "<line");
  (* title and labels off by default *)
  Alcotest.(check int) "no text" 0 (count_occurrences doc "<text")

let test_topoviz_style () =
  let style = Viz.Topoviz.style ~show_labels:true ~title:"panel (a)" () in
  let doc =
    Viz.Topoviz.to_svg ~style ~field_width:100. ~field_height:100.
      square_positions square_graph
  in
  Alcotest.(check int) "labels + title" 5 (count_occurrences doc "<text");
  Alcotest.(check bool) "title text" true (contains doc "panel (a)")

let test_topoviz_write_file () =
  let path = Filename.temp_file "topoviz" ".svg" in
  Viz.Topoviz.write_svg path ~field_width:100. ~field_height:100.
    square_positions square_graph;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "non-empty file" true (len > 200)

let test_ascii () =
  let art =
    Viz.Topoviz.to_ascii ~cols:20 ~rows:10 ~field_width:100. ~field_height:100.
      square_positions square_graph
  in
  let lines = String.split_on_char '\n' art in
  Alcotest.(check int) "rows (+ trailing)" 11 (List.length lines);
  Alcotest.(check int) "node markers" 4 (count_occurrences art "o");
  Alcotest.(check bool) "edges drawn" true (contains art ".")

let test_ascii_validation () =
  Alcotest.check_raises "tiny grid" (Invalid_argument "Topoviz.to_ascii: grid too small")
    (fun () ->
      ignore
        (Viz.Topoviz.to_ascii ~cols:1 ~rows:1 ~field_width:10. ~field_height:10.
           square_positions square_graph))

(* ---------- export ---------- *)

let test_dot_export () =
  let dot = Viz.Export.to_dot ~name:"g" square_positions square_graph in
  Alcotest.(check bool) "header" true (contains dot "graph g {");
  Alcotest.(check bool) "edge" true (contains dot "0 -- 1;");
  Alcotest.(check bool) "pos attr" true (contains dot "pos=");
  Alcotest.(check int) "4 edges" 4 (count_occurrences dot " -- ")

let test_csv_roundtrip () =
  let csv = Viz.Export.to_csv square_positions square_graph in
  let positions, g = Viz.Export.load_csv csv in
  Alcotest.(check int) "nodes" 4 (Array.length positions);
  Alcotest.(check bool) "positions equal" true
    (Array.for_all2 (Geom.Vec2.equal ~eps:0.) square_positions positions);
  Alcotest.(check bool) "graphs equal" true (Graphkit.Ugraph.equal square_graph g)

let test_csv_rejects_malformed () =
  List.iter
    (fun bad ->
      match Viz.Export.load_csv bad with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "accepted malformed input: %s" bad)
    [
      "node,0,1,2\nedge,0,9\n";
      "node,0,a,b\n";
      "garbage\n";
      "node,5,0,0\n" (* ids not dense *);
    ]

let test_export_files () =
  let dot = Filename.temp_file "topo" ".dot" in
  let csv = Filename.temp_file "topo" ".csv" in
  Viz.Export.write_dot dot square_positions square_graph;
  Viz.Export.write_csv csv square_positions square_graph;
  let size p =
    let ic = open_in p in
    let l = in_channel_length ic in
    close_in ic;
    Sys.remove p;
    l
  in
  Alcotest.(check bool) "dot non-empty" true (size dot > 50);
  Alcotest.(check bool) "csv non-empty" true (size csv > 50)

let () =
  Alcotest.run "viz"
    [
      ( "svg",
        [
          Alcotest.test_case "document" `Quick test_svg_document;
          Alcotest.test_case "escaping" `Quick test_svg_escaping;
        ] );
      ( "export",
        [
          Alcotest.test_case "dot" `Quick test_dot_export;
          Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "csv rejects malformed" `Quick test_csv_rejects_malformed;
          Alcotest.test_case "file writers" `Quick test_export_files;
        ] );
      ( "topoviz",
        [
          Alcotest.test_case "svg rendering" `Quick test_topoviz_svg;
          Alcotest.test_case "style options" `Quick test_topoviz_style;
          Alcotest.test_case "write file" `Quick test_topoviz_write_file;
          Alcotest.test_case "ascii" `Quick test_ascii;
          Alcotest.test_case "ascii validation" `Quick test_ascii_validation;
        ] );
    ]
