(* Tests for the comparator topologies: max-power GR, RNG, Gabriel,
   Euclidean MST, and k-NN — including the classical inclusion chain
   MST(GR) <= RNG(GR) <= Gabriel(GR) <= GR. *)

let pl = Radio.Pathloss.make ~max_range:100. ()

let square =
  (* Unit-ish square plus center: rich enough to differentiate the
     families. *)
  [| Geom.Vec2.zero; Geom.Vec2.make 60. 0.; Geom.Vec2.make 0. 60.;
     Geom.Vec2.make 60. 60.; Geom.Vec2.make 30. 30. |]

let test_max_power_is_gr () =
  let g = Baselines.Proximity.max_power pl square in
  (* all pairwise distances here are <= 100 except the diagonals at ~85 —
     actually all are in range, so GR is complete *)
  Alcotest.(check int) "complete graph" 10 (Graphkit.Ugraph.nb_edges g);
  let far = [| Geom.Vec2.zero; Geom.Vec2.make 150. 0. |] in
  Alcotest.(check int) "out of range pair" 0
    (Graphkit.Ugraph.nb_edges (Baselines.Proximity.max_power pl far))

let test_rng_lune () =
  let g = Baselines.Proximity.rng pl square in
  (* The center node (at distance ~42.4 from every corner) witnesses
     against both the diagonals (length ~84.9) and the sides (60): the
     RNG of square-plus-center is the four-spoke star. *)
  Alcotest.(check bool) "diagonal 0-3 removed" false (Graphkit.Ugraph.mem_edge g 0 3);
  Alcotest.(check bool) "diagonal 1-2 removed" false (Graphkit.Ugraph.mem_edge g 1 2);
  Alcotest.(check bool) "side removed too" false (Graphkit.Ugraph.mem_edge g 0 1);
  Alcotest.(check bool) "spoke kept" true (Graphkit.Ugraph.mem_edge g 0 4);
  Alcotest.(check int) "star" 4 (Graphkit.Ugraph.nb_edges g)

let test_gabriel () =
  let g = Baselines.Proximity.gabriel pl square in
  (* The center is strictly inside the diameter circle of each diagonal
     (1800 + 1800 < 7200): diagonals removed.  For a side, the center
     lies exactly ON the diameter circle (1800 + 1800 = 3600): the strict
     inequality keeps the side — the boundary case RNG removes. *)
  Alcotest.(check bool) "diagonal removed" false (Graphkit.Ugraph.mem_edge g 0 3);
  Alcotest.(check bool) "side kept at the boundary" true
    (Graphkit.Ugraph.mem_edge g 0 1);
  Alcotest.(check bool) "spoke kept" true (Graphkit.Ugraph.mem_edge g 0 4)

let test_mst () =
  let g = Baselines.Proximity.euclidean_mst pl square in
  Alcotest.(check int) "tree edges" 4 (Graphkit.Ugraph.nb_edges g);
  Alcotest.(check bool) "connected" true (Graphkit.Traversal.is_connected g);
  (* MST of the square+center: the four spokes (length ~42.4 < 60) *)
  List.iter
    (fun u ->
      Alcotest.(check bool) (Fmt.str "spoke %d-4" u) true
        (Graphkit.Ugraph.mem_edge g u 4))
    [ 0; 1; 2; 3 ]

let test_knn () =
  let g = Baselines.Proximity.knn pl square ~k:1 in
  (* everyone's nearest neighbor is the center *)
  List.iter
    (fun u ->
      Alcotest.(check bool) (Fmt.str "%d links center" u) true
        (Graphkit.Ugraph.mem_edge g u 4))
    [ 0; 1; 2; 3 ];
  Alcotest.(check int) "star" 4 (Graphkit.Ugraph.nb_edges g);
  Alcotest.check_raises "bad k" (Invalid_argument "Proximity.knn: non-positive k")
    (fun () -> ignore (Baselines.Proximity.knn pl square ~k:0))

let test_radius_of () =
  let g = Baselines.Proximity.euclidean_mst pl square in
  let r = Baselines.Proximity.radius_of pl square g in
  let spoke = Geom.Vec2.dist square.(0) square.(4) in
  Alcotest.(check (float 1e-9)) "corner radius = spoke" spoke r.(0);
  let full = Baselines.Proximity.radius_of ~full_power:true pl square g in
  Array.iter (fun x -> Alcotest.(check (float 1e-9)) "full power radius" 100. x) full

(* ---------- Yao ---------- *)

let test_yao_star () =
  (* Square plus center, k = 4 with sector boundaries at the axes: every
     corner keeps its nearest neighbor per sector; the center is nearest
     for all corners in its sector. *)
  let g = Baselines.Yao.yao pl square ~k:4 in
  List.iter
    (fun u ->
      Alcotest.(check bool) (Fmt.str "spoke %d" u) true
        (Graphkit.Ugraph.mem_edge g u 4))
    [ 0; 1; 2; 3 ];
  Alcotest.(check bool) "connected" true (Graphkit.Traversal.is_connected g);
  Alcotest.check_raises "bad k" (Invalid_argument "Yao.yao: k < 3") (fun () ->
      ignore (Baselines.Yao.yao pl square ~k:2))

let test_yao_edge_budget () =
  (* n nodes select at most k out-edges each. *)
  let prng = Prng.create ~seed:17 in
  let positions =
    Array.init 40 (fun _ ->
        Geom.Vec2.make (Prng.float prng 300.) (Prng.float prng 300.))
  in
  let k = 6 in
  let g = Baselines.Yao.yao pl positions ~k in
  Alcotest.(check bool) "edge budget" true
    (Graphkit.Ugraph.nb_edges g
    <= Array.length positions * Baselines.Yao.yao_out_degree_bound ~k)

(* ---------- SMECN ---------- *)

let test_smecn_prunes_dominated_edge () =
  let energy = Radio.Energy.make pl in
  (* collinear: relaying through the midpoint strictly beats direct *)
  let positions =
    [| Geom.Vec2.zero; Geom.Vec2.make 40. 0.; Geom.Vec2.make 80. 0. |]
  in
  let g = Baselines.Smecn.smecn energy positions in
  Alcotest.(check bool) "long edge pruned" false (Graphkit.Ugraph.mem_edge g 0 2);
  Alcotest.(check bool) "short edges kept" true
    (Graphkit.Ugraph.mem_edge g 0 1 && Graphkit.Ugraph.mem_edge g 1 2)

let test_smecn_overhead_keeps_direct () =
  (* Enough per-hop overhead makes the relay unattractive: edge kept. *)
  let energy = Radio.Energy.make ~rx_overhead:5000. pl in
  let positions =
    [| Geom.Vec2.zero; Geom.Vec2.make 40. 0.; Geom.Vec2.make 80. 0. |]
  in
  let g = Baselines.Smecn.smecn energy positions in
  Alcotest.(check bool) "direct kept" true (Graphkit.Ugraph.mem_edge g 0 2)

(* ---------- properties ---------- *)

let positions_gen =
  QCheck.Gen.(
    int_range 2 30 >>= fun n ->
    list_repeat n (pair (float_bound_exclusive 300.) (float_bound_exclusive 300.))
    >|= fun pts -> Array.of_list (List.map (fun (x, y) -> Geom.Vec2.make x y) pts))

let prop_inclusion_chain =
  QCheck.Test.make ~count:60 ~name:"MST <= RNG <= Gabriel <= GR"
    (QCheck.make positions_gen)
    (fun positions ->
      let gr = Baselines.Proximity.max_power pl positions in
      let rng = Baselines.Proximity.rng pl positions in
      let gabriel = Baselines.Proximity.gabriel pl positions in
      let mst = Baselines.Proximity.euclidean_mst pl positions in
      Graphkit.Ugraph.is_subgraph mst rng
      && Graphkit.Ugraph.is_subgraph rng gabriel
      && Graphkit.Ugraph.is_subgraph gabriel gr)

let prop_families_preserve_partition =
  QCheck.Test.make ~count:60
    ~name:"RNG, Gabriel, MST all preserve the GR partition"
    (QCheck.make positions_gen)
    (fun positions ->
      let gr = Baselines.Proximity.max_power pl positions in
      List.for_all
        (fun g -> Graphkit.Traversal.same_partition gr g)
        [
          Baselines.Proximity.rng pl positions;
          Baselines.Proximity.gabriel pl positions;
          Baselines.Proximity.euclidean_mst pl positions;
        ])

let prop_yao_preserves_partition =
  QCheck.Test.make ~count:60 ~name:"Yao graph preserves the GR partition"
    (QCheck.make positions_gen)
    (fun positions ->
      let gr = Baselines.Proximity.max_power pl positions in
      Graphkit.Traversal.same_partition gr (Baselines.Yao.yao pl positions ~k:6))

let prop_smecn_power_stretch_is_one =
  QCheck.Test.make ~count:40
    ~name:"SMECN has power stretch exactly 1 under its energy model"
    (QCheck.make positions_gen)
    (fun positions ->
      let energy = Radio.Energy.make ~rx_overhead:50. pl in
      let gr = Baselines.Proximity.max_power pl positions in
      let g = Baselines.Smecn.smecn energy positions in
      Graphkit.Traversal.same_partition gr g
      &&
      let s = Metrics.Stretch.power_stretch energy positions ~reference:gr g in
      s.Metrics.Stretch.max_stretch <= 1. +. 1e-9)

let prop_smecn_equals_gabriel_quadratic_no_overhead =
  QCheck.Test.make ~count:40
    ~name:"SMECN with p(d)=d^2 and no overhead is exactly the Gabriel graph"
    (QCheck.make positions_gen)
    (fun positions ->
      (* w blocks (u,v) in SMECN iff d(u,w)^2 + d(w,v)^2 < d(u,v)^2 —
         precisely the strict diameter-circle (Gabriel) criterion. *)
      let energy = Radio.Energy.make pl in
      Graphkit.Ugraph.equal
        (Baselines.Smecn.smecn energy positions)
        (Baselines.Proximity.gabriel pl positions))

let prop_knn_out_degree =
  QCheck.Test.make ~count:60 ~name:"k-NN: each node selects at most k"
    (QCheck.make positions_gen)
    (fun positions ->
      let k = 3 in
      let g = Baselines.Proximity.knn pl positions ~k in
      (* degree can exceed k through the symmetric closure, but the total
         edge count is bounded by n*k *)
      Graphkit.Ugraph.nb_edges g <= Array.length positions * k)

let test_degenerate_inputs () =
  (* Every family must accept the empty network, a single node, and
     coincident nodes (zero-length candidate edges) without crashing. *)
  let families positions =
    [
      ("max_power", Baselines.Proximity.max_power pl positions);
      ("rng", Baselines.Proximity.rng pl positions);
      ("gabriel", Baselines.Proximity.gabriel pl positions);
      ("mst", Baselines.Proximity.euclidean_mst pl positions);
      ("knn", Baselines.Proximity.knn pl positions ~k:3);
    ]
  in
  List.iter
    (fun positions ->
      let n = Array.length positions in
      List.iter
        (fun (name, g) ->
          Alcotest.(check int)
            (Fmt.str "%s keeps %d nodes" name n)
            n (Graphkit.Ugraph.nb_nodes g))
        (families positions))
    [ [||]; [| Geom.Vec2.zero |];
      [| Geom.Vec2.zero; Geom.Vec2.zero; Geom.Vec2.make 10. 0. |] ];
  let dup = [| Geom.Vec2.zero; Geom.Vec2.zero; Geom.Vec2.make 10. 0. |] in
  Alcotest.(check bool) "mst spans coincident nodes" true
    (Graphkit.Traversal.is_connected (Baselines.Proximity.euclidean_mst pl dup))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "baselines"
    [
      ( "families",
        [
          Alcotest.test_case "max power" `Quick test_max_power_is_gr;
          Alcotest.test_case "rng lune" `Quick test_rng_lune;
          Alcotest.test_case "gabriel" `Quick test_gabriel;
          Alcotest.test_case "mst" `Quick test_mst;
          Alcotest.test_case "knn" `Quick test_knn;
          Alcotest.test_case "radius_of" `Quick test_radius_of;
          Alcotest.test_case "degenerate inputs" `Quick test_degenerate_inputs;
        ] );
      ( "yao",
        [
          Alcotest.test_case "star" `Quick test_yao_star;
          Alcotest.test_case "edge budget" `Quick test_yao_edge_budget;
        ] );
      ( "smecn",
        [
          Alcotest.test_case "prunes dominated edge" `Quick
            test_smecn_prunes_dominated_edge;
          Alcotest.test_case "overhead keeps direct" `Quick
            test_smecn_overhead_keeps_direct;
        ] );
      ( "properties",
        qsuite
          [
            prop_inclusion_chain;
            prop_families_preserve_partition;
            prop_knn_out_degree;
            prop_yao_preserves_partition;
            prop_smecn_power_stretch_is_one;
            prop_smecn_equals_gabriel_quadratic_no_overhead;
          ] );
    ]
