(* Differential suite for the per-link propagation environment
   (Radio.Env).

   The load-bearing contract is bit-identity: a trivial environment
   (sigma = 0, no obstacles, no height loss) must take the exact
   pre-env code path at every wired site — Geo.run / Geo.run_flat, the
   proximity/Yao/SMECN baselines, and the daemon engine — at every pool
   size.  On top of that, the shadowing hash itself must be symmetric,
   deterministic in (shadow_seed, {u, v}), clamped, and the full env
   link power float-exactly symmetric (including obstacle crossings,
   whose segment-distance computation is canonicalized by node id). *)

let v2 = Geom.Vec2.make

let pl = Radio.Pathloss.make ~max_range:100. ()

let alpha56 = Geom.Angle.five_pi_six

let positions_gen =
  QCheck.Gen.(
    int_range 2 50 >>= fun n ->
    list_repeat n
      (pair (float_bound_exclusive 300.) (float_bound_exclusive 300.))
    >|= fun pts -> Array.of_list (List.map (fun (x, y) -> v2 x y) pts))

let growth_gen =
  QCheck.Gen.oneofl
    [ Cbtc.Config.Exact; Cbtc.Config.Double 25.;
      Cbtc.Config.Mult { p0 = 100.; factor = 3. } ]

(* A non-trivial environment over the 300x300 test field: shadowing plus
   a couple of obstacle discs plus height loss, all derived from one
   seed so properties shrink well. *)
let env_gen n =
  QCheck.Gen.(
    triple (float_range 0.5 8.) (int_range 0 1000) (int_range 0 3)
    >>= fun (sigma, shadow_seed, nobs) ->
    list_repeat nobs
      (triple
         (pair (float_bound_exclusive 300.) (float_bound_exclusive 300.))
         (float_range 5. 60.) (float_range 0.5 10.))
    >>= fun obs ->
    list_repeat n (float_bound_exclusive 30.) >|= fun heights ->
    let obstacles =
      Array.of_list
        (List.map
           (fun ((x, y), radius, loss_db) ->
             Radio.Env.obstacle ~center:(v2 x y) ~radius ~loss_db)
           obs)
    in
    Radio.Env.make ~sigma_db:sigma ~shadow_seed ~obstacles
      ~heights:(Array.of_list heights) ~height_loss_db:0.5 pl)

(* ---------- structural equality helpers (float-exact) ---------- *)

let neighbor_eq (a : Cbtc.Neighbor.t) (b : Cbtc.Neighbor.t) =
  a.id = b.id && a.dir = b.dir && a.link_power = b.link_power && a.tag = b.tag

let discovery_eq (a : Cbtc.Discovery.t) (b : Cbtc.Discovery.t) =
  Cbtc.Discovery.nb_nodes a = Cbtc.Discovery.nb_nodes b
  && Array.for_all2 (List.equal neighbor_eq) a.neighbors b.neighbors
  && a.power = b.power && a.boundary = b.boundary

let soa_eq (a : Cbtc.Soa.t) (b : Cbtc.Soa.t) =
  a.off = b.off && a.ids = b.ids && a.dirs = b.dirs && a.links = b.links
  && a.tags = b.tags && a.power = b.power && a.boundary = b.boundary

let graph_eq a b =
  let n = Graphkit.Ugraph.nb_nodes a in
  n = Graphkit.Ugraph.nb_nodes b
  && Graphkit.Ugraph.nb_edges a = Graphkit.Ugraph.nb_edges b
  &&
  let ok = ref true in
  for u = 0 to n - 1 do
    if Graphkit.Ugraph.neighbors a u <> Graphkit.Ugraph.neighbors b u then
      ok := false
  done;
  !ok

(* ---------- sigma = 0 bit-identity at every wired site ---------- *)

let trivial_env = Radio.Env.trivial pl

let prop_trivial_run_identical =
  QCheck.Test.make ~count:80
    ~name:"Geo.run: trivial env = no env, bit-exact, at -j 1/2/4"
    (QCheck.make QCheck.Gen.(pair positions_gen growth_gen))
    (fun (positions, growth) ->
      let config = Cbtc.Config.make ~growth alpha56 in
      let plain = Cbtc.Geo.run config pl positions in
      discovery_eq plain (Cbtc.Geo.run ~env:trivial_env config pl positions)
      && List.for_all
           (fun jobs ->
             Parallel.Pool.with_pool ~jobs (fun pool ->
                 discovery_eq plain
                   (Cbtc.Geo.run ~pool ~env:trivial_env config pl positions)))
           [ 2; 4 ])

let prop_trivial_run_flat_identical =
  QCheck.Test.make ~count:80
    ~name:"Geo.run_flat: trivial env = no env, array-exact"
    (QCheck.make QCheck.Gen.(pair positions_gen growth_gen))
    (fun (positions, growth) ->
      let config = Cbtc.Config.make ~growth alpha56 in
      soa_eq
        (Cbtc.Geo.run_flat config pl positions)
        (Cbtc.Geo.run_flat ~env:trivial_env config pl positions))

let prop_trivial_baselines_identical =
  QCheck.Test.make ~count:60
    ~name:"baselines (GR/RNG/Gabriel/MST/kNN/Yao/SMECN): trivial env = no env"
    (QCheck.make positions_gen)
    (fun positions ->
      let e = trivial_env in
      graph_eq
        (Baselines.Proximity.max_power pl positions)
        (Baselines.Proximity.max_power ~env:e pl positions)
      && graph_eq
           (Baselines.Proximity.rng pl positions)
           (Baselines.Proximity.rng ~env:e pl positions)
      && graph_eq
           (Baselines.Proximity.gabriel pl positions)
           (Baselines.Proximity.gabriel ~env:e pl positions)
      && graph_eq
           (Baselines.Proximity.euclidean_mst pl positions)
           (Baselines.Proximity.euclidean_mst ~env:e pl positions)
      && graph_eq
           (Baselines.Proximity.knn pl positions ~k:4)
           (Baselines.Proximity.knn ~env:e pl positions ~k:4)
      && graph_eq
           (Baselines.Yao.yao pl positions ~k:6)
           (Baselines.Yao.yao ~env:e pl positions ~k:6)
      &&
      let energy = Radio.Energy.make pl in
      graph_eq
        (Baselines.Smecn.smecn energy positions)
        (Baselines.Smecn.smecn ~env:e energy positions))

(* The daemon engine: a trivial env must leave the digest (full tracked
   state: positions, liveness, powers, boundary flags, neighbor rows)
   byte-identical through a little event history, at every pool size. *)
let prop_trivial_engine_identical =
  QCheck.Test.make ~count:30
    ~name:"daemon engine: trivial env = no env, digest-exact, -j 1/2/4"
    (QCheck.make QCheck.Gen.(pair positions_gen growth_gen))
    (fun (positions, growth) ->
      let n = Array.length positions in
      QCheck.assume (n >= 3);
      let config = Cbtc.Config.make ~growth alpha56 in
      let events =
        [
          { Daemon.Event.time = 0.1; node = 0;
            kind = Daemon.Event.Move (v2 10. 20.) };
          { Daemon.Event.time = 0.2; node = n - 1; kind = Daemon.Event.Leave };
          { Daemon.Event.time = 0.3; node = 1;
            kind = Daemon.Event.Move (v2 250. 250.) };
          { Daemon.Event.time = 0.4; node = n - 1;
            kind = Daemon.Event.Join (v2 150. 150.) };
        ]
      in
      let digest ?pool ?env () =
        let eng =
          Daemon.Engine.create ?pool ?env ~watchdog_frac:1. config pl positions
        in
        List.iter (Daemon.Engine.apply eng) events;
        ignore (Daemon.Engine.commit ?pool eng);
        Daemon.Engine.digest eng
      in
      let plain = digest () in
      String.equal plain (digest ~env:trivial_env ())
      && List.for_all
           (fun jobs ->
             Parallel.Pool.with_pool ~jobs (fun pool ->
                 String.equal plain (digest ~pool ~env:trivial_env ())))
           [ 2; 4 ])

(* ---------- shadowing hash properties ---------- *)

let pair_gen =
  QCheck.Gen.(
    triple (float_range 0.1 10.) (int_range 0 10_000)
      (pair (int_range 0 2000) (int_range 0 2000)))

let prop_shadow_symmetric_deterministic =
  QCheck.Test.make ~count:500
    ~name:"shadow_db: symmetric, seed-deterministic, clamped"
    (QCheck.make pair_gen)
    (fun (sigma, seed, (u, v)) ->
      let e = Radio.Env.make ~sigma_db:sigma ~shadow_seed:seed pl in
      let e' = Radio.Env.make ~sigma_db:sigma ~shadow_seed:seed pl in
      let x = Radio.Env.shadow_db e ~u ~v in
      (* float-exact symmetry *)
      x = Radio.Env.shadow_db e ~u:v ~v:u
      (* same (seed, pair) = same draw across independent envs *)
      && x = Radio.Env.shadow_db e' ~u ~v
      && Float.abs x <= Radio.Env.clamp_db e
      && Float.is_finite x)

let prop_shadow_seed_sensitive =
  QCheck.Test.make ~count:200
    ~name:"shadow_db: some pair separates different shadow seeds"
    (QCheck.make QCheck.Gen.(pair (int_range 0 10_000) (int_range 0 10_000)))
    (fun (s1, s2) ->
      QCheck.assume (s1 <> s2);
      let e1 = Radio.Env.make ~sigma_db:4. ~shadow_seed:s1 pl in
      let e2 = Radio.Env.make ~sigma_db:4. ~shadow_seed:s2 pl in
      (* one collision is conceivable; 32 independent pairs all
         colliding means the seed is not being mixed in *)
      let differs = ref false in
      for u = 0 to 31 do
        if
          Radio.Env.shadow_db e1 ~u ~v:(u + 1)
          <> Radio.Env.shadow_db e2 ~u ~v:(u + 1)
        then differs := true
      done;
      !differs)

let prop_link_power_symmetric =
  QCheck.Test.make ~count:200
    ~name:"link_power: float-exactly symmetric under full env"
    (QCheck.make
       QCheck.Gen.(
         positions_gen >>= fun positions ->
         env_gen (Array.length positions) >|= fun env -> (positions, env)))
    (fun (positions, env) ->
      let n = Array.length positions in
      QCheck.assume (n >= 2);
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          let pu = positions.(u) and pv = positions.(v) in
          let dist = Geom.Vec2.dist pu pv in
          let a = Radio.Env.link_power env ~u ~v ~pu ~pv ~dist in
          let b = Radio.Env.link_power env ~u:v ~v:u ~pu:pv ~pv:pu ~dist in
          if a <> b then ok := false
        done
      done;
      !ok)

let prop_probe_radius_bounds_support =
  QCheck.Test.make ~count:200
    ~name:"probe_radius bounds the support of env reaches"
    (QCheck.make
       QCheck.Gen.(
         positions_gen >>= fun positions ->
         env_gen (Array.length positions) >|= fun env -> (positions, env)))
    (fun (positions, env) ->
      let n = Array.length positions in
      QCheck.assume (n >= 2);
      let power = Radio.Pathloss.max_power pl in
      let reach = Radio.Env.max_reach env in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          let pu = positions.(u) and pv = positions.(v) in
          let dist = Geom.Vec2.dist pu pv in
          if
            Radio.Env.reaches env ~power ~u ~v ~pu ~pv ~dist
            && dist > reach
          then ok := false
        done
      done;
      !ok)

(* ---------- sigma > 0: flat = boxed, and -j independence ---------- *)

let prop_env_run_flat_matches_run =
  QCheck.Test.make ~count:60
    ~name:"sigma > 0: Soa.to_discovery (run_flat ~env) = run ~env"
    (QCheck.make
       QCheck.Gen.(
         pair positions_gen growth_gen >>= fun (positions, growth) ->
         env_gen (Array.length positions) >|= fun env ->
         (positions, growth, env)))
    (fun (positions, growth, env) ->
      let config = Cbtc.Config.make ~growth alpha56 in
      discovery_eq
        (Cbtc.Soa.to_discovery (Cbtc.Geo.run_flat ~env config pl positions))
        (Cbtc.Geo.run ~env config pl positions))

let prop_env_pool_identical =
  QCheck.Test.make ~count:30
    ~name:"sigma > 0: run_flat sequential = -j 2 = -j 4, array-exact"
    (QCheck.make
       QCheck.Gen.(
         pair positions_gen growth_gen >>= fun (positions, growth) ->
         env_gen (Array.length positions) >|= fun env ->
         (positions, growth, env)))
    (fun (positions, growth, env) ->
      let config = Cbtc.Config.make ~growth alpha56 in
      let seq = Cbtc.Geo.run_flat ~env config pl positions in
      List.for_all
        (fun jobs ->
          Parallel.Pool.with_pool ~jobs (fun pool ->
              soa_eq seq (Cbtc.Geo.run_flat ~pool ~env config pl positions)))
        [ 2; 4 ])

(* The daemon under a non-trivial env: incremental regrowth must still
   equal a full recompute (the probe radius and dirty cut are env-aware,
   and link symmetry keeps discovery well-defined). *)
let prop_env_engine_equivalence =
  QCheck.Test.make ~count:20
    ~name:"sigma > 0: engine incremental = full recompute"
    (QCheck.make
       QCheck.Gen.(
         pair positions_gen growth_gen >>= fun (positions, growth) ->
         env_gen (Array.length positions) >|= fun env ->
         (positions, growth, env)))
    (fun (positions, growth, env) ->
      let n = Array.length positions in
      QCheck.assume (n >= 3);
      let config = Cbtc.Config.make ~growth alpha56 in
      let eng =
        Daemon.Engine.create ~env ~watchdog_frac:2. config pl positions
      in
      let events =
        [
          { Daemon.Event.time = 0.1; node = 0;
            kind = Daemon.Event.Move (v2 10. 20.) };
          { Daemon.Event.time = 0.2; node = n - 1; kind = Daemon.Event.Leave };
          { Daemon.Event.time = 0.3; node = 1;
            kind = Daemon.Event.Move (v2 250. 250.) };
          { Daemon.Event.time = 0.4; node = n - 1;
            kind = Daemon.Event.Join (v2 150. 150.) };
          { Daemon.Event.time = 0.5; node = n / 2;
            kind = Daemon.Event.Move (v2 40. 260.) };
        ]
      in
      List.for_all
        (fun ev ->
          Daemon.Engine.apply eng ev;
          ignore (Daemon.Engine.commit eng);
          match Daemon.Engine.check_full_equivalence eng with
          | Ok () -> true
          | Error _ -> false)
        events)

(* ---------- unit cases ---------- *)

let test_trivial_detection () =
  Alcotest.(check bool) "trivial pl" true (Radio.Env.is_trivial trivial_env);
  Alcotest.(check bool) "sigma = 0 make" true
    (Radio.Env.is_trivial (Radio.Env.make pl));
  Alcotest.(check bool) "sigma > 0" false
    (Radio.Env.is_trivial (Radio.Env.make ~sigma_db:1. pl));
  let ob = Radio.Env.obstacle ~center:(v2 0. 0.) ~radius:10. ~loss_db:3. in
  Alcotest.(check bool) "obstacles" false
    (Radio.Env.is_trivial (Radio.Env.make ~obstacles:[| ob |] pl));
  (* heights without a loss coefficient stay trivial *)
  Alcotest.(check bool) "heights, zero coeff" true
    (Radio.Env.is_trivial (Radio.Env.make ~heights:[| 1.; 2. |] pl))

let test_make_validation () =
  let rejects name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: accepted" name
  in
  rejects "negative sigma" (fun () -> Radio.Env.make ~sigma_db:(-1.) pl);
  rejects "nan sigma" (fun () -> Radio.Env.make ~sigma_db:Float.nan pl);
  rejects "negative clamp" (fun () ->
      Radio.Env.make ~sigma_db:1. ~clamp_db:(-1.) pl);
  rejects "nan height" (fun () -> Radio.Env.make ~heights:[| Float.nan |] pl);
  rejects "bad obstacle radius" (fun () ->
      Radio.Env.obstacle ~center:(v2 0. 0.) ~radius:0. ~loss_db:1.);
  rejects "negative obstacle loss" (fun () ->
      Radio.Env.obstacle ~center:(v2 0. 0.) ~radius:1. ~loss_db:(-1.))

let test_obstacle_crossing () =
  let ob = Radio.Env.obstacle ~center:(v2 50. 0.) ~radius:10. ~loss_db:7. in
  let env = Radio.Env.make ~obstacles:[| ob |] pl in
  (* segment through the disc pays the loss *)
  Alcotest.(check (float 1e-9)) "crossing" 7.
    (Radio.Env.excess_db env ~u:0 ~v:1 ~pu:(v2 0. 0.) ~pv:(v2 100. 0.));
  (* parallel segment far away does not *)
  Alcotest.(check (float 1e-9)) "clear" 0.
    (Radio.Env.excess_db env ~u:0 ~v:1 ~pu:(v2 0. 50.) ~pv:(v2 100. 50.));
  (* endpoints inside count as crossing *)
  Alcotest.(check (float 1e-9)) "endpoint inside" 7.
    (Radio.Env.excess_db env ~u:0 ~v:1 ~pu:(v2 50. 0.) ~pv:(v2 200. 0.))

let test_height_loss () =
  let env =
    Radio.Env.make ~heights:[| 0.; 10.; 4. |] ~height_loss_db:0.5 pl
  in
  Alcotest.(check (float 1e-9)) "pair 0-1" 5.
    (Radio.Env.excess_db env ~u:0 ~v:1 ~pu:(v2 0. 0.) ~pv:(v2 1. 0.));
  Alcotest.(check (float 1e-9)) "pair 1-2" 3.
    (Radio.Env.excess_db env ~u:1 ~v:2 ~pu:(v2 0. 0.) ~pv:(v2 1. 0.));
  (* nodes beyond the heights array carry height 0 *)
  Alcotest.(check (float 1e-9)) "beyond array" 0.
    (Radio.Env.excess_db env ~u:5 ~v:6 ~pu:(v2 0. 0.) ~pv:(v2 1. 0.))

let test_rx_power_roundtrip () =
  (* the estimation assumption lifted to the env: estimate_link_power
     over env rx_power recovers the realized link power (d >= d0) *)
  let env = Radio.Env.make ~sigma_db:4. ~shadow_seed:9 pl in
  let pu = v2 0. 0. and pv = v2 60. 0. in
  let dist = 60. in
  let tx = Radio.Pathloss.max_power pl in
  let rx = Radio.Env.rx_power env ~tx_power:tx ~u:3 ~v:7 ~pu ~pv ~dist in
  let est = Radio.Pathloss.estimate_link_power pl ~tx_power:tx ~rx_power:rx in
  let realized = Radio.Env.link_power env ~u:3 ~v:7 ~pu ~pv ~dist in
  Alcotest.(check bool) "recovers realized link power" true
    (Float.abs (est -. realized) /. realized < 1e-9)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "env"
    [
      ( "sigma = 0 bit-identity",
        qsuite
          [
            prop_trivial_run_identical;
            prop_trivial_run_flat_identical;
            prop_trivial_baselines_identical;
            prop_trivial_engine_identical;
          ] );
      ( "shadowing hash",
        qsuite
          [
            prop_shadow_symmetric_deterministic;
            prop_shadow_seed_sensitive;
            prop_link_power_symmetric;
            prop_probe_radius_bounds_support;
          ] );
      ( "sigma > 0 discovery",
        qsuite
          [
            prop_env_run_flat_matches_run;
            prop_env_pool_identical;
            prop_env_engine_equivalence;
          ] );
      ( "unit",
        [
          Alcotest.test_case "trivial detection" `Quick test_trivial_detection;
          Alcotest.test_case "make validation" `Quick test_make_validation;
          Alcotest.test_case "obstacle crossing" `Quick test_obstacle_crossing;
          Alcotest.test_case "height loss" `Quick test_height_loss;
          Alcotest.test_case "rx-power round-trip" `Quick
            test_rx_power_roundtrip;
        ] );
    ]
