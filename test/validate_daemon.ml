(* Schema validator for <out>/daemon.json (schema 2), run by the
   @bench-smoke alias: the document must carry schema/results, and every
   result row must have the full column set with the right types — bench
   (string), n (positive int), events/commits/full_recomputes/regrown
   (ints >= 0, with full_recomputes <= commits), incremental_fraction
   (number in [0, 1]), peak_rss_kb (int or null), allocations_mb /
   events_per_s / wall_s (number or null), topology_digest (string), and
   a grid health object with non-negative drifted/overflow/compactions.
   Exits non-zero naming the offending row. *)

let fail fmt =
  Fmt.kstr
    (fun msg ->
      Fmt.epr "validate_daemon: %s@." msg;
      exit 1)
    fmt

let num = function
  | Some (Obs.Jsonl.Float f) -> Some f
  | Some (Obs.Jsonl.Int i) -> Some (Stdlib.float_of_int i)
  | _ -> None

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
        Fmt.epr "usage: validate_daemon DAEMON.json@.";
        exit 2
  in
  let contents =
    match open_in path with
    | exception Sys_error e ->
        Fmt.epr "validate_daemon: %s@." e;
        exit 2
    | ic ->
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        s
  in
  let doc =
    try Obs.Jsonl.of_string contents
    with Obs.Jsonl.Parse_error e -> fail "unparsable JSON: %s" e
  in
  (match Obs.Jsonl.member "schema" doc with
  | Some (Obs.Jsonl.Int 2) -> ()
  | Some (Obs.Jsonl.Int v) -> fail "unsupported schema %d (expected 2)" v
  | _ -> fail "missing integer field \"schema\"");
  let results =
    match Obs.Jsonl.member "results" doc with
    | Some (Obs.Jsonl.List rows) -> rows
    | _ -> fail "missing list field \"results\""
  in
  if results = [] then fail "\"results\" is empty";
  List.iteri
    (fun i row ->
      let ctx = Fmt.str "results[%d]" i in
      (match Obs.Jsonl.member "bench" row with
      | Some (Obs.Jsonl.Str _) -> ()
      | _ -> fail "%s: missing string field \"bench\"" ctx);
      let n =
        match Obs.Jsonl.member "n" row with
        | Some (Obs.Jsonl.Int n) when n > 0 -> n
        | _ -> fail "%s: missing positive integer \"n\"" ctx
      in
      let ctx = Fmt.str "%s (n=%d)" ctx n in
      let counter name =
        match Obs.Jsonl.member name row with
        | Some (Obs.Jsonl.Int v) when v >= 0 -> v
        | _ -> fail "%s: missing non-negative integer %S" ctx name
      in
      ignore (counter "events" : int);
      ignore (counter "regrown" : int);
      let commits = counter "commits" in
      let fulls = counter "full_recomputes" in
      if fulls > commits then
        fail "%s: full_recomputes %d exceeds commits %d" ctx fulls commits;
      (match num (Obs.Jsonl.member "incremental_fraction" row) with
      | Some f when f >= 0. && f <= 1. -> ()
      | _ -> fail "%s: \"incremental_fraction\" must be a number in [0,1]" ctx);
      (match Obs.Jsonl.member "peak_rss_kb" row with
      | Some Obs.Jsonl.Null | Some (Obs.Jsonl.Int _) -> ()
      | _ -> fail "%s: \"peak_rss_kb\" must be an integer or null" ctx);
      List.iter
        (fun name ->
          match Obs.Jsonl.member name row with
          | Some Obs.Jsonl.Null -> ()
          | v when num v <> None -> ()
          | _ -> fail "%s: %S must be a number or null" ctx name)
        [ "allocations_mb"; "events_per_s"; "wall_s" ];
      (match Obs.Jsonl.member "topology_digest" row with
      | Some (Obs.Jsonl.Str _) -> ()
      | _ -> fail "%s: missing string field \"topology_digest\"" ctx);
      match Obs.Jsonl.member "grid" row with
      | Some (Obs.Jsonl.Obj _ as g) ->
          List.iter
            (fun name ->
              match Obs.Jsonl.member name g with
              | Some (Obs.Jsonl.Int v) when v >= 0 -> ()
              | _ ->
                  fail "%s: grid.%s must be a non-negative integer" ctx name)
            [ "drifted"; "overflow"; "compactions" ]
      | _ -> fail "%s: missing object field \"grid\"" ctx)
    results;
  Fmt.pr "validate_daemon: %s OK (%d rows)@." path (List.length results)
