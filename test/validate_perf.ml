(* Schema validator for <out>/perf.json (schema 2), run by the
   @bench-smoke alias: the document must carry schema/unit/results, and
   every result row must have the full column set with the right types —
   bench (string), n (positive int), grid_s (float >= 0), brute_s and
   speedup (float or null), peak_rss_kb (int or null), allocations_mb
   (float or null).  Exits non-zero naming the offending row. *)

let fail fmt =
  Fmt.kstr
    (fun msg ->
      Fmt.epr "validate_perf: %s@." msg;
      exit 1)
    fmt

let num = function
  | Some (Obs.Jsonl.Float f) -> Some f
  | Some (Obs.Jsonl.Int i) -> Some (Stdlib.float_of_int i)
  | _ -> None

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
        Fmt.epr "usage: validate_perf PERF.json@.";
        exit 2
  in
  let contents =
    match open_in path with
    | exception Sys_error e ->
        Fmt.epr "validate_perf: %s@." e;
        exit 2
    | ic ->
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        s
  in
  let doc =
    try Obs.Jsonl.of_string contents
    with Obs.Jsonl.Parse_error e -> fail "unparsable JSON: %s" e
  in
  (match Obs.Jsonl.member "schema" doc with
  | Some (Obs.Jsonl.Int 2) -> ()
  | Some (Obs.Jsonl.Int v) -> fail "unsupported schema %d (expected 2)" v
  | _ -> fail "missing integer field \"schema\"");
  (match Obs.Jsonl.member "unit" doc with
  | Some (Obs.Jsonl.Str "seconds") -> ()
  | _ -> fail "missing field \"unit\" = \"seconds\"");
  let results =
    match Obs.Jsonl.member "results" doc with
    | Some (Obs.Jsonl.List rows) -> rows
    | _ -> fail "missing list field \"results\""
  in
  if results = [] then fail "\"results\" is empty";
  List.iteri
    (fun i row ->
      let ctx = Fmt.str "results[%d]" i in
      let bench =
        match Obs.Jsonl.member "bench" row with
        | Some (Obs.Jsonl.Str s) -> s
        | _ -> fail "%s: missing string field \"bench\"" ctx
      in
      let ctx = Fmt.str "%s (%s)" ctx bench in
      (match Obs.Jsonl.member "n" row with
      | Some (Obs.Jsonl.Int n) when n > 0 -> ()
      | _ -> fail "%s: missing positive integer \"n\"" ctx);
      (match num (Obs.Jsonl.member "grid_s" row) with
      | Some g when g >= 0. -> ()
      | _ -> fail "%s: missing non-negative number \"grid_s\"" ctx);
      (match Obs.Jsonl.member "brute_s" row with
      | Some Obs.Jsonl.Null -> ()
      | v when num v <> None -> ()
      | _ -> fail "%s: \"brute_s\" must be a number or null" ctx);
      (match Obs.Jsonl.member "speedup" row with
      | Some Obs.Jsonl.Null -> ()
      | v when num v <> None -> ()
      | _ -> fail "%s: \"speedup\" must be a number or null" ctx);
      (match Obs.Jsonl.member "peak_rss_kb" row with
      | Some Obs.Jsonl.Null | Some (Obs.Jsonl.Int _) -> ()
      | _ -> fail "%s: \"peak_rss_kb\" must be an integer or null" ctx);
      (match Obs.Jsonl.member "allocations_mb" row with
      | Some Obs.Jsonl.Null -> ()
      | v when num v <> None -> ()
      | _ -> fail "%s: \"allocations_mb\" must be a number or null" ctx))
    results;
  Fmt.pr "validate_perf: %s OK (%d rows)@." path (List.length results)
