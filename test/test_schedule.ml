(* Tests for the energy-aware cover-set scheduler (Lifetime.Schedule):
   float-exact energy conservation against an independent replay of the
   charge stream, bit-identical differential oracle against Gather.run
   in the passive configuration, and the correlated-failure regressions
   that bridge load-driven deaths into Faults/Reconfig. *)

module S = Lifetime.Schedule

let pl120 = Radio.Pathloss.make ~max_range:120. ()

(* Small batteries so random placements actually reach deaths and
   partition within a short horizon. *)
let quick_params =
  { Lifetime.Gather.default_params with capacity = 2e6; max_rounds = 150 }

(* Keep the randomized suites affordable: one cheap proximity family per
   seed plus CBTC on a sub-slice. *)
let family_of_seed seed =
  match seed mod 4 with
  | 0 -> S.Max_power
  | 1 -> S.Rng
  | 2 -> S.Knn 4
  | _ -> S.Cbtc Geom.Angle.five_pi_six

let policy_of_seed seed =
  if seed mod 5 = 0 then S.passive
  else
    {
      S.rotation_period = 1 + (seed mod 17);
      duty = [| 0.; 0.35; 1. |].(seed mod 3);
      idle_listen = float_of_int (seed mod 3) *. 400.;
      seed;
    }

let arb_scenario =
  QCheck.pair Gen_common.positions_arb QCheck.(int_bound 1000)

(* ---------- satellite: float-exact energy conservation ---------- *)

let prop_conservation =
  QCheck.Test.make ~count:40
    ~name:"conservation: ledger == charge-stream replay, float-exact"
    arb_scenario
    (fun (positions, seed) ->
      let n = Array.length positions in
      let replay =
        Array.init 4 (fun _ -> Array.make n 0.)
      in
      let on_charge cat u amount =
        let i =
          match cat with S.Tx -> 0 | S.Rx -> 1 | S.Overhear -> 2 | S.Idle -> 3
        in
        replay.(i).(u) <- replay.(i).(u) +. amount
      in
      let r =
        S.run ~params:quick_params ~policy:(policy_of_seed seed) ~on_charge
          pl120 positions ~sink:0
          ~topology:(S.family_builder (family_of_seed seed) pl120)
      in
      let led = r.S.ledger in
      let exact = Float.equal in
      let per_node_ok = ref true in
      for u = 0 to n - 1 do
        let ok =
          exact led.S.tx.(u) replay.(0).(u)
          && exact led.S.rx.(u) replay.(1).(u)
          && exact led.S.overhear.(u) replay.(2).(u)
          && exact led.S.idle.(u) replay.(3).(u)
          && (u = 0
             || exact led.S.residual.(u)
                  (quick_params.Lifetime.Gather.capacity
                  -. (((replay.(0).(u) +. replay.(1).(u)) +. replay.(2).(u))
                     +. replay.(3).(u))))
        in
        if not ok then per_node_ok := false
      done;
      let sum a =
        let acc = ref 0. in
        for u = 0 to n - 1 do
          acc := !acc +. a.(u)
        done;
        !acc
      in
      let tx_t = sum replay.(0)
      and rx_t = sum replay.(1)
      and oh_t = sum replay.(2)
      and idle_t = sum replay.(3) in
      !per_node_ok
      && exact r.S.tx_total tx_t
      && exact r.S.rx_total rx_t
      && exact r.S.overhear_total oh_t
      && exact r.S.idle_total idle_t
      && exact r.S.consumed_energy (((tx_t +. rx_t) +. oh_t) +. idle_t)
      (* the conservation identity itself, float-exact *)
      && exact
           (r.S.initial_energy -. r.S.consumed_energy)
           r.S.residual_energy
      && exact r.S.initial_energy
           (float_of_int (n - 1) *. quick_params.Lifetime.Gather.capacity)
      (* the sink is mains-powered: never charged *)
      && exact led.S.tx.(0) 0.
      && exact led.S.rx.(0) 0.
      && exact led.S.overhear.(0) 0.
      && exact led.S.idle.(0) 0.)

(* ---------- satellite: differential oracle against Gather.run ---------- *)

let outcomes_equal (a : Lifetime.Gather.outcome) (b : Lifetime.Gather.outcome)
    =
  a.Lifetime.Gather.first_death = b.Lifetime.Gather.first_death
  && a.Lifetime.Gather.half_dead = b.Lifetime.Gather.half_dead
  && a.Lifetime.Gather.sink_partition = b.Lifetime.Gather.sink_partition
  && a.Lifetime.Gather.rounds_completed = b.Lifetime.Gather.rounds_completed
  && a.Lifetime.Gather.packets_delivered = b.Lifetime.Gather.packets_delivered
  && a.Lifetime.Gather.packets_dropped = b.Lifetime.Gather.packets_dropped
  && a.Lifetime.Gather.deaths = b.Lifetime.Gather.deaths

let prop_passive_reproduces_gather =
  QCheck.Test.make ~count:30
    ~name:
      "rotation off + duty-cycling off: Schedule.run == Gather.run \
       bit-identically"
    arb_scenario
    (fun (positions, seed) ->
      let topology = S.family_builder (family_of_seed seed) pl120 in
      let reference =
        Lifetime.Gather.run ~params:quick_params pl120 positions ~sink:0
          ~topology
      in
      let r =
        S.run ~params:quick_params ~policy:S.passive pl120 positions ~sink:0
          ~topology
      in
      outcomes_equal reference r.S.outcome
      && r.S.epochs = 0 && r.S.cover_sets = 0)

(* ---------- satellite: correlated-failure regressions ---------- *)

(* Sink at the origin, two interchangeable relays, two leaves that can
   only reach the sink through a relay (and sit > 100 apart, so they
   never overhear each other).  Max power everywhere, so the passive
   Dijkstra deterministically funnels both leaves through one relay,
   which dies first; the scheduler elects a single awake relay per
   epoch, puts the other to sleep (no overhearing tax), and rotates the
   funnel between the two every epoch. *)
let relay_positions =
  [|
    Geom.Vec2.make 0. 0. (* sink *);
    Geom.Vec2.make 80. 10. (* relay r1 *);
    Geom.Vec2.make 80. (-10.) (* relay r2 *);
    Geom.Vec2.make 150. 60.;
    Geom.Vec2.make 150. (-60.);
  |]

let pl100 = Radio.Pathloss.make ~max_range:100. ()

let relay_params =
  (* ~60 relay transmissions per battery (deaths well inside the
     horizon) at a radio-realistic listening cost: rx comparable to a
     full-range transmission, so sleeping actually saves energy *)
  let per_tx = Radio.Pathloss.power_for_distance pl100 100. +. 5000. in
  { Lifetime.Gather.default_params with capacity = 60. *. per_tx;
    rx_overhead = 20000.; max_rounds = 500 }

let test_rotation_spreads_relay_load () =
  let topology = S.family_builder S.Max_power pl100 in
  let passive =
    S.run ~params:relay_params ~policy:S.passive pl100 relay_positions
      ~sink:0 ~topology
  in
  let scheduled =
    S.run ~params:relay_params
      ~policy:{ S.default_policy with rotation_period = 2 }
      pl100 relay_positions ~sink:0 ~topology
  in
  let first_casualty r =
    match r.S.outcome.Lifetime.Gather.deaths with
    | (_, u) :: _ -> u
    | [] -> Alcotest.fail "expected at least one death"
  in
  let relay = first_casualty passive in
  Alcotest.(check bool)
    "passive: a relay dies first" true
    (relay = 1 || relay = 2);
  let p_first =
    match passive.S.outcome.Lifetime.Gather.first_death with
    | Some r -> r
    | None -> Alcotest.fail "passive: no death"
  in
  let s_first =
    match scheduled.S.outcome.Lifetime.Gather.first_death with
    | Some r -> r
    | None -> Alcotest.fail "scheduled: no death"
  in
  Alcotest.(check bool)
    (Fmt.str "rotation delays the first death (%d > %d)" s_first p_first)
    true (s_first > p_first);
  Alcotest.(check bool)
    (Fmt.str "rotation extends total lifetime (%d > %d)"
       (S.total_lifetime scheduled) (S.total_lifetime passive))
    true
    (S.total_lifetime scheduled > S.total_lifetime passive);
  Alcotest.(check bool) "several cover sets were generated" true
    (scheduled.S.cover_sets >= 2);
  Alcotest.(check bool) "epochs bound cover sets" true
    (scheduled.S.cover_sets <= scheduled.S.epochs)

let test_deaths_plan_and_reconfig_healing () =
  let sc = Workload.Scenario.make ~n:30 ~seed:11 () in
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  let r =
    S.run
      ~params:{ Lifetime.Gather.default_params with capacity = 2e6 }
      ~policy:S.default_policy pl positions ~sink:0
      ~topology:(S.family_builder S.Max_power pl)
  in
  let deaths = r.S.outcome.Lifetime.Gather.deaths in
  Alcotest.(check bool) "the load drove some deaths" true (deaths <> []);
  let plan = S.deaths_plan ~round_time:10. r in
  Alcotest.(check (list int))
    "plan crashes exactly the casualties"
    (List.sort_uniq compare (List.map snd deaths))
    (Faults.Plan.crashed_nodes plan);
  let times = List.map (fun e -> e.Faults.Plan.time) (Faults.Plan.events plan) in
  Alcotest.(check bool) "crash times are chronological" true
    (List.sort compare times = times);
  (* Replay the first load-driven casualty into a maintained network:
     healing must converge and leave the survivor guarantees intact
     (check_stable runs Verify.surviving underneath). *)
  let config =
    Cbtc.Config.make ~growth:(Cbtc.Config.Double 100.)
      Geom.Angle.five_pi_six
  in
  let rc = Cbtc.Reconfig.create config pl positions in
  Cbtc.Reconfig.run_for rc ~duration:400.;
  (match List.map snd deaths with
  | [] -> ()
  | first :: _ -> Cbtc.Reconfig.crash rc first);
  Cbtc.Reconfig.run_for rc ~duration:400.;
  (match Cbtc.Reconfig.check_stable rc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "healed network fails verification: %s" e)

(* ---------- scheduler beats the passive baseline ---------- *)

let test_scheduler_extends_lifetime_max_power () =
  let sc = Workload.Scenario.make ~n:40 ~seed:42 () in
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  (* Radio-realistic listening cost: at the library default
     (rx_overhead = 2000 vs p(R) = 250000) overhearing is a rounding
     error and no sleeping discipline can matter; with rx comparable to
     a transmission — the regime the paper's interference argument is
     about — the cover-set scheduler's savings dominate. *)
  let params =
    { Lifetime.Gather.default_params with
      capacity = 5e7; rx_overhead = 20000.; max_rounds = 4000 }
  in
  let topology = S.family_builder S.Max_power pl in
  let passive = S.run ~params ~policy:S.passive pl positions ~sink:0 ~topology in
  let scheduled =
    S.run ~params ~policy:S.default_policy pl positions ~sink:0 ~topology
  in
  Alcotest.(check bool)
    (Fmt.str "scheduled lifetime %d > passive %d"
       (S.total_lifetime scheduled) (S.total_lifetime passive))
    true
    (S.total_lifetime scheduled > S.total_lifetime passive)

(* ---------- policy and family plumbing ---------- *)

let contains ~affix s =
  let ls = String.length s and la = String.length affix in
  let rec at i = i + la <= ls && (String.sub s i la = affix || at (i + 1)) in
  at 0

let test_policy_validation () =
  let bad p msg =
    match S.validate_policy p with
    | Error e ->
        Alcotest.(check bool) (Fmt.str "mentions %S" msg) true
          (contains ~affix:msg e)
    | Ok () -> Alcotest.failf "policy accepted: %s" msg
  in
  bad { S.default_policy with rotation_period = -1 } "rotation period";
  bad { S.default_policy with duty = 1.5 } "duty";
  bad { S.default_policy with duty = Float.nan } "duty";
  bad { S.default_policy with idle_listen = -1. } "idle-listen";
  bad { S.passive with duty = 0.5 } "rotation period";
  (match S.validate_policy S.passive with
  | Ok () -> ()
  | Error e -> Alcotest.failf "passive policy rejected: %s" e);
  Alcotest.check_raises "run rejects a bad policy"
    (Invalid_argument "Schedule.run: rotation period must be >= 0")
    (fun () ->
      ignore
        (S.run
           ~policy:{ S.default_policy with rotation_period = -1 }
           pl100 relay_positions ~sink:0
           ~topology:(S.family_builder S.Max_power pl100)))

let test_family_of_string () =
  let ok s f =
    match S.family_of_string s with
    | Ok f' -> Alcotest.(check string) s (S.family_label f) (S.family_label f')
    | Error e -> Alcotest.failf "%s rejected: %s" s e
  in
  ok "max-power" S.Max_power;
  ok "cbtc" (S.Cbtc Geom.Angle.five_pi_six);
  ok "cbtc:2pi/3" (S.Cbtc Geom.Angle.two_pi_three);
  ok "yao:8" (S.Yao 8);
  ok "rng" S.Rng;
  ok "gabriel" S.Gabriel;
  ok "knn:4" (S.Knn 4);
  ok "mst" S.Mst;
  (match S.family_of_string "frisbee" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown family accepted");
  (match S.family_of_string "yao:0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "yao:0 accepted")

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "schedule"
    [
      ( "invariants",
        qsuite [ prop_conservation; prop_passive_reproduces_gather ] );
      ( "correlated-failures",
        [
          Alcotest.test_case "rotation spreads relay load" `Quick
            test_rotation_spreads_relay_load;
          Alcotest.test_case "deaths plan + reconfig healing" `Quick
            test_deaths_plan_and_reconfig_healing;
        ] );
      ( "lifetime",
        [
          Alcotest.test_case "scheduler beats passive (max power)" `Quick
            test_scheduler_extends_lifetime_max_power;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "policy validation" `Quick test_policy_validation;
          Alcotest.test_case "family parsing" `Quick test_family_of_string;
        ] );
    ]
