(* Tests for the three optimizations of Section 3: shrink-back,
   asymmetric edge removal (via Discovery.core), and pairwise redundant
   edge removal. *)

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let alpha56 = Geom.Angle.five_pi_six

let pl = Radio.Pathloss.make ~max_range:100. ()

let run ?growth positions =
  Cbtc.Geo.run (Cbtc.Config.make ?growth alpha56) pl positions

let neighbor_ids (d : Cbtc.Discovery.t) u =
  List.sort Int.compare
    (List.map (fun (n : Cbtc.Neighbor.t) -> n.Cbtc.Neighbor.id) d.neighbors.(u))

(* ---------- shrink-back ---------- *)

let test_shrink_drops_non_contributing_far_node () =
  (* Node 0 is a boundary node (half-plane coverage only).  Nodes 1-3 at
     distance 5 cover directions 0, 90, 180; node 4 sits far away at
     direction 90, contributing nothing new.  Shrink-back must drop it
     and lower node 0's power from P to p(5). *)
  let positions =
    [| Geom.Vec2.zero; Geom.Vec2.make 5. 0.; Geom.Vec2.make 0. 5.;
       Geom.Vec2.make (-5.) 0.; Geom.Vec2.make 0. 80. |]
  in
  let d = run positions in
  Alcotest.(check bool) "node 0 is boundary" true d.boundary.(0);
  Alcotest.(check (list int)) "before: all four" [ 1; 2; 3; 4 ] (neighbor_ids d 0);
  check_float "before: max power" (Radio.Pathloss.max_power pl) d.power.(0);
  let s = Cbtc.Optimize.shrink_back d in
  Alcotest.(check (list int)) "after: far node dropped" [ 1; 2; 3 ]
    (neighbor_ids s 0);
  check_float "after: power p(5)" (Radio.Pathloss.power_for_distance pl 5.)
    s.power.(0);
  Alcotest.(check bool) "still flagged boundary" true s.boundary.(0)

let test_shrink_keeps_contributing_far_node () =
  (* Same, but the far node covers an otherwise-empty direction: kept. *)
  let positions =
    [| Geom.Vec2.zero; Geom.Vec2.make 5. 0.; Geom.Vec2.make 0. 5.;
       Geom.Vec2.make 0. (-80.) |]
  in
  let d = run positions in
  let s = Cbtc.Optimize.shrink_back d in
  Alcotest.(check (list int)) "far contributor kept" [ 1; 2; 3 ]
    (neighbor_ids s 0)

let test_shrink_neighbors_empty () =
  Alcotest.(check bool) "empty list" true
    (Cbtc.Optimize.shrink_neighbors ~alpha:alpha56 [] = ([], None))

let positions_gen =
  QCheck.Gen.(
    int_range 2 40 >>= fun n ->
    list_repeat n (pair (float_bound_exclusive 300.) (float_bound_exclusive 300.))
    >|= fun pts -> Array.of_list (List.map (fun (x, y) -> Geom.Vec2.make x y) pts))

let prop_shrink_is_reduction =
  QCheck.Test.make ~count:50
    ~name:"shrink-back only removes neighbors and only lowers power"
    (QCheck.make positions_gen)
    (fun positions ->
      let d = run ~growth:(Cbtc.Config.Double 25.) positions in
      let s = Cbtc.Optimize.shrink_back d in
      let ok = ref true in
      for u = 0 to Array.length positions - 1 do
        if s.power.(u) > d.power.(u) +. 1e-9 then ok := false;
        if
          not
            (List.for_all
               (fun v -> List.mem v (neighbor_ids d u))
               (neighbor_ids s u))
        then ok := false
      done;
      !ok)

let prop_shrink_idempotent =
  QCheck.Test.make ~count:50 ~name:"shrink-back is idempotent"
    (QCheck.make positions_gen)
    (fun positions ->
      let d = run ~growth:(Cbtc.Config.Double 25.) positions in
      let s1 = Cbtc.Optimize.shrink_back d in
      let s2 = Cbtc.Optimize.shrink_back s1 in
      let ok = ref true in
      for u = 0 to Array.length positions - 1 do
        if neighbor_ids s1 u <> neighbor_ids s2 u then ok := false;
        if Float.abs (s1.power.(u) -. s2.power.(u)) > 1e-12 then ok := false
      done;
      !ok)

let prop_shrink_preserves_coverage =
  QCheck.Test.make ~count:50
    ~name:"shrink-back preserves each node's angular coverage"
    (QCheck.make positions_gen)
    (fun positions ->
      let d = run positions in
      let s = Cbtc.Optimize.shrink_back d in
      let cover (x : Cbtc.Discovery.t) u =
        Geom.Dirset.cover ~alpha:alpha56
          (Cbtc.Neighbor.directions x.neighbors.(u))
      in
      let ok = ref true in
      for u = 0 to Array.length positions - 1 do
        if not (Geom.Arcset.equal (cover d u) (cover s u)) then ok := false
      done;
      !ok)

(* Reference spec for shrink_neighbors, written exactly as Section 3.1
   states it: try each tag prefix from the lowest, recomputing its whole
   coverage, until coverage matches the full set.  The production code
   walks tag classes incrementally; results must agree bit-for-bit. *)
let shrink_neighbors_spec ~alpha neighbors =
  match neighbors with
  | [] -> ([], None)
  | _ :: _ ->
      let full_cover =
        Geom.Dirset.cover ~alpha (Cbtc.Neighbor.directions neighbors)
      in
      let tags =
        List.sort_uniq Float.compare
          (List.map (fun (nb : Cbtc.Neighbor.t) -> nb.Cbtc.Neighbor.tag)
             neighbors)
      in
      let keep_up_to tag =
        List.filter
          (fun (nb : Cbtc.Neighbor.t) -> nb.Cbtc.Neighbor.tag <= tag)
          neighbors
      in
      let tag =
        List.find
          (fun tag ->
            Geom.Arcset.equal
              (Geom.Dirset.cover ~alpha
                 (Cbtc.Neighbor.directions (keep_up_to tag)))
              full_cover)
          tags
      in
      (keep_up_to tag, Some tag)

let prop_shrink_neighbors_matches_spec =
  QCheck.Test.make ~count:100
    ~name:"shrink_neighbors (incremental) = prefix-recomputation spec"
    (QCheck.make positions_gen)
    (fun positions ->
      let d = run ~growth:(Cbtc.Config.Double 25.) positions in
      let ok = ref true in
      for u = 0 to Array.length positions - 1 do
        let got = Cbtc.Optimize.shrink_neighbors ~alpha:alpha56 d.neighbors.(u) in
        let want = shrink_neighbors_spec ~alpha:alpha56 d.neighbors.(u) in
        if got <> want then ok := false
      done;
      !ok)

let prop_shrink_preserves_connectivity =
  QCheck.Test.make ~count:50
    ~name:"Theorem 3.1: shrink-back preserves connectivity"
    (QCheck.make positions_gen)
    (fun positions ->
      let d = run positions in
      let gr = Cbtc.Geo.max_power_graph pl positions in
      let s = Cbtc.Optimize.shrink_back d in
      Graphkit.Traversal.same_partition gr (Cbtc.Discovery.closure s))

(* ---------- pairwise (redundant edge) removal ---------- *)

let triangle_positions =
  (* d(0,1) = 10 is redundant seen from node 0: node 2 is closer and at
     an angle well under pi/3. *)
  [| Geom.Vec2.zero; Geom.Vec2.make 10. 0.; Geom.Vec2.make 8. 1. |]

let full_triangle () =
  Graphkit.Ugraph.of_edges 3 [ (0, 1); (0, 2); (1, 2) ]

let test_redundant_edge_detected () =
  let red =
    Cbtc.Optimize.redundant_edges ~positions:triangle_positions (full_triangle ())
  in
  Alcotest.(check (list (pair int int))) "longest edge is redundant" [ (0, 1) ] red

let test_pairwise_all_removes () =
  let g' =
    Cbtc.Optimize.pairwise ~positions:triangle_positions ~mode:`All
      (full_triangle ())
  in
  Alcotest.(check (list (pair int int))) "edge removed, path remains"
    [ (0, 2); (1, 2) ]
    (Graphkit.Ugraph.edges g');
  Alcotest.(check bool) "still connected" true (Graphkit.Traversal.is_connected g')

let test_equilateral_not_redundant () =
  (* Angles are exactly pi/3: the strict inequality of Definition 3.5
     means nothing is redundant. *)
  let h = sqrt 3. /. 2. *. 10. in
  let positions =
    [| Geom.Vec2.zero; Geom.Vec2.make 10. 0.; Geom.Vec2.make 5. h |]
  in
  let red = Cbtc.Optimize.redundant_edges ~positions (full_triangle ()) in
  Alcotest.(check (list (pair int int))) "no redundancy at exactly pi/3" [] red

let test_eid_tie_breaking () =
  (* Isoceles with two equal long edges at a small apex angle: only one
     of the equal-length edges is redundant, by node-id tie-breaking
     (eid uses (length, max id, min id)). *)
  let positions =
    [| Geom.Vec2.zero; Geom.Vec2.make 10. 1.; Geom.Vec2.make 10. (-1.) |]
  in
  let red =
    Cbtc.Optimize.redundant_edges ~positions (full_triangle ())
  in
  (* edges (0,1) and (0,2) have equal length; eid(0,2) > eid(0,1), and
     the angle at node 0 between them is small, so (0,2) is redundant
     via witness (0,1) but not vice versa. *)
  Alcotest.(check (list (pair int int))) "only the larger eid is redundant"
    [ (0, 2) ] red

let test_mutual_pair_loses_one_edge () =
  (* Regression: (0,1) and (0,2) are exactly equidistant and separated
     by a small angle, so each is the other's witness.  With a
     non-strict eid order both edges of the pair were removed at once,
     isolating node 0; the strict (dist2, max id, min id) order removes
     exactly one. *)
  let positions =
    [| Geom.Vec2.zero; Geom.Vec2.make 10. 1.; Geom.Vec2.make 10. (-1.) |]
  in
  let g' =
    Cbtc.Optimize.pairwise ~positions ~mode:`All (full_triangle ())
  in
  Alcotest.(check (list (pair int int))) "exactly one of the pair removed"
    [ (0, 1); (1, 2) ]
    (Graphkit.Ugraph.edges g');
  Alcotest.(check bool) "node 0 not isolated" true
    (Graphkit.Traversal.is_connected g')

let test_coincident_witness_cannot_isolate () =
  (* Regression: node 1 sits exactly on node 0.  A zero-length witness
     edge used to make every other edge at node 0 redundant (any angle
     compares below pi/3 against a degenerate direction), so `All mode
     removed both (0,2) and (1,2) and cut node 2 off.  Theorem 3.6's
     triangle argument needs d(w,v) < d(u,v) strictly, which fails for
     a coincident witness; such witnesses must be ignored. *)
  let positions =
    [| Geom.Vec2.zero; Geom.Vec2.zero; Geom.Vec2.make 1. 0. |]
  in
  let red = Cbtc.Optimize.redundant_edges ~positions (full_triangle ()) in
  (* (1,2) is legitimately redundant seen from node 2, whose witness 0
     is at full distance; (0,2) must NOT be, because its only witness
     (node 1, seen from node 0) is coincident. *)
  Alcotest.(check (list (pair int int)))
    "only the edge with a non-degenerate witness is redundant" [ (1, 2) ] red;
  let g' = Cbtc.Optimize.pairwise ~positions ~mode:`All (full_triangle ()) in
  Alcotest.(check bool) "node 2 still reachable" true
    (Graphkit.Traversal.is_connected g')

(* Positions with deliberate duplicates: coincident nodes exercise the
   zero-length-edge and equidistant tie-break paths of eid. *)
let dup_positions_gen =
  QCheck.Gen.(
    positions_gen >>= fun positions ->
    let n = Array.length positions in
    int_range 0 (n - 1) >>= fun src ->
    int_range 0 (n - 1) >|= fun dst ->
    let positions = Array.copy positions in
    positions.(dst) <- positions.(src);
    positions)

let prop_pairwise_no_mutual_removal_with_duplicates =
  QCheck.Test.make ~count:100
    ~name:"pairwise `All never splits a component, even with coincident nodes"
    (QCheck.make dup_positions_gen)
    (fun positions ->
      let d = run ~growth:(Cbtc.Config.Double 25.) positions in
      let g = Cbtc.Discovery.closure d in
      let all = Cbtc.Optimize.pairwise ~positions ~mode:`All g in
      Graphkit.Traversal.same_partition g all)

let test_pairwise_practical_spares_short_edges () =
  (* A redundant edge shorter than the node's longest non-redundant edge
     is kept in `Practical mode (it cannot reduce the radius). *)
  (* node 2 is placed so that (0,1) is redundant seen from node 0 only:
     the angle at node 1 between 0 and 2 is above pi/3 *)
  let positions =
    [| Geom.Vec2.zero; Geom.Vec2.make 10. 0.; Geom.Vec2.make 9. 2.;
       Geom.Vec2.make (-80.) 0. |]
  in
  let g = Graphkit.Ugraph.of_edges 4 [ (0, 1); (0, 2); (1, 2); (0, 3) ] in
  let all = Cbtc.Optimize.pairwise ~positions ~mode:`All g in
  let practical = Cbtc.Optimize.pairwise ~positions ~mode:`Practical g in
  Alcotest.(check bool) "`All removes (0,1)" false
    (Graphkit.Ugraph.mem_edge all 0 1);
  Alcotest.(check bool) "`Practical keeps (0,1): node 0 still reaches 80 away"
    true
    (Graphkit.Ugraph.mem_edge practical 0 1);
  Alcotest.(check bool) "practical contains all-mode graph" true
    (Graphkit.Ugraph.is_subgraph all practical)

let prop_pairwise_preserves_connectivity =
  QCheck.Test.make ~count:50
    ~name:"Theorem 3.6: pairwise removal preserves connectivity"
    (QCheck.make positions_gen)
    (fun positions ->
      let d = run positions in
      let g = Cbtc.Discovery.closure d in
      let all = Cbtc.Optimize.pairwise ~positions ~mode:`All g in
      let practical = Cbtc.Optimize.pairwise ~positions ~mode:`Practical g in
      Graphkit.Traversal.same_partition g all
      && Graphkit.Traversal.same_partition g practical
      && Graphkit.Ugraph.is_subgraph all g
      && Graphkit.Ugraph.is_subgraph practical g)

let prop_practical_between_all_and_original =
  QCheck.Test.make ~count:50
    ~name:"`All removes at least what `Practical removes"
    (QCheck.make positions_gen)
    (fun positions ->
      let d = run positions in
      let g = Cbtc.Discovery.closure d in
      let all = Cbtc.Optimize.pairwise ~positions ~mode:`All g in
      let practical = Cbtc.Optimize.pairwise ~positions ~mode:`Practical g in
      Graphkit.Ugraph.is_subgraph all practical)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "optimize"
    [
      ( "shrink-back",
        [
          Alcotest.test_case "drops non-contributing far node" `Quick
            test_shrink_drops_non_contributing_far_node;
          Alcotest.test_case "keeps contributing far node" `Quick
            test_shrink_keeps_contributing_far_node;
          Alcotest.test_case "empty neighbor list" `Quick test_shrink_neighbors_empty;
        ] );
      ( "pairwise",
        [
          Alcotest.test_case "redundant edge detected" `Quick test_redundant_edge_detected;
          Alcotest.test_case "all-mode removes" `Quick test_pairwise_all_removes;
          Alcotest.test_case "equilateral not redundant" `Quick
            test_equilateral_not_redundant;
          Alcotest.test_case "eid tie-breaking" `Quick test_eid_tie_breaking;
          Alcotest.test_case "mutual pair loses exactly one edge" `Quick
            test_mutual_pair_loses_one_edge;
          Alcotest.test_case "coincident witness cannot isolate" `Quick
            test_coincident_witness_cannot_isolate;
          Alcotest.test_case "practical spares short edges" `Quick
            test_pairwise_practical_spares_short_edges;
        ] );
      ( "properties",
        qsuite
          [
            prop_shrink_is_reduction;
            prop_shrink_neighbors_matches_spec;
            prop_shrink_idempotent;
            prop_shrink_preserves_coverage;
            prop_shrink_preserves_connectivity;
            prop_pairwise_preserves_connectivity;
            prop_practical_between_all_and_original;
            prop_pairwise_no_mutual_removal_with_duplicates;
          ] );
    ]
