(* Tests for the deterministic PRNG and the statistics substrate. *)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?(eps = 1e-9) msg expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ---------- Prng ---------- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.bits64 a <> Prng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_prng_split_independent () =
  let a = Prng.create ~seed:7 in
  let b = Prng.split a in
  let xs = List.init 20 (fun _ -> Prng.bits64 a) in
  let ys = List.init 20 (fun _ -> Prng.bits64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_prng_copy () =
  let a = Prng.create ~seed:9 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a)
    (Prng.bits64 b)

let test_prng_ranges () =
  let t = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let f = Prng.float t 10. in
    if f < 0. || f >= 10. then Alcotest.failf "float out of range: %g" f;
    let i = Prng.int t 7 in
    if i < 0 || i >= 7 then Alcotest.failf "int out of range: %d" i;
    let u = Prng.uniform t ~lo:(-5.) ~hi:5. in
    if u < -5. || u >= 5. then Alcotest.failf "uniform out of range: %g" u
  done

let test_prng_uniformity () =
  (* Coarse sanity: mean of uniforms near 1/2; int buckets all hit. *)
  let t = Prng.create ~seed:12 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prng.float t 1.
  done;
  check_float ~eps:0.01 "uniform mean" 0.5 (!sum /. Stdlib.float_of_int n);
  let buckets = Array.make 10 0 in
  for _ = 1 to n do
    let i = Prng.int t 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < n / 20 then Alcotest.failf "bucket %d suspiciously empty: %d" i c)
    buckets

let test_prng_bool_gaussian_exp () =
  let t = Prng.create ~seed:5 in
  let n = 20_000 in
  let count = ref 0 in
  for _ = 1 to n do
    if Prng.bool t ~p:0.25 then incr count
  done;
  check_float ~eps:0.02 "bool p" 0.25
    (Stdlib.float_of_int !count /. Stdlib.float_of_int n);
  let acc = Stats.Welford.create () in
  for _ = 1 to n do
    Stats.Welford.add acc (Prng.gaussian t ~mu:3. ~sigma:2.)
  done;
  check_float ~eps:0.08 "gaussian mean" 3. (Stats.Welford.mean acc);
  check_float ~eps:0.1 "gaussian sd" 2. (Stats.Welford.stddev acc);
  let acc2 = Stats.Welford.create () in
  for _ = 1 to n do
    Stats.Welford.add acc2 (Prng.exponential t ~rate:2.)
  done;
  check_float ~eps:0.02 "exponential mean" 0.5 (Stats.Welford.mean acc2)

let test_prng_shuffle_choose () =
  let t = Prng.create ~seed:8 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted;
  let chosen = Prng.choose t arr in
  Alcotest.(check bool) "choose member" true
    (Array.exists (fun x -> x = chosen) arr);
  Alcotest.check_raises "choose empty"
    (Invalid_argument "Prng.choose: empty array") (fun () ->
      ignore (Prng.choose t [||]))

let test_prng_invalid () =
  let t = Prng.create ~seed:1 in
  Alcotest.check_raises "float bound" (Invalid_argument "Prng.float: non-positive bound")
    (fun () -> ignore (Prng.float t 0.));
  Alcotest.check_raises "int bound" (Invalid_argument "Prng.int: non-positive bound")
    (fun () -> ignore (Prng.int t (-1)));
  Alcotest.check_raises "uniform empty" (Invalid_argument "Prng.uniform: empty interval")
    (fun () -> ignore (Prng.uniform t ~lo:1. ~hi:1.))

(* ---------- Welford ---------- *)

let test_welford_matches_direct () =
  let xs = [| 1.; 2.; 4.; 8.; 16.; 23.; 0.5 |] in
  let acc = Stats.Welford.create () in
  Array.iter (Stats.Welford.add acc) xs;
  let n = Stdlib.float_of_int (Array.length xs) in
  let mean = Array.fold_left ( +. ) 0. xs /. n in
  let var =
    Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. xs /. (n -. 1.)
  in
  check_float ~eps:1e-9 "mean" mean (Stats.Welford.mean acc);
  check_float ~eps:1e-9 "variance" var (Stats.Welford.variance acc);
  check_float "min" 0.5 (Stats.Welford.min acc);
  check_float "max" 23. (Stats.Welford.max acc);
  Alcotest.(check int) "count" 7 (Stats.Welford.count acc)

let test_welford_empty_and_single () =
  let acc = Stats.Welford.create () in
  Alcotest.(check bool) "empty mean nan" true (Float.is_nan (Stats.Welford.mean acc));
  Stats.Welford.add acc 3.;
  check_float "single mean" 3. (Stats.Welford.mean acc);
  Alcotest.(check bool) "single variance nan" true
    (Float.is_nan (Stats.Welford.variance acc))

let test_welford_merge () =
  let all = Stats.Welford.create () in
  let a = Stats.Welford.create () and b = Stats.Welford.create () in
  let xs = List.init 100 (fun i -> sin (Stdlib.float_of_int i) *. 10.) in
  List.iteri
    (fun i x ->
      Stats.Welford.add all x;
      Stats.Welford.add (if i mod 2 = 0 then a else b) x)
    xs;
  let merged = Stats.Welford.merge a b in
  check_float ~eps:1e-9 "merged mean" (Stats.Welford.mean all) (Stats.Welford.mean merged);
  check_float ~eps:1e-6 "merged var" (Stats.Welford.variance all)
    (Stats.Welford.variance merged);
  Alcotest.(check int) "merged count" 100 (Stats.Welford.count merged)

(* ---------- Summary ---------- *)

let test_summary_basic () =
  let s = Stats.Summary.of_list [ 1.; 2.; 3.; 4.; 5. ] in
  check_float "mean" 3. s.Stats.Summary.mean;
  check_float "median" 3. s.Stats.Summary.median;
  check_float "min" 1. s.Stats.Summary.min;
  check_float "max" 5. s.Stats.Summary.max;
  check_float "p25" 2. s.Stats.Summary.p25;
  check_float "p75" 4. s.Stats.Summary.p75

let test_summary_percentile_interp () =
  let sorted = [| 0.; 10. |] in
  check_float "interp p50" 5. (Stats.Summary.percentile sorted 50.);
  check_float "interp p10" 1. (Stats.Summary.percentile sorted 10.);
  check_float "p0" 0. (Stats.Summary.percentile sorted 0.);
  check_float "p100" 10. (Stats.Summary.percentile sorted 100.)

let test_summary_empty () =
  let s = Stats.Summary.of_list [] in
  Alcotest.(check int) "n" 0 s.Stats.Summary.n;
  Alcotest.(check bool) "nan mean" true (Float.is_nan s.Stats.Summary.mean)

let test_summary_invalid () =
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Summary.percentile: empty sample") (fun () ->
      ignore (Stats.Summary.percentile [||] 50.));
  Alcotest.check_raises "range"
    (Invalid_argument "Summary.percentile: out of range") (fun () ->
      ignore (Stats.Summary.percentile [| 1. |] 150.))

(* ---------- Histogram ---------- *)

let test_histogram_binning () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  List.iter (Stats.Histogram.add h) [ 0.; 1.; 2.5; 9.99; -1.; 10.; 15. ];
  Alcotest.(check int) "count" 7 (Stats.Histogram.count h);
  Alcotest.(check int) "underflow" 1 (Stats.Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Stats.Histogram.overflow h);
  Alcotest.(check (array int)) "buckets" [| 2; 1; 0; 0; 1 |] (Stats.Histogram.counts h);
  let lo, hi = Stats.Histogram.bucket_bounds h 1 in
  check_float "bounds lo" 2. lo;
  check_float "bounds hi" 4. hi

let test_histogram_invalid () =
  Alcotest.check_raises "empty range" (Invalid_argument "Histogram.create: empty range")
    (fun () -> ignore (Stats.Histogram.create ~lo:1. ~hi:1. ~bins:3));
  Alcotest.check_raises "bins" (Invalid_argument "Histogram.create: non-positive bins")
    (fun () -> ignore (Stats.Histogram.create ~lo:0. ~hi:1. ~bins:0))

(* ---------- Ci ---------- *)

let test_ci_quantiles () =
  check_float ~eps:1e-9 "df=1" 12.706 (Stats.Ci.t95 ~df:1);
  check_float ~eps:1e-9 "df=10" 2.228 (Stats.Ci.t95 ~df:10);
  check_float ~eps:1e-9 "df=30" 2.042 (Stats.Ci.t95 ~df:30);
  check_float ~eps:1e-9 "large df is normal" 1.96 (Stats.Ci.t95 ~df:1000);
  Alcotest.check_raises "df 0" (Invalid_argument "Ci.t95: df < 1") (fun () ->
      ignore (Stats.Ci.t95 ~df:0))

let test_ci_interval () =
  (* n=4, mean=5, sd=2: half width = 3.182 * 2 / 2 = 3.182 *)
  let ci = Stats.Ci.mean_ci95 [| 3.; 4.; 6.; 7. |] in
  check_float ~eps:1e-9 "mean" 5. ci.Stats.Ci.mean;
  check_float ~eps:1e-3 "half width"
    (Stats.Ci.t95 ~df:3 *. Stats.Summary.(of_list [ 3.; 4.; 6.; 7. ]).stddev /. 2.)
    ci.Stats.Ci.half_width;
  check_float ~eps:1e-9 "symmetric" (ci.Stats.Ci.hi -. ci.Stats.Ci.mean)
    (ci.Stats.Ci.mean -. ci.Stats.Ci.lo)

let test_ci_coverage () =
  (* Sanity: with gaussian samples the 95% CI covers the true mean in
     roughly 95% of repetitions. *)
  let prng = Prng.create ~seed:20 in
  let hits = ref 0 in
  let reps = 400 in
  for _ = 1 to reps do
    let xs = Array.init 20 (fun _ -> Prng.gaussian prng ~mu:10. ~sigma:3.) in
    let ci = Stats.Ci.mean_ci95 xs in
    if ci.Stats.Ci.lo <= 10. && 10. <= ci.Stats.Ci.hi then incr hits
  done;
  let rate = Stdlib.float_of_int !hits /. Stdlib.float_of_int reps in
  if rate < 0.90 || rate > 0.99 then
    Alcotest.failf "coverage %.3f too far from 0.95" rate

let test_ci_of_welford () =
  let acc = Stats.Welford.create () in
  Array.iter (Stats.Welford.add acc) [| 3.; 4.; 6.; 7. |];
  let a = Stats.Ci.of_welford acc in
  let b = Stats.Ci.mean_ci95 [| 3.; 4.; 6.; 7. |] in
  check_float ~eps:1e-9 "same mean" b.Stats.Ci.mean a.Stats.Ci.mean;
  check_float ~eps:1e-9 "same width" b.Stats.Ci.half_width a.Stats.Ci.half_width;
  Alcotest.check_raises "single sample" (Invalid_argument "Ci: need at least two samples")
    (fun () -> ignore (Stats.Ci.mean_ci95 [| 1. |]))

(* ---------- properties ---------- *)

let prop_summary_bounds =
  QCheck.Test.make ~count:200 ~name:"summary: min <= p25 <= median <= p75 <= max"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Stats.Summary.of_list xs in
      s.Stats.Summary.min <= s.Stats.Summary.p25 +. 1e-9
      && s.Stats.Summary.p25 <= s.Stats.Summary.median +. 1e-9
      && s.Stats.Summary.median <= s.Stats.Summary.p75 +. 1e-9
      && s.Stats.Summary.p75 <= s.Stats.Summary.max +. 1e-9)

let prop_welford_merge_commutes =
  QCheck.Test.make ~count:100 ~name:"welford merge is symmetric"
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 1 20) (float_range (-100.) 100.))
        (list_of_size (QCheck.Gen.int_range 1 20) (float_range (-100.) 100.)))
    (fun (xs, ys) ->
      let mk l =
        let a = Stats.Welford.create () in
        List.iter (Stats.Welford.add a) l;
        a
      in
      let m1 = Stats.Welford.merge (mk xs) (mk ys) in
      let m2 = Stats.Welford.merge (mk ys) (mk xs) in
      feq ~eps:1e-6 (Stats.Welford.mean m1) (Stats.Welford.mean m2)
      && feq ~eps:1e-6 (Stats.Welford.variance m1) (Stats.Welford.variance m2))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "prng-stats"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
          Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
          Alcotest.test_case "bool/gaussian/exponential" `Quick test_prng_bool_gaussian_exp;
          Alcotest.test_case "shuffle and choose" `Quick test_prng_shuffle_choose;
          Alcotest.test_case "invalid arguments" `Quick test_prng_invalid;
        ] );
      ( "welford",
        [
          Alcotest.test_case "matches direct computation" `Quick test_welford_matches_direct;
          Alcotest.test_case "empty and single" `Quick test_welford_empty_and_single;
          Alcotest.test_case "merge" `Quick test_welford_merge;
        ] );
      ( "summary",
        [
          Alcotest.test_case "basic" `Quick test_summary_basic;
          Alcotest.test_case "percentile interpolation" `Quick test_summary_percentile_interp;
          Alcotest.test_case "empty" `Quick test_summary_empty;
          Alcotest.test_case "invalid" `Quick test_summary_invalid;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick test_histogram_binning;
          Alcotest.test_case "invalid" `Quick test_histogram_invalid;
        ] );
      ( "ci",
        [
          Alcotest.test_case "t quantiles" `Quick test_ci_quantiles;
          Alcotest.test_case "interval" `Quick test_ci_interval;
          Alcotest.test_case "coverage" `Quick test_ci_coverage;
          Alcotest.test_case "of welford" `Quick test_ci_of_welford;
        ] );
      ("properties", qsuite [ prop_summary_bounds; prop_welford_merge_commutes ]);
    ]
