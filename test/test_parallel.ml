(* The Parallel domain pool and seed splitter: unit tests for pool
   lifecycle and exception propagation, qcheck properties for order
   preservation and chunk coverage, and differential tests asserting
   that pooled runs of the construction phases are bit-identical to
   sequential ones for every jobs level. *)

let alpha56 = Geom.Angle.five_pi_six

let jobs_levels = [ 1; 2; 4 ]

(* ---------- unit: pool lifecycle ---------- *)

let test_create_rejects_bad_jobs () =
  Alcotest.check_raises "zero"
    (Invalid_argument "Pool.create: jobs out of [1,1024]") (fun () ->
      ignore (Parallel.Pool.create ~jobs:0 ()));
  Alcotest.check_raises "negative"
    (Invalid_argument "Pool.create: jobs out of [1,1024]") (fun () ->
      ignore (Parallel.Pool.create ~jobs:(-3) ()))

let test_jobs_accessor () =
  List.iter
    (fun jobs ->
      Parallel.Pool.with_pool ~jobs (fun pool ->
          Alcotest.(check int) "jobs" jobs (Parallel.Pool.jobs pool)))
    jobs_levels

let test_shutdown_idempotent_and_closed () =
  let pool = Parallel.Pool.create ~jobs:2 () in
  Alcotest.(check (array int)) "works before shutdown" [| 2; 4 |]
    (Parallel.Pool.map pool (fun x -> 2 * x) [| 1; 2 |]);
  Parallel.Pool.shutdown pool;
  Parallel.Pool.shutdown pool;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool: used after shutdown") (fun () ->
      ignore (Parallel.Pool.map pool Fun.id [| 1 |]))

let test_empty_and_singleton () =
  List.iter
    (fun jobs ->
      Parallel.Pool.with_pool ~jobs (fun pool ->
          Alcotest.(check (array int)) "empty" [||]
            (Parallel.Pool.map pool (fun x -> x + 1) [||]);
          Alcotest.(check (array int)) "singleton" [| 8 |]
            (Parallel.Pool.map pool (fun x -> x + 1) [| 7 |]);
          Alcotest.(check (list int)) "list" [ 2; 3 ]
            (Parallel.Pool.map_list pool (fun x -> x + 1) [ 1; 2 ])))
    jobs_levels

exception Boom of int

let test_exception_propagates_lowest_index () =
  List.iter
    (fun jobs ->
      Parallel.Pool.with_pool ~jobs (fun pool ->
          match
            Parallel.Pool.map pool
              (fun i -> if i >= 3 then raise (Boom i) else i)
              [| 0; 1; 2; 3; 4; 5 |]
          with
          | _ -> Alcotest.fail "expected Boom"
          | exception Boom i ->
              Alcotest.(check int)
                (Fmt.str "lowest failing index at jobs=%d" jobs)
                3 i;
              (* the pool must stay usable after a failed batch *)
              Alcotest.(check (array int)) "pool survives" [| 10 |]
                (Parallel.Pool.map pool (fun x -> 10 * x) [| 1 |])))
    jobs_levels

let test_nested_submission () =
  (* a task may itself fan out on the same pool without deadlocking *)
  Parallel.Pool.with_pool ~jobs:2 (fun pool ->
      let r =
        Parallel.Pool.map pool
          (fun i ->
            Array.fold_left ( + ) 0
              (Parallel.Pool.map pool (fun j -> (10 * i) + j) [| 1; 2; 3 |]))
          [| 1; 2 |]
      in
      Alcotest.(check (array int)) "nested" [| 36; 66 |] r)

(* ---------- properties: map and iter_chunks ---------- *)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let prop_map_order_preserving =
  QCheck.Test.make ~count:100 ~name:"Pool.map preserves order at every jobs"
    (QCheck.make QCheck.Gen.(pair (oneofl jobs_levels) (list small_int)))
    (fun (jobs, xs) ->
      let input = Array.of_list xs in
      let expected = Array.map (fun x -> (3 * x) - 1) input in
      Parallel.Pool.with_pool ~jobs (fun pool ->
          Parallel.Pool.map pool (fun x -> (3 * x) - 1) input = expected))

let prop_iter_chunks_exact_partition =
  QCheck.Test.make ~count:100
    ~name:"iter_chunks covers [0,n) exactly once at every jobs/chunk"
    (QCheck.make
       QCheck.Gen.(
         triple (oneofl jobs_levels) (int_range 0 500) (int_range 1 64)))
    (fun (jobs, n, chunk) ->
      let hits = Array.make n 0 in
      Parallel.Pool.with_pool ~jobs (fun pool ->
          Parallel.Pool.iter_chunks pool ~chunk n (fun lo hi ->
              for i = lo to hi - 1 do
                (* within a batch each slot belongs to exactly one chunk,
                   so unsynchronized increments are safe *)
                hits.(i) <- hits.(i) + 1
              done));
      Array.for_all (fun c -> c = 1) hits)

(* ---------- seeds: schedule-independent streams ---------- *)

let test_split_n_deterministic () =
  let streams ~seed =
    Array.map
      (fun p -> List.init 4 (fun _ -> Prng.int p 1_000_000))
      (Parallel.Seeds.split_n (Prng.create ~seed) 8)
  in
  Alcotest.(check bool) "same seed, same streams" true
    (streams ~seed:42 = streams ~seed:42);
  Alcotest.(check bool) "different seed, different streams" true
    (streams ~seed:42 <> streams ~seed:43);
  (* draining stream i does not change stream j: independence from task
     completion order *)
  let a = Parallel.Seeds.split_n (Prng.create ~seed:7) 3 in
  let b = Parallel.Seeds.split_n (Prng.create ~seed:7) 3 in
  ignore (Prng.int a.(0) 1000);
  ignore (Prng.int a.(2) 1000);
  Alcotest.(check int) "stream 1 unaffected"
    (Prng.int b.(1) 1_000_000)
    (Prng.int a.(1) 1_000_000)

let test_seeds_reject_negative () =
  Alcotest.check_raises "split_n"
    (Invalid_argument "Seeds.split_n: negative count") (fun () ->
      ignore (Parallel.Seeds.split_n (Prng.create ~seed:1) (-1)));
  Alcotest.check_raises "ints" (Invalid_argument "Seeds.ints: negative count")
    (fun () -> ignore (Parallel.Seeds.ints (Prng.create ~seed:1) (-1)))

(* ---------- differential: pooled construction = sequential ---------- *)

let positions_of ~seed ~n =
  let sc = Workload.Scenario.make ~n ~width:400. ~height:400. ~seed () in
  (Workload.Scenario.pathloss sc, Workload.Scenario.positions sc)

let neighbor_eq (a : Cbtc.Neighbor.t) (b : Cbtc.Neighbor.t) =
  a.id = b.id && a.dir = b.dir && a.link_power = b.link_power && a.tag = b.tag

let discovery_eq (a : Cbtc.Discovery.t) (b : Cbtc.Discovery.t) =
  Array.for_all2 (List.equal neighbor_eq) a.neighbors b.neighbors
  && a.power = b.power && a.boundary = b.boundary

let prop_pooled_constructions_identical =
  QCheck.Test.make ~count:20
    ~name:"Geo.run/Proximity/Yao/Interference: pooled = sequential"
    (QCheck.make
       QCheck.Gen.(
         triple (oneofl [ 2; 4 ]) (int_range 2 80) (int_range 0 10_000)))
    (fun (jobs, n, seed) ->
      let pathloss, positions = positions_of ~seed ~n in
      let config = Cbtc.Config.make alpha56 in
      let radius =
        Array.map (fun _ -> Radio.Pathloss.max_range pathloss) positions
      in
      Parallel.Pool.with_pool ~jobs (fun pool ->
          discovery_eq
            (Cbtc.Geo.run config pathloss positions)
            (Cbtc.Geo.run ~pool config pathloss positions)
          && Graphkit.Ugraph.equal
               (Cbtc.Geo.max_power_graph pathloss positions)
               (Cbtc.Geo.max_power_graph ~pool pathloss positions)
          && Graphkit.Ugraph.equal
               (Baselines.Proximity.rng pathloss positions)
               (Baselines.Proximity.rng ~pool pathloss positions)
          && Graphkit.Ugraph.equal
               (Baselines.Proximity.gabriel pathloss positions)
               (Baselines.Proximity.gabriel ~pool pathloss positions)
          && Graphkit.Ugraph.equal
               (Baselines.Proximity.knn pathloss positions ~k:4)
               (Baselines.Proximity.knn ~pool pathloss positions ~k:4)
          && Graphkit.Ugraph.equal
               (Baselines.Yao.yao pathloss positions ~k:6)
               (Baselines.Yao.yao ~pool pathloss positions ~k:6)
          && Metrics.Interference.coverage positions ~radius
             = Metrics.Interference.coverage ~pool positions ~radius))

(* ---------- differential: whole trial sweeps, byte-identical ---------- *)

(* A miniature Monte-Carlo sweep in the shape of the bench/CLI loops:
   fan trials out with Pool.map, fold Welford accumulators in seed
   order, render to a string.  The rendering must be byte-identical for
   every jobs level. *)
let sweep_render ~jobs =
  Parallel.Pool.with_pool ~jobs (fun pool ->
      let buf = Buffer.create 256 in
      let seeds = Array.of_list (Workload.Scenario.seeds ~base:11 ~count:6) in
      let trial seed =
        let pathloss, positions = positions_of ~seed ~n:40 in
        let r =
          Cbtc.Pipeline.run_oracle pathloss positions
            (Cbtc.Pipeline.all_ops (Cbtc.Config.make alpha56))
        in
        (Cbtc.Pipeline.avg_degree r, Cbtc.Pipeline.avg_radius r)
      in
      let dacc = Stats.Welford.create () and racc = Stats.Welford.create () in
      Array.iter
        (fun (d, r) ->
          Stats.Welford.add dacc d;
          Stats.Welford.add racc r)
        (Parallel.Pool.map pool trial seeds);
      Buffer.add_string buf
        (Fmt.str "%.17g %.17g" (Stats.Welford.mean dacc)
           (Stats.Welford.mean racc));
      Buffer.contents buf)

let test_sweep_identical_across_jobs () =
  let reference = sweep_render ~jobs:1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Fmt.str "sweep at jobs=%d" jobs)
        reference (sweep_render ~jobs))
    jobs_levels

(* A miniature stress grid in the shape of cbtc_cli stress: per-cell
   channel copies and fault prngs, cells fanned out, JSON-ish rendering
   folded in grid order. *)
let stress_render ~jobs =
  let pathloss, positions = positions_of ~seed:7 ~n:24 in
  let n = Array.length positions in
  let config =
    Cbtc.Config.make ~growth:(Cbtc.Config.Double 100.) alpha56
  in
  let baseline = Cbtc.Distributed.run ~seed:7 config pathloss positions in
  let template =
    Dsim.Channel.gilbert_elliott ~p_gb:0.1 ~p_bg:0.25 ~loss_bad:1. ()
  in
  let cells = [| (0, 0.); (1, 0.1); (2, 0.2) |] in
  Parallel.Pool.with_pool ~jobs (fun pool ->
      let run_cell (ci, crash) =
        let channel = Dsim.Channel.copy template in
        let plan =
          if crash <= 0. then Faults.Plan.empty
          else
            Faults.Plan.random_crashes
              ~prng:(Prng.create ~seed:(7 + (100 * ci)))
              ~n ~fraction:crash ~window:(10., 60.) ()
        in
        let o =
          Cbtc.Distributed.run ~channel ~seed:7
            ~reliability:Cbtc.Distributed.hardened ~faults:plan config
            pathloss positions
        in
        let deg = Cbtc.Verify.degradation ~reference:baseline o in
        Fmt.str "{cell %d: survivors %d, conn %b, dlv %.4f}" ci
          deg.Cbtc.Verify.survivors deg.Cbtc.Verify.connectivity_preserved
          deg.Cbtc.Verify.delivery_ratio
      in
      String.concat ","
        (Array.to_list (Parallel.Pool.map pool run_cell cells)))

let test_stress_identical_across_jobs () =
  let reference = stress_render ~jobs:1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Fmt.str "stress at jobs=%d" jobs)
        reference (stress_render ~jobs))
    jobs_levels

let () =
  Alcotest.run "parallel"
    [
      ( "pool unit",
        [
          Alcotest.test_case "rejects bad jobs" `Quick test_create_rejects_bad_jobs;
          Alcotest.test_case "jobs accessor" `Quick test_jobs_accessor;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent_and_closed;
          Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagates_lowest_index;
          Alcotest.test_case "nested submission" `Quick test_nested_submission;
        ] );
      ( "pool properties",
        qsuite [ prop_map_order_preserving; prop_iter_chunks_exact_partition ] );
      ( "seeds",
        [
          Alcotest.test_case "split_n deterministic" `Quick test_split_n_deterministic;
          Alcotest.test_case "negative counts rejected" `Quick test_seeds_reject_negative;
        ] );
      ( "pooled = sequential",
        qsuite [ prop_pooled_constructions_identical ] );
      ( "sweep determinism",
        [
          Alcotest.test_case "mini alpha sweep, all -j" `Quick test_sweep_identical_across_jobs;
          Alcotest.test_case "mini stress grid, all -j" `Quick test_stress_identical_across_jobs;
        ] );
    ]
