(* Trace schema validator for the @obs-smoke alias: reads a JSON-lines
   trace produced with --trace-out and checks the contract documented in
   docs/OBSERVABILITY.md — line 1 is the manifest (with schema and
   version), every later line is a span_begin/span_end/point event whose
   [seq] increases by 1 from 1, spans are balanced, and every event's
   [depth] equals the number of spans open at that point.  Exits
   non-zero with a line number on the first violation. *)

let fail line fmt =
  Fmt.kstr
    (fun msg ->
      Fmt.epr "validate_obs: line %d: %s@." line msg;
      exit 1)
    fmt

let parse lineno s =
  try Obs.Jsonl.of_string s
  with Obs.Jsonl.Parse_error e -> fail lineno "unparsable JSON: %s" e

let str lineno v k =
  match Obs.Jsonl.member k v with
  | Some (Obs.Jsonl.Str s) -> s
  | _ -> fail lineno "missing string field %S" k

let int lineno v k =
  match Obs.Jsonl.member k v with
  | Some (Obs.Jsonl.Int n) -> n
  | _ -> fail lineno "missing integer field %S" k

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
        Fmt.epr "usage: validate_obs TRACE.jsonl@.";
        exit 2
  in
  let ic =
    try open_in path
    with Sys_error e ->
      Fmt.epr "validate_obs: %s@." e;
      exit 2
  in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  match List.rev !lines with
  | [] ->
      Fmt.epr "validate_obs: %s is empty@." path;
      exit 1
  | manifest :: events ->
      let m = parse 1 manifest in
      if str 1 m "ev" <> "manifest" then fail 1 "first line is not a manifest";
      if int 1 m "schema" <> 1 then fail 1 "unsupported schema";
      ignore (str 1 m "version");
      let open_spans = ref [] in
      List.iteri
        (fun i line ->
          let lineno = i + 2 in
          let e = parse lineno line in
          if int lineno e "seq" <> i + 1 then
            fail lineno "seq %d, expected %d" (int lineno e "seq") (i + 1);
          let depth = int lineno e "depth" in
          let name = str lineno e "name" in
          match str lineno e "ev" with
          | "span_begin" ->
              if depth <> List.length !open_spans then
                fail lineno "span_begin %S at depth %d with %d spans open"
                  name depth
                  (List.length !open_spans);
              open_spans := name :: !open_spans
          | "span_end" -> (
              match !open_spans with
              | top :: rest when top = name && depth = List.length rest ->
                  open_spans := rest
              | top :: _ ->
                  fail lineno "span_end %S does not close %S" name top
              | [] -> fail lineno "span_end %S with no span open" name)
          | "point" ->
              if depth <> List.length !open_spans then
                fail lineno "point %S at depth %d with %d spans open" name
                  depth
                  (List.length !open_spans)
          | ev -> fail lineno "unknown event type %S" ev)
        events;
      (match !open_spans with
      | [] -> ()
      | top :: _ ->
          Fmt.epr "validate_obs: trace ends with span %S still open@." top;
          exit 1);
      Fmt.pr "validate_obs: %s OK (%d events)@." path (List.length events)
