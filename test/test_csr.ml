(* Differential tests for the flat memory layouts: CSR adjacency vs the
   set-based Ugraph/Digraph enumerations, the SoA discovery kernel
   (Geo.run_flat) vs the list-based brute reference, degenerate and
   mobile inputs on the CSR grid buckets, the occupancy contract, and
   the VmHWM parser behind peak-RSS reporting. *)

let v2 = Geom.Vec2.make

let pl = Radio.Pathloss.make ~max_range:100. ()

let alpha56 = Geom.Angle.five_pi_six

(* ---------- CSR adjacency = set-based graphs, same order ---------- *)

let edges_gen =
  QCheck.Gen.(
    int_range 1 40 >>= fun n ->
    list_size (int_range 0 120) (pair (int_bound (n - 1)) (int_bound (n - 1)))
    >|= fun raw ->
    let keep (u, v) = u <> v in
    let norm (u, v) = if u < v then (u, v) else (v, u) in
    (n, List.sort_uniq compare (List.map norm (List.filter keep raw))))

let prop_csr_of_ugraph_identical =
  QCheck.Test.make ~count:200
    ~name:"Csr.of_ugraph: rows = Ugraph.neighbors, same order"
    (QCheck.make edges_gen)
    (fun (n, edges) ->
      let g = Graphkit.Ugraph.of_edges n edges in
      let csr = Graphkit.Csr.of_ugraph g in
      let ok = ref (Graphkit.Csr.nb_nodes csr = n) in
      if Graphkit.Csr.nb_edges csr <> Graphkit.Ugraph.nb_edges g then
        ok := false;
      for u = 0 to n - 1 do
        if Graphkit.Csr.neighbors csr u <> Graphkit.Ugraph.neighbors g u then
          ok := false;
        if Graphkit.Csr.degree csr u <> Graphkit.Ugraph.degree g u then
          ok := false;
        (* iter and fold agree with the list shim *)
        let via_iter = ref [] in
        Graphkit.Csr.iter_neighbors csr u (fun v -> via_iter := v :: !via_iter);
        if List.rev !via_iter <> Graphkit.Csr.neighbors csr u then ok := false;
        let via_fold =
          Graphkit.Csr.fold_neighbors csr u ~init:[] ~f:(fun acc v ->
              v :: acc)
        in
        if List.rev via_fold <> Graphkit.Csr.neighbors csr u then ok := false
      done;
      !ok)

let prop_csr_of_edges_identical =
  QCheck.Test.make ~count:200
    ~name:"Csr.of_edges = Csr.of_ugraph (Ugraph.of_edges)"
    (QCheck.make edges_gen)
    (fun (n, edges) ->
      let direct = Graphkit.Csr.of_edges n edges in
      let via_set = Graphkit.Csr.of_ugraph (Graphkit.Ugraph.of_edges n edges) in
      let ok = ref (Graphkit.Csr.nb_edges direct = List.length edges) in
      for u = 0 to n - 1 do
        if Graphkit.Csr.neighbors direct u <> Graphkit.Csr.neighbors via_set u
        then ok := false
      done;
      !ok)

let prop_csr_of_digraph_identical =
  QCheck.Test.make ~count:200 ~name:"Csr.of_digraph: rows = Digraph.succ"
    (QCheck.make edges_gen)
    (fun (n, edges) ->
      (* reuse the undirected edge set but keep the (u, v) orientation,
         plus the reversed copy of every third edge for asymmetry *)
      let directed =
        List.concat_map
          (fun (i, (u, v)) -> if i mod 3 = 0 then [ (u, v); (v, u) ] else [ (u, v) ])
          (List.mapi (fun i e -> (i, e)) edges)
      in
      let g = Graphkit.Digraph.of_edges n directed in
      let csr = Graphkit.Csr.of_digraph g in
      let ok = ref (Graphkit.Csr.nb_edges csr = Graphkit.Digraph.nb_edges g) in
      for u = 0 to n - 1 do
        if Graphkit.Csr.neighbors csr u <> Graphkit.Digraph.succ g u then
          ok := false;
        if Graphkit.Csr.degree csr u <> Graphkit.Digraph.out_degree g u then
          ok := false
      done;
      !ok)

let prop_csr_mem_edge =
  QCheck.Test.make ~count:200 ~name:"Csr.mem_edge = Ugraph.mem_edge, all pairs"
    (QCheck.make edges_gen)
    (fun (n, edges) ->
      let g = Graphkit.Ugraph.of_edges n edges in
      let csr = Graphkit.Csr.of_ugraph g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Graphkit.Csr.mem_edge csr u v <> Graphkit.Ugraph.mem_edge g u v
          then ok := false
        done
      done;
      !ok)

let test_csr_of_edges_rejects () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Csr.of_edges: node out of range") (fun () ->
      ignore (Graphkit.Csr.of_edges 2 [ (0, 2) ]));
  Alcotest.check_raises "self-loop"
    (Invalid_argument "Csr.of_edges: self-loop") (fun () ->
      ignore (Graphkit.Csr.of_edges 2 [ (1, 1) ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Csr.of_edges: duplicate edge") (fun () ->
      ignore (Graphkit.Csr.of_edges 3 [ (0, 1); (1, 0) ]))

let test_csr_empty () =
  let csr = Graphkit.Csr.of_edges 0 [] in
  Alcotest.(check int) "no nodes" 0 (Graphkit.Csr.nb_nodes csr);
  Alcotest.(check int) "no edges" 0 (Graphkit.Csr.nb_edges csr);
  let one = Graphkit.Csr.of_ugraph (Graphkit.Ugraph.create 1) in
  Alcotest.(check (list int)) "isolated row" [] (Graphkit.Csr.neighbors one 0)

(* ---------- SoA discovery = list-based brute reference ---------- *)

let positions_gen =
  QCheck.Gen.(
    int_range 0 60 >>= fun n ->
    list_repeat n
      (pair (float_bound_exclusive 300.) (float_bound_exclusive 300.))
    >|= fun pts -> Array.of_list (List.map (fun (x, y) -> v2 x y) pts))

let growth_gen =
  QCheck.Gen.oneofl
    [ Cbtc.Config.Exact; Cbtc.Config.Double 25.;
      Cbtc.Config.Mult { p0 = 100.; factor = 3. } ]

let neighbor_eq (a : Cbtc.Neighbor.t) (b : Cbtc.Neighbor.t) =
  a.id = b.id && a.dir = b.dir && a.link_power = b.link_power && a.tag = b.tag

let discovery_eq (a : Cbtc.Discovery.t) (b : Cbtc.Discovery.t) =
  let n = Cbtc.Discovery.nb_nodes a in
  n = Cbtc.Discovery.nb_nodes b
  && Array.for_all2 (List.equal neighbor_eq) a.neighbors b.neighbors
  && a.power = b.power && a.boundary = b.boundary

let soa_eq (a : Cbtc.Soa.t) (b : Cbtc.Soa.t) =
  a.off = b.off && a.ids = b.ids && a.dirs = b.dirs && a.links = b.links
  && a.tags = b.tags && a.power = b.power && a.boundary = b.boundary

let prop_run_flat_matches_brute =
  QCheck.Test.make ~count:150
    ~name:"Soa.to_discovery (Geo.run_flat) = Geo.Brute.run, bit-exact"
    (QCheck.make QCheck.Gen.(pair positions_gen growth_gen))
    (fun (positions, growth) ->
      let config = Cbtc.Config.make ~growth alpha56 in
      discovery_eq
        (Cbtc.Soa.to_discovery (Cbtc.Geo.run_flat config pl positions))
        (Cbtc.Geo.Brute.run config pl positions))

let prop_run_flat_rows_sorted =
  QCheck.Test.make ~count:100
    ~name:"run_flat rows sorted by (link power, id); iter streams them"
    (QCheck.make QCheck.Gen.(pair positions_gen growth_gen))
    (fun (positions, growth) ->
      let config = Cbtc.Config.make ~growth alpha56 in
      let soa = Cbtc.Geo.run_flat config pl positions in
      let ok = ref true in
      for u = 0 to Cbtc.Soa.nb_nodes soa - 1 do
        let prev = ref neg_infinity and prev_id = ref (-1) in
        let k = ref 0 in
        Cbtc.Soa.iter_neighbors soa u
          (fun ~id ~dir:_ ~link_power ~tag:_ ->
            if
              link_power < !prev
              || (link_power = !prev && id <= !prev_id)
            then ok := false;
            prev := link_power;
            prev_id := id;
            incr k);
        if !k <> Cbtc.Soa.degree soa u then ok := false
      done;
      !ok)

let prop_run_flat_pool_identical =
  QCheck.Test.make ~count:30
    ~name:"run_flat: sequential = pool(-j 2) = pool(-j 4), array-exact"
    (QCheck.make QCheck.Gen.(pair positions_gen growth_gen))
    (fun (positions, growth) ->
      let config = Cbtc.Config.make ~growth alpha56 in
      let seq = Cbtc.Geo.run_flat config pl positions in
      List.for_all
        (fun jobs ->
          Parallel.Pool.with_pool ~jobs (fun pool ->
              soa_eq seq (Cbtc.Geo.run_flat ~pool config pl positions)))
        [ 2; 4 ])

let test_run_flat_degenerate () =
  let check_case name positions =
    let config = Cbtc.Config.make alpha56 in
    Alcotest.(check bool) name true
      (discovery_eq
         (Cbtc.Soa.to_discovery (Cbtc.Geo.run_flat config pl positions))
         (Cbtc.Geo.Brute.run config pl positions))
  in
  check_case "n = 0" [||];
  check_case "n = 1" [| Geom.Vec2.zero |];
  check_case "two coincident nodes" [| v2 5. 5.; v2 5. 5. |];
  check_case "many coincident nodes" (Array.make 7 (v2 1. 2.));
  check_case "coincident cluster + outlier"
    [| v2 0. 0.; v2 0. 0.; v2 0. 0.; v2 50. 0.; v2 500. 500. |]

(* ---------- CSR grid buckets: degenerate and mobile inputs ---------- *)

let brute_within positions u ~dist =
  let ids = ref [] in
  for v = Array.length positions - 1 downto 0 do
    if v <> u && Geom.Vec2.dist positions.(u) positions.(v) <= dist then
      ids := v :: !ids
  done;
  !ids

let test_grid_degenerate () =
  (* n <= 1 and all-coincident inputs exercise the zero-extent window
     fallback of the CSR rebuild *)
  let empty = Geom.Grid.create ~range:10. [||] in
  Alcotest.(check int) "empty" 0 (Geom.Grid.nb_nodes empty);
  let single = Geom.Grid.create ~range:10. [| v2 3. 3. |] in
  Alcotest.(check (list int)) "singleton: no neighbors" []
    (Geom.Grid.neighbors_within single 0 ~dist:1000.);
  let coincident = Geom.Grid.create ~range:10. (Array.make 5 (v2 7. 7.)) in
  Alcotest.(check (list int)) "coincident: all others at distance 0"
    [ 1; 2; 3; 4 ]
    (Geom.Grid.neighbors_within coincident 0 ~dist:0.)

let prop_grid_move_after_build =
  (* long move sequences drive the tombstone/overflow bookkeeping through
     several lazy compactions; the index must stay exact throughout *)
  QCheck.Test.make ~count:40 ~name:"grid move-after-build sequences stay exact"
    (QCheck.make
       QCheck.Gen.(
         triple positions_gen (int_range 0 1000) (float_bound_exclusive 80.)))
    (fun (positions, seed, dist) ->
      let n = Array.length positions in
      QCheck.assume (n > 0);
      let g = Geom.Grid.create ~range:30. positions in
      let prng = Prng.create ~seed in
      let current = Array.copy positions in
      let ok = ref true in
      for _step = 1 to 4 * n do
        let u = Prng.int prng n in
        let p =
          (* bias toward one spot so many nodes pile into one cell *)
          if Prng.int prng 3 = 0 then v2 10. 10.
          else v2 (Prng.float prng 300.) (Prng.float prng 300.)
        in
        current.(u) <- p;
        Geom.Grid.move g u p;
        let q = Prng.int prng n in
        if
          Geom.Grid.neighbors_within g q ~dist <> brute_within current q ~dist
        then ok := false
      done;
      !ok)

let prop_grid_edits_match_fresh_rebuild =
  (* every intermediate grid state of an edit sequence must answer
     exactly like an index freshly built over the current positions —
     the incremental CSR edits (swap-pop, neighbor-shift, overflow,
     compaction) may never be observable through the query API.  Moved
     positions are adversarial for cell assignment: exact multiples of
     the cell size (range 30), one-ulp-ish offsets across the cell
     boundary, and coincident piles. *)
  QCheck.Test.make ~count:60
    ~name:"grid edit sequences = fresh rebuild (boundary + coincident)"
    (QCheck.make
       QCheck.Gen.(
         triple positions_gen (int_range 0 1000) (float_bound_exclusive 80.)))
    (fun (positions, seed, dist) ->
      let n = Array.length positions in
      QCheck.assume (n > 0);
      let g = Geom.Grid.create ~range:30. positions in
      let prng = Prng.create ~seed in
      let current = Array.copy positions in
      let gen_coord () =
        match Prng.int prng 4 with
        | 0 -> 30. *. float_of_int (Prng.int prng 10)
        | 1 -> (30. *. float_of_int (Prng.int prng 10)) +. 1e-9
        | 2 -> (30. *. float_of_int (1 + Prng.int prng 9)) -. 1e-9
        | _ -> Prng.float prng 280.
      in
      let ok = ref true in
      for step = 1 to 3 * n do
        let u = Prng.int prng n in
        let p =
          match Prng.int prng 4 with
          | 0 -> v2 10. 10. (* coincident magnet *)
          | 1 -> current.(Prng.int prng n) (* land exactly on another *)
          | _ -> v2 (gen_coord ()) (gen_coord ())
        in
        current.(u) <- p;
        Geom.Grid.move g u p;
        (* a full fresh-rebuild comparison every few steps (every node,
           every probe), spot checks in between *)
        if step mod n = 0 then begin
          let fresh = Geom.Grid.create ~range:30. current in
          for q = 0 to n - 1 do
            if
              Geom.Grid.neighbors_within g q ~dist
              <> Geom.Grid.neighbors_within fresh q ~dist
            then ok := false
          done
        end
        else begin
          let q = Prng.int prng n in
          if
            Geom.Grid.neighbors_within g q ~dist
            <> brute_within current q ~dist
          then ok := false
        end
      done;
      !ok)

(* ---------- flat per-node kernel = grow_one, bit-exact ---------- *)

let prop_grow_into_matches_grow_one =
  (* the daemon's allocation-free regrow path against the list-based
     per-node oracle: same candidates (grid + alive mask), same power
     walk, same rows — float-for-float *)
  QCheck.Test.make ~count:100
    ~name:"Geo.grow_into = Geo.grow_one (grid + alive mask), bit-exact"
    (QCheck.make
       QCheck.Gen.(triple positions_gen growth_gen (int_range 0 1000)))
    (fun (positions, growth, seed) ->
      let n = Array.length positions in
      QCheck.assume (n > 0);
      let config = Cbtc.Config.make ~growth alpha56 in
      let prng = Prng.create ~seed in
      let alive_mask = Array.init n (fun _ -> Prng.int prng 4 > 0) in
      let alive v = alive_mask.(v) in
      let grid = Geom.Grid.create ~range:(Radio.Pathloss.max_range pl) positions in
      let schedule = Cbtc.Geo.schedule_of config pl in
      let scratch = Cbtc.Geo.scratch_create () in
      let ok = ref true in
      for u = 0 to n - 1 do
        if alive_mask.(u) then begin
          let nbrs, power, boundary =
            Cbtc.Geo.grow_one ~grid ~alive config pl positions u
          in
          let k, power', boundary' =
            Cbtc.Geo.grow_into ~grid ~alive ~schedule scratch config pl
              positions u
          in
          if k <> List.length nbrs || power <> power' || boundary <> boundary'
          then ok := false
          else
            List.iteri
              (fun r (nb : Cbtc.Neighbor.t) ->
                if
                  Cbtc.Geo.row_id scratch r <> nb.id
                  || Cbtc.Geo.row_link scratch r <> nb.link_power
                  || Cbtc.Geo.row_dir scratch r <> nb.dir
                  || Cbtc.Geo.row_tag scratch r <> nb.tag
                then ok := false)
              nbrs
        end
      done;
      !ok)

(* ---------- occupancy: one linear pass, sorted descending ---------- *)

let test_occupancy_sorted_descending () =
  (* cells of size 4, 2, 1 (range 10 buckets by floor(coord / 10)) *)
  let positions =
    [|
      v2 1. 1.; v2 2. 2.; v2 3. 3.; v2 4. 4.;
      v2 25. 25.; v2 26. 26.;
      v2 95. 95.;
    |]
  in
  let g = Geom.Grid.create ~range:10. positions in
  Alcotest.(check (list int)) "pristine index" [ 4; 2; 1 ]
    (Geom.Grid.occupancy g);
  (* after moves the counts must follow the nodes *)
  Geom.Grid.move g 6 (v2 27. 27.);
  Alcotest.(check (list int)) "after move" [ 4; 3 ] (Geom.Grid.occupancy g);
  Alcotest.(check (list int)) "empty grid" []
    (Geom.Grid.occupancy (Geom.Grid.create ~range:10. [||]))

let prop_occupancy_totals =
  QCheck.Test.make ~count:100
    ~name:"occupancy sums to n and is sorted descending"
    (QCheck.make positions_gen)
    (fun positions ->
      let g = Geom.Grid.create ~range:25. positions in
      let occ = Geom.Grid.occupancy g in
      List.fold_left ( + ) 0 occ = Array.length positions
      && List.sort (fun a b -> Int.compare b a) occ = occ
      && List.for_all (fun c -> c > 0) occ)

(* ---------- VmHWM parser on canned /proc/self/status content ---------- *)

let canned_status =
  "Name:\tcbtc_cli\nUmask:\t0022\nState:\tR (running)\n\
   VmPeak:\t  123456 kB\nVmSize:\t  120000 kB\nVmHWM:\t   98304 kB\n\
   VmRSS:\t   97000 kB\nThreads:\t1\n"

let test_parse_vmhwm () =
  Alcotest.(check (option int)) "canned status" (Some 98304)
    (Obs.Rss.parse_vmhwm canned_status);
  Alcotest.(check (option int)) "spaces instead of tabs" (Some 512)
    (Obs.Rss.parse_vmhwm "VmHWM:   512 kB\n");
  Alcotest.(check (option int)) "missing field" None
    (Obs.Rss.parse_vmhwm "Name:\tx\nVmRSS:\t  97000 kB\n");
  Alcotest.(check (option int)) "empty" None (Obs.Rss.parse_vmhwm "");
  Alcotest.(check (option int)) "malformed value" None
    (Obs.Rss.parse_vmhwm "VmHWM:\tnot-a-number kB\n");
  (* the prefix "VmHWMX" must not match *)
  Alcotest.(check (option int)) "similar field name" None
    (Obs.Rss.parse_vmhwm "VmHWMX:\t  7 kB\n")

let test_peak_rss_live () =
  (* on Linux CI this must report a positive peak; elsewhere None is fine *)
  match Obs.Rss.peak_rss_kb () with
  | Some kb -> Alcotest.(check bool) "positive" true (kb > 0)
  | None -> ()

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "csr"
    [
      ( "adjacency",
        Alcotest.test_case "of_edges validation" `Quick test_csr_of_edges_rejects
        :: Alcotest.test_case "empty graphs" `Quick test_csr_empty
        :: qsuite
             [
               prop_csr_of_ugraph_identical;
               prop_csr_of_edges_identical;
               prop_csr_of_digraph_identical;
               prop_csr_mem_edge;
             ] );
      ( "soa discovery",
        Alcotest.test_case "degenerate inputs" `Quick test_run_flat_degenerate
        :: qsuite
             [
               prop_run_flat_matches_brute;
               prop_run_flat_rows_sorted;
               prop_run_flat_pool_identical;
             ] );
      ( "grid buckets",
        Alcotest.test_case "degenerate inputs" `Quick test_grid_degenerate
        :: qsuite
             [
               prop_grid_move_after_build;
               prop_grid_edits_match_fresh_rebuild;
             ] );
      ("flat kernel", qsuite [ prop_grow_into_matches_grow_one ]);
      ( "occupancy",
        Alcotest.test_case "sorted descending" `Quick
          test_occupancy_sorted_descending
        :: qsuite [ prop_occupancy_totals ] );
      ( "peak rss",
        [
          Alcotest.test_case "parse_vmhwm" `Quick test_parse_vmhwm;
          Alcotest.test_case "live read" `Quick test_peak_rss_live;
        ] );
    ]
