(* Tests for the distributed message-passing CBTC protocol: equivalence
   with the centralized oracle, asynchronous starts, lossy/duplicating
   channels, and the Remove phase of Section 3.2. *)

let alpha56 = Geom.Angle.five_pi_six

let alpha23 = Geom.Angle.two_pi_three

let growth = Cbtc.Config.Double 100.

let scenario ~n ~seed =
  let sc = Workload.Scenario.make ~n ~seed () in
  (Workload.Scenario.pathloss sc, Workload.Scenario.positions sc)

let ids l = List.map (fun (n : Cbtc.Neighbor.t) -> n.Cbtc.Neighbor.id) l

let check_discovery_equal ~msg (a : Cbtc.Discovery.t) (b : Cbtc.Discovery.t) =
  let n = Cbtc.Discovery.nb_nodes a in
  Alcotest.(check int) (msg ^ ": node counts") n (Cbtc.Discovery.nb_nodes b);
  for u = 0 to n - 1 do
    Alcotest.(check (list int))
      (Fmt.str "%s: N(%d)" msg u)
      (List.sort Int.compare (ids a.neighbors.(u)))
      (List.sort Int.compare (ids b.neighbors.(u)));
    if Float.abs (a.power.(u) -. b.power.(u)) > 1e-6 then
      Alcotest.failf "%s: power(%d) %g vs %g" msg u a.power.(u) b.power.(u);
    Alcotest.(check bool)
      (Fmt.str "%s: boundary(%d)" msg u)
      a.boundary.(u) b.boundary.(u)
  done

let test_matches_oracle () =
  List.iter
    (fun seed ->
      let pl, positions = scenario ~n:50 ~seed in
      let config = Cbtc.Config.make ~growth alpha56 in
      let oracle = Cbtc.Geo.run config pl positions in
      let outcome = Cbtc.Distributed.run config pl positions in
      check_discovery_equal
        ~msg:(Fmt.str "seed %d" seed)
        oracle outcome.Cbtc.Distributed.discovery;
      Cbtc.Discovery.check_invariants outcome.Cbtc.Distributed.discovery)
    [ 1; 2; 3 ]

let test_matches_oracle_alpha23 () =
  let pl, positions = scenario ~n:50 ~seed:9 in
  let config = Cbtc.Config.make ~growth alpha23 in
  let oracle = Cbtc.Geo.run config pl positions in
  let outcome = Cbtc.Distributed.run config pl positions in
  check_discovery_equal ~msg:"alpha23" oracle outcome.Cbtc.Distributed.discovery

let test_async_starts_match_oracle () =
  (* With staggered starts and a reliable channel the converged state is
     unchanged: every Hello is eventually acked within the eval window. *)
  let pl, positions = scenario ~n:40 ~seed:4 in
  let config = Cbtc.Config.make ~growth alpha56 in
  let oracle = Cbtc.Geo.run config pl positions in
  let outcome = Cbtc.Distributed.run ~start_spread:50. config pl positions in
  check_discovery_equal ~msg:"async" oracle outcome.Cbtc.Distributed.discovery

let test_random_delays_match_oracle () =
  let channel = Dsim.Channel.make ~min_delay:0.5 ~max_delay:2. () in
  let pl, positions = scenario ~n:40 ~seed:5 in
  let config = Cbtc.Config.make ~growth alpha56 in
  let oracle = Cbtc.Geo.run config pl positions in
  let outcome = Cbtc.Distributed.run ~channel config pl positions in
  check_discovery_equal ~msg:"delays" oracle outcome.Cbtc.Distributed.discovery

let test_duplication_is_idempotent () =
  let channel = Dsim.Channel.make ~duplicate:0.7 () in
  let pl, positions = scenario ~n:40 ~seed:6 in
  let config = Cbtc.Config.make ~growth alpha56 in
  let oracle = Cbtc.Geo.run config pl positions in
  let outcome = Cbtc.Distributed.run ~channel config pl positions in
  check_discovery_equal ~msg:"dup" oracle outcome.Cbtc.Distributed.discovery

let test_lossy_channel_still_preserves_connectivity () =
  (* Under message loss the discovered sets may differ from the oracle
     (a lost ack looks like a missing node), but with Hello repeats the
     protocol still terminates gap-free-or-boundary and the closure still
     preserves connectivity on these seeds. *)
  let channel = Dsim.Channel.make ~loss:0.1 () in
  List.iter
    (fun seed ->
      let pl, positions = scenario ~n:50 ~seed in
      let config = Cbtc.Config.make ~growth alpha56 in
      let outcome =
        (* one fresh channel state per trial: burst/chain state must not
           leak across seeds (Channel.copy shares only the config) *)
        Cbtc.Distributed.run
          ~channel:(Dsim.Channel.copy channel)
          ~hello_repeats:3 ~seed config pl positions
      in
      Cbtc.Discovery.check_invariants outcome.Cbtc.Distributed.discovery;
      let gr = Cbtc.Geo.max_power_graph pl positions in
      Alcotest.(check bool)
        (Fmt.str "seed %d preserves" seed)
        true
        (Metrics.Connectivity.preserves ~reference:gr
           (Cbtc.Discovery.closure outcome.Cbtc.Distributed.discovery)))
    [ 11; 12; 13 ]

let test_remove_phase_builds_core () =
  (* The distributed Remove notifications must materialize exactly
     E-_alpha: u keeps v iff both selected each other. *)
  let pl, positions = scenario ~n:50 ~seed:7 in
  let config = Cbtc.Config.make ~growth alpha23 in
  let outcome = Cbtc.Distributed.run config pl positions in
  let d = outcome.Cbtc.Distributed.discovery in
  let expected = Cbtc.Discovery.core d in
  let got = Graphkit.Ugraph.create (Cbtc.Discovery.nb_nodes d) in
  Array.iteri
    (fun u vs -> List.iter (fun v -> Graphkit.Ugraph.add_edge got u v) vs)
    outcome.Cbtc.Distributed.core_neighbors;
  Alcotest.(check bool) "distributed core = E-_alpha" true
    (Graphkit.Ugraph.equal expected got);
  (* and the core neighbor relation is symmetric *)
  Array.iteri
    (fun u vs ->
      List.iter
        (fun v ->
          if not (List.mem u outcome.Cbtc.Distributed.core_neighbors.(v)) then
            Alcotest.failf "core asymmetric at (%d, %d)" u v)
        vs)
    outcome.Cbtc.Distributed.core_neighbors

(* Crash-stop failure injection: kill nodes mid-protocol via a scheduled
   event inside the network.  We model it by running the protocol on the
   survivor set and checking that the survivors' outcome matches the
   oracle on the survivor set — crash-stop before the protocol starts is
   equivalent to the node never existing, and the protocol must not be
   confused by unanswered Hellos. *)
let test_survivors_match_survivor_oracle () =
  let pl, positions = scenario ~n:40 ~seed:14 in
  let config = Cbtc.Config.make ~growth alpha56 in
  (* crash = remove the last five nodes *)
  let survivors = Array.sub positions 0 35 in
  let oracle = Cbtc.Geo.run config pl survivors in
  let outcome = Cbtc.Distributed.run config pl survivors in
  check_discovery_equal ~msg:"survivors" oracle
    outcome.Cbtc.Distributed.discovery

let test_loss_never_decreases_power () =
  (* A lost Ack looks like a cone gap, so under loss a node can only grow
     {e further} than under the reliable channel — its converged power is
     monotonically no smaller.  (It may therefore also discover more
     neighbors, never fewer powers.) *)
  let pl, positions = scenario ~n:40 ~seed:15 in
  let config = Cbtc.Config.make ~growth alpha56 in
  let reliable = Cbtc.Distributed.run config pl positions in
  let lossy =
    Cbtc.Distributed.run
      ~channel:(Dsim.Channel.make ~loss:0.3 ())
      ~seed:77 config pl positions
  in
  for u = 0 to 39 do
    let pr = reliable.Cbtc.Distributed.discovery.power.(u) in
    let p_lossy = lossy.Cbtc.Distributed.discovery.power.(u) in
    if p_lossy < pr -. 1e-9 then
      Alcotest.failf "node %d: lossy power %g below reliable %g" u p_lossy pr
  done

let test_mult_growth_matches_oracle () =
  let pl, positions = scenario ~n:40 ~seed:16 in
  let config =
    Cbtc.Config.make ~growth:(Cbtc.Config.Mult { p0 = 50.; factor = 5. })
      alpha56
  in
  let oracle = Cbtc.Geo.run config pl positions in
  let outcome = Cbtc.Distributed.run config pl positions in
  check_discovery_equal ~msg:"mult growth" oracle
    outcome.Cbtc.Distributed.discovery

let test_combined_asynchrony () =
  (* Staggered starts + random delays + duplication together still match
     the oracle (only loss can perturb the outcome). *)
  let channel = Dsim.Channel.make ~duplicate:0.4 ~min_delay:0.2 ~max_delay:1.5 () in
  let pl, positions = scenario ~n:40 ~seed:17 in
  let config = Cbtc.Config.make ~growth alpha56 in
  let oracle = Cbtc.Geo.run config pl positions in
  let outcome =
    Cbtc.Distributed.run ~channel ~start_spread:30. config pl positions
  in
  check_discovery_equal ~msg:"combined" oracle outcome.Cbtc.Distributed.discovery;
  Cbtc.Verify.run ~complete:true outcome.Cbtc.Distributed.discovery

let test_verify_on_distributed () =
  let pl, positions = scenario ~n:50 ~seed:18 in
  let config = Cbtc.Config.make ~growth alpha56 in
  let outcome = Cbtc.Distributed.run config pl positions in
  (* reliable channel: complete discovery at the converged power *)
  Cbtc.Verify.run ~complete:true outcome.Cbtc.Distributed.discovery

let test_stats_sane () =
  let pl, positions = scenario ~n:30 ~seed:8 in
  let config = Cbtc.Config.make ~growth alpha56 in
  let outcome = Cbtc.Distributed.run config pl positions in
  let s = outcome.Cbtc.Distributed.stats in
  Alcotest.(check bool) "transmissions positive" true (s.transmissions > 0);
  Alcotest.(check bool) "deliveries positive" true (s.deliveries > 0);
  Alcotest.(check bool) "rounds bounded by schedule length" true
    (s.max_rounds >= 1 && s.max_rounds <= 20);
  Alcotest.(check bool) "time advanced" true (s.duration > 0.)

let test_more_repeats_more_messages () =
  let pl, positions = scenario ~n:30 ~seed:8 in
  let config = Cbtc.Config.make ~growth alpha56 in
  let one = Cbtc.Distributed.run ~hello_repeats:1 config pl positions in
  let three = Cbtc.Distributed.run ~hello_repeats:3 config pl positions in
  Alcotest.(check bool) "repeats cost messages" true
    (three.Cbtc.Distributed.stats.transmissions
    > one.Cbtc.Distributed.stats.transmissions)

let test_exact_growth_rejected () =
  let pl, positions = scenario ~n:5 ~seed:1 in
  Alcotest.check_raises "Exact rejected"
    (Invalid_argument
       "Distributed.run: Exact growth needs global knowledge; use Double or \
        Mult") (fun () ->
      ignore (Cbtc.Distributed.run (Cbtc.Config.make alpha56) pl positions))

let test_bad_args_rejected () =
  let pl, positions = scenario ~n:5 ~seed:1 in
  let config = Cbtc.Config.make ~growth alpha56 in
  Alcotest.check_raises "repeats" (Invalid_argument "Distributed.run: hello_repeats < 1")
    (fun () -> ignore (Cbtc.Distributed.run ~hello_repeats:0 config pl positions));
  Alcotest.check_raises "spread" (Invalid_argument "Distributed.run: negative spread")
    (fun () -> ignore (Cbtc.Distributed.run ~start_spread:(-1.) config pl positions))

let test_two_isolated_nodes () =
  let pl = Radio.Pathloss.make ~max_range:10. () in
  let positions = [| Geom.Vec2.zero; Geom.Vec2.make 1000. 0. |] in
  let config = Cbtc.Config.make ~growth:(Cbtc.Config.Double 1.) Geom.Angle.five_pi_six in
  let outcome = Cbtc.Distributed.run config pl positions in
  let d = outcome.Cbtc.Distributed.discovery in
  Alcotest.(check (list int)) "no neighbors" [] (ids d.neighbors.(0));
  Alcotest.(check bool) "both boundary" true (d.boundary.(0) && d.boundary.(1));
  Cbtc.Discovery.check_invariants d

(* Randomized oracle equivalence over the shared shrinking placement
   generator: a failure reports a (near-)minimal placement, not the full
   random one. *)
let prop_matches_oracle =
  let pl120 = Radio.Pathloss.make ~max_range:120. () in
  QCheck.Test.make ~count:25
    ~name:"distributed matches oracle on random placements"
    Gen_common.positions_arb
    (fun positions ->
      let config = Cbtc.Config.make ~growth alpha56 in
      let oracle = Cbtc.Geo.run config pl120 positions in
      let outcome = Cbtc.Distributed.run config pl120 positions in
      match
        Cbtc.Verify.check_oracle ~oracle outcome
      with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

let () =
  Alcotest.run "distributed"
    [
      ( "oracle-equivalence",
        [
          Alcotest.test_case "reliable sync matches oracle" `Quick test_matches_oracle;
          Alcotest.test_case "alpha 2pi/3" `Quick test_matches_oracle_alpha23;
          Alcotest.test_case "asynchronous starts" `Quick test_async_starts_match_oracle;
          Alcotest.test_case "random delays" `Quick test_random_delays_match_oracle;
          Alcotest.test_case "duplication idempotent" `Quick test_duplication_is_idempotent;
          Alcotest.test_case "mult growth" `Quick test_mult_growth_matches_oracle;
          Alcotest.test_case "combined asynchrony" `Quick test_combined_asynchrony;
          Alcotest.test_case "independent verification" `Quick test_verify_on_distributed;
          QCheck_alcotest.to_alcotest ~long:false prop_matches_oracle;
        ] );
      ( "faults",
        [
          Alcotest.test_case "lossy channel preserves connectivity" `Quick
            test_lossy_channel_still_preserves_connectivity;
          Alcotest.test_case "survivors match survivor oracle" `Quick
            test_survivors_match_survivor_oracle;
          Alcotest.test_case "loss never decreases power" `Quick
            test_loss_never_decreases_power;
        ] );
      ( "remove-phase",
        [ Alcotest.test_case "builds E-_alpha" `Quick test_remove_phase_builds_core ] );
      ( "mechanics",
        [
          Alcotest.test_case "stats sane" `Quick test_stats_sane;
          Alcotest.test_case "repeats cost messages" `Quick test_more_repeats_more_messages;
          Alcotest.test_case "Exact growth rejected" `Quick test_exact_growth_rejected;
          Alcotest.test_case "bad args rejected" `Quick test_bad_args_rejected;
          Alcotest.test_case "isolated nodes" `Quick test_two_isolated_nodes;
        ] );
    ]
