(* Tests for the graph substrate: directed/undirected graphs, union-find,
   traversal, Dijkstra, MST, and the float heap. *)

module U = Graphkit.Ugraph
module D = Graphkit.Digraph

(* ---------- Ugraph ---------- *)

let test_ugraph_basic () =
  let g = U.create 5 in
  U.add_edge g 0 1;
  U.add_edge g 1 2;
  U.add_edge g 0 1;
  (* idempotent *)
  Alcotest.(check int) "nodes" 5 (U.nb_nodes g);
  Alcotest.(check int) "edges" 2 (U.nb_edges g);
  Alcotest.(check bool) "mem" true (U.mem_edge g 1 0);
  Alcotest.(check (list int)) "neighbors" [ 0; 2 ] (U.neighbors g 1);
  Alcotest.(check int) "degree" 2 (U.degree g 1);
  U.remove_edge g 0 1;
  Alcotest.(check bool) "removed" false (U.mem_edge g 0 1);
  Alcotest.(check int) "edges after removal" 1 (U.nb_edges g);
  U.remove_edge g 0 1 (* removing absent edge is a no-op *)

let test_ugraph_edges_listing () =
  let g = U.of_edges 4 [ (2, 3); (0, 1); (1, 3) ] in
  Alcotest.(check (list (pair int int))) "edges sorted, u < v"
    [ (0, 1); (1, 3); (2, 3) ]
    (U.edges g)

let test_ugraph_errors () =
  let g = U.create 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Ugraph.add_edge: self-loop")
    (fun () -> U.add_edge g 1 1);
  Alcotest.check_raises "out of range" (Invalid_argument "Ugraph: node out of range")
    (fun () -> U.add_edge g 0 7)

let test_ugraph_subgraph_copy () =
  let g = U.of_edges 4 [ (0, 1); (1, 2) ] in
  let h = U.copy g in
  U.add_edge h 2 3;
  Alcotest.(check bool) "g subgraph of h" true (U.is_subgraph g h);
  Alcotest.(check bool) "h not subgraph of g" false (U.is_subgraph h g);
  Alcotest.(check bool) "copy is independent" false (U.mem_edge g 2 3);
  Alcotest.(check bool) "equal self" true (U.equal g g)

(* ---------- Digraph ---------- *)

let test_digraph_basic () =
  let g = D.create 4 in
  D.add_edge g 0 1;
  D.add_edge g 1 0;
  D.add_edge g 2 3;
  Alcotest.(check int) "edges" 3 (D.nb_edges g);
  Alcotest.(check bool) "directed" true (D.mem_edge g 2 3);
  Alcotest.(check bool) "no reverse" false (D.mem_edge g 3 2);
  Alcotest.(check (list int)) "succ" [ 1 ] (D.succ g 0);
  Alcotest.(check int) "out degree" 1 (D.out_degree g 2)

let test_digraph_closure_core () =
  (* The paper's E_alpha (closure) vs E-_alpha (core) on an asymmetric
     relation. *)
  let g = D.of_edges 4 [ (0, 1); (1, 0); (1, 2); (3, 1) ] in
  let closure = D.symmetric_closure g in
  let core = D.symmetric_core g in
  Alcotest.(check (list (pair int int))) "closure"
    [ (0, 1); (1, 2); (1, 3) ]
    (U.edges closure);
  Alcotest.(check (list (pair int int))) "core" [ (0, 1) ] (U.edges core);
  Alcotest.(check bool) "core subgraph of closure" true
    (U.is_subgraph core closure)

(* ---------- Unionfind ---------- *)

let test_unionfind () =
  let uf = Graphkit.Unionfind.create 6 in
  Alcotest.(check int) "initial sets" 6 (Graphkit.Unionfind.nb_sets uf);
  Alcotest.(check bool) "union new" true (Graphkit.Unionfind.union uf 0 1);
  Alcotest.(check bool) "union again" false (Graphkit.Unionfind.union uf 1 0);
  ignore (Graphkit.Unionfind.union uf 2 3);
  ignore (Graphkit.Unionfind.union uf 0 3);
  Alcotest.(check bool) "same" true (Graphkit.Unionfind.same uf 1 2);
  Alcotest.(check bool) "not same" false (Graphkit.Unionfind.same uf 0 5);
  Alcotest.(check int) "sets" 3 (Graphkit.Unionfind.nb_sets uf)

(* ---------- Traversal ---------- *)

let test_components () =
  let g = U.of_edges 6 [ (0, 1); (1, 2); (4, 5) ] in
  let labels = Graphkit.Traversal.components g in
  Alcotest.(check (array int)) "labels" [| 0; 0; 0; 1; 2; 2 |] labels;
  Alcotest.(check int) "count" 3 (Graphkit.Traversal.nb_components g);
  Alcotest.(check bool) "connected" false (Graphkit.Traversal.is_connected g);
  Alcotest.(check bool) "same component" true
    (Graphkit.Traversal.same_component g 0 2);
  Alcotest.(check bool) "different" false
    (Graphkit.Traversal.same_component g 0 4)

let test_same_partition () =
  let a = U.of_edges 4 [ (0, 1); (2, 3) ] in
  let b = U.of_edges 4 [ (1, 0); (3, 2) ] in
  let c = U.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check bool) "same" true (Graphkit.Traversal.same_partition a b);
  Alcotest.(check bool) "different" false (Graphkit.Traversal.same_partition a c)

let test_hop_distances () =
  let g = U.of_edges 5 [ (0, 1); (1, 2); (2, 3) ] in
  let d = Graphkit.Traversal.hop_distances g 0 in
  Alcotest.(check (array int)) "hops" [| 0; 1; 2; 3; Stdlib.max_int |] d

(* ---------- Fheap ---------- *)

let test_fheap_sorts () =
  let h = Graphkit.Fheap.create () in
  let xs = [ 5.; 1.; 4.; 1.5; 9.; 0.; 2. ] in
  List.iter (fun x -> Graphkit.Fheap.push h x (Stdlib.int_of_float x)) xs;
  Alcotest.(check int) "size" 7 (Graphkit.Fheap.size h);
  let out = ref [] in
  while not (Graphkit.Fheap.is_empty h) do
    out := fst (Graphkit.Fheap.pop_min h) :: !out
  done;
  Alcotest.(check (list (float 0.))) "sorted ascending"
    (List.sort Float.compare xs) (List.rev !out);
  Alcotest.check_raises "pop empty" Not_found (fun () ->
      ignore (Graphkit.Fheap.pop_min h))

(* ---------- Shortest ---------- *)

let test_dijkstra_line () =
  let g = U.of_edges 4 [ (0, 1); (1, 2); (2, 3); (0, 3) ] in
  let cost u v = Stdlib.float_of_int (abs (u - v)) in
  let d = Graphkit.Shortest.dijkstra g ~cost ~src:0 in
  Alcotest.(check (float 1e-9)) "d0" 0. d.(0);
  Alcotest.(check (float 1e-9)) "d1" 1. d.(1);
  Alcotest.(check (float 1e-9)) "d2" 2. d.(2);
  (* node 3: direct edge costs 3, path through 1,2 also 3 *)
  Alcotest.(check (float 1e-9)) "d3" 3. d.(3)

let test_dijkstra_unreachable_and_digraph () =
  let g = U.of_edges 3 [ (0, 1) ] in
  let d = Graphkit.Shortest.dijkstra g ~cost:(fun _ _ -> 1.) ~src:0 in
  Alcotest.(check bool) "unreachable" true (Float.is_integer d.(1) && d.(2) = Float.infinity);
  let dg = D.of_edges 3 [ (0, 1); (1, 2) ] in
  let dd = Graphkit.Shortest.dijkstra_digraph dg ~cost:(fun _ _ -> 2.) ~src:0 in
  Alcotest.(check (float 1e-9)) "directed d2" 4. dd.(2);
  let back = Graphkit.Shortest.dijkstra_digraph dg ~cost:(fun _ _ -> 2.) ~src:2 in
  Alcotest.(check bool) "no reverse path" true (back.(0) = Float.infinity)

let test_dijkstra_negative_cost_rejected () =
  let g = U.of_edges 2 [ (0, 1) ] in
  Alcotest.check_raises "negative"
    (Invalid_argument "Shortest.dijkstra: negative cost") (fun () ->
      ignore (Graphkit.Shortest.dijkstra g ~cost:(fun _ _ -> -1.) ~src:0))

(* ---------- MST ---------- *)

let test_mst_triangle () =
  let g = U.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  let weight u v = Stdlib.float_of_int (u + v) in
  (* weights: 0-1 -> 1, 1-2 -> 3, 0-2 -> 2: MST keeps {0-1, 0-2}. *)
  let forest = Graphkit.Mst.spanning_forest g ~weight in
  Alcotest.(check (list (pair int int))) "mst edges" [ (0, 1); (0, 2) ]
    (List.sort Stdlib.compare forest)

let test_mst_forest_per_component () =
  let g = U.of_edges 5 [ (0, 1); (1, 2); (0, 2); (3, 4) ] in
  let forest = Graphkit.Mst.forest_graph g ~weight:(fun _ _ -> 1.) in
  Alcotest.(check int) "edge count = n - components" 3 (U.nb_edges forest);
  Alcotest.(check bool) "same partition" true
    (Graphkit.Traversal.same_partition g forest)

(* ---------- Biconnect ---------- *)

let test_articulation_points () =
  (* path: interior nodes are cut vertices *)
  let path = U.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check (list int)) "path" [ 1; 2 ]
    (Graphkit.Biconnect.articulation_points path);
  (* cycle: none *)
  let cycle = U.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  Alcotest.(check (list int)) "cycle" []
    (Graphkit.Biconnect.articulation_points cycle);
  (* two triangles sharing node 2 *)
  let bowtie = U.of_edges 5 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 2) ] in
  Alcotest.(check (list int)) "bowtie" [ 2 ]
    (Graphkit.Biconnect.articulation_points bowtie)

let test_bridges () =
  let g = U.of_edges 5 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4) ] in
  Alcotest.(check (list (pair int int))) "bridges" [ (2, 3); (3, 4) ]
    (Graphkit.Biconnect.bridges g);
  let cycle = U.of_edges 3 [ (0, 1); (1, 2); (2, 0) ] in
  Alcotest.(check (list (pair int int))) "no bridges in a cycle" []
    (Graphkit.Biconnect.bridges cycle)

let test_is_biconnected () =
  let cycle = U.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  Alcotest.(check bool) "cycle" true (Graphkit.Biconnect.is_biconnected cycle);
  let path = U.of_edges 3 [ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "path" false (Graphkit.Biconnect.is_biconnected path);
  let split = U.of_edges 4 [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "disconnected" false
    (Graphkit.Biconnect.is_biconnected split)

(* ---------- Kconn ---------- *)

let test_k_connectivity () =
  let cycle = U.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
  Alcotest.(check bool) "cycle 1-conn" true (Graphkit.Kconn.is_k_connected cycle ~k:1);
  Alcotest.(check bool) "cycle 2-conn" true (Graphkit.Kconn.is_k_connected cycle ~k:2);
  Alcotest.(check bool) "cycle not 3-conn" false
    (Graphkit.Kconn.is_k_connected cycle ~k:3);
  (* K4 is 3-connected *)
  let k4 = U.of_edges 4 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ] in
  Alcotest.(check bool) "K4 3-conn" true (Graphkit.Kconn.is_k_connected k4 ~k:3);
  let path = U.of_edges 3 [ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "path not 2-conn" false
    (Graphkit.Kconn.is_k_connected path ~k:2);
  Alcotest.check_raises "k range" (Invalid_argument "Kconn.is_k_connected: k must be 1..3")
    (fun () -> ignore (Graphkit.Kconn.is_k_connected path ~k:4))

let test_survives_removal () =
  let g = U.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check bool) "remove endpoint fine" true
    (Graphkit.Kconn.survives_node_removal g ~removed:[ 0 ]);
  Alcotest.(check bool) "remove middle splits" false
    (Graphkit.Kconn.survives_node_removal g ~removed:[ 1 ]);
  Alcotest.(check bool) "remove everything" false
    (Graphkit.Kconn.survives_node_removal g ~removed:[ 0; 1; 2; 3 ])

(* ---------- properties ---------- *)

let random_graph_gen =
  (* (n, edge list) with edges drawn from the complete graph *)
  QCheck.Gen.(
    int_range 2 30 >>= fun n ->
    list_size (int_range 0 (3 * n))
      (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    >|= fun raw ->
    (n, List.filter (fun (u, v) -> u <> v) raw))

let build (n, edge_list) = U.of_edges n edge_list

let prop_components_match_unionfind =
  QCheck.Test.make ~count:200 ~name:"BFS components match union-find"
    (QCheck.make random_graph_gen)
    (fun (n, edge_list) ->
      let g = build (n, edge_list) in
      let uf = Graphkit.Unionfind.create n in
      List.iter (fun (u, v) -> ignore (Graphkit.Unionfind.union uf u v)) edge_list;
      let labels = Graphkit.Traversal.components g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Graphkit.Unionfind.same uf u v <> (labels.(u) = labels.(v)) then
            ok := false
        done
      done;
      !ok && Graphkit.Traversal.nb_components g = Graphkit.Unionfind.nb_sets uf)

let prop_dijkstra_unit_weights_is_bfs =
  QCheck.Test.make ~count:200 ~name:"Dijkstra with unit weights equals BFS"
    (QCheck.make random_graph_gen)
    (fun (n, edge_list) ->
      let g = build (n, edge_list) in
      let d = Graphkit.Shortest.dijkstra g ~cost:(fun _ _ -> 1.) ~src:0 in
      let h = Graphkit.Traversal.hop_distances g 0 in
      let ok = ref true in
      for u = 0 to n - 1 do
        let expected =
          if h.(u) = Stdlib.max_int then Float.infinity else Stdlib.float_of_int h.(u)
        in
        if d.(u) <> expected then ok := false
      done;
      !ok)

let prop_mst_preserves_partition =
  QCheck.Test.make ~count:200 ~name:"MST forest preserves the component partition"
    (QCheck.make random_graph_gen)
    (fun (n, edge_list) ->
      let g = build (n, edge_list) in
      let forest =
        Graphkit.Mst.forest_graph g ~weight:(fun u v ->
            Stdlib.float_of_int ((u * 31) + v))
      in
      Graphkit.Traversal.same_partition g forest
      && U.nb_edges forest = n - Graphkit.Traversal.nb_components g)

let prop_closure_contains_core =
  QCheck.Test.make ~count:200 ~name:"symmetric core is a subgraph of the closure"
    (QCheck.make random_graph_gen)
    (fun (n, edge_list) ->
      let g = D.of_edges n edge_list in
      U.is_subgraph (D.symmetric_core g) (D.symmetric_closure g))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "graphkit"
    [
      ( "ugraph",
        [
          Alcotest.test_case "basic" `Quick test_ugraph_basic;
          Alcotest.test_case "edge listing" `Quick test_ugraph_edges_listing;
          Alcotest.test_case "errors" `Quick test_ugraph_errors;
          Alcotest.test_case "subgraph and copy" `Quick test_ugraph_subgraph_copy;
        ] );
      ( "digraph",
        [
          Alcotest.test_case "basic" `Quick test_digraph_basic;
          Alcotest.test_case "closure vs core" `Quick test_digraph_closure_core;
        ] );
      ("unionfind", [ Alcotest.test_case "basic" `Quick test_unionfind ]);
      ( "traversal",
        [
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "same partition" `Quick test_same_partition;
          Alcotest.test_case "hop distances" `Quick test_hop_distances;
        ] );
      ("fheap", [ Alcotest.test_case "heap sorts" `Quick test_fheap_sorts ]);
      ( "shortest",
        [
          Alcotest.test_case "line graph" `Quick test_dijkstra_line;
          Alcotest.test_case "unreachable and digraph" `Quick
            test_dijkstra_unreachable_and_digraph;
          Alcotest.test_case "negative cost rejected" `Quick
            test_dijkstra_negative_cost_rejected;
        ] );
      ( "mst",
        [
          Alcotest.test_case "triangle" `Quick test_mst_triangle;
          Alcotest.test_case "forest per component" `Quick
            test_mst_forest_per_component;
        ] );
      ( "biconnect",
        [
          Alcotest.test_case "articulation points" `Quick test_articulation_points;
          Alcotest.test_case "bridges" `Quick test_bridges;
          Alcotest.test_case "is biconnected" `Quick test_is_biconnected;
        ] );
      ( "kconn",
        [
          Alcotest.test_case "k connectivity" `Quick test_k_connectivity;
          Alcotest.test_case "survives removal" `Quick test_survives_removal;
        ] );
      ( "properties",
        qsuite
          [
            prop_components_match_unionfind;
            prop_dijkstra_unit_weights_is_bfs;
            prop_mst_preserves_partition;
            prop_closure_contains_core;
          ] );
    ]
