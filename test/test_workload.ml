(* Tests for workload generation: placements, scenarios, and the
   random-waypoint mobility model. *)

let field = Workload.Placement.field ~width:1000. ~height:500.

let in_field (p : Geom.Vec2.t) =
  p.Geom.Vec2.x >= 0. && p.Geom.Vec2.x <= 1000. && p.Geom.Vec2.y >= 0.
  && p.Geom.Vec2.y <= 500.

let test_uniform () =
  let prng = Prng.create ~seed:1 in
  let pts = Workload.Placement.uniform prng ~field ~n:500 in
  Alcotest.(check int) "count" 500 (Array.length pts);
  Alcotest.(check bool) "in field" true (Array.for_all in_field pts);
  (* deterministic per seed *)
  let again = Workload.Placement.uniform (Prng.create ~seed:1) ~field ~n:500 in
  Alcotest.(check bool) "deterministic" true (pts = again);
  let other = Workload.Placement.uniform (Prng.create ~seed:2) ~field ~n:500 in
  Alcotest.(check bool) "seed-sensitive" true (pts <> other)

let test_clustered () =
  let prng = Prng.create ~seed:3 in
  let pts =
    Workload.Placement.clustered prng ~field ~clusters:3 ~n:300 ~sigma:20.
  in
  Alcotest.(check int) "count" 300 (Array.length pts);
  Alcotest.(check bool) "clamped to field" true (Array.for_all in_field pts);
  Alcotest.check_raises "no clusters"
    (Invalid_argument "Placement.clustered: no clusters") (fun () ->
      ignore (Workload.Placement.clustered prng ~field ~clusters:0 ~n:5 ~sigma:1.))

let test_grid_jitter () =
  let prng = Prng.create ~seed:4 in
  let pts = Workload.Placement.grid_jitter prng ~field ~rows:4 ~cols:5 ~jitter:10. in
  Alcotest.(check int) "rows*cols" 20 (Array.length pts);
  Alcotest.(check bool) "in field" true (Array.for_all in_field pts);
  (* zero jitter puts nodes exactly at cell centers *)
  let exact = Workload.Placement.grid_jitter prng ~field ~rows:2 ~cols:2 ~jitter:0. in
  Alcotest.(check bool) "first cell center" true
    (Geom.Vec2.equal exact.(0) (Geom.Vec2.make 250. 125.))

let test_scenario () =
  let sc = Workload.Scenario.paper ~seed:5 in
  Alcotest.(check int) "n" 100 sc.Workload.Scenario.n;
  let pl = Workload.Scenario.pathloss sc in
  Alcotest.(check (float 1e-9)) "R" 500. (Radio.Pathloss.max_range pl);
  let pts = Workload.Scenario.positions sc in
  Alcotest.(check int) "positions" 100 (Array.length pts);
  Alcotest.(check bool) "reproducible" true (pts = Workload.Scenario.positions sc);
  let seeds = Workload.Scenario.seeds ~base:7 ~count:100 in
  Alcotest.(check int) "seed count" 100 (List.length seeds);
  Alcotest.(check int) "distinct" 100
    (List.length (List.sort_uniq Int.compare seeds))

let test_mobility_bounds_and_speed () =
  let prng = Prng.create ~seed:6 in
  let start = Workload.Placement.uniform (Prng.create ~seed:7) ~field ~n:50 in
  let params = { Workload.Mobility.speed_lo = 5.; speed_hi = 20.; pause = 1. } in
  let m = Workload.Mobility.create prng ~field ~params start in
  let prev = ref (Workload.Mobility.positions m) in
  for _ = 1 to 100 do
    Workload.Mobility.step m ~dt:1.;
    let cur = Workload.Mobility.positions m in
    Array.iteri
      (fun i p ->
        if not (in_field p) then Alcotest.fail "left the field";
        let moved = Geom.Vec2.dist !prev.(i) p in
        if moved > 20. +. 1e-6 then
          Alcotest.failf "node %d moved %g > max speed" i moved)
      cur;
    prev := cur
  done

let test_mobility_moves_and_freezes () =
  let prng = Prng.create ~seed:8 in
  let start = Workload.Placement.uniform (Prng.create ~seed:9) ~field ~n:20 in
  let m =
    Workload.Mobility.create prng ~field
      ~params:Workload.Mobility.default_params start
  in
  Workload.Mobility.step m ~dt:10.;
  let moved = Workload.Mobility.positions m in
  Alcotest.(check bool) "someone moved" true
    (Array.exists2 (fun a b -> not (Geom.Vec2.equal a b)) start moved);
  Workload.Mobility.freeze m;
  Workload.Mobility.step m ~dt:10.;
  Alcotest.(check bool) "frozen" true (moved = Workload.Mobility.positions m)

let test_mobility_waypoint_progress () =
  (* With a long enough run, every node passes through at least one pause
     (reaches a waypoint). *)
  let prng = Prng.create ~seed:10 in
  let start = Workload.Placement.uniform (Prng.create ~seed:11) ~field ~n:5 in
  let params = { Workload.Mobility.speed_lo = 50.; speed_hi = 50.; pause = 0.5 } in
  let m = Workload.Mobility.create prng ~field ~params start in
  for _ = 1 to 200 do
    Workload.Mobility.step m ~dt:1.
  done;
  (* positions remain valid and nodes are not all stuck at start *)
  Alcotest.(check bool) "moved far" true
    (Array.exists2
       (fun a b -> Geom.Vec2.dist a b > 100.)
       start
       (Workload.Mobility.positions m))

let test_direction_model () =
  let prng = Prng.create ~seed:13 in
  let start = Workload.Placement.uniform (Prng.create ~seed:14) ~field ~n:30 in
  let params = { Workload.Mobility.speed_lo = 10.; speed_hi = 30.; pause = 1. } in
  let m = Workload.Mobility.Direction.create prng ~field ~params start in
  for _ = 1 to 200 do
    Workload.Mobility.Direction.step m ~dt:1.;
    Array.iter
      (fun p -> if not (in_field p) then Alcotest.fail "left the field")
      (Workload.Mobility.Direction.positions m)
  done;
  let final = Workload.Mobility.Direction.positions m in
  Alcotest.(check bool) "nodes moved" true
    (Array.exists2 (fun a b -> Geom.Vec2.dist a b > 50.) start final);
  Workload.Mobility.Direction.freeze m;
  Workload.Mobility.Direction.step m ~dt:5.;
  Alcotest.(check bool) "frozen" true
    (final = Workload.Mobility.Direction.positions m);
  Alcotest.check_raises "bad speeds"
    (Invalid_argument "Mobility.Direction.create: bad speed range") (fun () ->
      ignore
        (Workload.Mobility.Direction.create prng ~field
           ~params:{ Workload.Mobility.speed_lo = 0.; speed_hi = 1.; pause = 0. }
           [| Geom.Vec2.zero |]))

let test_mobility_validation () =
  let prng = Prng.create ~seed:1 in
  Alcotest.check_raises "bad speeds" (Invalid_argument "Mobility.create: bad speed range")
    (fun () ->
      ignore
        (Workload.Mobility.create prng ~field
           ~params:{ Workload.Mobility.speed_lo = 0.; speed_hi = 1.; pause = 0. }
           [| Geom.Vec2.zero |]));
  let m =
    Workload.Mobility.create prng ~field
      ~params:Workload.Mobility.default_params [| Geom.Vec2.zero |]
  in
  Alcotest.check_raises "negative dt" (Invalid_argument "Mobility.step: negative dt")
    (fun () -> Workload.Mobility.step m ~dt:(-1.))

let () =
  Alcotest.run "workload"
    [
      ( "placement",
        [
          Alcotest.test_case "uniform" `Quick test_uniform;
          Alcotest.test_case "clustered" `Quick test_clustered;
          Alcotest.test_case "grid jitter" `Quick test_grid_jitter;
        ] );
      ("scenario", [ Alcotest.test_case "paper setup" `Quick test_scenario ]);
      ( "mobility",
        [
          Alcotest.test_case "bounds and speed" `Quick test_mobility_bounds_and_speed;
          Alcotest.test_case "moves and freezes" `Quick test_mobility_moves_and_freezes;
          Alcotest.test_case "waypoint progress" `Quick test_mobility_waypoint_progress;
          Alcotest.test_case "random direction model" `Quick test_direction_model;
          Alcotest.test_case "validation" `Quick test_mobility_validation;
        ] );
    ]
