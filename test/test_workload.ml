(* Tests for workload generation: placements, scenarios, and the
   random-waypoint mobility model. *)

let field = Workload.Placement.field ~width:1000. ~height:500.

let in_field (p : Geom.Vec2.t) =
  p.Geom.Vec2.x >= 0. && p.Geom.Vec2.x <= 1000. && p.Geom.Vec2.y >= 0.
  && p.Geom.Vec2.y <= 500.

let test_uniform () =
  let prng = Prng.create ~seed:1 in
  let pts = Workload.Placement.uniform prng ~field ~n:500 in
  Alcotest.(check int) "count" 500 (Array.length pts);
  Alcotest.(check bool) "in field" true (Array.for_all in_field pts);
  (* deterministic per seed *)
  let again = Workload.Placement.uniform (Prng.create ~seed:1) ~field ~n:500 in
  Alcotest.(check bool) "deterministic" true (pts = again);
  let other = Workload.Placement.uniform (Prng.create ~seed:2) ~field ~n:500 in
  Alcotest.(check bool) "seed-sensitive" true (pts <> other)

let digest_positions pts =
  Digest.to_hex
    (Digest.string
       (String.concat ";"
          (Array.to_list
             (Array.map
                (fun (p : Geom.Vec2.t) ->
                  Fmt.str "%h,%h" p.Geom.Vec2.x p.Geom.Vec2.y)
                pts))))

let test_clustered () =
  let prng = Prng.create ~seed:3 in
  let pts =
    Workload.Placement.clustered prng ~field ~clusters:3 ~n:300 ~sigma:20.
  in
  Alcotest.(check int) "count" 300 (Array.length pts);
  Alcotest.(check bool) "in field" true (Array.for_all in_field pts);
  Alcotest.check_raises "no clusters"
    (Invalid_argument "Placement.clustered: no clusters") (fun () ->
      ignore (Workload.Placement.clustered prng ~field ~clusters:0 ~n:5 ~sigma:1.));
  Alcotest.check_raises "bad sigma"
    (Invalid_argument "Placement.clustered: non-positive sigma") (fun () ->
      ignore (Workload.Placement.clustered prng ~field ~clusters:1 ~n:5 ~sigma:0.))

let test_clustered_resamples () =
  (* A wide Gaussian pushes most draws out of the field; clamping piled
     that mass exactly onto the boundary, resampling must not — no node
     may sit on a field edge (the clamp fallback after the retry budget
     has probability ~0.75^64 per node here). *)
  let pts =
    Workload.Placement.clustered (Prng.create ~seed:21) ~field ~clusters:2
      ~n:500 ~sigma:400.
  in
  let on_edge (p : Geom.Vec2.t) =
    p.Geom.Vec2.x = 0. || p.Geom.Vec2.x = 1000. || p.Geom.Vec2.y = 0.
    || p.Geom.Vec2.y = 500.
  in
  Alcotest.(check int) "no boundary pileup" 0
    (Array.fold_left (fun acc p -> if on_edge p then acc + 1 else acc) 0 pts);
  Alcotest.(check bool) "in field" true (Array.for_all in_field pts)

let test_clustered_digest_pin () =
  (* Frozen draw semantics: the resampling loop consumes the PRNG in a
     fixed order, so this digest moves only if the algorithm changes. *)
  let pts =
    Workload.Placement.clustered (Prng.create ~seed:42) ~field ~clusters:4
      ~n:100 ~sigma:60.
  in
  Alcotest.(check string) "digest" "fbd74f3ac71bd0353dca3f12b6dce007"
    (digest_positions pts)

let test_obstacle_terrain () =
  let obs =
    Workload.Placement.obstacle_terrain (Prng.create ~seed:31) ~field ~count:8
      ~radius:40. ~loss_db:6.
  in
  Alcotest.(check int) "count" 8 (Array.length obs);
  Array.iter
    (fun (o : Radio.Env.obstacle) ->
      Alcotest.(check bool) "center in field" true (in_field o.Radio.Env.center);
      Alcotest.(check (float 0.)) "radius" 40. o.Radio.Env.radius;
      Alcotest.(check (float 0.)) "loss" 6. o.Radio.Env.loss_db)
    obs;
  let again =
    Workload.Placement.obstacle_terrain (Prng.create ~seed:31) ~field ~count:8
      ~radius:40. ~loss_db:6.
  in
  Alcotest.(check bool) "deterministic" true (obs = again)

let test_obstructed () =
  let obs =
    Workload.Placement.obstacle_terrain (Prng.create ~seed:32) ~field ~count:5
      ~radius:60. ~loss_db:10.
  in
  let pts =
    Workload.Placement.obstructed (Prng.create ~seed:33) ~field ~n:400
      ~obstacles:obs
  in
  Alcotest.(check int) "count" 400 (Array.length pts);
  Alcotest.(check bool) "in field" true (Array.for_all in_field pts);
  let inside p =
    Array.exists
      (fun (o : Radio.Env.obstacle) ->
        Geom.Vec2.dist2 o.Radio.Env.center p
        < o.Radio.Env.radius *. o.Radio.Env.radius)
      obs
  in
  (* the discs cover well under half the field, so the retry budget is
     never exhausted and no node lands inside an obstacle *)
  Alcotest.(check int) "no node inside an obstacle" 0
    (Array.fold_left (fun acc p -> if inside p then acc + 1 else acc) 0 pts)

let test_projected_3d () =
  let positions, heights =
    Workload.Placement.projected_3d (Prng.create ~seed:34) ~field ~n:200
      ~depth:50.
  in
  Alcotest.(check int) "positions" 200 (Array.length positions);
  Alcotest.(check int) "heights" 200 (Array.length heights);
  Alcotest.(check bool) "in field" true (Array.for_all in_field positions);
  Alcotest.(check bool) "heights in [0, depth]" true
    (Array.for_all (fun h -> h >= 0. && h <= 50.) heights);
  (* the pair feeds Radio.Env.make directly *)
  let pl = Radio.Pathloss.make ~max_range:500. () in
  let env = Radio.Env.make ~heights ~height_loss_db:0.5 pl in
  Alcotest.(check bool) "non-trivial env" false (Radio.Env.is_trivial env);
  let flat, zero = Workload.Placement.projected_3d (Prng.create ~seed:34) ~field ~n:10 ~depth:0. in
  Alcotest.(check int) "flat positions" 10 (Array.length flat);
  Alcotest.(check bool) "zero heights" true (Array.for_all (( = ) 0.) zero)

let test_grid_jitter () =
  let prng = Prng.create ~seed:4 in
  let pts = Workload.Placement.grid_jitter prng ~field ~rows:4 ~cols:5 ~jitter:10. in
  Alcotest.(check int) "rows*cols" 20 (Array.length pts);
  Alcotest.(check bool) "in field" true (Array.for_all in_field pts);
  (* zero jitter puts nodes exactly at cell centers *)
  let exact = Workload.Placement.grid_jitter prng ~field ~rows:2 ~cols:2 ~jitter:0. in
  Alcotest.(check bool) "first cell center" true
    (Geom.Vec2.equal exact.(0) (Geom.Vec2.make 250. 125.))

let test_scenario () =
  let sc = Workload.Scenario.paper ~seed:5 in
  Alcotest.(check int) "n" 100 sc.Workload.Scenario.n;
  let pl = Workload.Scenario.pathloss sc in
  Alcotest.(check (float 1e-9)) "R" 500. (Radio.Pathloss.max_range pl);
  let pts = Workload.Scenario.positions sc in
  Alcotest.(check int) "positions" 100 (Array.length pts);
  Alcotest.(check bool) "reproducible" true (pts = Workload.Scenario.positions sc);
  let seeds = Workload.Scenario.seeds ~base:7 ~count:100 in
  Alcotest.(check int) "seed count" 100 (List.length seeds);
  Alcotest.(check int) "distinct" 100
    (List.length (List.sort_uniq Int.compare seeds))

let test_mobility_bounds_and_speed () =
  let prng = Prng.create ~seed:6 in
  let start = Workload.Placement.uniform (Prng.create ~seed:7) ~field ~n:50 in
  let params = { Workload.Mobility.speed_lo = 5.; speed_hi = 20.; pause = 1. } in
  let m = Workload.Mobility.create prng ~field ~params start in
  let prev = ref (Workload.Mobility.positions m) in
  for _ = 1 to 100 do
    Workload.Mobility.step m ~dt:1.;
    let cur = Workload.Mobility.positions m in
    Array.iteri
      (fun i p ->
        if not (in_field p) then Alcotest.fail "left the field";
        let moved = Geom.Vec2.dist !prev.(i) p in
        if moved > 20. +. 1e-6 then
          Alcotest.failf "node %d moved %g > max speed" i moved)
      cur;
    prev := cur
  done

let test_mobility_moves_and_freezes () =
  let prng = Prng.create ~seed:8 in
  let start = Workload.Placement.uniform (Prng.create ~seed:9) ~field ~n:20 in
  let m =
    Workload.Mobility.create prng ~field
      ~params:Workload.Mobility.default_params start
  in
  Workload.Mobility.step m ~dt:10.;
  let moved = Workload.Mobility.positions m in
  Alcotest.(check bool) "someone moved" true
    (Array.exists2 (fun a b -> not (Geom.Vec2.equal a b)) start moved);
  Workload.Mobility.freeze m;
  Workload.Mobility.step m ~dt:10.;
  Alcotest.(check bool) "frozen" true (moved = Workload.Mobility.positions m)

let test_mobility_waypoint_progress () =
  (* With a long enough run, every node passes through at least one pause
     (reaches a waypoint). *)
  let prng = Prng.create ~seed:10 in
  let start = Workload.Placement.uniform (Prng.create ~seed:11) ~field ~n:5 in
  let params = { Workload.Mobility.speed_lo = 50.; speed_hi = 50.; pause = 0.5 } in
  let m = Workload.Mobility.create prng ~field ~params start in
  for _ = 1 to 200 do
    Workload.Mobility.step m ~dt:1.
  done;
  (* positions remain valid and nodes are not all stuck at start *)
  Alcotest.(check bool) "moved far" true
    (Array.exists2
       (fun a b -> Geom.Vec2.dist a b > 100.)
       start
       (Workload.Mobility.positions m))

let test_direction_model () =
  let prng = Prng.create ~seed:13 in
  let start = Workload.Placement.uniform (Prng.create ~seed:14) ~field ~n:30 in
  let params = { Workload.Mobility.speed_lo = 10.; speed_hi = 30.; pause = 1. } in
  let m = Workload.Mobility.Direction.create prng ~field ~params start in
  for _ = 1 to 200 do
    Workload.Mobility.Direction.step m ~dt:1.;
    Array.iter
      (fun p -> if not (in_field p) then Alcotest.fail "left the field")
      (Workload.Mobility.Direction.positions m)
  done;
  let final = Workload.Mobility.Direction.positions m in
  Alcotest.(check bool) "nodes moved" true
    (Array.exists2 (fun a b -> Geom.Vec2.dist a b > 50.) start final);
  Workload.Mobility.Direction.freeze m;
  Workload.Mobility.Direction.step m ~dt:5.;
  Alcotest.(check bool) "frozen" true
    (final = Workload.Mobility.Direction.positions m);
  Alcotest.check_raises "bad speeds"
    (Invalid_argument "Mobility.Direction.create: bad speed range") (fun () ->
      ignore
        (Workload.Mobility.Direction.create prng ~field
           ~params:{ Workload.Mobility.speed_lo = 0.; speed_hi = 1.; pause = 0. }
           [| Geom.Vec2.zero |]))

let test_mobility_validation () =
  let prng = Prng.create ~seed:1 in
  Alcotest.check_raises "bad speeds" (Invalid_argument "Mobility.create: bad speed range")
    (fun () ->
      ignore
        (Workload.Mobility.create prng ~field
           ~params:{ Workload.Mobility.speed_lo = 0.; speed_hi = 1.; pause = 0. }
           [| Geom.Vec2.zero |]));
  let m =
    Workload.Mobility.create prng ~field
      ~params:Workload.Mobility.default_params [| Geom.Vec2.zero |]
  in
  Alcotest.check_raises "negative dt" (Invalid_argument "Mobility.step: negative dt")
    (fun () -> Workload.Mobility.step m ~dt:(-1.));
  (* NaN slips through plain comparisons — validation must reject it *)
  let reject name params msg =
    Alcotest.check_raises name (Invalid_argument msg) (fun () ->
        ignore (Workload.Mobility.create (Prng.create ~seed:2) ~field ~params [||]))
  in
  let ok = Workload.Mobility.default_params in
  reject "nan speed_lo"
    { ok with Workload.Mobility.speed_lo = Float.nan }
    "Mobility.create: bad speed range";
  reject "nan speed_hi"
    { ok with Workload.Mobility.speed_hi = Float.nan }
    "Mobility.create: bad speed range";
  reject "infinite speed_hi"
    { ok with Workload.Mobility.speed_hi = Float.infinity }
    "Mobility.create: bad speed range";
  reject "inverted range"
    { ok with Workload.Mobility.speed_lo = 10.; speed_hi = 5. }
    "Mobility.create: bad speed range";
  reject "nan pause"
    { ok with Workload.Mobility.pause = Float.nan }
    "Mobility.create: negative pause";
  reject "negative pause"
    { ok with Workload.Mobility.pause = -1. }
    "Mobility.create: negative pause";
  (* the exposed validator carries the caller's prefix (CLI front ends
     reject bad flags eagerly with it) *)
  Alcotest.check_raises "validator prefix"
    (Invalid_argument "daemon: negative pause") (fun () ->
      Workload.Mobility.validate_params ~who:"daemon"
        { ok with Workload.Mobility.pause = -2. });
  Alcotest.check_raises "Direction validates too"
    (Invalid_argument "Mobility.Direction.create: negative pause") (fun () ->
      ignore
        (Workload.Mobility.Direction.create (Prng.create ~seed:3) ~field
           ~params:{ ok with Workload.Mobility.pause = -1. }
           [||]))

let () =
  Alcotest.run "workload"
    [
      ( "placement",
        [
          Alcotest.test_case "uniform" `Quick test_uniform;
          Alcotest.test_case "clustered" `Quick test_clustered;
          Alcotest.test_case "clustered resamples" `Quick test_clustered_resamples;
          Alcotest.test_case "clustered digest pin" `Quick test_clustered_digest_pin;
          Alcotest.test_case "obstacle terrain" `Quick test_obstacle_terrain;
          Alcotest.test_case "obstructed" `Quick test_obstructed;
          Alcotest.test_case "projected 3d" `Quick test_projected_3d;
          Alcotest.test_case "grid jitter" `Quick test_grid_jitter;
        ] );
      ("scenario", [ Alcotest.test_case "paper setup" `Quick test_scenario ]);
      ( "mobility",
        [
          Alcotest.test_case "bounds and speed" `Quick test_mobility_bounds_and_speed;
          Alcotest.test_case "moves and freezes" `Quick test_mobility_moves_and_freezes;
          Alcotest.test_case "waypoint progress" `Quick test_mobility_waypoint_progress;
          Alcotest.test_case "random direction model" `Quick test_direction_model;
          Alcotest.test_case "validation" `Quick test_mobility_validation;
        ] );
    ]
