(* Tests for the CBTC core: configuration, power schedules, neighbor
   records, and the centralized geometric oracle on hand-built layouts. *)

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let alpha56 = Geom.Angle.five_pi_six

let pl = Radio.Pathloss.make ~max_range:100. ()

let max_p = Radio.Pathloss.max_power pl

let neighbor_ids (d : Cbtc.Discovery.t) u =
  List.map (fun (n : Cbtc.Neighbor.t) -> n.Cbtc.Neighbor.id) d.neighbors.(u)

(* ---------- Config ---------- *)

let test_config_validation () =
  ignore (Cbtc.Config.make alpha56);
  ignore (Cbtc.Config.make ~growth:(Cbtc.Config.Double 1.) 1.0);
  Alcotest.check_raises "alpha 0" (Invalid_argument "Config: alpha out of (0, 2pi]")
    (fun () -> ignore (Cbtc.Config.make 0.));
  Alcotest.check_raises "alpha > 2pi" (Invalid_argument "Config: alpha out of (0, 2pi]")
    (fun () -> ignore (Cbtc.Config.make 7.));
  Alcotest.check_raises "p0" (Invalid_argument "Config: non-positive initial power")
    (fun () -> ignore (Cbtc.Config.make ~growth:(Cbtc.Config.Double 0.) 1.));
  Alcotest.check_raises "factor"
    (Invalid_argument "Config: growth factor must exceed 1") (fun () ->
      ignore
        (Cbtc.Config.make ~growth:(Cbtc.Config.Mult { p0 = 1.; factor = 1. }) 1.))

let test_config_thresholds () =
  Alcotest.(check bool) "5pi/6 preserves" true
    (Cbtc.Config.preserves_connectivity (Cbtc.Config.make alpha56));
  Alcotest.(check bool) "above 5pi/6 does not" false
    (Cbtc.Config.preserves_connectivity (Cbtc.Config.make (alpha56 +. 0.01)));
  Alcotest.(check bool) "2pi/3 allows asym" true
    (Cbtc.Config.allows_asymmetric_removal
       (Cbtc.Config.make Geom.Angle.two_pi_three));
  Alcotest.(check bool) "5pi/6 does not allow asym" false
    (Cbtc.Config.allows_asymmetric_removal (Cbtc.Config.make alpha56))

let test_power_steps_exact () =
  let c = Cbtc.Config.make alpha56 in
  Alcotest.(check (list (float 1e-9))) "sorted unique link powers"
    [ 1.; 2.; 5. ]
    (Cbtc.Config.power_steps c ~pathloss:pl ~link_powers:[ 5.; 1.; 2.; 1. ]);
  Alcotest.(check (list (float 1e-9))) "no candidates falls back to P"
    [ max_p ]
    (Cbtc.Config.power_steps c ~pathloss:pl ~link_powers:[])

let test_power_steps_double () =
  let c = Cbtc.Config.make ~growth:(Cbtc.Config.Double 1000.) alpha56 in
  let steps = Cbtc.Config.power_steps c ~pathloss:pl ~link_powers:[] in
  (* 1000, 2000, 4000, 8000, and the final step is exactly P = 10000. *)
  Alcotest.(check (list (float 1e-6))) "doubling, clamped at P"
    [ 1000.; 2000.; 4000.; 8000.; max_p ]
    steps;
  (* each step at most doubles, so power overshoot is bounded by 2x *)
  let rec ratios = function
    | a :: (b :: _ as rest) ->
        if b /. a > 2. +. 1e-9 then Alcotest.failf "step ratio %g > 2" (b /. a);
        ratios rest
    | _ -> ()
  in
  ratios steps

let test_power_steps_mult () =
  let c =
    Cbtc.Config.make ~growth:(Cbtc.Config.Mult { p0 = 100.; factor = 10. })
      alpha56
  in
  Alcotest.(check (list (float 1e-6))) "mult schedule"
    [ 100.; 1000.; max_p ]
    (Cbtc.Config.power_steps c ~pathloss:pl ~link_powers:[])

(* ---------- Neighbor ---------- *)

let test_neighbor_ordering () =
  let mk id link tag =
    Cbtc.Neighbor.make ~id ~dir:0.5 ~link_power:link ~tag
  in
  let a = mk 1 2. 4. and b = mk 2 1. 8. and c = mk 3 2. 2. in
  let by_link = List.sort Cbtc.Neighbor.compare_by_link_power [ a; b; c ] in
  Alcotest.(check (list int)) "by link power then id" [ 2; 1; 3 ]
    (List.map (fun (n : Cbtc.Neighbor.t) -> n.Cbtc.Neighbor.id) by_link);
  let by_tag = List.sort Cbtc.Neighbor.compare_by_tag [ a; b; c ] in
  Alcotest.(check (list int)) "by tag" [ 3; 1; 2 ]
    (List.map (fun (n : Cbtc.Neighbor.t) -> n.Cbtc.Neighbor.id) by_tag);
  Alcotest.check_raises "negative link power"
    (Invalid_argument "Neighbor.make: negative link power") (fun () ->
      ignore (mk 1 (-1.) 0.))

(* ---------- Geo oracle on hand layouts ---------- *)

let run ?growth positions =
  Cbtc.Geo.run (Cbtc.Config.make ?growth alpha56) pl positions

let test_single_node () =
  let d = run [| Geom.Vec2.zero |] in
  Alcotest.(check (list int)) "no neighbors" [] (neighbor_ids d 0);
  Alcotest.(check bool) "boundary" true d.boundary.(0);
  check_float "power is P" max_p d.power.(0);
  Cbtc.Discovery.check_invariants d

let test_degenerate_inputs () =
  (* The oracle must survive an empty network and coincident nodes
     without crashing or producing non-finite powers.  A node stacked
     exactly on another has no direction to it (atan2 0 0), which used
     to poison the gap test. *)
  let empty = run [||] in
  Alcotest.(check int) "empty network" 0 (Array.length empty.power);
  let stacked = run [| Geom.Vec2.zero; Geom.Vec2.zero; Geom.Vec2.zero |] in
  Cbtc.Discovery.check_invariants stacked;
  Array.iter
    (fun p -> Alcotest.(check bool) "finite power" true (Float.is_finite p))
    stacked.power;
  let mixed = run [| Geom.Vec2.zero; Geom.Vec2.zero; Geom.Vec2.make 30. 0. |] in
  Cbtc.Discovery.check_invariants mixed;
  Array.iter
    (fun p -> Alcotest.(check bool) "finite power" true (Float.is_finite p))
    mixed.power

let test_two_nodes () =
  (* A single direction can never close the cone gap: both nodes grow to
     maximum power and end up boundary nodes knowing each other. *)
  let d = run [| Geom.Vec2.zero; Geom.Vec2.make 30. 0. |] in
  Alcotest.(check (list int)) "0 discovers 1" [ 1 ] (neighbor_ids d 0);
  Alcotest.(check (list int)) "1 discovers 0" [ 0 ] (neighbor_ids d 1);
  Alcotest.(check bool) "both boundary" true (d.boundary.(0) && d.boundary.(1));
  check_float "power P" max_p d.power.(0);
  Cbtc.Discovery.check_invariants d

let test_plus_shape () =
  (* Center with four arms at 90-degree spacing: the center closes its
     cones at the arm distance; arms stay boundary. *)
  let arm = 20. in
  let positions =
    [| Geom.Vec2.zero; Geom.Vec2.make arm 0.; Geom.Vec2.make 0. arm;
       Geom.Vec2.make (-.arm) 0.; Geom.Vec2.make 0. (-.arm) |]
  in
  let d = run positions in
  Alcotest.(check (list int)) "center sees the four arms" [ 1; 2; 3; 4 ]
    (List.sort Int.compare (neighbor_ids d 0));
  Alcotest.(check bool) "center not boundary" false d.boundary.(0);
  check_float "center power = p(arm)"
    (Radio.Pathloss.power_for_distance pl arm)
    d.power.(0);
  Alcotest.(check bool) "arms are boundary" true d.boundary.(1);
  Cbtc.Discovery.check_invariants d

let ring center radius count =
  List.init count (fun i ->
      let theta =
        Stdlib.float_of_int i *. Geom.Angle.two_pi /. Stdlib.float_of_int count
      in
      Geom.Vec2.add center (Geom.Vec2.of_polar ~r:radius ~theta))

let test_exact_growth_stops_at_inner_ring () =
  (* Center node surrounded by an inner ring (6 nodes, gaps 60 < alpha)
     and an outer ring.  Exact growth must stop at the inner ring. *)
  let positions =
    Array.of_list
      ((Geom.Vec2.zero :: ring Geom.Vec2.zero 10. 6) @ ring Geom.Vec2.zero 50. 6)
  in
  let d = run positions in
  Alcotest.(check (list int)) "center keeps only the inner ring"
    [ 1; 2; 3; 4; 5; 6 ]
    (List.sort Int.compare (neighbor_ids d 0));
  check_float "center power = p(10)"
    (Radio.Pathloss.power_for_distance pl 10.)
    d.power.(0);
  Alcotest.(check bool) "center closed its cones" false d.boundary.(0)

let test_stepped_growth_overshoots () =
  (* Same layout under Double growth from p0 = 36 (reaches 6 units):
     steps 36,72,144 — p(10)=100 lands between 72 and 144, so the center
     converges at power 144 and also discovers anything within
     sqrt(144) = 12 units. *)
  let positions =
    Array.of_list
      ((Geom.Vec2.zero :: ring Geom.Vec2.zero 10. 6)
      @ [ Geom.Vec2.make 11. 0.5 ])
  in
  let d = run ~growth:(Cbtc.Config.Double 36.) positions in
  check_float "converged power overshoots to 144" 144. d.power.(0);
  Alcotest.(check (list int)) "overshoot picks up the 11-unit node"
    [ 1; 2; 3; 4; 5; 6; 7 ]
    (List.sort Int.compare (neighbor_ids d 0));
  (* tags record the discovery step *)
  List.iter
    (fun (n : Cbtc.Neighbor.t) ->
      Alcotest.(check bool)
        (Fmt.str "tag of %d is a schedule step" n.Cbtc.Neighbor.id)
        true
        (List.mem n.Cbtc.Neighbor.tag [ 36.; 72.; 144. ]))
    d.neighbors.(0);
  Cbtc.Discovery.check_invariants d

let test_candidates () =
  let positions =
    [| Geom.Vec2.zero; Geom.Vec2.make 10. 0.; Geom.Vec2.make 99. 0.;
       Geom.Vec2.make 101. 0. |]
  in
  let cands = Cbtc.Geo.candidates pl positions 0 in
  Alcotest.(check (list int)) "in-range candidates sorted by distance" [ 1; 2 ]
    (List.map (fun (n : Cbtc.Neighbor.t) -> n.Cbtc.Neighbor.id) cands);
  let gr = Cbtc.Geo.max_power_graph pl positions in
  Alcotest.(check (list (pair int int))) "GR edges"
    [ (0, 1); (0, 2); (1, 2); (1, 3); (2, 3) ]
    (Graphkit.Ugraph.edges gr)

let test_discovery_accessors () =
  let positions =
    [| Geom.Vec2.zero; Geom.Vec2.make 10. 0.; Geom.Vec2.make 0. 25. |]
  in
  let d = run positions in
  let closure = Cbtc.Discovery.closure d in
  Alcotest.(check bool) "closure has 0-1" true (Graphkit.Ugraph.mem_edge closure 0 1);
  let radius = Cbtc.Discovery.radius_in d closure in
  check_float "node 0 radius" 25. radius.(0);
  check_float "node 1 radius reaches node 2"
    (Geom.Vec2.dist positions.(1) positions.(2))
    radius.(1);
  let out = Cbtc.Discovery.out_radius d in
  check_float "out radius node 0" 25. out.(0);
  let rp = Cbtc.Discovery.reach_power_in d closure in
  check_float "reach power node 0"
    (Radio.Pathloss.power_for_distance pl 25.)
    rp.(0)

(* ---------- independent verification ---------- *)

let test_verify_accepts_oracle () =
  let prng = Prng.create ~seed:33 in
  let positions =
    Array.init 40 (fun _ ->
        Geom.Vec2.make (Prng.float prng 300.) (Prng.float prng 300.))
  in
  (* exact growth: complete and minimal *)
  Cbtc.Verify.run ~complete:true ~minimal:true (run positions);
  (* stepped growth: complete but not minimal *)
  Cbtc.Verify.run ~complete:true
    (run ~growth:(Cbtc.Config.Double 25.) positions)

let test_verify_rejects_corruption () =
  let positions =
    [| Geom.Vec2.zero; Geom.Vec2.make 20. 0.; Geom.Vec2.make 0. 20.;
       Geom.Vec2.make (-20.) 0.; Geom.Vec2.make 0. (-20.) |]
  in
  let d = run positions in
  (* corrupt: steal the center's neighbors -> its cones are uncovered *)
  let corrupted =
    { d with Cbtc.Discovery.neighbors =
        (let a = Array.copy d.Cbtc.Discovery.neighbors in
         a.(0) <- [ List.hd a.(0) ];
         a) }
  in
  (match Cbtc.Verify.run corrupted with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "verification accepted an uncovered node");
  (* corrupt: claim a boundary node converged below max power *)
  let low_power =
    { d with Cbtc.Discovery.power =
        (let a = Array.copy d.Cbtc.Discovery.power in
         a.(1) <- 1.;
         a) }
  in
  match Cbtc.Verify.run low_power with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "verification accepted an underpowered boundary node"

(* ---------- fault tolerance (follow-up extension) ---------- *)

let test_fault_tolerant_alpha () =
  let check_float msg expected actual =
    if Float.abs (expected -. actual) > 1e-12 then
      Alcotest.failf "%s: %g vs %g" msg expected actual
  in
  check_float "k=1 is 2pi/3" Geom.Angle.two_pi_three
    (Cbtc.Fault_tolerant.alpha_for ~k:1);
  check_float "k=2" (Float.pi /. 3.) (Cbtc.Fault_tolerant.alpha_for ~k:2);
  Alcotest.check_raises "k 0" (Invalid_argument "Fault_tolerant.alpha_for: k < 1")
    (fun () -> ignore (Cbtc.Fault_tolerant.alpha_for ~k:0))

let test_fault_tolerant_preserves_k_connectivity () =
  (* Dense scenarios whose GR is 2- (resp. 3-) connected must stay so
     under CBTC(2pi/3k). *)
  let tried = ref 0 and held = ref 0 in
  List.iter
    (fun seed ->
      let sc = Workload.Scenario.make ~n:60 ~width:800. ~height:800. ~seed () in
      let plw = Workload.Scenario.pathloss sc in
      let positions = Workload.Scenario.positions sc in
      List.iter
        (fun k ->
          let gr_ok, topo_ok = Cbtc.Fault_tolerant.check ~k plw positions in
          if gr_ok then begin
            incr tried;
            if topo_ok then incr held
            else
              Alcotest.failf "seed %d k=%d: GR %d-connected but topology not"
                seed k k
          end)
        [ 2; 3 ])
    [ 1; 2; 3 ];
  Alcotest.(check bool) "at least one k-connected GR in the sample" true
    (!tried > 0);
  Alcotest.(check int) "all preserved" !tried !held

(* ---------- properties ---------- *)

let positions_gen =
  QCheck.Gen.(
    int_range 2 40 >>= fun n ->
    list_repeat n (pair (float_bound_exclusive 300.) (float_bound_exclusive 300.))
    >|= fun pts -> Array.of_list (List.map (fun (x, y) -> Geom.Vec2.make x y) pts))

let prop_invariants_random =
  QCheck.Test.make ~count:60 ~name:"oracle output satisfies invariants"
    (QCheck.make positions_gen)
    (fun positions ->
      let d = run positions in
      Cbtc.Discovery.check_invariants d;
      Cbtc.Verify.run ~complete:true ~minimal:true d;
      true)

let prop_stepped_power_dominates_exact =
  QCheck.Test.make ~count:40
    ~name:"stepped growth never uses less power than exact growth"
    (QCheck.make positions_gen)
    (fun positions ->
      let exact = run positions in
      let stepped = run ~growth:(Cbtc.Config.Double 25.) positions in
      let ok = ref true in
      for u = 0 to Array.length positions - 1 do
        if stepped.power.(u) < exact.power.(u) -. 1e-9 then ok := false;
        (* and discovers at least the exact neighbors *)
        let ids d = neighbor_ids d u in
        if not (List.for_all (fun v -> List.mem v (ids stepped)) (ids exact))
        then ok := false
      done;
      !ok)

let prop_nalpha_within_range =
  QCheck.Test.make ~count:60 ~name:"discovered neighbors are within radio range"
    (QCheck.make positions_gen)
    (fun positions ->
      let d = run positions in
      let ok = ref true in
      Array.iteri
        (fun u ns ->
          List.iter
            (fun (n : Cbtc.Neighbor.t) ->
              let dist = Geom.Vec2.dist positions.(u) positions.(n.Cbtc.Neighbor.id) in
              if not (Radio.Pathloss.in_range pl ~dist) then ok := false)
            ns)
        d.Cbtc.Discovery.neighbors;
      !ok)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "cbtc-core"
    [
      ( "config",
        [
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "thresholds" `Quick test_config_thresholds;
          Alcotest.test_case "exact steps" `Quick test_power_steps_exact;
          Alcotest.test_case "double steps" `Quick test_power_steps_double;
          Alcotest.test_case "mult steps" `Quick test_power_steps_mult;
        ] );
      ("neighbor", [ Alcotest.test_case "ordering" `Quick test_neighbor_ordering ]);
      ( "geo",
        [
          Alcotest.test_case "single node" `Quick test_single_node;
          Alcotest.test_case "degenerate inputs" `Quick test_degenerate_inputs;
          Alcotest.test_case "two nodes" `Quick test_two_nodes;
          Alcotest.test_case "plus shape" `Quick test_plus_shape;
          Alcotest.test_case "exact growth stops early" `Quick
            test_exact_growth_stops_at_inner_ring;
          Alcotest.test_case "stepped growth overshoots" `Quick
            test_stepped_growth_overshoots;
          Alcotest.test_case "candidates and GR" `Quick test_candidates;
          Alcotest.test_case "discovery accessors" `Quick test_discovery_accessors;
        ] );
      ( "verify",
        [
          Alcotest.test_case "accepts oracle output" `Quick test_verify_accepts_oracle;
          Alcotest.test_case "rejects corruption" `Quick test_verify_rejects_corruption;
        ] );
      ( "fault-tolerant",
        [
          Alcotest.test_case "alpha parameterization" `Quick test_fault_tolerant_alpha;
          Alcotest.test_case "preserves k-connectivity" `Quick
            test_fault_tolerant_preserves_k_connectivity;
        ] );
      ( "properties",
        qsuite
          [
            prop_invariants_random;
            prop_stepped_power_dominates_exact;
            prop_nalpha_within_range;
          ] );
    ]
