(* Tests for the slotted-ALOHA MAC simulation with geometric
   interference. *)

let positions_pair =
  [| Geom.Vec2.zero; Geom.Vec2.make 10. 0. |]

let pair_graph = Graphkit.Ugraph.of_edges 2 [ (0, 1) ]

let test_no_traffic () =
  let prng = Prng.create ~seed:1 in
  let r =
    Mac.Aloha.run prng positions_pair ~radius:[| 10.; 10. |] ~graph:pair_graph
      { Mac.Aloha.attempt_prob = 0.; slots = 100 }
  in
  Alcotest.(check int) "nothing offered" 0 r.Mac.Aloha.offered;
  Alcotest.(check int) "nothing delivered" 0 r.Mac.Aloha.delivered

let test_always_transmit_pair () =
  (* Both nodes transmit every slot: every reception attempt finds its
     receiver busy; nothing is ever delivered. *)
  let prng = Prng.create ~seed:2 in
  let r =
    Mac.Aloha.run prng positions_pair ~radius:[| 10.; 10. |] ~graph:pair_graph
      { Mac.Aloha.attempt_prob = 1.; slots = 50 }
  in
  Alcotest.(check int) "offered" 100 r.Mac.Aloha.offered;
  Alcotest.(check int) "all busy" 100 r.Mac.Aloha.busy_receiver;
  Alcotest.(check int) "none delivered" 0 r.Mac.Aloha.delivered

let test_isolated_never_transmits () =
  let prng = Prng.create ~seed:3 in
  let g = Graphkit.Ugraph.create 2 in
  let r =
    Mac.Aloha.run prng positions_pair ~radius:[| 0.; 0. |] ~graph:g
      { Mac.Aloha.attempt_prob = 1.; slots = 50 }
  in
  Alcotest.(check int) "no neighbors, no offers" 0 r.Mac.Aloha.offered

let test_hidden_interferer () =
  (* Three collinear nodes: 0 -> 1 succeeds only when 2 (whose disk
     covers 1) is silent.  With node 2 transmitting every slot toward 1?
     no — 2's only neighbor is 1, so when 2 transmits, 1 is the target
     and busy_receiver or collision results.  Give 2 a private partner 3
     far to the right so its traffic is pure interference for 1. *)
  let positions =
    [| Geom.Vec2.zero; Geom.Vec2.make 10. 0.; Geom.Vec2.make 20. 0.;
       Geom.Vec2.make 30. 0. |]
  in
  let g = Graphkit.Ugraph.of_edges 4 [ (0, 1); (2, 3) ] in
  let radius = [| 10.; 10.; 10.; 10. |] in
  (* deterministic stress: everyone transmits all the time *)
  let prng = Prng.create ~seed:4 in
  let r =
    Mac.Aloha.run prng positions ~radius ~graph:g
      { Mac.Aloha.attempt_prob = 1.; slots = 40 }
  in
  (* 0->1: node 1 transmits too (to 0), so receiver busy dominates; the
     interesting check is totals are conserved *)
  Alcotest.(check int) "conservation" r.Mac.Aloha.offered
    (r.Mac.Aloha.delivered + r.Mac.Aloha.collisions + r.Mac.Aloha.busy_receiver)

let test_conservation_random () =
  let sc = Workload.Scenario.make ~n:50 ~seed:41 () in
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  let g = Baselines.Proximity.max_power pl positions in
  let radius = Baselines.Proximity.radius_of ~full_power:true pl positions g in
  let prng = Prng.create ~seed:5 in
  let r =
    Mac.Aloha.run prng positions ~radius ~graph:g
      { Mac.Aloha.attempt_prob = 0.1; slots = 200 }
  in
  Alcotest.(check int) "conservation" r.Mac.Aloha.offered
    (r.Mac.Aloha.delivered + r.Mac.Aloha.collisions + r.Mac.Aloha.busy_receiver);
  Alcotest.(check bool) "something happened" true (r.Mac.Aloha.offered > 0)

let test_topology_control_improves_goodput () =
  (* The interference story end-to-end: same traffic process, same
     placement — the CBTC-controlled radii deliver more. *)
  let sc = Workload.Scenario.paper ~seed:42 in
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  let gr = Baselines.Proximity.max_power pl positions in
  let config = Cbtc.Config.make Geom.Angle.five_pi_six in
  let r = Cbtc.Pipeline.run_oracle pl positions (Cbtc.Pipeline.all_ops config) in
  let params = { Mac.Aloha.attempt_prob = 0.1; slots = 500 } in
  let full =
    Mac.Aloha.run (Prng.create ~seed:6) positions
      ~radius:(Baselines.Proximity.radius_of ~full_power:true pl positions gr)
      ~graph:gr params
  in
  let thin =
    Mac.Aloha.run (Prng.create ~seed:6) positions ~radius:r.Cbtc.Pipeline.radius
      ~graph:r.Cbtc.Pipeline.graph params
  in
  Alcotest.(check bool)
    (Fmt.str "goodput %.4f (CBTC) > %.4f (max power)" thin.Mac.Aloha.goodput
       full.Mac.Aloha.goodput)
    true
    (thin.Mac.Aloha.goodput > full.Mac.Aloha.goodput)

let test_validation () =
  let prng = Prng.create ~seed:1 in
  Alcotest.check_raises "sizes" (Invalid_argument "Aloha.run: size mismatch")
    (fun () ->
      ignore
        (Mac.Aloha.run prng positions_pair ~radius:[| 1. |] ~graph:pair_graph
           Mac.Aloha.default_params));
  Alcotest.check_raises "prob" (Invalid_argument "Aloha.run: attempt_prob out of [0,1]")
    (fun () ->
      ignore
        (Mac.Aloha.run prng positions_pair ~radius:[| 1.; 1. |]
           ~graph:pair_graph
           { Mac.Aloha.attempt_prob = 1.5; slots = 1 }))

let () =
  Alcotest.run "mac"
    [
      ( "aloha",
        [
          Alcotest.test_case "no traffic" `Quick test_no_traffic;
          Alcotest.test_case "saturated pair" `Quick test_always_transmit_pair;
          Alcotest.test_case "isolated never transmits" `Quick
            test_isolated_never_transmits;
          Alcotest.test_case "hidden interferer conservation" `Quick
            test_hidden_interferer;
          Alcotest.test_case "conservation on random net" `Quick
            test_conservation_random;
          Alcotest.test_case "topology control improves goodput" `Quick
            test_topology_control_improves_goodput;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
