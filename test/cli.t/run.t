The CLI's deterministic subcommands produce stable output (seeded PRNG).

  $ cbtc_cli theory
  Example 2.1: (v,u0) in N = true, (u0,v) in N = false (asymmetric: true)
  Theorem 2.4: GR connected = true, G(5pi/6+eps) connected = false
  $ cbtc_cli run --n 30 --seed 5 --opts all
  scenario: scenario(n=30, 1500x1500, R=500, n_exp=2, seed=5)
  config:   CBTC(alpha=2.6180 rad (150.0 deg), growth=exact)
  edges:    42 (GR has 149)
  degree:   2.80 (GR 9.93)
  radius:   236.6 (max power 500)
  degree distribution: n=30 mean=2.800 sd=1.270 min=1.000 p25=2.000 med=3.000 p75=3.000 max=6.000
  connectivity preserved: true
  $ cbtc_cli sweep --n 30 --seed 5 --count 3 --opts none
  alpha  avg degree  avg radius  preserved
  ----------------------------------------
  pi/3   8.7         460.0       3/3      
  pi/2   8.6         459.3       3/3      
  2pi/3  8.1         453.7       3/3      
  3pi/4  7.8         450.2       3/3      
  5pi/6  7.4         446.4       3/3      

Malformed stress scenario flags are rejected before any simulation runs.

  $ cbtc_cli stress --loss 0.1,oops
  cbtc: option '--loss': --loss: "oops" is not a float
  Usage: cbtc stress [OPTION]…
  Try 'cbtc stress --help' or 'cbtc --help' for more information.
  [124]
  $ cbtc_cli stress --crash 1.5
  cbtc: option '--crash': --crash: 1.5 out of [0,1]
  Usage: cbtc stress [OPTION]…
  Try 'cbtc stress --help' or 'cbtc --help' for more information.
  [124]
  $ cbtc_cli stress --loss 0.7
  cbtc: option '--loss': --loss: 0.7 out of [0,0.5]
  Usage: cbtc stress [OPTION]…
  Try 'cbtc stress --help' or 'cbtc --help' for more information.
  [124]
  $ cbtc_cli stress --burstiness 0.5
  cbtc: option '--burstiness': --burstiness: 0.5 out of [1,1000]
  Usage: cbtc stress [OPTION]…
  Try 'cbtc stress --help' or 'cbtc --help' for more information.
  [124]

Malformed -j / --jobs values are rejected the same way (also reachable
via the CBTC_JOBS environment variable).

  $ cbtc_cli stress -j 0
  cbtc: option '-j': jobs must be in [1, 1024] (got 0)
  Usage: cbtc stress [OPTION]…
  Try 'cbtc stress --help' or 'cbtc --help' for more information.
  [124]
  $ cbtc_cli stress -j oops
  cbtc: option '-j': jobs must be an integer (got "oops")
  Usage: cbtc stress [OPTION]…
  Try 'cbtc stress --help' or 'cbtc --help' for more information.
  [124]
  $ cbtc_cli sweep -j 2048
  cbtc: option '-j': jobs must be in [1, 1024] (got 2048)
  Usage: cbtc sweep [OPTION]…
  Try 'cbtc sweep --help' or 'cbtc --help' for more information.
  [124]
  $ CBTC_JOBS=nope cbtc_cli sweep --count 1
  cbtc: environment variable 'CBTC_JOBS': jobs must be an integer (got "nope")
  Usage: cbtc sweep [OPTION]…
  Try 'cbtc sweep --help' or 'cbtc --help' for more information.
  [124]

Malformed observability output paths fail fast with a distinct exit
code, before any simulation work runs.

  $ cbtc_cli run -n 4 --trace-out /nonexistent-dir/t.jsonl
  cbtc: cannot open output file: /nonexistent-dir/t.jsonl: No such file or directory
  [3]
  $ cbtc_cli sweep --count 1 --metrics-out /nonexistent-dir/m.json
  cbtc: cannot open output file: /nonexistent-dir/m.json: No such file or directory
  [3]
  $ cbtc_cli protocol -n 4 --trace-out /nonexistent-dir/p.jsonl
  cbtc: cannot open output file: /nonexistent-dir/p.jsonl: No such file or directory
  [3]

Node counts below 2 are rejected up front: a zero- or one-node network
has no topology to control.

  $ cbtc_cli run -n 1
  cbtc: option '-n': node count must be at least 2 (got 1); a one-node network
        has no topology to control
  Usage: cbtc run [OPTION]…
  Try 'cbtc run --help' or 'cbtc --help' for more information.
  [124]
  $ cbtc_cli sweep -n 0 --count 1
  cbtc: option '-n': node count must be at least 2 (got 0); a 0-node network
        has no topology to control
  Usage: cbtc sweep [OPTION]…
  Try 'cbtc sweep --help' or 'cbtc --help' for more information.
  [124]

The daemon subcommand validates its stream and loop parameters up
front: negative rates, zero durations and malformed storm specs are
command-line errors, and a checkpoint that cannot be loaded is a
distinct runtime failure (exit 2), mirroring check --replay.

  $ cbtc_cli daemon --move-rate=-3
  cbtc: option '--move-rate': --move-rate: -3 is not >= 0
  Usage: cbtc daemon [OPTION]…
  Try 'cbtc daemon --help' or 'cbtc --help' for more information.
  [124]
  $ cbtc_cli daemon --duration 0
  cbtc: option '--duration': --duration: 0 is not > 0
  Usage: cbtc daemon [OPTION]…
  Try 'cbtc daemon --help' or 'cbtc --help' for more information.
  [124]
  $ cbtc_cli daemon --event-dt 0
  cbtc: option '--event-dt': --event-dt: 0 is not > 0
  Usage: cbtc daemon [OPTION]…
  Try 'cbtc daemon --help' or 'cbtc --help' for more information.
  [124]
  $ cbtc_cli daemon --storm 4:2:10
  cbtc: option '--storm': --storm: "4:2:10" is not T0:T1:MULT with 0 <= T0 < T1
        and MULT > 0
  Usage: cbtc daemon [OPTION]…
  Try 'cbtc daemon --help' or 'cbtc --help' for more information.
  [124]
  $ cbtc_cli daemon --queue-cap 0
  cbtc: option '--queue-cap': --queue-cap: 0 is not >= 1
  Usage: cbtc daemon [OPTION]…
  Try 'cbtc daemon --help' or 'cbtc --help' for more information.
  [124]
  $ cbtc_cli daemon --watchdog=-0.5
  cbtc: option '--watchdog': --watchdog: -0.5 is not >= 0
  Usage: cbtc daemon [OPTION]…
  Try 'cbtc daemon --help' or 'cbtc --help' for more information.
  [124]
  $ cbtc_cli daemon --shards=-1
  cbtc: option '--shards': --shards: -1 is not >= 0
  Usage: cbtc daemon [OPTION]…
  Try 'cbtc daemon --help' or 'cbtc --help' for more information.
  [124]
  $ cbtc_cli daemon --shards seven
  cbtc: option '--shards': --shards: seven is not >= 0
  Usage: cbtc daemon [OPTION]…
  Try 'cbtc daemon --help' or 'cbtc --help' for more information.
  [124]
  $ cbtc_cli daemon --restore /nonexistent/daemon.ckpt
  daemon: Daemon.Checkpoint: cannot open: /nonexistent/daemon.ckpt: No such file or directory
  [2]

The new flags appear in the usage text, and a trace sink that cannot
be opened fails fast (exit 3) like the other observability sinks.

  $ cbtc_cli daemon --help=plain | grep -A2 -e '--shards' -e '--trace-out' | head -8
         --shards=K (absent=0)
             Spatial shards per pooled commit (0 = one per pool chunk). Reports
             are byte-identical for every value; tune only for load balance.
  --
         --trace-out=FILE
             Write a JSON-lines trace (run manifest, then per-epoch
             drain/dirty-propagate/regrow/verify spans and counters) to FILE.
  $ cbtc_cli daemon -n 12 --duration 2 --trace-out /nonexistent/dir/t.jsonl
  cbtc: cannot open output file: /nonexistent/dir/t.jsonl: No such file or directory
  [3]
  $ cbtc_cli daemon-sweep --seeds 0
  cbtc: option '--seeds': --seeds: 0 out of [1, 100000]
  Usage: cbtc daemon-sweep [OPTION]…
  Try 'cbtc daemon-sweep --help' or 'cbtc --help' for more information.
  [124]

The propagation-environment flag --sigma must be a finite dB value
>= 0 (a conv parse error, like any malformed option).

  $ cbtc_cli run --sigma=-1
  cbtc: option '--sigma': --sigma: -1 is not a finite dB value >= 0
  Usage: cbtc run [OPTION]…
  Try 'cbtc run --help' or 'cbtc --help' for more information.
  [124]
  $ cbtc_cli run --sigma nope
  cbtc: option '--sigma': --sigma: nope is not a finite dB value >= 0
  Usage: cbtc run [OPTION]…
  Try 'cbtc run --help' or 'cbtc --help' for more information.
  [124]

A sigma > 0 run is deterministic per (--seed, --shadow-seed): shadowing
is a hashed pure function of the node pair, not a PRNG stream.  The
reference graph becomes G_R^env (here denser than G_R: shadowing lets
some longer links through).

  $ cbtc_cli run --n 30 --seed 5 --sigma 4 --opts all
  scenario: scenario(n=30, 1500x1500, R=500, n_exp=2, seed=5)
  config:   CBTC(alpha=2.6180 rad (150.0 deg), growth=exact)
  edges:    40 (GR has 166)
  degree:   2.67 (GR 11.07)
  radius:   251.5 (max power 500)
  degree distribution: n=30 mean=2.667 sd=1.295 min=1.000 p25=2.000 med=2.000 p75=3.000 max=7.000
  connectivity preserved: true

The daemon's mobility overrides split syntax from semantics: a --speed
that is not LO:HI is a parse error (124), while an inverted range or a
negative pause parses fine and is rejected by the model's own
validation before any simulation work (exit 2, like a bad --restore).

  $ cbtc_cli daemon --speed 5
  cbtc: option '--speed': --speed: "5" is not LO:HI (two floats)
  Usage: cbtc daemon [OPTION]…
  Try 'cbtc daemon --help' or 'cbtc --help' for more information.
  [124]
  $ cbtc_cli daemon --speed oops:3
  cbtc: option '--speed': --speed: "oops:3" is not LO:HI (two floats)
  Usage: cbtc daemon [OPTION]…
  Try 'cbtc daemon --help' or 'cbtc --help' for more information.
  [124]
  $ cbtc_cli daemon --speed 10:5
  daemon: bad speed range
  [2]
  $ cbtc_cli daemon --speed 0:5
  daemon: bad speed range
  [2]
  $ cbtc_cli daemon --speed 1e500:1e501
  daemon: bad speed range
  [2]
  $ cbtc_cli daemon --pause=-1
  daemon: negative pause
  [2]

The lifetime scheduler splits syntax from semantics the same way: a
non-integer rotation period or a non-float duty is a conv parse error
(124), while a negative rotation period, an out-of-range duty fraction,
a non-positive capacity, or an unknown topology family parses fine and
is rejected by the policy's own validation before any simulation work
(exit 2).

  $ cbtc_cli lifetime --rotation-period x
  cbtc: option '--rotation-period': invalid value 'x', expected an integer
  Usage: cbtc lifetime [OPTION]…
  Try 'cbtc lifetime --help' or 'cbtc --help' for more information.
  [124]
  $ cbtc_cli lifetime --duty often
  cbtc: option '--duty': invalid value 'often', expected a floating point
        number
  Usage: cbtc lifetime [OPTION]…
  Try 'cbtc lifetime --help' or 'cbtc --help' for more information.
  [124]
  $ cbtc_cli lifetime --rotation-period=-3
  lifetime: rotation period must be >= 0
  [2]
  $ cbtc_cli lifetime --duty 1.5
  lifetime: duty fraction must lie in [0, 1]
  [2]
  $ cbtc_cli lifetime --duty 0.5 --rotation-period 0
  lifetime: duty-cycling (duty < 1) requires a rotation period >= 1
  [2]
  $ cbtc_cli lifetime --capacity 0
  lifetime: capacity must be a positive finite energy (got 0)
  [2]
  $ cbtc_cli lifetime --idle-listen=-2
  lifetime: idle-listen cost must be a finite number >= 0
  [2]
  $ cbtc_cli lifetime --family nosuch
  lifetime: unknown topology family "nosuch"
  [2]
  $ cbtc_cli lifetime --family yao:0
  lifetime: bad sector count "0"
  [2]

The usage text pins the scheduler's knobs.

  $ cbtc_cli lifetime --help=plain | grep -A 2 -- '--rotation-period=K'
         --rotation-period=K (absent=25)
             Re-elect the relay cover set every K rounds; 0 disables active
             scheduling entirely (the passive per-round-Dijkstra baseline).
