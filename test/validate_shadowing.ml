(* Schema validator for <out>/shadowing.json (schema 1), run by the
   @bench-smoke alias: the document must carry schema/results, and every
   result row must have the full column set with the right types —
   bench (string), sigma_db (number >= 0), alpha (number in (0, 2pi]),
   alpha_label (string), n (positive int), side / target_degree
   (positive numbers), trials (positive int), ref_connected / preserved
   (ints in [0, trials]), preserved_frac (number in [0, 1] consistent
   with preserved/trials), avg_degree (number >= 0).  Every sigma = 0
   row is additionally required to have preserved = trials when
   alpha <= 5pi/6: that cell is the paper's own guarantee, so a
   degradation there is a harness bug, not an empirical finding.
   Exits non-zero naming the offending row. *)

let fail fmt =
  Fmt.kstr
    (fun msg ->
      Fmt.epr "validate_shadowing: %s@." msg;
      exit 1)
    fmt

let num = function
  | Some (Obs.Jsonl.Float f) -> Some f
  | Some (Obs.Jsonl.Int i) -> Some (Stdlib.float_of_int i)
  | _ -> None

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
        Fmt.epr "usage: validate_shadowing SHADOWING.json@.";
        exit 2
  in
  let contents =
    match open_in path with
    | exception Sys_error e ->
        Fmt.epr "validate_shadowing: %s@." e;
        exit 2
    | ic ->
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        s
  in
  let doc =
    try Obs.Jsonl.of_string contents
    with Obs.Jsonl.Parse_error e -> fail "unparsable JSON: %s" e
  in
  (match Obs.Jsonl.member "schema" doc with
  | Some (Obs.Jsonl.Int 1) -> ()
  | Some (Obs.Jsonl.Int v) -> fail "unsupported schema %d (expected 1)" v
  | _ -> fail "missing integer field \"schema\"");
  let results =
    match Obs.Jsonl.member "results" doc with
    | Some (Obs.Jsonl.List rows) -> rows
    | _ -> fail "missing list field \"results\""
  in
  if results = [] then fail "\"results\" is empty";
  let five_pi_six = 5. *. Float.pi /. 6. in
  List.iteri
    (fun i row ->
      let ctx = Fmt.str "results[%d]" i in
      (match Obs.Jsonl.member "bench" row with
      | Some (Obs.Jsonl.Str _) -> ()
      | _ -> fail "%s: missing string field \"bench\"" ctx);
      let sigma =
        match num (Obs.Jsonl.member "sigma_db" row) with
        | Some v when v >= 0. -> v
        | _ -> fail "%s: \"sigma_db\" must be a number >= 0" ctx
      in
      let alpha =
        match num (Obs.Jsonl.member "alpha" row) with
        | Some v when v > 0. && v <= 2. *. Float.pi -> v
        | _ -> fail "%s: \"alpha\" must be a number in (0, 2pi]" ctx
      in
      let ctx = Fmt.str "%s (sigma=%g alpha=%g)" ctx sigma alpha in
      (match Obs.Jsonl.member "alpha_label" row with
      | Some (Obs.Jsonl.Str _) -> ()
      | _ -> fail "%s: missing string field \"alpha_label\"" ctx);
      (match Obs.Jsonl.member "n" row with
      | Some (Obs.Jsonl.Int n) when n > 0 -> ()
      | _ -> fail "%s: missing positive integer \"n\"" ctx);
      List.iter
        (fun name ->
          match num (Obs.Jsonl.member name row) with
          | Some v when v > 0. -> ()
          | _ -> fail "%s: %S must be a positive number" ctx name)
        [ "side"; "target_degree" ];
      let trials =
        match Obs.Jsonl.member "trials" row with
        | Some (Obs.Jsonl.Int t) when t > 0 -> t
        | _ -> fail "%s: missing positive integer \"trials\"" ctx
      in
      let bounded name =
        match Obs.Jsonl.member name row with
        | Some (Obs.Jsonl.Int v) when v >= 0 && v <= trials -> v
        | _ -> fail "%s: %S must be an integer in [0, trials]" ctx name
      in
      ignore (bounded "ref_connected" : int);
      let preserved = bounded "preserved" in
      (match num (Obs.Jsonl.member "preserved_frac" row) with
      | Some f
        when f >= 0. && f <= 1.
             && Float.abs (f -. (Stdlib.float_of_int preserved
                                 /. Stdlib.float_of_int trials))
                < 1e-9 ->
          ()
      | _ ->
          fail "%s: \"preserved_frac\" must be a number in [0,1] equal to \
                preserved/trials"
            ctx);
      (match num (Obs.Jsonl.member "avg_degree" row) with
      | Some d when d >= 0. -> ()
      | _ -> fail "%s: \"avg_degree\" must be a number >= 0" ctx);
      if sigma = 0. && alpha <= five_pi_six +. 1e-12 && preserved <> trials
      then
        fail
          "%s: sigma = 0 with alpha <= 5pi/6 must preserve connectivity in \
           every trial (got %d/%d) — the paper's own guarantee"
          ctx preserved trials)
    results;
  Fmt.pr "validate_shadowing: %s OK (%d rows)@." path (List.length results)
