The HTML report generator runs end to end on a small seed count and
writes a self-contained document.  The byte count depends on float
formatting, so it is normalized away.

  $ cbtc_report 2 report_smoke.html | sed 's/([0-9]* bytes)/(N bytes)/'
  wrote report_smoke.html (N bytes)
  $ grep -c '<h2>Table 1</h2>' report_smoke.html
  1
  $ grep -c '<svg' report_smoke.html
  4

Malformed arguments are rejected up front, before any simulation runs.

  $ cbtc_report oops
  cbtc_report: SEEDS must be an integer (got "oops")
  usage: cbtc_report [SEEDS] [OUTPUT.html]
  [2]
  $ cbtc_report 0
  cbtc_report: SEEDS must be at least 1 (got 0)
  usage: cbtc_report [SEEDS] [OUTPUT.html]
  [2]
  $ cbtc_report 2 out.html extra
  cbtc_report: expected at most 2 arguments
  usage: cbtc_report [SEEDS] [OUTPUT.html]
  [2]

An unwritable output path fails with the sink exit code.

  $ cbtc_report 2 /nonexistent-dir/report.html
  cbtc_report: cannot open output file: /nonexistent-dir/report.html: No such file or directory
  [3]
