(* Tests for the discrete-event simulation engine: event ordering, FIFO
   tie-breaking, cancellation, bounded runs, channel fault models, and
   traces. *)

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ---------- Eventq ---------- *)

let test_eventq_order () =
  let q = Dsim.Eventq.create () in
  List.iter (fun (t, v) -> Dsim.Eventq.push q ~time:t v)
    [ (3., "c"); (1., "a"); (2., "b") ];
  Alcotest.(check (option (float 0.))) "peek" (Some 1.) (Dsim.Eventq.peek_time q);
  let order = List.init 3 (fun _ -> snd (Dsim.Eventq.pop q)) in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] order;
  Alcotest.(check bool) "empty" true (Dsim.Eventq.is_empty q)

let test_eventq_fifo_ties () =
  let q = Dsim.Eventq.create () in
  List.iter (fun v -> Dsim.Eventq.push q ~time:5. v) [ 1; 2; 3; 4; 5 ];
  let order = List.init 5 (fun _ -> snd (Dsim.Eventq.pop q)) in
  Alcotest.(check (list int)) "FIFO on equal times" [ 1; 2; 3; 4; 5 ] order

let test_eventq_many () =
  (* Force several heap growths and verify global ordering. *)
  let q = Dsim.Eventq.create () in
  let prng = Prng.create ~seed:99 in
  for i = 0 to 999 do
    Dsim.Eventq.push q ~time:(Prng.float prng 100.) i
  done;
  Alcotest.(check int) "size" 1000 (Dsim.Eventq.size q);
  let last = ref neg_infinity in
  for _ = 1 to 1000 do
    let t, _ = Dsim.Eventq.pop q in
    if t < !last then Alcotest.fail "times decreased";
    last := t
  done

(* ---------- Sim ---------- *)

let test_sim_runs_in_order () =
  let sim = Dsim.Sim.create () in
  let log = ref [] in
  let note tag () = log := (tag, Dsim.Sim.now sim) :: !log in
  ignore (Dsim.Sim.schedule sim ~delay:2. (note "b"));
  ignore (Dsim.Sim.schedule sim ~delay:1. (note "a"));
  ignore (Dsim.Sim.schedule sim ~delay:3. (note "c"));
  let fired = Dsim.Sim.run sim in
  Alcotest.(check int) "fired" 3 fired;
  Alcotest.(check (list (pair string (float 0.)))) "order and clock"
    [ ("a", 1.); ("b", 2.); ("c", 3.) ]
    (List.rev !log);
  check_float "clock at end" 3. (Dsim.Sim.now sim)

let test_sim_nested_scheduling () =
  let sim = Dsim.Sim.create () in
  let count = ref 0 in
  let rec chain n () =
    incr count;
    if n > 0 then ignore (Dsim.Sim.schedule sim ~delay:1. (chain (n - 1)))
  in
  ignore (Dsim.Sim.schedule sim ~delay:0. (chain 9));
  ignore (Dsim.Sim.run sim);
  Alcotest.(check int) "chain length" 10 !count;
  check_float "final time" 9. (Dsim.Sim.now sim)

let test_sim_cancel () =
  let sim = Dsim.Sim.create () in
  let fired = ref false in
  let h = Dsim.Sim.schedule sim ~delay:1. (fun () -> fired := true) in
  Dsim.Sim.cancel h;
  ignore (Dsim.Sim.run sim);
  Alcotest.(check bool) "cancelled did not fire" false !fired;
  Alcotest.(check int) "events_fired" 0 (Dsim.Sim.events_fired sim)

let test_sim_run_until () =
  let sim = Dsim.Sim.create () in
  let log = ref [] in
  List.iter
    (fun d -> ignore (Dsim.Sim.schedule sim ~delay:d (fun () -> log := d :: !log)))
    [ 1.; 2.; 5.; 10. ];
  let fired = Dsim.Sim.run_until sim ~time:5. in
  Alcotest.(check int) "fired up to 5" 3 fired;
  check_float "clock advanced to bound" 5. (Dsim.Sim.now sim);
  Alcotest.(check int) "pending" 1 (Dsim.Sim.pending sim);
  ignore (Dsim.Sim.run sim);
  Alcotest.(check (list (float 0.))) "all fired" [ 10.; 5.; 2.; 1. ] !log

let test_sim_invalid () =
  let sim = Dsim.Sim.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Sim.schedule: negative delay") (fun () ->
      ignore (Dsim.Sim.schedule sim ~delay:(-1.) (fun () -> ())));
  ignore (Dsim.Sim.schedule sim ~delay:5. (fun () -> ()));
  ignore (Dsim.Sim.run sim);
  Alcotest.check_raises "past time"
    (Invalid_argument "Sim.schedule_at: time in the past") (fun () ->
      ignore (Dsim.Sim.schedule_at sim ~time:1. (fun () -> ())))

(* ---------- Channel ---------- *)

let test_channel_reliable () =
  let sim = Dsim.Sim.create () in
  let prng = Prng.create ~seed:1 in
  let got = ref 0 in
  for _ = 1 to 100 do
    ignore (Dsim.Channel.deliver Dsim.Channel.reliable sim prng (fun () -> incr got))
  done;
  ignore (Dsim.Sim.run sim);
  Alcotest.(check int) "all delivered" 100 !got;
  check_float "unit delay" 1. (Dsim.Sim.now sim)

let test_channel_lossy_statistics () =
  let sim = Dsim.Sim.create () in
  let prng = Prng.create ~seed:2 in
  let ch = Dsim.Channel.make ~loss:0.3 () in
  let got = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    ignore (Dsim.Channel.deliver ch sim prng (fun () -> incr got))
  done;
  ignore (Dsim.Sim.run sim);
  let rate = Stdlib.float_of_int !got /. Stdlib.float_of_int n in
  if rate < 0.67 || rate > 0.73 then
    Alcotest.failf "delivery rate %.3f too far from 0.7" rate

let test_channel_duplication () =
  let sim = Dsim.Sim.create () in
  let prng = Prng.create ~seed:3 in
  let ch = Dsim.Channel.make ~duplicate:1.0 () in
  let got = ref 0 in
  ignore (Dsim.Channel.deliver ch sim prng (fun () -> incr got));
  ignore (Dsim.Sim.run sim);
  Alcotest.(check int) "always duplicated" 2 !got

let test_channel_delay_range () =
  let sim = Dsim.Sim.create () in
  let prng = Prng.create ~seed:4 in
  let ch = Dsim.Channel.make ~min_delay:2. ~max_delay:5. () in
  let times = ref [] in
  for _ = 1 to 200 do
    ignore
      (Dsim.Channel.deliver ch sim prng (fun () ->
           times := Dsim.Sim.now sim :: !times))
  done;
  ignore (Dsim.Sim.run sim);
  List.iter
    (fun t -> if t < 2. || t > 5. then Alcotest.failf "delay %g out of [2,5]" t)
    !times

let test_channel_invalid () =
  Alcotest.check_raises "loss = 1" (Invalid_argument "Channel.make: loss out of [0,1)")
    (fun () -> ignore (Dsim.Channel.make ~loss:1. ()));
  Alcotest.check_raises "delays" (Invalid_argument "Channel.make: bad delay range")
    (fun () -> ignore (Dsim.Channel.make ~min_delay:5. ~max_delay:1. ()))

(* ---------- Periodic ---------- *)

let test_periodic_fires_on_schedule () =
  let sim = Dsim.Sim.create () in
  let times = ref [] in
  let timer =
    Dsim.Periodic.start sim ~interval:5. (fun () ->
        times := Dsim.Sim.now sim :: !times)
  in
  ignore (Dsim.Sim.run_until sim ~time:22.);
  Alcotest.(check (list (float 0.))) "five-step cadence" [ 5.; 10.; 15.; 20. ]
    (List.rev !times);
  Alcotest.(check int) "fires" 4 (Dsim.Periodic.fires timer);
  Dsim.Periodic.stop timer;
  ignore (Dsim.Sim.run sim);
  Alcotest.(check int) "no fire after stop" 4 (Dsim.Periodic.fires timer);
  Alcotest.(check bool) "inactive" false (Dsim.Periodic.is_active timer)

let test_periodic_initial_delay_and_self_stop () =
  let sim = Dsim.Sim.create () in
  let count = ref 0 in
  let rec timer = lazy
    (Dsim.Periodic.start sim ~initial_delay:0. ~interval:1. (fun () ->
         incr count;
         if !count = 3 then Dsim.Periodic.stop (Lazy.force timer)))
  in
  ignore (Lazy.force timer);
  ignore (Dsim.Sim.run sim);
  Alcotest.(check int) "self stop after 3" 3 !count

let test_periodic_validation () =
  let sim = Dsim.Sim.create () in
  Alcotest.check_raises "interval" (Invalid_argument "Periodic.start: non-positive interval")
    (fun () -> ignore (Dsim.Periodic.start sim ~interval:0. (fun () -> ())));
  Alcotest.check_raises "initial" (Invalid_argument "Periodic.start: negative initial delay")
    (fun () ->
      ignore (Dsim.Periodic.start sim ~initial_delay:(-1.) ~interval:1. (fun () -> ())))

(* ---------- Trace ---------- *)

let test_trace () =
  let tr = Dsim.Trace.create () in
  Dsim.Trace.record tr ~time:1. "first %d" 1;
  Dsim.Trace.record tr ~time:2. "second";
  Alcotest.(check int) "length" 2 (Dsim.Trace.length tr);
  Alcotest.(check (list (pair (float 0.) string))) "entries"
    [ (1., "first 1"); (2., "second") ]
    (Dsim.Trace.entries tr);
  Dsim.Trace.set_enabled tr false;
  Dsim.Trace.record tr ~time:3. "ignored";
  Alcotest.(check int) "disabled" 2 (Dsim.Trace.length tr);
  Dsim.Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (Dsim.Trace.length tr)

let () =
  Alcotest.run "dsim"
    [
      ( "eventq",
        [
          Alcotest.test_case "ordering" `Quick test_eventq_order;
          Alcotest.test_case "FIFO ties" `Quick test_eventq_fifo_ties;
          Alcotest.test_case "many events" `Quick test_eventq_many;
        ] );
      ( "sim",
        [
          Alcotest.test_case "runs in order" `Quick test_sim_runs_in_order;
          Alcotest.test_case "nested scheduling" `Quick test_sim_nested_scheduling;
          Alcotest.test_case "cancel" `Quick test_sim_cancel;
          Alcotest.test_case "run_until" `Quick test_sim_run_until;
          Alcotest.test_case "invalid" `Quick test_sim_invalid;
        ] );
      ( "channel",
        [
          Alcotest.test_case "reliable" `Quick test_channel_reliable;
          Alcotest.test_case "lossy statistics" `Quick test_channel_lossy_statistics;
          Alcotest.test_case "duplication" `Quick test_channel_duplication;
          Alcotest.test_case "delay range" `Quick test_channel_delay_range;
          Alcotest.test_case "invalid" `Quick test_channel_invalid;
        ] );
      ( "periodic",
        [
          Alcotest.test_case "fires on schedule" `Quick test_periodic_fires_on_schedule;
          Alcotest.test_case "initial delay and self stop" `Quick
            test_periodic_initial_delay_and_self_stop;
          Alcotest.test_case "validation" `Quick test_periodic_validation;
        ] );
      ("trace", [ Alcotest.test_case "recording" `Quick test_trace ]);
    ]
