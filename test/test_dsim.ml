(* Tests for the discrete-event simulation engine: event ordering, FIFO
   tie-breaking, cancellation, bounded runs, channel fault models, and
   traces. *)

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ---------- Eventq ---------- *)

let test_eventq_order () =
  let q = Dsim.Eventq.create () in
  List.iter (fun (t, v) -> Dsim.Eventq.push q ~time:t v)
    [ (3., "c"); (1., "a"); (2., "b") ];
  Alcotest.(check (option (float 0.))) "peek" (Some 1.) (Dsim.Eventq.peek_time q);
  let order = List.init 3 (fun _ -> snd (Dsim.Eventq.pop q)) in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] order;
  Alcotest.(check bool) "empty" true (Dsim.Eventq.is_empty q)

let test_eventq_fifo_ties () =
  let q = Dsim.Eventq.create () in
  List.iter (fun v -> Dsim.Eventq.push q ~time:5. v) [ 1; 2; 3; 4; 5 ];
  let order = List.init 5 (fun _ -> snd (Dsim.Eventq.pop q)) in
  Alcotest.(check (list int)) "FIFO on equal times" [ 1; 2; 3; 4; 5 ] order

let test_eventq_many () =
  (* Force several heap growths and verify global ordering. *)
  let q = Dsim.Eventq.create () in
  let prng = Prng.create ~seed:99 in
  for i = 0 to 999 do
    Dsim.Eventq.push q ~time:(Prng.float prng 100.) i
  done;
  Alcotest.(check int) "size" 1000 (Dsim.Eventq.size q);
  let last = ref neg_infinity in
  for _ = 1 to 1000 do
    let t, _ = Dsim.Eventq.pop q in
    if t < !last then Alcotest.fail "times decreased";
    last := t
  done

(* ---------- Sim ---------- *)

let test_sim_runs_in_order () =
  let sim = Dsim.Sim.create () in
  let log = ref [] in
  let note tag () = log := (tag, Dsim.Sim.now sim) :: !log in
  ignore (Dsim.Sim.schedule sim ~delay:2. (note "b"));
  ignore (Dsim.Sim.schedule sim ~delay:1. (note "a"));
  ignore (Dsim.Sim.schedule sim ~delay:3. (note "c"));
  let fired = Dsim.Sim.run sim in
  Alcotest.(check int) "fired" 3 fired;
  Alcotest.(check (list (pair string (float 0.)))) "order and clock"
    [ ("a", 1.); ("b", 2.); ("c", 3.) ]
    (List.rev !log);
  check_float "clock at end" 3. (Dsim.Sim.now sim)

let test_sim_nested_scheduling () =
  let sim = Dsim.Sim.create () in
  let count = ref 0 in
  let rec chain n () =
    incr count;
    if n > 0 then ignore (Dsim.Sim.schedule sim ~delay:1. (chain (n - 1)))
  in
  ignore (Dsim.Sim.schedule sim ~delay:0. (chain 9));
  ignore (Dsim.Sim.run sim);
  Alcotest.(check int) "chain length" 10 !count;
  check_float "final time" 9. (Dsim.Sim.now sim)

let test_sim_cancel () =
  let sim = Dsim.Sim.create () in
  let fired = ref false in
  let h = Dsim.Sim.schedule sim ~delay:1. (fun () -> fired := true) in
  Dsim.Sim.cancel h;
  ignore (Dsim.Sim.run sim);
  Alcotest.(check bool) "cancelled did not fire" false !fired;
  Alcotest.(check int) "events_fired" 0 (Dsim.Sim.events_fired sim)

let test_sim_run_until () =
  let sim = Dsim.Sim.create () in
  let log = ref [] in
  List.iter
    (fun d -> ignore (Dsim.Sim.schedule sim ~delay:d (fun () -> log := d :: !log)))
    [ 1.; 2.; 5.; 10. ];
  let fired = Dsim.Sim.run_until sim ~time:5. in
  Alcotest.(check int) "fired up to 5" 3 fired;
  check_float "clock advanced to bound" 5. (Dsim.Sim.now sim);
  Alcotest.(check int) "pending" 1 (Dsim.Sim.pending sim);
  ignore (Dsim.Sim.run sim);
  Alcotest.(check (list (float 0.))) "all fired" [ 10.; 5.; 2.; 1. ] !log

let test_sim_invalid () =
  let sim = Dsim.Sim.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Sim.schedule: negative delay") (fun () ->
      ignore (Dsim.Sim.schedule sim ~delay:(-1.) (fun () -> ())));
  ignore (Dsim.Sim.schedule sim ~delay:5. (fun () -> ()));
  ignore (Dsim.Sim.run sim);
  Alcotest.check_raises "past time"
    (Invalid_argument "Sim.schedule_at: time in the past") (fun () ->
      ignore (Dsim.Sim.schedule_at sim ~time:1. (fun () -> ())))

(* ---------- Tie-break policies ---------- *)

(* A fixed workload with heavy ties: 32 events over 4 timestamps, 8 tied
   events per timestamp.  Every policy test replays exactly this push
   sequence so firing orders are comparable across policies. *)
let tied_workload sim =
  let fired = ref [] in
  for i = 0 to 31 do
    ignore
      (Dsim.Sim.schedule sim ~delay:(Stdlib.float_of_int (i mod 4)) (fun () ->
           fired := i :: !fired))
  done;
  ignore (Dsim.Sim.run sim);
  List.rev !fired

let order_digest order =
  Digest.to_hex (Digest.string (String.concat "," (List.map string_of_int order)))

(* Pins the default FIFO tie-break order byte-for-byte.  Golden traces,
   cram outputs and bench_out artifacts all assume this exact order; if
   this digest ever changes, the engine's default schedule moved and
   every recorded run in the repo is stale. *)
let test_policy_fifo_digest () =
  let sim = Dsim.Sim.create () in
  let order = tied_workload sim in
  let expected =
    (* insertion order within each timestamp *)
    List.concat_map (fun t -> List.init 8 (fun k -> (4 * k) + t)) [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "FIFO order" expected order;
  Alcotest.(check string) "FIFO order digest"
    "3efc3b03e0b7a890f859c73be4ac88f9" (order_digest order);
  Alcotest.(check int) "no decision log under Fifo" 0
    (Array.length (Dsim.Sim.schedule_log sim))

let test_policy_seeded_differs () =
  let fifo = tied_workload (Dsim.Sim.create ()) in
  let sim = Dsim.Sim.create ~policy:(Dsim.Eventq.Seeded 42) () in
  let seeded = tied_workload sim in
  Alcotest.(check bool) "same event set" true
    (List.sort Int.compare fifo = List.sort Int.compare seeded);
  Alcotest.(check bool) "some tie broken differently" true (fifo <> seeded);
  let log = Dsim.Sim.schedule_log sim in
  Alcotest.(check int) "one decision per push" 32 (Array.length log);
  Array.iter
    (fun p ->
      if p < 0 || p >= Dsim.Eventq.prio_bound then
        Alcotest.failf "priority %d out of [0, prio_bound)" p)
    log;
  (* deterministic in the seed *)
  let again = tied_workload (Dsim.Sim.create ~policy:(Dsim.Eventq.Seeded 42) ()) in
  Alcotest.(check (list int)) "same seed, same schedule" seeded again;
  let other = tied_workload (Dsim.Sim.create ~policy:(Dsim.Eventq.Seeded 43) ()) in
  Alcotest.(check bool) "different seed, different schedule" true
    (seeded <> other)

let test_policy_replay_reproduces () =
  let sim = Dsim.Sim.create ~policy:(Dsim.Eventq.Seeded 4242) () in
  let seeded = tied_workload sim in
  let log = Dsim.Sim.schedule_log sim in
  let replayed = tied_workload (Dsim.Sim.create ~policy:(Dsim.Eventq.Replay log) ()) in
  Alcotest.(check (list int)) "replay reproduces the seeded schedule" seeded
    replayed;
  (* pushes beyond the recorded log fall back to the Fifo priority, so an
     empty log replays the plain FIFO schedule *)
  let fifo = tied_workload (Dsim.Sim.create ()) in
  let empty = tied_workload (Dsim.Sim.create ~policy:(Dsim.Eventq.Replay [||]) ()) in
  Alcotest.(check (list int)) "empty log = FIFO" fifo empty

(* ---------- Channel ---------- *)

let test_channel_reliable () =
  let sim = Dsim.Sim.create () in
  let prng = Prng.create ~seed:1 in
  let got = ref 0 in
  for _ = 1 to 100 do
    ignore (Dsim.Channel.deliver Dsim.Channel.reliable sim prng (fun () -> incr got))
  done;
  ignore (Dsim.Sim.run sim);
  Alcotest.(check int) "all delivered" 100 !got;
  check_float "unit delay" 1. (Dsim.Sim.now sim)

let test_channel_lossy_statistics () =
  let sim = Dsim.Sim.create () in
  let prng = Prng.create ~seed:2 in
  let ch = Dsim.Channel.make ~loss:0.3 () in
  let got = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    ignore (Dsim.Channel.deliver ch sim prng (fun () -> incr got))
  done;
  ignore (Dsim.Sim.run sim);
  let rate = Stdlib.float_of_int !got /. Stdlib.float_of_int n in
  if rate < 0.67 || rate > 0.73 then
    Alcotest.failf "delivery rate %.3f too far from 0.7" rate

let test_channel_duplication () =
  let sim = Dsim.Sim.create () in
  let prng = Prng.create ~seed:3 in
  let ch = Dsim.Channel.make ~duplicate:1.0 () in
  let got = ref 0 in
  ignore (Dsim.Channel.deliver ch sim prng (fun () -> incr got));
  ignore (Dsim.Sim.run sim);
  Alcotest.(check int) "always duplicated" 2 !got

let test_channel_delay_range () =
  let sim = Dsim.Sim.create () in
  let prng = Prng.create ~seed:4 in
  let ch = Dsim.Channel.make ~min_delay:2. ~max_delay:5. () in
  let times = ref [] in
  for _ = 1 to 200 do
    ignore
      (Dsim.Channel.deliver ch sim prng (fun () ->
           times := Dsim.Sim.now sim :: !times))
  done;
  ignore (Dsim.Sim.run sim);
  List.iter
    (fun t -> if t < 2. || t > 5. then Alcotest.failf "delay %g out of [2,5]" t)
    !times

(* The full make contract: every one of the four parameters has an
   explicit bound and its own Invalid_argument message. *)
let test_channel_invalid () =
  let loss_msg = Invalid_argument "Channel.make: loss out of [0,1)" in
  Alcotest.check_raises "loss = 1" loss_msg (fun () ->
      ignore (Dsim.Channel.make ~loss:1. ()));
  Alcotest.check_raises "loss < 0" loss_msg (fun () ->
      ignore (Dsim.Channel.make ~loss:(-0.1) ()));
  let dup_msg = Invalid_argument "Channel.make: duplicate out of [0,1]" in
  Alcotest.check_raises "duplicate > 1" dup_msg (fun () ->
      ignore (Dsim.Channel.make ~duplicate:1.5 ()));
  Alcotest.check_raises "duplicate < 0" dup_msg (fun () ->
      ignore (Dsim.Channel.make ~duplicate:(-0.5) ()));
  let delay_msg = Invalid_argument "Channel.make: bad delay range" in
  Alcotest.check_raises "min > max" delay_msg (fun () ->
      ignore (Dsim.Channel.make ~min_delay:5. ~max_delay:1. ()));
  Alcotest.check_raises "min < 0" delay_msg (fun () ->
      ignore (Dsim.Channel.make ~min_delay:(-1.) ~max_delay:1. ()));
  (* loss is checked before duplicate, duplicate before delays *)
  Alcotest.check_raises "order: loss first" loss_msg (fun () ->
      ignore (Dsim.Channel.make ~loss:2. ~duplicate:2. ~min_delay:(-1.) ()));
  Alcotest.check_raises "order: duplicate second" dup_msg (fun () ->
      ignore (Dsim.Channel.make ~duplicate:2. ~min_delay:(-1.) ~max_delay:1. ()));
  (* boundary values that must be accepted *)
  ignore (Dsim.Channel.make ~loss:0. ~duplicate:1. ~min_delay:0. ~max_delay:0. ())

(* ---------- Gilbert-Elliott ---------- *)

let test_ge_mean_loss_formula () =
  let ch = Dsim.Channel.gilbert_elliott ~p_gb:0.1 ~p_bg:0.3 ~loss_bad:1. () in
  check_float "pi_bad" 0.25 (Dsim.Channel.mean_loss ch);
  let ch =
    Dsim.Channel.gilbert_elliott ~p_gb:0.2 ~p_bg:0.2 ~loss_good:0.1
      ~loss_bad:0.9 ()
  in
  check_float "weighted" 0.5 (Dsim.Channel.mean_loss ch);
  check_float "bernoulli mean" 0.3 (Dsim.Channel.mean_loss (Dsim.Channel.make ~loss:0.3 ()));
  check_float "ge burstiness" 5. (Dsim.Channel.burstiness
    (Dsim.Channel.gilbert_elliott ~p_gb:0.1 ~p_bg:0.2 ~loss_bad:1. ()));
  check_float "bernoulli burstiness" 1. (Dsim.Channel.burstiness Dsim.Channel.reliable)

let test_ge_loss_statistics () =
  let sim = Dsim.Sim.create () in
  let prng = Prng.create ~seed:11 in
  let ch = Dsim.Channel.gilbert_elliott ~p_gb:0.1 ~p_bg:0.3 ~loss_bad:1. () in
  let got = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    ignore (Dsim.Channel.deliver ch ~link:(0, 1) sim prng (fun () -> incr got))
  done;
  ignore (Dsim.Sim.run sim);
  let rate = Stdlib.float_of_int !got /. Stdlib.float_of_int n in
  let expect = 1. -. Dsim.Channel.mean_loss ch in
  if Float.abs (rate -. expect) > 0.02 then
    Alcotest.failf "GE delivery rate %.3f too far from %.3f" rate expect

(* Losses cluster: with long bursts, P(loss | previous copy lost) must be
   well above the unconditional loss. *)
let test_ge_losses_cluster () =
  let sim = Dsim.Sim.create () in
  let prng = Prng.create ~seed:12 in
  let ch = Dsim.Channel.gilbert_elliott ~p_gb:0.05 ~p_bg:0.1 ~loss_bad:1. () in
  let n = 20_000 in
  let lost = Array.make n false in
  for i = 0 to n - 1 do
    (* deliver returns the number of copies scheduled: 0 = dropped *)
    lost.(i) <- Dsim.Channel.deliver ch ~link:(0, 1) sim prng (fun () -> ()) = 0
  done;
  ignore (Dsim.Sim.run sim);
  let pairs = ref 0 and joint = ref 0 and total_lost = ref 0 in
  for i = 0 to n - 2 do
    if lost.(i) then begin
      incr pairs;
      if lost.(i + 1) then incr joint
    end;
    if lost.(i) then incr total_lost
  done;
  let cond = Stdlib.float_of_int !joint /. Stdlib.float_of_int !pairs in
  let uncond = Stdlib.float_of_int !total_lost /. Stdlib.float_of_int n in
  if cond < 2. *. uncond then
    Alcotest.failf "no burst clustering: P(loss|loss)=%.3f vs P(loss)=%.3f"
      cond uncond

(* Chains are per link: a burst on one link must not leak onto another.
   Statistically, two links' loss runs are independent; structurally, the
   state table keys by (src, dst). *)
let test_ge_per_link_chains () =
  let sim = Dsim.Sim.create () in
  let prng = Prng.create ~seed:13 in
  let ch = Dsim.Channel.gilbert_elliott ~p_gb:0.5 ~p_bg:0.01 ~loss_bad:1. () in
  (* drive link A into the bad state *)
  let drive = 200 in
  for _ = 1 to drive do
    ignore (Dsim.Channel.deliver ch ~link:(0, 1) sim prng (fun () -> ()))
  done;
  Alcotest.(check bool)
    "link A chain stored" true
    (Hashtbl.mem ch.Dsim.Channel.burst_state (0, 1));
  (* link B has never been used: whatever state link A is stuck in, B's
     first copy sees the Good state, and with loss_good = 0 it can never
     be dropped *)
  let copies = Dsim.Channel.deliver ch ~link:(2, 3) sim prng (fun () -> ()) in
  Alcotest.(check int) "fresh link first copy delivered" 1 copies;
  ignore (Dsim.Sim.run sim)

let test_ge_invalid () =
  Alcotest.check_raises "p_gb = 0"
    (Invalid_argument "Channel.gilbert_elliott: p_gb out of (0,1]") (fun () ->
      ignore (Dsim.Channel.gilbert_elliott ~p_gb:0. ~p_bg:0.5 ~loss_bad:1. ()));
  Alcotest.check_raises "p_bg > 1"
    (Invalid_argument "Channel.gilbert_elliott: p_bg out of (0,1]") (fun () ->
      ignore (Dsim.Channel.gilbert_elliott ~p_gb:0.5 ~p_bg:1.5 ~loss_bad:1. ()));
  Alcotest.check_raises "loss_good = 1"
    (Invalid_argument "Channel.gilbert_elliott: loss_good out of [0,1)")
    (fun () ->
      ignore
        (Dsim.Channel.gilbert_elliott ~p_gb:0.5 ~p_bg:0.5 ~loss_good:1.
           ~loss_bad:1. ()));
  Alcotest.check_raises "loss_bad > 1"
    (Invalid_argument "Channel.gilbert_elliott: loss_bad out of [0,1]")
    (fun () ->
      ignore (Dsim.Channel.gilbert_elliott ~p_gb:0.5 ~p_bg:0.5 ~loss_bad:1.5 ()));
  Alcotest.check_raises "shared delay contract"
    (Invalid_argument "Channel.make: bad delay range") (fun () ->
      ignore
        (Dsim.Channel.gilbert_elliott ~p_gb:0.5 ~p_bg:0.5 ~loss_bad:1.
           ~min_delay:5. ~max_delay:1. ()))

(* ---------- Periodic ---------- *)

let test_periodic_fires_on_schedule () =
  let sim = Dsim.Sim.create () in
  let times = ref [] in
  let timer =
    Dsim.Periodic.start sim ~interval:5. (fun () ->
        times := Dsim.Sim.now sim :: !times)
  in
  ignore (Dsim.Sim.run_until sim ~time:22.);
  Alcotest.(check (list (float 0.))) "five-step cadence" [ 5.; 10.; 15.; 20. ]
    (List.rev !times);
  Alcotest.(check int) "fires" 4 (Dsim.Periodic.fires timer);
  Dsim.Periodic.stop timer;
  ignore (Dsim.Sim.run sim);
  Alcotest.(check int) "no fire after stop" 4 (Dsim.Periodic.fires timer);
  Alcotest.(check bool) "inactive" false (Dsim.Periodic.is_active timer)

let test_periodic_initial_delay_and_self_stop () =
  let sim = Dsim.Sim.create () in
  let count = ref 0 in
  let rec timer = lazy
    (Dsim.Periodic.start sim ~initial_delay:0. ~interval:1. (fun () ->
         incr count;
         if !count = 3 then Dsim.Periodic.stop (Lazy.force timer)))
  in
  ignore (Lazy.force timer);
  ignore (Dsim.Sim.run sim);
  Alcotest.(check int) "self stop after 3" 3 !count

let test_periodic_validation () =
  let sim = Dsim.Sim.create () in
  Alcotest.check_raises "interval" (Invalid_argument "Periodic.start: non-positive interval")
    (fun () -> ignore (Dsim.Periodic.start sim ~interval:0. (fun () -> ())));
  Alcotest.check_raises "initial" (Invalid_argument "Periodic.start: negative initial delay")
    (fun () ->
      ignore (Dsim.Periodic.start sim ~initial_delay:(-1.) ~interval:1. (fun () -> ())))

(* ---------- Trace ---------- *)

let test_trace () =
  let tr = Dsim.Trace.create () in
  Dsim.Trace.record tr ~time:1. "first %d" 1;
  Dsim.Trace.record tr ~time:2. "second";
  Alcotest.(check int) "length" 2 (Dsim.Trace.length tr);
  Alcotest.(check (list (pair (float 0.) string))) "entries"
    [ (1., "first 1"); (2., "second") ]
    (Dsim.Trace.entries tr);
  Dsim.Trace.set_enabled tr false;
  Dsim.Trace.record tr ~time:3. "ignored";
  Alcotest.(check int) "disabled" 2 (Dsim.Trace.length tr);
  Dsim.Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (Dsim.Trace.length tr)

let () =
  Alcotest.run "dsim"
    [
      ( "eventq",
        [
          Alcotest.test_case "ordering" `Quick test_eventq_order;
          Alcotest.test_case "FIFO ties" `Quick test_eventq_fifo_ties;
          Alcotest.test_case "many events" `Quick test_eventq_many;
        ] );
      ( "sim",
        [
          Alcotest.test_case "runs in order" `Quick test_sim_runs_in_order;
          Alcotest.test_case "nested scheduling" `Quick test_sim_nested_scheduling;
          Alcotest.test_case "cancel" `Quick test_sim_cancel;
          Alcotest.test_case "run_until" `Quick test_sim_run_until;
          Alcotest.test_case "invalid" `Quick test_sim_invalid;
        ] );
      ( "policy",
        [
          Alcotest.test_case "FIFO digest pin" `Quick test_policy_fifo_digest;
          Alcotest.test_case "seeded differs" `Quick test_policy_seeded_differs;
          Alcotest.test_case "replay reproduces" `Quick
            test_policy_replay_reproduces;
        ] );
      ( "channel",
        [
          Alcotest.test_case "reliable" `Quick test_channel_reliable;
          Alcotest.test_case "lossy statistics" `Quick test_channel_lossy_statistics;
          Alcotest.test_case "duplication" `Quick test_channel_duplication;
          Alcotest.test_case "delay range" `Quick test_channel_delay_range;
          Alcotest.test_case "invalid" `Quick test_channel_invalid;
        ] );
      ( "gilbert-elliott",
        [
          Alcotest.test_case "mean loss formula" `Quick test_ge_mean_loss_formula;
          Alcotest.test_case "loss statistics" `Quick test_ge_loss_statistics;
          Alcotest.test_case "losses cluster" `Quick test_ge_losses_cluster;
          Alcotest.test_case "per-link chains" `Quick test_ge_per_link_chains;
          Alcotest.test_case "invalid" `Quick test_ge_invalid;
        ] );
      ( "periodic",
        [
          Alcotest.test_case "fires on schedule" `Quick test_periodic_fires_on_schedule;
          Alcotest.test_case "initial delay and self stop" `Quick
            test_periodic_initial_delay_and_self_stop;
          Alcotest.test_case "validation" `Quick test_periodic_validation;
        ] );
      ("trace", [ Alcotest.test_case "recording" `Quick test_trace ]);
    ]
