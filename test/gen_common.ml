(* Shared QCheck placement generators for the randomized suites
   (test_theory, test_distributed).

   The generator draws 2..35 uniform points on a 400 x 400 field; the
   shrinker deletes nodes — contiguous chunks first, then singles — so a
   failing property reports a (near-)minimal placement instead of the
   full random one.  Node count never shrinks below 2 (the smallest
   network with any topology to control). *)

let positions_gen =
  QCheck.Gen.(
    int_range 2 35 >>= fun n ->
    list_repeat n
      (pair (float_bound_exclusive 400.) (float_bound_exclusive 400.))
    >|= fun pts ->
    Array.of_list (List.map (fun (x, y) -> Geom.Vec2.make x y) pts))

(* QCheck 'a Shrink.t is 'a -> 'a Iter.t: call [yield] on each smaller
   candidate, largest deletions first so the search descends fast. *)
let positions_shrink a yield =
  let n = Array.length a in
  let drop lo len =
    Array.init (n - len) (fun i -> if i < lo then a.(i) else a.(i + len))
  in
  let len = ref (n / 2) in
  while !len >= 1 do
    if n - !len >= 2 then begin
      let lo = ref 0 in
      while !lo + !len <= n do
        yield (drop !lo !len);
        lo := !lo + !len
      done
    end;
    len := !len / 2
  done

let positions_print a =
  Fmt.str "@[<v>%d nodes:@,%a@]" (Array.length a)
    Fmt.(
      list ~sep:cut (fun ppf (i, p) ->
          Fmt.pf ppf "  %d: (%.2f, %.2f)" i p.Geom.Vec2.x p.Geom.Vec2.y))
    (Array.to_list (Array.mapi (fun i p -> (i, p)) a))

let positions_arb =
  QCheck.make ~shrink:positions_shrink ~print:positions_print positions_gen
