(* Tests for the wireless power model: path loss, inverses, the paper's
   link-power estimation assumption, and energy accounting. *)

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let pl = Radio.Pathloss.make ~max_range:500. ()

let test_defaults () =
  check_float "exponent" 2. (Radio.Pathloss.exponent pl);
  check_float "coeff" 1. (Radio.Pathloss.coeff pl);
  check_float "R" 500. (Radio.Pathloss.max_range pl);
  check_float "P = p(R)" 250000. (Radio.Pathloss.max_power pl)

let test_power_for_distance () =
  check_float "p(0)" 0. (Radio.Pathloss.power_for_distance pl 0.);
  check_float "p(10)" 100. (Radio.Pathloss.power_for_distance pl 10.);
  check_float "quadratic" 4.
    (Radio.Pathloss.power_for_distance pl 2.
    /. Radio.Pathloss.power_for_distance pl 1.);
  Alcotest.check_raises "negative distance"
    (Invalid_argument "Pathloss.power_for_distance: negative distance")
    (fun () -> ignore (Radio.Pathloss.power_for_distance pl (-1.)))

let test_inverse_roundtrip () =
  List.iter
    (fun d ->
      check_float ~eps:1e-6
        (Fmt.str "distance_for_power (power_for_distance %g)" d)
        d
        (Radio.Pathloss.distance_for_power pl
           (Radio.Pathloss.power_for_distance pl d)))
    [ 0.; 1.; 17.3; 250.; 499.99; 500. ]

let test_reaches () =
  Alcotest.(check bool) "reaches at exact range" true
    (Radio.Pathloss.reaches pl ~power:(Radio.Pathloss.max_power pl) ~dist:500.);
  Alcotest.(check bool) "not beyond" false
    (Radio.Pathloss.reaches pl ~power:(Radio.Pathloss.max_power pl) ~dist:500.5);
  Alcotest.(check bool) "in_range boundary" true (Radio.Pathloss.in_range pl ~dist:500.);
  Alcotest.(check bool) "partial power" true
    (Radio.Pathloss.reaches pl ~power:100. ~dist:10.);
  Alcotest.(check bool) "partial power insufficient" false
    (Radio.Pathloss.reaches pl ~power:99. ~dist:10.)

let test_estimation_assumption () =
  (* Section 2: from (tx power, rx power) a node recovers p(d).  Exact
     for d >= 1 (the reference distance). *)
  List.iter
    (fun d ->
      let tx = 12345.6 in
      let rx = Radio.Pathloss.rx_power pl ~tx_power:tx ~dist:d in
      check_float ~eps:1e-6
        (Fmt.str "estimate p(d) at d=%g" d)
        (Radio.Pathloss.power_for_distance pl d)
        (Radio.Pathloss.estimate_link_power pl ~tx_power:tx ~rx_power:rx);
      check_float ~eps:1e-6
        (Fmt.str "estimate d at d=%g" d)
        d
        (Radio.Pathloss.estimate_distance pl ~tx_power:tx ~rx_power:rx))
    [ 1.; 2.; 100.; 499. ]

let test_estimation_below_reference () =
  (* Below the reference distance the estimate saturates at p(1), a safe
     overestimate (still reaches the node). *)
  let tx = 50. in
  let rx = Radio.Pathloss.rx_power pl ~tx_power:tx ~dist:0.3 in
  let est = Radio.Pathloss.estimate_link_power pl ~tx_power:tx ~rx_power:rx in
  check_float "saturates at p(1)" (Radio.Pathloss.power_for_distance pl 1.) est;
  Alcotest.(check bool) "overestimate reaches" true
    (Radio.Pathloss.reaches pl ~power:est ~dist:0.3)

let test_custom_exponent () =
  let pl4 = Radio.Pathloss.make ~exponent:4. ~coeff:0.5 ~max_range:100. () in
  check_float "P" (0.5 *. (100. ** 4.)) (Radio.Pathloss.max_power pl4);
  check_float ~eps:1e-6 "roundtrip" 42.
    (Radio.Pathloss.distance_for_power pl4
       (Radio.Pathloss.power_for_distance pl4 42.))

let test_make_invalid () =
  Alcotest.check_raises "exponent" (Invalid_argument "Pathloss.make: exponent < 1")
    (fun () -> ignore (Radio.Pathloss.make ~exponent:0.5 ~max_range:10. ()));
  Alcotest.check_raises "range"
    (Invalid_argument "Pathloss.make: non-positive range") (fun () ->
      ignore (Radio.Pathloss.make ~max_range:0. ()))

let test_energy () =
  let e = Radio.Energy.make ~tx_overhead:5. ~rx_overhead:3. pl in
  check_float "link cost" 108. (Radio.Energy.link_cost e 10.);
  check_float "path cost" 216. (Radio.Energy.path_cost e [ 10.; 10. ]);
  check_float "empty path" 0. (Radio.Energy.path_cost e []);
  let pure = Radio.Energy.make pl in
  check_float "no overhead" 100. (Radio.Energy.link_cost pure 10.);
  Alcotest.check_raises "negative overhead"
    (Invalid_argument "Energy.make: negative overhead") (fun () ->
      ignore (Radio.Energy.make ~tx_overhead:(-1.) pl))

(* Relaying through a midpoint is cheaper than direct transmission for
   n = 2 and no overhead — the paper's motivation for topology control. *)
let test_relay_beats_direct () =
  let e = Radio.Energy.make pl in
  let direct = Radio.Energy.link_cost e 100. in
  let relayed = Radio.Energy.path_cost e [ 50.; 50. ] in
  Alcotest.(check bool) "relay cheaper" true (relayed < direct);
  (* ... but with enough per-hop overhead, direct wins *)
  let e2 = Radio.Energy.make ~rx_overhead:6000. pl in
  Alcotest.(check bool) "overhead flips it" true
    (Radio.Energy.path_cost e2 [ 50.; 50. ] > Radio.Energy.link_cost e2 100.)

let prop_monotone =
  QCheck.Test.make ~count:300 ~name:"p(d) is monotone increasing"
    QCheck.(pair (float_range 0. 500.) (float_range 0. 500.))
    (fun (a, b) ->
      let pa = Radio.Pathloss.power_for_distance pl a in
      let pb = Radio.Pathloss.power_for_distance pl b in
      (a <= b) = (pa <= pb) || a = b)

let prop_roundtrip =
  QCheck.Test.make ~count:300 ~name:"distance_for_power inverts power_for_distance"
    QCheck.(float_range 0.01 500.)
    (fun d ->
      let d' =
        Radio.Pathloss.distance_for_power pl
          (Radio.Pathloss.power_for_distance pl d)
      in
      Float.abs (d -. d') < 1e-6 *. d)

(* The d0-clamp contract over all of (0, R]: for model-generated
   (tx, rx) pairs the estimators return exactly [p(max(d, d0))] and
   [max(d, d0)] — the clamp only engages below the reference distance,
   where the rx-power saturation has erased distance information. *)
let prop_estimation_roundtrip =
  QCheck.Test.make ~count:500
    ~name:"estimators recover p(max(d,d0)) / max(d,d0) over (0, R]"
    QCheck.(pair (float_range 1e-9 500.) (float_range 1. 1e9))
    (fun (d, tx) ->
      let rx = Radio.Pathloss.rx_power pl ~tx_power:tx ~dist:d in
      let dc = Float.max d 1. in
      let close a b =
        Float.abs (a -. b)
        <= 1e-9 *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))
      in
      close
        (Radio.Pathloss.estimate_link_power pl ~tx_power:tx ~rx_power:rx)
        (Radio.Pathloss.power_for_distance pl dc)
      && close (Radio.Pathloss.estimate_distance pl ~tx_power:tx ~rx_power:rx) dc)

(* Even for off-model (tx, rx) pairs — noise, asymmetric hardware — the
   estimates never fall below the d0 image: a sub-reference distance or
   a power below p(d0) is never reported. *)
let prop_estimate_floor =
  QCheck.Test.make ~count:300
    ~name:"estimates saturate at the reference distance for any inputs"
    QCheck.(pair (float_range 1e-6 1e9) (float_range 1e-6 1e9))
    (fun (tx, rx) ->
      Radio.Pathloss.estimate_link_power pl ~tx_power:tx ~rx_power:rx
      >= Radio.Pathloss.power_for_distance pl 1.
      && Radio.Pathloss.estimate_distance pl ~tx_power:tx ~rx_power:rx >= 1.)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "radio"
    [
      ( "pathloss",
        [
          Alcotest.test_case "defaults" `Quick test_defaults;
          Alcotest.test_case "power for distance" `Quick test_power_for_distance;
          Alcotest.test_case "inverse roundtrip" `Quick test_inverse_roundtrip;
          Alcotest.test_case "reaches" `Quick test_reaches;
          Alcotest.test_case "estimation assumption" `Quick test_estimation_assumption;
          Alcotest.test_case "estimation below reference" `Quick
            test_estimation_below_reference;
          Alcotest.test_case "custom exponent" `Quick test_custom_exponent;
          Alcotest.test_case "invalid make" `Quick test_make_invalid;
        ] );
      ( "energy",
        [
          Alcotest.test_case "costs" `Quick test_energy;
          Alcotest.test_case "relay beats direct" `Quick test_relay_beats_direct;
        ] );
      ( "properties",
        qsuite
          [
            prop_monotone; prop_roundtrip; prop_estimation_roundtrip;
            prop_estimate_floor;
          ] );
    ]
