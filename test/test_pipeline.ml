(* Tests for the end-to-end pipeline: the paper's Table 1 configurations,
   inclusion relations among the produced graphs, radius semantics, and
   golden values on a fixed seed. *)

let alpha56 = Geom.Angle.five_pi_six

let alpha23 = Geom.Angle.two_pi_three

let c56 = Cbtc.Config.make alpha56

let c23 = Cbtc.Config.make alpha23

let scenario seed =
  let sc = Workload.Scenario.paper ~seed in
  (Workload.Scenario.pathloss sc, Workload.Scenario.positions sc)

let test_presets () =
  let b = Cbtc.Pipeline.basic c56 in
  Alcotest.(check bool) "basic plain" true
    ((not b.Cbtc.Pipeline.shrink) && (not b.Cbtc.Pipeline.asym)
    && b.Cbtc.Pipeline.pairwise = `None);
  let s = Cbtc.Pipeline.with_shrink c56 in
  Alcotest.(check bool) "shrink set" true s.Cbtc.Pipeline.shrink;
  let a = Cbtc.Pipeline.all_ops c23 in
  Alcotest.(check bool) "all ops at 2pi/3 includes asym" true a.Cbtc.Pipeline.asym;
  let a56 = Cbtc.Pipeline.all_ops c56 in
  Alcotest.(check bool) "all ops at 5pi/6 excludes asym" false a56.Cbtc.Pipeline.asym;
  Alcotest.(check bool) "all ops pairwise practical" true
    (a.Cbtc.Pipeline.pairwise = `Practical)

let test_asym_guard () =
  Alcotest.check_raises "shrink_asym at 5pi/6"
    (Invalid_argument "Pipeline: asymmetric edge removal requires alpha <= 2pi/3")
    (fun () -> ignore (Cbtc.Pipeline.shrink_asym c56));
  let pl, positions = scenario 1 in
  Alcotest.check_raises "of_discovery with bad plan"
    (Invalid_argument "Pipeline: asymmetric edge removal requires alpha <= 2pi/3")
    (fun () ->
      let d = Cbtc.Geo.run c56 pl positions in
      ignore
        (Cbtc.Pipeline.of_discovery d
           { (Cbtc.Pipeline.basic c56) with Cbtc.Pipeline.asym = true }))

let test_config_mismatch_guard () =
  let pl, positions = scenario 1 in
  let d = Cbtc.Geo.run c56 pl positions in
  Alcotest.check_raises "config mismatch"
    (Invalid_argument "Pipeline.of_discovery: config mismatch") (fun () ->
      ignore (Cbtc.Pipeline.of_discovery d (Cbtc.Pipeline.basic c23)))

let test_graph_inclusions () =
  let pl, positions = scenario 3 in
  let basic = Cbtc.Pipeline.run_oracle pl positions (Cbtc.Pipeline.basic c23) in
  let shrunk = Cbtc.Pipeline.run_oracle pl positions (Cbtc.Pipeline.with_shrink c23) in
  let asym = Cbtc.Pipeline.run_oracle pl positions (Cbtc.Pipeline.shrink_asym c23) in
  let all = Cbtc.Pipeline.run_oracle pl positions (Cbtc.Pipeline.all_ops c23) in
  let sub a b =
    Graphkit.Ugraph.is_subgraph a.Cbtc.Pipeline.graph b.Cbtc.Pipeline.graph
  in
  Alcotest.(check bool) "shrunk subset of basic" true (sub shrunk basic);
  Alcotest.(check bool) "asym subset of shrunk" true (sub asym shrunk);
  Alcotest.(check bool) "all subset of asym" true (sub all asym);
  (* every stage preserves the GR partition *)
  let gr = Cbtc.Geo.max_power_graph pl positions in
  List.iter
    (fun (name, r) ->
      Alcotest.(check bool) (name ^ " preserves") true
        (Metrics.Connectivity.preserves ~reference:gr r.Cbtc.Pipeline.graph))
    [ ("basic", basic); ("shrunk", shrunk); ("asym", asym); ("all", all) ]

let test_radius_semantics () =
  let pl, positions = scenario 4 in
  let r = Cbtc.Pipeline.run_oracle pl positions (Cbtc.Pipeline.all_ops c56) in
  let n = Array.length positions in
  for u = 0 to n - 1 do
    (* radius covers exactly the farthest kept neighbor *)
    let expected =
      List.fold_left
        (fun acc v -> Float.max acc (Geom.Vec2.dist positions.(u) positions.(v)))
        0.
        (Graphkit.Ugraph.neighbors r.Cbtc.Pipeline.graph u)
    in
    if Float.abs (expected -. r.Cbtc.Pipeline.radius.(u)) > 1e-9 then
      Alcotest.failf "radius(%d): %g vs %g" u expected r.Cbtc.Pipeline.radius.(u);
    (* the Section 4 beacon radius dominates the data radius and stays
       within the radio range *)
    if r.Cbtc.Pipeline.basic_radius.(u) > 500.0 +. 1e-9 then
      Alcotest.failf "basic radius exceeds R at %d" u;
    if r.Cbtc.Pipeline.basic_radius.(u) < r.Cbtc.Pipeline.radius.(u) -. 1e-9 then
      Alcotest.failf "beacon radius below data radius at %d" u
  done

let test_avg_metrics_consistency () =
  let pl, positions = scenario 5 in
  let r = Cbtc.Pipeline.run_oracle pl positions (Cbtc.Pipeline.basic c56) in
  let deg = Cbtc.Pipeline.avg_degree r in
  Alcotest.(check (float 1e-9)) "avg degree matches metrics lib" deg
    (Metrics.Topo_metrics.avg_degree r.Cbtc.Pipeline.graph);
  let rad = Cbtc.Pipeline.avg_radius r in
  Alcotest.(check (float 1e-9)) "avg radius matches metrics lib" rad
    (Metrics.Topo_metrics.avg_radius r.Cbtc.Pipeline.radius)

(* Golden values: the paper's scenario at seed 42.  These pin down the
   deterministic pipeline; table-level agreement with the paper is
   checked (more loosely) in the benchmark harness. *)
let test_golden_seed_42 () =
  let pl, positions = scenario 42 in
  let check name plan (deg_lo, deg_hi) (rad_lo, rad_hi) =
    let r = Cbtc.Pipeline.run_oracle pl positions plan in
    let deg = Cbtc.Pipeline.avg_degree r and rad = Cbtc.Pipeline.avg_radius r in
    if deg < deg_lo || deg > deg_hi then
      Alcotest.failf "%s degree %g outside [%g, %g]" name deg deg_lo deg_hi;
    if rad < rad_lo || rad > rad_hi then
      Alcotest.failf "%s radius %g outside [%g, %g]" name rad rad_lo rad_hi
  in
  (* generous envelopes around the paper's Table 1 values *)
  check "basic 5pi/6" (Cbtc.Pipeline.basic c56) (10., 15.) (400., 470.);
  check "basic 2pi/3" (Cbtc.Pipeline.basic c23) (13., 18.) (420., 490.);
  check "all 5pi/6" (Cbtc.Pipeline.all_ops c56) (2.5, 4.5) (130., 190.);
  check "all 2pi/3" (Cbtc.Pipeline.all_ops c23) (2.5, 4.5) (130., 200.)

let test_stepped_pipeline () =
  (* The pipeline also runs on stepped-growth discoveries (as produced by
     the distributed protocol) and still preserves connectivity. *)
  let pl, positions = scenario 6 in
  let config = Cbtc.Config.make ~growth:(Cbtc.Config.Double 100.) alpha56 in
  let outcome = Cbtc.Distributed.run config pl positions in
  let r =
    Cbtc.Pipeline.of_discovery outcome.Cbtc.Distributed.discovery
      (Cbtc.Pipeline.all_ops config)
  in
  let gr = Cbtc.Geo.max_power_graph pl positions in
  Alcotest.(check bool) "distributed + all ops preserves" true
    (Metrics.Connectivity.preserves ~reference:gr r.Cbtc.Pipeline.graph)

let positions_gen =
  QCheck.Gen.(
    int_range 2 30 >>= fun n ->
    list_repeat n (pair (float_bound_exclusive 1000.) (float_bound_exclusive 1000.))
    >|= fun pts -> Array.of_list (List.map (fun (x, y) -> Geom.Vec2.make x y) pts))

let prop_all_plans_preserve =
  QCheck.Test.make ~count:40
    ~name:"every preset preserves connectivity on random scenarios"
    (QCheck.make positions_gen)
    (fun positions ->
      let pl = Radio.Pathloss.make ~max_range:300. () in
      let gr = Cbtc.Geo.max_power_graph pl positions in
      List.for_all
        (fun plan ->
          let r = Cbtc.Pipeline.run_oracle pl positions plan in
          Metrics.Connectivity.preserves ~reference:gr r.Cbtc.Pipeline.graph)
        [
          Cbtc.Pipeline.basic c56;
          Cbtc.Pipeline.with_shrink c56;
          Cbtc.Pipeline.all_ops c56;
          Cbtc.Pipeline.basic c23;
          Cbtc.Pipeline.shrink_asym c23;
          Cbtc.Pipeline.all_ops c23;
        ])

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "pipeline"
    [
      ( "plans",
        [
          Alcotest.test_case "presets" `Quick test_presets;
          Alcotest.test_case "asym guard" `Quick test_asym_guard;
          Alcotest.test_case "config mismatch guard" `Quick test_config_mismatch_guard;
        ] );
      ( "results",
        [
          Alcotest.test_case "graph inclusions" `Quick test_graph_inclusions;
          Alcotest.test_case "radius semantics" `Quick test_radius_semantics;
          Alcotest.test_case "avg metrics consistency" `Quick test_avg_metrics_consistency;
          Alcotest.test_case "golden seed 42" `Quick test_golden_seed_42;
          Alcotest.test_case "stepped pipeline" `Quick test_stepped_pipeline;
        ] );
      ("properties", qsuite [ prop_all_plans_preserve ]);
    ]
