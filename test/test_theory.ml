(* Tests of the paper's theory: Theorem 2.1 (alpha <= 5pi/6 preserves
   connectivity), Example 2.1 (N_alpha asymmetry), Theorem 2.4 (5pi/6 is
   tight), and Theorem 3.2 (asymmetric removal sound for alpha <= 2pi/3). *)

let alpha56 = Geom.Angle.five_pi_six

let alpha23 = Geom.Angle.two_pi_three

(* ---------- Example 2.1 / Figure 2 ---------- *)

let example_discovery alpha =
  let ex = Cbtc.Constructions.example_2_1 ~alpha () in
  let pl = Radio.Pathloss.make ~max_range:ex.Cbtc.Constructions.max_range () in
  (ex, Cbtc.Geo.run (Cbtc.Config.make alpha) pl ex.Cbtc.Constructions.positions)

let test_example_2_1_distances () =
  let ex = Cbtc.Constructions.example_2_1 ~alpha:alpha56 () in
  let p = ex.Cbtc.Constructions.positions in
  let r = ex.Cbtc.Constructions.max_range in
  let d i j = Geom.Vec2.dist p.(i) p.(j) in
  let open Cbtc.Constructions in
  (* d(u0, v) = R exactly; u1, u2, u3 strictly inside; u1, u2 farther
     than R from v — the distance facts the example's argument uses. *)
  Alcotest.(check bool) "d(u0,v) = R" true (Float.abs (d ex_u0 ex_v -. r) < 1e-9);
  Alcotest.(check bool) "d(u0,u1) < R" true (d ex_u0 ex_u1 < r);
  Alcotest.(check bool) "d(u0,u2) < R" true (d ex_u0 ex_u2 < r);
  Alcotest.(check bool) "d(u0,u3) = R/2" true
    (Float.abs (d ex_u0 ex_u3 -. (r /. 2.)) < 1e-9);
  Alcotest.(check bool) "d(u1,v) > R" true (d ex_u1 ex_v > r);
  Alcotest.(check bool) "d(u2,v) > R" true (d ex_u2 ex_v > r);
  (* epsilon within (0, pi/12] as the example requires *)
  Alcotest.(check bool) "epsilon in range" true
    (ex.Cbtc.Constructions.epsilon > 0.
    && ex.Cbtc.Constructions.epsilon <= (Float.pi /. 12.) +. 1e-12)

let test_example_2_1_asymmetry () =
  let _, d = example_discovery alpha56 in
  let na = Cbtc.Discovery.nalpha d in
  let open Cbtc.Constructions in
  Alcotest.(check (list int)) "N(u0) = {u1,u2,u3}" [ ex_u1; ex_u2; ex_u3 ]
    (Graphkit.Digraph.succ na ex_u0);
  Alcotest.(check (list int)) "N(v) = {u0}" [ ex_u0 ]
    (Graphkit.Digraph.succ na ex_v);
  Alcotest.(check bool) "(v,u0) in N_alpha" true
    (Graphkit.Digraph.mem_edge na ex_v ex_u0);
  Alcotest.(check bool) "(u0,v) not in N_alpha" false
    (Graphkit.Digraph.mem_edge na ex_u0 ex_v)

let test_example_2_1_closure_needed () =
  (* Without symmetric closure the graph loses v; with it, connectivity
     is preserved — the reason Definition of E_alpha takes the closure. *)
  let ex, d = example_discovery alpha56 in
  let pl = Radio.Pathloss.make ~max_range:ex.Cbtc.Constructions.max_range () in
  let gr = Cbtc.Geo.max_power_graph pl ex.Cbtc.Constructions.positions in
  let closure = Cbtc.Discovery.closure d in
  Alcotest.(check bool) "closure preserves" true
    (Metrics.Connectivity.preserves ~reference:gr closure);
  (* keeping only bidirectional edges (E-) disconnects v here: with
     alpha > 2pi/3, Theorem 3.2's precondition fails and the example
     shows it must *)
  Alcotest.(check bool) "core (E-) breaks this graph" false
    (Metrics.Connectivity.preserves ~reference:gr (Cbtc.Discovery.core d))

let test_example_2_1_alpha_validation () =
  Alcotest.check_raises "alpha too small"
    (Invalid_argument "Constructions.example_2_1: needs 2pi/3 < alpha <= 5pi/6")
    (fun () -> ignore (Cbtc.Constructions.example_2_1 ~alpha:alpha23 ()));
  Alcotest.check_raises "alpha too large"
    (Invalid_argument "Constructions.example_2_1: needs 2pi/3 < alpha <= 5pi/6")
    (fun () -> ignore (Cbtc.Constructions.example_2_1 ~alpha:(alpha56 +. 0.1) ()))

(* ---------- Theorem 2.4 / Figure 5 ---------- *)

let test_theorem_2_4_disconnects () =
  List.iter
    (fun epsilon ->
      let th = Cbtc.Constructions.theorem_2_4 ~epsilon () in
      let pl =
        Radio.Pathloss.make ~max_range:th.Cbtc.Constructions.max_range ()
      in
      let positions = th.Cbtc.Constructions.positions in
      let gr = Cbtc.Geo.max_power_graph pl positions in
      Alcotest.(check bool)
        (Fmt.str "GR connected (eps=%g)" epsilon)
        true
        (Graphkit.Traversal.is_connected gr);
      let d =
        Cbtc.Geo.run (Cbtc.Config.make th.Cbtc.Constructions.alpha) pl positions
      in
      let galpha = Cbtc.Discovery.closure d in
      Alcotest.(check bool)
        (Fmt.str "G_alpha disconnected (eps=%g)" epsilon)
        false
        (Graphkit.Traversal.is_connected galpha);
      (* the u-cluster and v-cluster each stay internally connected *)
      Alcotest.(check bool) "u0 still reaches u3" true
        (Graphkit.Traversal.same_component galpha Cbtc.Constructions.th_u0
           Cbtc.Constructions.th_u3);
      Alcotest.(check bool) "u0 separated from v0" false
        (Graphkit.Traversal.same_component galpha Cbtc.Constructions.th_u0
           Cbtc.Constructions.th_v0))
    [ 0.02; 0.1; 0.3 ]

let test_theorem_2_4_boundary_alpha_is_safe () =
  (* The same positions run at exactly alpha = 5pi/6 must stay connected
     (Theorem 2.1) — the failure needs alpha strictly above the bound. *)
  let th = Cbtc.Constructions.theorem_2_4 ~epsilon:0.1 () in
  let pl = Radio.Pathloss.make ~max_range:th.Cbtc.Constructions.max_range () in
  let positions = th.Cbtc.Constructions.positions in
  let gr = Cbtc.Geo.max_power_graph pl positions in
  let d = Cbtc.Geo.run (Cbtc.Config.make alpha56) pl positions in
  Alcotest.(check bool) "connected at the threshold" true
    (Metrics.Connectivity.preserves ~reference:gr (Cbtc.Discovery.closure d))

let test_theorem_2_4_u0_stops_short () =
  let th = Cbtc.Constructions.theorem_2_4 ~epsilon:0.1 () in
  let pl = Radio.Pathloss.make ~max_range:th.Cbtc.Constructions.max_range () in
  let d =
    Cbtc.Geo.run
      (Cbtc.Config.make th.Cbtc.Constructions.alpha)
      pl th.Cbtc.Constructions.positions
  in
  let open Cbtc.Constructions in
  Alcotest.(check bool) "u0 not boundary" false d.boundary.(th_u0);
  Alcotest.(check bool) "u0 power below P" true
    (d.power.(th_u0) < Radio.Pathloss.max_power pl);
  Alcotest.(check (list int)) "N(u0) = u-cluster" [ th_u1; th_u2; th_u3 ]
    (List.sort Int.compare
       (List.map
          (fun (n : Cbtc.Neighbor.t) -> n.Cbtc.Neighbor.id)
          d.neighbors.(th_u0)))

let test_theorem_2_4_validation () =
  Alcotest.check_raises "epsilon 0"
    (Invalid_argument "Constructions.theorem_2_4: needs 0 < epsilon < pi/6")
    (fun () -> ignore (Cbtc.Constructions.theorem_2_4 ~epsilon:0. ()));
  Alcotest.check_raises "epsilon too big"
    (Invalid_argument "Constructions.theorem_2_4: needs 0 < epsilon < pi/6")
    (fun () -> ignore (Cbtc.Constructions.theorem_2_4 ~epsilon:0.6 ()))

(* ---------- Theorem 2.1 and 3.2 as randomized properties ---------- *)

let pl300 = Radio.Pathloss.make ~max_range:120. ()

(* placement generator + node-deletion shrinker shared with
   test_distributed *)
let positions_arb = Gen_common.positions_arb

let preserves_at alpha positions =
  let d = Cbtc.Geo.run (Cbtc.Config.make alpha) pl300 positions in
  let gr = Cbtc.Geo.max_power_graph pl300 positions in
  Metrics.Connectivity.preserves ~reference:gr (Cbtc.Discovery.closure d)

let prop_theorem_2_1 =
  QCheck.Test.make ~count:80
    ~name:"Theorem 2.1: closure preserves connectivity for alpha <= 5pi/6"
    positions_arb
    (fun positions ->
      List.for_all
        (fun alpha -> preserves_at alpha positions)
        [ alpha56; 2.0; alpha23; 1.2 ])

let prop_theorem_3_2 =
  QCheck.Test.make ~count:80
    ~name:"Theorem 3.2: E- preserves connectivity for alpha <= 2pi/3"
    positions_arb
    (fun positions ->
      List.for_all
        (fun alpha ->
          let d = Cbtc.Geo.run (Cbtc.Config.make alpha) pl300 positions in
          let gr = Cbtc.Geo.max_power_graph pl300 positions in
          Metrics.Connectivity.preserves ~reference:gr (Cbtc.Discovery.core d))
        [ alpha23; 1.5 ])

let prop_corollary_2_3 =
  QCheck.Test.make ~count:40
    ~name:"Corollary 2.3: every GR edge is bridged by shorter E_alpha edges"
    positions_arb
    (fun positions ->
      let d = Cbtc.Geo.run (Cbtc.Config.make alpha56) pl300 positions in
      let galpha = Cbtc.Discovery.closure d in
      let gr = Cbtc.Geo.max_power_graph pl300 positions in
      let ok = ref true in
      Graphkit.Ugraph.iter_edges
        (fun u v ->
          if not (Graphkit.Ugraph.mem_edge galpha u v) then begin
            (* a path of strictly shorter E_alpha edges must connect u, v *)
            let duv = Geom.Vec2.dist positions.(u) positions.(v) in
            let short = Graphkit.Ugraph.create (Array.length positions) in
            Graphkit.Ugraph.iter_edges
              (fun a b ->
                if Geom.Vec2.dist positions.(a) positions.(b) < duv then
                  Graphkit.Ugraph.add_edge short a b)
              galpha;
            if not (Graphkit.Traversal.same_component short u v) then ok := false
          end)
        gr;
      !ok)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "theory"
    [
      ( "example-2.1",
        [
          Alcotest.test_case "distances" `Quick test_example_2_1_distances;
          Alcotest.test_case "asymmetry" `Quick test_example_2_1_asymmetry;
          Alcotest.test_case "closure needed" `Quick test_example_2_1_closure_needed;
          Alcotest.test_case "alpha validation" `Quick test_example_2_1_alpha_validation;
        ] );
      ( "theorem-2.4",
        [
          Alcotest.test_case "disconnects above 5pi/6" `Quick test_theorem_2_4_disconnects;
          Alcotest.test_case "safe at the threshold" `Quick
            test_theorem_2_4_boundary_alpha_is_safe;
          Alcotest.test_case "u0 stops short of v0" `Quick test_theorem_2_4_u0_stops_short;
          Alcotest.test_case "validation" `Quick test_theorem_2_4_validation;
        ] );
      ( "randomized",
        qsuite [ prop_theorem_2_1; prop_theorem_3_2; prop_corollary_2_3 ] );
    ]
