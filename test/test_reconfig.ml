(* Tests for Section 4: NDP beaconing, join/leave/aChange events, and the
   reconfiguration guarantee — once changes stop, the maintained topology
   preserves the connectivity of the new G_R. *)

let alpha56 = Geom.Angle.five_pi_six

let growth = Cbtc.Config.Double 100.

let config = Cbtc.Config.make ~growth alpha56

let live_gr rc pl positions =
  let n = Array.length positions in
  let g = Graphkit.Ugraph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if
        Cbtc.Reconfig.alive rc u && Cbtc.Reconfig.alive rc v
        && Radio.Pathloss.in_range pl
             ~dist:(Geom.Vec2.dist positions.(u) positions.(v))
      then Graphkit.Ugraph.add_edge g u v
    done
  done;
  g

let settle rc =
  (* several beacon timeouts plus slack for any triggered re-growth *)
  Cbtc.Reconfig.run_for rc ~duration:400.

let test_initial_run_preserves () =
  let sc = Workload.Scenario.make ~n:50 ~seed:21 () in
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  let rc = Cbtc.Reconfig.create config pl positions in
  let gr = Cbtc.Geo.max_power_graph pl positions in
  Alcotest.(check bool) "initial topology preserves GR" true
    (Metrics.Connectivity.preserves ~reference:gr (Cbtc.Reconfig.topology rc));
  Alcotest.(check int) "no events before beacons run" 0
    (List.length (Cbtc.Reconfig.events rc))

let test_stable_network_is_quiet () =
  (* With nothing moving, beacons must cause no events and no topology
     change (the join/aChange churn guard). *)
  let sc = Workload.Scenario.make ~n:40 ~seed:22 () in
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  let rc = Cbtc.Reconfig.create config pl positions in
  let before = Cbtc.Reconfig.topology rc in
  Cbtc.Reconfig.run_for rc ~duration:300.;
  let leaves =
    List.filter
      (fun e -> e.Cbtc.Reconfig.kind = Cbtc.Reconfig.Leave)
      (Cbtc.Reconfig.events rc)
  in
  Alcotest.(check int) "no spurious leaves" 0 (List.length leaves);
  Alcotest.(check bool) "quiescent" true (Cbtc.Reconfig.quiescent rc ~for_:200.);
  Alcotest.(check bool) "topology unchanged" true
    (Graphkit.Ugraph.equal before (Cbtc.Reconfig.topology rc))

let test_crash_triggers_leave_and_recovery () =
  let sc = Workload.Scenario.make ~n:50 ~seed:23 () in
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  let rc = Cbtc.Reconfig.create config pl positions in
  Cbtc.Reconfig.crash rc 0;
  Cbtc.Reconfig.crash rc 1;
  settle rc;
  let leaves_about_dead =
    List.filter
      (fun e ->
        e.Cbtc.Reconfig.kind = Cbtc.Reconfig.Leave
        && (e.Cbtc.Reconfig.about = 0 || e.Cbtc.Reconfig.about = 1))
      (Cbtc.Reconfig.events rc)
  in
  Alcotest.(check bool) "leave events observed" true (leaves_about_dead <> []);
  let gr = live_gr rc pl positions in
  Alcotest.(check bool) "post-crash topology preserves live GR" true
    (Metrics.Connectivity.preserves ~reference:gr (Cbtc.Reconfig.topology rc))

let test_mobility_preserves_connectivity () =
  let sc = Workload.Scenario.make ~n:50 ~seed:24 () in
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  let rc = Cbtc.Reconfig.create config pl positions in
  (* teleport a third of the nodes to fresh uniform spots, then settle *)
  let prng = Prng.create ~seed:2024 in
  for u = 0 to 15 do
    Cbtc.Reconfig.set_position rc u
      (Geom.Vec2.make (Prng.float prng 1500.) (Prng.float prng 1500.))
  done;
  settle rc;
  let moved = Cbtc.Reconfig.positions rc in
  let gr = live_gr rc pl moved in
  Alcotest.(check bool) "post-move topology preserves new GR" true
    (Metrics.Connectivity.preserves ~reference:gr (Cbtc.Reconfig.topology rc));
  Alcotest.(check bool) "events were generated" true
    (Cbtc.Reconfig.events rc <> [])

let test_partition_heal () =
  (* Two clusters out of range discover each other after moving close:
     the Section 4 beacon-power rule (beacon at the basic power, P for
     boundary nodes) is what makes the join detectable. *)
  let pl = Radio.Pathloss.make ~max_range:100. () in
  let cluster cx =
    List.init 4 (fun i ->
        Geom.Vec2.make (cx +. (Stdlib.float_of_int i *. 20.)) 0.)
  in
  let positions = Array.of_list (cluster 0. @ cluster 1000.) in
  let rc = Cbtc.Reconfig.create config pl positions in
  Alcotest.(check int) "two components initially" 2
    (Metrics.Connectivity.nb_components (Cbtc.Reconfig.topology rc));
  (* move the second cluster next to the first *)
  for i = 4 to 7 do
    let p = Cbtc.Reconfig.positions rc in
    Cbtc.Reconfig.set_position rc i
      (Geom.Vec2.make (p.(i).Geom.Vec2.x -. 850.) 40.)
  done;
  settle rc;
  let joins =
    List.filter
      (fun e -> e.Cbtc.Reconfig.kind = Cbtc.Reconfig.Join)
      (Cbtc.Reconfig.events rc)
  in
  Alcotest.(check bool) "join events observed" true (joins <> []);
  Alcotest.(check int) "healed into one component" 1
    (Metrics.Connectivity.nb_components (Cbtc.Reconfig.topology rc))

let test_achange_detected () =
  (* Rotate one neighbor around another by a large angle while keeping it
     in range: an aChange event must fire. *)
  let pl = Radio.Pathloss.make ~max_range:100. () in
  let positions =
    [| Geom.Vec2.zero; Geom.Vec2.make 50. 0.; Geom.Vec2.make (-50.) 0.;
       Geom.Vec2.make 0. 50. |]
  in
  let rc = Cbtc.Reconfig.create config pl positions in
  Cbtc.Reconfig.run_for rc ~duration:50.;
  Cbtc.Reconfig.set_position rc 1 (Geom.Vec2.make 0. (-50.));
  settle rc;
  let achanges =
    List.filter
      (fun e ->
        e.Cbtc.Reconfig.kind = Cbtc.Reconfig.Achange
        && e.Cbtc.Reconfig.about = 1)
      (Cbtc.Reconfig.events rc)
  in
  Alcotest.(check bool) "aChange observed" true (achanges <> [])

let test_node_failure_mid_mobility () =
  let sc = Workload.Scenario.make ~n:40 ~seed:26 () in
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  let rc = Cbtc.Reconfig.create config pl positions in
  let prng = Prng.create ~seed:77 in
  for u = 0 to 9 do
    Cbtc.Reconfig.set_position rc u
      (Geom.Vec2.make (Prng.float prng 1500.) (Prng.float prng 1500.))
  done;
  Cbtc.Reconfig.run_for rc ~duration:40.;
  Cbtc.Reconfig.crash rc 10;
  Cbtc.Reconfig.crash rc 11;
  Cbtc.Reconfig.crash rc 12;
  settle rc;
  let gr = live_gr rc pl (Cbtc.Reconfig.positions rc) in
  Alcotest.(check bool) "preserves after combined churn" true
    (Metrics.Connectivity.preserves ~reference:gr (Cbtc.Reconfig.topology rc))

let test_discovery_snapshot () =
  let sc = Workload.Scenario.make ~n:30 ~seed:27 () in
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  let rc = Cbtc.Reconfig.create config pl positions in
  let d = Cbtc.Reconfig.discovery rc in
  Alcotest.(check int) "node count" 30 (Cbtc.Discovery.nb_nodes d);
  (* snapshot agrees with the one-shot distributed protocol run *)
  let oneshot = Cbtc.Distributed.run config pl positions in
  let ids l = List.sort Int.compare (List.map (fun (n : Cbtc.Neighbor.t) -> n.Cbtc.Neighbor.id) l) in
  for u = 0 to 29 do
    Alcotest.(check (list int))
      (Fmt.str "N(%d)" u)
      (ids oneshot.Cbtc.Distributed.discovery.neighbors.(u))
      (ids d.neighbors.(u))
  done

let test_lossy_beacons_still_converge () =
  (* Section 4's asynchronous model: beacons and protocol messages can be
     lost.  Occasional spurious leaves are repaired by re-growth and the
     next heard beacon; after settling, connectivity must be preserved. *)
  let sc = Workload.Scenario.make ~n:40 ~seed:28 () in
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  let channel = Dsim.Channel.make ~loss:0.1 () in
  let rc =
    Cbtc.Reconfig.create ~channel ~seed:7
      ~params:{ Cbtc.Reconfig.default_params with hello_repeats = 3 }
      config pl positions
  in
  Cbtc.Reconfig.run_for rc ~duration:600.;
  let gr = live_gr rc pl (Cbtc.Reconfig.positions rc) in
  Alcotest.(check bool) "lossy NDP preserves connectivity" true
    (Metrics.Connectivity.preserves ~reference:gr (Cbtc.Reconfig.topology rc))

let test_mass_crash_recovery () =
  (* Kill a third of the network at once; the survivors must reconverge
     to a topology preserving the survivors' GR partition. *)
  let sc = Workload.Scenario.make ~n:45 ~seed:29 () in
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  let rc = Cbtc.Reconfig.create config pl positions in
  for u = 0 to 14 do
    Cbtc.Reconfig.crash rc u
  done;
  settle rc;
  let gr = live_gr rc pl (Cbtc.Reconfig.positions rc) in
  Alcotest.(check bool) "survivors preserve their GR" true
    (Metrics.Connectivity.preserves ~reference:gr (Cbtc.Reconfig.topology rc));
  (* crashed nodes appear isolated in the snapshot *)
  let topo = Cbtc.Reconfig.topology rc in
  for u = 0 to 14 do
    Alcotest.(check int) (Fmt.str "dead %d isolated" u) 0
      (Graphkit.Ugraph.degree topo u)
  done

let test_create_validation () =
  let pl = Radio.Pathloss.make ~max_range:100. () in
  let positions = [| Geom.Vec2.zero |] in
  Alcotest.check_raises "Exact rejected"
    (Invalid_argument
       "Reconfig: Exact growth needs global knowledge; use Double or Mult")
    (fun () ->
      ignore (Cbtc.Reconfig.create (Cbtc.Config.make alpha56) pl positions));
  Alcotest.check_raises "bad params" (Invalid_argument "Reconfig.create: bad params")
    (fun () ->
      ignore
        (Cbtc.Reconfig.create
           ~params:{ Cbtc.Reconfig.default_params with beacon_interval = 0. }
           config pl positions))

let test_radial_reach_flip () =
  (* Regression: a move that keeps a neighbor's direction unchanged but
     carries it beyond reach at the observer's current power must be
     handled as a leave+join (the link's power class flipped), not a
     silent neighbor-set refresh.  Node 1 moves radially away from node
     0 — its direction from node 0 stays exactly 0, so no aChange can
     fire — from distance 100 to 200.  Node 0's converged power (at
     most 12800, the first Double-100 step past p(100) = 10000) no
     longer reaches it, yet node 1's beacons (sent at its basic power,
     51200) still arrive and keep refreshing the timeout. *)
  let pl = Radio.Pathloss.make ~max_range:500. () in
  let positions =
    [| Geom.Vec2.zero; Geom.Vec2.make 100. 0.;
       Geom.Vec2.make (-50.) 86.6; Geom.Vec2.make (-50.) (-86.6) |]
  in
  let rc = Cbtc.Reconfig.create config pl positions in
  Cbtc.Reconfig.run_for rc ~duration:50.;
  let t0 = Cbtc.Reconfig.now rc in
  Cbtc.Reconfig.set_position rc 1 (Geom.Vec2.make 200. 0.);
  settle rc;
  let observed k =
    List.exists
      (fun e ->
        e.Cbtc.Reconfig.time > t0 && e.Cbtc.Reconfig.node = 0
        && e.Cbtc.Reconfig.about = 1 && e.Cbtc.Reconfig.kind = k)
      (Cbtc.Reconfig.events rc)
  in
  Alcotest.(check bool) "leave observed at node 0" true
    (observed Cbtc.Reconfig.Leave);
  Alcotest.(check bool) "join observed at node 0" true
    (observed Cbtc.Reconfig.Join);
  let d = Cbtc.Reconfig.discovery rc in
  Alcotest.(check bool) "node 0's power reaches the new distance" true
    (d.Cbtc.Discovery.power.(0)
     >= Radio.Pathloss.power_for_distance pl 200.);
  (match Cbtc.Reconfig.check_stable rc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "check_stable: %s" e)

let prop_recovery_converges_any_schedule =
  (* Under any tie-break seed, a crashed-then-recovered node's cone
     coverage reconverges within the watchdog bound (the [settle]
     duration): either it is a boundary node or its alpha-gap is
     closed, and the whole network passes the surviving-set checks. *)
  QCheck.Test.make ~count:15
    ~name:"recovered cone converges under every tie-break seed"
    QCheck.(pair (int_bound 9999) (int_bound 24))
    (fun (seed, victim) ->
      let sc = Workload.Scenario.make ~n:25 ~seed:31 () in
      let pl = Workload.Scenario.pathloss sc in
      let positions = Workload.Scenario.positions sc in
      let rc =
        Cbtc.Reconfig.create ~policy:(Dsim.Eventq.Seeded seed) config pl
          positions
      in
      Cbtc.Reconfig.crash rc victim;
      Cbtc.Reconfig.run_for rc ~duration:100.;
      Cbtc.Reconfig.recover rc victim;
      settle rc;
      (match Cbtc.Reconfig.check_stable rc with
      | Ok () -> ()
      | Error e ->
          QCheck.Test.fail_reportf "seed %d victim %d: check_stable: %s"
            seed victim e);
      let d = Cbtc.Reconfig.discovery rc in
      Cbtc.Reconfig.alive rc victim
      && (d.Cbtc.Discovery.boundary.(victim)
         || not (Cbtc.Discovery.has_gap d victim)))

let () =
  Alcotest.run "reconfig"
    [
      ( "steady-state",
        [
          Alcotest.test_case "initial run preserves" `Quick test_initial_run_preserves;
          Alcotest.test_case "stable network is quiet" `Quick test_stable_network_is_quiet;
          Alcotest.test_case "discovery snapshot" `Quick test_discovery_snapshot;
        ] );
      ( "failures",
        [
          Alcotest.test_case "crash triggers leave and recovery" `Quick
            test_crash_triggers_leave_and_recovery;
          Alcotest.test_case "failure during mobility" `Quick
            test_node_failure_mid_mobility;
          Alcotest.test_case "mass crash recovery" `Quick test_mass_crash_recovery;
          Alcotest.test_case "lossy beacons converge" `Quick
            test_lossy_beacons_still_converge;
        ] );
      ( "mobility",
        [
          Alcotest.test_case "mobility preserves connectivity" `Quick
            test_mobility_preserves_connectivity;
          Alcotest.test_case "partition heal" `Quick test_partition_heal;
          Alcotest.test_case "aChange detected" `Quick test_achange_detected;
          Alcotest.test_case "radial reach flip" `Quick test_radial_reach_flip;
        ] );
      ( "schedules",
        [ QCheck_alcotest.to_alcotest prop_recovery_converges_any_schedule ] );
      ("validation", [ Alcotest.test_case "create" `Quick test_create_validation ]);
    ]
