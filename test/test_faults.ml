(* Tests for the fault-injection subsystem (Faults.Plan / Faults.Inject),
   the network-level fault surface (recover, hooks, per-link loss, drop
   accounting, the grid-after-crash regression), the hardened distributed
   protocol under burst loss and crash schedules, and the surviving /
   degradation verifiers. *)

let alpha56 = Geom.Angle.five_pi_six

let alpha23 = Geom.Angle.two_pi_three

let growth = Cbtc.Config.Double 100.

let scenario ~n ~seed =
  let sc = Workload.Scenario.make ~n ~seed () in
  (Workload.Scenario.pathloss sc, Workload.Scenario.positions sc)

(* ---------- Net fault surface ---------- *)

let pl = Radio.Pathloss.make ~max_range:100. ()

let line_positions =
  [| Geom.Vec2.make 0. 0.; Geom.Vec2.make 10. 0.; Geom.Vec2.make 50. 0.;
     Geom.Vec2.make 150. 0. |]

let make_net ?(channel = Dsim.Channel.reliable) () =
  let sim = Dsim.Sim.create () in
  let net =
    Airnet.Net.create ~sim ~pathloss:pl ~channel ~prng:(Prng.create ~seed:5)
      ~positions:line_positions ()
  in
  (sim, net)

let collect net =
  let log = ref [] in
  for u = 0 to Airnet.Net.nb_nodes net - 1 do
    Airnet.Net.set_handler net u (fun r -> log := r :: !log)
  done;
  log

let dsts log = List.sort Int.compare (List.map (fun r -> r.Airnet.Net.dst) !log)

let test_recover_restores_delivery () =
  let sim, net = make_net () in
  let log = collect net in
  Airnet.Net.crash net 1;
  ignore (Airnet.Net.bcast net ~src:0 ~power:2500. "while-dead");
  ignore (Dsim.Sim.run sim);
  Alcotest.(check (list int)) "dead node misses the bcast" [ 2 ] (dsts log);
  Airnet.Net.recover net 1;
  Alcotest.(check bool) "alive again" true (Airnet.Net.is_alive net 1);
  log := [];
  ignore (Airnet.Net.bcast net ~src:0 ~power:2500. "after-recover");
  ignore (Dsim.Sim.run sim);
  Alcotest.(check (list int)) "recovered node hears again" [ 1; 2 ] (dsts log)

let test_fault_hooks_fire_on_transitions () =
  let _, net = make_net () in
  let seen = ref [] in
  Airnet.Net.on_fault net (fun ev -> seen := ev :: !seen);
  Airnet.Net.crash net 1;
  Airnet.Net.crash net 1;
  (* idempotent: no second event *)
  Airnet.Net.recover net 1;
  Airnet.Net.recover net 1;
  Airnet.Net.recover net 2;
  (* live node: no event *)
  match List.rev !seen with
  | [ Airnet.Net.Crashed 1; Airnet.Net.Recovered 1 ] -> ()
  | l -> Alcotest.failf "expected [Crashed 1; Recovered 1], got %d events"
           (List.length l)

let test_link_loss_asymmetric () =
  let sim, net = make_net () in
  let log = collect net in
  Airnet.Net.set_link_loss net ~src:0 ~dst:1 ~loss:1.;
  Alcotest.(check bool) "readback" true
    (Airnet.Net.link_loss net ~src:0 ~dst:1 = 1.);
  Alcotest.(check bool) "reverse unset" true
    (Airnet.Net.link_loss net ~src:1 ~dst:0 = 0.);
  ignore (Airnet.Net.bcast net ~src:0 ~power:2500. "fwd");
  ignore (Dsim.Sim.run sim);
  Alcotest.(check (list int)) "0->1 severed, 0->2 fine" [ 2 ] (dsts log);
  Alcotest.(check int) "drop charged to 1" 1 (Airnet.Net.drops_at net 1);
  log := [];
  (* the reverse direction still works: asymmetric by construction *)
  ignore (Airnet.Net.send net ~src:1 ~dst:0 ~power:100. "rev");
  ignore (Dsim.Sim.run sim);
  Alcotest.(check (list int)) "1->0 untouched" [ 0 ] (dsts log);
  (* loss 0 removes the entry *)
  Airnet.Net.set_link_loss net ~src:0 ~dst:1 ~loss:0.;
  log := [];
  ignore (Airnet.Net.bcast net ~src:0 ~power:2500. "healed");
  ignore (Dsim.Sim.run sim);
  Alcotest.(check (list int)) "healed link delivers" [ 1; 2 ] (dsts log);
  Alcotest.check_raises "invalid loss"
    (Invalid_argument "Net.set_link_loss: loss out of [0,1]") (fun () ->
      Airnet.Net.set_link_loss net ~src:0 ~dst:1 ~loss:1.5)

let test_drop_accounting () =
  let channel = Dsim.Channel.make ~loss:0.5 () in
  let sim, net = make_net ~channel () in
  let _log = collect net in
  let sent = 200 in
  for _ = 1 to sent do
    ignore (Airnet.Net.bcast net ~src:0 ~power:200. "x")
  done;
  ignore (Dsim.Sim.run sim);
  (* power 200 reaches only node 1: every transmission either delivers or
     is charged as a drop to node 1 *)
  Alcotest.(check int) "deliveries + drops = attempts" sent
    (Airnet.Net.deliveries net + Airnet.Net.drops_at net 1);
  Alcotest.(check int) "drops total = drops at 1" (Airnet.Net.drops_at net 1)
    (Airnet.Net.drops net)

let test_retransmit_credit () =
  let _, net = make_net () in
  Airnet.Net.note_retransmit net 2;
  Airnet.Net.note_retransmit net 2;
  Airnet.Net.note_retransmit net 0;
  Alcotest.(check int) "at 2" 2 (Airnet.Net.retransmits_at net 2);
  Alcotest.(check int) "total" 3 (Airnet.Net.retransmits net)

(* Regression for the crash/grid interaction: a crashed node stays in the
   spatial index (it is a pure position map), so crash-then-bcast must
   (a) never deliver to the dead node, (b) still deliver to everyone
   else, and (c) resume delivering to the node after recovery without any
   re-insertion — all with the audience identical to a full scan. *)
let test_crash_then_bcast_grid_regression () =
  let sim, net = make_net () in
  let log = collect net in
  Airnet.Net.crash net 1;
  let reached = Airnet.Net.bcast net ~src:0 ~power:2500. "a" in
  ignore (Dsim.Sim.run sim);
  Alcotest.(check int) "audience excludes the dead node" 1 reached;
  Alcotest.(check (list int)) "only the live in-range node hears" [ 2 ]
    (dsts log);
  (* mobility while dead keeps the index consistent *)
  Airnet.Net.set_position net 1 (Geom.Vec2.make 20. 0.);
  Airnet.Net.recover net 1;
  log := [];
  let reached = Airnet.Net.bcast net ~src:0 ~power:2500. "b" in
  ignore (Dsim.Sim.run sim);
  Alcotest.(check int) "recovered node back in the audience" 2 reached;
  Alcotest.(check (list int)) "hears at its moved position" [ 1; 2 ] (dsts log)

(* ---------- Faults.Plan ---------- *)

let test_plan_validation () =
  Alcotest.check_raises "negative time"
    (Invalid_argument "Faults.Plan: negative event time") (fun () ->
      ignore (Faults.Plan.make [ { time = -1.; kind = Faults.Plan.Crash 0 } ]));
  Alcotest.check_raises "loss range"
    (Invalid_argument "Faults.Plan: link loss out of [0,1]") (fun () ->
      ignore
        (Faults.Plan.make
           [ { time = 0.;
               kind = Faults.Plan.Link_loss { src = 0; dst = 1; loss = 1.5 } } ]));
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Faults.Plan.random_crashes: fraction out of [0,1]")
    (fun () ->
      ignore
        (Faults.Plan.random_crashes ~prng:(Prng.create ~seed:1) ~n:10
           ~fraction:1.5 ~window:(0., 1.) ()));
  Alcotest.check_raises "bad window"
    (Invalid_argument "Faults.Plan.random_crashes: bad window") (fun () ->
      ignore
        (Faults.Plan.random_crashes ~prng:(Prng.create ~seed:1) ~n:10
           ~fraction:0.5 ~window:(5., 1.) ()));
  Alcotest.check_raises "bad interval"
    (Invalid_argument "Faults.Plan.partition: bad interval") (fun () ->
      ignore (Faults.Plan.partition ~left:[ 0 ] ~right:[ 1 ] ~from_:5. ~until:1.));
  Alcotest.check_raises "bad loss interval"
    (Invalid_argument "Faults.Plan.random_asymmetric_loss: loss interval out \
                       of [0,1]") (fun () ->
      ignore
        (Faults.Plan.random_asymmetric_loss ~prng:(Prng.create ~seed:1) ~n:5
           ~pairs:2 ~loss:(0.5, 0.2) ~time:0.))

let test_plan_ordering_and_union () =
  let p =
    Faults.Plan.make
      [
        { time = 9.; kind = Faults.Plan.Crash 2 };
        { time = 1.; kind = Faults.Plan.Crash 0 };
        { time = 4.; kind = Faults.Plan.Recover 0 };
      ]
  in
  Alcotest.(check (list (float 0.)))
    "sorted by time" [ 1.; 4.; 9. ]
    (List.map (fun (e : Faults.Plan.event) -> e.time) (Faults.Plan.events p));
  let q = Faults.Plan.make [ { time = 2.; kind = Faults.Plan.Crash 1 } ] in
  let u = Faults.Plan.union p q in
  Alcotest.(check int) "union size" 4 (Faults.Plan.nb_events u);
  Alcotest.(check (list int)) "crashed nodes, distinct and sorted" [ 0; 1; 2 ]
    (Faults.Plan.crashed_nodes u);
  Alcotest.(check int) "empty plan" 0 (Faults.Plan.nb_events Faults.Plan.empty)

let test_random_crashes_generator () =
  let plan =
    Faults.Plan.random_crashes ~prng:(Prng.create ~seed:3) ~n:20 ~fraction:0.25
      ~window:(10., 20.) ~recover_after:7. ()
  in
  let victims = Faults.Plan.crashed_nodes plan in
  Alcotest.(check int) "round (0.25 * 20) victims" 5 (List.length victims);
  Alcotest.(check int) "crash + recover per victim" 10
    (Faults.Plan.nb_events plan);
  List.iter
    (fun (e : Faults.Plan.event) ->
      match e.kind with
      | Faults.Plan.Crash _ ->
          if e.time < 10. || e.time > 20. then
            Alcotest.failf "crash at %g outside window" e.time
      | Faults.Plan.Recover _ ->
          if e.time < 17. || e.time > 27. then
            Alcotest.failf "recovery at %g outside shifted window" e.time
      | Faults.Plan.Link_loss _ -> Alcotest.fail "unexpected link event")
    (Faults.Plan.events plan)

let test_partition_generator () =
  let plan = Faults.Plan.partition ~left:[ 0; 1 ] ~right:[ 2 ] ~from_:5. ~until:9. in
  (* 2 directed links per (left, right) pair, severed then restored *)
  Alcotest.(check int) "event count" 8 (Faults.Plan.nb_events plan);
  let sever, restore =
    List.partition
      (fun (e : Faults.Plan.event) -> e.time = 5.)
      (Faults.Plan.events plan)
  in
  Alcotest.(check int) "severs at from_" 4 (List.length sever);
  List.iter
    (fun (e : Faults.Plan.event) ->
      match e.kind with
      | Faults.Plan.Link_loss { loss; _ } ->
          let expect = if e.time = 5. then 1. else 0. in
          if loss <> expect then Alcotest.failf "loss %g at t=%g" loss e.time
      | _ -> Alcotest.fail "non-link event in partition plan")
    (sever @ restore)

let test_asymmetric_loss_generator () =
  let plan =
    Faults.Plan.random_asymmetric_loss ~prng:(Prng.create ~seed:4) ~n:10
      ~pairs:6 ~loss:(0.2, 0.8) ~time:3.
  in
  let events = Faults.Plan.events plan in
  Alcotest.(check int) "one event per pair" 6 (List.length events);
  List.iter
    (fun (e : Faults.Plan.event) ->
      match e.kind with
      | Faults.Plan.Link_loss { src; dst; loss } ->
          if src = dst then Alcotest.fail "self link";
          if loss < 0.2 || loss > 0.8 then
            Alcotest.failf "loss %g outside interval" loss
      | _ -> Alcotest.fail "non-link event")
    events

(* ---------- Faults.Inject ---------- *)

let test_inject_applies_and_counts () =
  let sim, net = make_net () in
  let plan =
    Faults.Plan.make
      [
        { time = 5.; kind = Faults.Plan.Crash 1 };
        { time = 6.; kind = Faults.Plan.Crash 1 };
        (* already dead: no transition *)
        { time = 8.;
          kind = Faults.Plan.Link_loss { src = 0; dst = 2; loss = 0.4 } };
        { time = 10.; kind = Faults.Plan.Recover 1 };
      ]
  in
  let stats = Faults.Inject.arm plan net in
  let alive_at_7 = ref true in
  ignore (Dsim.Sim.schedule sim ~delay:7. (fun () ->
      alive_at_7 := Airnet.Net.is_alive net 1));
  ignore (Dsim.Sim.run sim);
  Alcotest.(check bool) "dead between crash and recovery" false !alive_at_7;
  Alcotest.(check bool) "alive at the end" true (Airnet.Net.is_alive net 1);
  Alcotest.(check int) "one effective crash" 1 stats.Faults.Inject.crashes;
  Alcotest.(check int) "one recovery" 1 stats.Faults.Inject.recoveries;
  Alcotest.(check int) "one link change" 1 stats.Faults.Inject.link_changes;
  Alcotest.(check bool) "link loss installed" true
    (Airnet.Net.link_loss net ~src:0 ~dst:2 = 0.4)

(* ---------- hardened distributed protocol ---------- *)

(* GE channel with stationary mean loss [m] and bursts dropping
   everything: pi_bad = m requires p_gb = p_bg * m / (1 - m). *)
let ge_channel ~mean_loss ~burst =
  let p_bg = 1. /. burst in
  Dsim.Channel.gilbert_elliott ~p_gb:(p_bg *. mean_loss /. (1. -. mean_loss))
    ~p_bg ~loss_bad:1. ()

let test_legacy_profile_is_identical () =
  let pl, positions = scenario ~n:40 ~seed:21 in
  let config = Cbtc.Config.make ~growth alpha56 in
  let plain = Cbtc.Distributed.run ~seed:21 config pl positions in
  let explicit =
    Cbtc.Distributed.run ~seed:21 ~reliability:Cbtc.Distributed.legacy config
      pl positions
  in
  Alcotest.(check int) "same transmissions"
    plain.Cbtc.Distributed.stats.Cbtc.Distributed.transmissions
    explicit.Cbtc.Distributed.stats.Cbtc.Distributed.transmissions;
  Alcotest.(check bool) "same duration" true
    (plain.Cbtc.Distributed.stats.Cbtc.Distributed.duration
    = explicit.Cbtc.Distributed.stats.Cbtc.Distributed.duration);
  Alcotest.(check bool) "same closure" true
    (Graphkit.Ugraph.equal
       (Cbtc.Discovery.closure plain.Cbtc.Distributed.discovery)
       (Cbtc.Discovery.closure explicit.Cbtc.Distributed.discovery))

(* The ISSUE's acceptance scenario in miniature: GE mean loss 0.3 plus a
   crash schedule killing 10% of the nodes mid-growth.  The hardened run
   must terminate, every surviving non-boundary node must have cone
   coverage (checked independently from positions), and the symmetric
   closure must preserve connectivity of the survivors' max-power
   component. *)
let test_crash_mid_growth_under_burst_loss () =
  List.iter
    (fun seed ->
      let n = 40 in
      let pl, positions = scenario ~n ~seed in
      let config = Cbtc.Config.make ~growth alpha56 in
      let faults =
        Faults.Plan.random_crashes ~prng:(Prng.create ~seed) ~n ~fraction:0.1
          ~window:(5., 30.) ()
      in
      let o =
        Cbtc.Distributed.run
          ~channel:(ge_channel ~mean_loss:0.3 ~burst:4.)
          ~seed ~reliability:Cbtc.Distributed.hardened ~faults config pl
          positions
      in
      Alcotest.(check int)
        (Fmt.str "seed %d: all planned crashes fired" seed)
        4 o.Cbtc.Distributed.injected.Faults.Inject.crashes;
      Cbtc.Verify.surviving ~alive:o.Cbtc.Distributed.alive
        o.Cbtc.Distributed.discovery;
      let deg = Cbtc.Verify.degradation o in
      Alcotest.(check int)
        (Fmt.str "seed %d: survivors" seed)
        36 deg.Cbtc.Verify.survivors;
      Alcotest.(check (list int))
        (Fmt.str "seed %d: no residual gaps" seed)
        [] deg.Cbtc.Verify.residual_gap_nodes;
      Alcotest.(check bool)
        (Fmt.str "seed %d: connectivity preserved" seed)
        true deg.Cbtc.Verify.connectivity_preserved;
      Alcotest.(check bool)
        (Fmt.str "seed %d: losses really happened" seed)
        true
        (o.Cbtc.Distributed.stats.Cbtc.Distributed.drops > 0
        && o.Cbtc.Distributed.stats.Cbtc.Distributed.retransmissions > 0))
    [ 31; 32; 33 ]

let test_crash_and_recover_mid_growth () =
  let n = 30 in
  let seed = 35 in
  let pl, positions = scenario ~n ~seed in
  let config = Cbtc.Config.make ~growth alpha56 in
  let faults =
    Faults.Plan.random_crashes ~prng:(Prng.create ~seed) ~n ~fraction:0.2
      ~window:(5., 20.) ~recover_after:40. ()
  in
  let o =
    Cbtc.Distributed.run ~seed ~reliability:Cbtc.Distributed.hardened ~faults
      config pl positions
  in
  Alcotest.(check int) "crashes fired" 6
    o.Cbtc.Distributed.injected.Faults.Inject.crashes;
  Alcotest.(check int) "recoveries fired" 6
    o.Cbtc.Distributed.injected.Faults.Inject.recoveries;
  Array.iteri
    (fun u a -> Alcotest.(check bool) (Fmt.str "node %d alive" u) true a)
    o.Cbtc.Distributed.alive;
  (* recovered nodes restarted discovery: the run must converge to a
     fully verified state, and everyone participates again *)
  Cbtc.Verify.run o.Cbtc.Distributed.discovery;
  let deg = Cbtc.Verify.degradation o in
  Alcotest.(check int) "no one left dead" 0 deg.Cbtc.Verify.crashed;
  Alcotest.(check bool) "connectivity preserved" true
    deg.Cbtc.Verify.connectivity_preserved

let test_partition_heals () =
  (* Severing all links between two node groups during early growth and
     restoring them later must not leave residual gaps once the hardened
     retries run at the final power. *)
  let n = 24 in
  let seed = 36 in
  let pl, positions = scenario ~n ~seed in
  let config = Cbtc.Config.make ~growth alpha56 in
  let left = List.init (n / 2) Fun.id in
  let right = List.init (n - (n / 2)) (fun i -> (n / 2) + i) in
  let faults = Faults.Plan.partition ~left ~right ~from_:0. ~until:25. in
  let o =
    Cbtc.Distributed.run ~seed ~reliability:Cbtc.Distributed.hardened ~faults
      config pl positions
  in
  Cbtc.Verify.surviving ~alive:o.Cbtc.Distributed.alive
    o.Cbtc.Distributed.discovery;
  let deg = Cbtc.Verify.degradation o in
  Alcotest.(check bool) "connectivity preserved after heal" true
    deg.Cbtc.Verify.connectivity_preserved

(* ---------- qcheck: lossy convergence (satellite property) ---------- *)

(* A profile with enough retries that, for every seed the generator can
   produce, the lossy outcome is bit-determined and equal to the reliable
   one (runs are fully seeded, so passing once means passing forever). *)
let robust =
  { Cbtc.Distributed.hardened with hello_attempts = 24; settle_rounds = 10;
    remove_attempts = 10 }

let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 60)

let prop_lossy_topology_matches_reliable =
  QCheck.Test.make ~count:12
    ~name:"hardened run under loss matches the reliable topology"
    seed_gen
    (fun seed ->
      let pl, positions = scenario ~n:24 ~seed in
      let config = Cbtc.Config.make ~growth alpha56 in
      let reliable = Cbtc.Distributed.run ~seed config pl positions in
      List.for_all
        (fun loss ->
          let channel = Dsim.Channel.make ~loss () in
          let o =
            Cbtc.Distributed.run ~channel ~seed ~reliability:robust config pl
              positions
          in
          Graphkit.Ugraph.equal
            (Cbtc.Discovery.closure reliable.Cbtc.Distributed.discovery)
            (Cbtc.Discovery.closure o.Cbtc.Distributed.discovery))
        [ 0.1; 0.3 ])

let prop_lossy_core_matches_oracle =
  QCheck.Test.make ~count:12
    ~name:"acked removals build E-_alpha under loss (alpha <= 2pi/3)"
    seed_gen
    (fun seed ->
      let pl, positions = scenario ~n:24 ~seed in
      let config = Cbtc.Config.make ~growth alpha23 in
      List.for_all
        (fun loss ->
          let channel = Dsim.Channel.make ~loss () in
          let o =
            Cbtc.Distributed.run ~channel ~seed ~reliability:robust config pl
              positions
          in
          let d = o.Cbtc.Distributed.discovery in
          let expected = Cbtc.Discovery.core d in
          let got = Graphkit.Ugraph.create (Cbtc.Discovery.nb_nodes d) in
          Array.iteri
            (fun u vs ->
              List.iter (fun v -> Graphkit.Ugraph.add_edge got u v) vs)
            o.Cbtc.Distributed.core_neighbors;
          Graphkit.Ugraph.equal expected got)
        [ 0.1; 0.3 ])

(* ---------- Verify.surviving / degradation ---------- *)

let test_surviving_rejects_dead_neighbor () =
  let pl, positions = scenario ~n:30 ~seed:41 in
  let config = Cbtc.Config.make ~growth alpha56 in
  let o = Cbtc.Distributed.run ~seed:41 config pl positions in
  let d = o.Cbtc.Distributed.discovery in
  (* declare some listed neighbor dead without telling the protocol *)
  let u, (nb : Cbtc.Neighbor.t) =
    let rec first u =
      match d.neighbors.(u) with [] -> first (u + 1) | nb :: _ -> (u, nb)
    in
    first 0
  in
  let alive = Array.make (Cbtc.Discovery.nb_nodes d) true in
  alive.(nb.Cbtc.Neighbor.id) <- false;
  (match Cbtc.Verify.surviving ~alive d with
  | () -> Alcotest.failf "stale neighbor %d of %d not detected" nb.id u
  | exception Failure _ -> ());
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Verify.surviving: alive array size mismatch")
    (fun () -> Cbtc.Verify.surviving ~alive:[| true |] d)

let test_degradation_clean_run () =
  let pl, positions = scenario ~n:30 ~seed:42 in
  let config = Cbtc.Config.make ~growth alpha56 in
  let o = Cbtc.Distributed.run ~seed:42 config pl positions in
  let deg = Cbtc.Verify.degradation ~reference:o o in
  Alcotest.(check int) "all survive" 30 deg.Cbtc.Verify.survivors;
  Alcotest.(check int) "none crashed" 0 deg.Cbtc.Verify.crashed;
  Alcotest.(check (list int)) "no gaps" [] deg.Cbtc.Verify.residual_gap_nodes;
  Alcotest.(check bool) "connectivity" true
    deg.Cbtc.Verify.connectivity_preserved;
  Alcotest.(check bool) "perfect delivery" true
    (deg.Cbtc.Verify.delivery_ratio = 1.);
  Alcotest.(check int) "no extra rounds vs self" 0 deg.Cbtc.Verify.extra_rounds

(* ---------- Reconfig crash/recover ---------- *)

let test_reconfig_recover_rejoins () =
  let pl, positions = scenario ~n:20 ~seed:51 in
  let config = Cbtc.Config.make ~growth alpha56 in
  let rc = Cbtc.Reconfig.create ~seed:51 config pl positions in
  let u = 3 in
  Cbtc.Reconfig.crash rc u;
  Cbtc.Reconfig.run_for rc ~duration:100.;
  Alcotest.(check bool) "down" false (Cbtc.Reconfig.alive rc u);
  Alcotest.(check int) "isolated while down" 0
    (Graphkit.Ugraph.degree (Cbtc.Reconfig.topology rc) u);
  let t_recover = Cbtc.Reconfig.now rc in
  Cbtc.Reconfig.recover rc u;
  Alcotest.(check bool) "up" true (Cbtc.Reconfig.alive rc u);
  (* recover on a live node is a no-op *)
  Cbtc.Reconfig.recover rc u;
  Cbtc.Reconfig.run_for rc ~duration:150.;
  Alcotest.(check bool) "reconnected" true
    (Graphkit.Ugraph.degree (Cbtc.Reconfig.topology rc) u > 0);
  let rejoin_seen =
    List.exists
      (fun (e : Cbtc.Reconfig.event) ->
        e.kind = Cbtc.Reconfig.Join && e.about = u && e.time > t_recover)
      (Cbtc.Reconfig.events rc)
  in
  Alcotest.(check bool) "peers observed the rejoin" true rejoin_seen;
  (* and the maintained topology still preserves survivor connectivity *)
  Alcotest.(check bool) "topology preserves G_R" true
    (Metrics.Connectivity.preserves
       ~reference:(Cbtc.Geo.max_power_graph pl positions)
       (Cbtc.Reconfig.topology rc))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "faults"
    [
      ( "net",
        [
          Alcotest.test_case "recover restores delivery" `Quick
            test_recover_restores_delivery;
          Alcotest.test_case "hooks fire on transitions" `Quick
            test_fault_hooks_fire_on_transitions;
          Alcotest.test_case "asymmetric link loss" `Quick
            test_link_loss_asymmetric;
          Alcotest.test_case "drop accounting" `Quick test_drop_accounting;
          Alcotest.test_case "retransmit credit" `Quick test_retransmit_credit;
          Alcotest.test_case "crash then bcast (grid regression)" `Quick
            test_crash_then_bcast_grid_regression;
        ] );
      ( "plan",
        [
          Alcotest.test_case "validation" `Quick test_plan_validation;
          Alcotest.test_case "ordering and union" `Quick
            test_plan_ordering_and_union;
          Alcotest.test_case "random crashes" `Quick
            test_random_crashes_generator;
          Alcotest.test_case "partition" `Quick test_partition_generator;
          Alcotest.test_case "asymmetric loss" `Quick
            test_asymmetric_loss_generator;
        ] );
      ( "inject",
        [
          Alcotest.test_case "applies and counts" `Quick
            test_inject_applies_and_counts;
        ] );
      ( "hardened",
        [
          Alcotest.test_case "legacy profile identical" `Quick
            test_legacy_profile_is_identical;
          Alcotest.test_case "crash mid-growth under burst loss" `Quick
            test_crash_mid_growth_under_burst_loss;
          Alcotest.test_case "crash and recover" `Quick
            test_crash_and_recover_mid_growth;
          Alcotest.test_case "partition heals" `Quick test_partition_heals;
        ] );
      ("lossy convergence", qsuite
        [ prop_lossy_topology_matches_reliable; prop_lossy_core_matches_oracle ]);
      ( "verify",
        [
          Alcotest.test_case "surviving rejects dead neighbor" `Quick
            test_surviving_rejects_dead_neighbor;
          Alcotest.test_case "degradation of a clean run" `Quick
            test_degradation_clean_run;
        ] );
      ( "reconfig",
        [
          Alcotest.test_case "recover rejoins" `Quick
            test_reconfig_recover_rejoins;
        ] );
    ]
