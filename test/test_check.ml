(* Tests for the schedule-exploration harness (lib/check): the mutation
   smoke test proving Explore catches a deliberately injected reordering
   bug, shrinking + artifact replay, cross-[-j] determinism of sweep
   reports, and the scenario/plan surgery the shrinker relies on. *)

(* The reference mutant trial: a placement where the "assume ordered
   acks" bug is invisible under FIFO (broadcast audiences are sorted, so
   ack batches arrive in ascending src order) but breaks under seeded
   tie-break permutations. *)
let mutant_scenario () = Check.Scenario.make ~n:14 ~seed:3 ~mutant:true ()

let clean_scenario () = Check.Scenario.make ~n:14 ~seed:3 ()

(* ---------- Mutation smoke ---------- *)

let test_mutant_caught () =
  let report = Check.Explore.sweep ~schedules:6 (mutant_scenario ()) in
  Alcotest.(check int) "trials" 7 report.Check.Explore.trials;
  Alcotest.(check bool) "sweep finds the mutant" true
    (report.Check.Explore.failures <> []);
  List.iter
    (fun (f : Check.Explore.failure) ->
      if f.trial = 0 then
        Alcotest.failf "FIFO trial failed: %s (the mutant must be invisible \
                        under the default schedule)" f.message;
      (match f.policy with
      | Dsim.Eventq.Seeded _ -> ()
      | _ -> Alcotest.fail "failure on a non-seeded policy");
      Alcotest.(check bool) "failure carries a decision log" true
        (Array.length f.log > 0);
      Alcotest.(check bool) "failure has a message" true (f.message <> ""))
    report.Check.Explore.failures

let test_clean_sweep_passes () =
  let report = Check.Explore.sweep ~schedules:6 (clean_scenario ()) in
  Alcotest.(check int) "no failures on the unmutated protocol" 0
    (List.length report.Check.Explore.failures)

(* The sweep report — failures and aggregate digest — must be
   bit-identical for every [-j]. *)
let test_sweep_deterministic_across_jobs () =
  let run jobs =
    Parallel.Pool.with_pool ~jobs (fun pool ->
        Check.Explore.sweep ~pool ~schedules:4 (mutant_scenario ()))
  in
  let r1 = run 1 and r2 = run 2 in
  let serial = Check.Explore.sweep ~schedules:4 (mutant_scenario ()) in
  Alcotest.(check string) "digest j1 = j2" r1.Check.Explore.digest
    r2.Check.Explore.digest;
  Alcotest.(check string) "digest j1 = serial" r1.Check.Explore.digest
    serial.Check.Explore.digest;
  let sig_of r =
    List.map
      (fun (f : Check.Explore.failure) -> (f.trial, f.message))
      r.Check.Explore.failures
  in
  Alcotest.(check (list (pair int string))) "failures j1 = j2" (sig_of r1)
    (sig_of r2)

(* ---------- Shrink + artifact replay ---------- *)

let test_shrink_and_replay () =
  let sc = mutant_scenario () in
  let report = Check.Explore.sweep ~schedules:6 sc in
  let f =
    match report.Check.Explore.failures with
    | f :: _ -> f
    | [] -> Alcotest.fail "mutant not caught"
  in
  let r = Check.Shrink.minimize f.Check.Explore.scenario f.Check.Explore.policy in
  Alcotest.(check bool) "shrink deleted nodes" true
    (Check.Scenario.nb_nodes r.Check.Shrink.scenario
    < Check.Scenario.nb_nodes sc);
  Alcotest.(check bool) "witness message non-empty" true
    (r.Check.Shrink.message <> "");
  (* the minimized witness replays deterministically, twice *)
  let a = Check.Artifact.of_shrink r in
  (match Check.Artifact.replay a with
  | Ok (msg, digest1) ->
      Alcotest.(check string) "replay reproduces the shrunk message"
        r.Check.Shrink.message msg;
      (match Check.Artifact.replay a with
      | Ok (_, digest2) ->
          Alcotest.(check string) "replay digest stable" digest1 digest2
      | Error _ -> Alcotest.fail "second replay passed")
  | Error _ -> Alcotest.fail "replay passed: artifact does not reproduce");
  (* JSON round-trip is exact *)
  let json = Check.Artifact.to_json a in
  let a' = Check.Artifact.of_json json in
  Alcotest.(check string) "artifact JSON round-trips"
    (Obs.Jsonl.to_string json)
    (Obs.Jsonl.to_string (Check.Artifact.to_json a'))

let test_artifact_rejects_malformed () =
  Alcotest.check_raises "wrong format tag"
    (Invalid_argument "Check.Artifact: not a check artifact")
    (fun () ->
      ignore
        (Check.Artifact.of_json
           (Obs.Jsonl.of_string "{\"format\":\"nope\",\"version\":1}")))

(* ---------- Scenario and plan surgery ---------- *)

let test_drop_nodes () =
  let sc = Check.Scenario.make ~n:6 ~seed:1 () in
  let keep = [| true; false; true; false; true; false |] in
  let sc' = Check.Scenario.drop_nodes sc ~keep in
  Alcotest.(check int) "survivors" 3 (Check.Scenario.nb_nodes sc');
  Alcotest.(check bool) "positions follow survivors" true
    (sc'.Check.Scenario.positions.(1) = sc.Check.Scenario.positions.(2));
  Alcotest.check_raises "fewer than 2 survivors"
    (Invalid_argument "Check.Scenario.drop_nodes: < 2 nodes kept")
    (fun () ->
      ignore
        (Check.Scenario.drop_nodes sc
           ~keep:[| true; false; false; false; false; false |]));
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Check.Scenario.drop_nodes: keep length mismatch")
    (fun () -> ignore (Check.Scenario.drop_nodes sc ~keep:[| true; true |]))

let test_plan_restrict () =
  let open Faults.Plan in
  let plan =
    make
      [
        { time = 1.; kind = Crash 0 };
        { time = 2.; kind = Link_loss { src = 1; dst = 2; loss = 1. } };
        { time = 3.; kind = Recover 5 };
      ]
  in
  (* delete node 0: ids shift down by one, events touching 0 vanish *)
  let keep u = if u = 0 then None else Some (u - 1) in
  let r = restrict ~keep plan in
  Alcotest.(check int) "crash of deleted node dropped" 2 (nb_events r);
  (match events r with
  | [ { kind = Link_loss { src = 0; dst = 1; _ }; _ };
      { kind = Recover 4; _ } ] ->
      ()
  | _ -> Alcotest.fail "renaming wrong");
  (* a link loses either endpoint: the event must vanish *)
  let keep u = if u = 2 then None else Some u in
  let r = restrict ~keep plan in
  Alcotest.(check int) "link event with dead endpoint dropped" 2 (nb_events r)

let test_scenario_json_roundtrip () =
  let plan =
    Faults.Plan.make [ { Faults.Plan.time = 4.; kind = Faults.Plan.Crash 1 } ]
  in
  let sc =
    Check.Scenario.make ~n:5 ~seed:9 ~loss:0.1 ~hardened:true ~faults:plan
      ~invariant:Check.Scenario.Guarantees ()
  in
  let sc' = Check.Scenario.of_json (Check.Scenario.to_json sc) in
  Alcotest.(check string) "scenario JSON round-trips"
    (Obs.Jsonl.to_string (Check.Scenario.to_json sc))
    (Obs.Jsonl.to_string (Check.Scenario.to_json sc'))

(* ---------- Daemon equivalence sweep ---------- *)

let test_daemon_sweep_passes () =
  let report = Check.Daemon_sweep.sweep ~seeds:3 () in
  Alcotest.(check int) "15 trials" 15 report.Check.Daemon_sweep.trials;
  List.iter
    (fun (f : Check.Daemon_sweep.failure) ->
      Alcotest.failf "trial %d [seed %d, %a]: %s" f.trial f.seed
        Check.Daemon_sweep.pp_cell f.cell f.message)
    report.Check.Daemon_sweep.failures

let test_daemon_sweep_deterministic_across_jobs () =
  let run jobs =
    Parallel.Pool.with_pool ~jobs (fun pool ->
        Check.Daemon_sweep.sweep ~pool ~seeds:2 ())
  in
  let r1 = run 1 and r2 = run 2 in
  let serial = Check.Daemon_sweep.sweep ~seeds:2 () in
  Alcotest.(check string) "digest j1 = j2" r1.Check.Daemon_sweep.digest
    r2.Check.Daemon_sweep.digest;
  Alcotest.(check string) "digest j1 = serial" r1.Check.Daemon_sweep.digest
    serial.Check.Daemon_sweep.digest

let () =
  Alcotest.run "check"
    [
      ( "mutation-smoke",
        [
          Alcotest.test_case "seeded schedules catch the mutant" `Quick
            test_mutant_caught;
          Alcotest.test_case "clean protocol passes" `Quick
            test_clean_sweep_passes;
          Alcotest.test_case "report identical across -j" `Quick
            test_sweep_deterministic_across_jobs;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "minimize and replay" `Quick test_shrink_and_replay;
          Alcotest.test_case "malformed artifact rejected" `Quick
            test_artifact_rejects_malformed;
        ] );
      ( "surgery",
        [
          Alcotest.test_case "drop_nodes" `Quick test_drop_nodes;
          Alcotest.test_case "plan restrict" `Quick test_plan_restrict;
          Alcotest.test_case "scenario JSON round-trip" `Quick
            test_scenario_json_roundtrip;
        ] );
      ( "daemon-sweep",
        [
          Alcotest.test_case "equivalence grid passes" `Quick
            test_daemon_sweep_passes;
          Alcotest.test_case "report identical across -j" `Quick
            test_daemon_sweep_deterministic_across_jobs;
        ] );
    ]
