(* Tests for the self-healing topology daemon: the bounded shedding
   queue, the deterministic event source, the incremental engine's
   equivalence with full recomputation, checkpoint recovery, and the
   driver's continuous verification. *)

let config = Cbtc.Config.make Geom.Angle.five_pi_six

let scenario ?(n = 30) seed = Workload.Scenario.make ~n ~seed ()

let mk_stream ?(seed = 7) ?(move_rate = 40.) ?storm ?(churn = Faults.Plan.empty)
    sc =
  {
    Daemon.Driver.seed;
    field = sc.Workload.Scenario.field;
    mobility = Workload.Mobility.default_params;
    move_rate;
    storm;
    churn;
    positions = Workload.Scenario.positions sc;
  }

(* ------------------------------------------------------------------ *)
(* Equeue                                                             *)

let ev ?(t = 0.) ?(node = 0) kind = { Daemon.Event.time = t; node; kind }

let move ?(t = 0.) node = ev ~t ~node (Daemon.Event.Move (Geom.Vec2.make 1. 2.))

let leave ?(t = 0.) node = ev ~t ~node Daemon.Event.Leave

let nodes_of q = List.map (fun e -> e.Daemon.Event.node) (Daemon.Equeue.to_list q)

let test_equeue_fifo () =
  let q = Daemon.Equeue.create ~capacity:10 in
  Daemon.Equeue.push q (move 0);
  Daemon.Equeue.push q (leave 1);
  Daemon.Equeue.push q (move 2);
  Alcotest.(check (list int)) "fifo order" [ 0; 1; 2 ] (nodes_of q);
  Alcotest.(check int) "length" 3 (Daemon.Equeue.length q);
  let popped = List.init 3 (fun _ -> Daemon.Equeue.pop q) in
  Alcotest.(check (list int))
    "pop order" [ 0; 1; 2 ]
    (List.map (function Some e -> e.Daemon.Event.node | None -> -1) popped);
  Alcotest.(check bool) "drained" true (Daemon.Equeue.pop q = None)

let test_equeue_sheds_oldest_move () =
  let q = Daemon.Equeue.create ~capacity:3 in
  Daemon.Equeue.push q (move 0);
  Daemon.Equeue.push q (leave 1);
  Daemon.Equeue.push q (move 2);
  Daemon.Equeue.push q (move 3);
  (* full: move 0 is the oldest move and must be the one shed *)
  Alcotest.(check (list int)) "oldest move shed" [ 1; 2; 3 ] (nodes_of q);
  Alcotest.(check int) "shed counted" 1 (Daemon.Equeue.stats q).Daemon.Equeue.shed;
  (* backlog now leave,move,move: shedding hits node 2 next *)
  Daemon.Equeue.push q (move 4);
  Alcotest.(check (list int)) "second shed" [ 1; 3; 4 ] (nodes_of q)

let test_equeue_never_drops_critical () =
  let q = Daemon.Equeue.create ~capacity:2 in
  Daemon.Equeue.push q (leave 0);
  Daemon.Equeue.push q (leave 1);
  Daemon.Equeue.push q (leave 2);
  (* no move to shed: criticals overflow past capacity *)
  Alcotest.(check (list int)) "all criticals kept" [ 0; 1; 2 ] (nodes_of q);
  Alcotest.(check int) "overflow counted" 1
    (Daemon.Equeue.stats q).Daemon.Equeue.overflow;
  (* an incoming move into a full all-critical backlog is itself dropped *)
  Daemon.Equeue.push q (move 3);
  Alcotest.(check (list int)) "incoming move dropped" [ 0; 1; 2 ] (nodes_of q);
  Alcotest.(check int) "drop counted as shed" 1
    (Daemon.Equeue.stats q).Daemon.Equeue.shed

let test_equeue_restore_bypasses_shedding () =
  let backlog = [ leave 0; move 1; leave 2; leave 3; leave 4 ] in
  let q = Daemon.Equeue.restore ~capacity:2 backlog in
  Alcotest.(check (list int))
    "backlog longer than capacity survives restore" [ 0; 1; 2; 3; 4 ]
    (nodes_of q);
  Alcotest.(check int) "no shed on restore" 0
    (Daemon.Equeue.stats q).Daemon.Equeue.shed

(* ------------------------------------------------------------------ *)
(* Event JSON round-trip                                              *)

let test_event_json_roundtrip () =
  let events =
    [
      ev ~t:1.5 ~node:3 (Daemon.Event.Move (Geom.Vec2.make 10.25 (-3.5)));
      ev ~t:2. ~node:0 Daemon.Event.Leave;
      (* integral floats serialize as JSON ints: of_json must accept both *)
      ev ~t:4. ~node:7 (Daemon.Event.Join (Geom.Vec2.make 100. 200.));
    ]
  in
  List.iter
    (fun e ->
      let e' = Daemon.Event.of_json (Daemon.Event.to_json e) in
      Alcotest.(check bool)
        (Fmt.str "round-trip %a" Daemon.Event.pp e)
        true (e = e'))
    events;
  Alcotest.check_raises "malformed event" (Failure
    "Daemon.Event.of_json: bad or missing field kind")
    (fun () ->
      ignore (Daemon.Event.of_json (Obs.Jsonl.Obj [ ("t", Obs.Jsonl.Int 1);
                                             ("node", Obs.Jsonl.Int 0) ])))

(* ------------------------------------------------------------------ *)
(* Source                                                             *)

let test_source_deterministic () =
  let sc = scenario 11 in
  let mk () =
    Daemon.Source.create ~seed:42 ~field:sc.Workload.Scenario.field
      ~params:Workload.Mobility.default_params ~move_rate:25.
      ~churn:Faults.Plan.empty
      (Workload.Scenario.positions sc)
  in
  let a = mk () and b = mk () in
  for i = 1 to 5 do
    let ea = Daemon.Source.tick a ~until:(float_of_int i) in
    let eb = Daemon.Source.tick b ~until:(float_of_int i) in
    Alcotest.(check bool) "identical event streams" true (ea = eb);
    Alcotest.(check bool) "time-ordered" true
      (List.sort (fun x y -> Float.compare x.Daemon.Event.time y.Daemon.Event.time) ea = ea)
  done

let test_source_churn_to_events () =
  let sc = scenario 12 in
  let prng = Prng.create ~seed:5 in
  let churn =
    Faults.Plan.random_crashes ~prng ~n:30 ~fraction:0.3 ~window:(0.5, 2.5)
      ~recover_after:1.5 ()
  in
  let src =
    Daemon.Source.create ~seed:42 ~field:sc.Workload.Scenario.field
      ~params:Workload.Mobility.default_params ~move_rate:0. ~churn
      (Workload.Scenario.positions sc)
  in
  let events = Daemon.Source.tick src ~until:10. in
  let leaves = List.filter (fun e -> e.Daemon.Event.kind = Daemon.Event.Leave) events in
  let joins = List.filter Daemon.Event.is_critical events in
  Alcotest.(check int) "9 crashes" 9 (List.length leaves);
  Alcotest.(check int) "each crash recovers" 18 (List.length joins);
  Alcotest.(check bool) "truth is all-alive again" true
    (Array.for_all (fun b -> b) (Daemon.Source.true_alive src))

(* ------------------------------------------------------------------ *)
(* Engine                                                             *)

let run_stream_through_engine ~watchdog_frac sc ~seed ~epochs =
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  let prng = Prng.create ~seed in
  let churn =
    Faults.Plan.random_crashes ~prng ~n:(Array.length positions) ~fraction:0.2
      ~window:(0., float_of_int epochs /. 2.)
      ~recover_after:(float_of_int epochs /. 4.)
      ()
  in
  let src =
    Daemon.Source.create ~seed ~field:sc.Workload.Scenario.field
      ~params:Workload.Mobility.default_params ~move_rate:30. ~churn positions
  in
  let eng = Daemon.Engine.create ~watchdog_frac config pl positions in
  for ep = 1 to epochs do
    let events = Daemon.Source.tick src ~until:(float_of_int ep) in
    List.iter (Daemon.Engine.apply eng) events;
    ignore (Daemon.Engine.commit eng);
    match Daemon.Engine.check_full_equivalence eng with
    | Ok () -> ()
    | Error m -> Alcotest.failf "epoch %d: incremental /= full: %s" ep m
  done;
  eng

let test_engine_equivalence_incremental () =
  let eng =
    run_stream_through_engine ~watchdog_frac:1.5 (scenario 13) ~seed:99
      ~epochs:8
  in
  (* watchdog_frac > 1: the full path never ran, this exercised the
     incremental path only *)
  Alcotest.(check int) "no watchdog trip" 0
    (Daemon.Engine.stats eng).Daemon.Engine.full_recomputes

let test_engine_equivalence_watchdog () =
  let eng =
    run_stream_through_engine ~watchdog_frac:0.1 (scenario 14) ~seed:77
      ~epochs:8
  in
  Alcotest.(check bool) "watchdog tripped" true
    ((Daemon.Engine.stats eng).Daemon.Engine.full_recomputes > 0)

let test_engine_verify_survivors () =
  let eng =
    run_stream_through_engine ~watchdog_frac:0.25 (scenario 15) ~seed:55
      ~epochs:6
  in
  let n = Daemon.Engine.nb_nodes eng in
  match
    Cbtc.Verify.check_surviving
      ~alive:(Array.init n (Daemon.Engine.alive eng))
      (Daemon.Engine.discovery eng)
  with
  | Ok () -> ()
  | Error m -> Alcotest.failf "tracked state violates guarantees: %s" m

let test_engine_grid_lifecycle () =
  (* sustained drift through the engine's spatial index: in-window moves
     must never touch the overflow side table (the old tombstone design
     had [drifted = overflow]), and a migration far outside the built
     window must stay bounded — compaction re-centers the window instead
     of letting overflow grow with every further move *)
  (* n must clear the grid's rebuild threshold (max 64 (n/8) pending
     out-of-window nodes) or the migration could never compact *)
  let sc = scenario ~n:200 18 in
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  let n = Array.length positions in
  let eng = Daemon.Engine.create ~watchdog_frac:1.5 config pl positions in
  let prng = Prng.create ~seed:4242 in
  let w = sc.Workload.Scenario.field.Workload.Placement.width in
  let h = sc.Workload.Scenario.field.Workload.Placement.height in
  let apply_move ~time u p =
    Daemon.Engine.apply eng
      { Daemon.Event.time; node = u; kind = Daemon.Event.Move p }
  in
  (* phase 1: heavy in-field drift — every node crosses cells many
     times, none may land in overflow *)
  for ep = 1 to 10 do
    for _ = 1 to n do
      let u = Prng.int prng n in
      apply_move ~time:(float_of_int ep) u
        (Geom.Vec2.make (Prng.float prng w) (Prng.float prng h))
    done;
    ignore (Daemon.Engine.commit eng)
  done;
  let health = Daemon.Engine.grid_health eng in
  Alcotest.(check bool) "in-field drift moved cells" true
    (health.Geom.Grid.drifted > 0 || health.Geom.Grid.compactions > 0);
  Alcotest.(check int) "in-field drift never overflows" 0
    health.Geom.Grid.overflow;
  (* phase 2: the whole population migrates far outside the original
     window, a few nodes per epoch — overflow must trigger compactions
     that re-center the window rather than accumulate *)
  for ep = 11 to 10 + ((2 * n / 16) + 1) do
    for _ = 1 to 16 do
      let u = Prng.int prng n in
      apply_move ~time:(float_of_int ep) u
        (Geom.Vec2.make
           ((10. *. w) +. Prng.float prng w)
           ((10. *. h) +. Prng.float prng h))
    done;
    ignore (Daemon.Engine.commit eng)
  done;
  let health = Daemon.Engine.grid_health eng in
  Alcotest.(check bool) "out-of-window migration compacts" true
    (health.Geom.Grid.compactions > 0);
  Alcotest.(check bool) "overflow stays bounded after compaction" true
    (health.Geom.Grid.overflow < n / 2);
  (* the index must have stayed exact throughout *)
  match Daemon.Engine.check_full_equivalence eng with
  | Ok () -> ()
  | Error m -> Alcotest.failf "incremental /= full after migration: %s" m

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)

let params epochs =
  {
    Daemon.Driver.default_params with
    duration = float_of_int epochs;
    event_dt = 1.;
    equivalence_every = 2;
    verify_every = 2;
  }

let pl_of sc = Workload.Scenario.pathloss sc

let test_driver_clean_run_not_degraded () =
  let sc = scenario 16 in
  let stream = mk_stream ~seed:3 sc in
  let r =
    Daemon.Driver.run ~params:(params 8) ~config ~pathloss:(pl_of sc) stream
  in
  Alcotest.(check (list string)) "no guarantee violations" [] r.verify_failures;
  Alcotest.(check (list string))
    "no equivalence failures" [] r.equivalence_failures;
  (* unlimited budget, no shedding: tracked state tracks the truth *)
  Alcotest.(check int) "no degraded checks" 0 r.degraded_checks;
  Alcotest.(check bool) "not finally degraded" false
    (Daemon.Driver.degraded r.final_degradation);
  Alcotest.(check int) "nothing shed" 0 r.queue.Daemon.Equeue.shed

let test_driver_overload_degrades_then_heals () =
  let sc = scenario 17 in
  (* steady state (20 ev/epoch) fits the budget; the storm (x30) does
     not, so the queue saturates and sheds, then drains afterwards *)
  let stream = mk_stream ~seed:9 ~move_rate:20. ~storm:(2., 4., 30.) sc in
  let p =
    { (params 20) with queue_cap = 64; budget = 80; verify_every = 1 }
  in
  let r = Daemon.Driver.run ~params:p ~config ~pathloss:(pl_of sc) stream in
  Alcotest.(check bool) "storm forced shedding" true
    (r.queue.Daemon.Equeue.shed > 0);
  Alcotest.(check bool) "degradation was reported" true (r.degraded_checks > 0);
  Alcotest.(check (list string)) "guarantees never violated" []
    r.verify_failures;
  (* absolute-position moves: once the storm passes and the backlog
     drains, the tracked state heals *)
  Alcotest.(check bool) "healed after the storm" false
    (Daemon.Driver.degraded r.final_degradation)

let test_driver_checkpoint_restore_same_digest () =
  let sc = scenario 18 in
  let prng = Prng.create ~seed:4 in
  let churn =
    Faults.Plan.random_crashes ~prng ~n:30 ~fraction:0.2 ~window:(1., 5.)
      ~recover_after:2. ()
  in
  let stream = mk_stream ~seed:21 ~churn sc in
  let path = Filename.temp_file "daemon" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let p =
        {
          (params 10) with
          checkpoint_every = 4;
          checkpoint_path = Some path;
        }
      in
      let uninterrupted =
        Daemon.Driver.run ~params:p ~config ~pathloss:(pl_of sc) stream
      in
      Alcotest.(check int) "checkpoints written" 2
        uninterrupted.checkpoints_written;
      (* "kill" after the last checkpoint: resume from disk and replay *)
      let restore = Daemon.Checkpoint.load path in
      Alcotest.(check int) "cut at epoch 8" 8 restore.Daemon.Checkpoint.epoch;
      let resumed =
        Daemon.Driver.run ~restore ~params:p ~config ~pathloss:(pl_of sc)
          stream
      in
      Alcotest.(check string) "same topology digest"
        uninterrupted.topology_digest resumed.topology_digest;
      Alcotest.(check (list string)) "resumed run stays equivalent" []
        resumed.equivalence_failures)

let test_checkpoint_load_failures () =
  Alcotest.(check bool) "missing file raises" true
    (match Daemon.Checkpoint.load "/nonexistent/daemon.ckpt" with
    | exception Failure _ -> true
    | _ -> false);
  let path = Filename.temp_file "daemon" ".junk" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{not json";
      close_out oc;
      Alcotest.(check bool) "malformed raises" true
        (match Daemon.Checkpoint.load path with
        | exception Failure _ -> true
        | _ -> false))

(* ------------------------------------------------------------------ *)
(* qcheck: random streams keep incremental == full                    *)

let equivalence_prop =
  QCheck.Test.make ~count:30 ~name:"incremental equals full on random streams"
    QCheck.(pair small_int (int_range 2 8))
    (fun (seed, epochs) ->
      let sc = scenario ~n:20 (1000 + seed) in
      let eng =
        run_stream_through_engine ~watchdog_frac:0.3 sc ~seed ~epochs
      in
      Daemon.Engine.check_full_equivalence eng = Ok ())

let () =
  Alcotest.run "daemon"
    [
      ( "equeue",
        [
          Alcotest.test_case "fifo" `Quick test_equeue_fifo;
          Alcotest.test_case "sheds oldest move" `Quick
            test_equeue_sheds_oldest_move;
          Alcotest.test_case "never drops criticals" `Quick
            test_equeue_never_drops_critical;
          Alcotest.test_case "restore bypasses shedding" `Quick
            test_equeue_restore_bypasses_shedding;
        ] );
      ( "events",
        [ Alcotest.test_case "json round-trip" `Quick test_event_json_roundtrip ] );
      ( "source",
        [
          Alcotest.test_case "deterministic" `Quick test_source_deterministic;
          Alcotest.test_case "churn to events" `Quick test_source_churn_to_events;
        ] );
      ( "engine",
        [
          Alcotest.test_case "equivalence (incremental)" `Quick
            test_engine_equivalence_incremental;
          Alcotest.test_case "equivalence (watchdog)" `Quick
            test_engine_equivalence_watchdog;
          Alcotest.test_case "survivor guarantees" `Quick
            test_engine_verify_survivors;
          Alcotest.test_case "grid lifecycle under drift" `Quick
            test_engine_grid_lifecycle;
          QCheck_alcotest.to_alcotest equivalence_prop;
        ] );
      ( "driver",
        [
          Alcotest.test_case "clean run not degraded" `Quick
            test_driver_clean_run_not_degraded;
          Alcotest.test_case "overload degrades then heals" `Quick
            test_driver_overload_degrades_then_heals;
          Alcotest.test_case "checkpoint restore digest" `Quick
            test_driver_checkpoint_restore_same_digest;
          Alcotest.test_case "checkpoint load failures" `Quick
            test_checkpoint_load_failures;
        ] );
    ]
