(* Tests for the evaluation metrics: connectivity preservation, degree
   and radius aggregation, stretch factors, and the table printer. *)

module U = Graphkit.Ugraph

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ---------- connectivity ---------- *)

let test_preserves () =
  let reference = U.of_edges 5 [ (0, 1); (1, 2); (3, 4) ] in
  let same = U.of_edges 5 [ (0, 2); (2, 1); (4, 3) ] in
  let broken = U.of_edges 5 [ (0, 1); (3, 4) ] in
  Alcotest.(check bool) "same partition" true
    (Metrics.Connectivity.preserves ~reference same);
  Alcotest.(check bool) "broken" false
    (Metrics.Connectivity.preserves ~reference broken)

let test_broken_pairs () =
  let reference = U.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let g = U.of_edges 4 [ (0, 1); (2, 3) ] in
  (* pairs split: (0,2),(0,3),(1,2),(1,3) *)
  Alcotest.(check int) "count" 4 (Metrics.Connectivity.broken_pairs ~reference g);
  Alcotest.(check int) "zero when same" 0
    (Metrics.Connectivity.broken_pairs ~reference reference)

let test_isolated_and_giant () =
  let g = U.of_edges 6 [ (0, 1); (1, 2) ] in
  Alcotest.(check int) "isolated" 3 (Metrics.Connectivity.isolated g);
  Alcotest.(check int) "giant" 3 (Metrics.Connectivity.giant_component_size g);
  Alcotest.(check int) "components" 4 (Metrics.Connectivity.nb_components g)

(* ---------- topo metrics ---------- *)

let test_avg_degree_radius () =
  let g = U.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  check_float "avg degree" 1.5 (Metrics.Topo_metrics.avg_degree g);
  check_float "avg radius" 2.5 (Metrics.Topo_metrics.avg_radius [| 1.; 2.; 3.; 4. |]);
  let pl = Radio.Pathloss.make ~max_range:100. () in
  (* p(1)=1, p(2)=4, isolated node contributes 0 *)
  check_float "avg power" (5. /. 3.)
    (Metrics.Topo_metrics.avg_power pl [| 1.; 2.; 0. |]);
  let positions = [| Geom.Vec2.zero; Geom.Vec2.make 3. 4. |] in
  let g2 = U.of_edges 2 [ (0, 1) ] in
  check_float "total edge length" 5.
    (Metrics.Topo_metrics.total_edge_length positions g2);
  let s = Metrics.Topo_metrics.degree_summary g in
  check_float "degree summary mean" 1.5 s.Stats.Summary.mean

(* ---------- stretch ---------- *)

(* Three collinear points; reference keeps the direct long edge, the
   controlled graph forces the two-hop route. *)
let line_positions =
  [| Geom.Vec2.zero; Geom.Vec2.make 1. 0.; Geom.Vec2.make 2. 0. |]

let reference = U.of_edges 3 [ (0, 1); (1, 2); (0, 2) ]

let controlled = U.of_edges 3 [ (0, 1); (1, 2) ]

let test_power_stretch () =
  let pl = Radio.Pathloss.make ~max_range:10. () in
  let energy = Radio.Energy.make pl in
  let s =
    Metrics.Stretch.power_stretch energy line_positions ~reference controlled
  in
  (* With p(d) = d^2, the relayed route 1+1 = 2 is what the reference
     would use too (cheaper than direct 4): stretch exactly 1. *)
  check_float "max power stretch" 1. s.Metrics.Stretch.max_stretch;
  check_float "avg power stretch" 1. s.Metrics.Stretch.avg_stretch;
  Alcotest.(check int) "pairs" 3 s.Metrics.Stretch.pairs

let test_power_stretch_with_overhead () =
  (* Large per-hop overhead makes the direct edge optimal in the
     reference; dropping it then costs overhead extra. *)
  let pl = Radio.Pathloss.make ~max_range:10. () in
  let energy = Radio.Energy.make ~rx_overhead:100. pl in
  let s =
    Metrics.Stretch.power_stretch energy line_positions ~reference controlled
  in
  (* pair (0,2): reference direct = 4 + 100 = 104; controlled relayed =
     (1+100)+(1+100) = 202 *)
  check_float ~eps:1e-9 "max stretch" (202. /. 104.) s.Metrics.Stretch.max_stretch

let test_hop_and_distance_stretch () =
  let s = Metrics.Stretch.hop_stretch ~reference controlled in
  check_float "hop stretch max" 2. s.Metrics.Stretch.max_stretch;
  check_float "hop stretch avg" (4. /. 3.) s.Metrics.Stretch.avg_stretch;
  let d = Metrics.Stretch.distance_stretch line_positions ~reference controlled in
  (* Euclidean: the relayed route has the same total length *)
  check_float "distance stretch" 1. d.Metrics.Stretch.max_stretch

let test_stretch_infinite_when_disconnected () =
  let disconnected = U.of_edges 3 [ (0, 1) ] in
  let s = Metrics.Stretch.hop_stretch ~reference disconnected in
  Alcotest.(check bool) "infinite" true (s.Metrics.Stretch.max_stretch = Float.infinity)

let test_stretch_mismatch_rejected () =
  let small = U.create 2 in
  Alcotest.check_raises "node counts" (Invalid_argument "Stretch: node count mismatch")
    (fun () -> ignore (Metrics.Stretch.hop_stretch ~reference small))

(* ---------- interference ---------- *)

let test_interference_coverage () =
  let positions =
    [| Geom.Vec2.zero; Geom.Vec2.make 10. 0.; Geom.Vec2.make 20. 0. |]
  in
  (* radii: node 0 covers node 1 only; node 1 covers both ends; node 2
     covers nobody (radius 0: isolated) *)
  let t = Metrics.Interference.coverage positions ~radius:[| 10.; 10.; 0. |] in
  Alcotest.(check int) "total" 3 t.Metrics.Interference.total_coverage;
  Alcotest.(check int) "max" 2 t.Metrics.Interference.max_coverage;
  check_float "avg" 1. t.Metrics.Interference.avg_coverage

let test_interference_topology_control_helps () =
  let sc = Workload.Scenario.paper ~seed:9 in
  let pl = Radio.Pathloss.make ~max_range:500. () in
  let positions = Workload.Scenario.positions sc in
  let n = Array.length positions in
  let full =
    Metrics.Interference.coverage positions ~radius:(Array.make n 500.)
  in
  let config = Cbtc.Config.make Geom.Angle.five_pi_six in
  let r = Cbtc.Pipeline.run_oracle pl positions (Cbtc.Pipeline.all_ops config) in
  let controlled =
    Metrics.Interference.coverage positions ~radius:r.Cbtc.Pipeline.radius
  in
  Alcotest.(check bool) "coverage shrinks" true
    (controlled.Metrics.Interference.avg_coverage
    < full.Metrics.Interference.avg_coverage /. 2.)

let test_interference_validation () =
  Alcotest.check_raises "length"
    (Invalid_argument "Interference.coverage: length mismatch") (fun () ->
      ignore (Metrics.Interference.coverage [| Geom.Vec2.zero |] ~radius:[||]))

(* ---------- table ---------- *)

let contains_substring haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

let test_table_render () =
  let t = Metrics.Table.create ~columns:[ "name"; "deg"; "radius" ] in
  Metrics.Table.add_row t [ "basic"; "12.3"; "436.8" ];
  Metrics.Table.add_rule t;
  Metrics.Table.add_row t [ "all ops"; "3.6"; "155.9" ];
  let s = Metrics.Table.to_string t in
  Alcotest.(check bool) "header" true
    (String.length s > 0 && String.sub s 0 4 = "name");
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "line count (incl trailing)" 6 (List.length lines);
  Alcotest.(check bool) "row present" true
    (List.exists (fun l -> contains_substring l "155.9") lines);
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Metrics.Table.add_row t [ "too"; "few" ])

let test_degenerate_inputs () =
  (* Aggregations over empty networks must return 0, not NaN from a
     0/0 average. *)
  let empty = U.create 0 in
  check_float "avg degree of empty graph" 0. (Metrics.Topo_metrics.avg_degree empty);
  check_float "avg radius of nothing" 0. (Metrics.Topo_metrics.avg_radius [||]);
  let pl = Radio.Pathloss.make ~max_range:100. () in
  check_float "avg power of nothing" 0.
    (Metrics.Topo_metrics.avg_power pl [||]);
  Alcotest.(check int) "no components" 0 (Metrics.Connectivity.nb_components empty);
  Alcotest.(check int) "empty giant component" 0
    (Metrics.Connectivity.giant_component_size empty);
  let one = U.create 1 in
  let s = Metrics.Stretch.hop_stretch ~reference:one one in
  Alcotest.(check int) "single node has no pairs" 0 s.Metrics.Stretch.pairs;
  Alcotest.(check bool) "stretch stays finite" true
    (Float.is_finite s.Metrics.Stretch.avg_stretch)

let () =
  Alcotest.run "metrics"
    [
      ( "connectivity",
        [
          Alcotest.test_case "preserves" `Quick test_preserves;
          Alcotest.test_case "broken pairs" `Quick test_broken_pairs;
          Alcotest.test_case "isolated and giant" `Quick test_isolated_and_giant;
        ] );
      ( "topo",
        [
          Alcotest.test_case "degree radius power" `Quick test_avg_degree_radius;
          Alcotest.test_case "degenerate inputs" `Quick test_degenerate_inputs;
        ] );
      ( "stretch",
        [
          Alcotest.test_case "power stretch" `Quick test_power_stretch;
          Alcotest.test_case "power stretch with overhead" `Quick
            test_power_stretch_with_overhead;
          Alcotest.test_case "hop and distance" `Quick test_hop_and_distance_stretch;
          Alcotest.test_case "infinite when disconnected" `Quick
            test_stretch_infinite_when_disconnected;
          Alcotest.test_case "mismatch rejected" `Quick test_stretch_mismatch_rejected;
        ] );
      ( "interference",
        [
          Alcotest.test_case "coverage" `Quick test_interference_coverage;
          Alcotest.test_case "topology control helps" `Quick
            test_interference_topology_control_helps;
          Alcotest.test_case "validation" `Quick test_interference_validation;
        ] );
      ("table", [ Alcotest.test_case "render" `Quick test_table_render ]);
    ]
