(* Tests for the network-lifetime substrate: the battery model and the
   many-to-one data-gathering simulation. *)

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ---------- battery ---------- *)

let test_battery_basics () =
  let b = Lifetime.Battery.create ~n:3 ~capacity:10. in
  Alcotest.(check int) "all alive" 3 (Lifetime.Battery.nb_alive b);
  check_float "level" 10. (Lifetime.Battery.level b 0);
  Alcotest.(check bool) "drain survives" true (Lifetime.Battery.drain b 0 4.);
  check_float "level after" 6. (Lifetime.Battery.level b 0);
  Alcotest.(check bool) "drain to death" false (Lifetime.Battery.drain b 0 6.);
  Alcotest.(check bool) "dead" false (Lifetime.Battery.is_alive b 0);
  Alcotest.(check bool) "drain dead is no-op" false (Lifetime.Battery.drain b 0 1.);
  Alcotest.(check int) "two alive" 2 (Lifetime.Battery.nb_alive b);
  Alcotest.(check (array bool)) "mask" [| false; true; true |]
    (Lifetime.Battery.alive_mask b);
  check_float "total" 20. (Lifetime.Battery.total_remaining b)

let test_battery_overdrain_clamps () =
  let b = Lifetime.Battery.create ~n:1 ~capacity:5. in
  ignore (Lifetime.Battery.drain b 0 100.);
  check_float "clamped at zero" 0. (Lifetime.Battery.level b 0)

let test_battery_heterogeneous () =
  let b = Lifetime.Battery.of_levels [| 1.; 0.; 3. |] in
  Alcotest.(check int) "initially dead node counted" 2
    (Lifetime.Battery.nb_alive b);
  Alcotest.(check bool) "zero level is dead" false (Lifetime.Battery.is_alive b 1)

let test_battery_validation () =
  Alcotest.check_raises "capacity"
    (Invalid_argument "Battery.create: non-positive capacity") (fun () ->
      ignore (Lifetime.Battery.create ~n:1 ~capacity:0.));
  let b = Lifetime.Battery.create ~n:1 ~capacity:1. in
  Alcotest.check_raises "negative drain"
    (Invalid_argument "Battery.drain: negative amount") (fun () ->
      ignore (Lifetime.Battery.drain b 0 (-1.)))

(* ---------- gather ---------- *)


let params max_rounds =
  { Lifetime.Gather.default_params with max_rounds }

let small_scenario () =
  let sc = Workload.Scenario.make ~n:30 ~seed:51 () in
  (Workload.Scenario.pathloss sc, Workload.Scenario.positions sc)

let test_gather_terminates_and_counts () =
  let pl, positions = small_scenario () in
  let o =
    Lifetime.Gather.run ~params:(params 50) pl positions ~sink:0
      ~topology:(Lifetime.Gather.max_power_builder pl)
  in
  Alcotest.(check bool) "ran some rounds" true (o.Lifetime.Gather.rounds_completed > 0);
  Alcotest.(check bool) "bounded" true (o.Lifetime.Gather.rounds_completed <= 50);
  Alcotest.(check bool) "delivered packets" true (o.Lifetime.Gather.packets_delivered > 0)

let test_gather_no_deaths_with_huge_battery () =
  let pl, positions = small_scenario () in
  let p = { (params 10) with Lifetime.Gather.capacity = 1e15 } in
  let o =
    Lifetime.Gather.run ~params:p pl positions ~sink:0
      ~topology:(Lifetime.Gather.max_power_builder pl)
  in
  Alcotest.(check (list (pair int int))) "no deaths" [] o.Lifetime.Gather.deaths;
  Alcotest.(check bool) "no first death" true (o.Lifetime.Gather.first_death = None);
  Alcotest.(check int) "all rounds run" 10 o.Lifetime.Gather.rounds_completed;
  (* 29 senders x 10 rounds, all delivered *)
  Alcotest.(check int) "every packet delivered" 290
    o.Lifetime.Gather.packets_delivered;
  Alcotest.(check int) "none dropped" 0 o.Lifetime.Gather.packets_dropped

let test_gather_milestones_ordered () =
  let pl, positions = small_scenario () in
  let o =
    Lifetime.Gather.run ~params:(params 2000) pl positions ~sink:0
      ~topology:(Lifetime.Gather.max_power_builder pl)
  in
  (match (o.Lifetime.Gather.first_death, o.Lifetime.Gather.half_dead) with
  | Some f, Some h ->
      if f > h then Alcotest.failf "first death %d after half dead %d" f h
  | Some _, None -> ()
  | None, Some _ -> Alcotest.fail "half dead without first death"
  | None, None -> ());
  (* deaths are chronological *)
  let rounds = List.map fst o.Lifetime.Gather.deaths in
  Alcotest.(check (list int)) "chronological" (List.sort Int.compare rounds) rounds

let test_cbtc_outlives_max_power () =
  (* The headline lifetime claim: under the paper's one-power-per-node
     model with overhearing, CBTC extends time-to-first-death and the
     sink-partition horizon. *)
  let sc = Workload.Scenario.make ~n:60 ~seed:5 () in
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  let config = Cbtc.Config.make Geom.Angle.five_pi_six in
  let run topology =
    Lifetime.Gather.run ~params:(params 3000) pl positions ~sink:0 ~topology
  in
  let base = run (Lifetime.Gather.max_power_builder pl) in
  let cbtc = run (Lifetime.Gather.cbtc_builder (Cbtc.Pipeline.all_ops config) pl) in
  let fd o =
    Option.value ~default:Stdlib.max_int o.Lifetime.Gather.first_death
  in
  Alcotest.(check bool) "first death later under CBTC" true (fd cbtc > fd base);
  Alcotest.(check bool) "more packets delivered under CBTC" true
    (cbtc.Lifetime.Gather.packets_delivered > base.Lifetime.Gather.packets_delivered)

let test_builders_isolate_dead_nodes () =
  let pl, positions = small_scenario () in
  let alive = Array.make (Array.length positions) true in
  alive.(3) <- false;
  alive.(7) <- false;
  List.iter
    (fun (name, builder) ->
      let c = builder ~alive positions in
      Alcotest.(check int) (name ^ ": dead node degree") 0
        (Graphkit.Ugraph.degree c.Lifetime.Gather.graph 3);
      check_float (name ^ ": dead node radius") 0. c.Lifetime.Gather.radius.(7);
      Alcotest.(check bool) (name ^ ": live nodes connected somehow") true
        (Graphkit.Ugraph.nb_edges c.Lifetime.Gather.graph > 0))
    [
      ("max-power", Lifetime.Gather.max_power_builder pl);
      ( "cbtc",
        Lifetime.Gather.cbtc_builder
          (Cbtc.Pipeline.all_ops (Cbtc.Config.make Geom.Angle.five_pi_six))
          pl );
    ]

let test_gather_validation () =
  let pl, positions = small_scenario () in
  Alcotest.check_raises "sink range" (Invalid_argument "Gather.run: sink out of range")
    (fun () ->
      ignore
        (Lifetime.Gather.run pl positions ~sink:999
           ~topology:(Lifetime.Gather.max_power_builder pl)))

let () =
  Alcotest.run "lifetime"
    [
      ( "battery",
        [
          Alcotest.test_case "basics" `Quick test_battery_basics;
          Alcotest.test_case "overdrain clamps" `Quick test_battery_overdrain_clamps;
          Alcotest.test_case "heterogeneous" `Quick test_battery_heterogeneous;
          Alcotest.test_case "validation" `Quick test_battery_validation;
        ] );
      ( "gather",
        [
          Alcotest.test_case "terminates and counts" `Quick
            test_gather_terminates_and_counts;
          Alcotest.test_case "huge battery, no deaths" `Quick
            test_gather_no_deaths_with_huge_battery;
          Alcotest.test_case "milestones ordered" `Quick test_gather_milestones_ordered;
          Alcotest.test_case "CBTC outlives max power" `Quick
            test_cbtc_outlives_max_power;
          Alcotest.test_case "builders isolate dead nodes" `Quick
            test_builders_isolate_dead_nodes;
          Alcotest.test_case "validation" `Quick test_gather_validation;
        ] );
    ]
