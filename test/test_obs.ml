(* Tests for the observability layer: the JSON serializer/parser, the
   log2 histogram, the recorder (counters, spans, manifest, trace), and
   the determinism contract — merged clockless recorders and discovery
   counters must be identical for every pool size. *)

let json = Alcotest.testable (Fmt.of_to_string Obs.Jsonl.to_string) ( = )

(* ---------- Jsonl ---------- *)

let test_jsonl_roundtrip () =
  let v =
    Obs.Jsonl.(
      Obj
        [
          ("a", Int 3);
          ("b", Str "say \"hi\"\n\t\\");
          ("c", List [ Null; Bool true; Bool false; Float 0.1 ]);
          ("d", Obj [ ("nested", Float (-2.5)) ]);
          ("e", List []);
        ])
  in
  Alcotest.check json "parse inverts print" v
    (Obs.Jsonl.of_string (Obs.Jsonl.to_string v))

let test_jsonl_floats () =
  (* shortest round-tripping decimal, and non-finite collapses to null *)
  Alcotest.(check string) "0.1 stays short" "0.1"
    (Obs.Jsonl.to_string (Obs.Jsonl.Float 0.1));
  Alcotest.(check string) "integral float drops the point" "2"
    (Obs.Jsonl.to_string (Obs.Jsonl.Float 2.));
  Alcotest.(check string) "nan is null" "null"
    (Obs.Jsonl.to_string (Obs.Jsonl.Float Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (Obs.Jsonl.to_string (Obs.Jsonl.Float Float.infinity))

let test_jsonl_parse_errors () =
  let rejects s =
    match Obs.Jsonl.of_string s with
    | exception Obs.Jsonl.Parse_error _ -> ()
    | v ->
        Alcotest.failf "%S should not parse, got %s" s (Obs.Jsonl.to_string v)
  in
  List.iter rejects
    [ ""; "{"; "[1,]"; "{\"a\":}"; "1 2"; "{\"a\":1}x"; "\"unterminated";
      "1e999"; "nul" ]

let test_jsonl_member () =
  let v = Obs.Jsonl.Obj [ ("a", Obs.Jsonl.Int 1); ("b", Obs.Jsonl.Null) ] in
  Alcotest.(check bool) "present" true
    (Obs.Jsonl.member "b" v = Some Obs.Jsonl.Null);
  Alcotest.(check bool) "absent" true (Obs.Jsonl.member "z" v = None);
  Alcotest.(check bool) "non-object" true
    (Obs.Jsonl.member "a" (Obs.Jsonl.Int 3) = None)

(* ---------- Hist ---------- *)

let test_hist_basic () =
  let h = Obs.Hist.create () in
  List.iter (Obs.Hist.observe h) [ 1.0; 2.0; 0.5; 4.0 ];
  Alcotest.(check int) "count" 4 (Obs.Hist.count h);
  Alcotest.(check (float 1e-12)) "sum" 7.5 (Obs.Hist.sum h);
  match Obs.Jsonl.member "min" (Obs.Hist.to_json h) with
  | Some (Obs.Jsonl.Float m) -> Alcotest.(check (float 0.)) "min" 0.5 m
  | _ -> Alcotest.fail "min missing from to_json"

let test_hist_merge () =
  let a = Obs.Hist.create () and b = Obs.Hist.create () in
  List.iter (Obs.Hist.observe a) [ 1.0; 8.0 ];
  List.iter (Obs.Hist.observe b) [ 0.25; 100. ];
  Obs.Hist.merge_into ~into:a b;
  Alcotest.(check int) "merged count" 4 (Obs.Hist.count a);
  Alcotest.(check (float 1e-9)) "merged sum" 109.25 (Obs.Hist.sum a)

(* ---------- Recorder basics ---------- *)

let test_nil_is_inert () =
  let t = Obs.Recorder.nil in
  Alcotest.(check bool) "disabled" false (Obs.Recorder.enabled t);
  Obs.Recorder.incr t "x";
  Obs.Recorder.observe t "h" 1.;
  Obs.Recorder.set_int t "k" 1;
  Obs.Recorder.event t "p";
  Alcotest.(check int) "counter stays 0" 0 (Obs.Recorder.counter t "x");
  Alcotest.(check (list string)) "no trace" [] (Obs.Recorder.trace_lines t);
  Alcotest.(check int) "span still runs body" 41
    (Obs.Recorder.span t "s" (fun () -> 41))

let test_counters_and_manifest () =
  let t = Obs.Recorder.create () in
  Obs.Recorder.incr t "b";
  Obs.Recorder.incr ~by:4 t "a";
  Obs.Recorder.incr t "b";
  Obs.Recorder.set_int t "n" 10;
  Obs.Recorder.set_str t "mode" "exact";
  Obs.Recorder.set_int t "n" 20;
  (* overwrite keeps position *)
  Alcotest.(check (list (pair string int))) "counters sorted"
    [ ("a", 4); ("b", 2) ]
    (Obs.Recorder.counters t);
  Alcotest.(check int) "missing counter is 0" 0 (Obs.Recorder.counter t "zz");
  match Obs.Recorder.trace_lines t with
  | manifest :: _ ->
      let m = Obs.Jsonl.of_string manifest in
      Alcotest.(check bool) "manifest tagged" true
        (Obs.Jsonl.member "ev" m = Some (Obs.Jsonl.Str "manifest"));
      Alcotest.(check bool) "schema present" true
        (Obs.Jsonl.member "schema" m <> None);
      Alcotest.(check bool) "overwritten key" true
        (Obs.Jsonl.member "n" m = Some (Obs.Jsonl.Int 20))
  | [] -> Alcotest.fail "trace must start with a manifest line"

(* Parse a trace and enforce the schema the docs promise: line 1 is the
   manifest, [seq] increases from 1, spans balance, and the depth of
   every event equals the number of currently-open spans. *)
let validate_trace lines =
  match lines with
  | [] -> Alcotest.fail "empty trace"
  | manifest :: events ->
      let m = Obs.Jsonl.of_string manifest in
      if Obs.Jsonl.member "ev" m <> Some (Obs.Jsonl.Str "manifest") then
        Alcotest.fail "first line is not the manifest";
      let open_spans = ref [] in
      List.iteri
        (fun i line ->
          let e = Obs.Jsonl.of_string line in
          let str k =
            match Obs.Jsonl.member k e with
            | Some (Obs.Jsonl.Str s) -> s
            | _ -> Alcotest.failf "line %d: missing %s" (i + 2) k
          in
          let int k =
            match Obs.Jsonl.member k e with
            | Some (Obs.Jsonl.Int n) -> n
            | _ -> Alcotest.failf "line %d: missing %s" (i + 2) k
          in
          if int "seq" <> i + 1 then
            Alcotest.failf "line %d: seq %d, expected %d" (i + 2) (int "seq")
              (i + 1);
          let depth = int "depth" in
          (match str "ev" with
          | "span_begin" ->
              if depth <> List.length !open_spans then
                Alcotest.failf "line %d: begin depth %d with %d open" (i + 2)
                  depth
                  (List.length !open_spans);
              open_spans := str "name" :: !open_spans
          | "span_end" -> (
              match !open_spans with
              | top :: rest
                when top = str "name" && depth = List.length rest ->
                  open_spans := rest
              | _ -> Alcotest.failf "line %d: unbalanced span_end" (i + 2))
          | "point" ->
              if depth <> List.length !open_spans then
                Alcotest.failf "line %d: point at wrong depth" (i + 2)
          | ev -> Alcotest.failf "line %d: unknown ev %S" (i + 2) ev))
        events;
      if !open_spans <> [] then Alcotest.fail "trace ends with open spans"

let test_spans_nest_and_validate () =
  let t = Obs.Recorder.create () in
  Obs.Recorder.span t "outer" (fun () ->
      Obs.Recorder.event t "tick";
      Obs.Recorder.span t "inner" (fun () -> Obs.Recorder.incr t "work");
      Obs.Recorder.event ~fields:[ ("k", Obs.Jsonl.Int 1) ] t "tock");
  validate_trace (Obs.Recorder.trace_lines t);
  Alcotest.(check int) "7 lines: manifest + 6 events" 7
    (List.length (Obs.Recorder.trace_lines t))

let test_span_survives_exception () =
  let t = Obs.Recorder.create () in
  (try Obs.Recorder.span t "boom" (fun () -> failwith "boom")
   with Failure _ -> ());
  validate_trace (Obs.Recorder.trace_lines t)

let test_clockless_has_no_timing () =
  let t = Obs.Recorder.create () in
  Obs.Recorder.span t "s" (fun () -> ());
  Alcotest.(check bool) "no clock" true (Obs.Recorder.now t = None);
  List.iter
    (fun line ->
      let e = Obs.Jsonl.of_string line in
      Alcotest.(check bool) "no t field" true (Obs.Jsonl.member "t" e = None);
      Alcotest.(check bool) "no dur_s field" true
        (Obs.Jsonl.member "dur_s" e = None))
    (Obs.Recorder.trace_lines t)

let test_clocked_has_timing () =
  let fake = ref 0. in
  let clock () =
    let v = !fake in
    fake := v +. 1.;
    v
  in
  let t = Obs.Recorder.create ~clock () in
  Obs.Recorder.span t "s" (fun () -> ());
  match Obs.Recorder.trace_lines t with
  | [ _; b; e ] ->
      Alcotest.(check bool) "begin has t" true
        (Obs.Jsonl.member "t" (Obs.Jsonl.of_string b) <> None);
      (* an integral duration serializes as a JSON integer *)
      (match Obs.Jsonl.member "dur_s" (Obs.Jsonl.of_string e) with
      | Some (Obs.Jsonl.Float d) ->
          Alcotest.(check (float 1e-12)) "duration from clock" 1. d
      | Some (Obs.Jsonl.Int d) ->
          Alcotest.(check int) "duration from clock" 1 d
      | _ -> Alcotest.fail "span_end missing dur_s")
  | l -> Alcotest.failf "expected 3 lines, got %d" (List.length l)

(* ---------- merge determinism ---------- *)

let trial_recorder seed =
  let t = Obs.Recorder.create () in
  Obs.Recorder.span t "trial" (fun () ->
      Obs.Recorder.incr ~by:seed t "work";
      Obs.Recorder.observe t "lat" (Stdlib.float_of_int seed));
  t

let test_merge_is_order_fixed () =
  (* Merging the same trial recorders in the same (seed) order must give
     byte-identical traces and summaries no matter which domain produced
     them; merging in a different order changes the trace but not the
     counters. *)
  let merged () =
    let dst = Obs.Recorder.create () in
    List.iter
      (fun s -> Obs.Recorder.merge_into ~into:dst (trial_recorder s))
      [ 1; 2; 3 ];
    dst
  in
  let a = merged () and b = merged () in
  Alcotest.(check (list string)) "traces identical"
    (Obs.Recorder.trace_lines a) (Obs.Recorder.trace_lines b);
  Alcotest.(check string) "summaries identical" (Obs.Recorder.summary_string a)
    (Obs.Recorder.summary_string b);
  validate_trace (Obs.Recorder.trace_lines a);
  Alcotest.(check int) "counters accumulate" 6 (Obs.Recorder.counter a "work")

let test_merge_rebases_depth () =
  (* A trial trace merged while the destination sits inside a span must
     nest under it, or the merged trace fails depth validation. *)
  let dst = Obs.Recorder.create () in
  Obs.Recorder.span dst "sweep" (fun () ->
      Obs.Recorder.merge_into ~into:dst (trial_recorder 7));
  validate_trace (Obs.Recorder.trace_lines dst)

let test_merge_into_nil_is_noop () =
  Obs.Recorder.merge_into ~into:Obs.Recorder.nil (trial_recorder 1);
  let dst = Obs.Recorder.create () in
  Obs.Recorder.merge_into ~into:dst Obs.Recorder.nil;
  Alcotest.(check (list (pair string int))) "nothing merged" []
    (Obs.Recorder.counters dst)

(* ---------- counters invariant across -j (the ISSUE's differential
   property) ---------- *)

let pl = Radio.Pathloss.make ~max_range:25. ()

let positions_gen =
  QCheck.Gen.(
    int_range 2 30 >>= fun n ->
    list_repeat n (pair (float_bound_exclusive 60.) (float_bound_exclusive 60.))
    >|= fun pts -> Array.of_list (List.map (fun (x, y) -> Geom.Vec2.make x y) pts))

let traced_run ~jobs positions =
  Parallel.Pool.with_pool ~jobs (fun pool ->
      let obs = Obs.Recorder.create () in
      let d =
        Cbtc.Geo.run ~pool ~obs
          (Cbtc.Config.make Geom.Angle.five_pi_six)
          pl positions
      in
      ignore d;
      (Obs.Recorder.summary_string obs, Obs.Recorder.trace_lines obs))

let prop_counters_invariant_across_jobs =
  QCheck.Test.make ~count:25
    ~name:"discovery metrics and trace are identical for -j 1/2/4"
    (QCheck.make positions_gen)
    (fun positions ->
      let s1, t1 = traced_run ~jobs:1 positions in
      let s2, t2 = traced_run ~jobs:2 positions in
      let s4, t4 = traced_run ~jobs:4 positions in
      s1 = s2 && s2 = s4 && t1 = t2 && t2 = t4)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "obs"
    [
      ( "jsonl",
        [
          Alcotest.test_case "roundtrip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "floats" `Quick test_jsonl_floats;
          Alcotest.test_case "parse errors" `Quick test_jsonl_parse_errors;
          Alcotest.test_case "member" `Quick test_jsonl_member;
        ] );
      ( "hist",
        [
          Alcotest.test_case "basic" `Quick test_hist_basic;
          Alcotest.test_case "merge" `Quick test_hist_merge;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "nil is inert" `Quick test_nil_is_inert;
          Alcotest.test_case "counters and manifest" `Quick
            test_counters_and_manifest;
          Alcotest.test_case "spans nest and validate" `Quick
            test_spans_nest_and_validate;
          Alcotest.test_case "span survives exception" `Quick
            test_span_survives_exception;
          Alcotest.test_case "clockless has no timing" `Quick
            test_clockless_has_no_timing;
          Alcotest.test_case "clocked has timing" `Quick test_clocked_has_timing;
        ] );
      ( "merge",
        [
          Alcotest.test_case "order-fixed merge is deterministic" `Quick
            test_merge_is_order_fixed;
          Alcotest.test_case "merge rebases depth" `Quick test_merge_rebases_depth;
          Alcotest.test_case "nil merge is a no-op" `Quick
            test_merge_into_nil_is_noop;
        ] );
      ("determinism", qsuite [ prop_counters_invariant_across_jobs ]);
    ]
