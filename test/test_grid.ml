(* The Geom.Grid spatial index: unit tests for cell-boundary cases and
   mobility updates, and differential properties asserting that every
   grid-backed hot path (oracle discovery, G_R, Yao, RNG/Gabriel,
   interference coverage, Net.bcast audience) produces results identical
   to the brute-force references. *)

let v2 = Geom.Vec2.make

let pl = Radio.Pathloss.make ~max_range:100. ()

let alpha56 = Geom.Angle.five_pi_six

(* ---------- unit: construction and probes ---------- *)

let test_create_rejects_bad_range () =
  Alcotest.check_raises "zero"
    (Invalid_argument "Grid.create: cell range must be positive and finite")
    (fun () -> ignore (Geom.Grid.create ~range:0. [| Geom.Vec2.zero |]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Grid.create: cell range must be positive and finite")
    (fun () -> ignore (Geom.Grid.create ~range:(-1.) [||]))

let test_empty_grid () =
  let g = Geom.Grid.create ~range:10. [||] in
  Alcotest.(check int) "no nodes" 0 (Geom.Grid.nb_nodes g);
  Alcotest.(check (list int)) "no candidates" []
    (Geom.Grid.fold_in_range g Geom.Vec2.zero ~dist:50. ~init:[]
       ~f:(fun acc u -> u :: acc))

let test_neighbors_within_exact () =
  (* nodes at distances 3, 5, 7 from node 0; query radius 5 includes the
     boundary (closed disk) *)
  let positions = [| Geom.Vec2.zero; v2 3. 0.; v2 0. 5.; v2 7. 0. |] in
  let g = Geom.Grid.create ~range:10. positions in
  Alcotest.(check (list int)) "closed disk" [ 1; 2 ]
    (Geom.Grid.neighbors_within g 0 ~dist:5.);
  Alcotest.(check (list int)) "all" [ 1; 2; 3 ]
    (Geom.Grid.neighbors_within g 0 ~dist:7.);
  Alcotest.(check (list int)) "self excluded, tiny radius" []
    (Geom.Grid.neighbors_within g 0 ~dist:0.5)

let test_cell_boundary_nodes () =
  (* nodes sitting exactly on cell edges and corners (multiples of the
     cell size) must be found from neighboring cells in every direction *)
  let cell = 10. in
  let positions =
    [| v2 0. 0.; v2 cell 0.; v2 0. cell; v2 cell cell; v2 (-.cell) (-.cell) |]
  in
  let g = Geom.Grid.create ~range:cell positions in
  Alcotest.(check (list int)) "corner node sees all grid-line nodes"
    [ 1; 2; 3; 4 ]
    (Geom.Grid.neighbors_within g 0 ~dist:(cell *. Float.sqrt 2.));
  Alcotest.(check (list int)) "axis-aligned only" [ 1; 2 ]
    (Geom.Grid.neighbors_within g 0 ~dist:cell)

let test_negative_coordinates () =
  (* the hand-built constructions use negative coordinates; floor-based
     cell keys must not truncate toward zero *)
  let positions = [| v2 (-0.5) (-0.5); v2 0.5 0.5; v2 (-15.) (-15.) |] in
  let g = Geom.Grid.create ~range:10. positions in
  Alcotest.(check (list int)) "across the origin" [ 1 ]
    (Geom.Grid.neighbors_within g 0 ~dist:2.);
  Alcotest.(check (list int)) "far negative found" [ 2 ]
    (Geom.Grid.neighbors_within g 0 ~dist:25.
    |> List.filter (fun u -> u = 2))

let test_move_rebuckets () =
  let positions = [| Geom.Vec2.zero; v2 50. 50.; v2 90. 90. |] in
  let g = Geom.Grid.create ~range:10. positions in
  Alcotest.(check (list int)) "before" [] (Geom.Grid.neighbors_within g 0 ~dist:5.);
  Geom.Grid.move g 1 (v2 3. 0.);
  Alcotest.(check (list int)) "after move in" [ 1 ]
    (Geom.Grid.neighbors_within g 0 ~dist:5.);
  Alcotest.(check bool) "position updated" true
    (Geom.Vec2.equal (Geom.Grid.position g 1) (v2 3. 0.));
  (* move within the same cell *)
  Geom.Grid.move g 1 (v2 4. 1.);
  Alcotest.(check (list int)) "same cell move" [ 1 ]
    (Geom.Grid.neighbors_within g 0 ~dist:5.);
  (* move away again *)
  Geom.Grid.move g 1 (v2 80. 0.);
  Alcotest.(check (list int)) "after move out" []
    (Geom.Grid.neighbors_within g 0 ~dist:5.)

(* ---------- properties: grid probes vs brute scans ---------- *)

let positions_gen =
  QCheck.Gen.(
    int_range 2 60 >>= fun n ->
    list_repeat n
      (pair (float_bound_exclusive 300.) (float_bound_exclusive 300.))
    >|= fun pts ->
    Array.of_list (List.map (fun (x, y) -> v2 x y) pts))

let brute_within positions u ~dist =
  let ids = ref [] in
  for v = Array.length positions - 1 downto 0 do
    if v <> u && Geom.Vec2.dist positions.(u) positions.(v) <= dist then
      ids := v :: !ids
  done;
  !ids

let prop_neighbors_within_matches_brute =
  QCheck.Test.make ~count:100 ~name:"neighbors_within = brute closed-disk scan"
    (QCheck.make QCheck.Gen.(pair positions_gen (float_bound_exclusive 250.)))
    (fun (positions, dist) ->
      let g = Geom.Grid.create ~range:100. positions in
      let ok = ref true in
      for u = 0 to Array.length positions - 1 do
        if Geom.Grid.neighbors_within g u ~dist <> brute_within positions u ~dist
        then ok := false
      done;
      !ok)

let prop_fold_is_superset =
  QCheck.Test.make ~count:100
    ~name:"fold_in_range enumerates a superset, each id once"
    (QCheck.make QCheck.Gen.(pair positions_gen (float_bound_exclusive 150.)))
    (fun (positions, dist) ->
      let g = Geom.Grid.create ~range:50. positions in
      let ok = ref true in
      for u = 0 to Array.length positions - 1 do
        let seen =
          Geom.Grid.fold_in_range g positions.(u) ~dist ~init:[]
            ~f:(fun acc v -> v :: acc)
        in
        let sorted = List.sort Int.compare seen in
        if List.sort_uniq Int.compare seen <> sorted then ok := false;
        List.iter
          (fun v ->
            if not (List.mem v sorted) && v <> u then ok := false)
          (brute_within positions u ~dist)
      done;
      !ok)

let prop_move_tracks_mobility =
  (* random walk: after a batch of moves the index answers exactly like a
     brute scan over the current positions *)
  QCheck.Test.make ~count:50 ~name:"move keeps the index exact under mobility"
    (QCheck.make
       QCheck.Gen.(
         triple positions_gen (int_range 0 1000) (float_bound_exclusive 120.)))
    (fun (positions, seed, dist) ->
      let n = Array.length positions in
      let g = Geom.Grid.create ~range:40. positions in
      let prng = Prng.create ~seed in
      let current = Array.copy positions in
      let ok = ref true in
      for _round = 1 to 5 do
        for _ = 1 to n do
          let u = Prng.int prng n in
          let p =
            v2 (Prng.float prng 300. -. 150.) (Prng.float prng 300. -. 150.)
          in
          current.(u) <- p;
          Geom.Grid.move g u p
        done;
        for u = 0 to n - 1 do
          if
            Geom.Grid.neighbors_within g u ~dist
            <> brute_within current u ~dist
          then ok := false
        done
      done;
      !ok)

(* ---------- properties: grid-backed modules vs brute references ---------- *)

let neighbor_eq (a : Cbtc.Neighbor.t) (b : Cbtc.Neighbor.t) =
  a.id = b.id && a.dir = b.dir && a.link_power = b.link_power && a.tag = b.tag

let discovery_eq (a : Cbtc.Discovery.t) (b : Cbtc.Discovery.t) =
  let n = Cbtc.Discovery.nb_nodes a in
  n = Cbtc.Discovery.nb_nodes b
  && Array.for_all2 (List.equal neighbor_eq) a.neighbors b.neighbors
  && a.power = b.power && a.boundary = b.boundary

let prop_candidates_identical =
  QCheck.Test.make ~count:100 ~name:"Geo.candidates: grid = brute, bit-exact"
    (QCheck.make positions_gen)
    (fun positions ->
      let grid =
        Geom.Grid.create ~range:(Radio.Pathloss.max_range pl) positions
      in
      let ok = ref true in
      for u = 0 to Array.length positions - 1 do
        let g = Cbtc.Geo.candidates ~grid pl positions u in
        let b = Cbtc.Geo.Brute.candidates pl positions u in
        if not (List.equal neighbor_eq g b) then ok := false
      done;
      !ok)

let growth_gen =
  QCheck.Gen.oneofl
    [ Cbtc.Config.Exact; Cbtc.Config.Double 25.;
      Cbtc.Config.Mult { p0 = 100.; factor = 3. } ]

let prop_discovery_identical =
  QCheck.Test.make ~count:100
    ~name:"Geo.run: grid-backed Discovery.t = brute, bit-exact"
    (QCheck.make QCheck.Gen.(pair positions_gen growth_gen))
    (fun (positions, growth) ->
      let config = Cbtc.Config.make ~growth alpha56 in
      discovery_eq (Cbtc.Geo.run config pl positions)
        (Cbtc.Geo.Brute.run config pl positions))

(* ~cutoff:0 forces the grid kernel: without it the adaptive dispatch
   would pick the brute kernel for these small generated inputs and the
   comparison would be brute vs brute *)
let prop_max_power_graph_identical =
  QCheck.Test.make ~count:100 ~name:"Geo.max_power_graph: grid = brute"
    (QCheck.make positions_gen)
    (fun positions ->
      Graphkit.Ugraph.equal
        (Cbtc.Geo.max_power_graph ~cutoff:0 pl positions)
        (Cbtc.Geo.Brute.max_power_graph pl positions))

let prop_proximity_identical =
  QCheck.Test.make ~count:100
    ~name:"Proximity max_power/RNG/Gabriel/kNN: grid = brute"
    (QCheck.make QCheck.Gen.(pair positions_gen (int_range 1 8)))
    (fun (positions, k) ->
      Graphkit.Ugraph.equal
        (Baselines.Proximity.max_power ~cutoff:0 pl positions)
        (Baselines.Proximity.Brute.max_power pl positions)
      && Graphkit.Ugraph.equal
           (Baselines.Proximity.rng pl positions)
           (Baselines.Proximity.Brute.rng pl positions)
      && Graphkit.Ugraph.equal
           (Baselines.Proximity.gabriel pl positions)
           (Baselines.Proximity.Brute.gabriel pl positions)
      && Graphkit.Ugraph.equal
           (Baselines.Proximity.knn pl positions ~k)
           (Baselines.Proximity.Brute.knn pl positions ~k))

let prop_yao_identical =
  QCheck.Test.make ~count:100 ~name:"Yao: grid = brute (incl. distance ties)"
    (QCheck.make QCheck.Gen.(pair positions_gen (int_range 3 9)))
    (fun (positions, k) ->
      Graphkit.Ugraph.equal
        (Baselines.Yao.yao ~cutoff:0 pl positions ~k)
        (Baselines.Yao.Brute.yao pl positions ~k))

(* the adaptive dispatch itself: whatever kernel the default cutoff
   picks must equal the forced-grid result *)
let prop_cutoff_dispatch_identical =
  QCheck.Test.make ~count:50
    ~name:"adaptive cutoff: default dispatch = forced grid"
    (QCheck.make QCheck.Gen.(pair positions_gen (int_range 3 9)))
    (fun (positions, k) ->
      let radius =
        Array.map (fun _ -> Radio.Pathloss.max_range pl) positions
      in
      Graphkit.Ugraph.equal
        (Cbtc.Geo.max_power_graph pl positions)
        (Cbtc.Geo.max_power_graph ~cutoff:0 pl positions)
      && Graphkit.Ugraph.equal
           (Baselines.Proximity.max_power pl positions)
           (Baselines.Proximity.max_power ~cutoff:0 pl positions)
      && Graphkit.Ugraph.equal
           (Baselines.Yao.yao pl positions ~k)
           (Baselines.Yao.yao ~cutoff:0 pl positions ~k)
      && Metrics.Interference.coverage positions ~radius
         = Metrics.Interference.coverage ~cutoff:0 positions ~radius)

let prop_interference_identical =
  QCheck.Test.make ~count:100 ~name:"Interference.coverage: grid = brute"
    (QCheck.make QCheck.Gen.(pair positions_gen (int_range 0 200)))
    (fun (positions, r100) ->
      let n = Array.length positions in
      let radius =
        Array.init n (fun u ->
            if u mod 3 = 0 then 0. else Stdlib.float_of_int r100 /. 2.)
      in
      let i = Metrics.Interference.coverage ~cutoff:0 positions ~radius in
      let expected_total = ref 0 in
      let expected_max = ref 0 in
      for u = 0 to n - 1 do
        if radius.(u) > 0. then begin
          let c = ref 0 in
          for v = 0 to n - 1 do
            if
              v <> u
              && Geom.Vec2.dist positions.(u) positions.(v) <= radius.(u)
            then incr c
          done;
          expected_total := !expected_total + !c;
          if !c > !expected_max then expected_max := !c
        end
      done;
      i.Metrics.Interference.total_coverage = !expected_total
      && i.Metrics.Interference.max_coverage = !expected_max)

(* ---------- Net.bcast audience through the index ---------- *)

let make_net positions =
  let sim = Dsim.Sim.create () in
  let channel = Dsim.Channel.reliable in
  let prng = Prng.create ~seed:7 in
  Airnet.Net.create ~sim ~pathloss:pl ~channel ~prng ~positions ()

let prop_bcast_audience =
  QCheck.Test.make ~count:50
    ~name:"Net.bcast reaches exactly the in-range live nodes"
    (QCheck.make QCheck.Gen.(pair positions_gen (float_range 1. 10000.)))
    (fun (positions, power) ->
      let n = Array.length positions in
      let net = make_net positions in
      let ok = ref true in
      for src = 0 to Stdlib.min (n - 1) 5 do
        let expected = ref 0 in
        for dst = 0 to n - 1 do
          if
            dst <> src
            && Radio.Pathloss.reaches pl ~power
                 ~dist:(Geom.Vec2.dist positions.(src) positions.(dst))
          then incr expected
        done;
        if Airnet.Net.bcast net ~src ~power "m" <> !expected then ok := false
      done;
      !ok)

let test_bcast_after_move () =
  (* moving a node in or out of range changes the audience accordingly *)
  let positions = [| Geom.Vec2.zero; v2 50. 0.; v2 500. 500. |] in
  let net = make_net positions in
  let power = Radio.Pathloss.max_power pl in
  Alcotest.(check int) "initially one in range" 1
    (Airnet.Net.bcast net ~src:0 ~power "a");
  Airnet.Net.set_position net 2 (v2 0. 60.);
  Alcotest.(check int) "moved-in node now reached" 2
    (Airnet.Net.bcast net ~src:0 ~power "b");
  Airnet.Net.set_position net 1 (v2 (-500.) 300.);
  Alcotest.(check int) "moved-out node dropped" 1
    (Airnet.Net.bcast net ~src:0 ~power "c")

let test_health_counters () =
  let n = 100 in
  let positions = Array.init n (fun i -> v2 (Stdlib.float_of_int i *. 15.) 0.) in
  let g = Geom.Grid.create ~range:10. positions in
  let h = Geom.Grid.health g in
  Alcotest.(check bool) "fresh index is pristine" true
    (h = { Geom.Grid.drifted = 0; overflow = 0; compactions = 0 });
  (* a same-cell move is not a drift *)
  Geom.Grid.move g 0 (v2 1. 1.);
  Alcotest.(check int) "same-cell move leaves no drift" 0
    (Geom.Grid.health g).Geom.Grid.drifted;
  (* a cell-changing move inside the dense window is an in-place CSR
     edit: it counts as drift but never touches the overflow table *)
  Geom.Grid.move g 0 (v2 17. 1.);
  let h = Geom.Grid.health g in
  Alcotest.(check int) "one drifted node" 1 h.Geom.Grid.drifted;
  Alcotest.(check int) "in-window drift stays out of overflow" 0
    h.Geom.Grid.overflow;
  Alcotest.(check int) "no compaction yet" 0 h.Geom.Grid.compactions;
  (* a move far outside the dense window has nowhere to land in the
     CSR arrays and parks in overflow *)
  Geom.Grid.move g 0 (v2 500. 500.);
  Alcotest.(check int) "out-of-window move overflows" 1
    (Geom.Grid.health g).Geom.Grid.overflow;
  (* sustained out-of-window drift crosses the rebuild threshold
     (max 64 (n/8) overflow entries here): the rebuild re-centers the
     window and absorbs the overflow back into the flat layout *)
  for u = 1 to n - 1 do
    Geom.Grid.move g u (v2 (Stdlib.float_of_int u *. 15.) 500.)
  done;
  let h = Geom.Grid.health g in
  Alcotest.(check bool) "compaction happened" true (h.Geom.Grid.compactions >= 1);
  Alcotest.(check bool) "rebuild absorbed the drift" true
    (h.Geom.Grid.drifted < n - 1);
  (* queries stay exact across the whole drift/rebuild cycle *)
  Alcotest.(check (list int)) "post-compaction probe exact" [ 1 ]
    (Geom.Grid.neighbors_within g 0 ~dist:520.
    |> List.filter (fun v -> v < 2))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "grid"
    [
      ( "unit",
        [
          Alcotest.test_case "rejects bad range" `Quick test_create_rejects_bad_range;
          Alcotest.test_case "empty grid" `Quick test_empty_grid;
          Alcotest.test_case "neighbors_within exact" `Quick test_neighbors_within_exact;
          Alcotest.test_case "cell boundary nodes" `Quick test_cell_boundary_nodes;
          Alcotest.test_case "negative coordinates" `Quick test_negative_coordinates;
          Alcotest.test_case "move rebuckets" `Quick test_move_rebuckets;
          Alcotest.test_case "health counters" `Quick test_health_counters;
          Alcotest.test_case "bcast after move" `Quick test_bcast_after_move;
        ] );
      ( "probe properties",
        qsuite
          [
            prop_neighbors_within_matches_brute;
            prop_fold_is_superset;
            prop_move_tracks_mobility;
          ] );
      ( "grid = brute",
        qsuite
          [
            prop_candidates_identical;
            prop_discovery_identical;
            prop_max_power_graph_identical;
            prop_proximity_identical;
            prop_yao_identical;
            prop_interference_identical;
            prop_cutoff_dispatch_identical;
            prop_bcast_audience;
          ] );
    ]
