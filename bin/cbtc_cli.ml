(* Command-line interface to the CBTC library.

   Subcommands:
     run        run a configuration on a random network and print metrics
     sweep      sweep alpha over a seed set, reporting degree/radius
     topology   write an SVG (and optional ASCII) rendering
     protocol   run the distributed protocol and print message statistics
     stress     sweep burst-loss x crash fault scenarios, JSON report
     check      explore event schedules, shrink and replay failures
     daemon     self-healing topology daemon over a continuous event stream
     daemon-sweep  equivalence sweep across seeded streams x fault grid
     theory     check the paper's two constructions
     compare    compare CBTC against the proximity-graph baselines *)

open Cmdliner

(* ---------- shared options ---------- *)

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let nodes =
  (* The library tolerates degenerate inputs (n = 0 or 1 run without
     crashing), but as a CLI request they are almost certainly typos, so
     reject them with a clear message instead of printing NaN-free but
     meaningless tables. *)
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 2 -> Ok n
    | Some n ->
        Error
          (`Msg
            (Fmt.str
               "node count must be at least 2 (got %d); a %s-node network \
                has no topology to control"
               n
               (if n = 1 then "one" else string_of_int n)))
    | None -> Error (`Msg (Fmt.str "node count must be an integer (got %S)" s))
  in
  Arg.(
    value
    & opt (conv (parse, Fmt.int)) 100
    & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Node count (at least 2).")

let side =
  Arg.(
    value & opt float 1500.
    & info [ "side" ] ~docv:"L" ~doc:"Square field side length.")

let range =
  Arg.(
    value & opt float 500.
    & info [ "range" ] ~docv:"R" ~doc:"Maximum transmission radius.")

let alpha =
  let parse s =
    match String.lowercase_ascii s with
    | "5pi/6" | "5pi6" -> Ok Geom.Angle.five_pi_six
    | "2pi/3" | "2pi3" -> Ok Geom.Angle.two_pi_three
    | "pi/2" | "pi2" -> Ok (Float.pi /. 2.)
    | s -> (
        match float_of_string_opt s with
        | Some v when v > 0. && v <= Geom.Angle.two_pi -> Ok v
        | Some _ -> Error (`Msg "alpha must be in (0, 2pi]")
        | None -> Error (`Msg "alpha must be a float or 5pi/6, 2pi/3, pi/2"))
  in
  let print ppf v = Fmt.pf ppf "%g" v in
  Arg.(
    value
    & opt (conv (parse, print)) Geom.Angle.five_pi_six
    & info [ "alpha" ] ~docv:"ALPHA"
        ~doc:"Cone degree (radians, or one of 5pi/6, 2pi/3, pi/2).")

let opts_flag =
  Arg.(
    value
    & opt (enum [ ("none", `None); ("shrink", `Shrink); ("all", `All) ]) `All
    & info [ "opts" ] ~docv:"LEVEL"
        ~doc:"Optimization level: none (basic), shrink (op1), all.")

(* -j / --jobs / CBTC_JOBS: size of the domain pool used by the
   trial-sweeping subcommands (sweep, stress).  Results are bit-identical
   for every value — trials fan out order-preserving and are folded
   sequentially — so this only changes wall clock. *)
let jobs =
  let parse s =
    match int_of_string_opt s with
    | Some j when j >= 1 && j <= 1024 -> Ok j
    | Some _ -> Error (`Msg (Fmt.str "jobs must be in [1, 1024] (got %s)" s))
    | None -> Error (`Msg (Fmt.str "jobs must be an integer (got %S)" s))
  in
  Arg.(
    value
    & opt (some (conv (parse, Fmt.int))) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~env:(Cmd.Env.info "CBTC_JOBS")
        ~doc:
          "Worker domains for trial-level parallelism, in [1, 1024] \
           (default: the host's recommended domain count).")

(* --sigma / --shadow-seed: the per-link propagation environment of
   Radio.Env.  sigma = 0 (the default) keeps the pure deterministic
   pathloss model: no environment is even constructed, so the code path
   is bit-identical to the pre-env one. *)
let sigma_t =
  let parse s =
    match float_of_string_opt s with
    | Some v when Float.is_finite v && v >= 0. -> Ok v
    | _ -> Error (`Msg (Fmt.str "--sigma: %s is not a finite dB value >= 0" s))
  in
  Arg.(
    value
    & opt (conv (parse, Fmt.float)) 0.
    & info [ "sigma" ] ~docv:"DB"
        ~doc:
          "Log-normal shadowing standard deviation in dB (0 = pure \
           deterministic pathloss).")

let shadow_seed_t =
  Arg.(
    value & opt int 0
    & info [ "shadow-seed" ] ~docv:"S"
        ~doc:
          "Seed of the deterministic per-link shadowing hash (independent \
           of --seed; same seed = same realized link gains).")

let env_of ~pathloss ~sigma ~shadow_seed =
  if sigma = 0. then None
  else Some (Radio.Env.make ~sigma_db:sigma ~shadow_seed pathloss)

let env_fields ~sigma ~shadow_seed =
  if sigma = 0. then []
  else
    [ ("sigma", Obs.Jsonl.Float sigma);
      ("shadow_seed", Obs.Jsonl.Int shadow_seed) ]

(* --trace-out / --metrics-out: observability sinks, off by default (the
   recorder stays [nil] and instrumentation costs one branch).  Both are
   written by a clockless recorder, so for a fixed command line the
   files are byte-identical across runs and across every -j. *)
let obs_out =
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a JSON-lines trace (run manifest, then nested span and \
             point events) to $(docv).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the end-of-run JSON summary (manifest, counters, \
             histograms) to $(docv).")
  in
  Term.(const (fun t m -> (t, m)) $ trace_out $ metrics_out)

(* Sinks are opened before the run so a bad path fails in milliseconds,
   not after the whole simulation; trace and summary are still flushed
   when the run raises. *)
let with_obs ~manifest (trace_out, metrics_out) f =
  match (trace_out, metrics_out) with
  | None, None -> f Obs.Recorder.nil
  | _ ->
      let open_sink path =
        try open_out path
        with Sys_error e ->
          Fmt.epr "cbtc: cannot open output file: %s@." e;
          exit 3
      in
      let trace = Option.map open_sink trace_out in
      let metrics = Option.map open_sink metrics_out in
      let obs = Obs.Recorder.create () in
      List.iter (fun (k, v) -> Obs.Recorder.set obs k v) manifest;
      Fun.protect
        ~finally:(fun () ->
          (* sampled once here: VmHWM is a process-lifetime high-water
             mark, so the value at write time covers the whole run *)
          Obs.Recorder.set obs "peak_rss_kb"
            (match Obs.Rss.peak_rss_kb () with
            | Some kb -> Obs.Jsonl.Int kb
            | None -> Obs.Jsonl.Null);
          Option.iter
            (fun oc ->
              Obs.Recorder.write_trace obs oc;
              close_out oc)
            trace;
          Option.iter
            (fun oc ->
              Obs.Recorder.write_summary obs oc;
              close_out oc)
            metrics)
        (fun () -> f obs)

let manifest_of ~command ~n ~side ~range ~seed ?alpha extra =
  [
    ("command", Obs.Jsonl.Str command);
    ("seed", Obs.Jsonl.Int seed);
    ("n", Obs.Jsonl.Int n);
    ("side", Obs.Jsonl.Float side);
    ("range", Obs.Jsonl.Float range);
  ]
  @ (match alpha with
    | None -> []
    | Some a -> [ ("alpha", Obs.Jsonl.Float a) ])
  @ extra

let jobs_field jobs =
  ("jobs", match jobs with None -> Obs.Jsonl.Null | Some j -> Obs.Jsonl.Int j)

let scenario_of ~n ~side ~range ~seed =
  Workload.Scenario.make ~n ~width:side ~height:side ~max_range:range ~seed ()

let plan_of config = function
  | `None -> Cbtc.Pipeline.basic config
  | `Shrink -> Cbtc.Pipeline.with_shrink config
  | `All -> Cbtc.Pipeline.all_ops config

(* ---------- run ---------- *)

let run_cmd =
  let action n side range seed alpha opts sigma shadow_seed jobs obsout =
    with_obs obsout
      ~manifest:
        (manifest_of ~command:"run" ~n ~side ~range ~seed ~alpha
           ([ ("growth", Obs.Jsonl.Str "exact"); jobs_field jobs ]
           @ env_fields ~sigma ~shadow_seed))
    @@ fun obs ->
    let sc = scenario_of ~n ~side ~range ~seed in
    let pl = Workload.Scenario.pathloss sc in
    let env = env_of ~pathloss:pl ~sigma ~shadow_seed in
    let positions = Workload.Scenario.positions sc in
    let config = Cbtc.Config.make alpha in
    (* node-level parallelism for the oracle pass; output is
       bit-identical at every -j (chunks write disjoint slots), which
       the @scale-smoke alias pins by comparing summary digests *)
    let with_pool_opt f =
      match jobs with
      | None -> f None
      | Some jobs -> Parallel.Pool.with_pool ~jobs (fun p -> f (Some p))
    in
    with_pool_opt @@ fun pool ->
    let r =
      Cbtc.Pipeline.run_oracle ?pool ~obs ?env pl positions
        (plan_of config opts)
    in
    let gr = Baselines.Proximity.max_power ?env pl positions in
    Fmt.pr "scenario: %a@." Workload.Scenario.pp sc;
    Fmt.pr "config:   %a@." Cbtc.Config.pp config;
    Fmt.pr "edges:    %d (GR has %d)@." (Graphkit.Ugraph.nb_edges r.Cbtc.Pipeline.graph)
      (Graphkit.Ugraph.nb_edges gr);
    Fmt.pr "degree:   %.2f (GR %.2f)@."
      (Cbtc.Pipeline.avg_degree r)
      (Metrics.Topo_metrics.avg_degree gr);
    Fmt.pr "radius:   %.1f (max power %g)@." (Cbtc.Pipeline.avg_radius r) range;
    Fmt.pr "degree distribution: %a@." Stats.Summary.pp
      (Metrics.Topo_metrics.degree_summary r.Cbtc.Pipeline.graph);
    Fmt.pr "connectivity preserved: %b@."
      (Metrics.Connectivity.preserves ~reference:gr r.Cbtc.Pipeline.graph)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one CBTC configuration and print metrics.")
    Term.(
      const action $ nodes $ side $ range $ seed $ alpha $ opts_flag
      $ sigma_t $ shadow_seed_t $ jobs $ obs_out)

(* ---------- sweep ---------- *)

let sweep_cmd =
  let count =
    Arg.(
      value & opt int 20
      & info [ "count" ] ~docv:"K" ~doc:"Number of random networks.")
  in
  let action n side range seed count opts sigma shadow_seed jobs obsout =
    with_obs obsout
      ~manifest:
        (manifest_of ~command:"sweep" ~n ~side ~range ~seed
           ([ ("count", Obs.Jsonl.Int count);
              ("growth", Obs.Jsonl.Str "exact"); jobs_field jobs ]
           @ env_fields ~sigma ~shadow_seed))
    @@ fun obs ->
    let recording = Obs.Recorder.enabled obs in
    let table =
      Metrics.Table.create
        ~columns:[ "alpha"; "avg degree"; "avg radius"; "preserved" ]
    in
    let alphas =
      [ ("pi/3", Float.pi /. 3.); ("pi/2", Float.pi /. 2.);
        ("2pi/3", Geom.Angle.two_pi_three); ("3pi/4", 3. *. Float.pi /. 4.);
        ("5pi/6", Geom.Angle.five_pi_six) ]
    in
    let seeds = Array.of_list (Workload.Scenario.seeds ~base:seed ~count) in
    Parallel.Pool.with_pool ?jobs (fun pool ->
        List.iter
          (fun (name, alpha) ->
            let config = Cbtc.Config.make alpha in
            (* one task per network; the Welford fold below runs in seed
               order, so the table is byte-identical for every -j.  Each
               trial records into its own single-domain recorder; the
               recorders are merged in that same seed order, so the
               trace and metrics are -j-independent too. *)
            let trial seed =
              let tobs =
                if recording then Obs.Recorder.create () else Obs.Recorder.nil
              in
              let sc = scenario_of ~n ~side ~range ~seed in
              let pl = Workload.Scenario.pathloss sc in
              let env = env_of ~pathloss:pl ~sigma ~shadow_seed in
              let positions = Workload.Scenario.positions sc in
              let r =
                Cbtc.Pipeline.run_oracle ~obs:tobs ?env pl positions
                  (plan_of config opts)
              in
              ( Cbtc.Pipeline.avg_degree r,
                Cbtc.Pipeline.avg_radius r,
                Metrics.Connectivity.preserves
                  ~reference:(Baselines.Proximity.max_power ?env pl positions)
                  r.Cbtc.Pipeline.graph,
                tobs )
            in
            let dacc = Stats.Welford.create () in
            let racc = Stats.Welford.create () in
            let ok = ref 0 in
            Array.iter
              (fun (deg, rad, preserved, tobs) ->
                if recording then begin
                  Obs.Recorder.incr obs "sweep.trials";
                  Obs.Recorder.merge_into ~into:obs tobs
                end;
                Stats.Welford.add dacc deg;
                Stats.Welford.add racc rad;
                if preserved then incr ok)
              (Parallel.Pool.map pool trial seeds);
            Metrics.Table.add_row table
              [
                name;
                Fmt.str "%.1f" (Stats.Welford.mean dacc);
                Fmt.str "%.1f" (Stats.Welford.mean racc);
                Fmt.str "%d/%d" !ok count;
              ])
          alphas);
    Fmt.pr "%a" Metrics.Table.pp table
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Sweep alpha over a seed set.")
    Term.(
      const action $ nodes $ side $ range $ seed $ count $ opts_flag
      $ sigma_t $ shadow_seed_t $ jobs $ obs_out)

(* ---------- topology ---------- *)

let topology_cmd =
  let out =
    Arg.(
      value & opt string "topology.svg"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output SVG path.")
  in
  let ascii =
    Arg.(value & flag & info [ "ascii" ] ~doc:"Also print an ASCII rendering.")
  in
  let dot =
    Arg.(
      value & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Also export Graphviz DOT.")
  in
  let csv =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also export node/edge CSV.")
  in
  let action n side range seed alpha opts out ascii dot csv =
    let sc = scenario_of ~n ~side ~range ~seed in
    let pl = Workload.Scenario.pathloss sc in
    let positions = Workload.Scenario.positions sc in
    let config = Cbtc.Config.make alpha in
    let r = Cbtc.Pipeline.run_oracle pl positions (plan_of config opts) in
    let style =
      Viz.Topoviz.style ~title:(Fmt.str "CBTC alpha=%.3f" alpha) ()
    in
    Viz.Topoviz.write_svg ~style out ~field_width:side ~field_height:side
      positions r.Cbtc.Pipeline.graph;
    Fmt.pr "wrote %s (%d edges)@." out
      (Graphkit.Ugraph.nb_edges r.Cbtc.Pipeline.graph);
    Option.iter
      (fun path ->
        Viz.Export.write_dot path positions r.Cbtc.Pipeline.graph;
        Fmt.pr "wrote %s@." path)
      dot;
    Option.iter
      (fun path ->
        Viz.Export.write_csv path positions r.Cbtc.Pipeline.graph;
        Fmt.pr "wrote %s@." path)
      csv;
    if ascii then
      Fmt.pr "%s@."
        (Viz.Topoviz.to_ascii ~field_width:side ~field_height:side positions
           r.Cbtc.Pipeline.graph)
  in
  Cmd.v
    (Cmd.info "topology"
       ~doc:"Render a controlled topology to SVG (optionally DOT/CSV).")
    Term.(
      const action $ nodes $ side $ range $ seed $ alpha $ opts_flag $ out
      $ ascii $ dot $ csv)

(* ---------- protocol ---------- *)

let protocol_cmd =
  let loss =
    Arg.(
      value & opt float 0.
      & info [ "loss" ] ~docv:"P" ~doc:"Per-message loss probability.")
  in
  let repeats =
    Arg.(
      value & opt int 1
      & info [ "repeats" ] ~docv:"K" ~doc:"Hello repeats per power step.")
  in
  let action n side range seed alpha loss repeats obsout =
    with_obs obsout
      ~manifest:
        (manifest_of ~command:"protocol" ~n ~side ~range ~seed ~alpha
           [ ("growth", Obs.Jsonl.Str "double");
             ("loss", Obs.Jsonl.Float loss);
             ("hello_repeats", Obs.Jsonl.Int repeats) ])
    @@ fun obs ->
    let sc = scenario_of ~n ~side ~range ~seed in
    let pl = Workload.Scenario.pathloss sc in
    let positions = Workload.Scenario.positions sc in
    let config = Cbtc.Config.make ~growth:(Cbtc.Config.Double 100.) alpha in
    let channel = Dsim.Channel.make ~loss () in
    let o =
      Cbtc.Distributed.run ~obs ~channel ~hello_repeats:repeats ~seed config pl
        positions
    in
    let s = o.Cbtc.Distributed.stats in
    Fmt.pr "distributed CBTC on %d nodes (loss=%.2f, repeats=%d):@." n loss
      repeats;
    Fmt.pr "  transmissions:   %d@." s.Cbtc.Distributed.transmissions;
    Fmt.pr "  deliveries:      %d@." s.Cbtc.Distributed.deliveries;
    Fmt.pr "  max rounds:      %d@." s.Cbtc.Distributed.max_rounds;
    Fmt.pr "  converged at:    t=%.1f@." s.Cbtc.Distributed.duration;
    Fmt.pr "  remove messages: %d@." o.Cbtc.Distributed.removals;
    let gr = Baselines.Proximity.max_power pl positions in
    Fmt.pr "  connectivity preserved: %b@."
      (Metrics.Connectivity.preserves ~reference:gr
         (Cbtc.Discovery.closure o.Cbtc.Distributed.discovery))
  in
  Cmd.v
    (Cmd.info "protocol"
       ~doc:"Run the distributed protocol over the simulated radio.")
    Term.(
      const action $ nodes $ side $ range $ seed $ alpha $ loss $ repeats
      $ obs_out)

(* ---------- stress ---------- *)

let stress_cmd =
  let float_list ~flag ~lo ~hi ~hi_inclusive =
    let bounds =
      Fmt.str "[%g,%g%s" lo hi (if hi_inclusive then "]" else ")")
    in
    let parse s =
      let parts = String.split_on_char ',' s in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | p :: rest -> (
            match float_of_string_opt (String.trim p) with
            | Some v
              when v >= lo && (if hi_inclusive then v <= hi else v < hi) ->
                go (v :: acc) rest
            | Some _ ->
                Error (`Msg (Fmt.str "%s: %s out of %s" flag p bounds))
            | None ->
                Error (`Msg (Fmt.str "%s: %S is not a float" flag p)))
      in
      match parts with
      | [] | [ "" ] -> Error (`Msg (Fmt.str "%s: empty list" flag))
      | parts -> go [] parts
    in
    let print = Fmt.(list ~sep:(any ",") float) in
    Arg.conv (parse, print)
  in
  let losses =
    Arg.(
      value
      & opt (float_list ~flag:"--loss" ~lo:0. ~hi:0.5 ~hi_inclusive:true)
          [ 0.1; 0.3 ]
      & info [ "loss" ] ~docv:"L1,L2,..."
          ~doc:"Mean channel loss values to sweep, each in [0,0.5].")
  in
  let crashes =
    Arg.(
      value
      & opt (float_list ~flag:"--crash" ~lo:0. ~hi:1. ~hi_inclusive:true)
          [ 0.; 0.1 ]
      & info [ "crash" ] ~docv:"F1,F2,..."
          ~doc:"Crashed-node fractions to sweep, each in [0,1].")
  in
  let burstiness =
    let parse s =
      match float_of_string_opt s with
      | Some b when b >= 1. && b <= 1000. -> Ok b
      | _ -> Error (`Msg (Fmt.str "--burstiness: %s out of [1,1000]" s))
    in
    Arg.(
      value
      & opt (conv (parse, Fmt.float)) 4.
      & info [ "burstiness" ] ~docv:"B"
          ~doc:"Mean burst length (transmissions) of the Gilbert-Elliott \
                bad state, in [1,1000].")
  in
  let recover_after =
    let parse s =
      match float_of_string_opt s with
      | Some d when d >= 0. -> Ok d
      | _ -> Error (`Msg (Fmt.str "--recover-after: %s is not a delay >= 0" s))
    in
    Arg.(
      value
      & opt (some (conv (parse, Fmt.float))) None
      & info [ "recover-after" ] ~docv:"T"
          ~doc:"Recover each crashed node T time units after its crash \
                (default: crash-stop forever).")
  in
  let out =
    Arg.(
      value & opt string "stress.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"JSON report path.")
  in
  (* Gilbert-Elliott channel with a given long-run mean loss [m] and mean
     burst length [b]: bursts drop everything (loss_bad = 1), so the
     stationary Bad weight must equal [m]:
       p_bg = 1/b,  p_gb = p_bg * m / (1 - m).
     The CLI bounds (m <= 0.5, b >= 1) keep p_gb inside (0, 1]. *)
  let channel_for ~mean_loss ~burstiness =
    if mean_loss <= 0. then Dsim.Channel.make ()
    else
      let p_bg = 1. /. burstiness in
      let p_gb = p_bg *. mean_loss /. (1. -. mean_loss) in
      Dsim.Channel.gilbert_elliott ~p_gb ~p_bg ~loss_bad:1. ()
  in
  let json_of_cell buf ~mean_loss ~crash ~(o : Cbtc.Distributed.outcome)
      ~(deg : Cbtc.Verify.degradation) ~verified ~verify_error =
    let s = o.Cbtc.Distributed.stats in
    let b = Buffer.add_string buf in
    b "    {";
    b (Fmt.str {|"mean_loss": %g, "crash_fraction": %g, |} mean_loss crash);
    b
      (Fmt.str {|"crashes": %d, "recoveries": %d, |}
         o.Cbtc.Distributed.injected.Faults.Inject.crashes
         o.Cbtc.Distributed.injected.Faults.Inject.recoveries);
    b
      (Fmt.str {|"survivors": %d, "verified": %b, "verify_error": %s, |}
         deg.Cbtc.Verify.survivors verified
         (match verify_error with
         | None -> "null"
         | Some e -> Fmt.str "%S" e));
    b
      (Fmt.str
         {|"connectivity_preserved": %b, "residual_gap_nodes": %d, "boundary_survivors": %d, |}
         deg.Cbtc.Verify.connectivity_preserved
         (List.length deg.Cbtc.Verify.residual_gap_nodes)
         deg.Cbtc.Verify.boundary_survivors);
    b
      (Fmt.str {|"delivery_ratio": %.4f, "extra_rounds": %d, |}
         deg.Cbtc.Verify.delivery_ratio deg.Cbtc.Verify.extra_rounds);
    b
      (Fmt.str
         {|"transmissions": %d, "deliveries": %d, "drops": %d, "retransmissions": %d, "duration": %.1f}|}
         s.Cbtc.Distributed.transmissions s.Cbtc.Distributed.deliveries
         s.Cbtc.Distributed.drops s.Cbtc.Distributed.retransmissions
         s.Cbtc.Distributed.duration)
  in
  let action n side range seed alpha losses crashes burstiness recover_after
      sigma shadow_seed out jobs obsout =
    with_obs obsout
      ~manifest:
        (manifest_of ~command:"stress" ~n ~side ~range ~seed ~alpha
           ([ ("growth", Obs.Jsonl.Str "double");
              ("burstiness", Obs.Jsonl.Float burstiness); jobs_field jobs ]
           @ env_fields ~sigma ~shadow_seed))
    @@ fun obs ->
    let recording = Obs.Recorder.enabled obs in
    let sc = scenario_of ~n ~side ~range ~seed in
    let pl = Workload.Scenario.pathloss sc in
    let env = env_of ~pathloss:pl ~sigma ~shadow_seed in
    let positions = Workload.Scenario.positions sc in
    let config = Cbtc.Config.make ~growth:(Cbtc.Config.Double 100.) alpha in
    let baseline = Cbtc.Distributed.run ~obs ~seed ?env config pl positions in
    let t_conv = baseline.Cbtc.Distributed.stats.Cbtc.Distributed.duration in
    let table =
      Metrics.Table.create
        ~columns:
          [ "loss"; "crash"; "died"; "survivors"; "gaps"; "conn"; "dlv";
            "retx"; "verified" ]
    in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf
      (Fmt.str
         "{\n  \"n\": %d, \"seed\": %d, \"alpha\": %g, \"burstiness\": %g,\n\
         \  \"baseline\": {\"transmissions\": %d, \"duration\": %.1f},\n\
         \  \"scenarios\": [\n"
         n seed alpha burstiness
         baseline.Cbtc.Distributed.stats.Cbtc.Distributed.transmissions t_conv);
    (* One Gilbert-Elliott template per loss level; every cell gets its
       own [Dsim.Channel.copy] so burst chains never leak across cells —
       or across domains when cells run in parallel. *)
    let templates =
      Array.of_list
        (List.map (fun mean_loss -> channel_for ~mean_loss ~burstiness) losses)
    in
    (* Cells are independent given their own channel and fault prng (the
       seed derivation below is unchanged), so they fan out over the
       pool; the grid is flattened in crashes-outer/losses-inner order
       and folded back in that same order, keeping the table and the
       JSON byte-identical for every -j. *)
    let cells =
      List.concat
        (List.mapi
           (fun ci crash ->
             List.mapi (fun li mean_loss -> (ci, li, crash, mean_loss)) losses)
           crashes)
    in
    let run_cell (ci, li, crash, mean_loss) =
      let tobs =
        if recording then Obs.Recorder.create () else Obs.Recorder.nil
      in
      let channel = Dsim.Channel.copy templates.(li) in
      let plan =
        if crash <= 0. then Faults.Plan.empty
        else
          Faults.Plan.random_crashes
            ~prng:(Prng.create ~seed:(seed + (100 * ci) + li))
            ~n ~fraction:crash
            ~window:(0.1 *. t_conv, 0.6 *. t_conv)
            ?recover_after ()
      in
      let o =
        Cbtc.Distributed.run ~obs:tobs ~channel ~seed
          ~reliability:Cbtc.Distributed.hardened ~faults:plan ?env config pl
          positions
      in
      let deg = Cbtc.Verify.degradation ~reference:baseline ?env o in
      let verified, verify_error =
        match
          Cbtc.Verify.surviving ?env ~alive:o.Cbtc.Distributed.alive
            o.Cbtc.Distributed.discovery
        with
        | () -> (true, None)
        | exception Failure e -> (false, Some e)
      in
      (crash, mean_loss, o, deg, verified, verify_error, tobs)
    in
    let results =
      Parallel.Pool.with_pool ?jobs (fun pool ->
          Parallel.Pool.map pool run_cell (Array.of_list cells))
    in
    let first = ref true in
    let failed = ref 0 in
    (* cells fold back in the same crashes-outer/losses-inner order as
       the JSON, so merged cell recorders are -j-independent too *)
    Array.iter
      (fun (crash, mean_loss, o, deg, verified, verify_error, tobs) ->
        if recording then begin
          Obs.Recorder.incr obs "stress.cells";
          Obs.Recorder.merge_into ~into:obs tobs
        end;
        Metrics.Table.add_row table
          [
            Fmt.str "%.2f" mean_loss;
            Fmt.str "%.2f" crash;
            string_of_int deg.Cbtc.Verify.crashed;
            string_of_int deg.Cbtc.Verify.survivors;
            string_of_int (List.length deg.Cbtc.Verify.residual_gap_nodes);
            string_of_bool deg.Cbtc.Verify.connectivity_preserved;
            Fmt.str "%.2f" deg.Cbtc.Verify.delivery_ratio;
            string_of_int
              o.Cbtc.Distributed.stats.Cbtc.Distributed.retransmissions;
            string_of_bool verified;
          ];
        if not (verified && deg.Cbtc.Verify.connectivity_preserved) then
          incr failed;
        if not !first then Buffer.add_string buf ",\n";
        first := false;
        json_of_cell buf ~mean_loss ~crash ~o ~deg ~verified ~verify_error)
      results;
    Buffer.add_string buf "\n  ]\n}\n";
    let oc = open_out out in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Fmt.pr "%a" Metrics.Table.pp table;
    Fmt.pr "wrote %s (%d scenarios)@." out
      (List.length losses * List.length crashes);
    if !failed > 0 then begin
      Fmt.epr "stress: %d scenario(s) failed verification@." !failed;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "stress"
       ~doc:
         "Sweep burst-loss x crash-rate fault scenarios over the hardened \
          distributed protocol and write a JSON degradation report.  Exits \
          non-zero if any scenario fails post-fault verification.")
    Term.(
      const action $ nodes $ side $ range $ seed $ alpha $ losses $ crashes
      $ burstiness $ recover_after $ sigma_t $ shadow_seed_t $ out $ jobs
      $ obs_out)

(* ---------- check ---------- *)

let check_cmd =
  let schedules =
    let parse s =
      match int_of_string_opt s with
      | Some k when k >= 0 && k <= 100_000 -> Ok k
      | _ -> Error (`Msg (Fmt.str "--schedules: %s out of [0, 100000]" s))
    in
    Arg.(
      value
      & opt (conv (parse, Fmt.int)) 20
      & info [ "schedules" ] ~docv:"K"
          ~doc:
            "Seeded random tie-break schedules to sweep (the FIFO schedule \
             is always trial 0).")
  in
  let schedule_seed =
    Arg.(
      value & opt int 7
      & info [ "schedule-seed" ] ~docv:"S"
          ~doc:"Base seed the per-schedule seeds are derived from.")
  in
  let loss =
    let parse s =
      match float_of_string_opt s with
      | Some l when l >= 0. && l < 1. -> Ok l
      | _ -> Error (`Msg (Fmt.str "--loss: %s out of [0,1)" s))
    in
    Arg.(
      value
      & opt (conv (parse, Fmt.float)) 0.
      & info [ "loss" ] ~docv:"L"
          ~doc:"Bernoulli per-copy channel loss, in [0,1).")
  in
  let crash =
    let parse s =
      match float_of_string_opt s with
      | Some f when f >= 0. && f <= 1. -> Ok f
      | _ -> Error (`Msg (Fmt.str "--crash: %s out of [0,1]" s))
    in
    Arg.(
      value
      & opt (conv (parse, Fmt.float)) 0.
      & info [ "crash" ] ~docv:"F"
          ~doc:
            "Also sweep every schedule against a fault plan crashing this \
             fraction of the nodes mid-run.")
  in
  let spread =
    let parse s =
      match float_of_string_opt s with
      | Some t when t >= 0. -> Ok t
      | _ -> Error (`Msg (Fmt.str "--spread: %s is not a delay >= 0" s))
    in
    Arg.(
      value
      & opt (conv (parse, Fmt.float)) 0.
      & info [ "spread" ] ~docv:"T"
          ~doc:"Stagger node start times uniformly in [0,T].")
  in
  let mutant =
    Arg.(
      value & flag
      & info [ "mutant" ]
          ~doc:
            "Arm the deliberately injected ack-reordering bug (the \
             harness's self-test: the sweep must catch it).")
  in
  let invariant =
    Arg.(
      value
      & opt
          (some
             (enum
                [ ("oracle", Check.Scenario.Oracle);
                  ("guarantees", Check.Scenario.Guarantees);
                  ("powers-grow", Check.Scenario.Powers_grow) ]))
          None
      & info [ "invariant" ] ~docv:"INV"
          ~doc:
            "Invariant to check: oracle, guarantees or powers-grow \
             (default: oracle for reliable fault-free sweeps, guarantees \
             otherwise).")
  in
  let artifact =
    Arg.(
      value
      & opt (some string) None
      & info [ "artifact" ] ~docv:"FILE"
          ~doc:
            "On failure, shrink the first failing trial and write a \
             replayable JSON artifact to $(docv).")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a recorded artifact instead of sweeping; exits 0 when \
             the recorded failure reproduces exactly.")
  in
  let budget =
    let parse s =
      match int_of_string_opt s with
      | Some b when b >= 1 -> Ok b
      | _ -> Error (`Msg (Fmt.str "--shrink-budget: %s is not >= 1" s))
    in
    Arg.(
      value
      & opt (conv (parse, Fmt.int)) 400
      & info [ "shrink-budget" ] ~docv:"B"
          ~doc:"Protocol runs the shrinker may spend.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write a JSON sweep manifest (trial count, digest, failures).")
  in
  let do_replay path obsout =
    let a =
      try Check.Artifact.load path
      with e ->
        Fmt.epr "check: cannot load artifact %s: %s@." path
          (Printexc.to_string e);
        exit 2
    in
    with_obs obsout
      ~manifest:
        [ ("command", Obs.Jsonl.Str "check-replay");
          ("artifact", Obs.Jsonl.Str path) ]
    @@ fun obs ->
    match Check.Artifact.replay ~obs a with
    | Ok (msg, digest) when String.equal msg a.Check.Artifact.message ->
        Fmt.pr "reproduced: %s@.digest %s@." msg digest;
        exit 0
    | Ok (msg, _) ->
        Fmt.pr "reproduced a different failure: %s@.recorded:   %s@." msg
          a.Check.Artifact.message;
        exit 1
    | Error digest ->
        Fmt.pr "artifact no longer fails (digest %s)@." digest;
        exit 1
  in
  let action n side range seed alpha schedules schedule_seed loss crash spread
      mutant invariant artifact replay budget out jobs obsout =
    match replay with
    | Some path -> do_replay path obsout
    | None ->
        with_obs obsout
          ~manifest:
            (manifest_of ~command:"check" ~n ~side ~range ~seed ~alpha
               [ ("schedules", Obs.Jsonl.Int schedules);
                 ("mutant", Obs.Jsonl.Bool mutant); jobs_field jobs ])
        @@ fun _obs ->
        let invariant =
          match invariant with
          | Some inv -> inv
          | None ->
              if loss = 0. && crash = 0. then Check.Scenario.Oracle
              else Check.Scenario.Guarantees
        in
        let sc =
          Check.Scenario.make ~alpha ~side ~range ~start_spread:spread ~loss
            ~mutant ~invariant ~run_seed:seed ~n ~seed ()
        in
        (* The crash grid pairs every schedule with both the fault-free
           plan and one mid-run crash plan, so ordering bugs in the
           crash-recovery path are in scope too. *)
        let plans =
          if crash <= 0. then []
          else
            [ Faults.Plan.empty;
              Faults.Plan.random_crashes
                ~prng:(Prng.create ~seed:(seed + 1))
                ~n ~fraction:crash ~window:(1., 20.) () ]
        in
        let report =
          Parallel.Pool.with_pool ?jobs (fun pool ->
              Check.Explore.sweep ~pool ~schedules ~seed:schedule_seed ~plans
                sc)
        in
        Fmt.pr "%a@." Check.Explore.pp_report report;
        let failures = report.Check.Explore.failures in
        let shrunk =
          match failures with
          | [] -> None
          | f :: _ ->
              let r =
                Check.Shrink.minimize ~budget f.Check.Explore.scenario
                  f.Check.Explore.policy
              in
              Fmt.pr
                "shrunk first failure to %d nodes / %d replay decisions (%d \
                 runs):@.  %s@."
                (Check.Scenario.nb_nodes r.Check.Shrink.scenario)
                (Array.length r.Check.Shrink.prios)
                r.Check.Shrink.runs r.Check.Shrink.message;
              Option.iter
                (fun path ->
                  Check.Artifact.save path (Check.Artifact.of_shrink r);
                  Fmt.pr "wrote artifact %s@." path)
                artifact;
              Some r
        in
        ignore shrunk;
        Option.iter
          (fun path ->
            let doc =
              Obs.Jsonl.Obj
                [
                  ("command", Obs.Jsonl.Str "check");
                  ("n", Obs.Jsonl.Int n);
                  ("seed", Obs.Jsonl.Int seed);
                  ("alpha", Obs.Jsonl.Float alpha);
                  ("schedules", Obs.Jsonl.Int schedules);
                  ("schedule_seed", Obs.Jsonl.Int schedule_seed);
                  ("loss", Obs.Jsonl.Float loss);
                  ("crash", Obs.Jsonl.Float crash);
                  ("spread", Obs.Jsonl.Float spread);
                  ("mutant", Obs.Jsonl.Bool mutant);
                  ( "invariant",
                    Obs.Jsonl.Str (Check.Scenario.invariant_to_string invariant)
                  );
                  ("trials", Obs.Jsonl.Int report.Check.Explore.trials);
                  ("plans", Obs.Jsonl.Int report.Check.Explore.plans);
                  ("failures", Obs.Jsonl.Int (List.length failures));
                  ("digest", Obs.Jsonl.Str report.Check.Explore.digest);
                ]
            in
            let oc = open_out path in
            output_string oc (Obs.Jsonl.to_string doc);
            output_char oc '\n';
            close_out oc;
            Fmt.pr "wrote %s@." path)
          out;
        if failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Explore same-timestamp event schedules of the distributed \
          protocol: sweep seeded tie-break permutations (optionally x a \
          crash grid) against an invariant, shrink failures to minimal \
          replayable artifacts, and replay recorded artifacts.  Exits \
          non-zero when any schedule violates the invariant.")
    Term.(
      const action $ nodes $ side $ range $ seed $ alpha $ schedules
      $ schedule_seed $ loss $ crash $ spread $ mutant $ invariant $ artifact
      $ replay $ budget $ out $ jobs $ obs_out)

(* ---------- daemon ---------- *)

let daemon_cmd =
  let pos_float ~flag default names doc =
    let parse s =
      match float_of_string_opt s with
      | Some v when v > 0. -> Ok v
      | _ -> Error (`Msg (Fmt.str "%s: %s is not > 0" flag s))
    in
    Arg.(
      value
      & opt (conv (parse, Fmt.float)) default
      & info names ~docv:"T" ~doc)
  in
  let duration =
    pos_float ~flag:"--duration" 60. [ "duration" ]
      "Stream duration in simulated time units (> 0)."
  in
  let event_dt =
    pos_float ~flag:"--event-dt" 1. [ "event-dt" ]
      "Epoch length: commit/verify cadence (> 0)."
  in
  let move_rate =
    let parse s =
      match float_of_string_opt s with
      | Some v when v >= 0. -> Ok v
      | _ -> Error (`Msg (Fmt.str "--move-rate: %s is not >= 0" s))
    in
    Arg.(
      value
      & opt (conv (parse, Fmt.float)) 40.
      & info [ "move-rate" ] ~docv:"R"
          ~doc:"Network-wide position reports per time unit (>= 0).")
  in
  let speed =
    (* LO:HI — syntax errors are cmdliner parse errors (exit 124);
       syntactically valid but semantically bad ranges (inverted,
       non-positive, NaN) are rejected by Mobility.validate_params at
       startup with exit 2, mirroring a bad --restore file. *)
    let parse s =
      let err = `Msg (Fmt.str "--speed: %S is not LO:HI (two floats)" s) in
      match String.split_on_char ':' s with
      | [ a; b ] -> (
          match (float_of_string_opt a, float_of_string_opt b) with
          | Some lo, Some hi -> Ok (lo, hi)
          | _ -> Error err)
      | _ -> Error err
    in
    let print ppf (lo, hi) = Fmt.pf ppf "%g:%g" lo hi in
    Arg.(
      value
      & opt (some (conv (parse, print))) None
      & info [ "speed" ] ~docv:"LO:HI"
          ~doc:
            "Random-waypoint speed range (default: the library's default \
             parameters).  Inverted or non-positive ranges are rejected \
             at startup.")
  in
  let pause =
    let parse s =
      match float_of_string_opt s with
      | Some v -> Ok v
      | None -> Error (`Msg (Fmt.str "--pause: %S is not a float" s))
    in
    Arg.(
      value
      & opt (some (conv (parse, Fmt.float))) None
      & info [ "pause" ] ~docv:"T"
          ~doc:
            "Random-waypoint pause at each waypoint (default: the \
             library's default).  Negative or non-finite values are \
             rejected at startup.")
  in
  let crash =
    let parse s =
      match float_of_string_opt s with
      | Some f when f >= 0. && f <= 1. -> Ok f
      | _ -> Error (`Msg (Fmt.str "--crash: %s out of [0,1]" s))
    in
    Arg.(
      value
      & opt (conv (parse, Fmt.float)) 0.
      & info [ "crash" ] ~docv:"F"
          ~doc:"Crash this fraction of the nodes mid-stream.")
  in
  let recover_after =
    let parse s =
      match float_of_string_opt s with
      | Some v when v > 0. -> Ok v
      | _ -> Error (`Msg (Fmt.str "--recover-after: %s is not > 0" s))
    in
    Arg.(
      value
      & opt (some (conv (parse, Fmt.float))) None
      & info [ "recover-after" ] ~docv:"T"
          ~doc:
            "Recover each crashed node this long after its crash \
             (default: crashes are permanent).")
  in
  let storm =
    (* T0:T1:MULT — a load spike for exercising the shedding policy *)
    let parse s =
      let err =
        `Msg
          (Fmt.str
             "--storm: %S is not T0:T1:MULT with 0 <= T0 < T1 and MULT > 0" s)
      in
      match String.split_on_char ':' s with
      | [ a; b; m ] -> (
          match
            (float_of_string_opt a, float_of_string_opt b,
             float_of_string_opt m)
          with
          | Some t0, Some t1, Some mult
            when t0 >= 0. && t0 < t1 && mult > 0. ->
              Ok (t0, t1, mult)
          | _ -> Error err)
      | _ -> Error err
    in
    let print ppf (t0, t1, m) = Fmt.pf ppf "%g:%g:%g" t0 t1 m in
    Arg.(
      value
      & opt (some (conv (parse, print))) None
      & info [ "storm" ] ~docv:"T0:T1:MULT"
          ~doc:
            "Multiply the move rate by MULT while stream time is in \
             [T0, T1) — a fault/load storm.")
  in
  let budget =
    Arg.(
      value & opt int 0
      & info [ "budget" ] ~docv:"B"
          ~doc:"Max events applied per epoch (<= 0 = unlimited).")
  in
  let queue_cap =
    let parse s =
      match int_of_string_opt s with
      | Some c when c >= 1 -> Ok c
      | _ -> Error (`Msg (Fmt.str "--queue-cap: %s is not >= 1" s))
    in
    Arg.(
      value
      & opt (conv (parse, Fmt.int)) 4096
      & info [ "queue-cap" ] ~docv:"C"
          ~doc:"Event-queue capacity before overload shedding.")
  in
  let watchdog =
    let parse s =
      match float_of_string_opt s with
      | Some f when f >= 0. -> Ok f
      | _ -> Error (`Msg (Fmt.str "--watchdog: %s is not >= 0" s))
    in
    Arg.(
      value
      & opt (conv (parse, Fmt.float)) Daemon.Engine.default_watchdog_frac
      & info [ "watchdog" ] ~docv:"FRAC"
          ~doc:
            "Fall back to a full recompute when an epoch dirties more \
             than FRAC of the live nodes (0 = always full, > 1 = never; \
             the default 1.0 trips only when every live node is dirty, \
             where the full pass is the same work plus a drift squash).")
  in
  let shards =
    let parse s =
      match int_of_string_opt s with
      | Some k when k >= 0 -> Ok k
      | _ -> Error (`Msg (Fmt.str "--shards: %s is not >= 0" s))
    in
    Arg.(
      value
      & opt (conv (parse, Fmt.int)) 0
      & info [ "shards" ] ~docv:"K"
          ~doc:
            "Spatial shards per pooled commit (0 = one per pool chunk). \
             Reports are byte-identical for every value; tune only for \
             load balance.")
  in
  let every ~flag default names doc =
    let parse s =
      match int_of_string_opt s with
      | Some k when k >= 0 -> Ok k
      | _ -> Error (`Msg (Fmt.str "%s: %s is not >= 0" flag s))
    in
    Arg.(
      value
      & opt (conv (parse, Fmt.int)) default
      & info names ~docv:"K" ~doc)
  in
  let verify_every =
    every ~flag:"--verify-every" 10 [ "verify-every" ]
      "Verify guarantees + degradation every K epochs (0 = final only)."
  in
  let equivalence_every =
    every ~flag:"--equivalence-every" 0 [ "equivalence-every" ]
      "Check incremental state equals a full recompute every K epochs \
       (0 = never)."
  in
  let checkpoint_every =
    every ~flag:"--checkpoint-every" 0 [ "checkpoint-every" ]
      "Write a checkpoint every K epochs (0 = never; needs --checkpoint)."
  in
  let checkpoint_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:"Checkpoint file (single-line JSON, atomically rewritten).")
  in
  let restore =
    Arg.(
      value
      & opt (some string) None
      & info [ "restore" ] ~docv:"FILE"
          ~doc:
            "Resume from a checkpoint written by an identical command \
             line; the run converges to the same topology digest as the \
             uninterrupted one.")
  in
  let wall =
    Arg.(
      value & flag
      & info [ "wall" ]
          ~doc:
            "Measure wall-clock time and report events/sec (makes the \
             report non-reproducible; benchmarks only).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write the JSON daemon report to $(docv).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a JSON-lines trace (run manifest, then per-epoch \
             drain/dirty-propagate/regrow/verify spans and counters) to \
             $(docv).  Recorded clockless, so the file is byte-identical \
             across runs and every -j.")
  in
  let action n side range seed alpha duration event_dt move_rate speed pause
      sigma shadow_seed crash recover_after storm budget queue_cap watchdog
      shards verify_every equivalence_every checkpoint_every checkpoint_path
      restore wall metrics_out trace_out jobs =
    let sc = scenario_of ~n ~side ~range ~seed in
    let mobility =
      let d = Workload.Mobility.default_params in
      let speed_lo, speed_hi =
        match speed with
        | Some r -> r
        | None ->
            (d.Workload.Mobility.speed_lo, d.Workload.Mobility.speed_hi)
      in
      let pause =
        match pause with Some p -> p | None -> d.Workload.Mobility.pause
      in
      { Workload.Mobility.speed_lo; speed_hi; pause }
    in
    (* reject bad mobility parameters before any work, like a bad
       --restore file: exit 2 *)
    (try Workload.Mobility.validate_params ~who:"daemon" mobility
     with Invalid_argument m ->
       (* the validator's message already carries the "daemon: " prefix *)
       Fmt.epr "%s@." m;
       exit 2);
    let env = env_of ~pathloss:(Workload.Scenario.pathloss sc) ~sigma ~shadow_seed in
    let churn =
      if crash <= 0. then Faults.Plan.empty
      else
        Faults.Plan.random_crashes
          ~prng:(Prng.create ~seed:(seed + 1))
          ~n ~fraction:crash
          ~window:(0.1 *. duration, 0.6 *. duration)
          ?recover_after ()
    in
    let stream =
      {
        Daemon.Driver.seed;
        field = sc.Workload.Scenario.field;
        mobility;
        move_rate;
        storm;
        churn;
        positions = Workload.Scenario.positions sc;
      }
    in
    let params =
      {
        Daemon.Driver.duration;
        event_dt;
        budget;
        queue_cap;
        watchdog_frac = watchdog;
        shards;
        verify_every;
        equivalence_every;
        checkpoint_every;
        checkpoint_path;
      }
    in
    let restore =
      Option.map
        (fun path ->
          try Daemon.Checkpoint.load path
          with Failure m ->
            Fmt.epr "daemon: %s@." m;
            exit 2)
        restore
    in
    let clock = if wall then Some Unix.gettimeofday else None in
    (* the trace recorder is always clockless (even with --wall): spans
       carry deterministic structure and counters only, so the file is
       byte-identical across runs and every -j *)
    let with_trace f =
      match trace_out with
      | None -> f None
      | Some path ->
          let oc =
            try open_out path
            with Sys_error e ->
              Fmt.epr "cbtc: cannot open output file: %s@." e;
              exit 3
          in
          let obs = Obs.Recorder.create () in
          List.iter
            (fun (k, v) -> Obs.Recorder.set obs k v)
            (manifest_of ~command:"daemon" ~n ~side ~range ~seed ~alpha
               (jobs_field jobs :: env_fields ~sigma ~shadow_seed));
          Fun.protect
            ~finally:(fun () ->
              Obs.Recorder.write_trace obs oc;
              close_out oc)
            (fun () -> f (Some obs))
    in
    let r, pool_jobs =
      with_trace @@ fun obs ->
      Parallel.Pool.with_pool ?jobs (fun pool ->
          ( Daemon.Driver.run ~pool ?obs ?clock ?restore ?env ~params
              ~config:(Cbtc.Config.make alpha)
              ~pathloss:(Workload.Scenario.pathloss sc)
              stream,
            Parallel.Pool.jobs pool ))
    in
    let open Daemon.Driver in
    Fmt.pr "epochs:     %d (dt %g)@." r.epochs event_dt;
    Fmt.pr "live:       %d/%d nodes@." r.live n;
    Fmt.pr "events:     %d applied, %d shed, %d overflow (peak backlog %d)@."
      r.engine.Daemon.Engine.events r.queue.Daemon.Equeue.shed
      r.queue.Daemon.Equeue.overflow r.queue.Daemon.Equeue.peak;
    Fmt.pr "regrown:    %d cones incremental, %d full recomputes@."
      r.engine.Daemon.Engine.regrown r.engine.Daemon.Engine.full_recomputes;
    Option.iter
      (fun (l : latency) ->
        Fmt.pr "latency:    p50 %g p95 %g p99 %g max %g (%d samples)@." l.p50
          l.p95 l.p99 l.max l.samples)
      r.latency;
    Fmt.pr "verify:     %d checks, %d degraded; equivalence: %d checks@."
      r.verify_checks r.degraded_checks r.equivalence_checks;
    Fmt.pr "final:      drift %d, lag %d, connectivity preserved %b@."
      r.final_degradation.drift r.final_degradation.liveness_lag
      r.final_degradation.connectivity_preserved;
    Fmt.pr "digest:     %s@." r.topology_digest;
    (match r.wall_s with
    | Some w when w > 0. ->
        Fmt.pr "throughput: %.0f events/s (%.2fs wall)@."
          (Stdlib.float_of_int r.engine.Daemon.Engine.events /. w)
          w
    | _ -> ());
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc
          (Obs.Jsonl.to_string (report_json r ~jobs:pool_jobs));
        output_char oc '\n';
        close_out oc;
        Fmt.pr "wrote %s@." path)
      metrics_out;
    List.iter (fun m -> Fmt.epr "verify failure: %s@." m) r.verify_failures;
    List.iter
      (fun m -> Fmt.epr "equivalence failure: %s@." m)
      r.equivalence_failures;
    if r.verify_failures <> [] || r.equivalence_failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "daemon"
       ~doc:
         "Run the self-healing topology daemon on a continuous \
          join/leave/move stream: incremental reconfiguration with \
          bounded-queue shedding, watchdog fallback, periodic \
          checkpoints and continuous verification.  Degradation is \
          reported, not fatal; exits 1 only on a guarantee or \
          equivalence violation (an engine bug).")
    Term.(
      const action $ nodes $ side $ range $ seed $ alpha $ duration
      $ event_dt $ move_rate $ speed $ pause $ sigma_t $ shadow_seed_t
      $ crash $ recover_after $ storm $ budget $ queue_cap $ watchdog
      $ shards $ verify_every $ equivalence_every $ checkpoint_every
      $ checkpoint_path $ restore $ wall $ metrics_out $ trace_out $ jobs)

(* ---------- daemon-sweep ---------- *)

let daemon_sweep_cmd =
  let seeds =
    let parse s =
      match int_of_string_opt s with
      | Some k when k >= 1 && k <= 100_000 -> Ok k
      | _ -> Error (`Msg (Fmt.str "--seeds: %s out of [1, 100000]" s))
    in
    Arg.(
      value
      & opt (conv (parse, Fmt.int)) 8
      & info [ "seeds" ] ~docv:"K"
          ~doc:"Stream seeds to sweep (each crossed with every grid cell).")
  in
  let action n seed seeds out jobs =
    let report =
      Parallel.Pool.with_pool ?jobs (fun pool ->
          Check.Daemon_sweep.sweep ~pool ~seeds ~seed ~n ())
    in
    Fmt.pr "%a@." Check.Daemon_sweep.pp_report report;
    Option.iter
      (fun path ->
        let doc =
          Obs.Jsonl.Obj
            [
              ("command", Obs.Jsonl.Str "daemon-sweep");
              ("n", Obs.Jsonl.Int n);
              ("seed", Obs.Jsonl.Int seed);
              ("seeds", Obs.Jsonl.Int report.Check.Daemon_sweep.seeds);
              ("cells", Obs.Jsonl.Int report.Check.Daemon_sweep.cells);
              ("trials", Obs.Jsonl.Int report.Check.Daemon_sweep.trials);
              ( "failures",
                Obs.Jsonl.Int
                  (List.length report.Check.Daemon_sweep.failures) );
              ("digest", Obs.Jsonl.Str report.Check.Daemon_sweep.digest);
            ]
        in
        let oc = open_out path in
        output_string oc (Obs.Jsonl.to_string doc);
        output_char oc '\n';
        close_out oc;
        Fmt.pr "wrote %s@." path)
      out;
    if report.Check.Daemon_sweep.failures <> [] then exit 1
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write a JSON sweep manifest (trial count, digest, failures).")
  in
  Cmd.v
    (Cmd.info "daemon-sweep"
       ~doc:
         "Sweep the daemon's incremental-vs-full equivalence invariant \
          across seeded mobility/fault streams and a fault/watchdog \
          grid.  The report is bit-identical at every -j; exits 1 on \
          any violation.")
    Term.(const action $ nodes $ seed $ seeds $ out $ jobs)

(* ---------- theory ---------- *)

let theory_cmd =
  let action () =
    let ex = Cbtc.Constructions.example_2_1 ~alpha:Geom.Angle.five_pi_six () in
    let pl = Radio.Pathloss.make ~max_range:ex.Cbtc.Constructions.max_range () in
    let d =
      Cbtc.Geo.run
        (Cbtc.Config.make Geom.Angle.five_pi_six)
        pl ex.Cbtc.Constructions.positions
    in
    let na = Cbtc.Discovery.nalpha d in
    Fmt.pr "Example 2.1: (v,u0) in N = %b, (u0,v) in N = %b (asymmetric: %b)@."
      (Graphkit.Digraph.mem_edge na 4 0)
      (Graphkit.Digraph.mem_edge na 0 4)
      (Graphkit.Digraph.mem_edge na 4 0 && not (Graphkit.Digraph.mem_edge na 0 4));
    let th = Cbtc.Constructions.theorem_2_4 ~epsilon:0.1 () in
    let pl = Radio.Pathloss.make ~max_range:th.Cbtc.Constructions.max_range () in
    let gr = Cbtc.Geo.max_power_graph pl th.Cbtc.Constructions.positions in
    let g =
      Cbtc.Discovery.closure
        (Cbtc.Geo.run
           (Cbtc.Config.make th.Cbtc.Constructions.alpha)
           pl th.Cbtc.Constructions.positions)
    in
    Fmt.pr "Theorem 2.4: GR connected = %b, G(5pi/6+eps) connected = %b@."
      (Graphkit.Traversal.is_connected gr)
      (Graphkit.Traversal.is_connected g)
  in
  Cmd.v (Cmd.info "theory" ~doc:"Check the paper's two hand constructions.")
    Term.(const action $ const ())

(* ---------- compare ---------- *)

let compare_cmd =
  let action n side range seed =
    let sc = scenario_of ~n ~side ~range ~seed in
    let pl = Workload.Scenario.pathloss sc in
    let positions = Workload.Scenario.positions sc in
    let gr = Baselines.Proximity.max_power pl positions in
    let energy = Radio.Energy.make pl in
    let table =
      Metrics.Table.create
        ~columns:[ "topology"; "deg"; "radius"; "power stretch"; "preserved" ]
    in
    let add name graph radius =
      let ps =
        Metrics.Stretch.power_stretch energy positions ~reference:gr graph
      in
      Metrics.Table.add_row table
        [
          name;
          Fmt.str "%.1f" (Metrics.Topo_metrics.avg_degree graph);
          Fmt.str "%.0f" (Metrics.Topo_metrics.avg_radius radius);
          Fmt.str "%.2f" ps.Metrics.Stretch.max_stretch;
          string_of_bool (Metrics.Connectivity.preserves ~reference:gr graph);
        ]
    in
    add "max power" gr
      (Baselines.Proximity.radius_of ~full_power:true pl positions gr);
    List.iter
      (fun (name, a) ->
        let config = Cbtc.Config.make a in
        let r = Cbtc.Pipeline.run_oracle pl positions (Cbtc.Pipeline.all_ops config) in
        add name r.Cbtc.Pipeline.graph r.Cbtc.Pipeline.radius)
      [ ("CBTC all 5pi/6", Geom.Angle.five_pi_six);
        ("CBTC all 2pi/3", Geom.Angle.two_pi_three) ];
    List.iter
      (fun (name, g) -> add name g (Baselines.Proximity.radius_of pl positions g))
      [
        ("RNG", Baselines.Proximity.rng pl positions);
        ("Gabriel", Baselines.Proximity.gabriel pl positions);
        ("MST", Baselines.Proximity.euclidean_mst pl positions);
      ];
    Fmt.pr "%a" Metrics.Table.pp table
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare CBTC against proximity-graph baselines.")
    Term.(const action $ nodes $ side $ range $ seed)

(* ---------- route ---------- *)

let route_cmd =
  let count =
    Arg.(
      value & opt int 200
      & info [ "count" ] ~docv:"K" ~doc:"Number of random source/dest pairs.")
  in
  let action n side range seed alpha opts count =
    let sc = scenario_of ~n ~side ~range ~seed in
    let pl = Workload.Scenario.pathloss sc in
    let positions = Workload.Scenario.positions sc in
    let config = Cbtc.Config.make alpha in
    let r = Cbtc.Pipeline.run_oracle pl positions (plan_of config opts) in
    let graph = r.Cbtc.Pipeline.graph in
    let prng = Prng.create ~seed:(seed + 1) in
    let pairs = Routing.Greedy.random_pairs prng ~n ~count in
    let greedy = Routing.Greedy.evaluate graph positions ~pairs in
    Fmt.pr "greedy geographic forwarding on the controlled topology:@.";
    Fmt.pr "  delivered: %d/%d (%.0f%%)@." greedy.Routing.Greedy.delivered
      greedy.Routing.Greedy.attempts
      (100.
      *. Stdlib.float_of_int greedy.Routing.Greedy.delivered
      /. Stdlib.float_of_int (Stdlib.max 1 greedy.Routing.Greedy.attempts));
    Fmt.pr "  avg hops: %.1f, avg route/straight-line length: %.2f@."
      greedy.Routing.Greedy.avg_hops greedy.Routing.Greedy.avg_length_ratio;
    let load = Routing.Flows.measure positions graph ~pairs in
    Fmt.pr "min-hop flow load: max link %d, max node %d, total hops %d@."
      load.Routing.Flows.max_link_load load.Routing.Flows.max_node_load
      load.Routing.Flows.total_hops
  in
  Cmd.v
    (Cmd.info "route" ~doc:"Routing quality of a controlled topology.")
    Term.(
      const action $ nodes $ side $ range $ seed $ alpha $ opts_flag $ count)

(* ---------- lifetime ---------- *)

let lifetime_cmd =
  let rounds =
    Arg.(
      value & opt int 4000
      & info [ "rounds" ] ~docv:"K" ~doc:"Maximum data-gathering rounds.")
  in
  let capacity =
    Arg.(
      value & opt float 5e7
      & info [ "capacity" ] ~docv:"E"
          ~doc:"Initial battery energy per node (must be positive).")
  in
  let rx_overhead =
    Arg.(
      value & opt float 20000.
      & info [ "rx-overhead" ] ~docv:"E"
          ~doc:
            "Energy per reception (and per overheard transmission).  The \
             default is radio-realistic — listening comparable to a \
             transmission, the regime the paper's interference argument \
             is about — rather than the library default of 2000, at \
             which no sleeping discipline can matter.")
  in
  let rotation_period =
    Arg.(
      value & opt int 25
      & info [ "rotation-period" ] ~docv:"K"
          ~doc:
            "Re-elect the relay cover set every $(docv) rounds; 0 \
             disables active scheduling entirely (the passive \
             per-round-Dijkstra baseline).")
  in
  let duty =
    Arg.(
      value & opt float 0.
      & info [ "duty" ] ~docv:"F"
          ~doc:
            "Awake fraction for non-relay nodes, in [0, 1]: 1 keeps \
             every node listening, 0 sleeps every non-relay except for \
             its own transmissions.")
  in
  let idle_listen =
    Arg.(
      value & opt float 0.
      & info [ "idle-listen" ] ~docv:"E"
          ~doc:"Energy per round charged to every awake live non-sink node.")
  in
  let family =
    Arg.(
      value & opt string "all"
      & info [ "family" ] ~docv:"FAMILY"
          ~doc:
            "Topology family to schedule on: max-power, cbtc[:ALPHA], \
             yao[:K], rng, gabriel, knn[:K], mst, or all (the bench \
             line-up).")
  in
  let placement =
    Arg.(
      value
      & opt
          (enum
             [ ("uniform", `Uniform); ("clustered", `Clustered);
               ("grid", `Grid) ])
          `Uniform
      & info [ "placement" ] ~docv:"KIND"
          ~doc:
            "Node placement: uniform (the paper's), clustered (Gaussian \
             clusters), or grid (jittered lattice).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write a JSON report (one row per family) to $(docv).")
  in
  let action n side range seed alpha rounds capacity rx_overhead
      rotation_period duty idle_listen family placement sigma shadow_seed out
      jobs obsout =
    (* semantic validation before any work: exit 2, like a bad daemon
       --speed (malformed literals already died in the conv parser) *)
    let policy =
      (* passive mode has no relays, so the duty default (0: sleep every
         non-relay) would read as duty-cycling-without-rotation; in that
         mode everyone listens *)
      let duty = if rotation_period = 0 && duty = 0. then 1. else duty in
      { Lifetime.Schedule.rotation_period; duty; idle_listen; seed }
    in
    (match Lifetime.Schedule.validate_policy policy with
    | Ok () -> ()
    | Error msg ->
        Fmt.epr "lifetime: %s@." msg;
        exit 2);
    if not (Float.is_finite capacity && capacity > 0.) then begin
      Fmt.epr "lifetime: capacity must be a positive finite energy (got %g)@."
        capacity;
      exit 2
    end;
    if not (Float.is_finite rx_overhead && rx_overhead >= 0.) then begin
      Fmt.epr
        "lifetime: rx-overhead must be a non-negative finite energy (got %g)@."
        rx_overhead;
      exit 2
    end;
    if rounds < 0 then begin
      Fmt.epr "lifetime: rounds must be >= 0 (got %d)@." rounds;
      exit 2
    end;
    let families =
      if family = "all" then Lifetime.Schedule.families
      else if String.lowercase_ascii (String.trim family) = "cbtc" then
        (* bare "cbtc" picks up --alpha; "cbtc:ALPHA" pins its own *)
        [ Lifetime.Schedule.Cbtc alpha ]
      else
        match Lifetime.Schedule.family_of_string family with
        | Ok f -> [ f ]
        | Error msg ->
            Fmt.epr "lifetime: %s@." msg;
            exit 2
    in
    let placement_label =
      match placement with
      | `Uniform -> "uniform"
      | `Clustered -> "clustered"
      | `Grid -> "grid"
    in
    with_obs obsout
      ~manifest:
        (manifest_of ~command:"lifetime" ~n ~side ~range ~seed ~alpha
           ([ ("rounds", Obs.Jsonl.Int rounds);
              ("capacity", Obs.Jsonl.Float capacity);
              ("rx_overhead", Obs.Jsonl.Float rx_overhead);
              ("rotation_period", Obs.Jsonl.Int rotation_period);
              ("duty", Obs.Jsonl.Float duty);
              ("idle_listen", Obs.Jsonl.Float idle_listen);
              ("placement", Obs.Jsonl.Str placement_label);
              jobs_field jobs ]
           @ env_fields ~sigma ~shadow_seed))
    @@ fun obs ->
    let sc = scenario_of ~n ~side ~range ~seed in
    let pl = Workload.Scenario.pathloss sc in
    let env = env_of ~pathloss:pl ~sigma ~shadow_seed in
    let positions =
      match placement with
      | `Uniform -> Workload.Scenario.positions sc
      | `Clustered ->
          Workload.Placement.clustered (Workload.Scenario.prng sc)
            ~field:sc.Workload.Scenario.field
            ~clusters:(Stdlib.max 2 (n / 20))
            ~n ~sigma:(side /. 10.)
      | `Grid ->
          let cols =
            int_of_float (Float.ceil (Float.sqrt (float_of_int n)))
          in
          let all =
            Workload.Placement.grid_jitter (Workload.Scenario.prng sc)
              ~field:sc.Workload.Scenario.field ~rows:cols ~cols
              ~jitter:(side /. float_of_int (4 * cols))
          in
          Array.sub all 0 n
    in
    let params =
      { Lifetime.Gather.default_params with
        capacity; rx_overhead; max_rounds = rounds }
    in
    let with_pool_opt f =
      match jobs with
      | None -> f None
      | Some jobs -> Parallel.Pool.with_pool ~jobs (fun p -> f (Some p))
    in
    with_pool_opt @@ fun pool ->
    let rows =
      List.map
        (fun fam ->
          let label = Lifetime.Schedule.family_label fam in
          Obs.Recorder.span obs (Fmt.str "lifetime.%s" label) @@ fun () ->
          let topology =
            Lifetime.Schedule.family_builder ?pool ?env fam pl
          in
          let r =
            Lifetime.Schedule.run ~params ~policy ~obs pl positions ~sink:0
              ~topology
          in
          Fmt.pr "@[<v># family: %s@,%a@]@.@." label
            Lifetime.Schedule.pp_report r;
          let o = r.Lifetime.Schedule.outcome in
          let opt_round = function
            | None -> Obs.Jsonl.Null
            | Some k -> Obs.Jsonl.Int k
          in
          Obs.Jsonl.Obj
            [
              ("family", Obs.Jsonl.Str label);
              ("lifetime_rounds",
               Obs.Jsonl.Int (Lifetime.Schedule.total_lifetime r));
              ("first_death", opt_round o.Lifetime.Gather.first_death);
              ("half_dead", opt_round o.Lifetime.Gather.half_dead);
              ("sink_partition", opt_round o.Lifetime.Gather.sink_partition);
              ("rounds_completed",
               Obs.Jsonl.Int o.Lifetime.Gather.rounds_completed);
              ("delivered", Obs.Jsonl.Int o.Lifetime.Gather.packets_delivered);
              ("dropped", Obs.Jsonl.Int o.Lifetime.Gather.packets_dropped);
              ("deaths", Obs.Jsonl.Int (List.length o.Lifetime.Gather.deaths));
              ("epochs", Obs.Jsonl.Int r.Lifetime.Schedule.epochs);
              ("cover_sets", Obs.Jsonl.Int r.Lifetime.Schedule.cover_sets);
              ("awake_node_rounds",
               Obs.Jsonl.Int r.Lifetime.Schedule.awake_node_rounds);
              ("consumed_energy",
               Obs.Jsonl.Float r.Lifetime.Schedule.consumed_energy);
              ("energy_per_delivered",
               Obs.Jsonl.Float r.Lifetime.Schedule.energy_per_delivered);
            ])
        families
    in
    match out with
    | None -> ()
    | Some path ->
        let oc =
          try open_out path
          with Sys_error e ->
            Fmt.epr "cbtc: cannot open output file: %s@." e;
            exit 3
        in
        Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
        output_string oc "{\n  \"schema\": 1,\n";
        output_string oc
          (Fmt.str
             "  \"n\": %d, \"seed\": %d, \"rounds\": %d, \"capacity\": %g, \
              \"rx_overhead\": %g,\n\
             \  \"rotation_period\": %d, \"duty\": %g, \"idle_listen\": %g, \
              \"placement\": %S,\n"
             n seed rounds capacity rx_overhead rotation_period duty
             idle_listen placement_label);
        output_string oc "  \"results\": [\n";
        List.iteri
          (fun i row ->
            output_string oc "    ";
            output_string oc (Obs.Jsonl.to_string row);
            output_string oc
              (if i = List.length rows - 1 then "\n" else ",\n"))
          rows;
        output_string oc "  ]\n}\n";
        Fmt.pr "wrote %s (%d families)@." path (List.length rows)
  in
  Cmd.v
    (Cmd.info "lifetime"
       ~doc:
         "Duty-cycled network lifetime under many-to-one data gathering: \
          the energy-aware cover-set scheduler (or, with \
          --rotation-period 0, the passive baseline) across topology \
          families.")
    Term.(
      const action $ nodes $ side $ range $ seed $ alpha $ rounds $ capacity
      $ rx_overhead $ rotation_period $ duty $ idle_listen $ family
      $ placement $ sigma_t $ shadow_seed_t $ out $ jobs $ obs_out)

let () =
  let info =
    Cmd.info "cbtc" ~version:"1.0.0"
      ~doc:"Cone-Based Topology Control for wireless multi-hop networks."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; sweep_cmd; topology_cmd; protocol_cmd; stress_cmd;
            check_cmd; daemon_cmd; daemon_sweep_cmd; theory_cmd; compare_cmd;
            route_cmd; lifetime_cmd ]))
