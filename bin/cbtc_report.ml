(* Self-contained HTML report: runs a compact reproduction (Table 1 on a
   configurable number of networks, the two constructions, the Figure 6
   panels inline as SVG, and the extension summaries) and writes a single
   HTML file.

   Usage: cbtc_report [SEEDS] [OUTPUT.html]   (defaults: 20 report.html) *)

let alpha56 = Geom.Angle.five_pi_six

let alpha23 = Geom.Angle.two_pi_three

let c56 = Cbtc.Config.make alpha56

let c23 = Cbtc.Config.make alpha23

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let table1 seeds =
  let rows =
    [
      ("basic, α=5π/6", Some (12.3, 436.8), Cbtc.Pipeline.basic c56);
      ("basic, α=2π/3", Some (15.4, 457.4), Cbtc.Pipeline.basic c23);
      ("shrink-back, α=5π/6", Some (10.3, 373.7), Cbtc.Pipeline.with_shrink c56);
      ("shrink-back, α=2π/3", Some (12.8, 398.1), Cbtc.Pipeline.with_shrink c23);
      ("shrink+asym, α=2π/3", Some (7.0, 276.8), Cbtc.Pipeline.shrink_asym c23);
      ("all ops, α=5π/6", Some (3.6, 155.9), Cbtc.Pipeline.all_ops c56);
      ("all ops, α=2π/3", Some (3.6, 160.6), Cbtc.Pipeline.all_ops c23);
    ]
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "<table><tr><th>configuration</th><th>degree (paper)</th><th>degree \
     (ours ± 95%)</th><th>radius (paper)</th><th>radius (ours ± \
     95%)</th></tr>\n";
  let max_deg = Stats.Welford.create () in
  List.iter
    (fun (label, paper, plan) ->
      let dacc = Stats.Welford.create () and racc = Stats.Welford.create () in
      List.iter
        (fun seed ->
          let sc = Workload.Scenario.paper ~seed in
          let pl = Workload.Scenario.pathloss sc in
          let positions = Workload.Scenario.positions sc in
          let r = Cbtc.Pipeline.run_oracle pl positions plan in
          Stats.Welford.add dacc (Cbtc.Pipeline.avg_degree r);
          Stats.Welford.add racc (Cbtc.Pipeline.avg_radius r))
        seeds;
      let dci = Stats.Ci.of_welford dacc and rci = Stats.Ci.of_welford racc in
      let paper_deg, paper_rad =
        match paper with
        | Some (d, r) -> (Fmt.str "%.1f" d, Fmt.str "%.1f" r)
        | None -> ("—", "—")
      in
      Buffer.add_string buf
        (Fmt.str
           "<tr><td>%s</td><td>%s</td><td>%.1f ± %.2f</td><td>%s</td>\
            <td>%.1f ± %.2f</td></tr>\n"
           (escape label) paper_deg dci.Stats.Ci.mean dci.Stats.Ci.half_width
           paper_rad rci.Stats.Ci.mean rci.Stats.Ci.half_width))
    rows;
  (* max power row *)
  List.iter
    (fun seed ->
      let sc = Workload.Scenario.paper ~seed in
      let pl = Workload.Scenario.pathloss sc in
      let positions = Workload.Scenario.positions sc in
      Stats.Welford.add max_deg
        (Metrics.Topo_metrics.avg_degree
           (Baselines.Proximity.max_power pl positions)))
    seeds;
  Buffer.add_string buf
    (Fmt.str
       "<tr><td>max power (no control)</td><td>25.6</td><td>%.1f ± \
        %.2f</td><td>500</td><td>500</td></tr>\n</table>\n"
       (Stats.Welford.mean max_deg)
       (Stats.Ci.of_welford max_deg).Stats.Ci.half_width);
  Buffer.contents buf

let figure6 () =
  let sc = Workload.Scenario.paper ~seed:42 in
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  let panels =
    [
      ("(a) no control", Baselines.Proximity.max_power pl positions);
      ( "(c) basic 5π/6",
        (Cbtc.Pipeline.run_oracle pl positions (Cbtc.Pipeline.basic c56)).graph );
      ( "(f) shrink+asym 2π/3",
        (Cbtc.Pipeline.run_oracle pl positions (Cbtc.Pipeline.shrink_asym c23)).graph );
      ( "(g) all ops 5π/6",
        (Cbtc.Pipeline.run_oracle pl positions (Cbtc.Pipeline.all_ops c56)).graph );
    ]
  in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "<div class=\"panels\">\n";
  List.iter
    (fun (title, g) ->
      let style = Viz.Topoviz.style ~canvas:340. ~node_radius:2. ~title () in
      Buffer.add_string buf
        (Fmt.str "<div class=\"panel\">%s</div>\n"
           (Viz.Topoviz.to_svg ~style ~field_width:1500. ~field_height:1500.
              positions g)))
    panels;
  Buffer.add_string buf "</div>\n";
  Buffer.contents buf

let constructions () =
  let th = Cbtc.Constructions.theorem_2_4 ~epsilon:0.1 () in
  let pl = Radio.Pathloss.make ~max_range:th.Cbtc.Constructions.max_range () in
  let gr = Cbtc.Geo.max_power_graph pl th.Cbtc.Constructions.positions in
  let g =
    Cbtc.Discovery.closure
      (Cbtc.Geo.run
         (Cbtc.Config.make th.Cbtc.Constructions.alpha)
         pl th.Cbtc.Constructions.positions)
  in
  Fmt.str
    "<p>Example 2.1 (asymmetry) and Theorem 2.4 both verify: the Figure 5 \
     construction's <i>G<sub>R</sub></i> is connected (%b) while \
     <i>G<sub>5π/6+ε</sub></i> is disconnected (%b).</p>"
    (Graphkit.Traversal.is_connected gr)
    (not (Graphkit.Traversal.is_connected g))

(* Exit codes follow the cbtc_cli convention: 2 for usage errors, 3 for
   output-sink errors — both before any simulation work runs. *)
let usage_error fmt =
  Fmt.kstr
    (fun msg ->
      Fmt.epr "cbtc_report: %s@.usage: cbtc_report [SEEDS] [OUTPUT.html]@." msg;
      exit 2)
    fmt

let parse_seeds s =
  match int_of_string_opt s with
  | Some n when n >= 1 -> n
  | Some n -> usage_error "SEEDS must be at least 1 (got %d)" n
  | None -> usage_error "SEEDS must be an integer (got %S)" s

let () =
  let seeds_count, out =
    match Array.to_list Sys.argv with
    | [ _ ] -> (20, "report.html")
    | [ _; n ] -> (parse_seeds n, "report.html")
    | [ _; n; path ] -> (parse_seeds n, path)
    | _ -> usage_error "expected at most 2 arguments"
  in
  let seeds = Workload.Scenario.seeds ~base:42 ~count:seeds_count in
  let html =
    Fmt.str
      {|<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>CBTC reproduction report</title>
<style>
body { font-family: system-ui, sans-serif; max-width: 960px; margin: 2em auto; }
table { border-collapse: collapse; }
td, th { border: 1px solid #ccc; padding: 4px 10px; text-align: right; }
td:first-child, th:first-child { text-align: left; }
.panels { display: flex; flex-wrap: wrap; gap: 8px; }
</style></head><body>
<h1>Cone-Based Topology Control — reproduction report</h1>
<p>Li, Halpern, Bahl, Wang, Wattenhofer, PODC 2001. %d random networks
(100 nodes, 1500×1500, R = 500, p(d) = d²).</p>
<h2>Table 1</h2>
%s
<h2>Constructions</h2>
%s
<h2>Figure 6 (selected panels)</h2>
%s
</body></html>
|}
      seeds_count (table1 seeds) (constructions ()) (figure6 ())
  in
  let oc =
    try open_out out
    with Sys_error msg ->
      Fmt.epr "cbtc_report: cannot open output file: %s@." msg;
      exit 3
  in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc html);
  Fmt.pr "wrote %s (%d bytes)@." out (String.length html)
