(* Reproduction harness for "Analysis of a Cone-Based Distributed
   Topology Control Algorithm for Wireless Multi-hop Networks"
   (Li, Halpern, Bahl, Wang, Wattenhofer; PODC 2001).

   Regenerates every quantitative result of the paper:
   - Table 1  (average node degree / average radius, all configurations);
   - Figure 2 (Example 2.1: N_alpha asymmetry);
   - Figure 5 (Theorem 2.4: disconnection for alpha > 5pi/6);
   - Figure 6 (one network rendered under eight configurations, as SVG);
   plus connectivity sweeps, ablations of our own, Bechamel
   microbenchmarks of the computational kernels, and a spatial-grid vs
   brute-force scaling comparison (writes <out>/perf.json), and the
   streaming-daemon capacity study (writes <out>/daemon.json).

   Usage: main.exe [--seeds N] [--fast] [--out DIR] [-j N]
                   [--trace-out FILE] [--metrics-out FILE] [section ...]
   Sections: table1 figures figure6 connectivity ablations extensions
   series perf parallel daemon (default: all of them).

   [--trace-out] / [--metrics-out] enable the observability layer with a
   wall clock (this is a timing harness, so spans carry durations and the
   domain pool records task latencies); each section runs in its own
   span, and table1 merges per-trial recorders in seed order.

   [-j N] (or CBTC_JOBS) sizes the domain pool used for the Monte-Carlo
   trial loops and the chunked per-node phases; results are
   bit-identical for every jobs level (seeds are pre-split, merges are
   sequential and order-preserving). *)

let alpha56 = Geom.Angle.five_pi_six

let alpha23 = Geom.Angle.two_pi_three

let c56 = Cbtc.Config.make alpha56

let c23 = Cbtc.Config.make alpha23

let section title = Fmt.pr "@.=== %s ===@.@." title

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

type table1_row = {
  label : string;
  paper_degree : float option;
  paper_radius : float option;
  run : Obs.Recorder.t -> Radio.Pathloss.t -> Geom.Vec2.t array -> float * float;
      (* (degree, radius) for one network *)
}

let pipeline_row label paper_degree paper_radius plan =
  {
    label;
    paper_degree;
    paper_radius;
    run =
      (fun obs pl positions ->
        let r = Cbtc.Pipeline.run_oracle ~obs pl positions plan in
        (Cbtc.Pipeline.avg_degree r, Cbtc.Pipeline.avg_radius r));
  }

let table1_rows =
  [
    pipeline_row "basic, a=5pi/6" (Some 12.3) (Some 436.8) (Cbtc.Pipeline.basic c56);
    pipeline_row "basic, a=2pi/3" (Some 15.4) (Some 457.4) (Cbtc.Pipeline.basic c23);
    pipeline_row "op1 (shrink), a=5pi/6" (Some 10.3) (Some 373.7)
      (Cbtc.Pipeline.with_shrink c56);
    pipeline_row "op1 (shrink), a=2pi/3" (Some 12.8) (Some 398.1)
      (Cbtc.Pipeline.with_shrink c23);
    pipeline_row "op1+op2 (asym), a=2pi/3" (Some 7.0) (Some 276.8)
      (Cbtc.Pipeline.shrink_asym c23);
    (* the paper's in-text number: basic + asymmetric removal, no shrink *)
    pipeline_row "op2 only (asym), a=2pi/3" None (Some 301.2)
      { (Cbtc.Pipeline.basic c23) with Cbtc.Pipeline.asym = true };
    pipeline_row "all ops, a=5pi/6" (Some 3.6) (Some 155.9)
      (Cbtc.Pipeline.all_ops c56);
    pipeline_row "all ops, a=2pi/3" (Some 3.6) (Some 160.6)
      (Cbtc.Pipeline.all_ops c23);
    {
      label = "max power (no TC)";
      paper_degree = Some 25.6;
      paper_radius = Some 500.;
      run =
        (fun _obs pl positions ->
          let gr = Baselines.Proximity.max_power pl positions in
          (Metrics.Topo_metrics.avg_degree gr, Radio.Pathloss.max_range pl));
    };
  ]

let fmt_opt = function None -> "-" | Some v -> Fmt.str "%.1f" v

(* One trial = one random network evaluated under every configuration.
   Trials are independent, so they fan out over the pool via an
   order-preserving [Parallel.Pool.map]; the Welford accumulators are
   then folded sequentially in seed order, which keeps every printed
   digit identical for any [-j]. *)
let table1_trial ?(obs = Obs.Recorder.nil) seed =
  let sc = Workload.Scenario.paper ~seed in
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  let gr = Baselines.Proximity.max_power pl positions in
  let vals = List.map (fun row -> row.run obs pl positions) table1_rows in
  let all56 =
    Cbtc.Pipeline.run_oracle ~obs pl positions (Cbtc.Pipeline.all_ops c56)
  in
  let broken =
    not
      (Metrics.Connectivity.preserves ~reference:gr all56.Cbtc.Pipeline.graph)
  in
  (vals, broken)

let run_table1 ~pool ~obs ~seeds =
  section
    (Fmt.str
       "Table 1: average degree and radius over %d random networks (100 \
        nodes, 1500x1500, R=500)"
       (List.length seeds));
  let accs =
    List.map
      (fun row -> (row, Stats.Welford.create (), Stats.Welford.create ()))
      table1_rows
  in
  let broken = ref 0 in
  (* trials record into per-trial clockless recorders (worker domains
     never touch [obs]); the sequential fold below merges them in seed
     order, so merged counters are identical for every -j *)
  let recording = Obs.Recorder.enabled obs in
  let trial seed =
    let tobs = if recording then Obs.Recorder.create () else Obs.Recorder.nil in
    let vals, b = table1_trial ~obs:tobs seed in
    (vals, b, tobs)
  in
  let trials = Parallel.Pool.map pool trial (Array.of_list seeds) in
  Array.iter
    (fun (vals, b, tobs) ->
      if recording then begin
        Obs.Recorder.incr obs "table1.trials";
        Obs.Recorder.merge_into ~into:obs tobs
      end;
      List.iter2
        (fun (_, dacc, racc) (deg, rad) ->
          Stats.Welford.add dacc deg;
          Stats.Welford.add racc rad)
        accs vals;
      if b then incr broken)
    trials;
  let table =
    Metrics.Table.create
      ~columns:
        [ "configuration"; "deg (paper)"; "deg (ours)"; "+/-95%";
          "rad (paper)"; "rad (ours)"; "+/-95%" ]
  in
  List.iter
    (fun (row, dacc, racc) ->
      Metrics.Table.add_row table
        [
          row.label;
          fmt_opt row.paper_degree;
          Fmt.str "%.1f" (Stats.Welford.mean dacc);
          Fmt.str "%.2f" (Stats.Ci.of_welford dacc).Stats.Ci.half_width;
          fmt_opt row.paper_radius;
          Fmt.str "%.1f" (Stats.Welford.mean racc);
          Fmt.str "%.2f" (Stats.Ci.of_welford racc).Stats.Ci.half_width;
        ])
    accs;
  Fmt.pr "%a@." Metrics.Table.pp table;
  Fmt.pr "connectivity violations across all networks (all ops, a=5pi/6): %d@."
    !broken;
  let mean_of label =
    let _, dacc, racc =
      List.find (fun (r, _, _) -> r.label = label) accs
    in
    (Stats.Welford.mean dacc, Stats.Welford.mean racc)
  in
  let max_deg, _ = mean_of "max power (no TC)" in
  let all_deg, all_rad = mean_of "all ops, a=5pi/6" in
  Fmt.pr
    "headline ratios: degree cut %.1fx (paper: 7.1x), radius cut %.1fx \
     (paper: 3.2x)@."
    (max_deg /. all_deg) (500. /. all_rad)

(* ------------------------------------------------------------------ *)
(* Figures 2 and 5 (the hand constructions)                            *)
(* ------------------------------------------------------------------ *)

let run_figures () =
  section "Figure 2 / Example 2.1: N_alpha asymmetry at alpha = 5pi/6";
  let ex = Cbtc.Constructions.example_2_1 ~alpha:alpha56 () in
  let pl = Radio.Pathloss.make ~max_range:ex.Cbtc.Constructions.max_range () in
  let d =
    Cbtc.Geo.run (Cbtc.Config.make alpha56) pl ex.Cbtc.Constructions.positions
  in
  let na = Cbtc.Discovery.nalpha d in
  let names = [| "u0"; "u1"; "u2"; "u3"; "v" |] in
  Array.iteri
    (fun u name ->
      Fmt.pr "  N(%s) = {%s}@." name
        (String.concat ", "
           (List.map (fun v -> names.(v)) (Graphkit.Digraph.succ na u))))
    names;
  Fmt.pr
    "  (v,u0) in N_alpha: %b   (u0,v) in N_alpha: %b   => asymmetric, \
     closure required@."
    (Graphkit.Digraph.mem_edge na 4 0)
    (Graphkit.Digraph.mem_edge na 0 4);
  Fmt.pr "  closure preserves connectivity: %b@."
    (Metrics.Connectivity.preserves
       ~reference:(Cbtc.Geo.max_power_graph pl ex.Cbtc.Constructions.positions)
       (Cbtc.Discovery.closure d));

  section "Figure 5 / Theorem 2.4: disconnection for alpha = 5pi/6 + eps";
  List.iter
    (fun epsilon ->
      let th = Cbtc.Constructions.theorem_2_4 ~epsilon () in
      let pl =
        Radio.Pathloss.make ~max_range:th.Cbtc.Constructions.max_range ()
      in
      let positions = th.Cbtc.Constructions.positions in
      let gr = Cbtc.Geo.max_power_graph pl positions in
      let galpha =
        Cbtc.Discovery.closure
          (Cbtc.Geo.run
             (Cbtc.Config.make th.Cbtc.Constructions.alpha)
             pl positions)
      in
      let gthr =
        Cbtc.Discovery.closure
          (Cbtc.Geo.run (Cbtc.Config.make alpha56) pl positions)
      in
      Fmt.pr
        "  eps=%-5g GR connected: %b | G(5pi/6+eps) connected: %b | \
         G(5pi/6) connected: %b@."
        epsilon
        (Graphkit.Traversal.is_connected gr)
        (Graphkit.Traversal.is_connected galpha)
        (Graphkit.Traversal.is_connected gthr))
    [ 0.01; 0.05; 0.1; 0.2; 0.3 ];
  Fmt.pr
    "  => 5pi/6 is tight: the same placements stay connected at the \
     threshold@."

(* ------------------------------------------------------------------ *)
(* Figure 6 (topology panels)                                          *)
(* ------------------------------------------------------------------ *)

let run_figure6 ~out_dir =
  section "Figure 6: one network under eight configurations (SVG panels)";
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  let sc = Workload.Scenario.paper ~seed:42 in
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  let gr = Baselines.Proximity.max_power pl positions in
  let oracle plan =
    (Cbtc.Pipeline.run_oracle pl positions plan).Cbtc.Pipeline.graph
  in
  let panels =
    [
      ("a", "no topology control", gr);
      ("b", "basic, a=2pi/3", oracle (Cbtc.Pipeline.basic c23));
      ("c", "basic, a=5pi/6", oracle (Cbtc.Pipeline.basic c56));
      ("d", "shrink-back, a=2pi/3", oracle (Cbtc.Pipeline.with_shrink c23));
      ("e", "shrink-back, a=5pi/6", oracle (Cbtc.Pipeline.with_shrink c56));
      ("f", "shrink-back + asym, a=2pi/3", oracle (Cbtc.Pipeline.shrink_asym c23));
      ("g", "all optimizations, a=5pi/6", oracle (Cbtc.Pipeline.all_ops c56));
      ("h", "all optimizations, a=2pi/3", oracle (Cbtc.Pipeline.all_ops c23));
    ]
  in
  List.iter
    (fun (tag, title, graph) ->
      let path = Filename.concat out_dir (Fmt.str "figure6%s.svg" tag) in
      let style = Viz.Topoviz.style ~title:(Fmt.str "(%s) %s" tag title) () in
      Viz.Topoviz.write_svg ~style path ~field_width:1500. ~field_height:1500.
        positions graph;
      Fmt.pr "  (%s) %-30s edges=%4d avg-degree=%5.1f -> %s@." tag title
        (Graphkit.Ugraph.nb_edges graph)
        (Metrics.Topo_metrics.avg_degree graph)
        path)
    panels

(* ------------------------------------------------------------------ *)
(* Connectivity sweep (Theorem 2.1 empirically)                        *)
(* ------------------------------------------------------------------ *)

let run_connectivity ~pool ~seeds =
  section "Connectivity sweep: networks whose partition is preserved, vs alpha";
  let alphas =
    [
      ("pi/2", Float.pi /. 2.);
      ("2pi/3", alpha23);
      ("3pi/4", 3. *. Float.pi /. 4.);
      ("5pi/6", alpha56);
      ("5pi/6+0.1", alpha56 +. 0.1);
      ("11pi/12", 11. *. Float.pi /. 12.);
    ]
  in
  let table =
    Metrics.Table.create ~columns:[ "alpha"; "closure ok"; "all-ops ok"; "note" ]
  in
  List.iter
    (fun (name, alpha) ->
      let config = Cbtc.Config.make alpha in
      (* independent trials: fan out, then count — counting ints is
         order-free, so results match the sequential loop exactly *)
      let trial seed =
        let sc = Workload.Scenario.paper ~seed in
        let pl = Workload.Scenario.pathloss sc in
        let positions = Workload.Scenario.positions sc in
        let gr = Baselines.Proximity.max_power pl positions in
        let closure =
          Cbtc.Discovery.closure (Cbtc.Geo.run config pl positions)
        in
        let all =
          Cbtc.Pipeline.run_oracle pl positions (Cbtc.Pipeline.all_ops config)
        in
        ( Metrics.Connectivity.preserves ~reference:gr closure,
          Metrics.Connectivity.preserves ~reference:gr all.Cbtc.Pipeline.graph
        )
      in
      let results = Parallel.Pool.map pool trial (Array.of_list seeds) in
      let ok_closure = ref 0 and ok_all = ref 0 in
      Array.iter
        (fun (c, a) ->
          if c then incr ok_closure;
          if a then incr ok_all)
        results;
      let n = List.length seeds in
      let note =
        if alpha <= alpha56 +. 1e-9 then "guaranteed (Thm 2.1)"
        else "no guarantee (Thm 2.4)"
      in
      Metrics.Table.add_row table
        [ name; Fmt.str "%d/%d" !ok_closure n; Fmt.str "%d/%d" !ok_all n; note ])
    alphas;
  Fmt.pr "%a@." Metrics.Table.pp table;
  let th = Cbtc.Constructions.theorem_2_4 ~epsilon:0.1 () in
  let pl = Radio.Pathloss.make ~max_range:th.Cbtc.Constructions.max_range () in
  let g =
    Cbtc.Discovery.closure
      (Cbtc.Geo.run
         (Cbtc.Config.make th.Cbtc.Constructions.alpha)
         pl th.Cbtc.Constructions.positions)
  in
  Fmt.pr "constructed counterexample at alpha=5pi/6+0.1 disconnected: %b@."
    (not (Graphkit.Traversal.is_connected g))

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let run_ablations ~pool ~seeds =
  let seeds =
    match seeds with s0 :: s1 :: s2 :: _ -> [ s0; s1; s2 ] | l -> l
  in

  section "Ablation A: power-growth schedule (overshoot of Increase(p)=2p)";
  let table =
    Metrics.Table.create
      ~columns:[ "schedule"; "avg power"; "avg radius"; "avg degree" ]
  in
  let growths =
    [
      ("exact (continuous)", Cbtc.Config.Exact);
      ("double from p0=1", Cbtc.Config.Double 1.);
      ("double from p0=1000", Cbtc.Config.Double 1000.);
      ("x4 from p0=1000", Cbtc.Config.Mult { p0 = 1000.; factor = 4. });
    ]
  in
  List.iter
    (fun (name, growth) ->
      let config = Cbtc.Config.make ~growth alpha56 in
      let pacc = Stats.Welford.create () in
      let racc = Stats.Welford.create () in
      let dacc = Stats.Welford.create () in
      let trial seed =
        let sc = Workload.Scenario.paper ~seed in
        let pl = Workload.Scenario.pathloss sc in
        let positions = Workload.Scenario.positions sc in
        let d = Cbtc.Geo.run config pl positions in
        let n = Stdlib.float_of_int (Array.length positions) in
        let closure = Cbtc.Discovery.closure d in
        ( Array.fold_left ( +. ) 0. d.power /. n,
          Metrics.Topo_metrics.avg_radius (Cbtc.Discovery.radius_in d closure),
          Metrics.Topo_metrics.avg_degree closure )
      in
      Array.iter
        (fun (p, r, dg) ->
          Stats.Welford.add pacc p;
          Stats.Welford.add racc r;
          Stats.Welford.add dacc dg)
        (Parallel.Pool.map pool trial (Array.of_list seeds));
      Metrics.Table.add_row table
        [
          name;
          Fmt.str "%.0f" (Stats.Welford.mean pacc);
          Fmt.str "%.1f" (Stats.Welford.mean racc);
          Fmt.str "%.1f" (Stats.Welford.mean dacc);
        ])
    growths;
  Fmt.pr "%a@." Metrics.Table.pp table;

  section "Ablation B: distributed protocol message cost";
  let table =
    Metrics.Table.create
      ~columns:[ "nodes"; "transmissions"; "deliveries"; "max rounds"; "sim time" ]
  in
  List.iter
    (fun n ->
      let sc = Workload.Scenario.make ~n ~seed:(List.hd seeds) () in
      let pl = Workload.Scenario.pathloss sc in
      let positions = Workload.Scenario.positions sc in
      let config = Cbtc.Config.make ~growth:(Cbtc.Config.Double 100.) alpha56 in
      let o = Cbtc.Distributed.run config pl positions in
      let s = o.Cbtc.Distributed.stats in
      Metrics.Table.add_row table
        [
          string_of_int n;
          string_of_int s.Cbtc.Distributed.transmissions;
          string_of_int s.Cbtc.Distributed.deliveries;
          string_of_int s.Cbtc.Distributed.max_rounds;
          Fmt.str "%.0f" s.Cbtc.Distributed.duration;
        ])
    [ 25; 50; 100; 200 ];
  Fmt.pr "%a@." Metrics.Table.pp table;

  section "Ablation C: power stretch and hop stretch vs baselines";
  let table =
    Metrics.Table.create
      ~columns:
        [ "topology"; "avg degree"; "power stretch (max)";
          "power stretch (avg)"; "hop stretch (max)" ]
  in
  let sc = Workload.Scenario.paper ~seed:(List.hd seeds) in
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  let gr = Baselines.Proximity.max_power pl positions in
  let energy = Radio.Energy.make pl in
  let row name graph =
    let ps =
      Metrics.Stretch.power_stretch energy positions ~reference:gr graph
    in
    let hs = Metrics.Stretch.hop_stretch ~reference:gr graph in
    Metrics.Table.add_row table
      [
        name;
        Fmt.str "%.1f" (Metrics.Topo_metrics.avg_degree graph);
        Fmt.str "%.2f" ps.Metrics.Stretch.max_stretch;
        Fmt.str "%.3f" ps.Metrics.Stretch.avg_stretch;
        Fmt.str "%.1f" hs.Metrics.Stretch.max_stretch;
      ]
  in
  let oracle plan =
    (Cbtc.Pipeline.run_oracle pl positions plan).Cbtc.Pipeline.graph
  in
  row "CBTC basic 5pi/6" (oracle (Cbtc.Pipeline.basic c56));
  row "CBTC all ops 5pi/6" (oracle (Cbtc.Pipeline.all_ops c56));
  row "CBTC all ops 2pi/3" (oracle (Cbtc.Pipeline.all_ops c23));
  let half_pi = Cbtc.Config.make (Float.pi /. 2.) in
  row "CBTC basic pi/2 (competitive)" (oracle (Cbtc.Pipeline.basic half_pi));
  row "RNG" (Baselines.Proximity.rng pl positions);
  row "Gabriel" (Baselines.Proximity.gabriel pl positions);
  row "Euclidean MST" (Baselines.Proximity.euclidean_mst pl positions);
  Fmt.pr "%a@." Metrics.Table.pp table;

  section "Ablation D: boundary nodes vs the deployment's convex hull";
  (* A boundary node (terminates at max power with a cone gap) should sit
     near the field edge; check how many lie on the convex hull and how
     far from it the rest are. *)
  let d = Cbtc.Geo.run c56 pl positions in
  let hull = Geom.Hull.hull_indices positions in
  let boundary =
    List.filter (fun u -> d.Cbtc.Discovery.boundary.(u))
      (List.init (Array.length positions) Fun.id)
  in
  let on_hull = List.filter (fun u -> List.mem u hull) boundary in
  Fmt.pr
    "boundary nodes: %d of %d; convex hull vertices: %d, of which boundary:      %d (every hull vertex has a half-plane without neighbors, so it must      be a boundary node for alpha >= pi)@."
    (List.length boundary)
    (Array.length positions)
    (List.length hull)
    (List.length on_hull)

(* ------------------------------------------------------------------ *)
(* Extensions: lifetime, interference, congestion, competitiveness     *)
(* ------------------------------------------------------------------ *)

let run_extensions ~seeds =
  let seed = List.hd seeds in

  section "Extension: network lifetime under data gathering (seed network)";
  let sc = Workload.Scenario.make ~n:80 ~seed () in
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  let params = { Lifetime.Gather.default_params with max_rounds = 4000 } in
  let table =
    Metrics.Table.create
      ~columns:
        [ "topology"; "first death"; "sink partition"; "delivered"; "dropped" ]
  in
  let show = function None -> ">end" | Some r -> string_of_int r in
  let run name topology =
    let o = Lifetime.Gather.run ~params pl positions ~sink:0 ~topology in
    Metrics.Table.add_row table
      [
        name;
        show o.Lifetime.Gather.first_death;
        show o.Lifetime.Gather.sink_partition;
        string_of_int o.Lifetime.Gather.packets_delivered;
        string_of_int o.Lifetime.Gather.packets_dropped;
      ]
  in
  run "max power" (Lifetime.Gather.max_power_builder pl);
  run "CBTC all ops 5pi/6"
    (Lifetime.Gather.cbtc_builder (Cbtc.Pipeline.all_ops c56) pl);
  run "CBTC all ops 2pi/3"
    (Lifetime.Gather.cbtc_builder (Cbtc.Pipeline.all_ops c23) pl);
  Fmt.pr "%a@." Metrics.Table.pp table;

  section "Extension: interference (nodes disturbed per transmission)";
  let sc = Workload.Scenario.paper ~seed in
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  let n = Array.length positions in
  let table = Metrics.Table.create ~columns:[ "topology"; "avg"; "max" ] in
  let add name radius =
    let i = Metrics.Interference.coverage positions ~radius in
    Metrics.Table.add_row table
      [
        name;
        Fmt.str "%.1f" i.Metrics.Interference.avg_coverage;
        string_of_int i.Metrics.Interference.max_coverage;
      ]
  in
  add "max power" (Array.make n 500.);
  add "CBTC basic 5pi/6"
    (Cbtc.Pipeline.run_oracle pl positions (Cbtc.Pipeline.basic c56)).radius;
  add "CBTC all ops 5pi/6"
    (Cbtc.Pipeline.run_oracle pl positions (Cbtc.Pipeline.all_ops c56)).radius;
  Fmt.pr "%a@." Metrics.Table.pp table;

  section "Extension: congestion under 300 random flows (min-hop routes)";
  let prng = Prng.create ~seed:(seed + 1) in
  let pairs = Routing.Greedy.random_pairs prng ~n ~count:300 in
  let gr = Baselines.Proximity.max_power pl positions in
  let table =
    Metrics.Table.create
      ~columns:
        [ "topology"; "routed"; "max link load"; "max node load"; "total hops";
          "greedy delivery" ]
  in
  let add name graph =
    let load = Routing.Flows.measure positions graph ~pairs in
    let greedy = Routing.Greedy.evaluate graph positions ~pairs in
    Metrics.Table.add_row table
      [
        name;
        Fmt.str "%d/300" load.Routing.Flows.flows_routed;
        string_of_int load.Routing.Flows.max_link_load;
        string_of_int load.Routing.Flows.max_node_load;
        string_of_int load.Routing.Flows.total_hops;
        Fmt.str "%d%%"
          (100 * greedy.Routing.Greedy.delivered
          / Stdlib.max 1 greedy.Routing.Greedy.attempts);
      ]
  in
  add "max power" gr;
  add "CBTC basic 5pi/6"
    (Cbtc.Pipeline.run_oracle pl positions (Cbtc.Pipeline.basic c56)).graph;
  add "CBTC all ops 5pi/6"
    (Cbtc.Pipeline.run_oracle pl positions (Cbtc.Pipeline.all_ops c56)).graph;
  add "Gabriel" (Baselines.Proximity.gabriel pl positions);
  add "SMECN" (Baselines.Smecn.smecn (Radio.Energy.make pl) positions);
  add "Yao k=6" (Baselines.Yao.yao pl positions ~k:6);
  Fmt.pr "%a@." Metrics.Table.pp table;

  section "Extension: MAC goodput under slotted ALOHA (interference made real)";
  let table =
    Metrics.Table.create
      ~columns:
        [ "topology"; "offered"; "delivered"; "collisions"; "goodput/node/slot" ]
  in
  let params = { Mac.Aloha.attempt_prob = 0.1; slots = 1000 } in
  let add name graph radius =
    let r = Mac.Aloha.run (Prng.create ~seed:4242) positions ~radius ~graph params in
    Metrics.Table.add_row table
      [
        name;
        string_of_int r.Mac.Aloha.offered;
        string_of_int r.Mac.Aloha.delivered;
        string_of_int r.Mac.Aloha.collisions;
        Fmt.str "%.4f" r.Mac.Aloha.goodput;
      ]
  in
  add "max power" gr
    (Baselines.Proximity.radius_of ~full_power:true pl positions gr);
  let basic = Cbtc.Pipeline.run_oracle pl positions (Cbtc.Pipeline.basic c56) in
  add "CBTC basic 5pi/6" basic.Cbtc.Pipeline.graph basic.Cbtc.Pipeline.radius;
  let allops = Cbtc.Pipeline.run_oracle pl positions (Cbtc.Pipeline.all_ops c56) in
  add "CBTC all ops 5pi/6" allops.Cbtc.Pipeline.graph allops.Cbtc.Pipeline.radius;
  Fmt.pr "%a@." Metrics.Table.pp table;

  section "Extension: robustness cost (articulation points and bridges)";
  let table =
    Metrics.Table.create
      ~columns:[ "topology"; "cut vertices"; "bridges"; "biconnected" ]
  in
  let add name graph =
    Metrics.Table.add_row table
      [
        name;
        string_of_int (List.length (Graphkit.Biconnect.articulation_points graph));
        string_of_int (List.length (Graphkit.Biconnect.bridges graph));
        string_of_bool (Graphkit.Biconnect.is_biconnected graph);
      ]
  in
  add "max power" gr;
  add "CBTC basic 5pi/6" basic.Cbtc.Pipeline.graph;
  add "CBTC all ops 5pi/6" allops.Cbtc.Pipeline.graph;
  add "Euclidean MST" (Baselines.Proximity.euclidean_mst pl positions);
  Fmt.pr "%a@." Metrics.Table.pp table;

  section "Extension: density sweep (CBTC adapts radius to local density)";
  let table =
    Metrics.Table.create
      ~columns:
        [ "nodes"; "GR degree"; "CBTC degree"; "CBTC radius"; "radius / R" ]
  in
  List.iter
    (fun n ->
      let sc = Workload.Scenario.make ~n ~seed () in
      let pl = Workload.Scenario.pathloss sc in
      let positions = Workload.Scenario.positions sc in
      let gr = Baselines.Proximity.max_power pl positions in
      let r = Cbtc.Pipeline.run_oracle pl positions (Cbtc.Pipeline.all_ops c56) in
      Metrics.Table.add_row table
        [
          string_of_int n;
          Fmt.str "%.1f" (Metrics.Topo_metrics.avg_degree gr);
          Fmt.str "%.1f" (Cbtc.Pipeline.avg_degree r);
          Fmt.str "%.0f" (Cbtc.Pipeline.avg_radius r);
          Fmt.str "%.2f" (Cbtc.Pipeline.avg_radius r /. 500.);
        ])
    [ 50; 100; 200; 400 ];
  Fmt.pr "%a@." Metrics.Table.pp table;

  section "Extension: fault tolerance — CBTC(2pi/3k) preserves k-connectivity";
  let table =
    Metrics.Table.create
      ~columns:[ "k"; "alpha"; "GR k-connected"; "topology k-connected"; "checked" ]
  in
  List.iter
    (fun k ->
      let tried = ref 0 and held = ref 0 in
      List.iter
        (fun seed ->
          (* denser field so GR is usually k-connected *)
          let sc = Workload.Scenario.make ~n:60 ~width:800. ~height:800. ~seed () in
          let pl = Workload.Scenario.pathloss sc in
          let positions = Workload.Scenario.positions sc in
          let gr_ok, topo_ok = Cbtc.Fault_tolerant.check ~k pl positions in
          if gr_ok then begin
            incr tried;
            if topo_ok then incr held
          end)
        (match seeds with a :: b :: c :: _ -> [ a; b; c ] | l -> l);
      Metrics.Table.add_row table
        [
          string_of_int k;
          Fmt.str "%.3f" (Cbtc.Fault_tolerant.alpha_for ~k);
          Fmt.str "%d" !tried;
          Fmt.str "%d" !held;
          (if !tried = !held then "all preserved" else "VIOLATION");
        ])
    [ 1; 2; 3 ];
  Fmt.pr "%a@." Metrics.Table.pp table;

  section
    "Extension: competitiveness check for alpha <= pi/2 (power stretch vs \
     the paper's bound)";
  (* For p(d) ~ d^n and transmission-power-only cost (k = 1 in the
     paper's terms), CBTC(alpha <= pi/2) routes are competitive.  We
     check the empirical max power stretch on several networks. *)
  let energy = Radio.Energy.make pl in
  let worst = ref 0. in
  List.iter
    (fun seed ->
      let sc = Workload.Scenario.paper ~seed in
      let pl = Workload.Scenario.pathloss sc in
      let positions = Workload.Scenario.positions sc in
      let gr = Baselines.Proximity.max_power pl positions in
      let g =
        (Cbtc.Pipeline.run_oracle pl positions
           (Cbtc.Pipeline.basic (Cbtc.Config.make (Float.pi /. 2.))))
          .Cbtc.Pipeline.graph
      in
      let s = Metrics.Stretch.power_stretch energy positions ~reference:gr g in
      if s.Metrics.Stretch.max_stretch > !worst then
        worst := s.Metrics.Stretch.max_stretch)
    (match seeds with a :: b :: c :: _ -> [ a; b; c ] | l -> l);
  Fmt.pr "max power stretch of CBTC(pi/2) over the seed set: %.4f (bound \
          from the paper's competitiveness analysis: > 1, small constant; \
          empirically the routes are essentially optimal)@."
    !worst

(* ------------------------------------------------------------------ *)
(* Data series (CSV for downstream plotting)                           *)
(* ------------------------------------------------------------------ *)

(* One (alpha, seed) cell of the sweep.  Pure: safe to fan out. *)
let series_trial config seed =
  let sc = Workload.Scenario.paper ~seed in
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  let basic =
    Cbtc.Pipeline.run_oracle pl positions (Cbtc.Pipeline.basic config)
  in
  let allops =
    Cbtc.Pipeline.run_oracle pl positions (Cbtc.Pipeline.all_ops config)
  in
  ( Cbtc.Pipeline.avg_degree basic,
    Cbtc.Pipeline.avg_radius basic,
    Cbtc.Pipeline.avg_degree allops,
    Cbtc.Pipeline.avg_radius allops,
    Metrics.Connectivity.preserves
      ~reference:(Baselines.Proximity.max_power pl positions)
      allops.Cbtc.Pipeline.graph )

let series_csv ~pool ~seeds buf =
  Buffer.add_string buf
    "alpha,basic_degree,basic_radius,allops_degree,allops_radius,preserved\n";
  let steps = 24 in
  for i = 2 to steps do
    let alpha =
      Stdlib.float_of_int i /. Stdlib.float_of_int steps *. Float.pi
    in
    let config = Cbtc.Config.make alpha in
    let bd = Stats.Welford.create () and br = Stats.Welford.create () in
    let ad = Stats.Welford.create () and ar = Stats.Welford.create () in
    let ok = ref 0 in
    (* trials fan out; the Welford folds below run in seed order so the
       CSV is byte-identical for every -j *)
    Array.iter
      (fun (bdv, brv, adv, arv, preserved) ->
        Stats.Welford.add bd bdv;
        Stats.Welford.add br brv;
        Stats.Welford.add ad adv;
        Stats.Welford.add ar arv;
        if preserved then incr ok)
      (Parallel.Pool.map pool (series_trial config) (Array.of_list seeds));
    Buffer.add_string buf
      (Fmt.str "%.6f,%.3f,%.2f,%.3f,%.2f,%d/%d\n" alpha
         (Stats.Welford.mean bd) (Stats.Welford.mean br)
         (Stats.Welford.mean ad) (Stats.Welford.mean ar) !ok
         (List.length seeds))
  done

let run_series ~pool ~seeds ~out_dir =
  section "Data series: degree/radius vs alpha (CSV under bench_out/)";
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  let seeds = match seeds with a :: b :: c :: d :: e :: _ -> [a; b; c; d; e] | l -> l in
  let path = Filename.concat out_dir "alpha_sweep.csv" in
  let buf = Buffer.create 4096 in
  series_csv ~pool ~seeds buf;
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      Buffer.output_buffer oc buf);
  Fmt.pr "wrote %s (alpha from pi/12 to pi, %d seeds per point)@." path
    (List.length seeds)

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

(* Wall-clock comparison of the Geom.Grid-backed hot paths against the
   brute-force O(n²) references, at constant density (the field scales
   with n so the average degree stays at the paper's ~25.6).  Results go
   to stdout and, machine-readable, to <out>/perf.json so successive PRs
   can track the perf trajectory. *)

let sample ~inner f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to Stdlib.max 1 inner do
    ignore (Sys.opaque_identity (f ()))
  done;
  (Unix.gettimeofday () -. t0) /. Stdlib.float_of_int (Stdlib.max 1 inner)

let time_best ?(inner = 1) ~reps f =
  (* one untimed warmup so the first timed rep does not pay cold-cache /
     page-fault costs, and a compaction for a reproducible heap state;
     [inner] amortizes timer and allocator jitter for sub-millisecond
     kernels by timing a block of calls per sample *)
  ignore (Sys.opaque_identity (f ()));
  Gc.compact ();
  let best = ref Float.infinity in
  for _ = 1 to Stdlib.max 1 reps do
    let dt = sample ~inner f in
    if dt < !best then best := dt
  done;
  !best

(* Time two kernels against each other with interleaved samples: on a
   shared (and here single-core) host, background steal drifts on a
   seconds scale, so timing side A fully before side B turns that drift
   into a systematic bias.  Alternating A/B blocks inside one loop makes
   the noise hit both sides equally; best-of still filters the tail. *)
let time_pair ?(inner = 1) ~reps fa fb =
  ignore (Sys.opaque_identity (fa ()));
  ignore (Sys.opaque_identity (fb ()));
  Gc.compact ();
  let best_a = ref Float.infinity and best_b = ref Float.infinity in
  for _ = 1 to Stdlib.max 1 reps do
    let da = sample ~inner fa in
    let db = sample ~inner fb in
    if da < !best_a then best_a := da;
    if db < !best_b then best_b := db
  done;
  (!best_a, !best_b)

type perf_row = {
  bench : string;
  n : int;
  grid_s : float;
  brute_s : float option;
  peak_rss_kb : int option;  (* process VmHWM after the bench; None off-Linux *)
  alloc_mb : float;  (* Gc.allocated_bytes over one dedicated run *)
}

let brute_coverage positions ~radius =
  (* inline reference for Metrics.Interference.coverage; computes the same
     per-node counts / max / total so both sides do equal work *)
  let n = Array.length positions in
  let covered = Array.make n 0 in
  for u = 0 to n - 1 do
    if radius.(u) > 0. then begin
      let c = ref 0 in
      for v = 0 to n - 1 do
        if v <> u && Geom.Vec2.dist positions.(u) positions.(v) <= radius.(u)
        then incr c
      done;
      covered.(u) <- !c
    end
  done;
  let max_c = Array.fold_left Stdlib.max 0 covered in
  let total = Array.fold_left ( + ) 0 covered in
  (max_c, total)

let perf_json_write path rows =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc "{\n  \"schema\": 2,\n  \"unit\": \"seconds\",\n";
      output_string oc
        "  \"note\": \"best-of-reps wall clock; constant-density fields \
         (avg degree ~25.6); brute_s null when the brute-force run was \
         skipped as too slow; peak_rss_kb is the process VmHWM sampled \
         after the bench (monotone across rows: a row inherits the peak \
         of everything before it); allocations_mb is Gc.allocated_bytes \
         over one dedicated run of the grid/CSR side\",\n";
      output_string oc "  \"results\": [\n";
      List.iteri
        (fun i r ->
          let speedup =
            match r.brute_s with
            | Some b when r.grid_s > 0. ->
                Fmt.str "%.2f" (b /. r.grid_s)
            | _ -> "null"
          in
          let brute =
            match r.brute_s with
            | Some b -> Fmt.str "%.6f" b
            | None -> "null"
          in
          let rss =
            match r.peak_rss_kb with
            | Some kb -> string_of_int kb
            | None -> "null"
          in
          output_string oc
            (Fmt.str
               "    {\"bench\": %S, \"n\": %d, \"brute_s\": %s, \"grid_s\": \
                %.6f, \"speedup\": %s, \"peak_rss_kb\": %s, \
                \"allocations_mb\": %.3f}%s\n"
               r.bench r.n brute r.grid_s speedup rss r.alloc_mb
               (if i = List.length rows - 1 then "" else ",")))
        rows;
      output_string oc "  ]\n}\n")

let run_perf_scaling ~fast ~out_dir =
  section "Spatial grid vs brute force (wall clock, constant density)";
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  let sizes = if fast then [ 100; 400 ] else [ 100; 1000; 10000; 100000 ] in
  let table =
    Metrics.Table.create
      ~columns:
        [ "benchmark"; "n"; "brute (s)"; "grid (s)"; "speedup"; "alloc (MB)";
          "peak RSS (MB)" ]
  in
  let rows = ref [] in
  let record bench n ~brute ~grid ~reps =
    let inner = if n <= 100 then 40 else 1 in
    let grid_s, brute_s =
      match brute with
      | Some f ->
          let g, b = time_pair ~inner ~reps grid f in
          (g, Some b)
      | None -> (time_best ~inner ~reps grid, None)
    in
    (* one dedicated untimed run for the allocation column, so timer
       and allocator accounting never mix *)
    let a0 = Gc.allocated_bytes () in
    ignore (Sys.opaque_identity (grid ()));
    let alloc_mb = (Gc.allocated_bytes () -. a0) /. (1024. *. 1024.) in
    let peak_rss_kb = Obs.Rss.peak_rss_kb () in
    rows := { bench; n; grid_s; brute_s; peak_rss_kb; alloc_mb } :: !rows;
    Metrics.Table.add_row table
      [
        bench;
        string_of_int n;
        (match brute_s with Some b -> Fmt.str "%.4f" b | None -> "skipped");
        Fmt.str "%.4f" grid_s;
        (match brute_s with
        | Some b when grid_s > 0. -> Fmt.str "%.1fx" (b /. grid_s)
        | _ -> "-");
        Fmt.str "%.1f" alloc_mb;
        (match peak_rss_kb with
        | Some kb -> Fmt.str "%.0f" (Stdlib.float_of_int kb /. 1024.)
        | None -> "-");
      ]
  in
  List.iter
    (fun n ->
      let side = 1500. *. Float.sqrt (Stdlib.float_of_int n /. 100.) in
      let sc = Workload.Scenario.make ~n ~width:side ~height:side ~seed:42 () in
      let pl = Workload.Scenario.pathloss sc in
      let positions = Workload.Scenario.positions sc in
      let reps = if n <= 100 then 100 else if n <= 1000 then 3 else 1 in
      let big = n > 1000 in
      (* past 10k nodes the O(n²) references take minutes to hours: the
         grid/CSR side is timed alone and brute_s stays null *)
      let huge = n > 10000 in
      let unless_huge f = if huge then None else Some f in
      record "discovery (oracle CBTC 5pi/6)" n ~reps
        ~grid:(fun () -> Cbtc.Geo.run c56 pl positions)
        ~brute:(unless_huge (fun () -> Cbtc.Geo.Brute.run c56 pl positions));
      record "discovery flat (SoA, no list shim)" n ~reps
        ~grid:(fun () -> Cbtc.Geo.run_flat c56 pl positions)
        ~brute:None;
      record "max-power graph (G_R)" n ~reps
        ~grid:(fun () -> Cbtc.Geo.max_power_graph pl positions)
        ~brute:
          (unless_huge (fun () -> Cbtc.Geo.Brute.max_power_graph pl positions));
      record "Yao k=6" n ~reps
        ~grid:(fun () -> Baselines.Yao.yao pl positions ~k:6)
        ~brute:(unless_huge (fun () -> Baselines.Yao.Brute.yao pl positions ~k:6));
      record "RNG baseline" n ~reps
        ~grid:(fun () -> Baselines.Proximity.rng pl positions)
        ~brute:
          (if big then None
           else Some (fun () -> Baselines.Proximity.Brute.rng pl positions));
      let radius = Array.make n (Radio.Pathloss.max_range pl) in
      record "interference coverage" n ~reps
        ~grid:(fun () -> Metrics.Interference.coverage positions ~radius)
        ~brute:(unless_huge (fun () -> brute_coverage positions ~radius)))
    sizes;
  (* n = 1M: discovery only — the feasibility row for one machine.  The
     flat (SoA) pass is the headline; the list-shim run shows what the
     compatibility layer costs at this scale. *)
  if not fast then begin
    let n = 1_000_000 in
    let side = 1500. *. Float.sqrt (Stdlib.float_of_int n /. 100.) in
    let sc = Workload.Scenario.make ~n ~width:side ~height:side ~seed:42 () in
    let pl = Workload.Scenario.pathloss sc in
    let positions = Workload.Scenario.positions sc in
    record "discovery flat (SoA, no list shim)" n ~reps:1
      ~grid:(fun () -> Cbtc.Geo.run_flat c56 pl positions)
      ~brute:None;
    record "discovery (oracle CBTC 5pi/6)" n ~reps:1
      ~grid:(fun () -> Cbtc.Geo.run c56 pl positions)
      ~brute:None
  end;
  Fmt.pr "%a@." Metrics.Table.pp table;
  let path = Filename.concat out_dir "perf.json" in
  perf_json_write path (List.rev !rows);
  Fmt.pr "wrote %s@." path

(* ------------------------------------------------------------------ *)
(* Streaming daemon capacity (writes <out>/daemon.json, schema 2)      *)
(* ------------------------------------------------------------------ *)

(* End-to-end daemon streams at constant density: the n = 10k row keeps
   the parameters of the historical capacity benchmark (1000 moves/s +
   10 % crash churn with recovery, 20 s of stream) so full_recomputes /
   events_per_s stay comparable across PRs; the n = 100k and n = 1M
   rows are the scale story — move-only streams where the incremental
   path must dominate.  wall_s covers the whole run including the
   initial from-scratch grow and the final verification pass, so
   events_per_s is an end-to-end figure, not a steady-state one. *)

let daemon_json_write path rows =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc "{\n  \"schema\": 2,\n";
      output_string oc
        "  \"note\": \"end-to-end daemon streams at constant density \
         (avg degree ~25.6); wall_s includes the initial grow and the \
         final verification; incremental_fraction is the share of \
         working commits served without a full recompute; peak_rss_kb \
         is the process VmHWM sampled after the row (monotone across \
         rows); allocations_mb is Gc.allocated_bytes over the row's \
         run\",\n";
      output_string oc "  \"results\": [\n";
      List.iteri
        (fun i row ->
          output_string oc "    ";
          output_string oc (Obs.Jsonl.to_string row);
          output_string oc (if i = List.length rows - 1 then "\n" else ",\n"))
        rows;
      output_string oc "  ]\n}\n")

let run_daemon_scaling ~pool ~fast ~out_dir =
  section "Streaming daemon capacity (end-to-end, constant density)";
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  let cases =
    (* (n, duration, move_rate, crash fraction) *)
    if fast then [ (2_000, 5., 200., 0.1) ]
    else
      [
        (10_000, 20., 1000., 0.1);
        (100_000, 30., 1000., 0.);
        (1_000_000, 20., 1000., 0.);
      ]
  in
  let table =
    Metrics.Table.create
      ~columns:
        [ "n"; "events"; "events/s"; "commits"; "fulls"; "incr frac";
          "regrown"; "p95 lat"; "alloc (MB)"; "peak RSS (MB)" ]
  in
  let rows = ref [] in
  List.iter
    (fun (n, duration, move_rate, crash) ->
      let side = 1500. *. Float.sqrt (Stdlib.float_of_int n /. 100.) in
      let sc = Workload.Scenario.make ~n ~width:side ~height:side ~seed:42 () in
      let churn =
        if crash <= 0. then Faults.Plan.empty
        else
          Faults.Plan.random_crashes
            ~prng:(Prng.create ~seed:43)
            ~n ~fraction:crash
            ~window:(0.1 *. duration, 0.6 *. duration)
            ~recover_after:(0.25 *. duration) ()
      in
      let stream =
        {
          Daemon.Driver.seed = 42;
          field = sc.Workload.Scenario.field;
          mobility = Workload.Mobility.default_params;
          move_rate;
          storm = None;
          churn;
          positions = Workload.Scenario.positions sc;
        }
      in
      let params = { Daemon.Driver.default_params with duration } in
      let a0 = Gc.allocated_bytes () in
      let r =
        Daemon.Driver.run ~pool ~clock:Unix.gettimeofday ~params ~config:c56
          ~pathloss:(Workload.Scenario.pathloss sc)
          stream
      in
      let alloc_mb = (Gc.allocated_bytes () -. a0) /. (1024. *. 1024.) in
      let peak_rss_kb = Obs.Rss.peak_rss_kb () in
      let stats = r.Daemon.Driver.engine in
      let incr_frac =
        if stats.Daemon.Engine.commits = 0 then 1.
        else
          Stdlib.float_of_int
            (stats.Daemon.Engine.commits
            - stats.Daemon.Engine.full_recomputes)
          /. Stdlib.float_of_int stats.Daemon.Engine.commits
      in
      let report_fields =
        match
          Daemon.Driver.report_json r ~jobs:(Parallel.Pool.jobs pool)
        with
        | Obs.Jsonl.Obj kvs -> kvs
        | _ -> assert false
      in
      let row =
        Obs.Jsonl.Obj
          ([
             ("bench", Obs.Jsonl.Str "daemon stream");
             ("n", Obs.Jsonl.Int n);
             ("move_rate", Obs.Jsonl.Float move_rate);
             ("crash_frac", Obs.Jsonl.Float crash);
             ("incremental_fraction", Obs.Jsonl.Float incr_frac);
             ( "allocations_mb",
               Obs.Jsonl.Float
                 (Stdlib.Float.round (alloc_mb *. 1000.) /. 1000.) );
             ( "peak_rss_kb",
               match peak_rss_kb with
               | Some kb -> Obs.Jsonl.Int kb
               | None -> Obs.Jsonl.Null );
           ]
          @ report_fields)
      in
      rows := row :: !rows;
      Metrics.Table.add_row table
        [
          string_of_int n;
          string_of_int stats.Daemon.Engine.events;
          (match r.Daemon.Driver.wall_s with
          | Some w when w > 0. ->
              Fmt.str "%.0f"
                (Stdlib.float_of_int stats.Daemon.Engine.events /. w)
          | _ -> "-");
          string_of_int stats.Daemon.Engine.commits;
          string_of_int stats.Daemon.Engine.full_recomputes;
          Fmt.str "%.3f" incr_frac;
          string_of_int stats.Daemon.Engine.regrown;
          (match r.Daemon.Driver.latency with
          | Some l -> Fmt.str "%.3f" l.Daemon.Driver.p95
          | None -> "-");
          Fmt.str "%.1f" alloc_mb;
          (match peak_rss_kb with
          | Some kb -> Fmt.str "%.0f" (Stdlib.float_of_int kb /. 1024.)
          | None -> "-");
        ])
    cases;
  Fmt.pr "%a@." Metrics.Table.pp table;
  let path = Filename.concat out_dir "daemon.json" in
  daemon_json_write path (List.rev !rows);
  Fmt.pr "wrote %s@." path

(* ------------------------------------------------------------------ *)
(* Shadowing: the 5pi/6 threshold under a non-uniform environment      *)
(* ------------------------------------------------------------------ *)

(* The alpha <= 5pi/6 connectivity guarantee is a theorem about the
   pure disc model: G_R is a unit-disc graph and every cone argument
   is geometric.  Under per-link log-normal shadowing the realized
   reachability graph G_R^env keeps no disc structure, so preservation
   becomes an empirical question.  The sweep crosses shadowing depth
   (sigma) x cone degree (alpha) x deployment density, counting the
   seeded deployments whose G_R^env connectivity CBTC preserves —
   mapping where the threshold degrades.  Writes <out>/shadowing.json
   (schema 1, validated by test/validate_shadowing.exe in the
   @bench-smoke alias). *)

let shadowing_json_write path rows =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc "{\n  \"schema\": 1,\n";
      output_string oc
        "  \"note\": \"fraction of seeded deployments whose realized \
         reachability graph G_R^env stays connected under CBTC(alpha), \
         per (sigma_db, alpha, density) cell; sigma_db = 0 is the \
         paper's pure disc model, where alpha <= 5pi/6 preserves \
         connectivity; target_degree is the expected G_R degree of the \
         sigma = 0 disc model at that density\",\n";
      output_string oc "  \"results\": [\n";
      List.iteri
        (fun i row ->
          output_string oc "    ";
          output_string oc (Obs.Jsonl.to_string row);
          output_string oc (if i = List.length rows - 1 then "\n" else ",\n"))
        rows;
      output_string oc "  ]\n}\n")

let run_shadowing ~pool ~fast ~out_dir =
  section "Shadowing: connectivity threshold under sigma x alpha x density";
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  let sigmas = if fast then [ 0.; 4. ] else [ 0.; 2.; 4.; 6. ] in
  let alphas =
    [ ("2pi/3", Geom.Angle.two_pi_three);
      ("5pi/6", Geom.Angle.five_pi_six);
      ("pi", Float.pi) ]
  in
  let n = if fast then 48 else 100 in
  let range = 500. in
  (* density expressed as the expected G_R degree of the disc model:
     deg = n pi R^2 / side^2, so side = sqrt (n pi R^2 / deg) *)
  let degrees = if fast then [ 12.; 28. ] else [ 8.; 16.; 32. ] in
  let trials = if fast then 6 else 30 in
  let seeds = Workload.Scenario.seeds ~base:42 ~count:trials in
  let table =
    Metrics.Table.create
      ~columns:
        [ "sigma"; "alpha"; "GR degree"; "ref conn"; "preserved"; "CBTC deg" ]
  in
  let rows = ref [] in
  List.iter
    (fun sigma ->
      List.iter
        (fun (alabel, alpha) ->
          List.iter
            (fun deg ->
              let side =
                Float.sqrt
                  (Stdlib.float_of_int n *. Float.pi *. range *. range /. deg)
              in
              let trial seed =
                let sc =
                  Workload.Scenario.make ~n ~width:side ~height:side
                    ~max_range:range ~seed ()
                in
                let pl = Workload.Scenario.pathloss sc in
                let positions = Workload.Scenario.positions sc in
                (* one shadowing draw per deployment: the shadow seed
                   follows the placement seed *)
                let env =
                  if sigma = 0. then None
                  else Some (Radio.Env.make ~sigma_db:sigma ~shadow_seed:seed pl)
                in
                let reference =
                  Baselines.Proximity.max_power ?env pl positions
                in
                let r =
                  Cbtc.Pipeline.run_oracle ?env pl positions
                    (Cbtc.Pipeline.all_ops (Cbtc.Config.make alpha))
                in
                ( Graphkit.Traversal.is_connected reference,
                  Metrics.Connectivity.preserves ~reference
                    r.Cbtc.Pipeline.graph,
                  Cbtc.Pipeline.avg_degree r )
              in
              let results =
                Parallel.Pool.map pool trial (Array.of_list seeds)
              in
              let ref_conn = ref 0 and preserved = ref 0 in
              let dsum = ref 0. in
              Array.iter
                (fun (rc, p, d) ->
                  if rc then incr ref_conn;
                  if p then incr preserved;
                  dsum := !dsum +. d)
                results;
              let frac =
                Stdlib.float_of_int !preserved /. Stdlib.float_of_int trials
              in
              let avg_deg = !dsum /. Stdlib.float_of_int trials in
              rows :=
                Obs.Jsonl.Obj
                  [
                    ("bench", Obs.Jsonl.Str "shadowing");
                    ("sigma_db", Obs.Jsonl.Float sigma);
                    ("alpha", Obs.Jsonl.Float alpha);
                    ("alpha_label", Obs.Jsonl.Str alabel);
                    ("n", Obs.Jsonl.Int n);
                    ("side", Obs.Jsonl.Float side);
                    ("target_degree", Obs.Jsonl.Float deg);
                    ("trials", Obs.Jsonl.Int trials);
                    ("ref_connected", Obs.Jsonl.Int !ref_conn);
                    ("preserved", Obs.Jsonl.Int !preserved);
                    ("preserved_frac", Obs.Jsonl.Float frac);
                    ("avg_degree", Obs.Jsonl.Float avg_deg);
                  ]
                :: !rows;
              Metrics.Table.add_row table
                [
                  Fmt.str "%g" sigma;
                  alabel;
                  Fmt.str "%g" deg;
                  Fmt.str "%d/%d" !ref_conn trials;
                  Fmt.str "%d/%d" !preserved trials;
                  Fmt.str "%.1f" avg_deg;
                ])
            degrees)
        alphas)
    sigmas;
  Fmt.pr "%a@." Metrics.Table.pp table;
  let path = Filename.concat out_dir "shadowing.json" in
  shadowing_json_write path (List.rev !rows);
  Fmt.pr "wrote %s@." path

(* ------------------------------------------------------------------ *)
(* Network lifetime (writes <out>/lifetime.json, schema 1)             *)
(* ------------------------------------------------------------------ *)

(* The lifetime study the scheduler exists for: every topology family
   under identical many-to-one load, passive (every node listening,
   per-round Dijkstra — exactly Gather.run) vs scheduled (the
   energy-aware cover-set scheduler of Lifetime.Schedule).  The radio
   is parameterized realistically — listening comparable to receiving —
   because at the library default (rx_overhead = 2000 against
   p(R) = 250000) overhearing is a rounding error and no sleeping
   discipline can matter.  Trials fan out over the pool and fold back
   in seed order, so lifetime.json is byte-identical at every -j; the
   schema and the scheduled > passive pin for the max-power and CBTC
   families are enforced by test/validate_lifetime.exe in the
   @bench-smoke alias. *)

let lifetime_json_write path rows =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc "{\n  \"schema\": 1,\n";
      output_string oc
        "  \"note\": \"mean over seeded trials per (family, mode) cell; \
         lifetime_rounds is the service-rounds scalar (rounds in which \
         at least half the original non-sink population reaches the \
         sink); first_death is censored at the simulation horizon; \
         mode = passive is Gather.run (rotation_period = 0), \
         mode = scheduled is the cover-set scheduler\",\n";
      output_string oc "  \"results\": [\n";
      List.iteri
        (fun i row ->
          output_string oc "    ";
          output_string oc (Obs.Jsonl.to_string row);
          output_string oc (if i = List.length rows - 1 then "\n" else ",\n"))
        rows;
      output_string oc "  ]\n}\n")

let run_lifetime ~pool ~fast ~out_dir =
  section "Network lifetime: cover-set scheduler vs passive gathering";
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  let n = 60 in
  let trials = if fast then 5 else 10 in
  let params =
    { Lifetime.Gather.default_params with
      capacity = 5e7; rx_overhead = 40000.; max_rounds = 4000 }
  in
  let modes =
    [ ("passive", Lifetime.Schedule.passive);
      ("scheduled", Lifetime.Schedule.default_policy) ]
  in
  let seeds = Workload.Scenario.seeds ~base:42 ~count:trials in
  let table =
    Metrics.Table.create
      ~columns:
        [ "family"; "mode"; "lifetime"; "first death"; "delivered";
          "covers"; "energy/pkt" ]
  in
  let rows = ref [] in
  List.iter
    (fun family ->
      List.iter
        (fun (mode, policy) ->
          let trial seed =
            let sc = Workload.Scenario.make ~n ~seed () in
            let pl = Workload.Scenario.pathloss sc in
            let positions = Workload.Scenario.positions sc in
            (* builders run single-threaded inside each trial: the
               pool's parallelism is spent across seeds *)
            let topology = Lifetime.Schedule.family_builder family pl in
            let r =
              Lifetime.Schedule.run ~params ~policy pl positions ~sink:0
                ~topology
            in
            let o = r.Lifetime.Schedule.outcome in
            ( Lifetime.Schedule.total_lifetime r,
              (match o.Lifetime.Gather.first_death with
              | Some k -> k
              | None -> o.Lifetime.Gather.rounds_completed),
              o.Lifetime.Gather.packets_delivered,
              o.Lifetime.Gather.packets_dropped,
              r.Lifetime.Schedule.cover_sets,
              r.Lifetime.Schedule.epochs,
              r.Lifetime.Schedule.awake_node_rounds,
              r.Lifetime.Schedule.energy_per_delivered )
          in
          let results =
            Parallel.Pool.map pool trial (Array.of_list seeds)
          in
          let mean f =
            Array.fold_left (fun acc r -> acc +. f r) 0. results
            /. Stdlib.float_of_int trials
          in
          let fi = Stdlib.float_of_int in
          let lifetime = mean (fun (l, _, _, _, _, _, _, _) -> fi l) in
          let first_death = mean (fun (_, f, _, _, _, _, _, _) -> fi f) in
          let delivered = mean (fun (_, _, d, _, _, _, _, _) -> fi d) in
          let dropped = mean (fun (_, _, _, d, _, _, _, _) -> fi d) in
          let covers = mean (fun (_, _, _, _, c, _, _, _) -> fi c) in
          let epochs = mean (fun (_, _, _, _, _, e, _, _) -> fi e) in
          let awake = mean (fun (_, _, _, _, _, _, a, _) -> fi a) in
          let epd = mean (fun (_, _, _, _, _, _, _, e) -> e) in
          rows :=
            Obs.Jsonl.Obj
              [
                ("bench", Obs.Jsonl.Str "lifetime");
                ("family",
                 Obs.Jsonl.Str (Lifetime.Schedule.family_label family));
                ("mode", Obs.Jsonl.Str mode);
                ("n", Obs.Jsonl.Int n);
                ("trials", Obs.Jsonl.Int trials);
                ("capacity",
                 Obs.Jsonl.Float params.Lifetime.Gather.capacity);
                ("rx_overhead",
                 Obs.Jsonl.Float params.Lifetime.Gather.rx_overhead);
                ("rotation_period",
                 Obs.Jsonl.Int policy.Lifetime.Schedule.rotation_period);
                ("duty", Obs.Jsonl.Float policy.Lifetime.Schedule.duty);
                ("idle_listen",
                 Obs.Jsonl.Float policy.Lifetime.Schedule.idle_listen);
                ("lifetime_rounds", Obs.Jsonl.Float lifetime);
                ("first_death", Obs.Jsonl.Float first_death);
                ("delivered", Obs.Jsonl.Float delivered);
                ("dropped", Obs.Jsonl.Float dropped);
                ("cover_sets", Obs.Jsonl.Float covers);
                ("epochs", Obs.Jsonl.Float epochs);
                ("awake_node_rounds", Obs.Jsonl.Float awake);
                ("energy_per_delivered", Obs.Jsonl.Float epd);
              ]
            :: !rows;
          Metrics.Table.add_row table
            [
              Lifetime.Schedule.family_label family;
              mode;
              Fmt.str "%.1f" lifetime;
              Fmt.str "%.1f" first_death;
              Fmt.str "%.0f" delivered;
              Fmt.str "%.1f" covers;
              Fmt.str "%.3g" epd;
            ])
        modes)
    Lifetime.Schedule.families;
  Fmt.pr "%a@." Metrics.Table.pp table;
  let path = Filename.concat out_dir "lifetime.json" in
  lifetime_json_write path (List.rev !rows);
  Fmt.pr "wrote %s@." path

(* ------------------------------------------------------------------ *)
(* Parallel scaling (domain pool)                                      *)
(* ------------------------------------------------------------------ *)

(* Times the two representative parallel shapes — trial-level fan-out
   over whole networks and node-level chunking inside one large
   discovery — at -j 1/2/4, and checks that every level produces
   bit-identical results (digest over a full-precision rendering).
   Wall-clock speedups only show on multi-core hosts; the determinism
   check is meaningful everywhere.  Writes <out>/parallel.json. *)

let parallel_json_write path ~host_cores rows =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc "{\n  \"schema\": 1,\n  \"unit\": \"seconds\",\n";
      output_string oc
        "  \"note\": \"wall clock per jobs level; speedup_vs_j1 > 1 \
         requires a multi-core host; identical compares result digests \
         against the -j 1 run\",\n";
      output_string oc (Fmt.str "  \"host_cores\": %d,\n" host_cores);
      output_string oc "  \"results\": [\n";
      List.iteri
        (fun i (workload, jobs, wall, speedup, identical) ->
          output_string oc
            (Fmt.str
               "    {\"workload\": %S, \"jobs\": %d, \"wall_s\": %.6f, \
                \"speedup_vs_j1\": %.3f, \"identical\": %b}%s\n"
               workload jobs wall speedup identical
               (if i = List.length rows - 1 then "" else ",")))
        rows;
      output_string oc "  ]\n}\n")

let run_parallel_bench ~fast ~out_dir =
  section "Parallel scaling: domain pool at -j 1/2/4 (determinism checked)";
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  let host_cores = Domain.recommended_domain_count () in
  let trial_seeds =
    Workload.Scenario.seeds ~base:42 ~count:(if fast then 10 else 100)
  in
  (* workload (a): Monte-Carlo sweep, one task per network *)
  let sweep_digest pool =
    let buf = Buffer.create 4096 in
    let trials =
      Parallel.Pool.map pool (fun s -> table1_trial s) (Array.of_list trial_seeds)
    in
    Array.iter
      (fun (vals, broken) ->
        List.iter
          (fun (d, r) -> Buffer.add_string buf (Fmt.str "%.17g,%.17g;" d r))
          vals;
        Buffer.add_string buf (if broken then "!" else "."))
      trials;
    Digest.to_hex (Digest.string (Buffer.contents buf))
  in
  (* workload (b): one large oracle discovery, chunked over nodes *)
  let n_big = if fast then 2000 else 10000 in
  let side = 1500. *. Float.sqrt (Stdlib.float_of_int n_big /. 100.) in
  let sc_big =
    Workload.Scenario.make ~n:n_big ~width:side ~height:side ~seed:42 ()
  in
  let pl_big = Workload.Scenario.pathloss sc_big in
  let pos_big = Workload.Scenario.positions sc_big in
  let discovery_digest pool =
    let d = Cbtc.Geo.run ~pool c56 pl_big pos_big in
    let buf = Buffer.create (16 * n_big) in
    Array.iteri
      (fun u p ->
        Buffer.add_string buf
          (Fmt.str "%d:%.17g:%b:%d;" u p
             d.Cbtc.Discovery.boundary.(u)
             (List.length d.Cbtc.Discovery.neighbors.(u))))
      d.Cbtc.Discovery.power;
    Digest.to_hex (Digest.string (Buffer.contents buf))
  in
  let workloads =
    [
      ( Fmt.str "monte-carlo sweep (%d networks, trial-level)"
          (List.length trial_seeds),
        sweep_digest );
      (Fmt.str "oracle discovery (n=%d, node-level)" n_big, discovery_digest);
    ]
  in
  let table =
    Metrics.Table.create
      ~columns:[ "workload"; "jobs"; "wall (s)"; "speedup"; "identical" ]
  in
  let rows = ref [] in
  let all_identical = ref true in
  List.iter
    (fun (name, run) ->
      let base_digest = ref "" and base_time = ref 0. in
      List.iter
        (fun jobs ->
          Parallel.Pool.with_pool ~jobs (fun pool ->
              let t0 = Unix.gettimeofday () in
              let digest = run pool in
              let wall = Unix.gettimeofday () -. t0 in
              if jobs = 1 then begin
                base_digest := digest;
                base_time := wall
              end;
              let identical = String.equal digest !base_digest in
              if not identical then all_identical := false;
              let speedup = if wall > 0. then !base_time /. wall else 0. in
              rows := (name, jobs, wall, speedup, identical) :: !rows;
              Metrics.Table.add_row table
                [
                  name; string_of_int jobs; Fmt.str "%.3f" wall;
                  Fmt.str "%.2fx" speedup; string_of_bool identical;
                ]))
        [ 1; 2; 4 ])
    workloads;
  Fmt.pr "%a@." Metrics.Table.pp table;
  Fmt.pr
    "host cores: %d (speedup needs a multi-core host; identity must hold \
     everywhere)@."
    host_cores;
  let path = Filename.concat out_dir "parallel.json" in
  parallel_json_write path ~host_cores (List.rev !rows);
  Fmt.pr "wrote %s@." path;
  if not !all_identical then begin
    Fmt.epr "parallel: NON-DETERMINISTIC results across jobs levels@.";
    exit 1
  end

let run_perf ~fast () =
  section "Microbenchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  let sc = Workload.Scenario.paper ~seed:42 in
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  let d56 = Cbtc.Geo.run c56 pl positions in
  let closure = Cbtc.Discovery.closure d56 in
  let dirs =
    List.init 24 (fun i -> Stdlib.float_of_int i *. Geom.Angle.two_pi /. 24.)
  in
  let dist_cfg = Cbtc.Config.make ~growth:(Cbtc.Config.Double 100.) alpha56 in
  let tests =
    [
      Test.make ~name:"gap-test (24 dirs)"
        (Staged.stage (fun () -> Geom.Dirset.has_gap ~alpha:alpha56 dirs));
      Test.make ~name:"oracle CBTC(5pi/6), 100 nodes"
        (Staged.stage (fun () -> Cbtc.Geo.run c56 pl positions));
      Test.make ~name:"shrink-back, 100 nodes"
        (Staged.stage (fun () -> Cbtc.Optimize.shrink_back d56));
      Test.make ~name:"pairwise removal, 100 nodes"
        (Staged.stage (fun () -> Cbtc.Optimize.pairwise ~positions closure));
      Test.make ~name:"full pipeline all-ops, 100 nodes"
        (Staged.stage (fun () ->
             Cbtc.Pipeline.run_oracle pl positions (Cbtc.Pipeline.all_ops c56)));
      Test.make ~name:"distributed run, 100 nodes"
        (Staged.stage (fun () -> Cbtc.Distributed.run dist_cfg pl positions));
      Test.make ~name:"components, 100 nodes"
        (Staged.stage (fun () -> Graphkit.Traversal.components closure));
    ]
  in
  let cfg =
    if fast then Benchmark.cfg ~limit:50 ~quota:(Time.second 0.05) ()
    else Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ()
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ Instance.monotonic_clock ] test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name r ->
          match Analyze.OLS.estimates r with
          | Some (ns :: _) when ns >= 1e6 ->
              Fmt.pr "  %-36s %8.2f ms/run@." name (ns /. 1e6)
          | Some (ns :: _) when ns >= 1e3 ->
              Fmt.pr "  %-36s %8.2f us/run@." name (ns /. 1e3)
          | Some (ns :: _) -> Fmt.pr "  %-36s %8.1f ns/run@." name ns
          | Some [] | None -> Fmt.pr "  %-36s (no estimate)@." name)
        analyzed)
    tests

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let seeds_count = ref 100 in
  let out_dir = ref "bench_out" in
  let fast = ref false in
  let jobs = ref None in
  let trace_out = ref None in
  let metrics_out = ref None in
  let sections = ref [] in
  let rec parse = function
    | [] -> ()
    | "--seeds" :: v :: rest ->
        seeds_count := int_of_string v;
        parse rest
    | "--out" :: v :: rest ->
        if String.trim v = "" then (
          Fmt.epr "main.exe: --out requires a non-empty directory@.";
          exit 2);
        out_dir := v;
        parse rest
    | "--trace-out" :: v :: rest when String.trim v <> "" ->
        trace_out := Some v;
        parse rest
    | "--metrics-out" :: v :: rest when String.trim v <> "" ->
        metrics_out := Some v;
        parse rest
    | ("--trace-out" | "--metrics-out") :: _ ->
        Fmt.epr "main.exe: --trace-out/--metrics-out require a file path@.";
        exit 2
    | ("-j" | "--jobs") :: v :: rest ->
        (match int_of_string_opt v with
        | Some j when j >= 1 && j <= 1024 -> jobs := Some j
        | Some _ | None ->
            Fmt.epr "main.exe: -j expects an integer in [1, 1024] (got %S)@."
              v;
            exit 2);
        parse rest
    | "--fast" :: rest ->
        seeds_count := 10;
        fast := true;
        parse rest
    | s :: rest ->
        sections := s :: !sections;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let jobs =
    match !jobs with
    | Some j -> j
    | None -> (
        try Parallel.Pool.default_jobs ()
        with Invalid_argument msg ->
          Fmt.epr "main.exe: %s@." msg;
          exit 2)
  in
  let seeds = Workload.Scenario.seeds ~base:42 ~count:!seeds_count in
  let want s = !sections = [] || List.mem s !sections in
  Fmt.pr "CBTC reproduction benchmarks (%d networks per table, -j %d)@."
    !seeds_count jobs;
  (* Observability sinks open before any benchmark runs, so a bad path
     fails in milliseconds.  The harness recorder is clocked: this
     binary exists to measure time, so spans carry durations and the
     pool records task latencies (at the price of non-reproducible
     trace bytes — the CLI is the reproducible surface). *)
  let open_sink = function
    | None -> None
    | Some path -> (
        try Some (open_out path)
        with Sys_error e ->
          Fmt.epr "main.exe: cannot open output file: %s@." e;
          exit 2)
  in
  let trace_oc = open_sink !trace_out in
  let metrics_oc = open_sink !metrics_out in
  let obs =
    match (trace_oc, metrics_oc) with
    | None, None -> Obs.Recorder.nil
    | _ -> Obs.Recorder.create ~clock:Unix.gettimeofday ()
  in
  Obs.Recorder.set_str obs "command" "bench";
  Obs.Recorder.set_int obs "seeds" !seeds_count;
  Obs.Recorder.set_int obs "jobs" jobs;
  Obs.Recorder.set obs "fast" (Obs.Jsonl.Bool !fast);
  Obs.Recorder.set_str obs "sections"
    (match !sections with [] -> "all" | l -> String.concat "," (List.rev l));
  let pool = Parallel.Pool.create ~obs ~jobs () in
  let sect name f = Obs.Recorder.span obs name f in
  Fun.protect
    ~finally:(fun () ->
      Parallel.Pool.shutdown pool;
      (* VmHWM is a process-lifetime high-water mark, so sampling once
         at write time covers every section that ran *)
      Obs.Recorder.set obs "peak_rss_kb"
        (match Obs.Rss.peak_rss_kb () with
        | Some kb -> Obs.Jsonl.Int kb
        | None -> Obs.Jsonl.Null);
      Option.iter
        (fun oc ->
          Obs.Recorder.write_trace obs oc;
          close_out oc)
        trace_oc;
      Option.iter
        (fun oc ->
          Obs.Recorder.write_summary obs oc;
          close_out oc)
        metrics_oc)
    (fun () ->
      if want "table1" then sect "table1" (fun () -> run_table1 ~pool ~obs ~seeds);
      if want "figures" then sect "figures" run_figures;
      if want "figure6" then
        sect "figure6" (fun () -> run_figure6 ~out_dir:!out_dir);
      if want "connectivity" then
        sect "connectivity" (fun () ->
            run_connectivity ~pool
              ~seeds:
                (Workload.Scenario.seeds ~base:42
                   ~count:(Stdlib.min 30 !seeds_count)));
      if want "ablations" then
        sect "ablations" (fun () -> run_ablations ~pool ~seeds);
      if want "extensions" then
        sect "extensions" (fun () -> run_extensions ~seeds);
      if want "series" then
        sect "series" (fun () -> run_series ~pool ~seeds ~out_dir:!out_dir);
      if want "parallel" then
        sect "parallel" (fun () ->
            run_parallel_bench ~fast:!fast ~out_dir:!out_dir);
      if want "daemon" then
        sect "daemon" (fun () ->
            run_daemon_scaling ~pool ~fast:!fast ~out_dir:!out_dir);
      if want "shadowing" then
        sect "shadowing" (fun () ->
            run_shadowing ~pool ~fast:!fast ~out_dir:!out_dir);
      if want "lifetime" then
        sect "lifetime" (fun () ->
            run_lifetime ~pool ~fast:!fast ~out_dir:!out_dir);
      if want "perf" then
        sect "perf" (fun () ->
            run_perf_scaling ~fast:!fast ~out_dir:!out_dir;
            run_perf ~fast:!fast ()));
  Fmt.pr "@.done.@."
