(* Dev-only phase profiler for the flat discovery kernel; not wired
   into any alias.  Usage: dune exec bench/profile_flat.exe -- [n]. *)

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 100_000 in
  let side = 1500. *. Float.sqrt (Stdlib.float_of_int n /. 100.) in
  let sc = Workload.Scenario.make ~n ~width:side ~height:side ~max_range:500. ~seed:42 () in
  let pl = Workload.Scenario.pathloss sc in
  let positions = Workload.Scenario.positions sc in
  let config = Cbtc.Config.make Geom.Angle.five_pi_six in
  let phase name f =
    Gc.compact ();
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let t1 = Unix.gettimeofday () in
    let a1 = Gc.allocated_bytes () in
    Fmt.pr "%-28s %8.3f s  %8.1f MB alloc@." name (t1 -. t0)
      ((a1 -. a0) /. 1048576.);
    r
  in
  let grid =
    phase "grid build" (fun () ->
        Geom.Grid.create ~range:(Radio.Pathloss.max_range pl) positions)
  in
  ignore (Sys.opaque_identity grid);
  let soa = phase "run_flat (total)" (fun () -> Cbtc.Geo.run_flat config pl positions) in
  Fmt.pr "rows: %d@." (Array.length soa.Cbtc.Soa.ids);
  let d = phase "to_discovery" (fun () -> Cbtc.Soa.to_discovery soa) in
  ignore (Sys.opaque_identity d)
