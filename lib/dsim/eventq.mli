(** Pending-event queue for the simulator: a binary min-heap ordered by
    (time, priority, insertion sequence).

    How same-timestamp ties break is governed by the queue's {!policy}:

    - {!Fifo} (the default) assigns every event the same priority, so
      simultaneous events fire in insertion order — bit-identical to the
      historical behaviour, and a determinism requirement for
      reproducible runs.
    - [Seeded seed] draws one priority per push from a dedicated
      splitmix64 stream: any group of same-timestamp events fires in a
      uniformly random permutation, deterministic in [seed] and the push
      sequence.  This is the engine of schedule exploration
      ({!Check.Explore}): the protocol's guarantees must hold under
      {e every} tie order, not just the FIFO one.
    - [Replay prios] replays a recorded decision log: push [i] gets
      priority [prios.(i)]; pushes beyond the log fall back to the Fifo
      priority.  Truncating the log therefore perturbs only a prefix of
      the schedule — the shrinking move of {!Check.Shrink}.

    Events pushed with equal times {e and} equal priorities still fire
    in insertion order, so every policy is fully deterministic. *)

type policy = Fifo | Seeded of int | Replay of int array

(** Exclusive upper bound of assigned priorities ([2{^30}]). *)
val prio_bound : int

type 'a t

val create : ?policy:policy -> unit -> 'a t

(** The policy the queue was created with. *)
val policy : 'a t -> policy

(** [log t] is the priority assigned to each push so far, in push order —
    the decision log.  Recorded only for non-[Fifo] policies (empty for
    [Fifo]); replaying it with [Replay] reproduces the schedule exactly. *)
val log : 'a t -> int array

val is_empty : 'a t -> bool

val size : 'a t -> int

(** [push t ~time v] enqueues [v] at [time]. *)
val push : 'a t -> time:float -> 'a -> unit

(** [pop t] removes and returns the earliest event as [(time, v)].
    @raise Not_found when empty. *)
val pop : 'a t -> float * 'a

(** [peek_time t] is the time of the earliest event without removing it. *)
val peek_time : 'a t -> float option
