(** Pending-event queue for the simulator: a binary min-heap ordered by
    (time, insertion sequence), so simultaneous events fire in FIFO
    order — a determinism requirement for reproducible runs. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

(** [push t ~time v] enqueues [v] at [time]. *)
val push : 'a t -> time:float -> 'a -> unit

(** [pop t] removes and returns the earliest event as [(time, v)].
    @raise Not_found when empty. *)
val pop : 'a t -> float * 'a

(** [peek_time t] is the time of the earliest event without removing it. *)
val peek_time : 'a t -> float option
