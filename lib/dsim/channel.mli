(** Channel fault models.

    Section 4 of the paper relaxes the reliable synchronous channel to an
    asynchronous one where messages may be lost or duplicated.  A channel
    configuration describes per-delivery behaviour; {!deliver} turns one
    logical transmission into zero or more scheduled receive events. *)

type t = {
  loss : float;  (** independent probability a copy is dropped *)
  duplicate : float;  (** probability an extra copy is delivered *)
  min_delay : float;  (** lower bound on propagation + processing delay *)
  max_delay : float;  (** upper bound (uniform between the bounds) *)
}

(** Lossless, duplicate-free, unit delay — the paper's synchronous model. *)
val reliable : t

(** [make ?loss ?duplicate ?min_delay ?max_delay ()] with defaults equal
    to {!reliable}.
    @raise Invalid_argument on probabilities outside [0, 1) for loss /
    [0, 1\] for duplicate, or an empty or negative delay range. *)
val make :
  ?loss:float ->
  ?duplicate:float ->
  ?min_delay:float ->
  ?max_delay:float ->
  unit ->
  t

(** [deliver t sim prng f] schedules [f] for each surviving copy of one
    transmission: the primary copy survives with probability [1 - loss];
    an extra duplicate is delivered with probability [duplicate] (also
    subject to loss).  Returns the number of copies scheduled. *)
val deliver : t -> Sim.t -> Prng.t -> (unit -> unit) -> int
