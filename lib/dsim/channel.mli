(** Channel fault models.

    Section 4 of the paper relaxes the reliable synchronous channel to an
    asynchronous one where messages may be lost or duplicated.  A channel
    configuration describes per-delivery behaviour; {!deliver} turns one
    logical transmission into zero or more scheduled receive events.

    Two loss processes are supported:

    - {e Bernoulli}: every copy is dropped independently with a fixed
      probability — the memoryless model of the paper's Section 4.
    - {e Gilbert–Elliott}: a two-state Markov chain (Good/Bad) advanced
      once per transmitted copy, with a state-dependent drop probability.
      Real radio links lose packets in {e bursts} (fading, interference,
      multipath — see Sethu & Gerety, arXiv 0709.0961); the chain spends
      geometrically-distributed runs in each state, so losses cluster
      while the long-run mean loss stays analytically known
      ({!mean_loss}).  The chain state is kept {e per link} (keyed by the
      [(src, dst)] pair given to {!deliver}), because bursts on distinct
      links are independent; deliveries without an explicit link share
      one anonymous chain. *)

(** The per-copy loss process. *)
type loss_model =
  | Bernoulli of float  (** independent drop probability, in [0, 1) *)
  | Gilbert_elliott of {
      p_gb : float;  (** P(Good -> Bad) per transmission, in (0, 1] *)
      p_bg : float;  (** P(Bad -> Good) per transmission, in (0, 1] *)
      loss_good : float;  (** drop probability in Good, in [0, 1) *)
      loss_bad : float;  (** drop probability in Bad, in [0, 1] *)
    }

type t = {
  loss : loss_model;  (** per-copy loss process (see {!loss_model}) *)
  duplicate : float;  (** probability an extra copy is delivered *)
  min_delay : float;  (** lower bound on propagation + processing delay *)
  max_delay : float;  (** upper bound (uniform between the bounds) *)
  burst_state : (int * int, bool) Hashtbl.t;
      (** per-link Gilbert–Elliott chain state ([true] = Bad); empty and
          unused for [Bernoulli] channels.  Mutable: create a fresh
          channel per simulation for reproducible runs. *)
}

(** Lossless, duplicate-free, unit delay — the paper's synchronous model. *)
val reliable : t

(** [make ?loss ?duplicate ?min_delay ?max_delay ()] builds a Bernoulli
    channel, with defaults equal to {!reliable}.

    Parameter contract (checked in this order, each violation raising
    [Invalid_argument] with the message shown):
    - [loss] must lie in [0, 1) — a channel losing {e every} message can
      never deliver anything, so [1.] is rejected
      ("Channel.make: loss out of [0,1)");
    - [duplicate] must lie in [0, 1] — [1.] is allowed and means every
      transmission is duplicated ("Channel.make: duplicate out of [0,1]");
    - [min_delay] must be [>= 0.] and [max_delay >= min_delay] — equal
      bounds give a deterministic delay, as in {!reliable}
      ("Channel.make: bad delay range"). *)
val make :
  ?loss:float ->
  ?duplicate:float ->
  ?min_delay:float ->
  ?max_delay:float ->
  unit ->
  t

(** [gilbert_elliott ~p_gb ~p_bg ?loss_good ~loss_bad ?duplicate
    ?min_delay ?max_delay ()] builds a burst-loss channel.
    [loss_good] defaults to [0.].  Mean burst length in the Bad state is
    [1 /. p_bg] transmissions.

    @raise Invalid_argument unless [p_gb] and [p_bg] are in (0, 1],
    [loss_good] in [0, 1), [loss_bad] in [0, 1], and the duplicate/delay
    parameters satisfy the {!make} contract. *)
val gilbert_elliott :
  p_gb:float ->
  p_bg:float ->
  ?loss_good:float ->
  loss_bad:float ->
  ?duplicate:float ->
  ?min_delay:float ->
  ?max_delay:float ->
  unit ->
  t

(** [copy t] is a channel with [t]'s configuration and a {e fresh} burst
    state: every Gilbert–Elliott chain starts in Good, exactly as a
    channel newly built from the same parameters would.  Use one copy
    per trial whenever a loop (or a parallel sweep) would otherwise
    reuse a single channel — the chains' mutable state must not leak
    from one simulation into the next, and sharing one [burst_state]
    table across domains is a data race.  For [Bernoulli] channels the
    copy is behaviourally identical to the original. *)
val copy : t -> t

(** [mean_loss t] is the long-run per-copy drop probability: the Bernoulli
    parameter, or the Gilbert–Elliott loss weighted by the chain's
    stationary distribution
    [pi_bad = p_gb /. (p_gb +. p_bg)]. *)
val mean_loss : t -> float

(** [burstiness t] is the expected Bad-state sojourn in transmissions
    ([1 /. p_bg]; [1.] for Bernoulli channels — losses never cluster). *)
val burstiness : t -> float

(** [deliver t ?link sim prng f] schedules [f] for each surviving copy of
    one transmission: the primary copy survives the loss process; an
    extra duplicate is delivered with probability [duplicate] (also
    subject to loss).  For Gilbert–Elliott channels, [link] selects the
    chain advanced by this transmission (default: a single anonymous
    chain).  Returns the number of copies scheduled. *)
val deliver : t -> ?link:int * int -> Sim.t -> Prng.t -> (unit -> unit) -> int
