type t = {
  sim : Sim.t;
  interval : float;
  action : unit -> unit;
  mutable active : bool;
  mutable fires : int;
  mutable pending : Sim.handle option;
}

let rec arm t ~delay =
  t.pending <-
    Some
      (Sim.schedule t.sim ~delay (fun () ->
           if t.active then begin
             t.fires <- t.fires + 1;
             t.action ();
             (* the action may have stopped us *)
             if t.active then arm t ~delay:t.interval
           end))

let start sim ?initial_delay ~interval action =
  if interval <= 0. then invalid_arg "Periodic.start: non-positive interval";
  let initial = Option.value ~default:interval initial_delay in
  if initial < 0. then invalid_arg "Periodic.start: negative initial delay";
  let t = { sim; interval; action; active = true; fires = 0; pending = None } in
  arm t ~delay:initial;
  t

let stop t =
  t.active <- false;
  Option.iter Sim.cancel t.pending;
  t.pending <- None

let is_active t = t.active

let fires t = t.fires
