type handle = { mutable cancelled : bool; action : unit -> unit }

type t = {
  mutable now : float;
  queue : handle Eventq.t;
  mutable fired : int;
  obs : Obs.Recorder.t;
}

let create ?(obs = Obs.Recorder.nil) ?(policy = Eventq.Fifo) () =
  { now = 0.; queue = Eventq.create ~policy (); fired = 0; obs }

let now t = t.now

let policy t = Eventq.policy t.queue

let schedule_log t = Eventq.log t.queue

let schedule_at t ~time f =
  if time < t.now then invalid_arg "Sim.schedule_at: time in the past";
  let h = { cancelled = false; action = f } in
  Eventq.push t.queue ~time h;
  h

let schedule t ~delay f =
  if delay < 0. then invalid_arg "Sim.schedule: negative delay";
  schedule_at t ~time:(t.now +. delay) f

let cancel h = h.cancelled <- true

let pending t = Eventq.size t.queue

let fire t time h =
  t.now <- time;
  if not h.cancelled then begin
    t.fired <- t.fired + 1;
    Obs.Recorder.incr t.obs "sim.events_fired";
    h.action ()
  end

let step t =
  match Eventq.pop t.queue with
  | exception Not_found -> false
  | time, h ->
      fire t time h;
      true

let run t =
  let before = t.fired in
  while step t do
    ()
  done;
  t.fired - before

let run_until t ~time =
  if time < t.now then invalid_arg "Sim.run_until: time in the past";
  let before = t.fired in
  let continue = ref true in
  while !continue do
    match Eventq.peek_time t.queue with
    | Some next when next <= time ->
        let fire_time, h = Eventq.pop t.queue in
        fire t fire_time h
    | Some _ | None -> continue := false
  done;
  t.now <- time;
  t.fired - before

let events_fired t = t.fired
