(** Recurring timers over the simulation engine.

    Beaconing protocols (the paper's NDP) and watchdog checks are
    periodic; this wraps the schedule-reschedule pattern with a stop
    handle. *)

type t

(** [start sim ?initial_delay ~interval f] runs [f ()] at
    [now + initial_delay] (default [interval]) and then every [interval]
    until {!stop}.  [f] may call {!stop} on its own timer.
    @raise Invalid_argument for a non-positive interval or negative
    initial delay. *)
val start :
  Sim.t -> ?initial_delay:float -> interval:float -> (unit -> unit) -> t

(** [stop t] halts the recurrence (idempotent; pending fire is
    cancelled). *)
val stop : t -> unit

val is_active : t -> bool

(** [fires t] counts completed invocations. *)
val fires : t -> int
