type policy = Fifo | Seeded of int | Replay of int array

(* Priorities are drawn below this bound; ties between equal priorities
   fall back to FIFO (insertion sequence), so even colliding draws keep
   the order fully deterministic. *)
let prio_bound = 1 lsl 30

type 'a entry = { time : float; prio : int; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
  policy : policy;
  prng : Prng.t option;  (* Some iff policy is Seeded *)
  replay : int array;  (* the Replay log; [||] otherwise *)
  mutable log_rev : int list;  (* assigned priorities, push order; [] for Fifo *)
}

let create ?(policy = Fifo) () =
  let prng, replay =
    match policy with
    | Fifo -> (None, [||])
    | Seeded seed -> (Some (Prng.create ~seed), [||])
    | Replay prios -> (None, prios)
  in
  { heap = Array.make 64 None; size = 0; next_seq = 0; policy; prng; replay;
    log_rev = [] }

let policy t = t.policy

let log t = Array.of_list (List.rev t.log_rev)

let is_empty t = t.size = 0

let size t = t.size

let before a b =
  a.time < b.time
  || (a.time = b.time
     && (a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)))

let get t i = match t.heap.(i) with Some e -> e | None -> assert false

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before (get t i) (get t parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let first = ref i in
  if l < t.size && before (get t l) (get t !first) then first := l;
  if r < t.size && before (get t r) (get t !first) then first := r;
  if !first <> i then begin
    swap t i !first;
    sift_down t !first
  end

(* The priority of the next push.  Fifo assigns a constant, so the
   (time, prio, seq) order degenerates to the historical (time, seq)
   order bit-for-bit.  Seeded draws one splitmix64 value per push —
   among any set of same-timestamp events this yields a uniformly random
   permutation, deterministic in the seed and the push sequence.  Replay
   reuses a recorded log by push index; pushes beyond the log fall back
   to the Fifo constant, which is what makes log-prefix shrinking
   meaningful. *)
let next_prio t =
  match t.policy with
  | Fifo -> 0
  | Seeded _ -> Prng.int (Option.get t.prng) prio_bound
  | Replay _ ->
      if t.next_seq < Array.length t.replay then t.replay.(t.next_seq) else 0

let push t ~time value =
  if Float.is_nan time then invalid_arg "Eventq.push: nan time";
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) None in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  let prio = next_prio t in
  if t.policy <> Fifo then t.log_rev <- prio :: t.log_rev;
  t.heap.(t.size) <- Some { time; prio; seq = t.next_seq; value };
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then raise Not_found;
  let e = get t 0 in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- None;
  if t.size > 0 then sift_down t 0;
  (e.time, e.value)

let peek_time t = if t.size = 0 then None else Some (get t 0).time
