type t = {
  loss : float;
  duplicate : float;
  min_delay : float;
  max_delay : float;
}

let reliable = { loss = 0.; duplicate = 0.; min_delay = 1.; max_delay = 1. }

let make ?(loss = 0.) ?(duplicate = 0.) ?(min_delay = 1.) ?(max_delay = 1.) () =
  if loss < 0. || loss >= 1. then invalid_arg "Channel.make: loss out of [0,1)";
  if duplicate < 0. || duplicate > 1. then
    invalid_arg "Channel.make: duplicate out of [0,1]";
  if min_delay < 0. || max_delay < min_delay then
    invalid_arg "Channel.make: bad delay range";
  { loss; duplicate; min_delay; max_delay }

let random_delay t prng =
  if t.max_delay = t.min_delay then t.min_delay
  else Prng.uniform prng ~lo:t.min_delay ~hi:t.max_delay

let deliver t sim prng f =
  let copies = ref 0 in
  let attempt () =
    if not (Prng.bool prng ~p:t.loss) then begin
      incr copies;
      ignore (Sim.schedule sim ~delay:(random_delay t prng) f)
    end
  in
  attempt ();
  if t.duplicate > 0. && Prng.bool prng ~p:t.duplicate then attempt ();
  !copies
