type loss_model =
  | Bernoulli of float
  | Gilbert_elliott of {
      p_gb : float;
      p_bg : float;
      loss_good : float;
      loss_bad : float;
    }

type t = {
  loss : loss_model;
  duplicate : float;
  min_delay : float;
  max_delay : float;
  burst_state : (int * int, bool) Hashtbl.t;
}

let check_common ~duplicate ~min_delay ~max_delay =
  if duplicate < 0. || duplicate > 1. then
    invalid_arg "Channel.make: duplicate out of [0,1]";
  if min_delay < 0. || max_delay < min_delay then
    invalid_arg "Channel.make: bad delay range"

let reliable =
  {
    loss = Bernoulli 0.;
    duplicate = 0.;
    min_delay = 1.;
    max_delay = 1.;
    burst_state = Hashtbl.create 1;
  }

let make ?(loss = 0.) ?(duplicate = 0.) ?(min_delay = 1.) ?(max_delay = 1.) () =
  if loss < 0. || loss >= 1. then invalid_arg "Channel.make: loss out of [0,1)";
  check_common ~duplicate ~min_delay ~max_delay;
  { loss = Bernoulli loss; duplicate; min_delay; max_delay;
    burst_state = Hashtbl.create 1 }

let gilbert_elliott ~p_gb ~p_bg ?(loss_good = 0.) ~loss_bad ?(duplicate = 0.)
    ?(min_delay = 1.) ?(max_delay = 1.) () =
  if p_gb <= 0. || p_gb > 1. then
    invalid_arg "Channel.gilbert_elliott: p_gb out of (0,1]";
  if p_bg <= 0. || p_bg > 1. then
    invalid_arg "Channel.gilbert_elliott: p_bg out of (0,1]";
  if loss_good < 0. || loss_good >= 1. then
    invalid_arg "Channel.gilbert_elliott: loss_good out of [0,1)";
  if loss_bad < 0. || loss_bad > 1. then
    invalid_arg "Channel.gilbert_elliott: loss_bad out of [0,1]";
  check_common ~duplicate ~min_delay ~max_delay;
  {
    loss = Gilbert_elliott { p_gb; p_bg; loss_good; loss_bad };
    duplicate;
    min_delay;
    max_delay;
    burst_state = Hashtbl.create 64;
  }

let copy t = { t with burst_state = Hashtbl.create 64 }

let mean_loss t =
  match t.loss with
  | Bernoulli p -> p
  | Gilbert_elliott { p_gb; p_bg; loss_good; loss_bad } ->
      let pi_bad = p_gb /. (p_gb +. p_bg) in
      (loss_good *. (1. -. pi_bad)) +. (loss_bad *. pi_bad)

let burstiness t =
  match t.loss with
  | Bernoulli _ -> 1.
  | Gilbert_elliott { p_bg; _ } -> 1. /. p_bg

(* Drop decision for one copy over [link]: sample the loss in the chain's
   current state, then advance the chain — so a burst that starts on this
   copy affects the next one.  The Bernoulli draw is unconditional (even
   at loss 0) to keep PRNG streams identical to earlier releases. *)
let dropped t ~link prng =
  match t.loss with
  | Bernoulli p -> Prng.bool prng ~p
  | Gilbert_elliott { p_gb; p_bg; loss_good; loss_bad } ->
      let bad =
        match Hashtbl.find_opt t.burst_state link with
        | Some b -> b
        | None -> false
      in
      let p = if bad then loss_bad else loss_good in
      let lost = p > 0. && Prng.bool prng ~p in
      let flip = Prng.bool prng ~p:(if bad then p_bg else p_gb) in
      if flip then Hashtbl.replace t.burst_state link (not bad);
      lost

let random_delay t prng =
  if t.max_delay = t.min_delay then t.min_delay
  else Prng.uniform prng ~lo:t.min_delay ~hi:t.max_delay

let deliver t ?(link = (-1, -1)) sim prng f =
  let copies = ref 0 in
  let attempt () =
    if not (dropped t ~link prng) then begin
      incr copies;
      ignore (Sim.schedule sim ~delay:(random_delay t prng) f)
    end
  in
  attempt ();
  if t.duplicate > 0. && Prng.bool prng ~p:t.duplicate then attempt ();
  !copies
