type t = { mutable enabled : bool; mutable entries : (float * string) list }

let create ?(enabled = true) () = { enabled; entries = [] }

let enabled t = t.enabled

let set_enabled t flag = t.enabled <- flag

let record t ~time fmt =
  Format.kasprintf
    (fun s -> if t.enabled then t.entries <- (time, s) :: t.entries)
    fmt

let entries t = List.rev t.entries

let length t = List.length t.entries

let clear t = t.entries <- []

let pp ppf t =
  List.iter (fun (time, s) -> Fmt.pf ppf "[%10.3f] %s@." time s) (entries t)
