(* Entries are guarded by a mutex so traces owned by per-trial
   simulations can be recorded to from worker domains of a parallel
   sweep.  The lock is uncontended (each trial owns its trace), so the
   sequential cost is a few nanoseconds per entry. *)

type t = {
  mutable enabled : bool;
  mutable entries : (float * string) list;
  m : Mutex.t;
}

let create ?(enabled = true) () = { enabled; entries = []; m = Mutex.create () }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let enabled t = t.enabled

let set_enabled t flag = locked t (fun () -> t.enabled <- flag)

let record t ~time fmt =
  Format.kasprintf
    (fun s ->
      locked t (fun () ->
          if t.enabled then t.entries <- (time, s) :: t.entries))
    fmt

let entries t = List.rev (locked t (fun () -> t.entries))

let length t = locked t (fun () -> List.length t.entries)

let clear t = locked t (fun () -> t.entries <- [])

let pp ppf t =
  List.iter (fun (time, s) -> Fmt.pf ppf "[%10.3f] %s@." time s) (entries t)
