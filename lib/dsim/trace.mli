(** Lightweight event traces for debugging and assertions in tests.

    A trace records timestamped strings; recording is O(1) per entry and
    disabled traces cost nothing.

    Traces are domain-safe: all entry mutation is mutex-guarded, so the
    per-trial traces of a parallel sweep may be recorded to from worker
    domains.  Entries of one trace recorded from {e multiple} domains
    concurrently appear in lock-acquisition order, which is not
    deterministic — for reproducible traces keep one trace per trial
    (the pattern everywhere in this repository) and merge afterwards. *)

type t

val create : ?enabled:bool -> unit -> t

val enabled : t -> bool

val set_enabled : t -> bool -> unit

(** [record t ~time fmt ...] appends an entry when enabled. *)
val record : t -> time:float -> ('a, Format.formatter, unit, unit) format4 -> 'a

(** [entries t] in chronological (recording) order. *)
val entries : t -> (float * string) list

val length : t -> int

val clear : t -> unit

val pp : t Fmt.t
