(** Lightweight event traces for debugging and assertions in tests.

    A trace records timestamped strings; recording is O(1) per entry and
    disabled traces cost nothing. *)

type t

val create : ?enabled:bool -> unit -> t

val enabled : t -> bool

val set_enabled : t -> bool -> unit

(** [record t ~time fmt ...] appends an entry when enabled. *)
val record : t -> time:float -> ('a, Format.formatter, unit, unit) format4 -> 'a

(** [entries t] in chronological (recording) order. *)
val entries : t -> (float * string) list

val length : t -> int

val clear : t -> unit

val pp : t Fmt.t
