(** Discrete-event simulation engine.

    Events are thunks scheduled at simulated times; the engine runs them
    in (time, FIFO) order and advances a virtual clock.  Both the
    synchronous round model of Section 2 of the paper and the
    asynchronous model of Section 4 are driven by this engine. *)

type t

(** A cancellable handle for a scheduled event. *)
type handle

(** [create ?obs ?policy ()] builds an empty simulation.  When [obs] is
    given, every fired event bumps the [sim.events_fired] counter.
    [policy] (default {!Eventq.Fifo}) selects the same-timestamp
    tie-break rule — see {!Eventq.policy}; the default is bit-identical
    to the historical FIFO engine. *)
val create : ?obs:Obs.Recorder.t -> ?policy:Eventq.policy -> unit -> t

(** [now t] is the current simulated time (starts at [0.]). *)
val now : t -> float

(** The tie-break policy the engine was created with. *)
val policy : t -> Eventq.policy

(** [schedule_log t] is the decision log of the underlying queue so far
    (see {!Eventq.log}): empty under [Fifo], else one priority per
    scheduled event in scheduling order.  Replaying it via
    [create ~policy:(Replay log)] reproduces the schedule. *)
val schedule_log : t -> int array

(** [schedule t ~delay f] runs [f ()] at [now t +. delay].
    @raise Invalid_argument on a negative delay. *)
val schedule : t -> delay:float -> (unit -> unit) -> handle

(** [schedule_at t ~time f] runs [f ()] at absolute [time >= now t]. *)
val schedule_at : t -> time:float -> (unit -> unit) -> handle

(** [cancel h] prevents the event from firing (no-op if already fired). *)
val cancel : handle -> unit

(** [pending t] is the number of scheduled events not yet fired
    (including cancelled ones not yet drained). *)
val pending : t -> int

(** [run t] executes events until the queue drains; returns the number of
    events fired.  Events may schedule further events. *)
val run : t -> int

(** [run_until t ~time] executes events with timestamp [<= time], then
    advances the clock to [time]; returns the number fired. *)
val run_until : t -> time:float -> int

(** [step t] fires the single earliest event; [false] when none remain. *)
val step : t -> bool

(** [events_fired t] is the lifetime count of fired events. *)
val events_fired : t -> int
