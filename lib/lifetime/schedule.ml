(* Energy-aware cover-set scheduler over the Gather cost model.  The
   passive code path below deliberately mirrors Gather.run statement for
   statement — same Battery drain sequence, same float spellings — so
   the differential oracle (test_schedule) can pin bit-identical
   milestones.  The active path replaces the per-round Dijkstra with an
   epoch-elected gather tree and a duty-cycled awake set. *)

type policy = {
  rotation_period : int;
  duty : float;
  idle_listen : float;
  seed : int;
}

let passive = { rotation_period = 0; duty = 1.; idle_listen = 0.; seed = 0 }
let default_policy = { rotation_period = 25; duty = 0.; idle_listen = 0.; seed = 0 }

let validate_policy p =
  if p.rotation_period < 0 then Error "rotation period must be >= 0"
  else if not (Float.is_finite p.duty) || p.duty < 0. || p.duty > 1. then
    Error "duty fraction must lie in [0, 1]"
  else if not (Float.is_finite p.idle_listen) || p.idle_listen < 0. then
    Error "idle-listen cost must be a finite number >= 0"
  else if p.duty < 1. && p.rotation_period = 0 then
    Error "duty-cycling (duty < 1) requires a rotation period >= 1"
  else Ok ()

type category = Tx | Rx | Overhear | Idle

type ledger = {
  tx : float array;
  rx : float array;
  overhear : float array;
  idle : float array;
  residual : float array;
}

type report = {
  outcome : Gather.outcome;
  epochs : int;
  cover_sets : int;
  service_rounds : int;
  awake_node_rounds : int;
  tx_total : float;
  rx_total : float;
  overhear_total : float;
  idle_total : float;
  initial_energy : float;
  consumed_energy : float;
  residual_energy : float;
  energy_per_delivered : float;
  energy_per_bit : float;
  ledger : ledger;
}

let packet_bits = 4096.

(* Pure splitmix64-style hash, same spelling as Prng / Radio.Env: the
   rotation tie-break and the duty-cycle wake pattern must be
   deterministic functions of (seed, ...) with no hidden state. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let hash2 seed a b =
  let open Int64 in
  let z = mix (of_int seed) in
  let z = mix (add z (mul golden_gamma (of_int (a + 1)))) in
  mix (add z (mul golden_gamma (of_int (b + 1))))

let unit_of bits = Int64.to_float (Int64.shift_right_logical bits 11) *. 0x1p-53

let duty_awake ~seed ~duty u t =
  if duty >= 1. then true
  else if duty <= 0. then false
  else unit_of (hash2 seed u t) < duty

(* Rotation offset for epoch [e]: shifts the id-order round robin that
   breaks exact residual-energy ties (all candidates tie on epoch 0). *)
let rotation_of ~seed e =
  Int64.to_int (Int64.logand (hash2 seed e 0x7ec0) 0x3FFFFFFFL)

let run ?(params = Gather.default_params) ?(policy = passive)
    ?(obs = Obs.Recorder.nil) ?(on_charge = fun _ _ _ -> ()) pathloss
    positions ~sink ~topology =
  let n = Array.length positions in
  if sink < 0 || sink >= n then invalid_arg "Schedule.run: sink out of range";
  if params.Gather.max_rounds < 0 then
    invalid_arg "Schedule.run: negative max_rounds";
  (match validate_policy policy with
  | Ok () -> ()
  | Error e -> invalid_arg ("Schedule.run: " ^ e));
  let active = policy.rotation_period > 0 in
  let battery = Battery.create ~n ~capacity:params.Gather.capacity in
  let led =
    {
      tx = Array.make n 0.;
      rx = Array.make n 0.;
      overhear = Array.make n 0.;
      idle = Array.make n 0.;
      residual = Array.make n 0.;
    }
  in
  let first_death = ref None in
  let half_dead = ref None in
  let sink_partition = ref None in
  let delivered = ref 0 in
  let dropped = ref 0 in
  let deaths = ref [] in
  let non_sink = n - 1 in
  let alive_non_sink () = Battery.nb_alive battery - 1 in
  (* Gather's drain, with the category ledger recorded first.  The sink
     is mains-powered; dead nodes absorb nothing (and record nothing);
     the killing charge is recorded in full — the ledger keeps the
     overdraw the battery clamps away. *)
  let drain cat u amount round =
    if u = sink then true
    else begin
      let was_alive = Battery.is_alive battery u in
      if was_alive then begin
        (match cat with
        | Tx -> led.tx.(u) <- led.tx.(u) +. amount
        | Rx -> led.rx.(u) <- led.rx.(u) +. amount
        | Overhear -> led.overhear.(u) <- led.overhear.(u) +. amount
        | Idle -> led.idle.(u) <- led.idle.(u) +. amount);
        on_charge cat u amount
      end;
      let still = Battery.drain battery u amount in
      if was_alive && not still then begin
        Obs.Recorder.incr obs "schedule.deaths";
        deaths := (round, u) :: !deaths;
        if !first_death = None then first_death := Some round;
        if !half_dead = None && 2 * alive_non_sink () <= non_sink then
          half_dead := Some round
      end;
      still
    end
  in
  let rebuild () =
    Obs.Recorder.incr obs "schedule.rebuilds";
    topology ~alive:(Battery.alive_mask battery) positions
  in
  let control = ref (rebuild ()) in
  let dirty = ref false in
  (* Sleeping nodes are deaf: only awake bystanders pay the overhearing
     tax.  In passive mode [awake] is constantly true and this is
     exactly Gather's transmit. *)
  let transmit awake a b round =
    let radius = !control.Gather.radius.(a) in
    let tx_cost =
      Radio.Pathloss.power_for_distance pathloss radius
      +. params.Gather.tx_overhead
    in
    let sender_alive = drain Tx a tx_cost round in
    if not sender_alive then dirty := true;
    if params.Gather.overhearing then
      for w = 0 to n - 1 do
        if
          w <> a && w <> b && w <> sink
          && Battery.is_alive battery w
          && awake w
          && Geom.Vec2.dist positions.(a) positions.(w) <= radius
        then
          if not (drain Overhear w params.Gather.rx_overhead round) then
            dirty := true
      done;
    let receiver_alive = drain Rx b params.Gather.rx_overhead round in
    if not receiver_alive then dirty := true;
    receiver_alive
  in
  (* Routing potential shared by both modes: the cost of relaxing
     (x -> y) toward the sink is the forward cost at [y]. *)
  let hop_cost x y =
    ignore x;
    Radio.Pathloss.power_for_distance pathloss !control.Gather.radius.(y)
    +. params.Gather.tx_overhead +. params.Gather.rx_overhead
  in
  (* Cover-set election: each node adopts the {e downhill} neighbor (in
     the Dijkstra potential toward the sink, so routes stay cost-aware
     and progress is guaranteed) with the most projected residual
     energy, ties broken by a seeded round robin over ids.  Neighbor
     enumeration is in increasing id order (Ugraph), so the election is
     independent of construction history. *)
  let epochs = ref 0 in
  let cover_digests = Hashtbl.create 16 in
  let awake_node_rounds = ref 0 in
  let elect epoch =
    Obs.Recorder.incr obs "schedule.epochs";
    let dist, _ =
      Graphkit.Shortest.dijkstra_tree !control.Gather.graph ~cost:hop_cost
        ~src:sink
    in
    let rot = rotation_of ~seed:policy.seed epoch in
    let parents = Array.make n (-1) in
    let relay = Array.make n false in
    (* Projected residual: as children are assigned (in id order), a
       candidate's effective energy is debited by the relaying cost it
       is already committed to for this epoch, so the greedy election
       spreads a neighborhood's children across its relay candidates
       instead of herding them all onto the single richest one. *)
    let projected = Array.make n 0. in
    for v = 0 to n - 1 do
      projected.(v) <- Battery.level battery v
    done;
    let relay_cost v =
      (Radio.Pathloss.power_for_distance pathloss !control.Gather.radius.(v)
      +. params.Gather.tx_overhead +. params.Gather.rx_overhead)
      *. float_of_int (max 1 policy.rotation_period)
    in
    (* Waking one more relay costs the network that relay's listening
       budget for the whole epoch (overhearing every transmission, plus
       idle listening), so a child only opens a fresh relay when every
       already-awake candidate has fallen that much behind — the greedy
       step toward the small rotating cover sets the exemplars build. *)
    let activation_fee =
      float_of_int (max 1 policy.rotation_period)
      *. ((if params.Gather.overhearing then
             float_of_int (alive_non_sink ()) *. params.Gather.rx_overhead
           else 0.)
         +. policy.idle_listen)
    in
    for u = 0 to n - 1 do
      if
        u <> sink
        && Battery.is_alive battery u
        && Float.is_finite dist.(u)
      then begin
        let best = ref (-1) in
        let best_level = ref Float.neg_infinity in
        let best_tie = ref max_int in
        Graphkit.Ugraph.iter_neighbors !control.Gather.graph u (fun v ->
            if
              dist.(v) < dist.(u)
              && (v = sink || Battery.is_alive battery v)
            then begin
              let level =
                if v = sink then Float.infinity
                else if relay.(v) then projected.(v)
                else projected.(v) -. activation_fee
              in
              let tie = (v + rot) mod n in
              if
                level > !best_level
                || (level = !best_level && tie < !best_tie)
              then begin
                best := v;
                best_level := level;
                best_tie := tie
              end
            end);
        parents.(u) <- !best;
        if !best >= 0 && !best <> sink then begin
          relay.(!best) <- true;
          projected.(!best) <- projected.(!best) -. relay_cost !best
        end
      end
    done;
    (* count the distinct cover sets this run generated *)
    let buf = Buffer.create 64 in
    for v = 0 to n - 1 do
      if relay.(v) then begin
        Buffer.add_string buf (string_of_int v);
        Buffer.add_char buf ','
      end
    done;
    Hashtbl.replace cover_digests (Buffer.contents buf) ();
    (parents, relay)
  in
  let round = ref 0 in
  let service_rounds = ref 0 in
  let schedule = ref None in
  let epoch_rounds = ref 0 in
  while
    !round < params.Gather.max_rounds
    && alive_non_sink () > 0
    && !sink_partition = None
  do
    incr round;
    if !dirty then begin
      control := rebuild ();
      dirty := false;
      schedule := None
    end;
    if active then begin
      (match !schedule with
      | Some _ when !epoch_rounds < policy.rotation_period -> ()
      | _ ->
          schedule := Some (elect !epochs);
          incr epochs;
          epoch_rounds := 0);
      incr epoch_rounds
    end;
    match !schedule with
    | None ->
        (* Passive round: Gather.run's exact routing block.  The cost of
           relaxing (x -> y) toward the sink is the forward cost at [y]. *)
        let hop_cost x y =
          ignore x;
          Radio.Pathloss.power_for_distance pathloss
            !control.Gather.radius.(y)
          +. params.Gather.tx_overhead +. params.Gather.rx_overhead
        in
        let _, prev =
          Graphkit.Shortest.dijkstra_tree !control.Gather.graph ~cost:hop_cost
            ~src:sink
        in
        let awake _ = true in
        let reachable = ref 0 in
        for src = 0 to n - 1 do
          if src <> sink && Battery.is_alive battery src then begin
            match Graphkit.Shortest.path_to ~prev ~src:sink src with
            | None -> incr dropped
            | Some sink_to_src ->
                incr reachable;
                let path = List.rev sink_to_src in
                let rec forward = function
                  | a :: (b :: _ as rest) ->
                      if Battery.is_alive battery a || a = sink then begin
                        if transmit awake a b !round then forward rest
                        else incr dropped
                      end
                      else incr dropped
                  | [ _ ] -> incr delivered
                  | [] -> ()
                in
                forward path
          end
        done;
        awake_node_rounds := !awake_node_rounds + alive_non_sink ();
        if 2 * !reachable >= non_sink then incr service_rounds;
        if
          !sink_partition = None
          && alive_non_sink () > 0
          && 2 * !reachable < alive_non_sink ()
        then sink_partition := Some !round
    | Some (parents, relay) ->
        let awake w =
          relay.(w)
          || duty_awake ~seed:policy.seed ~duty:policy.duty w !round
        in
        let reachable = ref 0 in
        for src = 0 to n - 1 do
          if src <> sink && Battery.is_alive battery src then begin
            if parents.(src) < 0 then incr dropped
            else begin
              incr reachable;
              (* walk the tree; depth strictly decreases so the chain
                 terminates at the sink *)
              let rec forward a =
                if not (Battery.is_alive battery a) then incr dropped
                else begin
                  let b = parents.(a) in
                  if b < 0 then incr dropped
                  else if transmit awake a b !round then begin
                    if b = sink then incr delivered else forward b
                  end
                  else incr dropped
                end
              in
              forward src
            end
          end
        done;
        if policy.idle_listen > 0. then
          for u = 0 to n - 1 do
            if u <> sink && Battery.is_alive battery u && awake u then
              if not (drain Idle u policy.idle_listen !round) then
                dirty := true
          done;
        for u = 0 to n - 1 do
          if u <> sink && Battery.is_alive battery u && awake u then
            incr awake_node_rounds
        done;
        if 2 * !reachable >= non_sink then incr service_rounds;
        (* A death mid-round leaves this epoch's tree stale; partition
           is only ever declared against a freshly elected schedule. *)
        if
          (not !dirty)
          && !sink_partition = None
          && alive_non_sink () > 0
          && 2 * !reachable < alive_non_sink ()
        then sink_partition := Some !round
  done;
  let outcome =
    {
      Gather.first_death = !first_death;
      half_dead = !half_dead;
      sink_partition = !sink_partition;
      rounds_completed = !round;
      packets_delivered = !delivered;
      packets_dropped = !dropped;
      deaths = List.rev !deaths;
    }
  in
  (* Canonical combination order: per node ((tx + rx) + overhear) + idle,
     nodes in index order — the float-exact conservation identity the
     property suite replays. *)
  for u = 0 to n - 1 do
    led.residual.(u) <-
      params.Gather.capacity
      -. (((led.tx.(u) +. led.rx.(u)) +. led.overhear.(u)) +. led.idle.(u))
  done;
  led.residual.(sink) <- 0.;
  let sum a =
    let acc = ref 0. in
    for u = 0 to n - 1 do
      acc := !acc +. a.(u)
    done;
    !acc
  in
  let tx_total = sum led.tx in
  let rx_total = sum led.rx in
  let overhear_total = sum led.overhear in
  let idle_total = sum led.idle in
  let consumed_energy =
    ((tx_total +. rx_total) +. overhear_total) +. idle_total
  in
  let initial_energy = float_of_int non_sink *. params.Gather.capacity in
  let energy_per_delivered =
    if !delivered = 0 then Float.infinity
    else consumed_energy /. float_of_int !delivered
  in
  Obs.Recorder.set_int obs "schedule.rounds" outcome.Gather.rounds_completed;
  Obs.Recorder.set_int obs "schedule.delivered" !delivered;
  {
    outcome;
    epochs = !epochs;
    cover_sets = Hashtbl.length cover_digests;
    service_rounds = !service_rounds;
    awake_node_rounds = !awake_node_rounds;
    tx_total;
    rx_total;
    overhear_total;
    idle_total;
    initial_energy;
    consumed_energy;
    residual_energy = initial_energy -. consumed_energy;
    energy_per_delivered;
    energy_per_bit = energy_per_delivered /. packet_bits;
    ledger = led;
  }

let total_lifetime r = r.service_rounds

let deaths_plan ?(round_time = 1.) r =
  if not (Float.is_finite round_time) || round_time < 0. then
    invalid_arg "Schedule.deaths_plan: bad round time";
  Faults.Plan.make
    (List.map
       (fun (round, u) ->
         {
           Faults.Plan.time = round_time *. float_of_int round;
           kind = Faults.Plan.Crash u;
         })
       r.outcome.Gather.deaths)

(* Topology families *)

type family =
  | Max_power
  | Cbtc of float
  | Yao of int
  | Rng
  | Gabriel
  | Knn of int
  | Mst

let five_pi_six = 5. *. Float.pi /. 6.
let two_pi_three = 2. *. Float.pi /. 3.

let families =
  [
    Max_power;
    Cbtc five_pi_six;
    Cbtc two_pi_three;
    Yao 6;
    Rng;
    Gabriel;
    Knn 6;
  ]

let family_label = function
  | Max_power -> "max power"
  | Cbtc a ->
      if Float.abs (a -. five_pi_six) < 1e-9 then "cbtc 5pi/6"
      else if Float.abs (a -. two_pi_three) < 1e-9 then "cbtc 2pi/3"
      else Fmt.str "cbtc %.4f" a
  | Yao k -> Fmt.str "yao %d" k
  | Rng -> "rng"
  | Gabriel -> "gabriel"
  | Knn k -> Fmt.str "knn %d" k
  | Mst -> "mst"

let family_of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  let base, arg =
    match String.index_opt s ':' with
    | None -> (s, None)
    | Some i ->
        ( String.sub s 0 i,
          Some (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  let int_arg ~default ~what =
    match arg with
    | None -> Ok default
    | Some a -> (
        match int_of_string_opt a with
        | Some k when k > 0 -> Ok k
        | _ -> Error (Fmt.str "bad %s %S" what a))
  in
  let alpha_arg () =
    match arg with
    | None -> Ok five_pi_six
    | Some "5pi/6" -> Ok five_pi_six
    | Some "2pi/3" -> Ok two_pi_three
    | Some "pi/2" -> Ok (Float.pi /. 2.)
    | Some a -> (
        match float_of_string_opt a with
        | Some f when Float.is_finite f && f > 0. && f <= 2. *. Float.pi ->
            Ok f
        | _ -> Error (Fmt.str "bad alpha %S" a))
  in
  match base with
  | "max-power" | "max_power" | "maxpower" -> Ok Max_power
  | "cbtc" -> Result.map (fun a -> Cbtc a) (alpha_arg ())
  | "yao" -> Result.map (fun k -> Yao k) (int_arg ~default:6 ~what:"sector count")
  | "rng" -> Ok Rng
  | "gabriel" -> Ok Gabriel
  | "knn" -> Result.map (fun k -> Knn k) (int_arg ~default:6 ~what:"k")
  | "mst" -> Ok Mst
  | _ -> Error (Fmt.str "unknown topology family %S" s)

let proximity_builder ?pool ?env build pathloss ~alive positions =
  Gather.induce ~alive positions (fun to_global local ->
      if Array.length local = 0 then (Graphkit.Ugraph.create 0, [||])
      else begin
        let env =
          match env with
          | None -> None
          | Some e ->
              if Radio.Env.is_trivial e then Some e
              else Some (Radio.Env.relabel ~labels:to_global e)
        in
        let g = build ?pool ?env pathloss local in
        (g, Baselines.Proximity.radius_of pathloss local g)
      end)

let family_builder ?pool ?env family pathloss =
  match family with
  | Max_power -> Gather.max_power_builder ?pool ?env pathloss
  | Cbtc alpha ->
      Gather.cbtc_builder ?pool ?env
        (Cbtc.Pipeline.all_ops (Cbtc.Config.make alpha))
        pathloss
  | Yao k ->
      proximity_builder ?pool ?env
        (fun ?pool ?env pl local -> Baselines.Yao.yao ?pool ?env pl local ~k)
        pathloss
  | Rng -> proximity_builder ?pool ?env Baselines.Proximity.rng pathloss
  | Gabriel ->
      proximity_builder ?pool ?env Baselines.Proximity.gabriel pathloss
  | Knn k ->
      proximity_builder ?pool ?env
        (fun ?pool ?env pl local ->
          Baselines.Proximity.knn ?pool ?env pl local ~k)
        pathloss
  | Mst ->
      proximity_builder ?pool ?env
        (fun ?pool ?env pl local ->
          ignore pool;
          Baselines.Proximity.euclidean_mst ?env pl local)
        pathloss

let pp_report ppf r =
  Fmt.pf ppf
    "%a@,# cover sets generated: %d (epochs: %d)@,# total network lifetime: \
     %d rounds@,# total energy consumed: %.6g@,# energy per delivered \
     packet: %.6g (per bit: %.6g)"
    Gather.pp_outcome r.outcome r.cover_sets r.epochs (total_lifetime r)
    r.consumed_energy r.energy_per_delivered r.energy_per_bit
