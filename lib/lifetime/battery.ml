type t = { levels : float array }

let create ~n ~capacity =
  if capacity <= 0. then invalid_arg "Battery.create: non-positive capacity";
  if n < 0 then invalid_arg "Battery.create: negative n";
  { levels = Array.make n capacity }

let of_levels levels =
  Array.iter
    (fun l -> if l < 0. then invalid_arg "Battery.of_levels: negative level")
    levels;
  { levels = Array.copy levels }

let nb_nodes t = Array.length t.levels

let check t u =
  if u < 0 || u >= nb_nodes t then invalid_arg "Battery: node out of range"

let level t u =
  check t u;
  t.levels.(u)

let is_alive t u = level t u > 0.

let nb_alive t =
  Array.fold_left (fun acc l -> if l > 0. then acc + 1 else acc) 0 t.levels

let alive_mask t = Array.map (fun l -> l > 0.) t.levels

let drain t u amount =
  check t u;
  if amount < 0. then invalid_arg "Battery.drain: negative amount";
  if t.levels.(u) <= 0. then false
  else begin
    t.levels.(u) <- Float.max 0. (t.levels.(u) -. amount);
    t.levels.(u) > 0.
  end

let total_remaining t = Array.fold_left ( +. ) 0. t.levels
