type control = { graph : Graphkit.Ugraph.t; radius : float array }

type topology_builder = alive:bool array -> Geom.Vec2.t array -> control

(* Run a full-array pipeline on the live-node subset and translate edges
   and radii back to global ids; dead nodes end up isolated at radius 0.
   [build] also receives the local-to-global id map so env-aware callers
   can [Radio.Env.relabel] the survivor subset back to original ids. *)
let induce ~alive positions build =
  let n = Array.length positions in
  let to_local = Array.make n (-1) in
  let to_global = ref [] in
  let count = ref 0 in
  for u = 0 to n - 1 do
    if alive.(u) then begin
      to_local.(u) <- !count;
      to_global := u :: !to_global;
      incr count
    end
  done;
  let to_global = Array.of_list (List.rev !to_global) in
  let local_positions = Array.map (fun u -> positions.(u)) to_global in
  let local_graph, local_radius = build to_global local_positions in
  let graph = Graphkit.Ugraph.create n in
  Graphkit.Ugraph.iter_edges
    (fun a b -> Graphkit.Ugraph.add_edge graph to_global.(a) to_global.(b))
    local_graph;
  let radius = Array.make n 0. in
  Array.iteri (fun local r -> radius.(to_global.(local)) <- r) local_radius;
  { graph; radius }

let relabeled env to_global =
  match env with
  | None -> None
  | Some e ->
      if Radio.Env.is_trivial e then Some e
      else Some (Radio.Env.relabel ~labels:to_global e)

let cbtc_builder ?pool ?env plan pathloss ~alive positions =
  induce ~alive positions (fun to_global local ->
      if Array.length local = 0 then (Graphkit.Ugraph.create 0, [||])
      else
        let env = relabeled env to_global in
        let r = Cbtc.Pipeline.run_oracle ?pool ?env pathloss local plan in
        (r.Cbtc.Pipeline.graph, r.Cbtc.Pipeline.radius))

let max_power_builder ?pool ?env pathloss ~alive positions =
  induce ~alive positions (fun to_global local ->
      let env = relabeled env to_global in
      let g = Baselines.Proximity.max_power ?pool ?env pathloss local in
      (g, Array.make (Array.length local) (Radio.Pathloss.max_range pathloss)))

type params = {
  capacity : float;
  tx_overhead : float;
  rx_overhead : float;
  overhearing : bool;
  max_rounds : int;
}

let default_params =
  {
    capacity = 5e7;
    tx_overhead = 5000.;
    rx_overhead = 2000.;
    overhearing = true;
    max_rounds = 5000;
  }

type outcome = {
  first_death : int option;
  half_dead : int option;
  sink_partition : int option;
  rounds_completed : int;
  packets_delivered : int;
  packets_dropped : int;
  deaths : (int * int) list;
}

let run ?(params = default_params) pathloss positions ~sink ~topology =
  let n = Array.length positions in
  if sink < 0 || sink >= n then invalid_arg "Gather.run: sink out of range";
  if params.max_rounds < 0 then invalid_arg "Gather.run: negative max_rounds";
  let battery = Battery.create ~n ~capacity:params.capacity in
  let first_death = ref None in
  let half_dead = ref None in
  let sink_partition = ref None in
  let delivered = ref 0 in
  let dropped = ref 0 in
  let deaths = ref [] in
  let non_sink = n - 1 in
  let alive_non_sink () = Battery.nb_alive battery - 1 in
  (* The sink is mains-powered: draining it is free. *)
  let drain u amount round =
    if u = sink then true
    else begin
      let was_alive = Battery.is_alive battery u in
      let still = Battery.drain battery u amount in
      if was_alive && not still then begin
        deaths := (round, u) :: !deaths;
        if !first_death = None then first_death := Some round;
        if !half_dead = None && 2 * alive_non_sink () <= non_sink then
          half_dead := Some round
      end;
      still
    end
  in
  let rebuild () = topology ~alive:(Battery.alive_mask battery) positions in
  let control = ref (rebuild ()) in
  let dirty = ref false in
  (* Transmitting one packet from [a]: the sender pays for its configured
     radius, the addressee pays reception, and (optionally) every other
     live node inside the disk overhears. *)
  let transmit a b round =
    let radius = !control.radius.(a) in
    let tx_cost =
      Radio.Pathloss.power_for_distance pathloss radius +. params.tx_overhead
    in
    let sender_alive = drain a tx_cost round in
    if not sender_alive then dirty := true;
    if params.overhearing then
      for w = 0 to n - 1 do
        if
          w <> a && w <> b && w <> sink
          && Battery.is_alive battery w
          && Geom.Vec2.dist positions.(a) positions.(w) <= radius
        then if not (drain w params.rx_overhead round) then dirty := true
      done;
    let receiver_alive = drain b params.rx_overhead round in
    if not receiver_alive then dirty := true;
    receiver_alive
  in
  let round = ref 0 in
  while
    !round < params.max_rounds
    && alive_non_sink () > 0
    && !sink_partition = None
  do
    incr round;
    if !dirty then begin
      control := rebuild ();
      dirty := false
    end;
    (* Cheapest routes toward the sink.  The cost of traversing (a -> b)
       is borne by the transmitter [a]; building the tree from the sink
       traverses edges reversed, so the cost of relaxing (x -> y) is the
       forward cost at [y]. *)
    let hop_cost x y =
      ignore x;
      Radio.Pathloss.power_for_distance pathloss !control.radius.(y)
      +. params.tx_overhead +. params.rx_overhead
    in
    let _, prev =
      Graphkit.Shortest.dijkstra_tree !control.graph ~cost:hop_cost ~src:sink
    in
    let reachable = ref 0 in
    for src = 0 to n - 1 do
      if src <> sink && Battery.is_alive battery src then begin
        match Graphkit.Shortest.path_to ~prev ~src:sink src with
        | None -> incr dropped
        | Some sink_to_src ->
            incr reachable;
            let path = List.rev sink_to_src in
            let rec forward = function
              | a :: (b :: _ as rest) ->
                  if Battery.is_alive battery a || a = sink then begin
                    if transmit a b !round then forward rest else incr dropped
                  end
                  else incr dropped
              | [ _ ] -> incr delivered
              | [] -> ()
            in
            forward path
      end
    done;
    if !sink_partition = None && alive_non_sink () > 0
       && 2 * !reachable < alive_non_sink ()
    then sink_partition := Some !round
  done;
  {
    first_death = !first_death;
    half_dead = !half_dead;
    sink_partition = !sink_partition;
    rounds_completed = !round;
    packets_delivered = !delivered;
    packets_dropped = !dropped;
    deaths = List.rev !deaths;
  }

let pp_option ppf = function
  | None -> Fmt.string ppf "-"
  | Some r -> Fmt.int ppf r

let pp_outcome ppf o =
  Fmt.pf ppf
    "rounds=%d first-death=%a half-dead=%a sink-partition=%a delivered=%d \
     dropped=%d deaths=%d"
    o.rounds_completed pp_option o.first_death pp_option o.half_dead pp_option
    o.sink_partition o.packets_delivered o.packets_dropped
    (List.length o.deaths)
