(** Per-node energy stores.

    The paper's introduction motivates topology control with network
    lifetime: "reducing energy consumption tends to increase network
    lifetime ... particularly if the main reason that nodes die is loss
    of battery power".  This module is the battery model used by the
    {!Gather} lifetime simulation. *)

type t

(** [create ~n ~capacity] gives every node the same initial energy.
    @raise Invalid_argument on non-positive capacity. *)
val create : n:int -> capacity:float -> t

(** [of_levels levels] starts from heterogeneous levels. *)
val of_levels : float array -> t

val nb_nodes : t -> int

(** [level t u] is the remaining energy ([0.] once dead). *)
val level : t -> int -> float

val is_alive : t -> int -> bool

val nb_alive : t -> int

(** [alive_mask t] is a fresh per-node liveness snapshot. *)
val alive_mask : t -> bool array

(** [drain t u amount] subtracts energy; a node dies when its level
    reaches zero.  Returns [true] when [u] is still alive afterwards.
    Draining a dead node is a no-op returning [false].
    @raise Invalid_argument on negative amount. *)
val drain : t -> int -> float -> bool

(** [total_remaining t] sums live energy. *)
val total_remaining : t -> float
