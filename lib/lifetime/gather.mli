(** Network-lifetime simulation under many-to-one data gathering.

    The model follows the paper's framing: a node owns {e one} configured
    transmission power — enough to reach its farthest topology neighbor
    (its per-node radius; the full range [R] when no topology control is
    used).  Every round, each live node sends one packet to a sink along
    the cheapest route in the current topology, where forwarding a packet
    costs the transmitter [p(radius) + tx_overhead] and the receiver
    [rx_overhead]; optionally, every other live node inside the
    transmitter's disk also pays [rx_overhead] ({e overhearing} — the
    interference cost that makes large radii so expensive).  When a
    battery empties the node crash-stops and the topology is rebuilt over
    the survivors at the next round boundary.

    The outcome records the classic lifetime milestones: first death,
    half dead, and sink partition (more than half of the live non-sink
    nodes unable to reach the sink).  Comparing topologies through this
    harness realizes the paper's lifetime and interference arguments
    quantitatively. *)

(** A controlled topology: the graph plus each node's configured
    transmission radius (0 for isolated or dead nodes). *)
type control = { graph : Graphkit.Ugraph.t; radius : float array }

(** [builder ~alive positions] must return a control on the full node
    set in which dead nodes are isolated with radius 0. *)
type topology_builder = alive:bool array -> Geom.Vec2.t array -> control

(** [induce ~alive positions build] compacts the live nodes to dense
    local ids, runs [build to_global local_positions] on the subset, and
    translates the resulting (graph, radius) pair back to global ids —
    dead nodes end up isolated at radius 0.  [to_global] maps local ids
    back to original ones so env-aware builders can
    [Radio.Env.relabel] the survivor subset ({!Schedule.family_builder}
    uses this for every proximity family). *)
val induce :
  alive:bool array ->
  Geom.Vec2.t array ->
  (int array -> Geom.Vec2.t array -> Graphkit.Ugraph.t * float array) ->
  control

(** [cbtc_builder plan pathloss] reruns the CBTC pipeline over the live
    nodes.  A non-trivial [?env] is relabeled to original ids before
    each rebuild so survivor topologies keep the fading of the original
    links. *)
val cbtc_builder :
  ?pool:Parallel.Pool.t -> ?env:Radio.Env.t ->
  Cbtc.Pipeline.plan -> Radio.Pathloss.t -> topology_builder

(** [max_power_builder pathloss] is the no-topology-control baseline:
    [G_R] over the live nodes, every node at radius [R]. *)
val max_power_builder :
  ?pool:Parallel.Pool.t -> ?env:Radio.Env.t ->
  Radio.Pathloss.t -> topology_builder

type params = {
  capacity : float;  (** initial battery per node *)
  tx_overhead : float;  (** fixed energy per transmission *)
  rx_overhead : float;  (** fixed energy per reception *)
  overhearing : bool;  (** charge bystanders inside the tx disk *)
  max_rounds : int;
}

val default_params : params

type outcome = {
  first_death : int option;  (** round index (1-based) of the first death *)
  half_dead : int option;
  sink_partition : int option;
  rounds_completed : int;
  packets_delivered : int;
  packets_dropped : int;
  deaths : (int * int) list;  (** (round, node), chronological *)
}

(** [run ?params pathloss positions ~sink ~topology] simulates until
    [max_rounds], total death of the non-sink population, or sink
    partition.  The sink has infinite energy (it is the collection
    point).
    @raise Invalid_argument on a bad sink index. *)
val run :
  ?params:params ->
  Radio.Pathloss.t ->
  Geom.Vec2.t array ->
  sink:int ->
  topology:topology_builder ->
  outcome

val pp_outcome : outcome Fmt.t
