(** Energy-aware cover-set scheduling on a controlled topology.

    {!Gather} measures {e passive} lifetime: every round every node
    Dijkstra-routes a packet to the sink and everyone inside a
    transmitter's disk pays the overhearing tax.  This module adds the
    active side the paper's lifetime argument calls for: each {e epoch}
    the scheduler elects a sink-rooted gather tree — a {e cover set} of
    relay nodes — and puts every non-relay to sleep.  Relays are chosen
    greedily per node among the neighbors one hop closer to the sink,
    maximizing residual energy, with a round-robin rotation tie-break
    deterministic in [(seed, epoch)]; sleeping nodes wake only to send
    their own packet, pay no overhearing and no idle-listen cost.  When
    a battery empties the node crash-stops mid-stream, the topology is
    rebuilt over the survivors at the next round boundary (the same
    dirty-rebuild discipline as {!Gather.run}), a fresh cover set is
    elected, and the run continues until sink partition.

    Costs are exactly {!Gather}'s: a transmission costs the sender
    [p(radius) + tx_overhead] and the addressee [rx_overhead]; awake
    bystanders inside the disk pay [rx_overhead] ({e overhearing});
    awake non-sink nodes additionally pay [idle_listen] per round.
    Liveness and the classic milestones are decided by the same
    {!Battery} drain sequence as [Gather.run], so with the {!passive}
    policy the outcome reproduces [Gather.run] bit-identically — the
    differential oracle pinned by the test suite.

    {b Accounting.}  Alongside the battery, the run keeps per-node
    {e ledgers} of the four charge categories.  A charge is recorded in
    full even when it kills the node (the battery clamps at zero; the
    ledger keeps the overdraw), and per-node values combine in one
    canonical association order — [((tx +. rx) +. overhear) +. idle],
    summed over nodes in index order — so the conservation identity
    [initial_energy -. consumed_energy == residual_energy] holds
    {e float-exactly} by construction and the property suite can verify
    the ledgers against an independent replay of the charge stream. *)

(** Scheduling policy. *)
type policy = {
  rotation_period : int;
      (** rebuild the cover set every this many rounds; [0] disables
          active scheduling entirely (per-round Dijkstra routing — the
          {!Gather.run}-compatible passive mode) *)
  duty : float;
      (** awake fraction for non-relay nodes, in [\[0, 1\]]: [1.] keeps
          every node listening (no duty-cycling), [0.] sleeps every
          non-relay except for its own transmissions; in between, node
          [u] is awake in round [t] when a pure hash of
          [(seed, u, t)] falls below [duty].  Requires
          [rotation_period >= 1] when [< 1.] *)
  idle_listen : float;
      (** energy per round charged to every awake live non-sink node *)
  seed : int;  (** feeds the rotation tie-break and the duty hash *)
}

(** [{rotation_period = 0; duty = 1.; idle_listen = 0.; seed = 0}]:
    the configuration under which {!run} reproduces {!Gather.run}
    bit-identically. *)
val passive : policy

(** [{rotation_period = 25; duty = 0.; idle_listen = 0.; seed = 0}]:
    the default active scheduler used by the bench study. *)
val default_policy : policy

(** [validate_policy p] is [Error msg] on a negative rotation period, a
    duty fraction outside [\[0, 1\]], a negative or non-finite idle
    cost, or duty-cycling ([duty < 1.]) without a rotation period. *)
val validate_policy : policy -> (unit, string) result

(** Charge categories, in the order the ledgers combine. *)
type category = Tx | Rx | Overhear | Idle

(** Per-node accounting, all arrays indexed by node id.  [residual] is
    ledger-derived — [capacity -. (((tx +. rx) +. overhear) +. idle)] —
    and may be slightly negative for dead nodes (the overdraw of the
    killing charge); the battery's clamped level decides liveness. *)
type ledger = {
  tx : float array;
  rx : float array;
  overhear : float array;
  idle : float array;
  residual : float array;
}

type report = {
  outcome : Gather.outcome;  (** the classic milestones *)
  epochs : int;  (** cover-set elections performed (0 in passive mode) *)
  cover_sets : int;  (** {e distinct} relay sets generated *)
  service_rounds : int;
      (** rounds in which at least half the {e original} non-sink
          population could reach the sink — the total-network-lifetime
          scalar ({!total_lifetime}).  Unlike the sink-partition
          milestone, whose threshold is relative to the shrinking live
          population (and so rewards a policy for letting bystanders
          die), this measures how long the network keeps serving the
          deployment it started with. *)
  awake_node_rounds : int;
      (** total node-rounds spent awake by live non-sink nodes *)
  tx_total : float;
  rx_total : float;
  overhear_total : float;
  idle_total : float;
      (** category totals, each summed over nodes in index order *)
  initial_energy : float;  (** [capacity * (n - 1)] — the sink is mains *)
  consumed_energy : float;
      (** [((tx_total +. rx_total) +. overhear_total) +. idle_total] *)
  residual_energy : float;
      (** [initial_energy -. consumed_energy], float-exact *)
  energy_per_delivered : float;
      (** [consumed_energy / packets_delivered]; [infinity] when nothing
          was delivered *)
  energy_per_bit : float;
      (** [energy_per_delivered / packet_bits] *)
  ledger : ledger;
}

(** Packet size used for the energy-per-bit figure. *)
val packet_bits : float

(** [run ?params ?policy ?obs ?on_charge pathloss positions ~sink
    ~topology] simulates until [max_rounds], total death of the non-sink
    population, or sink partition.  [on_charge] observes every recorded
    charge in ledger order (category, node, amount) — the hook the
    conservation property replays.  With [obs], epochs, rebuilds and
    deaths are counted on the recorder.
    @raise Invalid_argument on a bad sink index, negative [max_rounds],
    or an invalid policy (see {!validate_policy}). *)
val run :
  ?params:Gather.params ->
  ?policy:policy ->
  ?obs:Obs.Recorder.t ->
  ?on_charge:(category -> int -> float -> unit) ->
  Radio.Pathloss.t ->
  Geom.Vec2.t array ->
  sink:int ->
  topology:Gather.topology_builder ->
  report

(** [total_lifetime r] is [r.service_rounds] — the scalar the bench
    study compares across families. *)
val total_lifetime : report -> int

(** [deaths_plan ?round_time r] bridges the run's load-driven deaths to
    a {!Faults.Plan}: one [Crash] event per death at
    [round_time *. round] (default [round_time = 1.]), in chronological
    order — the correlated failure schedule replayed into [Reconfig] by
    the regression suite. *)
val deaths_plan : ?round_time:float -> report -> Faults.Plan.t

(** {1 Topology families}

    The [topology_builder]-parametric core lets CBTC compete with the
    classic proximity graphs under identical load. *)

type family =
  | Max_power  (** no topology control: [G_R], radius [R] everywhere *)
  | Cbtc of float  (** the full pipeline ([all_ops]) at this [alpha] *)
  | Yao of int  (** Yao graph with [k] sectors *)
  | Rng
  | Gabriel
  | Knn of int
  | Mst  (** Euclidean minimum spanning forest *)

(** The bench study's default line-up: max power, CBTC(5pi/6),
    CBTC(2pi/3), Yao(6), RNG, Gabriel, kNN(6). *)
val families : family list

val family_label : family -> string

(** Inverse of {!family_label} plus the spellings the CLI accepts
    ("max-power", "cbtc", "cbtc:5pi/6", "yao", "yao:8", "knn:4", ...).
    [Error] names the unknown family. *)
val family_of_string : string -> (family, string) result

(** [family_builder family pathloss] rebuilds the family's topology over
    the survivors on every death.  Non-trivial [?env]s are relabeled to
    original node ids per rebuild (see {!Gather.induce}), so shadowing
    stays attached to physical links across survivor subsets. *)
val family_builder :
  ?pool:Parallel.Pool.t ->
  ?env:Radio.Env.t ->
  family ->
  Radio.Pathloss.t ->
  Gather.topology_builder

val pp_report : report Fmt.t
