type 'msg recv = {
  dst : int;
  src : int;
  tx_power : float;
  rx_power : float;
  rx_dir : float;
  payload : 'msg;
}

type 'msg handler = 'msg recv -> unit

type fault = Crashed of int | Recovered of int

type 'msg t = {
  sim : Dsim.Sim.t;
  pathloss : Radio.Pathloss.t;
  (* Non-trivial propagation environment, or [None] for the pure
     pathloss model (a trivial env is collapsed to [None] at [create],
     so the sigma = 0 pipeline is bit-identical to the pre-env one). *)
  env : Radio.Env.t option;
  channel : Dsim.Channel.t;
  prng : Prng.t;
  positions : Geom.Vec2.t array;
  grid : Geom.Grid.t;
  (* Spatial index over [positions]; kept in sync by [set_position].  It
     deliberately still lists crashed nodes: the grid is a pure position
     index (a dead radio still occupies a point in space), [bcast]
     re-checks [alive] on every candidate before scheduling a delivery —
     so a dead node can never look like a live receiver — and [recover]
     would otherwise have to re-insert the node.  The alive check is
     exact, not a prefilter, hence no grid-level skipping is needed. *)
  alive : bool array;
  handlers : 'msg handler option array;
  energy : float array;
  link_loss : (int * int, float) Hashtbl.t;
  drops : int array;  (* per intended receiver *)
  retransmits : int array;  (* per sender, credited by protocols *)
  mutable fault_hooks : (fault -> unit) list;
  mutable transmissions : int;
  mutable deliveries : int;
  obs : Obs.Recorder.t;
}

let create ?(obs = Obs.Recorder.nil) ?env ~sim ~pathloss ~channel ~prng
    ~positions () =
  let n = Array.length positions in
  let env =
    match env with
    | Some e when not (Radio.Env.is_trivial e) -> Some e
    | _ -> None
  in
  {
    sim;
    pathloss;
    env;
    channel;
    prng;
    positions = Array.copy positions;
    grid =
      Geom.Grid.create ~range:(Radio.Pathloss.max_range pathloss) positions;
    alive = Array.make n true;
    handlers = Array.make n None;
    energy = Array.make n 0.;
    link_loss = Hashtbl.create 16;
    drops = Array.make n 0;
    retransmits = Array.make n 0;
    fault_hooks = [];
    transmissions = 0;
    deliveries = 0;
    obs;
  }

let nb_nodes t = Array.length t.positions

let sim t = t.sim

let pathloss t = t.pathloss

let check t u =
  if u < 0 || u >= nb_nodes t then invalid_arg "Net: node out of range"

let position t u =
  check t u;
  t.positions.(u)

let set_position t u p =
  check t u;
  t.positions.(u) <- p;
  Geom.Grid.move t.grid u p

let distance t u v =
  check t u;
  check t v;
  Geom.Vec2.dist t.positions.(u) t.positions.(v)

let set_handler t u h =
  check t u;
  t.handlers.(u) <- Some h

let on_fault t hook = t.fault_hooks <- t.fault_hooks @ [ hook ]

let fire_fault t ev = List.iter (fun hook -> hook ev) t.fault_hooks

let crash t u =
  check t u;
  if t.alive.(u) then begin
    t.alive.(u) <- false;
    Obs.Recorder.incr t.obs "net.crashes";
    fire_fault t (Crashed u)
  end

let recover t u =
  check t u;
  if not t.alive.(u) then begin
    t.alive.(u) <- true;
    Obs.Recorder.incr t.obs "net.recoveries";
    fire_fault t (Recovered u)
  end

let is_alive t u =
  check t u;
  t.alive.(u)

let set_link_loss t ~src ~dst ~loss =
  check t src;
  check t dst;
  if loss < 0. || loss > 1. then
    invalid_arg "Net.set_link_loss: loss out of [0,1]";
  if loss = 0. then Hashtbl.remove t.link_loss (src, dst)
  else Hashtbl.replace t.link_loss (src, dst) loss

let link_loss t ~src ~dst =
  match Hashtbl.find_opt t.link_loss (src, dst) with
  | Some p -> p
  | None -> 0.

let transmissions t = t.transmissions

let deliveries t = t.deliveries

let drops_at t u =
  check t u;
  t.drops.(u)

let drops t = Array.fold_left ( + ) 0 t.drops

let note_retransmit t u =
  check t u;
  Obs.Recorder.incr t.obs "net.retransmissions";
  t.retransmits.(u) <- t.retransmits.(u) + 1

let retransmits_at t u =
  check t u;
  t.retransmits.(u)

let retransmits t = Array.fold_left ( + ) 0 t.retransmits

let energy_used t u =
  check t u;
  t.energy.(u)

let check_power t power =
  if power <= 0. then invalid_arg "Net: non-positive power";
  if power > Radio.Pathloss.max_power t.pathloss *. (1. +. 1e-9) then
    invalid_arg "Net: power exceeds maximum"

(* Schedule delivery of one copy to [dst]; reception metadata is computed
   at transmission time (geometry when the wave leaves the antenna).  A
   logical delivery counts as a drop when the per-link loss eats it, the
   channel drops every copy, or the receiver is dead at reception time. *)
let drop t dst =
  t.drops.(dst) <- t.drops.(dst) + 1;
  Obs.Recorder.incr t.obs "net.drops"

let deliver_to t ~src ~dst ~power payload =
  let extra_loss = link_loss t ~src ~dst in
  if extra_loss > 0. && Prng.bool t.prng ~p:extra_loss then drop t dst
  else begin
    let dist = distance t src dst in
    let rx_power =
      match t.env with
      | Some env ->
          Radio.Env.rx_power env ~tx_power:power ~u:src ~v:dst
            ~pu:t.positions.(src) ~pv:t.positions.(dst) ~dist
      | None -> Radio.Pathloss.rx_power t.pathloss ~tx_power:power ~dist
    in
    let rx_dir =
      Geom.Vec2.direction ~from:t.positions.(dst) ~toward:t.positions.(src)
    in
    let event () =
      if t.alive.(dst) then
        match t.handlers.(dst) with
        | None -> ()
        | Some h ->
            t.deliveries <- t.deliveries + 1;
            Obs.Recorder.incr t.obs "net.deliveries";
            h { dst; src; tx_power = power; rx_power; rx_dir; payload }
      else drop t dst
    in
    let copies =
      Dsim.Channel.deliver t.channel ~link:(src, dst) t.sim t.prng event
    in
    if copies = 0 then drop t dst
  end

let radiate t ~src ~power =
  t.transmissions <- t.transmissions + 1;
  Obs.Recorder.incr t.obs "net.transmissions";
  t.energy.(src) <- t.energy.(src) +. power

(* The spatial index prefilters receivers; the exact [reaches] test below
   decides, so the audience is identical to a full scan.  Deliveries are
   issued in increasing node id (as the full scan did): the channel model
   draws from the PRNG per delivery, so ordering is part of determinism. *)
let bcast t ~src ~power msg =
  check t src;
  check_power t power;
  if not t.alive.(src) then 0
  else begin
    radiate t ~src ~power;
    let reach =
      match t.env with
      | Some env -> Radio.Env.probe_radius env ~power
      | None -> Radio.Pathloss.reach_distance t.pathloss ~power
    in
    let audience =
      Geom.Grid.fold_in_range t.grid t.positions.(src) ~dist:reach ~init:[]
        ~f:(fun acc dst ->
          if
            dst <> src && t.alive.(dst)
            &&
            match t.env with
            | Some env ->
                Radio.Env.reaches env ~power ~u:src ~v:dst
                  ~pu:t.positions.(src) ~pv:t.positions.(dst)
                  ~dist:(distance t src dst)
            | None ->
                Radio.Pathloss.reaches t.pathloss ~power
                  ~dist:(distance t src dst)
          then dst :: acc
          else acc)
    in
    let audience = List.sort Int.compare audience in
    List.iter (fun dst -> deliver_to t ~src ~dst ~power msg) audience;
    List.length audience
  end

let send t ~src ~dst ~power msg =
  check t src;
  check t dst;
  check_power t power;
  if src = dst then invalid_arg "Net.send: src = dst";
  if not t.alive.(src) then false
  else begin
    radiate t ~src ~power;
    if
      t.alive.(dst)
      &&
      match t.env with
      | Some env ->
          Radio.Env.reaches env ~power ~u:src ~v:dst ~pu:t.positions.(src)
            ~pv:t.positions.(dst) ~dist:(distance t src dst)
      | None ->
          Radio.Pathloss.reaches t.pathloss ~power ~dist:(distance t src dst)
    then begin
      deliver_to t ~src ~dst ~power msg;
      true
    end
    else false
  end
