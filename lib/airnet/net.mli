(** Simulated radio network: the paper's communication primitives.

    Section 2 of the paper assumes three primitives:
    - [bcast(u, p, m)]: all nodes [v] with [p(d(u,v)) <= p] receive [m];
    - [send(u, p, m, v)]: point-to-point message;
    - [recv(u, m, v)]: reception, with the reception power [p'] known, from
      which [p(d(u,v))] can be estimated, and with directional (angle of
      arrival) information available.

    This module realizes them over the {!Dsim} engine and the {!Radio}
    path-loss model.  Delivery timing/loss/duplication is governed by a
    {!Dsim.Channel.t}; reception metadata ([rx_power], [rx_dir]) is
    computed from the true geometry — simulating the angle-of-arrival
    hardware the paper assumes.  Nodes can crash (crash-stop), {!recover}
    and move; {!on_fault} hooks observe crash/recover transitions, and
    {!set_link_loss} injects extra {e asymmetric} per-link loss on top of
    the channel model (real links lose the two directions differently —
    Sethu & Gerety, arXiv 0709.0961). *)

type 'msg t

(** A liveness transition, reported to {!on_fault} hooks. *)
type fault = Crashed of int | Recovered of int

(** What a receiving node observes for one delivered message. *)
type 'msg recv = {
  dst : int;  (** the receiving node *)
  src : int;  (** the sender *)
  tx_power : float;  (** power the sender used (carried in-message in the paper) *)
  rx_power : float;  (** reception power after attenuation *)
  rx_dir : float;  (** angle of arrival: direction from [dst] toward [src] *)
  payload : 'msg;
}

type 'msg handler = 'msg recv -> unit

(** [create ?obs ~sim ~pathloss ~channel ~prng ~positions ()] builds a
    network of [Array.length positions] nodes, all alive, with no
    handlers.  When [obs] is given, the network bumps the
    [net.transmissions] / [net.deliveries] / [net.drops] /
    [net.retransmissions] / [net.crashes] / [net.recoveries] counters as
    traffic flows.

    [?env] ({!Radio.Env}) switches the physical layer to the per-link
    propagation environment: {!bcast}/{!send} reachability uses the env
    link power (audience prefilters probe the sigma-aware inflated
    radius), and [rx_power] carries the environment's excess loss, so
    receivers estimating link powers from it recover the {e realized}
    link power.  A trivial or omitted [env] is bit-identical to the
    pure pathloss model. *)
val create :
  ?obs:Obs.Recorder.t ->
  ?env:Radio.Env.t ->
  sim:Dsim.Sim.t ->
  pathloss:Radio.Pathloss.t ->
  channel:Dsim.Channel.t ->
  prng:Prng.t ->
  positions:Geom.Vec2.t array ->
  unit ->
  'msg t

val nb_nodes : 'msg t -> int

val sim : 'msg t -> Dsim.Sim.t

val pathloss : 'msg t -> Radio.Pathloss.t

val position : 'msg t -> int -> Geom.Vec2.t

(** [set_position t u p] moves [u] to [p], keeping the network's spatial
    index (used by {!bcast} to find the audience without scanning every
    node) in sync, so mobility and reconfiguration scenarios stay
    correct. *)
val set_position : 'msg t -> int -> Geom.Vec2.t -> unit

val distance : 'msg t -> int -> int -> float

(** [set_handler t u h] installs [u]'s receive handler (replacing any). *)
val set_handler : 'msg t -> int -> 'msg handler -> unit

(** [bcast t ~src ~power msg] broadcasts: every other live node within
    [distance_for_power power] gets a delivery scheduled through the
    channel model.  Sender must be alive, [power] in [(0, P]].  Returns
    the number of nodes the transmission physically reaches. *)
val bcast : 'msg t -> src:int -> power:float -> 'msg -> int

(** [send t ~src ~dst ~power msg] unicast; returns [false] (and delivers
    nothing) when [dst] is out of range at [power]. *)
val send : 'msg t -> src:int -> dst:int -> power:float -> 'msg -> bool

(** [crash t u] makes [u] crash-stop: it no longer sends or receives.
    Fires {!on_fault} hooks; idempotent (no hook on an already-dead
    node).  [u] stays in the spatial index — the index is a pure position
    map and {!bcast} re-checks liveness on every candidate, so a dead
    node can never appear in an audience. *)
val crash : 'msg t -> int -> unit

(** [recover t u] brings a crashed node back (crash-recover model): it
    resumes sending and receiving with its handler and position intact.
    Fires {!on_fault} hooks; no-op on a live node.  Protocol state is the
    caller's business — a recovered node typically restarts discovery. *)
val recover : 'msg t -> int -> unit

val is_alive : 'msg t -> int -> bool

(** [on_fault t hook] registers [hook] to run synchronously on every
    {!crash}/{!recover} transition, in registration order.  Simulates the
    out-of-band failure detector that Section 4's NDP realizes in-band. *)
val on_fault : 'msg t -> (fault -> unit) -> unit

(** [set_link_loss t ~src ~dst ~loss] adds an independent drop with
    probability [loss] to every delivery on the {e directed} link
    [src -> dst], before the channel model runs.  Directed, so asymmetric
    links are expressible; [loss = 1.] severs the direction (partition
    building block); [loss = 0.] removes the entry.
    @raise Invalid_argument when [loss] is outside [0, 1]. *)
val set_link_loss : 'msg t -> src:int -> dst:int -> loss:float -> unit

(** [link_loss t ~src ~dst] reads the injected per-link loss (0. when
    unset). *)
val link_loss : 'msg t -> src:int -> dst:int -> float

(** [transmissions t] counts [bcast]/[send] calls that actually radiated. *)
val transmissions : 'msg t -> int

(** [deliveries t] counts receive events fired at live nodes. *)
val deliveries : 'msg t -> int

(** [drops_at t u] counts logical deliveries aimed at [u] that died on
    the way: eaten by injected link loss, dropped (all copies) by the
    channel, or arriving while [u] was crashed. *)
val drops_at : 'msg t -> int -> int

(** [drops t] is the sum of {!drops_at} over all nodes. *)
val drops : 'msg t -> int

(** [note_retransmit t u] credits one protocol-level retransmission to
    sender [u].  The radio cannot know which transmissions are retries,
    so protocols account for them here, keeping all reliability counters
    in one place for reporting. *)
val note_retransmit : 'msg t -> int -> unit

(** [retransmits_at t u] reads [u]'s retransmission credit. *)
val retransmits_at : 'msg t -> int -> int

(** [retransmits t] is the sum of {!retransmits_at} over all nodes. *)
val retransmits : 'msg t -> int

(** [energy_used t u] is the cumulative transmission energy node [u] has
    radiated (sum over its transmissions of the power used, one unit of
    airtime each). *)
val energy_used : 'msg t -> int -> float
