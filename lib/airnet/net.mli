(** Simulated radio network: the paper's communication primitives.

    Section 2 of the paper assumes three primitives:
    - [bcast(u, p, m)]: all nodes [v] with [p(d(u,v)) <= p] receive [m];
    - [send(u, p, m, v)]: point-to-point message;
    - [recv(u, m, v)]: reception, with the reception power [p'] known, from
      which [p(d(u,v))] can be estimated, and with directional (angle of
      arrival) information available.

    This module realizes them over the {!Dsim} engine and the {!Radio}
    path-loss model.  Delivery timing/loss/duplication is governed by a
    {!Dsim.Channel.t}; reception metadata ([rx_power], [rx_dir]) is
    computed from the true geometry — simulating the angle-of-arrival
    hardware the paper assumes.  Nodes can crash (crash-stop) and move. *)

type 'msg t

(** What a receiving node observes for one delivered message. *)
type 'msg recv = {
  dst : int;  (** the receiving node *)
  src : int;  (** the sender *)
  tx_power : float;  (** power the sender used (carried in-message in the paper) *)
  rx_power : float;  (** reception power after attenuation *)
  rx_dir : float;  (** angle of arrival: direction from [dst] toward [src] *)
  payload : 'msg;
}

type 'msg handler = 'msg recv -> unit

(** [create ~sim ~pathloss ~channel ~prng ~positions] builds a network of
    [Array.length positions] nodes, all alive, with no handlers. *)
val create :
  sim:Dsim.Sim.t ->
  pathloss:Radio.Pathloss.t ->
  channel:Dsim.Channel.t ->
  prng:Prng.t ->
  positions:Geom.Vec2.t array ->
  'msg t

val nb_nodes : 'msg t -> int

val sim : 'msg t -> Dsim.Sim.t

val pathloss : 'msg t -> Radio.Pathloss.t

val position : 'msg t -> int -> Geom.Vec2.t

(** [set_position t u p] moves [u] to [p], keeping the network's spatial
    index (used by {!bcast} to find the audience without scanning every
    node) in sync, so mobility and reconfiguration scenarios stay
    correct. *)
val set_position : 'msg t -> int -> Geom.Vec2.t -> unit

val distance : 'msg t -> int -> int -> float

(** [set_handler t u h] installs [u]'s receive handler (replacing any). *)
val set_handler : 'msg t -> int -> 'msg handler -> unit

(** [bcast t ~src ~power msg] broadcasts: every other live node within
    [distance_for_power power] gets a delivery scheduled through the
    channel model.  Sender must be alive, [power] in [(0, P]].  Returns
    the number of nodes the transmission physically reaches. *)
val bcast : 'msg t -> src:int -> power:float -> 'msg -> int

(** [send t ~src ~dst ~power msg] unicast; returns [false] (and delivers
    nothing) when [dst] is out of range at [power]. *)
val send : 'msg t -> src:int -> dst:int -> power:float -> 'msg -> bool

(** [crash t u] makes [u] crash-stop: it no longer sends or receives. *)
val crash : 'msg t -> int -> unit

val is_alive : 'msg t -> int -> bool

(** [transmissions t] counts [bcast]/[send] calls that actually radiated. *)
val transmissions : 'msg t -> int

(** [deliveries t] counts receive events fired at live nodes. *)
val deliveries : 'msg t -> int

(** [energy_used t u] is the cumulative transmission energy node [u] has
    radiated (sum over its transmissions of the power used, one unit of
    airtime each). *)
val energy_used : 'msg t -> int -> float
