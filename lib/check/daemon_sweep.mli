(** Equivalence sweep for the self-healing topology daemon.

    Each trial drives one deterministic mobility + fault stream through
    {!Daemon.Driver.run} with the incremental-vs-full equivalence
    invariant checked {e every} epoch (plus the final survivor
    verification), across a grid of fault/watchdog cells.  Trials are
    enumerated up-front in a fixed order (seed-major, cell-minor) and
    folded back in that order, so the report — including its aggregate
    digest — is bit-identical for every [-j]. *)

type cell = {
  crash_frac : float;  (** fraction of nodes the plan crashes *)
  recover_after : float option;  (** crash-to-recovery delay, if any *)
  watchdog_frac : float;  (** see {!Daemon.Engine.create} *)
}

(** Five cells spanning pure mobility, recovering churn at two watchdog
    settings (0.25 and the engine's shipping default), heavy churn
    with a twitchy watchdog, and permanent crashes with the watchdog
    disabled. *)
val default_cells : cell list

type failure = {
  trial : int;  (** index in the sweep's trial order *)
  seed : int;  (** the stream seed that failed *)
  cell : cell;
  message : string;  (** violated invariant (or a caught exception) *)
}

type report = {
  trials : int;
  seeds : int;
  cells : int;
  failures : failure list;  (** in trial order *)
  digest : string;
      (** hex MD5 over all trial topology digests in trial order — the
          sweep's reproducibility fingerprint *)
}

(** [sweep ?pool ?seeds ?seed ?cells ?n ()] runs [seeds * length cells]
    trials ([seeds] stream seeds derived from [seed], default 11;
    [seeds] defaults to 8, [n] — nodes per stream — to 24).  Invariant
    failures and exceptions are collected, never raised.
    @raise Invalid_argument when [seeds < 1] or [cells] is empty. *)
val sweep :
  ?pool:Parallel.Pool.t ->
  ?seeds:int ->
  ?seed:int ->
  ?cells:cell list ->
  ?n:int ->
  unit ->
  report

val pp_cell : cell Fmt.t

val pp_report : report Fmt.t
