(** A self-contained, serializable description of one protocol trial —
    placement, radio model, channel, fault plan, protocol knobs and the
    invariant to check — that can be re-run under any {!Dsim.Eventq}
    tie-break policy.

    This is the unit the schedule explorer ({!Explore}) sweeps and the
    shrinker ({!Shrink}) minimizes: everything needed to reproduce a run
    bit-for-bit is in the record (plus a policy), and {!to_json} /
    {!of_json} round-trip it through the replay artifact format. *)

(** What a trial must satisfy:

    - [Oracle]: the converged state equals the centralized oracle's
      ({!Cbtc.Verify.check_oracle}) — the strongest check, valid for
      reliable fault-free runs where the paper proves equivalence.
    - [Guarantees]: the surviving nodes' state satisfies the CBTC
      guarantees ({!Cbtc.Verify.check_guarantees}); completeness is
      demanded only of reliable fault-free runs.
    - [Powers_grow]: no surviving node converged below the fault-free
      oracle power — the protocol only ever grows powers, so loss and
      crashes may push them up, never down. *)
type invariant = Oracle | Guarantees | Powers_grow

type t = {
  alpha : float;  (** cone angle *)
  exponent : float;  (** pathloss exponent *)
  coeff : float;  (** pathloss coefficient *)
  max_range : float;  (** maximum radio range *)
  p0 : float;  (** base of the [Double] growth schedule *)
  positions : Geom.Vec2.t array;
  start_spread : float;  (** stagger of node start times *)
  loss : float;  (** Bernoulli per-copy loss, in [0, 1) *)
  hello_repeats : int;
  hardened : bool;  (** use the {!Cbtc.Distributed.hardened} profile *)
  run_seed : int;  (** network PRNG seed (delays, loss, spread) *)
  faults : Faults.Plan.t;
  mutant : bool;  (** arm the deliberate reordering bug *)
  invariant : invariant;
}

(** [make ~n ~seed ()] draws an [n]-node uniform placement from the
    standard workload generator ([Workload.Scenario]) on a
    [side x side] field (default 1500) with radio range [range]
    (default 500), and packages it with the given knobs (defaults:
    alpha 5pi/6, [Double 100.] growth, reliable channel, no faults,
    legacy reliability, [Oracle] invariant).
    @raise Invalid_argument when [n < 2] or [loss] is outside [0, 1). *)
val make :
  ?alpha:float ->
  ?side:float ->
  ?range:float ->
  ?p0:float ->
  ?start_spread:float ->
  ?loss:float ->
  ?hello_repeats:int ->
  ?hardened:bool ->
  ?run_seed:int ->
  ?faults:Faults.Plan.t ->
  ?mutant:bool ->
  ?invariant:invariant ->
  n:int ->
  seed:int ->
  unit ->
  t

val nb_nodes : t -> int

val config : t -> Cbtc.Config.t

val pathloss : t -> Radio.Pathloss.t

(** [run ?obs ?policy t] executes the distributed protocol once under
    [policy] (default [Fifo]).  A fresh channel is built per call, so
    repeated runs are independent and bit-reproducible. *)
val run :
  ?obs:Obs.Recorder.t ->
  ?policy:Dsim.Eventq.policy ->
  t ->
  Cbtc.Distributed.outcome

(** The fault-free centralized oracle for [t]'s placement. *)
val oracle : t -> Cbtc.Discovery.t

(** [check ?oracle t o] applies [t.invariant] to outcome [o].  Pass
    [oracle] to amortize the oracle run across many trials of the same
    placement. *)
val check :
  ?oracle:Cbtc.Discovery.t ->
  t ->
  Cbtc.Distributed.outcome ->
  (unit, string) result

(** [digest o] is a hex MD5 fingerprint of the converged state (neighbor
    ids, powers, boundary/liveness flags, Remove count).  Equal digests
    mean equal converged states — the explorer's cross-[-j] determinism
    contract is stated over these. *)
val digest : Cbtc.Distributed.outcome -> string

(** [drop_nodes t ~keep] deletes the nodes with [keep.(u) = false],
    compacting ids and renaming the fault plan accordingly
    ({!Faults.Plan.restrict}) — the shrinker's node-deletion move.
    @raise Invalid_argument when [keep] has the wrong length or fewer
    than 2 nodes survive. *)
val drop_nodes : t -> keep:bool array -> t

val invariant_to_string : invariant -> string

val invariant_of_string : string -> invariant

val to_json : t -> Obs.Jsonl.t

(** @raise Invalid_argument on a malformed document. *)
val of_json : Obs.Jsonl.t -> t
