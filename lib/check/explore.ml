type failure = {
  trial : int;
  policy : Dsim.Eventq.policy;
  scenario : Scenario.t;
  message : string;
  log : int array;
}

type report = {
  trials : int;
  schedules : int;
  plans : int;
  failures : failure list;
  digest : string;
}

type trial_spec = {
  index : int;
  t_policy : Dsim.Eventq.policy;
  t_scenario : Scenario.t;
}

(* One trial = one protocol run + one invariant check, fully determined
   by its spec.  Exceptions are demoted to failures so a sweep always
   runs to completion and reports everything it saw. *)
let run_trial ~oracle spec =
  match Scenario.run ~policy:spec.t_policy spec.t_scenario with
  | o -> (
      let digest = Scenario.digest o in
      match Scenario.check ~oracle spec.t_scenario o with
      | Ok () -> (digest, None)
      | Error msg -> (digest, Some (msg, o.Cbtc.Distributed.schedule_log)))
  | exception e -> ("!", Some ("exception: " ^ Printexc.to_string e, [||]))

let sweep ?pool ?(schedules = 20) ?(seed = 7) ?(plans = []) sc =
  if schedules < 0 then invalid_arg "Check.Explore.sweep: schedules < 0";
  let plans = if plans = [] then [ sc.Scenario.faults ] else plans in
  let sseeds = Parallel.Seeds.ints (Prng.create ~seed) schedules in
  let policies =
    Dsim.Eventq.Fifo
    :: (Array.to_list sseeds |> List.map (fun s -> Dsim.Eventq.Seeded s))
  in
  (* The trial list is built up-front in a fixed order (policy-major,
     plan-minor), and results are folded back in that order: the report
     is bit-identical for every pool size. *)
  let specs =
    List.concat_map
      (fun policy ->
        List.map
          (fun plan ->
            { index = 0; t_policy = policy;
              t_scenario = { sc with Scenario.faults = plan } })
          plans)
      policies
    |> List.mapi (fun i spec -> { spec with index = i })
    |> Array.of_list
  in
  let oracle = Scenario.oracle sc in
  let results =
    match pool with
    | Some pool -> Parallel.Pool.map pool (run_trial ~oracle) specs
    | None -> Array.map (run_trial ~oracle) specs
  in
  let buf = Buffer.create (33 * Array.length results) in
  let failures = ref [] in
  Array.iteri
    (fun i (digest, verdict) ->
      Buffer.add_string buf digest;
      Buffer.add_char buf '\n';
      match verdict with
      | None -> ()
      | Some (message, log) ->
          failures :=
            {
              trial = i;
              policy = specs.(i).t_policy;
              scenario = specs.(i).t_scenario;
              message;
              log;
            }
            :: !failures)
    results;
  {
    trials = Array.length specs;
    schedules;
    plans = List.length plans;
    failures = List.rev !failures;
    digest = Digest.to_hex (Digest.string (Buffer.contents buf));
  }

let pp_policy ppf = function
  | Dsim.Eventq.Fifo -> Fmt.pf ppf "fifo"
  | Dsim.Eventq.Seeded s -> Fmt.pf ppf "seeded:%d" s
  | Dsim.Eventq.Replay log -> Fmt.pf ppf "replay:%d" (Array.length log)

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%d trials (%d schedules x %d plans): %d failure%s@,"
    r.trials (r.schedules + 1) r.plans
    (List.length r.failures)
    (if List.length r.failures = 1 then "" else "s");
  List.iter
    (fun f ->
      Fmt.pf ppf "  trial %d [%a]: %s@," f.trial pp_policy f.policy f.message)
    r.failures;
  Fmt.pf ppf "digest %s@]" r.digest
