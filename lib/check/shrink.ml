type result = {
  scenario : Scenario.t;
  prios : int array;
  message : string;
  runs : int;
}

(* One shrink probe: run + check, demoting exceptions to failures (an
   exception is as good a bug as an invariant violation, and shrinking
   must not unwind past it). *)
let probe sc policy =
  match Scenario.run ~policy sc with
  | o -> (
      match Scenario.check sc o with
      | Ok () -> None
      | Error msg -> Some (msg, o.Cbtc.Distributed.schedule_log))
  | exception e -> Some ("exception: " ^ Printexc.to_string e, [||])

let minimize ?(budget = 400) sc policy =
  if budget < 1 then invalid_arg "Check.Shrink.minimize: budget < 1";
  let runs = ref 0 in
  let attempt sc policy =
    incr runs;
    probe sc policy
  in
  match attempt sc policy with
  | None ->
      invalid_arg
        "Check.Shrink.minimize: scenario does not fail under the given policy"
  | Some (msg0, log0) ->
      (* Phase 1 — node deletion (ddmin-style: halves, then singles),
         re-running under the original policy.  Any surviving failure is
         accepted, even if its message drifts: the minimized artifact
         documents whatever bug remains reachable in the smaller
         scenario. *)
      let cur = ref sc and cur_msg = ref msg0 and cur_log = ref log0 in
      let try_drop keep =
        if !runs >= budget then false
        else
          match Scenario.drop_nodes !cur ~keep with
          | exception Invalid_argument _ -> false
          | sc' -> (
              match attempt sc' policy with
              | Some (msg, log) ->
                  cur := sc';
                  cur_msg := msg;
                  cur_log := log;
                  true
              | None -> false)
      in
      let progress = ref true in
      while !progress && !runs < budget do
        progress := false;
        let n = Scenario.nb_nodes !cur in
        if n >= 4 then begin
          let drop_range lo hi =
            Array.init n (fun u -> not (lo <= u && u < hi))
          in
          if try_drop (drop_range 0 (n / 2)) then progress := true
          else if try_drop (drop_range (n / 2) n) then progress := true
        end;
        let u = ref (Scenario.nb_nodes !cur - 1) in
        while !u >= 0 && !runs < budget do
          let n = Scenario.nb_nodes !cur in
          if n > 2 && !u < n then begin
            let keep = Array.init n (fun v -> v <> !u) in
            if try_drop keep then progress := true
          end;
          decr u
        done
      done;
      (* Phase 2 — decision-log prefixing.  The recorded log replayed in
         full reproduces the failure ([Replay] assigns the very same
         priorities); pushes beyond a truncated log fall back to FIFO,
         so the shortest failing prefix isolates the earliest reordering
         that matters.  Binary search assumes rough monotonicity; the
         result is verified and falls back to the full log if the
         failure is non-monotone in the prefix length. *)
      let full = !cur_log in
      let lo = ref 0 and hi = ref (Array.length full) in
      while !lo < !hi && !runs < budget do
        let mid = (!lo + !hi) / 2 in
        match attempt !cur (Dsim.Eventq.Replay (Array.sub full 0 mid)) with
        | Some _ -> hi := mid
        | None -> lo := mid + 1
      done;
      let candidate = Array.sub full 0 !hi in
      let prios, message =
        match attempt !cur (Dsim.Eventq.Replay candidate) with
        | Some (msg, _) -> (candidate, msg)
        | None -> (
            match attempt !cur (Dsim.Eventq.Replay full) with
            | Some (msg, _) -> (full, msg)
            | None -> (full, !cur_msg))
      in
      (* Phase 3 — fault-event dropping under the final replay log. *)
      let prios = ref prios and message = ref message in
      let events = ref (Faults.Plan.events !cur.Scenario.faults) in
      let i = ref 0 in
      while !i < List.length !events && !runs < budget do
        let kept = List.filteri (fun j _ -> j <> !i) !events in
        let sc' = { !cur with Scenario.faults = Faults.Plan.make kept } in
        (match attempt sc' (Dsim.Eventq.Replay !prios) with
        | Some (msg, _) ->
            cur := sc';
            events := kept;
            message := msg
        | None -> incr i)
      done;
      { scenario = !cur; prios = !prios; message = !message; runs = !runs }
