(** Replayable failure artifacts.

    A minimized failing trial ({!Shrink.result}) is persisted as a
    single-line JSON document carrying the full scenario, the replay
    priority log and the failure message — everything needed to
    reproduce the failure bit-for-bit on any machine, with no seeds or
    external state.  Artifacts double as regression tests: {!replay}
    re-runs the scenario under [Replay prios] and reports whether the
    failure still reproduces. *)

type t = { scenario : Scenario.t; prios : int array; message : string }

val of_shrink : Shrink.result -> t

val to_json : t -> Obs.Jsonl.t

(** @raise Invalid_argument when the document is not a version-1 check
    artifact. *)
val of_json : Obs.Jsonl.t -> t

(** [save path a] writes the artifact as one JSON line. *)
val save : string -> t -> unit

(** [load path] parses an artifact written by {!save}.
    @raise Invalid_argument or [Obs.Jsonl.Parse_error] on malformed
    input, [Sys_error] on IO errors. *)
val load : string -> t

(** [replay ?obs a] re-runs the artifact's scenario under
    [Replay a.prios].  [Ok (message, digest)] when the invariant still
    fails (the reproduced failure and the run's outcome digest);
    [Error digest] when the run now passes — the bug is fixed (or the
    artifact is stale).  With [obs], the replay records a full trace. *)
val replay :
  ?obs:Obs.Recorder.t -> t -> (string * string, string) result
