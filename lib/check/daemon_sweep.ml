(* Equivalence sweep for the topology daemon: many deterministic
   mobility + fault streams driven through [Daemon.Driver.run] with the
   incremental-vs-full equivalence invariant checked every epoch, across
   a grid of fault/watchdog cells.  Trials are enumerated up-front
   (seed-major, cell-minor) and folded back in that order, so the report
   — including its aggregate digest — is bit-identical at every -j. *)

type cell = {
  crash_frac : float;
  recover_after : float option;
  watchdog_frac : float;
}

let default_cells =
  [
    (* pure mobility, incremental-dominant *)
    { crash_frac = 0.; recover_after = None; watchdog_frac = 0.25 };
    (* light churn with recovery *)
    { crash_frac = 0.15; recover_after = Some 4.; watchdog_frac = 0.25 };
    (* heavy churn, watchdog trips often *)
    { crash_frac = 0.3; recover_after = Some 2.; watchdog_frac = 0.1 };
    (* heavy permanent crashes, watchdog never trips *)
    { crash_frac = 0.3; recover_after = None; watchdog_frac = 1.5 };
    (* churn with recovery at the engine's shipping default, where the
       watchdog trips only when every live node is dirty *)
    {
      crash_frac = 0.15;
      recover_after = Some 3.;
      watchdog_frac = Daemon.Engine.default_watchdog_frac;
    };
  ]

type failure = { trial : int; seed : int; cell : cell; message : string }

type report = {
  trials : int;
  seeds : int;
  cells : int;
  failures : failure list;
  digest : string;
}

type spec = { s_seed : int; s_cell : cell }

let epochs = 8.

(* One trial = one daemon run + its per-epoch equivalence checks and
   final verification, fully determined by its spec.  Exceptions are
   demoted to failures so a sweep always runs to completion. *)
let run_trial ~n spec =
  let cell = spec.s_cell in
  let sc = Workload.Scenario.make ~n ~seed:spec.s_seed () in
  let churn =
    if cell.crash_frac <= 0. then Faults.Plan.empty
    else
      Faults.Plan.random_crashes
        ~prng:(Prng.create ~seed:(spec.s_seed lxor 0x5bf03635))
        ~n ~fraction:cell.crash_frac
        ~window:(1., epochs -. 2.)
        ?recover_after:cell.recover_after ()
  in
  let stream =
    {
      Daemon.Driver.seed = spec.s_seed;
      field = sc.Workload.Scenario.field;
      mobility = Workload.Mobility.default_params;
      move_rate = 25.;
      storm = None;
      churn;
      positions = Workload.Scenario.positions sc;
    }
  in
  let params =
    {
      Daemon.Driver.default_params with
      duration = epochs;
      event_dt = 1.;
      watchdog_frac = cell.watchdog_frac;
      equivalence_every = 1;
    }
  in
  let config = Cbtc.Config.make Geom.Angle.five_pi_six in
  match
    Daemon.Driver.run ~params ~config
      ~pathloss:(Workload.Scenario.pathloss sc)
      stream
  with
  | r ->
      ( r.Daemon.Driver.topology_digest,
        r.Daemon.Driver.equivalence_failures @ r.Daemon.Driver.verify_failures
      )
  | exception e -> ("!", [ "exception: " ^ Printexc.to_string e ])

let sweep ?pool ?(seeds = 8) ?(seed = 11) ?(cells = default_cells) ?(n = 24)
    () =
  if seeds < 1 then invalid_arg "Check.Daemon_sweep.sweep: seeds < 1";
  if cells = [] then invalid_arg "Check.Daemon_sweep.sweep: empty cell grid";
  let sseeds = Parallel.Seeds.ints (Prng.create ~seed) seeds in
  let specs =
    Array.to_list sseeds
    |> List.concat_map (fun s ->
           List.map (fun c -> { s_seed = s; s_cell = c }) cells)
    |> Array.of_list
  in
  let results =
    match pool with
    | Some pool -> Parallel.Pool.map pool (run_trial ~n) specs
    | None -> Array.map (run_trial ~n) specs
  in
  let buf = Buffer.create (33 * Array.length results) in
  let failures = ref [] in
  Array.iteri
    (fun i (digest, msgs) ->
      Buffer.add_string buf digest;
      Buffer.add_char buf '\n';
      List.iter
        (fun message ->
          failures :=
            {
              trial = i;
              seed = specs.(i).s_seed;
              cell = specs.(i).s_cell;
              message;
            }
            :: !failures)
        msgs)
    results;
  {
    trials = Array.length specs;
    seeds;
    cells = List.length cells;
    failures = List.rev !failures;
    digest = Digest.to_hex (Digest.string (Buffer.contents buf));
  }

let pp_cell ppf c =
  Fmt.pf ppf "crash=%g recover=%a watchdog=%g" c.crash_frac
    (Fmt.option ~none:(Fmt.any "never") Fmt.float)
    c.recover_after c.watchdog_frac

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%d trials (%d seeds x %d cells): %d failure%s@," r.trials
    r.seeds r.cells
    (List.length r.failures)
    (if List.length r.failures = 1 then "" else "s");
  List.iter
    (fun f ->
      Fmt.pf ppf "  trial %d [seed %d, %a]: %s@," f.trial f.seed pp_cell
        f.cell f.message)
    r.failures;
  Fmt.pf ppf "digest %s@]" r.digest
