type t = { scenario : Scenario.t; prios : int array; message : string }

let of_shrink (r : Shrink.result) =
  { scenario = r.Shrink.scenario; prios = r.Shrink.prios;
    message = r.Shrink.message }

let to_json a =
  let open Obs.Jsonl in
  Obj
    [
      ("format", Str "cbtc-check-artifact");
      ("version", Int 1);
      ("scenario", Scenario.to_json a.scenario);
      ("prios", List (Array.to_list a.prios |> List.map (fun p -> Int p)));
      ("message", Str a.message);
    ]

let of_json j =
  let get k =
    match Obs.Jsonl.member k j with
    | Some v -> v
    | None -> invalid_arg ("Check.Artifact: missing field " ^ k)
  in
  (match get "format" with
  | Obs.Jsonl.Str "cbtc-check-artifact" -> ()
  | _ -> invalid_arg "Check.Artifact: not a check artifact");
  let prios =
    match get "prios" with
    | Obs.Jsonl.List l ->
        List.map
          (function
            | Obs.Jsonl.Int p -> p
            | _ -> invalid_arg "Check.Artifact: bad priority")
          l
        |> Array.of_list
    | _ -> invalid_arg "Check.Artifact: bad prios"
  in
  let message =
    match get "message" with
    | Obs.Jsonl.Str s -> s
    | _ -> invalid_arg "Check.Artifact: bad message"
  in
  { scenario = Scenario.of_json (get "scenario"); prios; message }

let save path a =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Obs.Jsonl.to_string (to_json a));
      output_char oc '\n')

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let text = really_input_string ic (in_channel_length ic) in
      of_json (Obs.Jsonl.of_string (String.trim text)))

let replay ?obs a =
  let policy = Dsim.Eventq.Replay a.prios in
  match Scenario.run ?obs ~policy a.scenario with
  | o -> (
      let digest = Scenario.digest o in
      match Scenario.check a.scenario o with
      | Ok () -> Error digest
      | Error msg -> Ok (msg, digest))
  | exception e -> Ok ("exception: " ^ Printexc.to_string e, "!")
