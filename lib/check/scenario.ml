type invariant = Oracle | Guarantees | Powers_grow

type t = {
  alpha : float;
  exponent : float;
  coeff : float;
  max_range : float;
  p0 : float;
  positions : Geom.Vec2.t array;
  start_spread : float;
  loss : float;
  hello_repeats : int;
  hardened : bool;
  run_seed : int;
  faults : Faults.Plan.t;
  mutant : bool;
  invariant : invariant;
}

let nb_nodes t = Array.length t.positions

let make ?(alpha = Geom.Angle.five_pi_six) ?(side = 1500.) ?(range = 500.)
    ?(p0 = 100.) ?(start_spread = 0.) ?(loss = 0.) ?(hello_repeats = 1)
    ?(hardened = false) ?(run_seed = 1) ?(faults = Faults.Plan.empty)
    ?(mutant = false) ?(invariant = Oracle) ~n ~seed () =
  if n < 2 then invalid_arg "Check.Scenario.make: n < 2";
  if loss < 0. || loss >= 1. then
    invalid_arg "Check.Scenario.make: loss out of [0,1)";
  let sc =
    Workload.Scenario.make ~n ~width:side ~height:side ~max_range:range ~seed
      ()
  in
  let pl = Workload.Scenario.pathloss sc in
  {
    alpha;
    exponent = Radio.Pathloss.exponent pl;
    coeff = Radio.Pathloss.coeff pl;
    max_range = Radio.Pathloss.max_range pl;
    p0;
    positions = Workload.Scenario.positions sc;
    start_spread;
    loss;
    hello_repeats;
    hardened;
    run_seed;
    faults;
    mutant;
    invariant;
  }

let config t = Cbtc.Config.make ~growth:(Cbtc.Config.Double t.p0) t.alpha

let pathloss t =
  Radio.Pathloss.make ~exponent:t.exponent ~coeff:t.coeff
    ~max_range:t.max_range ()

let channel t =
  if t.loss = 0. then Dsim.Channel.reliable
  else Dsim.Channel.make ~loss:t.loss ()

let run ?obs ?(policy = Dsim.Eventq.Fifo) t =
  let reliability =
    if t.hardened then Cbtc.Distributed.hardened else Cbtc.Distributed.legacy
  in
  Cbtc.Distributed.run ?obs ~channel:(channel t)
    ~hello_repeats:t.hello_repeats ~seed:t.run_seed
    ~start_spread:t.start_spread ~reliability ~faults:t.faults ~policy
    ~mutant:t.mutant (config t) (pathloss t) t.positions

let oracle t = Cbtc.Geo.run (config t) (pathloss t) t.positions

(* Under loss or injected faults a node may legitimately discover fewer
   reachable peers than the fault-free oracle, so completeness is only
   demanded of reliable fault-free runs. *)
let complete t = t.loss = 0. && Faults.Plan.nb_events t.faults = 0

let powers_grow ~oracle (o : Cbtc.Distributed.outcome) =
  let n = Array.length o.Cbtc.Distributed.alive in
  let err = ref None in
  for u = n - 1 downto 0 do
    if
      o.Cbtc.Distributed.alive.(u)
      && o.Cbtc.Distributed.discovery.Cbtc.Discovery.power.(u)
         < oracle.Cbtc.Discovery.power.(u) -. 1e-9
    then
      err :=
        Some
          (Fmt.str "node %d: power shrank below oracle (%g < %g)" u
             o.Cbtc.Distributed.discovery.Cbtc.Discovery.power.(u)
             oracle.Cbtc.Discovery.power.(u))
  done;
  match !err with None -> Ok () | Some msg -> Error msg

let check ?oracle:orc t o =
  let orc = match orc with Some d -> d | None -> oracle t in
  match t.invariant with
  | Oracle -> Cbtc.Verify.check_oracle ~oracle:orc o
  | Guarantees -> Cbtc.Verify.check_guarantees ~complete:(complete t) o
  | Powers_grow -> powers_grow ~oracle:orc o

(* Canonical run fingerprint: converged neighbor ids, powers, boundary
   and liveness flags, and the Remove count.  Two runs with the same
   digest reached the same converged state — the cross-[-j] determinism
   contract of Check.Explore is stated in terms of this. *)
let digest (o : Cbtc.Distributed.outcome) =
  let d = o.Cbtc.Distributed.discovery in
  let b = Buffer.create 1024 in
  Array.iteri
    (fun u nbs ->
      Buffer.add_string b (Printf.sprintf "n%d:" u);
      List.iter
        (fun (nb : Cbtc.Neighbor.t) ->
          Buffer.add_string b (string_of_int nb.Cbtc.Neighbor.id);
          Buffer.add_char b ',')
        nbs;
      Buffer.add_string b
        (Printf.sprintf "p=%.17g;b=%b;a=%b\n"
           d.Cbtc.Discovery.power.(u)
           d.Cbtc.Discovery.boundary.(u)
           o.Cbtc.Distributed.alive.(u)))
    d.Cbtc.Discovery.neighbors;
  Buffer.add_string b (Printf.sprintf "removals=%d" o.Cbtc.Distributed.removals);
  Digest.to_hex (Digest.string (Buffer.contents b))

let drop_nodes t ~keep =
  let n = nb_nodes t in
  if Array.length keep <> n then
    invalid_arg "Check.Scenario.drop_nodes: keep length mismatch";
  let mapping = Array.make n None in
  let next = ref 0 in
  for u = 0 to n - 1 do
    if keep.(u) then begin
      mapping.(u) <- Some !next;
      incr next
    end
  done;
  if !next < 2 then invalid_arg "Check.Scenario.drop_nodes: < 2 nodes kept";
  let positions =
    Array.of_list
      (List.filteri (fun u _ -> keep.(u)) (Array.to_list t.positions))
  in
  {
    t with
    positions;
    faults = Faults.Plan.restrict ~keep:(fun u -> mapping.(u)) t.faults;
  }

(* ---- JSON (de)serialization for replay artifacts ---- *)

let invariant_to_string = function
  | Oracle -> "oracle"
  | Guarantees -> "guarantees"
  | Powers_grow -> "powers-grow"

let invariant_of_string = function
  | "oracle" -> Oracle
  | "guarantees" -> Guarantees
  | "powers-grow" -> Powers_grow
  | s -> invalid_arg ("Check.Scenario: unknown invariant " ^ s)

let json_of_fault (e : Faults.Plan.event) =
  let open Obs.Jsonl in
  let kind =
    match e.Faults.Plan.kind with
    | Faults.Plan.Crash u -> [ ("kind", Str "crash"); ("node", Int u) ]
    | Faults.Plan.Recover u -> [ ("kind", Str "recover"); ("node", Int u) ]
    | Faults.Plan.Link_loss { src; dst; loss } ->
        [
          ("kind", Str "link-loss"); ("src", Int src); ("dst", Int dst);
          ("loss", Float loss);
        ]
  in
  Obj (("time", Float e.Faults.Plan.time) :: kind)

let jget k j =
  match Obs.Jsonl.member k j with
  | Some v -> v
  | None -> invalid_arg ("Check.Scenario: missing field " ^ k)

let jfloat = function
  | Obs.Jsonl.Float f -> f
  | Obs.Jsonl.Int i -> Stdlib.float_of_int i
  | _ -> invalid_arg "Check.Scenario: expected number"

let jint = function
  | Obs.Jsonl.Int i -> i
  | _ -> invalid_arg "Check.Scenario: expected int"

let jbool = function
  | Obs.Jsonl.Bool b -> b
  | _ -> invalid_arg "Check.Scenario: expected bool"

let jstr = function
  | Obs.Jsonl.Str s -> s
  | _ -> invalid_arg "Check.Scenario: expected string"

let jlist = function
  | Obs.Jsonl.List l -> l
  | _ -> invalid_arg "Check.Scenario: expected list"

let fault_of_json j =
  let time = jfloat (jget "time" j) in
  let kind =
    match jstr (jget "kind" j) with
    | "crash" -> Faults.Plan.Crash (jint (jget "node" j))
    | "recover" -> Faults.Plan.Recover (jint (jget "node" j))
    | "link-loss" ->
        Faults.Plan.Link_loss
          {
            src = jint (jget "src" j);
            dst = jint (jget "dst" j);
            loss = jfloat (jget "loss" j);
          }
    | s -> invalid_arg ("Check.Scenario: unknown fault kind " ^ s)
  in
  { Faults.Plan.time; kind }

let to_json t =
  let open Obs.Jsonl in
  Obj
    [
      ("alpha", Float t.alpha);
      ("exponent", Float t.exponent);
      ("coeff", Float t.coeff);
      ("max_range", Float t.max_range);
      ("p0", Float t.p0);
      ( "positions",
        List
          (Array.to_list t.positions
          |> List.map (fun (p : Geom.Vec2.t) ->
                 List [ Float p.Geom.Vec2.x; Float p.Geom.Vec2.y ])) );
      ("start_spread", Float t.start_spread);
      ("loss", Float t.loss);
      ("hello_repeats", Int t.hello_repeats);
      ("hardened", Bool t.hardened);
      ("run_seed", Int t.run_seed);
      ("faults", List (List.map json_of_fault (Faults.Plan.events t.faults)));
      ("mutant", Bool t.mutant);
      ("invariant", Str (invariant_to_string t.invariant));
    ]

let of_json j =
  let positions =
    jlist (jget "positions" j)
    |> List.map (fun p ->
           match jlist p with
           | [ x; y ] -> Geom.Vec2.make (jfloat x) (jfloat y)
           | _ -> invalid_arg "Check.Scenario: bad position")
    |> Array.of_list
  in
  {
    alpha = jfloat (jget "alpha" j);
    exponent = jfloat (jget "exponent" j);
    coeff = jfloat (jget "coeff" j);
    max_range = jfloat (jget "max_range" j);
    p0 = jfloat (jget "p0" j);
    positions;
    start_spread = jfloat (jget "start_spread" j);
    loss = jfloat (jget "loss" j);
    hello_repeats = jint (jget "hello_repeats" j);
    hardened = jbool (jget "hardened" j);
    run_seed = jint (jget "run_seed" j);
    faults =
      Faults.Plan.make (List.map fault_of_json (jlist (jget "faults" j)));
    mutant = jbool (jget "mutant" j);
    invariant = invariant_of_string (jstr (jget "invariant" j));
  }
