(** Minimization of a failing (placement, schedule, fault-plan) triple.

    Given a scenario that violates its invariant under some tie-break
    policy (typically a [Seeded] schedule found by {!Explore}), the
    shrinker searches for a smaller witness in three phases:

    + {e node deletion} — drop halves, then single nodes, keeping any
      deletion under which the failure (or {e a} failure) survives; the
      fault plan is renamed to the surviving ids
      ({!Scenario.drop_nodes});
    + {e decision-log prefixing} — replay the recorded priority log and
      binary-search the shortest failing prefix (pushes beyond the
      prefix fall back to FIFO), isolating the earliest reordering that
      matters;
    + {e fault-event dropping} — remove fault events one at a time while
      the failure persists.

    The result replays deterministically: running [scenario] under
    [Replay prios] fails with [message] on every machine and every
    [-j]. *)

type result = {
  scenario : Scenario.t;  (** minimized scenario *)
  prios : int array;  (** minimized replay log *)
  message : string;  (** the failure it reproduces *)
  runs : int;  (** protocol runs the shrink consumed *)
}

(** [minimize ?budget sc policy] shrinks a failing trial.  [budget]
    (default 400) caps the number of protocol runs across all phases;
    shrinking is best-effort within it and always returns a verified
    failing witness.
    @raise Invalid_argument when [budget < 1] or [sc] does not actually
    fail under [policy]. *)
val minimize : ?budget:int -> Scenario.t -> Dsim.Eventq.policy -> result
