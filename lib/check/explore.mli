(** Schedule exploration: sweep one scenario across many same-timestamp
    tie-break orders (and, optionally, a grid of fault plans), checking
    the scenario's invariant after every run.

    The sweep always includes the default [Fifo] schedule as trial 0,
    then [schedules] seeded random permutations; the whole grid runs in
    parallel over a {!Parallel.Pool} when one is given.  Trials are
    enumerated up-front in a fixed order and folded back in that order,
    so the report — including its aggregate digest — is bit-identical
    for every [-j]. *)

type failure = {
  trial : int;  (** index in the sweep's trial order *)
  policy : Dsim.Eventq.policy;  (** the schedule that failed *)
  scenario : Scenario.t;  (** concrete scenario incl. the trial's plan *)
  message : string;  (** the violated invariant (or a caught exception) *)
  log : int array;
      (** the recorded tie-break decision log — replaying it reproduces
          the failure; empty when the trial raised before completing *)
}

type report = {
  trials : int;
  schedules : int;  (** seeded schedules swept (excluding Fifo) *)
  plans : int;  (** fault plans in the grid *)
  failures : failure list;  (** in trial order *)
  digest : string;
      (** hex MD5 over all trial outcome digests in trial order — the
          sweep's reproducibility fingerprint *)
}

(** [sweep ?pool ?schedules ?seed ?plans sc] runs
    [(1 + schedules) * max 1 (length plans)] trials: policies
    [Fifo, Seeded s1 ... Seeded sN] (seeds derived from [seed],
    default 7; [schedules] defaults to 20) crossed with [plans]
    (default: the scenario's own fault plan).  Invariant failures and
    exceptions are collected, never raised.
    @raise Invalid_argument when [schedules < 0]. *)
val sweep :
  ?pool:Parallel.Pool.t ->
  ?schedules:int ->
  ?seed:int ->
  ?plans:Faults.Plan.t list ->
  Scenario.t ->
  report

val pp_policy : Dsim.Eventq.policy Fmt.t

val pp_report : report Fmt.t
