(** A fixed pool of OCaml 5 domains for embarrassingly parallel
    Monte-Carlo workloads.

    The pool is built once ({!create}) and reused for every batch: it
    owns [jobs - 1] worker domains blocked on a shared task queue, and
    the submitting domain itself executes tasks while a batch is in
    flight, so a pool of [jobs = k] keeps exactly [k] domains busy.

    {b Determinism.} None of the combinators below change {e what} is
    computed, only {e where}: {!map} preserves input order in its result
    array, and {!iter_chunks} hands out disjoint index ranges whose
    bodies write to disjoint state.  As long as each task derives its
    randomness from state created {e before} dispatch (see {!Seeds}),
    results are bit-identical for every [jobs] value and every task
    interleaving.  The whole test suite relies on this.

    {b The [jobs = 1] inline path.}  A pool created with [~jobs:1] spawns
    no domains and runs every batch inline in the calling domain —
    [map pool f arr] is then exactly [Array.map f arr].  Single-core
    hosts pay nothing for the abstraction.

    {b Exceptions.}  If tasks raise, the batch still runs to completion
    (no cancellation), and the exception of the {e lowest-indexed}
    failing task is re-raised in the submitting domain with that task's
    backtrace — the same exception a sequential run would have surfaced
    first.

    Nested submission (a task submitting a batch to the pool it runs on)
    is supported — the inner submitter helps drain the queue — but
    usually indicates the parallelism is at the wrong layer: prefer
    parallelizing the outermost trial loop only. *)

type t

(** [create ?obs ?jobs ()] builds a pool of [jobs] domains (the caller
    plus [jobs - 1] workers).  [jobs] defaults to {!default_jobs}[ ()].
    When [obs] is both enabled {e and clocked}, every batch records
    [pool.batches] / [pool.tasks] counters and a [pool.task_s] latency
    histogram; clockless recorders get nothing, because task counts and
    latencies depend on [jobs] and would break the byte-identical
    cross-[-j] output contract.
    @raise Invalid_argument unless [1 <= jobs <= 1024]. *)
val create : ?obs:Obs.Recorder.t -> ?jobs:int -> unit -> t

(** [jobs t] is the parallelism degree the pool was created with. *)
val jobs : t -> int

(** [default_jobs ()] is the [CBTC_JOBS] environment variable when set,
    otherwise [Domain.recommended_domain_count ()].
    @raise Invalid_argument when [CBTC_JOBS] is set but is not an
    integer in [1, 1024]. *)
val default_jobs : unit -> int

(** [map t f arr] is [Array.map f arr], with the applications distributed
    over the pool.  Result order equals input order regardless of
    execution order. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** [map_list t f l] is [List.map f l] via {!map}. *)
val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

(** [iter_chunks t ?chunk n f] calls [f lo hi] for consecutive disjoint
    ranges [\[lo, hi)] covering [\[0, n)], in parallel.  [chunk] bounds
    the range length (default: [n / (4 * jobs)], at least 1 — small
    enough to balance load, large enough to amortize dispatch).  With
    [jobs = 1] this is the single inline call [f 0 n].  The ranges
    partition [\[0, n)] exactly, so bodies writing [slot.(i)] for
    [i] in their range never race. *)
val iter_chunks : t -> ?chunk:int -> int -> (int -> int -> unit) -> unit

(** [shutdown t] terminates the worker domains and joins them.  Idempotent.
    Submitting to a shut-down pool raises [Invalid_argument]. *)
val shutdown : t -> unit

(** [with_pool ?obs ?jobs f] is [f pool] with {!shutdown} guaranteed on
    exit. *)
val with_pool : ?obs:Obs.Recorder.t -> ?jobs:int -> (t -> 'a) -> 'a
