(* Explicit loops (not [Array.init]) because the evaluation order of
   [Array.init]'s calls is unspecified, and stream [i] must be the [i]-th
   draw from the parent for the split to be schedule-independent. *)

let split_n prng n =
  if n < 0 then invalid_arg "Seeds.split_n: negative count";
  if n = 0 then [||]
  else begin
    let streams = Array.make n prng in
    for i = 0 to n - 1 do
      streams.(i) <- Prng.split prng
    done;
    streams
  end

let ints prng n =
  if n < 0 then invalid_arg "Seeds.ints: negative count";
  let seeds = Array.make n 0 in
  for i = 0 to n - 1 do
    seeds.(i) <- Int64.to_int (Prng.bits64 prng) land max_int
  done;
  seeds
