(** Pre-split PRNG streams for parallel tasks.

    The reproducibility contract of this repository is that every result
    is a pure function of integer seeds.  Handing one shared [Prng.t] to
    concurrently running tasks would break that (stream consumption order
    would depend on scheduling) — and is a data race besides.  Instead,
    split the parent generator into one independent splitmix64 stream per
    task {e before} dispatch, in task-index order: stream [i] then
    depends only on the parent's state and [i], never on which domain
    runs the task or when.  Results are bit-identical for every pool
    size and task interleaving. *)

(** [split_n prng n] advances [prng] [n] times and returns [n]
    independent generators; element [i] is the [i]-th split.
    @raise Invalid_argument when [n < 0]. *)
val split_n : Prng.t -> int -> Prng.t array

(** [ints prng n] is [n] non-negative integer seeds drawn from [prng],
    for workloads keyed on integer seeds rather than generators.
    @raise Invalid_argument when [n < 0]. *)
val ints : Prng.t -> int -> int array
