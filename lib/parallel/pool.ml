(* Fixed domain pool: [jobs - 1] worker domains blocked on one shared
   queue, plus the submitting domain, which executes tasks of its own
   batch until the batch completes.  All coordination goes through a
   single mutex and two condition variables; per-batch completion is an
   atomic countdown so concurrent (nested) batches never confuse each
   other — every waiter re-checks its own counter after a wake-up. *)

type t = {
  jobs : int;
  mutable workers : unit Domain.t array;
  queue : (unit -> unit) Queue.t;
  m : Mutex.t;
  work_available : Condition.t;  (* signalled when tasks are enqueued *)
  batch_done : Condition.t;  (* broadcast when some batch's last task ends *)
  mutable closed : bool;
  (* Pool metrics are recorded only when the recorder has a clock: task
     counts and latencies depend on [jobs] and scheduling, so they are
     wall-clock diagnostics, deliberately absent from deterministic
     (clockless) runs whose output must be identical across -j. *)
  obs : Obs.Recorder.t;
}

let max_jobs = 1024

let default_jobs () =
  match Sys.getenv_opt "CBTC_JOBS" with
  | None -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 && j <= max_jobs -> j
      | Some _ | None ->
          invalid_arg
            (Printf.sprintf
               "CBTC_JOBS must be an integer in [1,%d] (got %S)" max_jobs s))

let jobs t = t.jobs

(* every submit path checks this, including the jobs=1 inline paths, so
   use-after-shutdown fails the same way regardless of pool size *)
let check_open t =
  if t.closed then invalid_arg "Pool: used after shutdown"

let rec worker_loop t =
  Mutex.lock t.m;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.work_available t.m
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.m (* closed: exit *)
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.m;
    task ();
    worker_loop t
  end

let create ?(obs = Obs.Recorder.nil) ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 || jobs > max_jobs then
    invalid_arg (Printf.sprintf "Pool.create: jobs out of [1,%d]" max_jobs);
  let t =
    {
      jobs;
      workers = [||];
      queue = Queue.create ();
      m = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      closed = false;
      obs;
    }
  in
  t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

(* Run every thunk in [tasks], helping from the calling domain, and
   re-raise the lowest-indexed exception (with its backtrace) once the
   whole batch has finished.  Tasks are wrapped so a raise can never
   leave the countdown unbalanced. *)
let run_all t tasks =
  check_open t;
  let n = Array.length tasks in
  (* latency slots: each task writes its own index from its worker
     domain; the submitter reads them only after the batch completes
     (mutex/atomic ordering), then observes them in index order so the
     histogram is independent of which domain ran what *)
  let lat =
    match Obs.Recorder.now t.obs with
    | Some _ -> Some (Array.make (Stdlib.max n 1) 0.)
    | None -> None
  in
  let timed i task () =
    match lat with
    | None -> task ()
    | Some arr ->
        let t0 = Option.get (Obs.Recorder.now t.obs) in
        Fun.protect
          ~finally:(fun () ->
            arr.(i) <- Option.get (Obs.Recorder.now t.obs) -. t0)
          task
  in
  let record_batch () =
    match lat with
    | None -> ()
    | Some arr ->
        Obs.Recorder.incr t.obs "pool.batches";
        Obs.Recorder.incr ~by:n t.obs "pool.tasks";
        for i = 0 to n - 1 do
          Obs.Recorder.observe t.obs "pool.task_s" arr.(i)
        done
  in
  if n = 0 then ()
  else if t.jobs = 1 || n = 1 then begin
    (* inline path: plain sequential execution, exceptions propagate as-is *)
    Array.iteri (fun i task -> timed i task ()) tasks;
    record_batch ()
  end
  else begin
    let remaining = Atomic.make n in
    let errors = Array.make n None in
    let wrap i task () =
      (try timed i task ()
       with e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        (* last task of this batch: wake every submitter; each re-checks
           its own counter, so batches sharing the pool don't interfere *)
        Mutex.lock t.m;
        Condition.broadcast t.batch_done;
        Mutex.unlock t.m
      end
    in
    Mutex.lock t.m;
    if t.closed then begin
      Mutex.unlock t.m;
      invalid_arg "Pool: used after shutdown"
    end;
    Array.iteri (fun i task -> Queue.add (wrap i task) t.queue) tasks;
    Condition.broadcast t.work_available;
    (* help: drain tasks (ours or a nested batch's) while any are queued *)
    while not (Queue.is_empty t.queue) do
      let task = Queue.pop t.queue in
      Mutex.unlock t.m;
      task ();
      Mutex.lock t.m
    done;
    while Atomic.get remaining > 0 do
      Condition.wait t.batch_done t.m
    done;
    Mutex.unlock t.m;
    record_batch ();
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors
  end

let map t f arr =
  check_open t;
  let n = Array.length arr in
  (* the sequential shortcut skips [run_all] entirely, so take it only
     when no clocked recorder is waiting for batch/latency metrics *)
  if (t.jobs = 1 || n <= 1) && Obs.Recorder.now t.obs = None then
    Array.map f arr
  else begin
    let results = Array.make n None in
    run_all t
      (Array.init n (fun i () -> results.(i) <- Some (f arr.(i))));
    Array.map
      (function Some v -> v | None -> assert false (* run_all ran all *))
      results
  end

let map_list t f l = Array.to_list (map t f (Array.of_list l))

let iter_chunks t ?chunk n f =
  check_open t;
  if n > 0 then begin
    if t.jobs = 1 then begin
      match Obs.Recorder.now t.obs with
      | None -> f 0 n
      | Some _ -> run_all t [| (fun () -> f 0 n) |]
    end
    else begin
      let chunk =
        match chunk with
        | Some c when c >= 1 -> c
        | Some _ -> invalid_arg "Pool.iter_chunks: chunk must be >= 1"
        | None -> Stdlib.max 1 (n / (4 * t.jobs))
      in
      let ntasks = (n + chunk - 1) / chunk in
      run_all t
        (Array.init ntasks (fun i () ->
             let lo = i * chunk in
             f lo (Stdlib.min n (lo + chunk))))
    end
  end

let shutdown t =
  Mutex.lock t.m;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.m;
  if not was_closed then Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_pool ?obs ?jobs f =
  let t = create ?obs ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
