(** Degree/radius/power metrics over a topology — the quantities of the
    paper's Table 1 plus energy accounting. *)

(** [avg_degree g] is [2m/n]. *)
val avg_degree : Graphkit.Ugraph.t -> float

val degrees : Graphkit.Ugraph.t -> float array

(** [avg_radius radius] averages a per-node radius array. *)
val avg_radius : float array -> float

(** [avg_power pathloss radius] averages [p(radius_u)] (0 for isolated
    nodes). *)
val avg_power : Radio.Pathloss.t -> float array -> float

(** [total_edge_length positions g] sums Euclidean edge lengths. *)
val total_edge_length : Geom.Vec2.t array -> Graphkit.Ugraph.t -> float

val degree_summary : Graphkit.Ugraph.t -> Stats.Summary.t

val radius_summary : float array -> Stats.Summary.t
