let degrees g =
  Array.init (Graphkit.Ugraph.nb_nodes g) (fun u ->
      Stdlib.float_of_int (Graphkit.Ugraph.degree g u))

let avg_degree g =
  let n = Graphkit.Ugraph.nb_nodes g in
  if n = 0 then 0.
  else
    2.
    *. Stdlib.float_of_int (Graphkit.Ugraph.nb_edges g)
    /. Stdlib.float_of_int n

let avg_radius radius =
  let n = Array.length radius in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. radius /. Stdlib.float_of_int n

let avg_power pathloss radius =
  let n = Array.length radius in
  if n = 0 then 0.
  else
    Array.fold_left
      (fun acc r ->
        acc +. if r = 0. then 0. else Radio.Pathloss.power_for_distance pathloss r)
      0. radius
    /. Stdlib.float_of_int n

let total_edge_length positions g =
  let total = ref 0. in
  Graphkit.Ugraph.iter_edges
    (fun u v -> total := !total +. Geom.Vec2.dist positions.(u) positions.(v))
    g;
  !total

let degree_summary g = Stats.Summary.of_array (degrees g)

let radius_summary radius = Stats.Summary.of_array radius
