(** Stretch factors of a control topology relative to [G_R].

    The paper's competitiveness discussion bounds the {e power stretch}:
    the ratio between the cost of the best route in the controlled graph
    and in [G_R].  These functions measure it empirically (over all
    connected pairs), along with hop and Euclidean-length stretch. *)

type t = {
  max_stretch : float;  (** worst pair *)
  avg_stretch : float;  (** mean over connected pairs *)
  pairs : int;  (** number of pairs measured *)
}

(** [power_stretch energy positions ~reference g] uses link cost
    [Energy.link_cost] (transmission power plus overheads).  Pairs
    disconnected in [reference] are skipped; pairs disconnected in [g]
    but connected in [reference] yield infinite stretch.
    @raise Invalid_argument on node-count mismatch. *)
val power_stretch :
  Radio.Energy.t ->
  Geom.Vec2.t array ->
  reference:Graphkit.Ugraph.t ->
  Graphkit.Ugraph.t ->
  t

(** [distance_stretch positions ~reference g] uses Euclidean link cost. *)
val distance_stretch :
  Geom.Vec2.t array -> reference:Graphkit.Ugraph.t -> Graphkit.Ugraph.t -> t

(** [hop_stretch ~reference g] uses hop counts. *)
val hop_stretch : reference:Graphkit.Ugraph.t -> Graphkit.Ugraph.t -> t
