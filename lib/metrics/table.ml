type row = Cells of string list | Rule

type t = { columns : string list; mutable rows : row list }

let create ~columns = { columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let widths t =
  let rows = List.rev t.rows in
  let update acc cells =
    List.map2 (fun w c -> Stdlib.max w (String.length c)) acc cells
  in
  List.fold_left
    (fun acc -> function Cells cells -> update acc cells | Rule -> acc)
    (List.map String.length t.columns)
    rows

let pad width s = s ^ String.make (width - String.length s) ' '

let pp ppf t =
  let ws = widths t in
  let render cells = String.concat "  " (List.map2 pad ws cells) in
  let rule = String.concat "--" (List.map (fun w -> String.make w '-') ws) in
  Fmt.pf ppf "%s@." (render t.columns);
  Fmt.pf ppf "%s@." rule;
  List.iter
    (function
      | Cells cells -> Fmt.pf ppf "%s@." (render cells)
      | Rule -> Fmt.pf ppf "%s@." rule)
    (List.rev t.rows)

let to_string t = Fmt.str "%a" pp t
