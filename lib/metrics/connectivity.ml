let preserves ~reference g = Graphkit.Traversal.same_partition reference g

let component_sizes labels =
  let nb = Array.fold_left Stdlib.max (-1) labels + 1 in
  let sizes = Array.make nb 0 in
  Array.iter (fun l -> sizes.(l) <- sizes.(l) + 1) labels;
  sizes

let broken_pairs ~reference g =
  if Graphkit.Ugraph.nb_nodes reference <> Graphkit.Ugraph.nb_nodes g then
    invalid_arg "Connectivity.broken_pairs: node count mismatch";
  let lr = Graphkit.Traversal.components reference in
  let lg = Graphkit.Traversal.components g in
  let n = Array.length lr in
  let count = ref 0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if lr.(u) = lr.(v) && lg.(u) <> lg.(v) then incr count
    done
  done;
  !count

let nb_components = Graphkit.Traversal.nb_components

let isolated g =
  let count = ref 0 in
  for u = 0 to Graphkit.Ugraph.nb_nodes g - 1 do
    if Graphkit.Ugraph.degree g u = 0 then incr count
  done;
  !count

let giant_component_size g =
  let labels = Graphkit.Traversal.components g in
  if Array.length labels = 0 then 0
  else Array.fold_left Stdlib.max 0 (component_sizes labels)
