(** Plain-text aligned tables, used by the benchmark harness to print the
    Table 1 reproduction. *)

type t

(** [create ~columns] starts a table with the given header. *)
val create : columns:string list -> t

(** [add_row t cells] appends a row.
    @raise Invalid_argument when the arity differs from the header. *)
val add_row : t -> string list -> unit

(** [add_rule t] appends a horizontal rule. *)
val add_rule : t -> unit

val pp : t Fmt.t

val to_string : t -> string
