(** Interference proxy.

    The paper's second motivation for topology control: "the greater the
    power with which a node transmits, the greater the likelihood of the
    transmission interfering with other transmissions".  The standard
    receiver-centric proxy is {e coverage}: how many other nodes fall
    inside a node's transmission disk, i.e. are disturbed whenever it
    transmits. *)

type t = {
  avg_coverage : float;  (** mean nodes-per-transmission-disk *)
  max_coverage : int;  (** most-disturbing node *)
  total_coverage : int;
}

(** [coverage ?pool ?cutoff positions ~radius] computes the proxy for
    per-node transmission radii (a node with radius [0.] — isolated —
    disturbs nobody).  Disk membership is resolved through a [Geom.Grid]
    spatial index sized to the largest radius, so the cost is
    proportional to the disks' actual occupancy rather than n² pairs;
    below [cutoff] nodes (default [Geom.Grid.default_brute_cutoff]) and
    without a pool, a direct all-pairs scan is used instead (faster at
    small [n], identical counts; [~cutoff:0] forces the grid).  With
    [?pool] the per-node counts are computed chunked over the pool and
    folded sequentially, so results are bit-identical for any pool
    size.
    @raise Invalid_argument on array length mismatch. *)
val coverage :
  ?pool:Parallel.Pool.t ->
  ?cutoff:int ->
  Geom.Vec2.t array -> radius:float array -> t
