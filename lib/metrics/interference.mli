(** Interference proxy.

    The paper's second motivation for topology control: "the greater the
    power with which a node transmits, the greater the likelihood of the
    transmission interfering with other transmissions".  The standard
    receiver-centric proxy is {e coverage}: how many other nodes fall
    inside a node's transmission disk, i.e. are disturbed whenever it
    transmits. *)

type t = {
  avg_coverage : float;  (** mean nodes-per-transmission-disk *)
  max_coverage : int;  (** most-disturbing node *)
  total_coverage : int;
}

(** [coverage positions ~radius] computes the proxy for per-node
    transmission radii (a node with radius [0.] — isolated — disturbs
    nobody).  Disk membership is resolved through a [Geom.Grid] spatial
    index sized to the largest radius, so the cost is proportional to
    the disks' actual occupancy rather than n² pairs.
    @raise Invalid_argument on array length mismatch. *)
val coverage : Geom.Vec2.t array -> radius:float array -> t
