(** Connectivity-preservation checks — the paper's core correctness
    criterion (Theorem 2.1): two nodes are connected in the control
    topology iff they are connected in the max-power graph [G_R]. *)

(** [preserves ~reference g] holds when [g] induces exactly the same
    connected-component partition as [reference]. *)
val preserves : reference:Graphkit.Ugraph.t -> Graphkit.Ugraph.t -> bool

(** [broken_pairs ~reference g] counts unordered node pairs connected in
    [reference] but not in [g] — 0 iff no connectivity is lost.  (Pairs
    gained cannot occur when [g] is a subgraph of [reference].) *)
val broken_pairs : reference:Graphkit.Ugraph.t -> Graphkit.Ugraph.t -> int

val nb_components : Graphkit.Ugraph.t -> int

(** [isolated g] counts degree-0 nodes. *)
val isolated : Graphkit.Ugraph.t -> int

(** [giant_component_size g] is the size of the largest component. *)
val giant_component_size : Graphkit.Ugraph.t -> int
