type t = { avg_coverage : float; max_coverage : int; total_coverage : int }

(* Count, for each transmitter, the nodes inside its transmission disk.
   A spatial grid sized to the largest radius turns the all-pairs scan
   into per-node local probes; the exact disk test below is unchanged,
   so grid, brute and pooled paths count identical sets.  Per-node
   counts land in disjoint slots of [covered]; the totals are folded
   sequentially in index order afterwards, so the result is the same
   for any pool size. *)
let coverage ?pool ?(cutoff = Geom.Grid.default_brute_cutoff) positions
    ~radius =
  let n = Array.length positions in
  if Array.length radius <> n then
    invalid_arg "Interference.coverage: length mismatch";
  let max_radius = Array.fold_left Float.max 0. radius in
  let covered = Array.make n 0 in
  let in_disk u v =
    v <> u && Geom.Vec2.dist positions.(u) positions.(v) <= radius.(u)
  in
  if n > 0 && max_radius > 0. then begin
    let inline = match pool with None -> true | Some _ -> false in
    let body =
      (* the brute body writes the disk test out instead of calling
         [in_disk]: below the cutoff the whole routine is ~100 us and a
         per-pair closure call is measurable overhead *)
      if n < cutoff && inline then fun lo hi ->
        for u = lo to hi - 1 do
          let r = radius.(u) in
          if r > 0. then begin
            let pu = positions.(u) in
            let c = ref 0 in
            for v = 0 to n - 1 do
              if v <> u && Geom.Vec2.dist pu positions.(v) <= r then incr c
            done;
            covered.(u) <- !c
          end
        done
      else begin
        let grid = Geom.Grid.create ~range:max_radius positions in
        fun lo hi ->
          for u = lo to hi - 1 do
            if radius.(u) > 0. then
              covered.(u) <-
                Geom.Grid.fold_in_range grid positions.(u) ~dist:radius.(u)
                  ~init:0
                  ~f:(fun c v -> if in_disk u v then c + 1 else c)
          done
      end
    in
    match pool with
    | Some pool -> Parallel.Pool.iter_chunks pool n body
    | None -> body 0 n
  end;
  let max_coverage = Array.fold_left Stdlib.max 0 covered in
  let total = Array.fold_left ( + ) 0 covered in
  {
    avg_coverage =
      (if n = 0 then 0. else Stdlib.float_of_int total /. Stdlib.float_of_int n);
    max_coverage;
    total_coverage = total;
  }
