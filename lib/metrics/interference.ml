type t = { avg_coverage : float; max_coverage : int; total_coverage : int }

let coverage positions ~radius =
  let n = Array.length positions in
  if Array.length radius <> n then
    invalid_arg "Interference.coverage: length mismatch";
  let max_coverage = ref 0 in
  let total = ref 0 in
  for u = 0 to n - 1 do
    if radius.(u) > 0. then begin
      let covered = ref 0 in
      for v = 0 to n - 1 do
        if v <> u && Geom.Vec2.dist positions.(u) positions.(v) <= radius.(u)
        then incr covered
      done;
      total := !total + !covered;
      if !covered > !max_coverage then max_coverage := !covered
    end
  done;
  {
    avg_coverage =
      (if n = 0 then 0. else Stdlib.float_of_int !total /. Stdlib.float_of_int n);
    max_coverage = !max_coverage;
    total_coverage = !total;
  }
