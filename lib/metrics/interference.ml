type t = { avg_coverage : float; max_coverage : int; total_coverage : int }

(* Count, for each transmitter, the nodes inside its transmission disk.
   A spatial grid sized to the largest radius turns the all-pairs scan
   into per-node local probes; the exact disk test below is unchanged. *)
let coverage positions ~radius =
  let n = Array.length positions in
  if Array.length radius <> n then
    invalid_arg "Interference.coverage: length mismatch";
  let max_radius = Array.fold_left Float.max 0. radius in
  let grid =
    if n = 0 || max_radius <= 0. then None
    else Some (Geom.Grid.create ~range:max_radius positions)
  in
  let max_coverage = ref 0 in
  let total = ref 0 in
  (match grid with
  | None -> ()
  | Some grid ->
      for u = 0 to n - 1 do
        if radius.(u) > 0. then begin
          let covered =
            Geom.Grid.fold_in_range grid positions.(u) ~dist:radius.(u)
              ~init:0
              ~f:(fun c v ->
                if
                  v <> u
                  && Geom.Vec2.dist positions.(u) positions.(v) <= radius.(u)
                then c + 1
                else c)
          in
          total := !total + covered;
          if covered > !max_coverage then max_coverage := covered
        end
      done);
  {
    avg_coverage =
      (if n = 0 then 0. else Stdlib.float_of_int !total /. Stdlib.float_of_int n);
    max_coverage = !max_coverage;
    total_coverage = !total;
  }
