type t = { max_stretch : float; avg_stretch : float; pairs : int }

let of_costs ~reference_costs ~costs n =
  let max_stretch = ref 0. in
  let sum = ref 0. in
  let pairs = ref 0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let ref_cost = reference_costs u v in
      if Float.is_finite ref_cost && ref_cost > 0. then begin
        incr pairs;
        let s = costs u v /. ref_cost in
        if s > !max_stretch then max_stretch := s;
        sum := !sum +. s
      end
    done
  done;
  {
    max_stretch = !max_stretch;
    avg_stretch = (if !pairs = 0 then 0. else !sum /. Stdlib.float_of_int !pairs);
    pairs = !pairs;
  }

let all_pairs_dijkstra g ~cost =
  let n = Graphkit.Ugraph.nb_nodes g in
  Array.init n (fun src -> Graphkit.Shortest.dijkstra g ~cost ~src)

let weighted_stretch ~cost positions ~reference g =
  ignore positions;
  if Graphkit.Ugraph.nb_nodes reference <> Graphkit.Ugraph.nb_nodes g then
    invalid_arg "Stretch: node count mismatch";
  let n = Graphkit.Ugraph.nb_nodes g in
  let dr = all_pairs_dijkstra reference ~cost in
  let dg = all_pairs_dijkstra g ~cost in
  of_costs ~reference_costs:(fun u v -> dr.(u).(v)) ~costs:(fun u v -> dg.(u).(v)) n

let power_stretch energy positions ~reference g =
  let cost u v =
    Radio.Energy.link_cost energy (Geom.Vec2.dist positions.(u) positions.(v))
  in
  weighted_stretch ~cost positions ~reference g

let distance_stretch positions ~reference g =
  let cost u v = Geom.Vec2.dist positions.(u) positions.(v) in
  weighted_stretch ~cost positions ~reference g

let hop_stretch ~reference g =
  if Graphkit.Ugraph.nb_nodes reference <> Graphkit.Ugraph.nb_nodes g then
    invalid_arg "Stretch: node count mismatch";
  let n = Graphkit.Ugraph.nb_nodes g in
  let dist_of graph =
    Array.init n (fun src -> Graphkit.Traversal.hop_distances graph src)
  in
  let dr = dist_of reference and dg = dist_of g in
  let to_float d = if d = Stdlib.max_int then Float.infinity else Stdlib.float_of_int d in
  of_costs
    ~reference_costs:(fun u v -> to_float dr.(u).(v))
    ~costs:(fun u v -> to_float dg.(u).(v))
    n
