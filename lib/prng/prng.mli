(** Deterministic pseudo-random numbers (splitmix64).

    Every experiment in this repository derives all randomness from a
    single integer seed through this module, so results are reproducible
    bit-for-bit across runs and OCaml versions (the stdlib [Random] gives
    no such cross-version guarantee).

    The generator is splitmix64 (Steele, Lea, Flood 2014): a 64-bit state
    advanced by a Weyl sequence and finalized with an avalanching mixer.
    It is fast, has a full 2^64 period, and supports cheap independent
    substreams via {!split}. *)

type t

(** [create ~seed] is a fresh generator. *)
val create : seed:int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] advances [t] and returns a new generator whose stream is
    independent of the remainder of [t]'s stream.  Used to give each
    simulated node or each experiment repetition its own stream. *)
val split : t -> t

(** [bits64 t] is the next raw 64-bit output. *)
val bits64 : t -> int64

(** [float t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)
val float : t -> float -> float

(** [uniform t ~lo ~hi] is uniform in [\[lo, hi)]. *)
val uniform : t -> lo:float -> hi:float -> float

(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)
val int : t -> int -> int

(** [bool t ~p] is [true] with probability [p]. *)
val bool : t -> p:float -> bool

(** [gaussian t ~mu ~sigma] is normally distributed (Box–Muller). *)
val gaussian : t -> mu:float -> sigma:float -> float

(** [exponential t ~rate] is exponentially distributed with the given
    rate (mean [1/rate]). *)
val exponential : t -> rate:float -> float

(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [choose t arr] is a uniformly chosen element of [arr].
    @raise Invalid_argument on an empty array. *)
val choose : t -> 'a array -> 'a
