type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = mix (bits64 t) }

(* Top 53 bits give a uniform float in [0, 1). *)
let unit_float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let float t bound =
  if bound <= 0. then invalid_arg "Prng.float: non-positive bound";
  unit_float t *. bound

let uniform t ~lo ~hi =
  if hi <= lo then invalid_arg "Prng.uniform: empty interval";
  lo +. (unit_float t *. (hi -. lo))

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: non-positive bound";
  (* Rejection-free for our purposes: bounds are far below 2^53. *)
  Stdlib.int_of_float (unit_float t *. Stdlib.float_of_int bound)

let bool t ~p = unit_float t < p

let gaussian t ~mu ~sigma =
  (* Box–Muller; we deliberately discard the second variate to keep the
     stream position independent of call history. *)
  let u1 = Float.max 1e-300 (unit_float t) in
  let u2 = unit_float t in
  let r = sqrt (-2. *. log u1) in
  mu +. (sigma *. r *. cos (2. *. Float.pi *. u2))

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Prng.exponential: non-positive rate";
  let u = Float.max 1e-300 (unit_float t) in
  -.log u /. rate

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))
