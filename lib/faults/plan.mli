(** Deterministic fault schedules.

    A plan is a time-ordered list of fault events — node crashes and
    recoveries, and per-link loss changes (from which network partitions
    are built) — generated up front from a PRNG so every stress run is
    reproducible bit-for-bit from one integer seed.  {!Inject.arm} turns
    a plan into scheduled simulator events against an {!Airnet.Net}. *)

type kind =
  | Crash of int
  | Recover of int
  | Link_loss of { src : int; dst : int; loss : float }
      (** set the directed link's injected loss (1. severs it) *)

type event = { time : float; kind : kind }

type t

val empty : t

(** [make events] is a plan with the events sorted by time (stable).
    @raise Invalid_argument on a negative time or a [Link_loss] outside
    [0, 1]. *)
val make : event list -> t

(** [events t] — time-ordered. *)
val events : t -> event list

(** [union a b] merges two plans (stable time order). *)
val union : t -> t -> t

(** [crashed_nodes t] is the sorted list of distinct nodes the plan
    crashes at some point (whether or not it later recovers them). *)
val crashed_nodes : t -> int list

val nb_events : t -> int

(** [random_crashes ~prng ~n ~fraction ~window ?recover_after ()] crashes
    [round (fraction *. n)] distinct nodes (chosen uniformly) at times
    uniform in [window]; when [recover_after] is given each crashed node
    recovers that long after its crash.
    @raise Invalid_argument unless [0 <= fraction <= 1], [n >= 0] and the
    window is ordered with a non-negative start. *)
val random_crashes :
  prng:Prng.t ->
  n:int ->
  fraction:float ->
  window:float * float ->
  ?recover_after:float ->
  unit ->
  t

(** [partition ~left ~right ~from_ ~until] severs every directed link
    between the two groups (loss 1. at [from_], restored at [until]) —
    a clean network partition for its duration.
    @raise Invalid_argument unless [0 <= from_ <= until]. *)
val partition : left:int list -> right:int list -> from_:float -> until:float -> t

(** [random_asymmetric_loss ~prng ~n ~pairs ~loss ~time] picks [pairs]
    random {e directed} links (src <> dst) and sets each one's injected
    loss to a value uniform in the [loss] interval at [time] — the
    reverse direction is left untouched, modelling asymmetric links.
    @raise Invalid_argument on a negative time/pairs, [n < 2], or a loss
    interval outside [0, 1]. *)
val random_asymmetric_loss :
  prng:Prng.t -> n:int -> pairs:int -> loss:float * float -> time:float -> t

(** [restrict ~keep t] renames node ids through [keep] and drops every
    event touching a node for which [keep] is [None] (a [Link_loss]
    survives only when both endpoints do).  Used when shrinking a
    failing scenario: deleting nodes compacts the id space, and the
    fault plan must follow the survivors. *)
val restrict : keep:(int -> int option) -> t -> t

val pp : t Fmt.t
