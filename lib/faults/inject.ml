type stats = {
  mutable crashes : int;
  mutable recoveries : int;
  mutable link_changes : int;
}

let arm plan net =
  let stats = { crashes = 0; recoveries = 0; link_changes = 0 } in
  let sim = Airnet.Net.sim net in
  List.iter
    (fun (e : Plan.event) ->
      let delay = Float.max 0. (e.time -. Dsim.Sim.now sim) in
      ignore
        (Dsim.Sim.schedule sim ~delay (fun () ->
             match e.kind with
             | Plan.Crash u ->
                 if Airnet.Net.is_alive net u then begin
                   Airnet.Net.crash net u;
                   stats.crashes <- stats.crashes + 1
                 end
             | Plan.Recover u ->
                 if not (Airnet.Net.is_alive net u) then begin
                   Airnet.Net.recover net u;
                   stats.recoveries <- stats.recoveries + 1
                 end
             | Plan.Link_loss { src; dst; loss } ->
                 Airnet.Net.set_link_loss net ~src ~dst ~loss;
                 stats.link_changes <- stats.link_changes + 1)))
    (Plan.events plan);
  stats
