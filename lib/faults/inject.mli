(** Applying a fault plan to a live simulated network.

    {!arm} schedules one simulator event per plan entry; the returned
    {!stats} record is updated as the faults actually fire, so a report
    can distinguish planned from effective faults (a [Crash] aimed at an
    already-dead node, for instance, transitions nothing). *)

type stats = {
  mutable crashes : int;  (** live -> dead transitions performed *)
  mutable recoveries : int;  (** dead -> live transitions performed *)
  mutable link_changes : int;  (** link-loss table updates applied *)
}

(** [arm plan net] schedules every event of [plan] on [net]'s simulator
    (events whose time is already past fire as soon as the simulator
    runs).  Returns the live stats record. *)
val arm : Plan.t -> 'msg Airnet.Net.t -> stats
