type kind =
  | Crash of int
  | Recover of int
  | Link_loss of { src : int; dst : int; loss : float }

type event = { time : float; kind : kind }

type t = { events : event list }

let empty = { events = [] }

let check_event e =
  if e.time < 0. || not (Float.is_finite e.time) then
    invalid_arg "Faults.Plan: negative event time";
  match e.kind with
  | Link_loss { loss; _ } when loss < 0. || loss > 1. ->
      invalid_arg "Faults.Plan: link loss out of [0,1]"
  | _ -> ()

let sort_events events =
  List.stable_sort (fun a b -> Float.compare a.time b.time) events

let make events =
  List.iter check_event events;
  { events = sort_events events }

let events t = t.events

let union a b = { events = sort_events (a.events @ b.events) }

let nb_events t = List.length t.events

let crashed_nodes t =
  List.filter_map (function { kind = Crash u; _ } -> Some u | _ -> None) t.events
  |> List.sort_uniq Int.compare

let random_crashes ~prng ~n ~fraction ~window:(w0, w1) ?recover_after () =
  if n < 0 then invalid_arg "Faults.Plan.random_crashes: n < 0";
  if fraction < 0. || fraction > 1. then
    invalid_arg "Faults.Plan.random_crashes: fraction out of [0,1]";
  if w0 < 0. || w1 < w0 then
    invalid_arg "Faults.Plan.random_crashes: bad window";
  (match recover_after with
  | Some d when d < 0. ->
      invalid_arg "Faults.Plan.random_crashes: negative recover_after"
  | _ -> ());
  let victims = Stdlib.min n (int_of_float (Float.round (fraction *. Stdlib.float_of_int n))) in
  let ids = Array.init n Fun.id in
  Prng.shuffle prng ids;
  let events = ref [] in
  for i = 0 to victims - 1 do
    let u = ids.(i) in
    let at = if w1 = w0 then w0 else Prng.uniform prng ~lo:w0 ~hi:w1 in
    events := { time = at; kind = Crash u } :: !events;
    match recover_after with
    | Some d -> events := { time = at +. d; kind = Recover u } :: !events
    | None -> ()
  done;
  make !events

let partition ~left ~right ~from_ ~until =
  if from_ < 0. || until < from_ then
    invalid_arg "Faults.Plan.partition: bad interval";
  let events = ref [] in
  let sever time loss =
    List.iter
      (fun u ->
        List.iter
          (fun v ->
            if u <> v then begin
              events := { time; kind = Link_loss { src = u; dst = v; loss } } :: !events;
              events := { time; kind = Link_loss { src = v; dst = u; loss } } :: !events
            end)
          right)
      left
  in
  sever from_ 1.;
  sever until 0.;
  make !events

let random_asymmetric_loss ~prng ~n ~pairs ~loss:(lo, hi) ~time =
  if n < 2 then invalid_arg "Faults.Plan.random_asymmetric_loss: n < 2";
  if pairs < 0 then invalid_arg "Faults.Plan.random_asymmetric_loss: pairs < 0";
  if time < 0. then invalid_arg "Faults.Plan.random_asymmetric_loss: negative time";
  if lo < 0. || hi < lo || hi > 1. then
    invalid_arg "Faults.Plan.random_asymmetric_loss: loss interval out of [0,1]";
  let events = ref [] in
  for _ = 1 to pairs do
    let src = Prng.int prng n in
    let dst = (src + 1 + Prng.int prng (n - 1)) mod n in
    let loss = if hi = lo then lo else Prng.uniform prng ~lo ~hi in
    events := { time; kind = Link_loss { src; dst; loss } } :: !events
  done;
  make !events

let restrict ~keep t =
  let node u = keep u in
  let events =
    List.filter_map
      (fun e ->
        match e.kind with
        | Crash u -> Option.map (fun u' -> { e with kind = Crash u' }) (node u)
        | Recover u ->
            Option.map (fun u' -> { e with kind = Recover u' }) (node u)
        | Link_loss { src; dst; loss } -> (
            match (node src, node dst) with
            | Some src, Some dst ->
                Some { e with kind = Link_loss { src; dst; loss } }
            | _ -> None))
      t.events
  in
  { events }

let pp_kind ppf = function
  | Crash u -> Fmt.pf ppf "crash %d" u
  | Recover u -> Fmt.pf ppf "recover %d" u
  | Link_loss { src; dst; loss } ->
      Fmt.pf ppf "link %d->%d loss=%.2f" src dst loss

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list (fun ppf e -> Fmt.pf ppf "t=%.1f %a" e.time pp_kind e.kind))
    t.events
