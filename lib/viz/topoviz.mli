(** Topology rendering: the Figure 6 panels of the paper.

    Renders node positions and an undirected edge set to SVG (or a coarse
    ASCII grid for terminals), scaled to fit a square canvas. *)

type style = {
  canvas : float;  (** output square side, px *)
  margin : float;
  node_radius : float;
  show_labels : bool;
  title : string option;
}

val default_style : style

val style :
  ?canvas:float -> ?margin:float -> ?node_radius:float -> ?show_labels:bool ->
  ?title:string -> unit -> style

(** [to_svg ?style ~field_width ~field_height positions g] renders the
    graph to an SVG document string. *)
val to_svg :
  ?style:style ->
  field_width:float ->
  field_height:float ->
  Geom.Vec2.t array ->
  Graphkit.Ugraph.t ->
  string

(** [write_svg ?style path ~field_width ~field_height positions g]. *)
val write_svg :
  ?style:style ->
  string ->
  field_width:float ->
  field_height:float ->
  Geom.Vec2.t array ->
  Graphkit.Ugraph.t ->
  unit

(** [to_ascii ?cols ?rows ~field_width ~field_height positions g] renders
    nodes ['o'] and edges ['.'] on a character grid. *)
val to_ascii :
  ?cols:int ->
  ?rows:int ->
  field_width:float ->
  field_height:float ->
  Geom.Vec2.t array ->
  Graphkit.Ugraph.t ->
  string
