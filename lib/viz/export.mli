(** Topology interchange: Graphviz DOT and CSV.

    Exports let downstream tools (graphviz, pandas, gephi) consume the
    topologies this library produces; the CSV round-trips through
    {!load_csv} (used by the test suite and handy for diffing runs). *)

(** [to_dot ?name positions g] is an undirected Graphviz document with
    node positions as [pos] attributes (inches, graphviz [neato -n]
    convention). *)
val to_dot : ?name:string -> Geom.Vec2.t array -> Graphkit.Ugraph.t -> string

(** [to_csv positions g] serializes as a two-section CSV:
    [node,id,x,y] lines followed by [edge,u,v] lines. *)
val to_csv : Geom.Vec2.t array -> Graphkit.Ugraph.t -> string

(** [load_csv s] parses {!to_csv} output back.
    @raise Failure on malformed input. *)
val load_csv : string -> Geom.Vec2.t array * Graphkit.Ugraph.t

(** [write_dot path positions g] / [write_csv path positions g]. *)
val write_dot : string -> Geom.Vec2.t array -> Graphkit.Ugraph.t -> unit

val write_csv : string -> Geom.Vec2.t array -> Graphkit.Ugraph.t -> unit
