(** Minimal SVG document builder — enough to render the paper's Figure 6
    topology panels without external dependencies. *)

type shape

val circle :
  ?fill:string -> ?stroke:string -> ?stroke_width:float ->
  cx:float -> cy:float -> r:float -> unit -> shape

val line :
  ?stroke:string -> ?stroke_width:float ->
  x1:float -> y1:float -> x2:float -> y2:float -> unit -> shape

val text :
  ?fill:string -> ?size:float -> x:float -> y:float -> string -> shape

val rect :
  ?fill:string -> ?stroke:string ->
  x:float -> y:float -> w:float -> h:float -> unit -> shape

(** [document ~width ~height shapes] is a complete standalone SVG. *)
val document : width:float -> height:float -> shape list -> string

(** [write_file path ~width ~height shapes]. *)
val write_file : string -> width:float -> height:float -> shape list -> unit
