type shape = string

let attr name value = Fmt.str " %s=\"%s\"" name value

let fattr name value = Fmt.str " %s=\"%g\"" name value

let opt_attr name = function None -> "" | Some v -> attr name v

let opt_fattr name = function None -> "" | Some v -> fattr name v

let circle ?fill ?stroke ?stroke_width ~cx ~cy ~r () =
  Fmt.str "<circle%s%s%s%s%s%s/>" (fattr "cx" cx) (fattr "cy" cy) (fattr "r" r)
    (opt_attr "fill" fill) (opt_attr "stroke" stroke)
    (opt_fattr "stroke-width" stroke_width)

let line ?stroke ?stroke_width ~x1 ~y1 ~x2 ~y2 () =
  Fmt.str "<line%s%s%s%s%s%s/>" (fattr "x1" x1) (fattr "y1" y1) (fattr "x2" x2)
    (fattr "y2" y2)
    (opt_attr "stroke" stroke)
    (opt_fattr "stroke-width" stroke_width)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let text ?fill ?size ~x ~y s =
  Fmt.str "<text%s%s%s%s>%s</text>" (fattr "x" x) (fattr "y" y)
    (opt_attr "fill" fill)
    (opt_fattr "font-size" size)
    (escape s)

let rect ?fill ?stroke ~x ~y ~w ~h () =
  Fmt.str "<rect%s%s%s%s%s%s/>" (fattr "x" x) (fattr "y" y) (fattr "width" w)
    (fattr "height" h) (opt_attr "fill" fill) (opt_attr "stroke" stroke)

let document ~width ~height shapes =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Fmt.str
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%g\" height=\"%g\" \
        viewBox=\"0 0 %g %g\">\n"
       width height width height);
  List.iter
    (fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\n')
    shapes;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write_file path ~width ~height shapes =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (document ~width ~height shapes))
