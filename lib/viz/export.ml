let to_dot ?(name = "topology") positions g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Fmt.str "graph %s {\n  node [shape=point];\n" name);
  Array.iteri
    (fun u (p : Geom.Vec2.t) ->
      Buffer.add_string buf
        (Fmt.str "  %d [pos=\"%g,%g!\"];\n" u (p.Geom.Vec2.x /. 72.)
           (p.Geom.Vec2.y /. 72.)))
    positions;
  Graphkit.Ugraph.iter_edges
    (fun u v -> Buffer.add_string buf (Fmt.str "  %d -- %d;\n" u v))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_csv positions g =
  let buf = Buffer.create 4096 in
  Array.iteri
    (fun u (p : Geom.Vec2.t) ->
      Buffer.add_string buf
        (Fmt.str "node,%d,%.17g,%.17g\n" u p.Geom.Vec2.x p.Geom.Vec2.y))
    positions;
  Graphkit.Ugraph.iter_edges
    (fun u v -> Buffer.add_string buf (Fmt.str "edge,%d,%d\n" u v))
    g;
  Buffer.contents buf

let load_csv s =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s)
  in
  let nodes = ref [] in
  let edges = ref [] in
  List.iter
    (fun line ->
      match String.split_on_char ',' line with
      | [ "node"; id; x; y ] -> (
          match (int_of_string_opt id, float_of_string_opt x, float_of_string_opt y) with
          | Some id, Some x, Some y -> nodes := (id, Geom.Vec2.make x y) :: !nodes
          | _ -> failwith ("Export.load_csv: bad node line: " ^ line))
      | [ "edge"; u; v ] -> (
          match (int_of_string_opt u, int_of_string_opt v) with
          | Some u, Some v -> edges := (u, v) :: !edges
          | _ -> failwith ("Export.load_csv: bad edge line: " ^ line))
      | _ -> failwith ("Export.load_csv: unrecognized line: " ^ line))
    lines;
  let nodes = List.sort (fun (a, _) (b, _) -> Int.compare a b) (List.rev !nodes) in
  let n = List.length nodes in
  List.iteri
    (fun expect (id, _) ->
      if id <> expect then failwith "Export.load_csv: node ids not dense")
    nodes;
  let positions = Array.of_list (List.map snd nodes) in
  let g = Graphkit.Ugraph.create n in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        failwith "Export.load_csv: edge endpoint out of range";
      Graphkit.Ugraph.add_edge g u v)
    (List.rev !edges);
  (positions, g)

let write_string path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let write_dot path positions g = write_string path (to_dot positions g)

let write_csv path positions g = write_string path (to_csv positions g)
