type style = {
  canvas : float;
  margin : float;
  node_radius : float;
  show_labels : bool;
  title : string option;
}

let default_style =
  { canvas = 600.; margin = 20.; node_radius = 3.; show_labels = false;
    title = None }

let style ?(canvas = 600.) ?(margin = 20.) ?(node_radius = 3.)
    ?(show_labels = false) ?title () =
  { canvas; margin; node_radius; show_labels; title }

let scaler style ~field_width ~field_height =
  let usable = style.canvas -. (2. *. style.margin) in
  let sx = usable /. field_width and sy = usable /. field_height in
  let s = Float.min sx sy in
  fun (p : Geom.Vec2.t) ->
    (* SVG y grows downward; flip so the rendering matches the plane. *)
    ( style.margin +. (p.Geom.Vec2.x *. s),
      style.canvas -. style.margin -. (p.Geom.Vec2.y *. s) )

let to_svg ?(style = default_style) ~field_width ~field_height positions g =
  let scale = scaler style ~field_width ~field_height in
  let shapes = ref [] in
  let push s = shapes := s :: !shapes in
  push
    (Svg.rect ~fill:"white" ~stroke:"#cccccc" ~x:0. ~y:0. ~w:style.canvas
       ~h:style.canvas ());
  Graphkit.Ugraph.iter_edges
    (fun u v ->
      let x1, y1 = scale positions.(u) and x2, y2 = scale positions.(v) in
      push (Svg.line ~stroke:"#4a6fa5" ~stroke_width:0.8 ~x1 ~y1 ~x2 ~y2 ()))
    g;
  Array.iteri
    (fun u p ->
      let cx, cy = scale p in
      push (Svg.circle ~fill:"#222222" ~cx ~cy ~r:style.node_radius ());
      if style.show_labels then
        push
          (Svg.text ~fill:"#666666" ~size:(3. *. style.node_radius)
             ~x:(cx +. style.node_radius) ~y:(cy -. style.node_radius)
             (string_of_int u)))
    positions;
  (match style.title with
  | None -> ()
  | Some title ->
      push (Svg.text ~fill:"#000000" ~size:14. ~x:style.margin ~y:14. title));
  Svg.document ~width:style.canvas ~height:style.canvas (List.rev !shapes)

let write_svg ?style path ~field_width ~field_height positions g =
  let doc = to_svg ?style ~field_width ~field_height positions g in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc doc)

let to_ascii ?(cols = 72) ?(rows = 36) ~field_width ~field_height positions g =
  if cols <= 1 || rows <= 1 then invalid_arg "Topoviz.to_ascii: grid too small";
  let grid = Array.make_matrix rows cols ' ' in
  let cell (p : Geom.Vec2.t) =
    let c =
      Stdlib.min (cols - 1)
        (Stdlib.int_of_float (p.Geom.Vec2.x /. field_width *. Stdlib.float_of_int cols))
    in
    let r =
      Stdlib.min (rows - 1)
        (Stdlib.int_of_float (p.Geom.Vec2.y /. field_height *. Stdlib.float_of_int rows))
    in
    (rows - 1 - r, c)
  in
  (* Edges first so node markers overwrite them. *)
  Graphkit.Ugraph.iter_edges
    (fun u v ->
      let r1, c1 = cell positions.(u) and r2, c2 = cell positions.(v) in
      let steps = Stdlib.max (abs (r2 - r1)) (abs (c2 - c1)) in
      for i = 1 to steps - 1 do
        let t = Stdlib.float_of_int i /. Stdlib.float_of_int steps in
        let r = r1 + Stdlib.int_of_float (t *. Stdlib.float_of_int (r2 - r1)) in
        let c = c1 + Stdlib.int_of_float (t *. Stdlib.float_of_int (c2 - c1)) in
        if grid.(r).(c) = ' ' then grid.(r).(c) <- '.'
      done)
    g;
  Array.iter (fun p -> let r, c = cell p in grid.(r).(c) <- 'o') positions;
  let buf = Buffer.create (rows * (cols + 1)) in
  Array.iter
    (fun row ->
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    grid;
  Buffer.contents buf
