(** Per-link propagation environment.

    The paper's model makes the required link power a pure function of
    distance: [p(d) = c * d^n] ({!Pathloss}).  Real environments add
    log-normal shadowing and obstacle attenuation, breaking the
    distance-monotone reachability every layer of the pipeline silently
    assumes (cf. Sethu & Gerety, arXiv 0709.0961).  An [Env] models this
    as a per-link excess: the required link power between nodes [u] and
    [v] at distance [d] is

    {v p_env(u, v, d) = p(d) * 10^(X_uv / 10) v}

    where [X_uv] (in dB) is the sum of

    - {b shadowing}: a deterministic, symmetric log-normal draw
      [N(0, sigma_db^2)] hashed from [(shadow_seed, {u, v})] and clamped
      to [+/- clamp_db] (default [3 * sigma_db]);
    - {b obstacle loss}: [loss_db] for every obstacle disc the segment
      [u--v] crosses;
    - {b height loss}: [height_loss_db * |h_u - h_v|] for 3D-projected
      placements carrying per-node heights (ids beyond the heights
      array sit at height 0, so the term is total in the node id).

    [X] is a pure function of the unordered pair and the environment —
    no PRNG state is consumed — so discovery under an [Env] remains a
    pure function of (positions, env): symmetric links, deterministic
    across runs and [-j], and safe for the incremental daemon engine.

    With [sigma_db = 0], no obstacles and no height loss, [X = 0] and
    every predicate below degrades to its {!Pathloss} counterpart;
    wired call sites additionally branch on {!is_trivial} so the
    trivial environment is {e bit-identical} to the env-free pipeline
    (pinned by the differential suite in [test/test_env.ml]). *)

(** An attenuating disc: any link whose segment crosses it pays
    [loss_db] extra decibels. *)
type obstacle = private {
  center : Geom.Vec2.t;
  radius : float;
  loss_db : float;
}

type t

(** [obstacle ~center ~radius ~loss_db] validates and builds a disc.
    @raise Invalid_argument unless [radius > 0] and [loss_db >= 0]. *)
val obstacle : center:Geom.Vec2.t -> radius:float -> loss_db:float -> obstacle

(** [make ?sigma_db ?shadow_seed ?clamp_db ?obstacles ?heights
    ?height_loss_db pathloss] builds an environment over [pathloss].
    Defaults: [sigma_db = 0.], [shadow_seed = 0],
    [clamp_db = 3 *. sigma_db], no obstacles, no heights,
    [height_loss_db = 0.].
    @raise Invalid_argument on negative [sigma_db], [clamp_db] or
    [height_loss_db], non-finite heights, or malformed obstacles. *)
val make :
  ?sigma_db:float ->
  ?shadow_seed:int ->
  ?clamp_db:float ->
  ?obstacles:obstacle array ->
  ?heights:float array ->
  ?height_loss_db:float ->
  Pathloss.t ->
  t

(** [trivial pathloss] is the identity environment: [X_uv = 0] for all
    pairs. *)
val trivial : Pathloss.t -> t

(** [relabel ~labels t] presents [t] under renamed node ids: a query for
    node [i] draws shadowing and heights as node [labels.(i)] of the
    original environment.  Shadowing and heights are keyed by node id,
    so a caller running discovery over a renumbered subset — e.g. the
    survivors of a lifetime run, compacted to dense local ids — must
    translate ids back or every rebuild would redraw the fading of the
    same physical link.  Obstacle losses are purely positional and are
    unaffected.  Relabeling a relabeled environment composes.
    @raise Invalid_argument (possibly deferred to the first query) on a
    negative label or a queried id outside [labels]. *)
val relabel : labels:int array -> t -> t

(** [is_trivial t] holds when [X_uv = 0] for every pair — call sites use
    it to fall back to the bit-identical {!Pathloss}-only code path. *)
val is_trivial : t -> bool

val pathloss : t -> Pathloss.t
val sigma_db : t -> float
val clamp_db : t -> float
val shadow_seed : t -> int

(** [max_link_cap t] is [Pathloss.reach_cap ~power:P]: the largest env
    link power an edge of [G_R^env] may have.  Hot loops compare
    {!link_power} against it directly. *)
val max_link_cap : t -> float

(** [shadow_db t ~u ~v] is the shadowing term of [X_uv] in dB.
    Symmetric ([shadow_db ~u ~v = shadow_db ~u:v ~v:u]), deterministic
    in [(shadow_seed, {u, v})], and clamped to [+/- clamp_db]. *)
val shadow_db : t -> u:int -> v:int -> float

(** [excess_db t ~u ~v ~pu ~pv] is the full [X_uv] in dB: shadowing plus
    obstacle crossings of the segment [pu--pv] plus height loss. *)
val excess_db : t -> u:int -> v:int -> pu:Geom.Vec2.t -> pv:Geom.Vec2.t -> float

(** [link_power t ~u ~v ~pu ~pv ~dist] is [p_env(u, v, dist)] — the
    minimum power that establishes the link.  [dist] must be the
    distance between [pu] and [pv] (passed in so call sites keep their
    own float spelling). *)
val link_power :
  t -> u:int -> v:int -> pu:Geom.Vec2.t -> pv:Geom.Vec2.t -> dist:float -> float

(** Env counterpart of [Pathloss.reaches]. *)
val reaches :
  t ->
  power:float ->
  u:int ->
  v:int ->
  pu:Geom.Vec2.t ->
  pv:Geom.Vec2.t ->
  dist:float ->
  bool

(** Env counterpart of [Pathloss.in_range]: membership in [G_R^env]. *)
val in_range :
  t -> u:int -> v:int -> pu:Geom.Vec2.t -> pv:Geom.Vec2.t -> dist:float -> bool

(** [rx_power t ~tx_power ...] is the reception power after both
    free-space attenuation and the environment's excess loss, so
    [Pathloss.estimate_link_power] applied to it recovers
    [p_env(u, v, max(dist, 1))] — the paper's estimation assumption
    lifted to the environment. *)
val rx_power :
  t ->
  tx_power:float ->
  u:int ->
  v:int ->
  pu:Geom.Vec2.t ->
  pv:Geom.Vec2.t ->
  dist:float ->
  float

(** [headroom t] is [10^(clamp_db / 10)]: the largest factor by which
    the environment can {e lower} a required link power (obstacles and
    heights only add loss). *)
val headroom : t -> float

(** [probe_radius t ~power] bounds the distances {!reaches} accepts at
    [power]: the sigma-aware inflated radius grid prefilters must probe
    ([Pathloss.distance_for_power] of [reach_cap ~power * headroom t]).
    Exact predicates then decide membership. *)
val probe_radius : t -> power:float -> float

(** [max_reach t] is [probe_radius] at maximum power: the probe radius
    bounding the support of [G_R^env]. *)
val max_reach : t -> float

val pp : t Fmt.t
