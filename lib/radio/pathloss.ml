type t = {
  exponent : float;
  coeff : float;
  max_range : float;
  max_power : float;
}

let reference_distance = 1.0

let make ?(exponent = 2.) ?(coeff = 1.) ~max_range () =
  if exponent < 1. then invalid_arg "Pathloss.make: exponent < 1";
  if coeff <= 0. then invalid_arg "Pathloss.make: non-positive coeff";
  if max_range <= 0. then invalid_arg "Pathloss.make: non-positive range";
  { exponent; coeff; max_range; max_power = coeff *. (max_range ** exponent) }

let exponent t = t.exponent

let coeff t = t.coeff

let max_range t = t.max_range

let max_power t = t.max_power

let power_for_distance t d =
  if d < 0. then invalid_arg "Pathloss.power_for_distance: negative distance";
  t.coeff *. (d ** t.exponent)

let distance_for_power t p =
  if p < 0. then invalid_arg "Pathloss.distance_for_power: negative power";
  (p /. t.coeff) ** (1. /. t.exponent)

let power_eps = 1e-9

let reach_cap ~power = (power *. (1. +. power_eps)) +. power_eps

let reaches t ~power ~dist = power_for_distance t dist <= reach_cap ~power

let in_range t ~dist = reaches t ~power:t.max_power ~dist

let reach_distance t ~power =
  if power < 0. then invalid_arg "Pathloss.reach_distance: negative power";
  distance_for_power t ((power *. (1. +. power_eps)) +. power_eps)

let rx_power t ~tx_power ~dist =
  if tx_power < 0. then invalid_arg "Pathloss.rx_power: negative power";
  tx_power /. (Float.max dist reference_distance ** t.exponent)

(* Below the reference distance the rx-power clamp erases distance
   information (rx = tx for every d < d0), so the raw recovery
   [c * tx / rx] resp. [(tx / rx)^(1/n)] under-reports for noisy or
   out-of-model inputs.  Saturate at the d0 image: the estimators
   return exactly [p(max(d, d0))] and [max(d, d0)] for model-generated
   inputs over all of (0, R] — pinned by the qcheck round-trip
   properties in test/test_radio.ml. *)
let estimate_link_power t ~tx_power ~rx_power =
  if rx_power <= 0. then invalid_arg "Pathloss.estimate_link_power";
  Float.max t.coeff (t.coeff *. tx_power /. rx_power)

let estimate_distance t ~tx_power ~rx_power =
  if rx_power <= 0. then invalid_arg "Pathloss.estimate_distance";
  Float.max reference_distance ((tx_power /. rx_power) ** (1. /. t.exponent))

let pp ppf t =
  Fmt.pf ppf "pathloss(p(d)=%g*d^%g, R=%g, P=%g)" t.coeff t.exponent
    t.max_range t.max_power
