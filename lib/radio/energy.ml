type t = { pathloss : Pathloss.t; tx_overhead : float; rx_overhead : float }

let make ?(tx_overhead = 0.) ?(rx_overhead = 0.) pathloss =
  if tx_overhead < 0. || rx_overhead < 0. then
    invalid_arg "Energy.make: negative overhead";
  { pathloss; tx_overhead; rx_overhead }

let link_cost t d =
  Pathloss.power_for_distance t.pathloss d +. t.tx_overhead +. t.rx_overhead

let path_cost t dists = List.fold_left (fun acc d -> acc +. link_cost t d) 0. dists
