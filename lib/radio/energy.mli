(** Per-link energy cost model.

    The paper's competitiveness discussion charges each hop the
    transmission power plus a constant receiver/processing overhead [k].
    We expose that as [link_cost = p(d) + tx_overhead + rx_overhead],
    which the power-stretch metric sums along routes. *)

type t = { pathloss : Pathloss.t; tx_overhead : float; rx_overhead : float }

(** [make ?tx_overhead ?rx_overhead pathloss] — overheads default to 0
    (pure transmission power, the paper's [k = 1]-style base case uses the
    raw [d^n]). *)
val make : ?tx_overhead:float -> ?rx_overhead:float -> Pathloss.t -> t

(** [link_cost t d] is the energy charged to a single hop of length [d]. *)
val link_cost : t -> float -> float

(** [path_cost t dists] sums {!link_cost} over hop lengths. *)
val path_cost : t -> float list -> float
