(* Per-link propagation environment: the required link power between u
   and v is [p(dist) * 10^(X_uv / 10)] where [X_uv] collects log-normal
   shadowing plus deterministic attenuation terms (obstacle crossings,
   height differences).  [X] is a pure function of the unordered pair
   and the environment — no hidden PRNG state — so discovery stays a
   pure function of (positions, env) and the incremental daemon engine
   remains provably equivalent to a full recompute. *)

type obstacle = {
  center : Geom.Vec2.t;
  radius : float;
  loss_db : float;
}

type t = {
  pathloss : Pathloss.t;
  sigma_db : float;
  shadow_seed : int;
  clamp_db : float;
  obstacles : obstacle array;
  heights : float array;
  height_loss_db : float;
  (* hoisted for the hot membership test: the largest env link power an
     edge of G_R^env may have *)
  max_link_cap : float;
  (* local-to-original id translation installed by [relabel]; [||] is
     the identity.  Shadowing and heights are keyed by node id, so a
     caller running discovery over a renumbered subset (e.g. the
     survivors of a lifetime run) must translate ids or every epoch
     would redraw the fading of the same physical link. *)
  labels : int array;
}

let obstacle ~center ~radius ~loss_db =
  if not (Float.is_finite radius) || radius <= 0. then
    invalid_arg "Env.obstacle: non-positive radius";
  if not (Float.is_finite loss_db) || loss_db < 0. then
    invalid_arg "Env.obstacle: negative loss";
  { center; radius; loss_db }

let make ?(sigma_db = 0.) ?(shadow_seed = 0) ?clamp_db ?(obstacles = [||])
    ?(heights = [||]) ?(height_loss_db = 0.) pathloss =
  if not (Float.is_finite sigma_db) || sigma_db < 0. then
    invalid_arg "Env.make: negative sigma";
  let clamp_db = match clamp_db with Some c -> c | None -> 3. *. sigma_db in
  if not (Float.is_finite clamp_db) || clamp_db < 0. then
    invalid_arg "Env.make: negative clamp";
  if not (Float.is_finite height_loss_db) || height_loss_db < 0. then
    invalid_arg "Env.make: negative height loss";
  Array.iter
    (fun o ->
      if not (Float.is_finite o.radius) || o.radius <= 0. then
        invalid_arg "Env.make: obstacle with non-positive radius";
      if not (Float.is_finite o.loss_db) || o.loss_db < 0. then
        invalid_arg "Env.make: obstacle with negative loss")
    obstacles;
  Array.iter
    (fun h ->
      if not (Float.is_finite h) then invalid_arg "Env.make: non-finite height")
    heights;
  {
    pathloss;
    sigma_db;
    shadow_seed;
    clamp_db;
    obstacles;
    heights;
    height_loss_db;
    max_link_cap = Pathloss.reach_cap ~power:(Pathloss.max_power pathloss);
    labels = [||];
  }

let trivial pathloss = make pathloss

let node_id t i =
  if Array.length t.labels = 0 then i
  else if i < 0 || i >= Array.length t.labels then
    invalid_arg "Env.relabel: node id outside the label table"
  else t.labels.(i)

let relabel ~labels t =
  Array.iter
    (fun l -> if l < 0 then invalid_arg "Env.relabel: negative label") labels;
  (* compose with any translation already installed, so relabeling a
     relabeled env still resolves to original ids *)
  { t with labels = Array.map (fun l -> node_id t l) labels }

let is_trivial t =
  t.sigma_db = 0.
  && Array.length t.obstacles = 0
  && (t.height_loss_db = 0. || Array.length t.heights = 0)

let pathloss t = t.pathloss
let sigma_db t = t.sigma_db
let clamp_db t = t.clamp_db
let shadow_seed t = t.shadow_seed
let max_link_cap t = t.max_link_cap

(* Shadowing: a splitmix64-style hash of (seed, min u v, max u v) feeds
   a Box-Muller draw, mirroring Prng's [mix] / [unit_float] / [gaussian]
   spellings exactly.  Symmetric by construction (the pair is sorted)
   and deterministic per (seed, pair); the clamp to +/- clamp_db keeps
   the probe radius finite. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let unit_of bits =
  Int64.to_float (Int64.shift_right_logical bits 11) *. 0x1p-53

let shadow_db t ~u ~v =
  if t.sigma_db <= 0. then 0.
  else begin
    let u = node_id t u and v = node_id t v in
    let lo, hi = if u <= v then (u, v) else (v, u) in
    let open Int64 in
    let z = mix (of_int t.shadow_seed) in
    let z = mix (add z (mul golden_gamma (of_int (lo + 1)))) in
    let b1 = mix (add z (mul golden_gamma (of_int (hi + 1)))) in
    let b2 = mix (add b1 golden_gamma) in
    let u1 = Float.max 1e-300 (unit_of b1) in
    let u2 = unit_of b2 in
    let r = sqrt (-2. *. log u1) in
    let x = t.sigma_db *. r *. cos (2. *. Float.pi *. u2) in
    Float.max (-.t.clamp_db) (Float.min t.clamp_db x)
  end

(* Squared distance from [c] to the segment [a, b]. *)
let seg_dist2 c a b =
  let open Geom.Vec2 in
  let dx = b.x -. a.x and dy = b.y -. a.y in
  let l2 = (dx *. dx) +. (dy *. dy) in
  if l2 <= 0. then dist2 c a
  else begin
    let s = (((c.x -. a.x) *. dx) +. ((c.y -. a.y) *. dy)) /. l2 in
    let s = Float.max 0. (Float.min 1. s) in
    let px = a.x +. (s *. dx) and py = a.y +. (s *. dy) in
    let ex = c.x -. px and ey = c.y -. py in
    (ex *. ex) +. (ey *. ey)
  end

let obstacle_db t ~pu ~pv =
  let acc = ref 0. in
  for i = 0 to Array.length t.obstacles - 1 do
    let o = t.obstacles.(i) in
    if seg_dist2 o.center pu pv <= o.radius *. o.radius then
      acc := !acc +. o.loss_db
  done;
  !acc

let height_db t ~u ~v =
  if t.height_loss_db = 0. || Array.length t.heights = 0 then 0.
  else begin
    (* total in the node id: ids beyond the heights array (e.g. probe
       nodes a caller appended after building the env) sit at height 0 *)
    let len = Array.length t.heights in
    let h i = if i < len then t.heights.(i) else 0. in
    t.height_loss_db *. Float.abs (h (node_id t u) -. h (node_id t v))
  end

let excess_db t ~u ~v ~pu ~pv =
  let x = shadow_db t ~u ~v in
  let x =
    if Array.length t.obstacles = 0 then x
    else begin
      (* canonicalize the segment direction by node id (the original id
         under a [relabel]): seg_dist2 is only symmetric up to rounding,
         and gain must be float-exactly symmetric in (u, v) for both
         discovery directions to agree *)
      let pa, pb =
        if node_id t u <= node_id t v then (pu, pv) else (pv, pu)
      in
      x +. obstacle_db t ~pu:pa ~pv:pb
    end
  in
  x +. height_db t ~u ~v

let link_power t ~u ~v ~pu ~pv ~dist =
  Pathloss.power_for_distance t.pathloss dist
  *. (10. ** (excess_db t ~u ~v ~pu ~pv /. 10.))

let reaches t ~power ~u ~v ~pu ~pv ~dist =
  link_power t ~u ~v ~pu ~pv ~dist <= Pathloss.reach_cap ~power

let in_range t ~u ~v ~pu ~pv ~dist =
  link_power t ~u ~v ~pu ~pv ~dist <= t.max_link_cap

let rx_power t ~tx_power ~u ~v ~pu ~pv ~dist =
  Pathloss.rx_power t.pathloss ~tx_power ~dist
  /. (10. ** (excess_db t ~u ~v ~pu ~pv /. 10.))

(* Shadowing can lower the required link power by at most clamp_db (all
   the other terms only add loss), so every pair [reaches] accepts at
   [power] sits within this radius — the sigma-aware inflation the grid
   prefilters probe. *)
let headroom t = 10. ** (t.clamp_db /. 10.)

let probe_radius t ~power =
  Pathloss.distance_for_power t.pathloss
    (Pathloss.reach_cap ~power *. headroom t)

let max_reach t = probe_radius t ~power:(Pathloss.max_power t.pathloss)

let pp ppf t =
  Fmt.pf ppf "env(%a, sigma=%gdB, clamp=%gdB, seed=%d, obstacles=%d%s)"
    Pathloss.pp t.pathloss t.sigma_db t.clamp_db t.shadow_seed
    (Array.length t.obstacles)
    (if t.height_loss_db > 0. && Array.length t.heights > 0 then ", 3d"
     else "")
