(** The paper's power model.

    Each node has a power function [p] where [p(d)] is the minimum power
    needed to establish a link to a node at distance [d]; transmission
    power grows as the [n]-th power of distance for some [n >= 2]
    (Rappaport), and the maximum power [P] is the same for all nodes, with
    [p(R) = P] defining the maximum communication range [R].

    Concretely [p(d) = c * d^n].  Reception power after free-space
    attenuation is modelled as [p' = p / max(d, d0)^n] with reference
    distance [d0 = 1]; from [(p, p')] a receiver can recover
    [p(d) = c * p / p'] — exactly the estimation assumption of Section 2
    of the paper. *)

type t

(** [make ?exponent ?coeff ~max_range ()] builds a model with
    [p(d) = coeff * d^exponent] and maximum power [P = p(max_range)].
    Defaults: [exponent = 2.], [coeff = 1.].
    @raise Invalid_argument unless [exponent >= 1.], [coeff > 0.],
    [max_range > 0.]. *)
val make : ?exponent:float -> ?coeff:float -> max_range:float -> unit -> t

val exponent : t -> float

val coeff : t -> float

(** [max_range t] is [R]. *)
val max_range : t -> float

(** [max_power t] is [P = p(R)]. *)
val max_power : t -> float

(** [power_for_distance t d] is [p(d)].  Monotone increasing in [d]. *)
val power_for_distance : t -> float -> float

(** [distance_for_power t p] is the inverse of {!power_for_distance}:
    the farthest distance reachable with power [p]. *)
val distance_for_power : t -> float -> float

(** [reaches t ~power ~dist] holds when transmitting at [power] reaches a
    node at distance [dist] (with a tiny tolerance for float round-trips). *)
val reaches : t -> power:float -> dist:float -> bool

(** [reach_cap ~power] is the largest link power {!reaches} accepts for
    [power] — the power plus its exact float tolerance.  [reaches] is
    literally [power_for_distance t dist <= reach_cap ~power]; hot loops
    hoist the cap once and compare link powers against it directly. *)
val reach_cap : power:float -> float

(** [in_range t ~dist] is [reaches t ~power:(max_power t) ~dist]: whether
    the pair would be an edge of [G_R]. *)
val in_range : t -> dist:float -> bool

(** [reach_distance t ~power] bounds the distances {!reaches} accepts at
    [power], tolerance included: [reaches t ~power ~dist] implies
    [dist <= reach_distance t ~power] (up to float rounding well below
    the spatial index's probe slack).  Use it as the probe radius when
    prefiltering candidates with [Geom.Grid]. *)
val reach_distance : t -> power:float -> float

(** [rx_power t ~tx_power ~dist] is the reception power [p'] of a message
    sent with [tx_power] from distance [dist]. *)
val rx_power : t -> tx_power:float -> dist:float -> float

(** [estimate_link_power t ~tx_power ~rx_power] recovers the link power
    from the transmission and reception powers, per the paper's
    assumption.

    {b Contract.}  Reception power is clamped at the reference distance
    [d0 = 1] ({!rx_power}), so no distance information survives below
    it: the recovery is saturated there rather than left non-invertible.
    For model-generated inputs ([rx_power t ~tx_power ~dist:d]) the
    result is exactly [power_for_distance t (max d d0)] for every
    [d] in [(0, R]] — equal to [p(d)] for [d >= d0], and [p(d0)]
    (an upper bound on [p(d)]) below it. *)
val estimate_link_power : t -> tx_power:float -> rx_power:float -> float

(** [estimate_distance t ~tx_power ~rx_power] recovers the distance
    similarly, clamped to the reference distance: for model-generated
    inputs the result is exactly [max d d0] over [(0, R]] — never less
    than [d0], and never an underestimate of the true distance. *)
val estimate_distance : t -> tx_power:float -> rx_power:float -> float

val pp : t Fmt.t
