type t = {
  n : int;
  field : Placement.field;
  max_range : float;
  exponent : float;
  seed : int;
}

let make ?(n = 100) ?(width = 1500.) ?(height = 1500.) ?(max_range = 500.)
    ?(exponent = 2.) ~seed () =
  if n <= 0 then invalid_arg "Scenario.make: non-positive n";
  if max_range <= 0. then invalid_arg "Scenario.make: non-positive range";
  { n; field = Placement.field ~width ~height; max_range; exponent; seed }

let paper ~seed = make ~seed ()

let pathloss t = Radio.Pathloss.make ~exponent:t.exponent ~max_range:t.max_range ()

let prng t = Prng.create ~seed:t.seed

let positions t = Placement.uniform (prng t) ~field:t.field ~n:t.n

let seeds ~base ~count = List.init count (fun i -> base + (i * 7919))

let pp ppf t =
  Fmt.pf ppf "scenario(n=%d, %gx%g, R=%g, n_exp=%g, seed=%d)" t.n
    t.field.Placement.width t.field.Placement.height t.max_range t.exponent
    t.seed
