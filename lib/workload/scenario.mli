(** Experiment scenarios: the bundle (node count, field, radio range,
    seed) the evaluation iterates over.

    {!paper} is the paper's setup: 100 nodes, 1500 x 1500 field, maximum
    transmission radius 500, quadratic path loss. *)

type t = {
  n : int;
  field : Placement.field;
  max_range : float;
  exponent : float;
  seed : int;
}

val make :
  ?n:int ->
  ?width:float ->
  ?height:float ->
  ?max_range:float ->
  ?exponent:float ->
  seed:int ->
  unit ->
  t

(** [paper ~seed] is the paper's Section 5 setup with the given seed. *)
val paper : seed:int -> t

val pathloss : t -> Radio.Pathloss.t

(** [positions t] draws the node positions (uniform placement,
    deterministic in [t.seed]). *)
val positions : t -> Geom.Vec2.t array

(** [prng t] is the scenario's root PRNG (same stream that seeds
    {!positions}; split it for independent uses). *)
val prng : t -> Prng.t

(** [seeds ~base ~count] enumerates [count] scenario seeds derived from
    [base] (the paper uses 100 random networks). *)
val seeds : base:int -> count:int -> int list

val pp : t Fmt.t
