type field = { width : float; height : float }

let field ~width ~height =
  if width <= 0. || height <= 0. then invalid_arg "Placement.field";
  { width; height }

let clamp lo hi x = Float.max lo (Float.min hi x)

let uniform prng ~field ~n =
  if n < 0 then invalid_arg "Placement.uniform: negative n";
  Array.init n (fun _ ->
      Geom.Vec2.make (Prng.float prng field.width) (Prng.float prng field.height))

(* Out-of-field Gaussian draws are resampled, not clamped: clamping
   piles the tail mass onto the field boundary, which skews boundary
   density exactly where the cone condition is most fragile.  The retry
   count is bounded so PRNG consumption stays finite and deterministic
   (a draw sequence is a pure function of the seed); only after
   [max_resample] rejected pairs does the old clamp apply as a
   fallback. *)
let max_resample = 64

let clustered prng ~field ~clusters ~n ~sigma =
  if clusters <= 0 then invalid_arg "Placement.clustered: no clusters";
  if sigma <= 0. then invalid_arg "Placement.clustered: non-positive sigma";
  let centers = uniform prng ~field ~n:clusters in
  Array.init n (fun _ ->
      let c = Prng.choose prng centers in
      let rec draw tries =
        let x = Prng.gaussian prng ~mu:c.Geom.Vec2.x ~sigma in
        let y = Prng.gaussian prng ~mu:c.Geom.Vec2.y ~sigma in
        if x >= 0. && x <= field.width && y >= 0. && y <= field.height then
          Geom.Vec2.make x y
        else if tries >= max_resample then
          Geom.Vec2.make (clamp 0. field.width x) (clamp 0. field.height y)
        else draw (tries + 1)
      in
      draw 1)

let grid_jitter prng ~field ~rows ~cols ~jitter =
  if rows <= 0 || cols <= 0 then invalid_arg "Placement.grid_jitter";
  if jitter < 0. then invalid_arg "Placement.grid_jitter: negative jitter";
  let cell_w = field.width /. Stdlib.float_of_int cols in
  let cell_h = field.height /. Stdlib.float_of_int rows in
  Array.init (rows * cols) (fun i ->
      let r = i / cols and c = i mod cols in
      let cx = (Stdlib.float_of_int c +. 0.5) *. cell_w in
      let cy = (Stdlib.float_of_int r +. 0.5) *. cell_h in
      let draw () =
        if jitter = 0. then 0. else Prng.uniform prng ~lo:(-.jitter) ~hi:jitter
      in
      let dx = draw () in
      let dy = draw () in
      Geom.Vec2.make (clamp 0. field.width (cx +. dx))
        (clamp 0. field.height (cy +. dy)))

let obstacle_terrain prng ~field ~count ~radius ~loss_db =
  if count < 0 then invalid_arg "Placement.obstacle_terrain: negative count";
  Array.init count (fun _ ->
      let center =
        Geom.Vec2.make (Prng.float prng field.width)
          (Prng.float prng field.height)
      in
      Radio.Env.obstacle ~center ~radius ~loss_db)

let obstructed prng ~field ~n ~obstacles =
  if n < 0 then invalid_arg "Placement.obstructed: negative n";
  let blocked p =
    Array.exists
      (fun (o : Radio.Env.obstacle) ->
        Geom.Vec2.dist2 o.Radio.Env.center p < o.Radio.Env.radius *. o.Radio.Env.radius)
      obstacles
  in
  Array.init n (fun _ ->
      let rec draw tries =
        let p =
          Geom.Vec2.make (Prng.float prng field.width)
            (Prng.float prng field.height)
        in
        if (not (blocked p)) || tries >= max_resample then p
        else draw (tries + 1)
      in
      draw 1)

let projected_3d prng ~field ~n ~depth =
  if n < 0 then invalid_arg "Placement.projected_3d: negative n";
  if depth < 0. then invalid_arg "Placement.projected_3d: negative depth";
  let positions = Array.make n Geom.Vec2.zero in
  let heights = Array.make n 0. in
  for i = 0 to n - 1 do
    let x = Prng.float prng field.width in
    let y = Prng.float prng field.height in
    let z = if depth = 0. then 0. else Prng.float prng depth in
    positions.(i) <- Geom.Vec2.make x y;
    heights.(i) <- z
  done;
  (positions, heights)
