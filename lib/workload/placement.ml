type field = { width : float; height : float }

let field ~width ~height =
  if width <= 0. || height <= 0. then invalid_arg "Placement.field";
  { width; height }

let clamp lo hi x = Float.max lo (Float.min hi x)

let uniform prng ~field ~n =
  if n < 0 then invalid_arg "Placement.uniform: negative n";
  Array.init n (fun _ ->
      Geom.Vec2.make (Prng.float prng field.width) (Prng.float prng field.height))

let clustered prng ~field ~clusters ~n ~sigma =
  if clusters <= 0 then invalid_arg "Placement.clustered: no clusters";
  if sigma <= 0. then invalid_arg "Placement.clustered: non-positive sigma";
  let centers = uniform prng ~field ~n:clusters in
  Array.init n (fun _ ->
      let c = Prng.choose prng centers in
      let x = clamp 0. field.width (Prng.gaussian prng ~mu:c.Geom.Vec2.x ~sigma) in
      let y = clamp 0. field.height (Prng.gaussian prng ~mu:c.Geom.Vec2.y ~sigma) in
      Geom.Vec2.make x y)

let grid_jitter prng ~field ~rows ~cols ~jitter =
  if rows <= 0 || cols <= 0 then invalid_arg "Placement.grid_jitter";
  if jitter < 0. then invalid_arg "Placement.grid_jitter: negative jitter";
  let cell_w = field.width /. Stdlib.float_of_int cols in
  let cell_h = field.height /. Stdlib.float_of_int rows in
  Array.init (rows * cols) (fun i ->
      let r = i / cols and c = i mod cols in
      let cx = (Stdlib.float_of_int c +. 0.5) *. cell_w in
      let cy = (Stdlib.float_of_int r +. 0.5) *. cell_h in
      let draw () =
        if jitter = 0. then 0. else Prng.uniform prng ~lo:(-.jitter) ~hi:jitter
      in
      let dx = draw () in
      let dy = draw () in
      Geom.Vec2.make (clamp 0. field.width (cx +. dx))
        (clamp 0. field.height (cy +. dy)))
