type params = { speed_lo : float; speed_hi : float; pause : float }

let default_params = { speed_lo = 5.; speed_hi = 20.; pause = 2. }

(* Shared by both models.  Float.is_finite also rejects NaN, which
   slips through plain comparisons (every NaN comparison is false, so
   [speed_lo <= 0.] and [speed_hi < speed_lo] both pass on NaN). *)
let validate_params ~who params =
  if
    (not (Float.is_finite params.speed_lo))
    || (not (Float.is_finite params.speed_hi))
    || params.speed_lo <= 0.
    || params.speed_hi < params.speed_lo
  then invalid_arg (who ^ ": bad speed range");
  if (not (Float.is_finite params.pause)) || params.pause < 0. then
    invalid_arg (who ^ ": negative pause")

type node = {
  mutable pos : Geom.Vec2.t;
  mutable waypoint : Geom.Vec2.t;
  mutable speed : float;
  mutable pausing : float;
}

type t = {
  prng : Prng.t;
  field : Placement.field;
  params : params;
  nodes : node array;
  mutable frozen : bool;
}

let draw_waypoint t =
  Geom.Vec2.make
    (Prng.float t.prng t.field.Placement.width)
    (Prng.float t.prng t.field.Placement.height)

let draw_speed t =
  if t.params.speed_hi = t.params.speed_lo then t.params.speed_lo
  else Prng.uniform t.prng ~lo:t.params.speed_lo ~hi:t.params.speed_hi

let create prng ~field ~params positions =
  validate_params ~who:"Mobility.create" params;
  let t =
    {
      prng;
      field;
      params;
      nodes =
        Array.map
          (fun p -> { pos = p; waypoint = p; speed = 0.; pausing = 0. })
          positions;
      frozen = false;
    }
  in
  Array.iter
    (fun node ->
      node.waypoint <- draw_waypoint t;
      node.speed <- draw_speed t)
    t.nodes;
  t

let step_node t node ~dt =
  let rec advance budget =
    if budget > 0. then
      if node.pausing > 0. then begin
        let used = Float.min node.pausing budget in
        node.pausing <- node.pausing -. used;
        if node.pausing <= 0. then begin
          node.waypoint <- draw_waypoint t;
          node.speed <- draw_speed t
        end;
        advance (budget -. used)
      end
      else begin
        let to_go = Geom.Vec2.dist node.pos node.waypoint in
        let reach = node.speed *. budget in
        if reach >= to_go then begin
          node.pos <- node.waypoint;
          node.pausing <- Float.max t.params.pause 1e-9;
          advance (budget -. (if node.speed > 0. then to_go /. node.speed else budget))
        end
        else
          node.pos <-
            Geom.Vec2.lerp node.pos node.waypoint (reach /. to_go)
      end
  in
  advance dt

let step t ~dt =
  if dt < 0. then invalid_arg "Mobility.step: negative dt";
  if not t.frozen then Array.iter (fun node -> step_node t node ~dt) t.nodes

let step_one t u ~dt =
  if dt < 0. then invalid_arg "Mobility.step_one: negative dt";
  if u < 0 || u >= Array.length t.nodes then
    invalid_arg "Mobility.step_one: node out of range";
  if not t.frozen then step_node t t.nodes.(u) ~dt

let positions t = Array.map (fun node -> node.pos) t.nodes

let position t u = t.nodes.(u).pos

let freeze t = t.frozen <- true

module Direction = struct
  type dnode = {
    mutable pos : Geom.Vec2.t;
    mutable heading : float;
    mutable speed : float;
    mutable pausing : float;
  }

  type nonrec t = {
    prng : Prng.t;
    field : Placement.field;
    params : params;
    nodes : dnode array;
    mutable frozen : bool;
  }

  let draw_heading t = Prng.float t.prng Geom.Angle.two_pi

  let draw_speed t =
    if t.params.speed_hi = t.params.speed_lo then t.params.speed_lo
    else Prng.uniform t.prng ~lo:t.params.speed_lo ~hi:t.params.speed_hi

  let create prng ~field ~params positions =
    validate_params ~who:"Mobility.Direction.create" params;
    let t =
      {
        prng;
        field;
        params;
        nodes =
          Array.map
            (fun p -> { pos = p; heading = 0.; speed = 0.; pausing = 0. })
            positions;
        frozen = false;
      }
    in
    Array.iter
      (fun node ->
        node.heading <- draw_heading t;
        node.speed <- draw_speed t)
      t.nodes;
    t

  (* Advance one node by [dt], reflecting at the field border with a
     fresh heading and a pause. *)
  let step_node t node ~dt =
    let w = t.field.Placement.width and h = t.field.Placement.height in
    let rec advance budget =
      if budget > 1e-12 then
        if node.pausing > 0. then begin
          let used = Float.min node.pausing budget in
          node.pausing <- node.pausing -. used;
          advance (budget -. used)
        end
        else begin
          let step_vec =
            Geom.Vec2.of_polar ~r:(node.speed *. budget) ~theta:node.heading
          in
          let target = Geom.Vec2.add node.pos step_vec in
          let inside p =
            p.Geom.Vec2.x >= 0. && p.Geom.Vec2.x <= w && p.Geom.Vec2.y >= 0.
            && p.Geom.Vec2.y <= h
          in
          if inside target then node.pos <- target
          else begin
            (* move to the border along the heading, then bounce *)
            let clamp v lo hi = Float.max lo (Float.min hi v) in
            node.pos <-
              Geom.Vec2.make
                (clamp target.Geom.Vec2.x 0. w)
                (clamp target.Geom.Vec2.y 0. h);
            node.heading <- draw_heading t;
            node.speed <- draw_speed t;
            node.pausing <- t.params.pause
          end
        end
    in
    advance dt

  let step t ~dt =
    if dt < 0. then invalid_arg "Mobility.Direction.step: negative dt";
    if not t.frozen then Array.iter (fun node -> step_node t node ~dt) t.nodes

  let positions t = Array.map (fun node -> node.pos) t.nodes

  let freeze t = t.frozen <- true
end
