(** Random-waypoint mobility, driving the reconfiguration experiments
    (Section 4 of the paper: join/leave/aChange events are caused by node
    motion and failure). *)

type params = {
  speed_lo : float;  (** minimum speed (per time unit) *)
  speed_hi : float;
  pause : float;  (** pause duration at each waypoint *)
}

val default_params : params

(** [validate_params ~who params] checks the invariant {!create}
    enforces — finite [0 < speed_lo <= speed_hi] and finite
    [pause >= 0] — raising [Invalid_argument] with a [who]-prefixed
    message otherwise.  Exposed so front ends can reject bad
    user-supplied parameters eagerly (e.g. at argument-parsing time)
    instead of deep inside a run. *)
val validate_params : who:string -> params -> unit

type t

(** [create prng ~field ~params positions] starts each node at its given
    position with a fresh waypoint.
    @raise Invalid_argument unless [0 < speed_lo <= speed_hi],
    [pause >= 0], and all three are finite (NaN and infinities are
    rejected). *)
val create :
  Prng.t -> field:Placement.field -> params:params -> Geom.Vec2.t array -> t

(** [step t ~dt] advances every node by [dt] time units: move toward the
    waypoint at the node's speed; on arrival, pause, then draw a new
    uniform waypoint and speed. *)
val step : t -> dt:float -> unit

(** [step_one t u ~dt] advances only node [u] by [dt].  Lets an event
    stream sample nodes sparsely (each node advanced lazily to its own
    event time) instead of ticking the whole population; waypoint and
    speed redraws consume the shared PRNG, so the stream is deterministic
    in the order of [step_one] calls.
    @raise Invalid_argument on negative [dt] or a node out of range. *)
val step_one : t -> int -> dt:float -> unit

(** [positions t] is a snapshot (copy) of current positions. *)
val positions : t -> Geom.Vec2.t array

(** [position t u]. *)
val position : t -> int -> Geom.Vec2.t

(** [freeze t] stops all motion permanently (nodes hold position), letting
    reconfiguration tests reach a stable final topology. *)
val freeze : t -> unit

(** {1 Random direction}

    The random-direction model avoids random-waypoint's center-density
    bias: each node walks in a heading until it hits the field border,
    then reflects with a fresh random heading. *)

module Direction : sig
  type t

  (** [create prng ~field ~params positions] — [params.pause] applies at
      each reflection.  Validates [params] exactly like {!Mobility.create}
      (finite [0 < speed_lo <= speed_hi], finite [pause >= 0]). *)
  val create :
    Prng.t -> field:Placement.field -> params:params -> Geom.Vec2.t array -> t

  val step : t -> dt:float -> unit

  val positions : t -> Geom.Vec2.t array

  val freeze : t -> unit
end
