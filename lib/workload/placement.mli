(** Node placement generators.

    The paper's evaluation places 100 nodes uniformly at random in a
    1500 x 1500 region ({!uniform}); {!clustered} and {!grid_jitter}
    provide the denser/sparser regimes used by the examples and
    ablations, and {!obstacle_terrain} / {!obstructed} /
    {!projected_3d} feed the non-uniform propagation environments of
    {!Radio.Env}. *)

type field = { width : float; height : float }

val field : width:float -> height:float -> field

(** [uniform prng ~field ~n] draws [n] i.i.d. uniform positions. *)
val uniform : Prng.t -> field:field -> n:int -> Geom.Vec2.t array

(** [clustered prng ~field ~clusters ~n ~sigma] places cluster centers
    uniformly, then draws each node from a Gaussian around a uniformly
    chosen center.  Draws landing outside the field are {e resampled}
    (both coordinates redrawn, bounded retry count, deterministic PRNG
    consumption) rather than clamped, so no probability mass piles onto
    the boundary; after the retry budget the clamp applies as a
    fallback. *)
val clustered :
  Prng.t -> field:field -> clusters:int -> n:int -> sigma:float ->
  Geom.Vec2.t array

(** [grid_jitter prng ~field ~rows ~cols ~jitter] places one node per grid
    cell center, perturbed uniformly by up to [jitter] in each
    coordinate (clamped to the field). *)
val grid_jitter :
  Prng.t -> field:field -> rows:int -> cols:int -> jitter:float ->
  Geom.Vec2.t array

(** [obstacle_terrain prng ~field ~count ~radius ~loss_db] draws [count]
    attenuating discs with uniform centers — the obstacle /
    fault-cluster terrain consumed by [Radio.Env.make ~obstacles]. *)
val obstacle_terrain :
  Prng.t -> field:field -> count:int -> radius:float -> loss_db:float ->
  Radio.Env.obstacle array

(** [obstructed prng ~field ~n ~obstacles] draws uniform positions,
    resampling (bounded retries) any that land inside an obstacle
    disc — nodes live around the obstacles, links may still cross
    them. *)
val obstructed :
  Prng.t -> field:field -> n:int -> obstacles:Radio.Env.obstacle array ->
  Geom.Vec2.t array

(** [projected_3d prng ~field ~n ~depth] draws uniform positions in the
    [field x [0, depth]] box and projects onto the plane, returning the
    2D positions together with the per-node heights for
    [Radio.Env.make ~heights]. *)
val projected_3d :
  Prng.t -> field:field -> n:int -> depth:float ->
  Geom.Vec2.t array * float array
