(** Node placement generators.

    The paper's evaluation places 100 nodes uniformly at random in a
    1500 x 1500 region ({!uniform}); {!clustered} and {!grid_jitter}
    provide the denser/sparser regimes used by the examples and
    ablations. *)

type field = { width : float; height : float }

val field : width:float -> height:float -> field

(** [uniform prng ~field ~n] draws [n] i.i.d. uniform positions. *)
val uniform : Prng.t -> field:field -> n:int -> Geom.Vec2.t array

(** [clustered prng ~field ~clusters ~n ~sigma] places cluster centers
    uniformly, then draws each node from a Gaussian around a uniformly
    chosen center, clamped to the field. *)
val clustered :
  Prng.t -> field:field -> clusters:int -> n:int -> sigma:float ->
  Geom.Vec2.t array

(** [grid_jitter prng ~field ~rows ~cols ~jitter] places one node per grid
    cell center, perturbed uniformly by up to [jitter] in each
    coordinate (clamped to the field). *)
val grid_jitter :
  Prng.t -> field:field -> rows:int -> cols:int -> jitter:float ->
  Geom.Vec2.t array
