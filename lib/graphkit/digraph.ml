module ISet = Set.Make (Int)

type t = { adj : ISet.t array; mutable nb_edges : int }

let create n =
  if n < 0 then invalid_arg "Digraph.create: negative size";
  { adj = Array.make n ISet.empty; nb_edges = 0 }

let nb_nodes g = Array.length g.adj

let nb_edges g = g.nb_edges

let check g u =
  if u < 0 || u >= nb_nodes g then invalid_arg "Digraph: node out of range"

let mem_edge g u v =
  check g u;
  check g v;
  ISet.mem v g.adj.(u)

let add_edge g u v =
  check g u;
  check g v;
  if u = v then invalid_arg "Digraph.add_edge: self-loop";
  if not (ISet.mem v g.adj.(u)) then begin
    g.adj.(u) <- ISet.add v g.adj.(u);
    g.nb_edges <- g.nb_edges + 1
  end

let remove_edge g u v =
  check g u;
  check g v;
  if ISet.mem v g.adj.(u) then begin
    g.adj.(u) <- ISet.remove v g.adj.(u);
    g.nb_edges <- g.nb_edges - 1
  end

let succ g u =
  check g u;
  ISet.elements g.adj.(u)

let iter_succ g u f =
  check g u;
  ISet.iter f g.adj.(u)

let fold_succ g u ~init ~f =
  check g u;
  ISet.fold (fun v acc -> f acc v) g.adj.(u) init

let out_degree g u =
  check g u;
  ISet.cardinal g.adj.(u)

let iter_edges f g = Array.iteri (fun u s -> ISet.iter (fun v -> f u v) s) g.adj

let edges g =
  let acc = ref [] in
  iter_edges (fun u v -> acc := (u, v) :: !acc) g;
  List.rev !acc

let of_edges n edge_list =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) edge_list;
  g

let copy g = { adj = Array.copy g.adj; nb_edges = g.nb_edges }

let symmetric_closure g =
  let u_graph = Ugraph.create (nb_nodes g) in
  iter_edges (fun u v -> Ugraph.add_edge u_graph u v) g;
  u_graph

let symmetric_core g =
  let u_graph = Ugraph.create (nb_nodes g) in
  iter_edges
    (fun u v -> if u < v && mem_edge g v u then Ugraph.add_edge u_graph u v)
    g;
  u_graph

let equal a b =
  nb_nodes a = nb_nodes b
  && nb_edges a = nb_edges b
  && Array.for_all2 ISet.equal a.adj b.adj

let pp ppf g = Fmt.pf ppf "digraph(n=%d, m=%d)" (nb_nodes g) (nb_edges g)
