(** Mutable undirected simple graphs over dense integer node ids.

    The topologies produced by CBTC and its optimizations ([G_alpha],
    [Gs_alpha], [G-_alpha], the pairwise-reduced graph) are values of
    this type. *)

type t

val create : int -> t

val nb_nodes : t -> int

val nb_edges : t -> int

(** [add_edge g u v] adds the undirected edge [{u, v}]; idempotent.
    Self-loops are rejected with [Invalid_argument]. *)
val add_edge : t -> int -> int -> unit

val remove_edge : t -> int -> int -> unit

val mem_edge : t -> int -> int -> bool

(** [neighbors g u] in increasing id order. *)
val neighbors : t -> int -> int list

(** [iter_neighbors g u f] applies [f] to each neighbor of [u] in
    increasing id order — same enumeration as {!neighbors} without
    allocating the list.  Preferred on traversal hot paths. *)
val iter_neighbors : t -> int -> (int -> unit) -> unit

(** [fold_neighbors g u ~init ~f] folds over the neighbors of [u] in
    increasing id order, allocation-free. *)
val fold_neighbors : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

val degree : t -> int -> int

(** [edges g] lists each edge once as [(u, v)] with [u < v],
    lexicographically. *)
val edges : t -> (int * int) list

val iter_edges : (int -> int -> unit) -> t -> unit

val of_edges : int -> (int * int) list -> t

val copy : t -> t

(** [is_subgraph a b] holds when every edge of [a] is an edge of [b]
    (node counts must agree). *)
val is_subgraph : t -> t -> bool

val equal : t -> t -> bool

val pp : t Fmt.t
