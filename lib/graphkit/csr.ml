type t = {
  off : int array;  (* length n + 1 *)
  adj : int array;  (* row u = adj.(off.(u) .. off.(u+1)-1), sorted increasing *)
  nb_edges : int;
}

let nb_nodes t = Array.length t.off - 1

let nb_edges t = t.nb_edges

let check t u =
  if u < 0 || u >= nb_nodes t then invalid_arg "Csr: node out of range"

let degree t u =
  check t u;
  t.off.(u + 1) - t.off.(u)

let iter_neighbors t u f =
  check t u;
  for i = t.off.(u) to t.off.(u + 1) - 1 do
    f (Array.unsafe_get t.adj i)
  done

let fold_neighbors t u ~init ~f =
  check t u;
  let acc = ref init in
  for i = t.off.(u) to t.off.(u + 1) - 1 do
    acc := f !acc (Array.unsafe_get t.adj i)
  done;
  !acc

let neighbors t u = List.rev (fold_neighbors t u ~init:[] ~f:(fun l v -> v :: l))

let mem_edge t u v =
  check t u;
  check t v;
  (* binary search in u's sorted row *)
  let lo = ref t.off.(u) and hi = ref (t.off.(u + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = t.adj.(mid) in
    if w = v then found := true
    else if w < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

(* Shared two-pass build: [count] bumps per-node degrees, [fill] writes
   ids through a cursor array.  Both undirected edges and adjacency-set
   graphs funnel through this. *)
let build n ~count ~fill =
  if n < 0 then invalid_arg "Csr: negative size";
  let off = Array.make (n + 1) 0 in
  count (fun u -> off.(u + 1) <- off.(u + 1) + 1);
  for u = 1 to n do
    off.(u) <- off.(u) + off.(u - 1)
  done;
  let cur = Array.sub off 0 n in
  let adj = Array.make off.(n) 0 in
  fill (fun u v ->
      adj.(cur.(u)) <- v;
      cur.(u) <- cur.(u) + 1);
  (off, adj)

let sort_rows off adj =
  let n = Array.length off - 1 in
  for u = 0 to n - 1 do
    let lo = off.(u) and hi = off.(u + 1) in
    if hi - lo > 1 then begin
      let row = Array.sub adj lo (hi - lo) in
      Array.sort Int.compare row;
      Array.blit row 0 adj lo (hi - lo)
    end
  done

let of_edges n edges =
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Csr.of_edges: node out of range";
      if u = v then invalid_arg "Csr.of_edges: self-loop")
    edges;
  let off, adj =
    build n
      ~count:(fun bump -> List.iter (fun (u, v) -> bump u; bump v) edges)
      ~fill:(fun put -> List.iter (fun (u, v) -> put u v; put v u) edges)
  in
  sort_rows off adj;
  for u = 0 to n - 1 do
    for i = off.(u) to off.(u + 1) - 2 do
      if adj.(i) = adj.(i + 1) then invalid_arg "Csr.of_edges: duplicate edge"
    done
  done;
  { off; adj; nb_edges = List.length edges }

let of_ugraph g =
  let n = Ugraph.nb_nodes g in
  let off, adj =
    build n
      ~count:(fun bump ->
        for u = 0 to n - 1 do
          for _ = 1 to Ugraph.degree g u do
            bump u
          done
        done)
      ~fill:(fun put ->
        for u = 0 to n - 1 do
          Ugraph.iter_neighbors g u (fun v -> put u v)
        done)
  in
  (* iter_neighbors enumerates increasing, so rows are already sorted *)
  { off; adj; nb_edges = Ugraph.nb_edges g }

let of_digraph g =
  let n = Digraph.nb_nodes g in
  let off, adj =
    build n
      ~count:(fun bump ->
        for u = 0 to n - 1 do
          for _ = 1 to Digraph.out_degree g u do
            bump u
          done
        done)
      ~fill:(fun put ->
        for u = 0 to n - 1 do
          Digraph.iter_succ g u (fun v -> put u v)
        done)
  in
  { off; adj; nb_edges = Digraph.nb_edges g }

let pp ppf t = Fmt.pf ppf "csr(n=%d, m=%d)" (nb_nodes t) (nb_edges t)
