(** Single-source shortest paths (Dijkstra) with arbitrary non-negative
    edge costs.

    Used to measure power stretch and distance stretch: the cost of a link
    [(u, v)] is supplied by the caller, e.g. [p(d(u,v)) + overhead] for
    energy metrics or [d(u,v)] for Euclidean stretch. *)

(** [dijkstra g ~cost ~src] is the array of least path costs from [src]
    over the undirected graph [g], with [infinity] for unreachable nodes.
    [cost u v] must be non-negative and symmetric.
    @raise Invalid_argument on a negative cost or out-of-range [src]. *)
val dijkstra : Ugraph.t -> cost:(int -> int -> float) -> src:int -> float array

(** [dijkstra_digraph g ~cost ~src] is the directed variant over out-edges. *)
val dijkstra_digraph :
  Digraph.t -> cost:(int -> int -> float) -> src:int -> float array

(** [dijkstra_tree g ~cost ~src] additionally returns the shortest-path
    tree as a predecessor array ([-1] for the source and for unreachable
    nodes). *)
val dijkstra_tree :
  Ugraph.t -> cost:(int -> int -> float) -> src:int -> float array * int array

(** [path_to ~prev dst] reconstructs the path from the tree root to
    [dst] (inclusive) out of a predecessor array; [None] when [dst] was
    not reached (and [Some [dst]] when [dst] is the root itself). *)
val path_to : prev:int array -> src:int -> int -> int list option
