type 'a t = {
  mutable keys : float array;
  mutable vals : 'a option array;
  mutable size : int;
}

let create () = { keys = Array.make 16 0.; vals = Array.make 16 None; size = 0 }

let is_empty t = t.size = 0

let size t = t.size

let grow t =
  let cap = Array.length t.keys in
  let keys = Array.make (2 * cap) 0. in
  let vals = Array.make (2 * cap) None in
  Array.blit t.keys 0 keys 0 cap;
  Array.blit t.vals 0 vals 0 cap;
  t.keys <- keys;
  t.vals <- vals

let swap t i j =
  let k = t.keys.(i) in
  t.keys.(i) <- t.keys.(j);
  t.keys.(j) <- k;
  let v = t.vals.(i) in
  t.vals.(i) <- t.vals.(j);
  t.vals.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.keys.(i) < t.keys.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.keys.(l) < t.keys.(!smallest) then smallest := l;
  if r < t.size && t.keys.(r) < t.keys.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t key value =
  if t.size = Array.length t.keys then grow t;
  t.keys.(t.size) <- key;
  t.vals.(t.size) <- Some value;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop_min t =
  if t.size = 0 then raise Not_found;
  let key = t.keys.(0) in
  let value = match t.vals.(0) with Some v -> v | None -> assert false in
  t.size <- t.size - 1;
  t.keys.(0) <- t.keys.(t.size);
  t.vals.(0) <- t.vals.(t.size);
  t.vals.(t.size) <- None;
  if t.size > 0 then sift_down t 0;
  (key, value)
