let spanning_forest g ~weight =
  let n = Ugraph.nb_nodes g in
  let csr = Csr.of_ugraph g in
  let in_tree = Array.make n false in
  let edge_acc = ref [] in
  let heap = Fheap.create () in
  for root = 0 to n - 1 do
    if not in_tree.(root) then begin
      in_tree.(root) <- true;
      (* relax over the flat CSR row — same increasing-id order as the
         former Ugraph.neighbors list, without allocating it *)
      let relax u =
        Csr.iter_neighbors csr u (fun v ->
            if not in_tree.(v) then Fheap.push heap (weight u v) (u, v))
      in
      relax root;
      let continue = ref true in
      while !continue do
        match Fheap.pop_min heap with
        | exception Not_found -> continue := false
        | _, (u, v) ->
            if not in_tree.(v) then begin
              in_tree.(v) <- true;
              edge_acc := (Stdlib.min u v, Stdlib.max u v) :: !edge_acc;
              relax v
            end
      done
    end
  done;
  List.rev !edge_acc

let forest_graph g ~weight =
  Ugraph.of_edges (Ugraph.nb_nodes g) (spanning_forest g ~weight)
