(** Disjoint-set forests with union by rank and path compression.

    Used by the connectivity-preservation checks (comparing the components
    of a control topology against those of the max-power graph [G_R]) and
    by Kruskal-style constructions. *)

type t

val create : int -> t

(** [find t x] is the canonical representative of [x]'s set. *)
val find : t -> int -> int

(** [union t x y] merges the sets of [x] and [y]; returns [true] when the
    sets were previously distinct. *)
val union : t -> int -> int -> bool

val same : t -> int -> int -> bool

(** [nb_sets t] is the current number of disjoint sets. *)
val nb_sets : t -> int
