(* Iterative Tarjan lowlink: [disc] is the DFS discovery index, [low] the
   smallest discovery index reachable through the subtree plus one back
   edge.  A non-root is a cut vertex when some child's [low] cannot reach
   above it; a root is one when it has two or more DFS children. *)

type dfs_state = {
  disc : int array;
  low : int array;
  parent : int array;
  mutable time : int;
  mutable articulation : bool array;
  mutable bridge_acc : (int * int) list;
}

let dfs g st root =
  let children_of_root = ref 0 in
  (* Explicit stack of (node, remaining neighbor list). *)
  let stack = ref [ (root, Ugraph.neighbors g root) ] in
  st.disc.(root) <- st.time;
  st.low.(root) <- st.time;
  st.time <- st.time + 1;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (u, neighbors) :: rest -> (
        match neighbors with
        | [] ->
            stack := rest;
            (* post-visit: propagate low to the parent *)
            let p = st.parent.(u) in
            if p >= 0 then begin
              if st.low.(u) < st.low.(p) then st.low.(p) <- st.low.(u);
              if st.low.(u) >= st.disc.(p) && st.parent.(p) >= 0 then
                st.articulation.(p) <- true;
              if st.low.(u) > st.disc.(p) then
                st.bridge_acc <-
                  (Stdlib.min u p, Stdlib.max u p) :: st.bridge_acc
            end
        | v :: more ->
            stack := (u, more) :: rest;
            if st.disc.(v) < 0 then begin
              st.parent.(v) <- u;
              if u = root then incr children_of_root;
              st.disc.(v) <- st.time;
              st.low.(v) <- st.time;
              st.time <- st.time + 1;
              stack := (v, Ugraph.neighbors g v) :: !stack
            end
            else if v <> st.parent.(u) && st.disc.(v) < st.low.(u) then
              st.low.(u) <- st.disc.(v))
  done;
  if !children_of_root >= 2 then st.articulation.(root) <- true

let analyze g =
  let n = Ugraph.nb_nodes g in
  let st =
    {
      disc = Array.make n (-1);
      low = Array.make n 0;
      parent = Array.make n (-1);
      time = 0;
      articulation = Array.make n false;
      bridge_acc = [];
    }
  in
  for root = 0 to n - 1 do
    if st.disc.(root) < 0 then dfs g st root
  done;
  st

let articulation_points g =
  let st = analyze g in
  let acc = ref [] in
  for u = Ugraph.nb_nodes g - 1 downto 0 do
    if st.articulation.(u) then acc := u :: !acc
  done;
  !acc

let bridges g =
  let st = analyze g in
  List.sort Stdlib.compare st.bridge_acc

let is_biconnected g =
  Ugraph.nb_nodes g >= 3
  && Traversal.is_connected g
  && articulation_points g = []
