(** Breadth-first traversal, components, and hop distances. *)

(** [components g] labels each node with a component id in
    [0 .. nb_components - 1]; ids are assigned in order of the smallest
    node of each component. *)
val components : Ugraph.t -> int array

val nb_components : Ugraph.t -> int

val is_connected : Ugraph.t -> bool

(** [same_component g u v]. *)
val same_component : Ugraph.t -> int -> int -> bool

(** [same_partition a b] holds when the two graphs (on the same node set)
    induce exactly the same partition into connected components.  This is
    the paper's connectivity-preservation criterion: [u] and [v] are
    connected in [G_alpha] iff they are connected in [G_R]. *)
val same_partition : Ugraph.t -> Ugraph.t -> bool

(** [hop_distances g src] is the array of BFS hop counts from [src];
    [max_int] for unreachable nodes. *)
val hop_distances : Ugraph.t -> int -> int array
