let survives_node_removal g ~removed =
  let n = Ugraph.nb_nodes g in
  let gone = Array.make n false in
  List.iter
    (fun u ->
      if u < 0 || u >= n then invalid_arg "Kconn: node out of range";
      gone.(u) <- true)
    removed;
  let start = ref (-1) in
  for u = n - 1 downto 0 do
    if not gone.(u) then start := u
  done;
  if !start < 0 then false
  else begin
    let seen = Array.make n false in
    let queue = Queue.create () in
    seen.(!start) <- true;
    Queue.add !start queue;
    let visited = ref 1 in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          if (not gone.(v)) && not seen.(v) then begin
            seen.(v) <- true;
            incr visited;
            Queue.add v queue
          end)
        (Ugraph.neighbors g u)
    done;
    let alive = n - List.length (List.sort_uniq Int.compare removed) in
    !visited = alive
  end

let is_k_connected g ~k =
  if k < 1 || k > 3 then invalid_arg "Kconn.is_k_connected: k must be 1..3";
  let n = Ugraph.nb_nodes g in
  if n <= k then false
  else
    match k with
    | 1 -> Traversal.is_connected g
    | 2 -> Biconnect.is_biconnected g
    | _ ->
        (* k = 3: no single pair of removals may disconnect it (and it
           must already be biconnected). *)
        Biconnect.is_biconnected g
        &&
        let ok = ref true in
        for a = 0 to n - 1 do
          if !ok then
            for b = a + 1 to n - 1 do
              if !ok && not (survives_node_removal g ~removed:[ a; b ]) then
                ok := false
            done
        done;
        !ok
