(** Immutable CSR (compressed-sparse-row) adjacency.

    A graph frozen into two flat [int array]s: [off] of length [n+1]
    and one [adj] array holding every adjacency row back to back, row
    [u] being [adj.(off.(u)) .. adj.(off.(u+1)-1)] in increasing id
    order.  Traversals stream over contiguous memory instead of walking
    the per-node balanced sets of {!Ugraph}/{!Digraph}, and
    {!iter_neighbors} allocates nothing — unlike [Ugraph.neighbors],
    which builds an [int list] per call.

    This is the read-optimized backend used by BFS/MST/verification on
    large graphs; the mutable set-based structures remain the build
    representation.  Conversions preserve the increasing-id enumeration
    order, so replacing [List.iter ... (Ugraph.neighbors g u)] with
    [Csr.iter_neighbors] is output-identical (property-tested in
    [test/test_csr.ml]). *)

type t

(** [of_ugraph g] freezes an undirected graph; row [u] lists every
    neighbor of [u] (each undirected edge appears in two rows). *)
val of_ugraph : Ugraph.t -> t

(** [of_digraph g] freezes a directed graph; row [u] lists [u]'s
    out-neighbors. *)
val of_digraph : Digraph.t -> t

(** [of_edges n edges] builds the undirected CSR directly from an edge
    list over nodes [0 .. n-1] in two counting passes, without an
    intermediate set-based graph.
    @raise Invalid_argument on out-of-range ids, self-loops, or an edge
    listed twice (in either orientation). *)
val of_edges : int -> (int * int) list -> t

val nb_nodes : t -> int

(** [nb_edges t] counts undirected edges for {!of_ugraph}/{!of_edges}
    and directed edges for {!of_digraph}. *)
val nb_edges : t -> int

val degree : t -> int -> int

(** [iter_neighbors t u f] applies [f] over row [u] in increasing id
    order; allocation-free. *)
val iter_neighbors : t -> int -> (int -> unit) -> unit

val fold_neighbors : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

(** [neighbors t u] is row [u] as a list — a convenience shim that
    allocates; prefer {!iter_neighbors} on hot paths. *)
val neighbors : t -> int -> int list

(** [mem_edge t u v] by binary search in row [u]: O(log degree). *)
val mem_edge : t -> int -> int -> bool

val pp : t Fmt.t
