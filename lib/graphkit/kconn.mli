(** Small-k vertex connectivity.

    [k = 1] is plain connectivity, [k = 2] biconnectivity; for higher [k]
    we check by brute force that no set of [k - 1] vertices disconnects
    the graph — exponential in [k] but entirely adequate for the
    fault-tolerance experiments (k <= 3, n <= a few hundred). *)

(** [is_k_connected g ~k] — vertex connectivity at least [k].  Follows
    the usual convention that a graph with [n <= k] vertices is not
    [k]-connected (except the complete graph criterion for tiny cases is
    not needed here).
    @raise Invalid_argument for [k < 1] or [k > 3]. *)
val is_k_connected : Ugraph.t -> k:int -> bool

(** [survives_node_removal g ~removed] — the graph restricted to the
    other vertices is still connected (and non-empty). *)
val survives_node_removal : Ugraph.t -> removed:int list -> bool
