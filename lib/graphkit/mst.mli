(** Minimum spanning forests (Prim with a float-keyed heap).

    Used by the Euclidean-MST baseline: the sparsest connected subgraph of
    [G_R], a natural lower bound on the average degree any
    connectivity-preserving topology control can reach. *)

(** [spanning_forest g ~weight] is the list of forest edges [(u, v)] with
    [u < v].  Each connected component of [g] contributes its minimum
    spanning tree. *)
val spanning_forest : Ugraph.t -> weight:(int -> int -> float) -> (int * int) list

(** [forest_graph g ~weight] is the same forest as a graph. *)
val forest_graph : Ugraph.t -> weight:(int -> int -> float) -> Ugraph.t
