(* BFS over the flat CSR rows: freezing the adjacency once per call is
   one O(n + m) pass, and the traversal then streams contiguous int
   segments instead of walking per-node sets.  Enumeration order is
   increasing id in both representations, so labels and distances are
   identical to a direct walk of the mutable graph. *)

let components g =
  let csr = Csr.of_ugraph g in
  let n = Csr.nb_nodes csr in
  let label = Array.make n (-1) in
  let next = ref 0 in
  let queue = Queue.create () in
  for src = 0 to n - 1 do
    if label.(src) < 0 then begin
      let id = !next in
      incr next;
      label.(src) <- id;
      Queue.add src queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Csr.iter_neighbors csr u (fun v ->
            if label.(v) < 0 then begin
              label.(v) <- id;
              Queue.add v queue
            end)
      done
    end
  done;
  label

let nb_components g =
  let label = components g in
  Array.fold_left Stdlib.max (-1) label + 1

let is_connected g = Ugraph.nb_nodes g <= 1 || nb_components g = 1

let same_component g u v =
  let label = components g in
  label.(u) = label.(v)

let same_partition a b =
  Ugraph.nb_nodes a = Ugraph.nb_nodes b
  &&
  let la = components a and lb = components b in
  (* Same partition iff the labelings are equal up to renaming; since both
     assign ids in order of smallest member, equality is literal. *)
  la = lb

let hop_distances g src =
  let n = Ugraph.nb_nodes g in
  if src < 0 || src >= n then invalid_arg "Traversal.hop_distances";
  let csr = Csr.of_ugraph g in
  let dist = Array.make n Stdlib.max_int in
  dist.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Csr.iter_neighbors csr u (fun v ->
        if dist.(v) = Stdlib.max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
  done;
  dist
