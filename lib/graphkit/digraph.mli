(** Mutable directed graphs over dense integer node ids [0 .. n-1].

    Used to represent the asymmetric discovered-neighbor relation
    [N_alpha] of the paper: [(u, v)] is an edge when [v] is in [u]'s final
    discovered-neighbor set. *)

type t

(** [create n] is an edgeless graph on nodes [0 .. n-1]. *)
val create : int -> t

val nb_nodes : t -> int

val nb_edges : t -> int

(** [add_edge g u v] adds the directed edge [(u, v)]; idempotent.
    Self-loops are rejected with [Invalid_argument]. *)
val add_edge : t -> int -> int -> unit

val remove_edge : t -> int -> int -> unit

val mem_edge : t -> int -> int -> bool

(** [succ g u] is [u]'s out-neighbors, in increasing id order. *)
val succ : t -> int -> int list

(** [iter_succ g u f] applies [f] to each out-neighbor of [u] in
    increasing id order, without allocating the {!succ} list. *)
val iter_succ : t -> int -> (int -> unit) -> unit

(** [fold_succ g u ~init ~f] folds over [u]'s out-neighbors in
    increasing id order, allocation-free. *)
val fold_succ : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

val out_degree : t -> int -> int

(** [edges g] lists all directed edges, lexicographically. *)
val edges : t -> (int * int) list

val iter_edges : (int -> int -> unit) -> t -> unit

val of_edges : int -> (int * int) list -> t

val copy : t -> t

(** [symmetric_closure g] is the undirected graph whose edge set is the
    paper's [E_alpha]: [{u,v}] present iff [(u,v)] or [(v,u)] is in [g]. *)
val symmetric_closure : t -> Ugraph.t

(** [symmetric_core g] is the undirected graph whose edge set is the
    paper's [E-_alpha]: [{u,v}] present iff both [(u,v)] and [(v,u)] are
    in [g] (the largest symmetric subset). *)
val symmetric_core : t -> Ugraph.t

val equal : t -> t -> bool

val pp : t Fmt.t
