(** Articulation points and bridges (Tarjan lowlink).

    Topology control trades redundancy for power: a sparser graph has
    more cut vertices.  Ramanathan and Rosales-Hain (cited by the paper)
    optimize for biconnectivity outright; these functions measure how far
    a controlled topology is from that ideal. *)

(** [articulation_points g] lists the cut vertices in increasing order. *)
val articulation_points : Ugraph.t -> int list

(** [bridges g] lists the cut edges as [(u, v)] with [u < v]. *)
val bridges : Ugraph.t -> (int * int) list

(** [is_biconnected g] holds when [g] is connected, has at least three
    nodes, and has no articulation point. *)
val is_biconnected : Ugraph.t -> bool
