let run n ~neighbors ~cost ~src =
  if src < 0 || src >= n then invalid_arg "Shortest.dijkstra: src out of range";
  let dist = Array.make n Float.infinity in
  let prev = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Fheap.create () in
  dist.(src) <- 0.;
  Fheap.push heap 0. src;
  while not (Fheap.is_empty heap) do
    let d, u = Fheap.pop_min heap in
    if not settled.(u) && d <= dist.(u) then begin
      settled.(u) <- true;
      List.iter
        (fun v ->
          if not settled.(v) then begin
            let c = cost u v in
            if c < 0. then invalid_arg "Shortest.dijkstra: negative cost";
            let nd = dist.(u) +. c in
            if nd < dist.(v) then begin
              dist.(v) <- nd;
              prev.(v) <- u;
              Fheap.push heap nd v
            end
          end)
        (neighbors u)
    end
  done;
  (dist, prev)

let dijkstra g ~cost ~src =
  fst (run (Ugraph.nb_nodes g) ~neighbors:(Ugraph.neighbors g) ~cost ~src)

let dijkstra_digraph g ~cost ~src =
  fst (run (Digraph.nb_nodes g) ~neighbors:(Digraph.succ g) ~cost ~src)

let dijkstra_tree g ~cost ~src =
  run (Ugraph.nb_nodes g) ~neighbors:(Ugraph.neighbors g) ~cost ~src

let path_to ~prev ~src dst =
  if dst = src then Some [ dst ]
  else if prev.(dst) < 0 then None
  else begin
    let rec build acc u =
      if u = src then Some (src :: acc)
      else if prev.(u) < 0 then None
      else build (u :: acc) prev.(u)
    in
    build [] dst
  end
