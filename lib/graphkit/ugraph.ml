module ISet = Set.Make (Int)

type t = { adj : ISet.t array; mutable nb_edges : int }

let create n =
  if n < 0 then invalid_arg "Ugraph.create: negative size";
  { adj = Array.make n ISet.empty; nb_edges = 0 }

let nb_nodes g = Array.length g.adj

let nb_edges g = g.nb_edges

let check g u =
  if u < 0 || u >= nb_nodes g then invalid_arg "Ugraph: node out of range"

let mem_edge g u v =
  check g u;
  check g v;
  ISet.mem v g.adj.(u)

let add_edge g u v =
  check g u;
  check g v;
  if u = v then invalid_arg "Ugraph.add_edge: self-loop";
  if not (ISet.mem v g.adj.(u)) then begin
    g.adj.(u) <- ISet.add v g.adj.(u);
    g.adj.(v) <- ISet.add u g.adj.(v);
    g.nb_edges <- g.nb_edges + 1
  end

let remove_edge g u v =
  check g u;
  check g v;
  if ISet.mem v g.adj.(u) then begin
    g.adj.(u) <- ISet.remove v g.adj.(u);
    g.adj.(v) <- ISet.remove u g.adj.(v);
    g.nb_edges <- g.nb_edges - 1
  end

let neighbors g u =
  check g u;
  ISet.elements g.adj.(u)

let iter_neighbors g u f =
  check g u;
  ISet.iter f g.adj.(u)

let fold_neighbors g u ~init ~f =
  check g u;
  ISet.fold (fun v acc -> f acc v) g.adj.(u) init

let degree g u =
  check g u;
  ISet.cardinal g.adj.(u)

let iter_edges f g =
  Array.iteri (fun u s -> ISet.iter (fun v -> if u < v then f u v) s) g.adj

let edges g =
  let acc = ref [] in
  iter_edges (fun u v -> acc := (u, v) :: !acc) g;
  List.rev !acc

let of_edges n edge_list =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) edge_list;
  g

let copy g = { adj = Array.copy g.adj; nb_edges = g.nb_edges }

let is_subgraph a b =
  nb_nodes a = nb_nodes b
  &&
  let ok = ref true in
  iter_edges (fun u v -> if not (mem_edge b u v) then ok := false) a;
  !ok

let equal a b = is_subgraph a b && is_subgraph b a

let pp ppf g =
  Fmt.pf ppf "ugraph(n=%d, m=%d)" (nb_nodes g) (nb_edges g)
