(** Minimal binary min-heap keyed by floats, supporting lazy deletion.

    Shared by Dijkstra and Prim.  Entries are [(key, value)]; duplicates
    of a value with stale keys are tolerated (callers skip settled
    values). *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit

(** [pop_min t] removes and returns the entry with the smallest key.
    @raise Not_found when empty. *)
val pop_min : 'a t -> float * 'a
