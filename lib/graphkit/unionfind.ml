type t = { parent : int array; rank : int array; mutable nb_sets : int }

let create n =
  if n < 0 then invalid_arg "Unionfind.create: negative size";
  { parent = Array.init n Fun.id; rank = Array.make n 0; nb_sets = n }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t x y =
  let rx = find t x and ry = find t y in
  if rx = ry then false
  else begin
    t.nb_sets <- t.nb_sets - 1;
    if t.rank.(rx) < t.rank.(ry) then t.parent.(rx) <- ry
    else if t.rank.(rx) > t.rank.(ry) then t.parent.(ry) <- rx
    else begin
      t.parent.(ry) <- rx;
      t.rank.(rx) <- t.rank.(rx) + 1
    end;
    true
  end

let same t x y = find t x = find t y

let nb_sets t = t.nb_sets
