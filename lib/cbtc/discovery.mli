(** The converged per-node state of a CBTC run.

    Both the centralized oracle ({!Geo}) and the distributed protocol
    ({!Distributed}) produce a value of this type: for each node, its
    final discovered-neighbor set [N_alpha(u)], its final broadcast power
    [p_{u,alpha}], and whether it is a {e boundary node} (terminated at
    maximum power with an [alpha]-gap remaining).  The optimization passes
    ({!Optimize}) consume and produce this type. *)

type t = {
  config : Config.t;
  pathloss : Radio.Pathloss.t;
  positions : Geom.Vec2.t array;
  neighbors : Neighbor.t list array;
      (** [N_alpha(u)], sorted by increasing link power *)
  power : float array;  (** [p_{u,alpha}] *)
  boundary : bool array;  (** still has an [alpha]-gap at maximum power *)
}

val nb_nodes : t -> int

(** [nalpha t] is the (generally asymmetric) discovered-neighbor relation
    as a directed graph: edge [(u, v)] iff [v] is in [N_alpha(u)]. *)
val nalpha : t -> Graphkit.Digraph.t

(** [closure t] is [G_alpha]'s edge set [E_alpha]: the symmetric closure
    of [nalpha]. *)
val closure : t -> Graphkit.Ugraph.t

(** [core t] is [E-_alpha]: edges present in both directions — the
    asymmetric-edge-removal graph of Section 3.2. *)
val core : t -> Graphkit.Ugraph.t

(** [radius_in t g] is the per-node transmission radius required to reach
    every neighbor in graph [g] (true geometric distance to the farthest
    [g]-neighbor; [0.] for isolated nodes). *)
val radius_in : t -> Graphkit.Ugraph.t -> float array

(** [reach_power_in t g] is the per-node power needed to reach every
    [g]-neighbor: [p(radius_in t g)]. *)
val reach_power_in : t -> Graphkit.Ugraph.t -> float array

(** [out_radius t] is [rad-_{u,alpha}]: the distance to the farthest node
    of [N_alpha(u)] (i.e. [p(out_radius u) = p_{u,alpha}] up to growth
    overshoot); [0.] for nodes with no discovered neighbor. *)
val out_radius : t -> float array

(** [has_gap t u] re-checks the [alpha]-gap condition on [u]'s current
    neighbor directions. *)
val has_gap : t -> int -> bool

(** [check_invariants t] raises [Failure] if any structural invariant is
    violated: neighbor lists sorted and self-free, powers within
    [(0, P]], non-boundary nodes gap-free, boundary nodes at maximum
    power.  Used by tests. *)
val check_invariants : t -> unit
