(** A discovered neighbor, as recorded by a node running CBTC.

    A node learns, for each neighbor that answered a "Hello": its
    direction (from angle-of-arrival), the link power [p(d(u,v))]
    (estimated from transmission and reception powers), and the power tag
    — the broadcast power in use when the neighbor was {e first}
    discovered, which drives the shrink-back optimization. *)

type t = {
  id : int;
  dir : float;  (** direction from the discovering node, in [\[0, 2pi)] *)
  link_power : float;  (** (estimate of) [p(d(u,v))] — power needed to reach it *)
  tag : float;  (** broadcast power at first discovery (shrink-back tag) *)
}

val make : id:int -> dir:float -> link_power:float -> tag:float -> t

(** [compare_by_link_power] orders by [link_power], then [id]: the order
    in which continuous power growth discovers neighbors. *)
val compare_by_link_power : t -> t -> int

(** [compare_by_tag] orders by [tag], then [link_power], then [id]: the
    shrink-back removal order is the reverse of this. *)
val compare_by_tag : t -> t -> int

val directions : t list -> float list

val pp : t Fmt.t
