(** Reconfiguration under mobility and failures (Section 4 of the paper).

    A Neighbor Discovery Protocol (NDP) runs forever: every node
    periodically beacons; a neighbor is considered failed when
    [miss_limit] consecutive beacons are missed; any message (hello, ack
    or beacon) from a node not heard within the timeout is a {e join} —
    hellos and acks count because a recovered node floods hellos while
    re-growing, long before its first beacon; a beacon whose angle of
    arrival moved more than a tolerance is an {e aChange}.  The
    reconfiguration rules are the paper's:

    - [leave_u(v)]: drop [v]; if an [alpha]-gap opens, rerun CBTC(alpha)
      growing from [p(rad-_{u,alpha})];
    - [join_u(v)]: record [v], then remove farthest neighbors while
      coverage is unchanged (shrink-back style);
    - [aChange_u(v)]: update the direction; rerun if a gap opened,
      otherwise shrink.

    Beacon power follows Section 4's correction: a node beacons with the
    power computed by the {e basic} algorithm (its unshrunk growth power,
    [P] for boundary nodes, joined with the power needed to reach every
    node it has acked), not the possibly-shrunk data power — otherwise a
    healed partition could go unnoticed.

    The guarantee (and what the tests assert): once the node set and
    positions stop changing, the maintained topology eventually preserves
    the connectivity of the {e new} [G_R]. *)

type params = {
  beacon_interval : float;
  miss_limit : int;  (** leave after this many missed beacons *)
  dir_tolerance : float;  (** aChange threshold, radians *)
  hello_repeats : int;  (** per power step during (re)growth *)
}

val default_params : params

type event_kind = Join | Leave | Achange

type event = { time : float; node : int; about : int; kind : event_kind }

type t

(** [create ?channel ?seed ?params config pathloss positions] builds the
    network, runs the initial distributed CBTC(alpha) to convergence, and
    starts the NDP beacons.  [config.growth] must be stepped.
    @raise Invalid_argument on [Exact] growth. *)
val create :
  ?obs:Obs.Recorder.t ->
  ?channel:Dsim.Channel.t ->
  ?seed:int ->
  ?params:params ->
  ?policy:Dsim.Eventq.policy ->
  Config.t ->
  Radio.Pathloss.t ->
  Geom.Vec2.t array ->
  t

val nb_nodes : t -> int

val now : t -> float

(** [run_for t ~duration] advances simulated time (beacons fire, events
    are processed, re-growth happens). *)
val run_for : t -> duration:float -> unit

(** [set_position t u p] moves node [u] (takes effect on the next
    transmission involving [u]). *)
val set_position : t -> int -> Geom.Vec2.t -> unit

(** [crash t u] crash-stops node [u]; its neighbors will observe leaves. *)
val crash : t -> int -> unit

(** [recover t u] brings a crashed node back with a blank protocol state:
    it regrows from minimum power like a fresh node and resumes NDP
    beaconing, so peers observe a {e join}.  Its NDP timers are restarted
    (the pre-crash ones cancel themselves); no-op if [u] is alive. *)
val recover : t -> int -> unit

(** [alive t u]. *)
val alive : t -> int -> bool

(** [positions t] — current positions of all nodes. *)
val positions : t -> Geom.Vec2.t array

(** [events t] — the NDP events observed since the initial convergence,
    oldest first (bootstrap discovery is not logged). *)
val events : t -> event list

(** [topology t] is the symmetric closure of the live nodes' current
    neighbor sets, restricted to live nodes (crashed nodes appear
    isolated). *)
val topology : t -> Graphkit.Ugraph.t

(** [discovery t] snapshots the live protocol state in {!Discovery} form
    (crashed nodes have empty neighbor sets).  [power] holds the current
    data power; boundary flags reflect the last completed growth. *)
val discovery : t -> Discovery.t

(** [quiescent t ~for_:d] holds when no NDP event or re-growth started in
    the last [d] time units. *)
val quiescent : t -> for_:float -> bool

(** The simulator's tie-break decision log so far (see
    {!Dsim.Eventq.log}): empty under the default [Fifo] policy.
    Re-creating the network with [~policy:(Replay log)] and replaying
    the same crash/move script reproduces the schedule exactly. *)
val schedule_log : t -> int array

(** [check_stable t] verifies the survivors' converged state satisfies
    the CBTC guarantees ({!Verify.surviving}), as a [result] — the
    invariant the schedule-exploration harness checks after the network
    settles. *)
val check_stable : t -> (unit, string) result
