module IMap = Map.Make (Int)
module ISet = Set.Make (Int)

type msg = Hello | Ack | Remove

type stats = {
  transmissions : int;
  deliveries : int;
  max_rounds : int;
  duration : float;
}

type outcome = {
  discovery : Discovery.t;
  core_neighbors : int list array;
  removals : int;
  stats : stats;
}

type phase = Growing | Done

type node = {
  id : int;
  mutable phase : phase;
  mutable power : float;  (* current broadcast power *)
  mutable schedule : float list;  (* remaining steps *)
  mutable rounds : int;
  mutable neighbors : Neighbor.t IMap.t;  (* N_u, keyed by id *)
  mutable acked : float IMap.t;  (* nodes I acked -> estimated link power *)
  mutable removed_by : ISet.t;  (* senders of Remove notifications *)
  mutable boundary : bool;
}

let check_growth (config : Config.t) =
  match config.growth with
  | Config.Exact ->
      invalid_arg
        "Distributed.run: Exact growth needs global knowledge; use Double or \
         Mult"
  | Config.Double _ | Config.Mult _ -> ()

let run ?(channel = Dsim.Channel.reliable) ?(hello_repeats = 1) ?(seed = 1)
    ?(start_spread = 0.) config pathloss positions =
  check_growth config;
  if hello_repeats < 1 then invalid_arg "Distributed.run: hello_repeats < 1";
  if start_spread < 0. then invalid_arg "Distributed.run: negative spread";
  let alpha = config.Config.alpha in
  let n = Array.length positions in
  let sim = Dsim.Sim.create () in
  let prng = Prng.create ~seed in
  let net =
    Airnet.Net.create ~sim ~pathloss ~channel ~prng:(Prng.split prng)
      ~positions
  in
  let steps = Config.power_steps config ~pathloss ~link_powers:[] in
  let nodes =
    Array.init n (fun id ->
        {
          id;
          phase = Growing;
          power = 0.;
          schedule = steps;
          rounds = 0;
          neighbors = IMap.empty;
          acked = IMap.empty;
          removed_by = ISet.empty;
          boundary = false;
        })
  in
  (* Delay after which a broadcast's acks must have arrived: hello
     propagation + ack propagation, for the last repeat. *)
  let eval_delay =
    (Stdlib.float_of_int hello_repeats *. channel.Dsim.Channel.max_delay)
    +. channel.Dsim.Channel.max_delay +. 0.5
  in
  let directions node =
    IMap.fold (fun _ (nb : Neighbor.t) acc -> nb.dir :: acc) node.neighbors []
  in
  let has_gap node = Geom.Dirset.has_gap ~alpha (directions node) in
  let rec start_step node =
    match node.schedule with
    | [] ->
        (* Exhausted at maximum power with a gap remaining: boundary. *)
        node.phase <- Done;
        node.boundary <- true
    | power :: rest ->
        node.schedule <- rest;
        node.power <- power;
        node.rounds <- node.rounds + 1;
        for i = 0 to hello_repeats - 1 do
          ignore
            (Dsim.Sim.schedule sim
               ~delay:(Stdlib.float_of_int i *. channel.Dsim.Channel.max_delay)
               (fun () ->
                 ignore (Airnet.Net.bcast net ~src:node.id ~power Hello)))
        done;
        ignore (Dsim.Sim.schedule sim ~delay:eval_delay (fun () -> evaluate node))
  and evaluate node =
    if node.phase = Growing then
      if not (has_gap node) then node.phase <- Done
      else if node.schedule = [] then begin
        node.phase <- Done;
        node.boundary <- true
      end
      else start_step node
  in
  let on_recv (r : msg Airnet.Net.recv) =
    let me = nodes.(r.dst) in
    match r.payload with
    | Hello ->
        (* Always answer, whatever our phase: the sender needs the Ack,
           and the link power estimate comes from (tx, rx) powers. *)
        let link_power =
          Radio.Pathloss.estimate_link_power pathloss ~tx_power:r.tx_power
            ~rx_power:r.rx_power
        in
        me.acked <- IMap.add r.src link_power me.acked;
        ignore (Airnet.Net.send net ~src:r.dst ~dst:r.src ~power:link_power Ack)
    | Ack ->
        if not (IMap.mem r.src me.neighbors) then begin
          let link_power =
            Radio.Pathloss.estimate_link_power pathloss ~tx_power:r.tx_power
              ~rx_power:r.rx_power
          in
          me.neighbors <-
            IMap.add r.src
              (Neighbor.make ~id:r.src ~dir:r.rx_dir ~link_power ~tag:me.power)
              me.neighbors
        end
    | Remove -> me.removed_by <- ISet.add r.src me.removed_by
  in
  for u = 0 to n - 1 do
    Airnet.Net.set_handler net u on_recv
  done;
  (* Start every node, optionally staggered (asynchronous starts). *)
  Array.iter
    (fun node ->
      let delay = if start_spread = 0. then 0. else Prng.float prng start_spread in
      ignore (Dsim.Sim.schedule sim ~delay (fun () -> start_step node)))
    nodes;
  ignore (Dsim.Sim.run sim);
  (* Section 3.2 Remove phase: u notifies every node it acked but did not
     select.  Run after global convergence — and only when asymmetric
     edge removal is applicable (alpha <= 2pi/3), since the
     notifications exist solely to build E-_alpha. *)
  let removals = ref 0 in
  if Config.allows_asymmetric_removal config then begin
    Array.iter
      (fun node ->
        IMap.iter
          (fun v link_power ->
            if not (IMap.mem v node.neighbors) then begin
              incr removals;
              ignore
                (Airnet.Net.send net ~src:node.id ~dst:v ~power:link_power
                   Remove)
            end)
          node.acked)
      nodes;
    ignore (Dsim.Sim.run sim)
  end;
  let neighbors =
    Array.map
      (fun node ->
        IMap.bindings node.neighbors
        |> List.map snd
        |> List.sort Neighbor.compare_by_link_power)
      nodes
  in
  let discovery =
    {
      Discovery.config;
      pathloss;
      positions = Array.copy positions;
      neighbors;
      power = Array.map (fun node -> node.power) nodes;
      boundary = Array.map (fun node -> node.boundary) nodes;
    }
  in
  let core_neighbors =
    Array.map
      (fun node ->
        IMap.bindings node.neighbors
        |> List.filter_map (fun (v, _) ->
               if ISet.mem v node.removed_by then None else Some v))
      nodes
  in
  {
    discovery;
    core_neighbors;
    removals = !removals;
    stats =
      {
        transmissions = Airnet.Net.transmissions net;
        deliveries = Airnet.Net.deliveries net;
        max_rounds = Array.fold_left (fun acc node -> Stdlib.max acc node.rounds) 0 nodes;
        duration = Dsim.Sim.now sim;
      };
  }
