module IMap = Map.Make (Int)
module ISet = Set.Make (Int)

type msg = Hello | Ack | Remove of int | RemoveAck of int

type reliability = {
  hello_attempts : int;
  settle_rounds : int;
  remove_attempts : int;
  backoff : float;
  backoff_factor : float;
}

let legacy =
  {
    hello_attempts = 1;
    settle_rounds = 0;
    remove_attempts = 1;
    backoff = 1.;
    backoff_factor = 2.;
  }

let hardened =
  {
    hello_attempts = 8;
    settle_rounds = 6;
    remove_attempts = 8;
    backoff = 1.;
    backoff_factor = 1.5;
  }

type stats = {
  transmissions : int;
  deliveries : int;
  drops : int;
  retransmissions : int;
  max_rounds : int;
  duration : float;
}

type outcome = {
  discovery : Discovery.t;
  core_neighbors : int list array;
  removals : int;
  alive : bool array;
  injected : Faults.Inject.stats;
  stats : stats;
  schedule_log : int array;
}

type phase = Growing | Settling | Done

type node = {
  id : int;
  mutable phase : phase;
  mutable power : float;  (* current broadcast power *)
  mutable schedule : float list;  (* remaining steps *)
  mutable rounds : int;
  mutable attempt : int;  (* hello broadcasts used at the current step *)
  mutable settle_left : int;
  mutable neighbors : Neighbor.t IMap.t;  (* N_u, keyed by id *)
  mutable last_ack_src : int;  (* highest new-ack src this step (mutant only) *)
  mutable acked : float IMap.t;  (* nodes I acked -> estimated link power *)
  mutable removed_by : ISet.t;  (* senders of Remove notifications *)
  mutable boundary : bool;
}

let check_growth (config : Config.t) =
  match config.growth with
  | Config.Exact ->
      invalid_arg
        "Distributed.run: Exact growth needs global knowledge; use Double or \
         Mult"
  | Config.Double _ | Config.Mult _ -> ()

let check_reliability r =
  if
    r.hello_attempts < 1 || r.settle_rounds < 0 || r.remove_attempts < 1
    || r.backoff <= 0. || r.backoff_factor < 1.
  then invalid_arg "Distributed.run: bad reliability parameters"

let run ?(obs = Obs.Recorder.nil) ?(channel = Dsim.Channel.reliable)
    ?(hello_repeats = 1) ?(seed = 1) ?(start_spread = 0.)
    ?(reliability = legacy) ?(faults = Faults.Plan.empty)
    ?(policy = Dsim.Eventq.Fifo) ?(mutant = false) ?env config pathloss
    positions =
  check_growth config;
  if hello_repeats < 1 then invalid_arg "Distributed.run: hello_repeats < 1";
  if start_spread < 0. then invalid_arg "Distributed.run: negative spread";
  check_reliability reliability;
  let alpha = config.Config.alpha in
  let n = Array.length positions in
  let sim = Dsim.Sim.create ~obs ~policy () in
  let prng = Prng.create ~seed in
  let net =
    Airnet.Net.create ~obs ?env ~sim ~pathloss ~channel ~prng:(Prng.split prng)
      ~positions ()
  in
  let steps = Config.power_steps config ~pathloss ~link_powers:[] in
  let nodes =
    Array.init n (fun id ->
        {
          id;
          phase = Growing;
          power = 0.;
          schedule = steps;
          rounds = 0;
          attempt = 0;
          settle_left = 0;
          neighbors = IMap.empty;
          last_ack_src = -1;
          acked = IMap.empty;
          removed_by = ISet.empty;
          boundary = false;
        })
  in
  let alive u = Airnet.Net.is_alive net u in
  let max_delay = channel.Dsim.Channel.max_delay in
  (* Delay after which a broadcast's acks must have arrived: hello
     propagation + ack propagation, for the last repeat. *)
  let eval_delay =
    (Stdlib.float_of_int hello_repeats *. max_delay) +. max_delay +. 0.5
  in
  (* Wait before the [k]-th retransmission (k >= 1): one hello/ack round
     trip stretched by bounded exponential backoff. *)
  let retry_delay k =
    let factor =
      reliability.backoff
      *. (reliability.backoff_factor ** Stdlib.float_of_int (k - 1))
    in
    (Float.min 32. factor *. (2. *. max_delay)) +. 0.5
  in
  let directions node =
    IMap.fold (fun _ (nb : Neighbor.t) acc -> nb.dir :: acc) node.neighbors []
  in
  let has_gap node = Geom.Dirset.has_gap ~alpha (directions node) in
  let hello node =
    Obs.Recorder.incr obs "msg.hello";
    ignore (Airnet.Net.bcast net ~src:node.id ~power:node.power Hello)
  in
  let rec start_step node =
    match node.schedule with
    | [] ->
        (* Exhausted at maximum power with a gap remaining: boundary. *)
        node.phase <- Done;
        node.boundary <- true
    | power :: rest ->
        node.schedule <- rest;
        node.power <- power;
        node.rounds <- node.rounds + 1;
        Obs.Recorder.incr obs "protocol.power_steps";
        node.attempt <- 1;
        node.last_ack_src <- -1;
        for i = 0 to hello_repeats - 1 do
          ignore
            (Dsim.Sim.schedule sim
               ~delay:(Stdlib.float_of_int i *. max_delay)
               (fun () -> if alive node.id then hello node))
        done;
        ignore (Dsim.Sim.schedule sim ~delay:eval_delay (fun () -> evaluate node))
  and evaluate node =
    if alive node.id && node.phase = Growing then
      if not (has_gap node) then settle node
      else if node.attempt < reliability.hello_attempts then begin
        (* The gap may be a lost probe rather than a real hole: retry the
           same power before paying for a bigger radius. *)
        node.attempt <- node.attempt + 1;
        node.last_ack_src <- -1;
        Airnet.Net.note_retransmit net node.id;
        hello node;
        ignore
          (Dsim.Sim.schedule sim
             ~delay:(retry_delay (node.attempt - 1))
             (fun () -> evaluate node))
      end
      else if node.schedule = [] then begin
        node.phase <- Done;
        node.boundary <- true
      end
      else start_step node
  and settle node =
    (* Gap closed at the current power.  Under a lossy channel some
       in-range nodes may still be unheard; confirm the final power with
       [settle_rounds] extra probes (acks only ever add neighbors, so
       this cannot reopen the gap) before declaring convergence. *)
    if reliability.settle_rounds = 0 then node.phase <- Done
    else begin
      node.phase <- Settling;
      node.settle_left <- reliability.settle_rounds;
      settle_tick node
    end
  and settle_tick node =
    if alive node.id && node.phase = Settling then begin
      if node.settle_left = 0 then node.phase <- Done
      else begin
        node.settle_left <- node.settle_left - 1;
        node.last_ack_src <- -1;
        Airnet.Net.note_retransmit net node.id;
        hello node;
        ignore
          (Dsim.Sim.schedule sim ~delay:eval_delay (fun () -> settle_tick node))
      end
    end
  in
  (* Crash recovery wiring.  [Airnet.Net.on_fault] plays the role of the
     failure detector that Section 4's NDP implements in-band with
     beacons: on a crash every survivor forgets the dead node and, if
     that reopened its cone, resumes growing from the next scheduled
     power (the paper's "grow from p(rad-)" rule); a recovered node
     restarts discovery from scratch. *)
  let on_crash v =
    Array.iter
      (fun u ->
        if u.id <> v && alive u.id then begin
          let had = IMap.mem v u.neighbors in
          u.neighbors <- IMap.remove v u.neighbors;
          u.acked <- IMap.remove v u.acked;
          if had && u.phase <> Growing && not u.boundary && has_gap u then
            if u.schedule = [] then u.boundary <- true
            else begin
              u.phase <- Growing;
              start_step u
            end
        end)
      nodes
  in
  let on_recover v =
    let node = nodes.(v) in
    node.phase <- Growing;
    node.power <- 0.;
    node.schedule <- steps;
    node.attempt <- 0;
    node.settle_left <- 0;
    node.neighbors <- IMap.empty;
    node.last_ack_src <- -1;
    node.acked <- IMap.empty;
    node.removed_by <- ISet.empty;
    node.boundary <- false;
    start_step node
  in
  Airnet.Net.on_fault net (function
    | Airnet.Net.Crashed v -> on_crash v
    | Airnet.Net.Recovered v -> on_recover v);
  (* Ack-tracking for the Remove phase: seq -> delivered flag. *)
  let remove_acked : (int, bool ref) Hashtbl.t = Hashtbl.create 64 in
  let on_recv (r : msg Airnet.Net.recv) =
    let me = nodes.(r.dst) in
    (* Ignore messages from nodes the failure detector has declared dead:
       a wave already in flight when its sender crashed must not
       resurrect the sender in anyone's neighbor set. *)
    if alive r.src then
      match r.payload with
      | Hello ->
          (* Always answer, whatever our phase: the sender needs the Ack,
             and the link power estimate comes from (tx, rx) powers. *)
          let link_power =
            Radio.Pathloss.estimate_link_power pathloss ~tx_power:r.tx_power
              ~rx_power:r.rx_power
          in
          me.acked <- IMap.add r.src link_power me.acked;
          Obs.Recorder.incr obs "msg.ack";
          ignore
            (Airnet.Net.send net ~src:r.dst ~dst:r.src ~power:link_power Ack)
      | Ack ->
          if not (IMap.mem r.src me.neighbors) then
            (* [mutant] is the deliberate reordering bug the schedule
               explorer must catch (see Check.Explore's mutation smoke
               test): it assumes first-time acks arrive in ascending src
               order and discards "late" ones.  Under the default FIFO
               tie-break and a reliable channel that assumption actually
               holds — broadcasts deliver to an audience sorted by id, so
               each step's ack batch comes back ascending — which is
               precisely what makes the bug invisible to every
               single-schedule test and a fair target for exploration. *)
            if mutant && r.src < me.last_ack_src then
              Obs.Recorder.incr obs "mutant.dropped_acks"
            else begin
              if r.src > me.last_ack_src then me.last_ack_src <- r.src;
              let link_power =
                Radio.Pathloss.estimate_link_power pathloss
                  ~tx_power:r.tx_power ~rx_power:r.rx_power
              in
              me.neighbors <-
                IMap.add r.src
                  (Neighbor.make ~id:r.src ~dir:r.rx_dir ~link_power
                     ~tag:me.power)
                  me.neighbors
            end
      | Remove seq ->
          (* Idempotent: duplicates re-add to a set and re-ack. *)
          me.removed_by <- ISet.add r.src me.removed_by;
          let link_power =
            Radio.Pathloss.estimate_link_power pathloss ~tx_power:r.tx_power
              ~rx_power:r.rx_power
          in
          Obs.Recorder.incr obs "msg.remove_ack";
          ignore
            (Airnet.Net.send net ~src:r.dst ~dst:r.src ~power:link_power
               (RemoveAck seq))
      | RemoveAck seq -> (
          match Hashtbl.find_opt remove_acked seq with
          | Some flag -> flag := true
          | None -> ())
  in
  for u = 0 to n - 1 do
    Airnet.Net.set_handler net u on_recv
  done;
  let injected = Faults.Inject.arm faults net in
  (* Start every node, optionally staggered (asynchronous starts). *)
  Array.iter
    (fun node ->
      let delay = if start_spread = 0. then 0. else Prng.float prng start_spread in
      ignore (Dsim.Sim.schedule sim ~delay (fun () -> start_step node)))
    nodes;
  Obs.Recorder.span obs "discovery" (fun () -> ignore (Dsim.Sim.run sim));
  (* Section 3.2 Remove phase: u notifies every node it acked but did not
     select.  Run after global convergence — and only when asymmetric
     edge removal is applicable (alpha <= 2pi/3), since the
     notifications exist solely to build E-_alpha.  Each notification is
     acknowledged and retransmitted with bounded exponential backoff:
     a silently lost Remove would leave a stale edge in E-_alpha. *)
  let removals = ref 0 in
  let seq = ref 0 in
  let send_remove u v link_power =
    incr removals;
    let id = !seq in
    incr seq;
    let delivered = ref false in
    Hashtbl.replace remove_acked id delivered;
    let rec attempt k =
      if (not !delivered) && alive u && alive v then begin
        if k > 1 then Airnet.Net.note_retransmit net u;
        Obs.Recorder.incr obs "msg.remove";
        ignore (Airnet.Net.send net ~src:u ~dst:v ~power:link_power (Remove id));
        if k < reliability.remove_attempts then
          ignore
            (Dsim.Sim.schedule sim ~delay:(retry_delay k) (fun () ->
                 attempt (k + 1)))
      end
    in
    attempt 1
  in
  if Config.allows_asymmetric_removal config then
    Obs.Recorder.span obs "asym-removal" (fun () ->
        Array.iter
          (fun node ->
            if alive node.id then
              IMap.iter
                (fun v link_power ->
                  if (not (IMap.mem v node.neighbors)) && alive v then
                    send_remove node.id v link_power)
                node.acked)
          nodes;
        ignore (Dsim.Sim.run sim));
  let alive_arr = Array.init n (fun u -> alive u) in
  (* A crashed node's converged state is unreachable; report it empty. *)
  let neighbors =
    Array.map
      (fun node ->
        if not alive_arr.(node.id) then []
        else
          IMap.bindings node.neighbors
          |> List.map snd
          |> List.sort Neighbor.compare_by_link_power)
      nodes
  in
  let discovery =
    {
      Discovery.config;
      pathloss;
      positions = Array.copy positions;
      neighbors;
      power = Array.map (fun node -> node.power) nodes;
      boundary = Array.map (fun node -> node.boundary) nodes;
    }
  in
  let core_neighbors =
    Array.map
      (fun node ->
        if not alive_arr.(node.id) then []
        else
          IMap.bindings node.neighbors
          |> List.filter_map (fun (v, _) ->
                 if ISet.mem v node.removed_by then None else Some v))
      nodes
  in
  {
    discovery;
    core_neighbors;
    removals = !removals;
    alive = alive_arr;
    injected;
    schedule_log = Dsim.Sim.schedule_log sim;
    stats =
      {
        transmissions = Airnet.Net.transmissions net;
        deliveries = Airnet.Net.deliveries net;
        drops = Airnet.Net.drops net;
        retransmissions = Airnet.Net.retransmits net;
        max_rounds = Array.fold_left (fun acc node -> Stdlib.max acc node.rounds) 0 nodes;
        duration = Dsim.Sim.now sim;
      };
  }
