(** CBTC parameters: the cone degree [alpha] and the power-growth
    schedule.

    The paper proves [alpha = 5pi/6] is the tight connectivity threshold
    (Theorems 2.1 and 2.4) and that asymmetric edge removal additionally
    requires [alpha <= 2pi/3] (Theorem 3.2). *)

(** How a node grows its broadcast power while it still has an
    [alpha]-gap.  The paper leaves the [Increase] function open,
    suggesting doubling; the converged topology depends on the schedule
    only through overshoot. *)
type growth =
  | Exact
      (** Grow exactly to the next candidate neighbor's link power — the
          continuous-growth limit.  Only available to the centralized
          oracle (a distributed node cannot know the next distance);
          yields the paper's Table 1 radii. *)
  | Double of float
      (** [Double p0]: powers [p0, 2 p0, 4 p0, ..., P] — the paper's
          suggested [Increase(p) = 2p], which overestimates the needed
          power by at most a factor of 2. *)
  | Mult of { p0 : float; factor : float }
      (** Generalized multiplicative schedule. *)

type t = { alpha : float; growth : growth }

(** [make ?growth alpha] — default growth is [Exact].
    @raise Invalid_argument unless [0 < alpha <= 2pi] and the schedule's
    parameters are positive (factor > 1). *)
val make : ?growth:growth -> float -> t

(** [v ?growth alpha] is [make] (short constructor for literals). *)
val v : ?growth:growth -> float -> t

(** [preserves_connectivity t] — [alpha <= 5pi/6] (Theorem 2.1). *)
val preserves_connectivity : t -> bool

(** [allows_asymmetric_removal t] — [alpha <= 2pi/3] (Theorem 3.2). *)
val allows_asymmetric_removal : t -> bool

(** [power_steps t ~pathloss ~link_powers] is the increasing sequence of
    powers a node will try: for [Exact], the (deduplicated) candidate link
    powers; for stepped schedules, the schedule clamped to end exactly at
    the maximum power [P].  Always nonempty, always ends at a power
    [>= P] for stepped schedules or the largest candidate for [Exact]
    (falling back to [\[P\]] when there are no candidates). *)
val power_steps :
  t -> pathloss:Radio.Pathloss.t -> link_powers:float list -> float list

val pp : t Fmt.t
