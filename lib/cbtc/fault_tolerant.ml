let alpha_for ~k =
  if k < 1 then invalid_arg "Fault_tolerant.alpha_for: k < 1";
  2. *. Float.pi /. (3. *. Stdlib.float_of_int k)

let config ?growth ~k () = Config.make ?growth (alpha_for ~k)

let run ~k pathloss positions =
  Discovery.closure (Geo.run (config ~k ()) pathloss positions)

let check ~k pathloss positions =
  let gr = Geo.max_power_graph pathloss positions in
  let topo = run ~k pathloss positions in
  ( Graphkit.Kconn.is_k_connected gr ~k,
    Graphkit.Kconn.is_k_connected topo ~k )
