(** End-to-end CBTC configurations: discovery plus a choice of
    optimizations, yielding a final topology.

    The paper's Table 1 columns correspond to the presets:
    {!basic}, {!with_shrink} (op1), {!shrink_asym} (op1+op2, requires
    [alpha <= 2pi/3]), and {!all_ops} (op1 + op2-if-applicable + op3). *)

type plan = {
  config : Config.t;
  shrink : bool;  (** apply the shrink-back operation (op1) *)
  asym : bool;
      (** build [E-_alpha] instead of [E_alpha] (op2; only sound — and
          only accepted — when [Config.allows_asymmetric_removal]) *)
  pairwise : [ `None | `Practical | `All ];  (** redundant-edge removal (op3) *)
}

val basic : Config.t -> plan

val with_shrink : Config.t -> plan

(** @raise Invalid_argument when [alpha > 2pi/3]. *)
val shrink_asym : Config.t -> plan

(** All applicable optimizations: shrink-back, asymmetric removal when
    [alpha <= 2pi/3], practical pairwise removal. *)
val all_ops : Config.t -> plan

type t = {
  plan : plan;
  discovery : Discovery.t;  (** raw converged discovery state *)
  shrunk : Discovery.t;  (** after op1 (equals [discovery] when disabled) *)
  graph : Graphkit.Ugraph.t;  (** the final topology *)
  radius : float array;
      (** per-node transmission radius needed in [graph] *)
  basic_radius : float array;
      (** [rad_{u,alpha}]: radius needed in the {e unoptimized} [E_alpha];
          Section 4 requires beacons at this power for reconfiguration
          to remain correct under shrink-back / pairwise removal *)
}

(** [of_discovery ?obs d plan] applies [plan]'s optimizations to an
    existing discovery state (e.g. one produced by the distributed
    protocol).  [plan.config] must equal [d.config].  When [obs] is
    given, each enabled optimization runs inside its own span
    ([shrink-back], [asym-removal], [pairwise-removal]) with the
    counters documented in {!Optimize}.
    @raise Invalid_argument on config mismatch or an inapplicable op2. *)
val of_discovery : ?obs:Obs.Recorder.t -> Discovery.t -> plan -> t

(** [run_oracle ?pool ?obs ?env pathloss positions plan] = oracle
    discovery + [plan], threading [pool], [obs] and the optional
    propagation environment [env] through {!Geo.run}.  The optimization
    phases operate on the discovered link powers (already env-realized),
    so no further env plumbing is needed past discovery. *)
val run_oracle :
  ?pool:Parallel.Pool.t ->
  ?obs:Obs.Recorder.t ->
  ?env:Radio.Env.t ->
  Radio.Pathloss.t -> Geom.Vec2.t array -> plan -> t

(** [avg_degree t] and [avg_radius t]: the two quantities of Table 1. *)
val avg_degree : t -> float

val avg_radius : t -> float
