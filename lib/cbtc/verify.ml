(* With a non-trivial environment the guarantees are stated against the
   realized reachability graph G_R^env: range, reach and minimality are
   all judged by the env's per-link power instead of the pure
   distance-monotone pathloss.  A trivial or absent [env] collapses to
   the exact pre-env predicates, bit for bit. *)
let check ?(obs = Obs.Recorder.nil) ?(complete = false) ?(minimal = false)
    ?env ~alive (d : Discovery.t) =
  Obs.Recorder.span obs "verify" @@ fun () ->
  let n = Discovery.nb_nodes d in
  let alpha = d.config.Config.alpha in
  let pathloss = d.pathloss in
  let env =
    match env with
    | Some e when not (Radio.Env.is_trivial e) -> Some e
    | _ -> None
  in
  let in_range_uv ~u ~v ~dist =
    match env with
    | Some e ->
        Radio.Env.in_range e ~u ~v ~pu:d.positions.(u) ~pv:d.positions.(v)
          ~dist
    | None -> Radio.Pathloss.in_range pathloss ~dist
  in
  let reaches_uv ~power ~u ~v ~dist =
    match env with
    | Some e ->
        Radio.Env.reaches e ~power ~u ~v ~pu:d.positions.(u)
          ~pv:d.positions.(v) ~dist
    | None -> Radio.Pathloss.reaches pathloss ~power ~dist
  in
  let link_power_uv ~u ~v ~dist =
    match env with
    | Some e ->
        Radio.Env.link_power e ~u ~v ~pu:d.positions.(u) ~pv:d.positions.(v)
          ~dist
    | None -> Radio.Pathloss.power_for_distance pathloss dist
  in
  let max_power = Radio.Pathloss.max_power pathloss in
  let fail fmt = Fmt.kstr failwith fmt in
  let eps = 1e-9 in
  for u = 0 to n - 1 do
    if alive u then begin
      let pos_u = d.positions.(u) in
      let power = d.power.(u) in
      let true_dir (nb : Neighbor.t) =
        Geom.Vec2.direction ~from:pos_u ~toward:d.positions.(nb.id)
      in
      List.iter
        (fun (nb : Neighbor.t) ->
          if not (alive nb.id) then
            fail "Verify: surviving node %d lists crashed neighbor %d" u nb.id;
          let dist = Geom.Vec2.dist pos_u d.positions.(nb.id) in
          if not (in_range_uv ~u ~v:nb.id ~dist) then
            fail "Verify: node %d lists out-of-range neighbor %d (d=%g)" u
              nb.id dist;
          if not (reaches_uv ~power ~u ~v:nb.id ~dist) then
            fail "Verify: node %d cannot reach neighbor %d at power %g" u
              nb.id power;
          if nb.tag > power *. (1. +. eps) +. eps then
            fail "Verify: node %d neighbor %d tagged %g above power %g" u
              nb.id nb.tag power)
        d.neighbors.(u);
      let dirs = List.map true_dir d.neighbors.(u) in
      if d.boundary.(u) then begin
        if power < max_power *. (1. -. 1e-9) then
          fail "Verify: boundary node %d converged below max power (%g < %g)" u
            power max_power
      end
      else if Geom.Dirset.has_gap ~alpha dirs then
        fail "Verify: non-boundary node %d has a true geometric %g-gap" u alpha;
      if complete then
        for v = 0 to n - 1 do
          if
            v <> u && alive v
            && reaches_uv ~power ~u ~v
                 ~dist:(Geom.Vec2.dist pos_u d.positions.(v))
            && not
                 (List.exists
                    (fun (nb : Neighbor.t) -> nb.id = v)
                    d.neighbors.(u))
          then
            fail "Verify: node %d should have discovered reachable node %d" u v
        done;
      if minimal && not d.boundary.(u) then begin
        (* Exact growth: the strictly-closer prefix must still have a gap,
           otherwise the node could have stopped earlier. *)
        let strictly_below =
          List.filter
            (fun (nb : Neighbor.t) ->
              link_power_uv ~u ~v:nb.id
                ~dist:(Geom.Vec2.dist pos_u d.positions.(nb.id))
              < power *. (1. -. 1e-12))
            d.neighbors.(u)
        in
        if
          List.length strictly_below < List.length d.neighbors.(u)
          && not
               (Geom.Dirset.has_gap ~alpha (List.map true_dir strictly_below))
        then fail "Verify: node %d converged above the minimal power" u
      end
    end
  done

let run ?obs ?complete ?minimal ?env (d : Discovery.t) =
  check ?obs ?complete ?minimal ?env ~alive:(fun _ -> true) d

let surviving ?complete ?env ~alive (d : Discovery.t) =
  if Array.length alive <> Discovery.nb_nodes d then
    invalid_arg "Verify.surviving: alive array size mismatch";
  check ?complete ~minimal:false ?env ~alive:(fun u -> alive.(u)) d

(* Survivor-induced max-power reachability graph: the fair baseline for
   post-fault connectivity — edges through crashed nodes are gone for any
   algorithm. *)
let reachability_of_survivors ?env (d : Discovery.t) ~alive =
  let env =
    match env with
    | Some e when not (Radio.Env.is_trivial e) -> Some e
    | _ -> None
  in
  let n = Discovery.nb_nodes d in
  let g = Graphkit.Ugraph.create n in
  for u = 0 to n - 1 do
    if alive.(u) then
      for v = u + 1 to n - 1 do
        if
          alive.(v)
          &&
          match env with
          | Some e ->
              Radio.Env.in_range e ~u ~v ~pu:d.positions.(u)
                ~pv:d.positions.(v)
                ~dist:(Geom.Vec2.dist d.positions.(u) d.positions.(v))
          | None ->
              Radio.Pathloss.in_range d.pathloss
                ~dist:(Geom.Vec2.dist d.positions.(u) d.positions.(v))
        then Graphkit.Ugraph.add_edge g u v
      done
  done;
  g

let restrict_to_survivors g ~alive =
  let n = Graphkit.Ugraph.nb_nodes g in
  let r = Graphkit.Ugraph.create n in
  Graphkit.Ugraph.iter_edges
    (fun u v -> if alive.(u) && alive.(v) then Graphkit.Ugraph.add_edge r u v)
    g;
  r

(* Component partitions agree on the survivors (dead nodes are isolated
   in both graphs, so they are ignored). *)
let same_partition_on ~alive a b =
  let ca = Graphkit.Traversal.components a in
  let cb = Graphkit.Traversal.components b in
  let n = Array.length ca in
  let ok = ref true in
  for u = 0 to n - 1 do
    if alive.(u) then
      for v = u + 1 to n - 1 do
        if alive.(v) && (ca.(u) = ca.(v)) <> (cb.(u) = cb.(v)) then ok := false
      done
  done;
  !ok

type degradation = {
  survivors : int;
  crashed : int;
  residual_gap_nodes : int list;
  boundary_survivors : int;
  connectivity_preserved : bool;
  delivery_ratio : float;
  extra_rounds : int;
}

let degradation ?reference ?env (o : Distributed.outcome) =
  let d = o.Distributed.discovery in
  let alive = o.Distributed.alive in
  let n = Discovery.nb_nodes d in
  let alpha = d.config.Config.alpha in
  let survivors = Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 alive in
  let residual_gap_nodes = ref [] in
  for u = n - 1 downto 0 do
    if alive.(u) && not d.boundary.(u) then begin
      let dirs =
        List.map
          (fun (nb : Neighbor.t) ->
            Geom.Vec2.direction ~from:d.positions.(u)
              ~toward:d.positions.(nb.id))
          d.neighbors.(u)
      in
      if Geom.Dirset.has_gap ~alpha dirs then
        residual_gap_nodes := u :: !residual_gap_nodes
    end
  done;
  let boundary_survivors = ref 0 in
  Array.iteri
    (fun u a -> if a && d.boundary.(u) then incr boundary_survivors)
    alive;
  let reference_graph = reachability_of_survivors ?env d ~alive in
  let closure = restrict_to_survivors (Discovery.closure d) ~alive in
  let connectivity_preserved =
    same_partition_on ~alive reference_graph closure
  in
  let s = o.Distributed.stats in
  let attempted = s.Distributed.deliveries + s.Distributed.drops in
  let delivery_ratio =
    if attempted = 0 then 1.
    else Stdlib.float_of_int s.Distributed.deliveries /. Stdlib.float_of_int attempted
  in
  let extra_rounds =
    match reference with
    | None -> 0
    | Some r ->
        Stdlib.max 0
          (s.Distributed.max_rounds - r.Distributed.stats.Distributed.max_rounds)
  in
  {
    survivors;
    crashed = n - survivors;
    residual_gap_nodes = !residual_gap_nodes;
    boundary_survivors = !boundary_survivors;
    connectivity_preserved;
    delivery_ratio;
    extra_rounds;
  }

(* ------------------------------------------------------------------ *)
(* Invariant adapters for the schedule-exploration harness.  They turn
   the exception-raising verifiers into [result]s so Check.Explore can
   aggregate failures across thousands of trials without unwinding. *)

let guard f =
  match f () with
  | () -> Ok ()
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let check_guarantees ?complete ?env (o : Distributed.outcome) =
  guard (fun () ->
      surviving ?complete ?env ~alive:o.Distributed.alive
        o.Distributed.discovery)

(* Same guarantees check, but on a bare (alive mask, discovery snapshot)
   pair: the adapter the topology daemon's continuous verification calls
   between event batches, where there is no Distributed.outcome. *)
let check_surviving ?complete ?env ~alive (d : Discovery.t) =
  guard (fun () -> surviving ?complete ?env ~alive d)

let discovery_equal ~oracle (d : Discovery.t) =
  let ids nbs =
    List.map (fun (nb : Neighbor.t) -> nb.id) nbs |> List.sort Int.compare
  in
  (* no break hints: these messages must stay single-line (they are
     embedded in one-line JSON replay artifacts) *)
  let pp_ids = Fmt.(list ~sep:(any ", ") int) in
  let n = Discovery.nb_nodes oracle in
  if n <> Discovery.nb_nodes d then
    Error
      (Fmt.str "node counts differ: oracle %d vs %d" n (Discovery.nb_nodes d))
  else begin
    let err = ref None in
    let fail u msg = if !err = None then err := Some (u, msg) in
    for u = 0 to n - 1 do
      let a = ids oracle.Discovery.neighbors.(u)
      and b = ids d.Discovery.neighbors.(u) in
      if a <> b then
        fail u (Fmt.str "N differs: oracle {%a} vs {%a}" pp_ids a pp_ids b);
      if Float.abs (oracle.Discovery.power.(u) -. d.Discovery.power.(u)) > 1e-6
      then
        fail u
          (Fmt.str "power differs: oracle %g vs %g" oracle.Discovery.power.(u)
             d.Discovery.power.(u));
      if oracle.Discovery.boundary.(u) <> d.Discovery.boundary.(u) then
        fail u
          (Fmt.str "boundary differs: oracle %b vs %b"
             oracle.Discovery.boundary.(u) d.Discovery.boundary.(u))
    done;
    match !err with
    | None -> Ok ()
    | Some (u, msg) -> Error (Fmt.str "node %d: %s" u msg)
  end

let check_oracle ~oracle (o : Distributed.outcome) =
  discovery_equal ~oracle o.Distributed.discovery
