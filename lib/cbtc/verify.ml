let run ?(complete = false) ?(minimal = false) (d : Discovery.t) =
  let n = Discovery.nb_nodes d in
  let alpha = d.config.Config.alpha in
  let pathloss = d.pathloss in
  let max_power = Radio.Pathloss.max_power pathloss in
  let fail fmt = Fmt.kstr failwith fmt in
  let eps = 1e-9 in
  for u = 0 to n - 1 do
    let pos_u = d.positions.(u) in
    let power = d.power.(u) in
    let true_dir (nb : Neighbor.t) =
      Geom.Vec2.direction ~from:pos_u ~toward:d.positions.(nb.id)
    in
    List.iter
      (fun (nb : Neighbor.t) ->
        let dist = Geom.Vec2.dist pos_u d.positions.(nb.id) in
        if not (Radio.Pathloss.in_range pathloss ~dist) then
          fail "Verify: node %d lists out-of-range neighbor %d (d=%g)" u nb.id
            dist;
        if not (Radio.Pathloss.reaches pathloss ~power ~dist) then
          fail "Verify: node %d cannot reach neighbor %d at power %g" u nb.id
            power;
        if nb.tag > power *. (1. +. eps) +. eps then
          fail "Verify: node %d neighbor %d tagged %g above power %g" u nb.id
            nb.tag power)
      d.neighbors.(u);
    let dirs = List.map true_dir d.neighbors.(u) in
    if d.boundary.(u) then begin
      if power < max_power *. (1. -. 1e-9) then
        fail "Verify: boundary node %d converged below max power (%g < %g)" u
          power max_power
    end
    else if Geom.Dirset.has_gap ~alpha dirs then
      fail "Verify: non-boundary node %d has a true geometric %g-gap" u alpha;
    if complete then
      for v = 0 to n - 1 do
        if
          v <> u
          && Radio.Pathloss.reaches pathloss ~power
               ~dist:(Geom.Vec2.dist pos_u d.positions.(v))
          && not
               (List.exists (fun (nb : Neighbor.t) -> nb.id = v) d.neighbors.(u))
        then
          fail "Verify: node %d should have discovered reachable node %d" u v
      done;
    if minimal && not d.boundary.(u) then begin
      (* Exact growth: the strictly-closer prefix must still have a gap,
         otherwise the node could have stopped earlier. *)
      let strictly_below =
        List.filter
          (fun (nb : Neighbor.t) ->
            Radio.Pathloss.power_for_distance pathloss
              (Geom.Vec2.dist pos_u d.positions.(nb.id))
            < power *. (1. -. 1e-12))
          d.neighbors.(u)
      in
      if
        List.length strictly_below < List.length d.neighbors.(u)
        && not
             (Geom.Dirset.has_gap ~alpha (List.map true_dir strictly_below))
      then fail "Verify: node %d converged above the minimal power" u
    end
  done
