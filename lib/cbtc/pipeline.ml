type plan = {
  config : Config.t;
  shrink : bool;
  asym : bool;
  pairwise : [ `None | `Practical | `All ];
}

let basic config = { config; shrink = false; asym = false; pairwise = `None }

let with_shrink config =
  { config; shrink = true; asym = false; pairwise = `None }

let check_asym config =
  if not (Config.allows_asymmetric_removal config) then
    invalid_arg "Pipeline: asymmetric edge removal requires alpha <= 2pi/3"

let shrink_asym config =
  check_asym config;
  { config; shrink = true; asym = true; pairwise = `None }

let all_ops config =
  {
    config;
    shrink = true;
    asym = Config.allows_asymmetric_removal config;
    pairwise = `Practical;
  }

type t = {
  plan : plan;
  discovery : Discovery.t;
  shrunk : Discovery.t;
  graph : Graphkit.Ugraph.t;
  radius : float array;
  basic_radius : float array;
}

let of_discovery ?(obs = Obs.Recorder.nil) (d : Discovery.t) plan =
  if plan.config <> d.config then
    invalid_arg "Pipeline.of_discovery: config mismatch";
  if plan.asym then check_asym plan.config;
  let shrunk = if plan.shrink then Optimize.shrink_back ~obs d else d in
  let base_graph =
    if plan.asym then
      Obs.Recorder.span obs "asym-removal" (fun () -> Discovery.core shrunk)
    else Discovery.closure shrunk
  in
  let graph =
    match plan.pairwise with
    | `None -> base_graph
    | (`Practical | `All) as mode ->
        Optimize.pairwise ~positions:d.positions ~obs ~mode base_graph
  in
  {
    plan;
    discovery = d;
    shrunk;
    graph;
    radius = Discovery.radius_in shrunk graph;
    basic_radius = Discovery.radius_in d (Discovery.closure d);
  }

let run_oracle ?pool ?obs ?env pathloss positions plan =
  of_discovery ?obs (Geo.run ?pool ?obs ?env plan.config pathloss positions) plan

let avg_degree t =
  let n = Graphkit.Ugraph.nb_nodes t.graph in
  if n = 0 then 0.
  else 2. *. Stdlib.float_of_int (Graphkit.Ugraph.nb_edges t.graph) /. Stdlib.float_of_int n

let avg_radius t =
  let n = Array.length t.radius in
  if n = 0 then 0.
  else Array.fold_left ( +. ) 0. t.radius /. Stdlib.float_of_int n
