(** The paper's two hand constructions, built exactly and checkable.

    {!example_2_1} (Figure 2): a 5-node placement showing the
    discovered-neighbor relation [N_alpha] need not be symmetric for
    [2pi/3 < alpha <= 5pi/6] — [v] discovers [u0] but not conversely —
    which is why [G_alpha] must take the symmetric closure.

    {!theorem_2_4} (Figure 5): for [alpha = 5pi/6 + eps], an 8-node
    two-cluster placement whose only [G_R] inter-cluster edge [(u0, v0)]
    is dropped by CBTC(alpha), disconnecting [G_alpha] — establishing
    that [5pi/6] is tight. *)

type example_2_1 = {
  positions : Geom.Vec2.t array;
      (** indices: 0=[u0], 1=[u1], 2=[u2], 3=[u3], 4=[v] *)
  alpha : float;
  epsilon : float;
  max_range : float;  (** [R = d(u0, v)] *)
}

(** [example_2_1 ?r ~alpha ()] realizes Example 2.1 for
    [2pi/3 < alpha <= 5pi/6] (taking [eps = alpha/2 - pi/3], which the
    example requires to lie in [(0, pi/12)]); [r] defaults to 500.
    @raise Invalid_argument for [alpha] outside the open-closed interval. *)
val example_2_1 : ?r:float -> alpha:float -> unit -> example_2_1

(** Node indices of Example 2.1, for readable tests. *)
val ex_u0 : int

val ex_u1 : int

val ex_u2 : int

val ex_u3 : int

val ex_v : int

type theorem_2_4 = {
  positions : Geom.Vec2.t array;
      (** indices: 0=[u0], 1=[u1], 2=[u2], 3=[u3], 4=[v0], 5=[v1],
          6=[v2], 7=[v3] *)
  alpha : float;
  epsilon : float;
  max_range : float;
}

(** [theorem_2_4 ?r ~epsilon ()] realizes the Figure 5 construction for
    [alpha = 5pi/6 + epsilon]; requires [0 < epsilon < pi/6] so that
    [alpha < pi].  The constructor re-verifies the paper's distance
    claims ([d(u0,v0) = R]; every other inter-cluster distance [> R];
    intra-cluster distances [< R]) and raises [Failure] if any fails. *)
val theorem_2_4 : ?r:float -> epsilon:float -> unit -> theorem_2_4

val th_u0 : int

val th_u1 : int

val th_u2 : int

val th_u3 : int

val th_v0 : int

val th_v1 : int

val th_v2 : int

val th_v3 : int
