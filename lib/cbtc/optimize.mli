(** The paper's three optimizations (Section 3), each proved there to
    preserve connectivity.

    - {!shrink_back} (op1, Theorem 3.1): every node drops its
      highest-power-tagged discovered neighbors as long as its angular
      coverage [cover_alpha] is unchanged, and lowers its broadcast power
      accordingly.  For boundary nodes this undoes the futile growth to
      maximum power; for overshooting growth schedules it also trims
      non-boundary nodes.
    - asymmetric edge removal (op2, Theorem 3.2, [alpha <= 2pi/3] only):
      use [E-_alpha] (edges discovered in {e both} directions) instead of
      the symmetric closure [E_alpha] — see {!Discovery.core}.
    - {!pairwise} (op3, Theorem 3.6): remove {e redundant} edges — [(u,v)]
      such that some neighbor [w] of [u] has [angle(v,u,w) < pi/3] and a
      lexicographically smaller edge id [eid(u,w) < eid(u,v)], where
      [eid(u,v) = (d(u,v), max(ID_u, ID_v), min(ID_u, ID_v))].  The
      distance component is compared as the exact squared distance, so
      equidistant neighbors fall through to the strict ID tie-break and
      mutual removal of a pair is impossible; witnesses coincident with
      [u] (d = 0) never make an edge redundant, since the triangle
      inequality behind Theorem 3.6 is not strict there. *)

(** [shrink_back ?obs d] applies op1 to every node: keeps, per node, the
    minimal power-tag prefix of its discovered neighbors whose coverage
    equals the full discovered coverage, and lowers the node's power to
    the largest kept tag.  Idempotent; never increases any neighbor set
    or power.  When [obs] is given, runs inside a [shrink-back] span and
    counts [shrink.nodes_shrunk] / [shrink.neighbors_dropped]. *)
val shrink_back : ?obs:Obs.Recorder.t -> Discovery.t -> Discovery.t

(** [shrink_neighbors ~alpha neighbors] is the single-node core of
    {!shrink_back}: the minimal power-tag prefix of [neighbors] whose
    [cover_alpha] equals that of the whole list, paired with the largest
    kept tag (the node's new sufficient power).  Returns [(\[\], None)]
    on an empty list.  Also used by the reconfiguration rules for join
    and aChange events (Section 4). *)
val shrink_neighbors :
  alpha:float -> Neighbor.t list -> Neighbor.t list * float option

(** Which redundant edges {!pairwise} removes. *)
type pairwise_mode =
  [ `All  (** every redundant edge (the full Theorem 3.6 reduction) *)
  | `Practical
    (** only redundant edges longer than the longest non-redundant edge
        at one of their endpoints — the paper's variant, which removes an
        edge only when doing so can reduce a node's transmission radius *)
  ]

(** [pairwise ~positions ?obs ?mode g] removes redundant edges from [g]
    (default mode [`Practical]).  Redundancy is evaluated with respect to
    [g] itself, simultaneously for all edges, as in the proof of
    Theorem 3.6.  When [obs] is given, runs inside a [pairwise-removal]
    span and counts [pairwise.redundant_edges] /
    [pairwise.removed_edges]. *)
val pairwise :
  positions:Geom.Vec2.t array ->
  ?obs:Obs.Recorder.t ->
  ?mode:pairwise_mode ->
  Graphkit.Ugraph.t ->
  Graphkit.Ugraph.t

(** [redundant_edges ~positions g] lists the redundant edges of [g]
    (each as [(u, v)] with [u < v]). *)
val redundant_edges :
  positions:Geom.Vec2.t array -> Graphkit.Ugraph.t -> (int * int) list
