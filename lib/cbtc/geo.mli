(** Centralized geometric oracle for CBTC(alpha).

    Computes, directly from node positions, exactly the converged
    discovery state the distributed protocol reaches: each node grows its
    power along the configured schedule until it has no [alpha]-gap or
    hits maximum power (then it is a {e boundary node}).  The distributed
    implementation ({!Distributed}) is cross-checked against this oracle
    in the test suite.

    With the [Exact] growth schedule this is the continuous-growth limit
    and produces the paper's Table 1 topologies. *)

(** [run config pathloss positions] runs the oracle for every node. *)
val run :
  Config.t -> Radio.Pathloss.t -> Geom.Vec2.t array -> Discovery.t

(** [candidates pathloss positions u] lists the nodes physically within
    range [R] of [u] (its [G_R] neighbors) as {!Neighbor.t} values with
    true link powers and directions, sorted by increasing link power;
    tags are set to the link power. *)
val candidates :
  Radio.Pathloss.t -> Geom.Vec2.t array -> int -> Neighbor.t list

(** [max_power_graph pathloss positions] is [G_R]: the graph induced by
    every node transmitting at maximum power. *)
val max_power_graph :
  Radio.Pathloss.t -> Geom.Vec2.t array -> Graphkit.Ugraph.t
