(** Centralized geometric oracle for CBTC(alpha).

    Computes, directly from node positions, exactly the converged
    discovery state the distributed protocol reaches: each node grows its
    power along the configured schedule until it has no [alpha]-gap or
    hits maximum power (then it is a {e boundary node}).  The distributed
    implementation ({!Distributed}) is cross-checked against this oracle
    in the test suite.

    With the [Exact] growth schedule this is the continuous-growth limit
    and produces the paper's Table 1 topologies.

    All-pairs scans are accelerated by a [Geom.Grid] spatial index keyed
    on the radio range; results are identical to the brute-force
    reference kept in {!Brute} (property-tested), which exists for
    differential testing and as the benchmark baseline.

    Every node's discovery is independent of every other's, so the
    per-node loops optionally run chunked over a [Parallel.Pool]
    ([?pool]); each chunk writes only its own slots of the preallocated
    result arrays, so the outcome is bit-identical to the sequential
    pass for any pool size. *)

(** [run ?pool ?obs config pathloss positions] runs the oracle for every
    node.  Internally builds one spatial index over [positions] and
    reuses it for every node's discovery, so a full pass is
    O(n · local density) instead of O(n²); with [?pool] the nodes are
    processed in parallel chunks (same result, property-tested).

    When [obs] is given, the pass is wrapped in a [discovery] span and
    records [discovery.nodes] / [discovery.power_steps] /
    [discovery.boundary_nodes] counters plus [discovery.candidates],
    [discovery.degree] and [grid.cell_occupancy] histograms.  Metrics
    are folded in node order after the parallel loop, so they are
    identical for every pool size.

    [?env] (here and on every function below) switches discovery to the
    per-link propagation environment of {!Radio.Env}: grid prefilters
    probe the sigma-aware inflated [Env.max_reach] radius while the
    exact env link-power predicate decides membership.  Omitting it, or
    passing a trivial environment ([Radio.Env.is_trivial]), takes the
    pre-env code path and is bit-identical to it (pinned by the
    differential suite in test/test_env.ml). *)
val run :
  ?pool:Parallel.Pool.t ->
  ?obs:Obs.Recorder.t ->
  ?env:Radio.Env.t ->
  Config.t -> Radio.Pathloss.t -> Geom.Vec2.t array -> Discovery.t

(** [run_flat ?pool ?obs config pathloss positions] is {!run} without
    the final expansion to per-node neighbor lists: the converged state
    stays in the struct-of-arrays form ({!Soa.t}) it is computed in.
    [run] is [Soa.to_discovery] of this, so
    [Soa.to_discovery (run_flat ...)] is bit-identical to
    [run ...] (property-tested); at n = 10⁵–10⁶ prefer [run_flat] to
    avoid allocating millions of boxed [Neighbor.t] records.  Spans,
    counters and histograms recorded on [obs] are the same as {!run}'s. *)
val run_flat :
  ?pool:Parallel.Pool.t ->
  ?obs:Obs.Recorder.t ->
  ?env:Radio.Env.t ->
  Config.t -> Radio.Pathloss.t -> Geom.Vec2.t array -> Soa.t

(** [candidates ?grid ?alive pathloss positions u] lists the nodes
    physically within range [R] of [u] (its [G_R] neighbors) as
    {!Neighbor.t} values with true link powers and directions, sorted by
    increasing link power; tags are set to the link power.  When [grid]
    (an index built over exactly [positions]) is given, only nearby
    cells are probed; otherwise all positions are scanned.  [alive]
    (default: everyone) filters the candidate set — crashed nodes are
    invisible to discovery. *)
val candidates :
  ?grid:Geom.Grid.t ->
  ?alive:(int -> bool) ->
  ?env:Radio.Env.t ->
  Radio.Pathloss.t -> Geom.Vec2.t array -> int -> Neighbor.t list

(** [grow_one ?grid ?alive config pathloss positions u] is [u]'s
    converged per-node state — (discovered neighbors sorted by link
    power, final power, boundary flag) — against the candidates passing
    [alive]: exactly the per-node body of {!run}.  Discovery is a pure
    function of the live positions within range of [u], which is what
    makes incremental dirty-node regrowth (lib/daemon) provably
    equivalent to a full recompute. *)
val grow_one :
  ?grid:Geom.Grid.t ->
  ?alive:(int -> bool) ->
  ?env:Radio.Env.t ->
  Config.t -> Radio.Pathloss.t -> Geom.Vec2.t array -> int ->
  Neighbor.t list * float * bool

(** {2 Flat per-node kernel}

    The allocation-free counterpart of {!grow_one}, for callers that
    re-grow single nodes at high rates (the daemon's incremental
    engine).  A {!scratch} owns reusable Bigarray-backed buffers; one
    [grow_into] call leaves the discovered rows resident in it, read
    back through the [row_*] accessors.  Results are bit-identical to
    {!grow_one} — same candidate math, same (link power, id) order,
    same gap test — pinned by the differential properties in
    test/test_csr.ml. *)

(** Reusable per-worker scratch buffers.  Not thread-safe: use one per
    domain. *)
type scratch

val scratch_create : unit -> scratch

(** The node-independent part of the power schedule ({!Config.growth}):
    compute once per (config, pathloss) and share across all
    [grow_into] calls of a run. *)
type schedule

val schedule_of : Config.t -> Radio.Pathloss.t -> schedule

(** [schedule_final s] is the final step of a stepped (Double/Mult)
    schedule — the power at which the walk {e drains} every remaining
    candidate, possibly absorbing links above the step value itself —
    or [infinity] for Exact growth, whose steps are each node's own
    candidate link powers (draining at the maximal link absorbs nothing
    beyond it).  A node converged exactly at this power may therefore
    hold neighbors with link power above its converged power; callers
    reasoning "links above [p_v] cannot be absorbed by [v]" (the
    daemon's dirty-propagation cut) must treat such nodes like boundary
    nodes. *)
val schedule_final : schedule -> float

(** [grow_into ?grid ?alive ~schedule s config pathloss positions u]
    grows node [u] to convergence and returns
    [(degree, final power, boundary)].  The [degree] discovered
    neighbors are left in [s], sorted by increasing (link power, id) —
    read row [r < degree] with the accessors below before the next
    [grow_into] on [s] overwrites them. *)
val grow_into :
  ?grid:Geom.Grid.t ->
  ?alive:(int -> bool) ->
  ?env:Radio.Env.t ->
  schedule:schedule ->
  scratch ->
  Config.t -> Radio.Pathloss.t -> Geom.Vec2.t array -> int ->
  int * float * bool

val row_id : scratch -> int -> int
val row_link : scratch -> int -> float
val row_dir : scratch -> int -> float
val row_tag : scratch -> int -> float

(** [max_power_graph ?pool ?cutoff pathloss positions] is [G_R]: the
    graph induced by every node transmitting at maximum power.
    Grid-accelerated for [n >= cutoff] (default
    [Geom.Grid.default_brute_cutoff]); below that, and with no pool, the
    triangular brute scan is used — it is faster at small [n] and
    produces the identical graph.  [~cutoff:0] forces the grid path
    (the differential tests pin grid = brute this way).  With a
    non-trivial [?env] the result is [G_R^env] — the realized
    reachability graph under the environment. *)
val max_power_graph :
  ?pool:Parallel.Pool.t ->
  ?cutoff:int ->
  ?env:Radio.Env.t ->
  Radio.Pathloss.t -> Geom.Vec2.t array -> Graphkit.Ugraph.t

(** Brute-force O(n²) reference implementations, producing identical
    results to the grid-backed functions above.  Used by the property
    tests and as the baseline of the [perf] benchmark. *)
module Brute : sig
  val candidates :
    Radio.Pathloss.t -> Geom.Vec2.t array -> int -> Neighbor.t list

  val max_power_graph :
    Radio.Pathloss.t -> Geom.Vec2.t array -> Graphkit.Ugraph.t

  val run :
    Config.t -> Radio.Pathloss.t -> Geom.Vec2.t array -> Discovery.t
end
