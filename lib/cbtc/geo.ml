(* Shared candidate test: [consider u v acc] conses v's Neighbor.t onto
   [acc] when v is a distinct node physically within range of u.  Both
   the brute-force scans and the grid probes funnel through this, so the
   two paths examine different pair sets but accept identical ones. *)
let consider pathloss positions u v acc =
  if v = u then acc
  else begin
    let dist = Geom.Vec2.dist positions.(u) positions.(v) in
    if Radio.Pathloss.in_range pathloss ~dist then begin
      let link_power = Radio.Pathloss.power_for_distance pathloss dist in
      let dir = Geom.Vec2.direction ~from:positions.(u) ~toward:positions.(v) in
      Neighbor.make ~id:v ~dir ~link_power ~tag:link_power :: acc
    end
    else acc
  end

(* Env counterpart of [consider]: membership and link power come from
   the environment's per-pair excess.  Only reached through [real_env],
   so the sigma = 0 / no-attenuation pipeline never leaves the
   bit-identical [consider] path above. *)
let consider_env env positions u v acc =
  if v = u then acc
  else begin
    let pu = positions.(u) and pv = positions.(v) in
    let dist = Geom.Vec2.dist pu pv in
    let link_power = Radio.Env.link_power env ~u ~v ~pu ~pv ~dist in
    if link_power <= Radio.Env.max_link_cap env then begin
      let dir = Geom.Vec2.direction ~from:pu ~toward:pv in
      Neighbor.make ~id:v ~dir ~link_power ~tag:link_power :: acc
    end
    else acc
  end

(* Collapse a trivial environment to [None] once, at the entry of every
   wired function: downstream the [None] branch is the pre-env code,
   byte for byte, so sigma = 0 stays bit-identical by construction. *)
let real_env = function
  | Some env when not (Radio.Env.is_trivial env) -> Some env
  | _ -> None

let check_node positions u =
  if u < 0 || u >= Array.length positions then
    invalid_arg "Geo.candidates: node out of range"

let max_reach pathloss =
  Radio.Pathloss.reach_distance pathloss
    ~power:(Radio.Pathloss.max_power pathloss)

let candidates ?grid ?(alive = fun _ -> true) ?env pathloss positions u =
  check_node positions u;
  let acc =
    match real_env env with
    | Some env -> begin
        (* the grid probe inflates the radius to the env's headroom
           (shadowing may admit pairs beyond the pathloss reach); the
           exact env predicate decides membership *)
        match grid with
        | Some grid ->
            Geom.Grid.fold_in_range grid positions.(u)
              ~dist:(Radio.Env.max_reach env) ~init:[]
              ~f:(fun acc v ->
                if alive v then consider_env env positions u v acc else acc)
        | None ->
            let acc = ref [] in
            for v = 0 to Array.length positions - 1 do
              if alive v then acc := consider_env env positions u v !acc
            done;
            !acc
      end
    | None -> (
        match grid with
        | Some grid ->
            Geom.Grid.fold_in_range grid positions.(u)
              ~dist:(max_reach pathloss) ~init:[]
              ~f:(fun acc v ->
                if alive v then consider pathloss positions u v acc else acc)
        | None ->
            let acc = ref [] in
            for v = 0 to Array.length positions - 1 do
              if alive v then acc := consider pathloss positions u v !acc
            done;
            !acc)
  in
  List.sort Neighbor.compare_by_link_power acc

let make_grid pathloss positions =
  Geom.Grid.create ~range:(Radio.Pathloss.max_range pathloss) positions

(* Run [body lo hi] over [0, n) — chunked over the pool's domains when
   one is given, inline otherwise.  Bodies write only to slots of
   preallocated arrays inside their own range, so the merge is the
   arrays themselves and the result is independent of scheduling. *)
let for_nodes ?pool n body =
  match pool with
  | Some pool -> Parallel.Pool.iter_chunks pool n body
  | None -> body 0 n

let brute_max_power_graph pathloss positions =
  let n = Array.length positions in
  let g = Graphkit.Ugraph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let dist = Geom.Vec2.dist positions.(u) positions.(v) in
      if Radio.Pathloss.in_range pathloss ~dist then
        Graphkit.Ugraph.add_edge g u v
    done
  done;
  g

(* G_R^env: edges are pairs whose env link power fits the maximum
   power — the realized reachability graph guarantees are stated
   against when an environment is in play. *)
let env_in_range env positions u v =
  let pu = positions.(u) and pv = positions.(v) in
  let dist = Geom.Vec2.dist pu pv in
  Radio.Env.in_range env ~u ~v ~pu ~pv ~dist

let brute_max_power_graph_env env positions =
  let n = Array.length positions in
  let g = Graphkit.Ugraph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if env_in_range env positions u v then Graphkit.Ugraph.add_edge g u v
    done
  done;
  g

let max_power_graph ?pool ?(cutoff = Geom.Grid.default_brute_cutoff) ?env
    pathloss positions =
  let env = real_env env in
  let n = Array.length positions in
  let inline = match pool with None -> true | Some _ -> false in
  if n < cutoff && inline then
    match env with
    | Some env -> brute_max_power_graph_env env positions
    | None -> brute_max_power_graph pathloss positions
  else begin
    let grid = make_grid pathloss positions in
    let reach =
      match env with
      | Some env -> Radio.Env.max_reach env
      | None -> max_reach pathloss
    in
    (* per-node upper adjacency, then a sequential merge: adjacency sets
       make insertion order irrelevant, and the per-u lists are written
       to disjoint slots, so grid, pool and brute paths all build equal
       graphs *)
    let nbrs = Array.make n [] in
    for_nodes ?pool n (fun lo hi ->
        for u = lo to hi - 1 do
          nbrs.(u) <-
            Geom.Grid.fold_in_range grid positions.(u) ~dist:reach ~init:[]
              ~f:(fun acc v ->
                if
                  v > u
                  &&
                  match env with
                  | Some env -> env_in_range env positions u v
                  | None ->
                      Radio.Pathloss.in_range pathloss
                        ~dist:(Geom.Vec2.dist positions.(u) positions.(v))
                then v :: acc
                else acc)
        done);
    let g = Graphkit.Ugraph.create n in
    Array.iteri
      (fun u vs -> List.iter (fun v -> Graphkit.Ugraph.add_edge g u v) vs)
      nbrs;
    g
  end

(* Walk the power schedule for one node: at each step, move the candidates
   now reachable from [remaining] to [discovered] (tagging them with the
   step power), and stop at the first gap-free step.  The last step always
   absorbs all remaining candidates (it is >= P up to rounding).
   Accumulation is by prepending — one final sort instead of a quadratic
   append per step. *)
let grow_node ~alpha ~max_power cands steps =
  let rec walk nsteps discovered dirs remaining = function
    | [] -> assert false
    | step :: rest ->
        let is_last = rest = [] in
        let reachable (nb : Neighbor.t) = is_last || nb.link_power <= step in
        let newly, remaining = List.partition reachable remaining in
        let discovered =
          List.fold_left
            (fun acc (nb : Neighbor.t) -> { nb with tag = step } :: acc)
            discovered newly
        in
        let dirs =
          List.fold_left (fun acc (nb : Neighbor.t) -> nb.dir :: acc) dirs newly
        in
        if not (Geom.Dirset.has_gap ~alpha dirs) then
          (discovered, step, false, nsteps)
        else if is_last then (discovered, max_power, true, nsteps)
        else walk (nsteps + 1) discovered dirs remaining rest
  in
  let discovered, power, boundary, nsteps = walk 1 [] [] cands steps in
  (List.sort Neighbor.compare_by_link_power discovered, power, boundary, nsteps)

(* Per-node oracle step: [u]'s converged CBTC(alpha) state against the
   candidates passing the [alive] filter — exactly the per-node body of
   [run_with].  Discovery is a pure function of the (live) positions
   within range of [u], so re-growing only the nodes an event can affect
   (the incremental daemon engine) is provably equivalent to a full
   recompute of every node. *)
let grow_one ?grid ?alive ?env config pathloss positions u =
  let cands = candidates ?grid ?alive ?env pathloss positions u in
  let link_powers = List.map (fun (nb : Neighbor.t) -> nb.link_power) cands in
  let steps = Config.power_steps config ~pathloss ~link_powers in
  let discovered, power, boundary, _nsteps =
    grow_node ~alpha:config.Config.alpha
      ~max_power:(Radio.Pathloss.max_power pathloss)
      cands steps
  in
  (discovered, power, boundary)

let run_with ?pool ?(obs = Obs.Recorder.nil) ~candidates config pathloss
    positions =
  Obs.Recorder.span obs "discovery" @@ fun () ->
  let n = Array.length positions in
  let alpha = config.Config.alpha in
  let max_power = Radio.Pathloss.max_power pathloss in
  let neighbors = Array.make n [] in
  let power = Array.make n max_power in
  let boundary = Array.make n false in
  (* per-node observability slots, folded into the recorder sequentially
     after the parallel loop: worker domains never touch [obs], and the
     fold order is node order, so the recorded metrics are identical for
     every -j (chunking must not leak into them) *)
  let recording = Obs.Recorder.enabled obs in
  let steps_used = if recording then Array.make n 0 else [||] in
  let cand_count = if recording then Array.make n 0 else [||] in
  (* each node's discovery is independent: a pure function of the
     positions and the schedule, written to slot u only *)
  for_nodes ?pool n (fun lo hi ->
      for u = lo to hi - 1 do
        let cands = candidates u in
        let link_powers =
          List.map (fun (nb : Neighbor.t) -> nb.link_power) cands
        in
        let steps = Config.power_steps config ~pathloss ~link_powers in
        let discovered, final_power, is_boundary, nsteps =
          grow_node ~alpha ~max_power cands steps
        in
        neighbors.(u) <- discovered;
        power.(u) <- final_power;
        boundary.(u) <- is_boundary;
        if recording then begin
          steps_used.(u) <- nsteps;
          cand_count.(u) <- List.length cands
        end
      done);
  if recording then begin
    Obs.Recorder.incr ~by:n obs "discovery.nodes";
    for u = 0 to n - 1 do
      Obs.Recorder.incr ~by:steps_used.(u) obs "discovery.power_steps";
      if boundary.(u) then Obs.Recorder.incr obs "discovery.boundary_nodes";
      Obs.Recorder.observe obs "discovery.candidates"
        (Stdlib.float_of_int cand_count.(u));
      Obs.Recorder.observe obs "discovery.degree"
        (Stdlib.float_of_int (List.length neighbors.(u)))
    done
  end;
  { Discovery.config; pathloss; positions = Array.copy positions; neighbors;
    power; boundary }

(* ------------------------------------------------------------------ *)
(* Struct-of-arrays discovery kernel.                                  *)
(*                                                                     *)
(* The list-based path above ([candidates] + [grow_node]) allocates a  *)
(* Neighbor.t record per candidate and rebuilds lists at every power   *)
(* step.  The kernel below computes the identical result — same        *)
(* discovered sets in the same order, same powers, tags and step       *)
(* counts, property-tested against [Brute] — out of reusable flat      *)
(* arrays: candidates are collected into parallel int/float arrays, a  *)
(* permutation is sorted once by (link power, id), the power walk is a *)
(* pointer sweep over that permutation, and the gap test maintains a   *)
(* sorted-unique direction array incrementally instead of re-sorting a *)
(* list per step.  Nothing is allocated per node beyond amortized      *)
(* scratch growth.                                                     *)
(* ------------------------------------------------------------------ *)

(* Float scratch lives in float64 Bigarrays: flat 8-byte lanes with no
   header in the OCaml heap, accessed through [unsafe_get]/[unsafe_set]
   (capacity is checked once per candidate in [collect], so the kernel
   loops skip the per-element bound checks boxed [float array] access
   would re-pay), and invisible to the GC scan. *)
type fbuf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let fbuf_create n : fbuf =
  Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

let fget : fbuf -> int -> float = Bigarray.Array1.unsafe_get
let fset : fbuf -> int -> float -> unit = Bigarray.Array1.unsafe_set

type scratch = {
  mutable cap : int;
  mutable cand : int array;  (* candidate ids, probe order *)
  mutable link : fbuf;  (* link power per candidate *)
  mutable dir : fbuf;  (* normalized direction per candidate *)
  mutable perm : int array;  (* candidate indices sorted by (link, id) *)
  mutable tag : fbuf;  (* discovery-step power per sorted rank *)
  mutable sdirs : fbuf;  (* sorted-unique discovered directions *)
}

let scratch_create () =
  {
    cap = 0;
    cand = [||];
    link = fbuf_create 0;
    dir = fbuf_create 0;
    perm = [||];
    tag = fbuf_create 0;
    sdirs = fbuf_create 0;
  }

let scratch_grow s needed =
  let cap = Stdlib.max 16 (Stdlib.max needed (2 * s.cap)) in
  let grow_int a = let b = Array.make cap 0 in Array.blit a 0 b 0 s.cap; b in
  let grow_f (a : fbuf) =
    let b = fbuf_create cap in
    for i = 0 to s.cap - 1 do
      fset b i (fget a i)
    done;
    b
  in
  s.cand <- grow_int s.cand;
  s.link <- grow_f s.link;
  s.dir <- grow_f s.dir;
  s.perm <- grow_int s.perm;
  s.tag <- grow_f s.tag;
  s.sdirs <- grow_f s.sdirs;
  s.cap <- cap

(* [collect u] fills the scratch with u's G_R candidates and returns
   their count — the flat equivalent of [candidates], minus the sort.

   This is the innermost loop of the whole pipeline (every grid-probed
   pair passes through it), so without flambda it cannot afford the
   boxed floats and intermediate records of the [Vec2.dist] /
   [Pathloss.in_range] / [Vec2.direction] calls the list path makes.
   The math is inlined with identical operations in identical order —
   [dist] is [sqrt (dx*dx + dy*dy)] exactly as [Vec2.dist] computes it,
   and the link test is [Pathloss.reaches] with its cap hoisted
   ([Pathloss.reach_cap]) — so results stay bit-identical to
   [candidates] (pinned by the differential properties in
   test/test_grid.ml and test/test_csr.ml).  The [dist <= pre] guard
   skips the pow call for the ~2/3 of probed candidates outside range:
   [max_reach] bounds the support of [reaches] from above (the grid
   probe already relies on that), and the same relative+absolute slack
   as [Grid.probe_slack] absorbs its last-ulp rounding, so the guard
   only ever admits extra candidates for the exact test to reject.
   Directions are NOT computed here: most candidates are never absorbed
   (growth stops at the first gap-free power), so [grow_scratch]
   computes each direction on absorption via [norm_dir_between]. *)
let collect ?grid ?alive pathloss positions s u =
  check_node positions u;
  let pc = Radio.Pathloss.coeff pathloss in
  let pe = Radio.Pathloss.exponent pathloss in
  let cap = Radio.Pathloss.reach_cap ~power:(Radio.Pathloss.max_power pathloss) in
  let reach = max_reach pathloss in
  let pre = (reach *. (1. +. 1e-9)) +. 1e-9 in
  (* squared so the reject path (most probed candidates) skips the sqrt;
     an in-range [dist] is within a ~1e-15 relative error of [reach], so
     its square sits far inside [pre]'s 1e-9 relative slack *)
  let pre2 = pre *. pre in
  let pu = positions.(u) in
  let m = ref 0 in
  let consider v =
    if v <> u && (match alive with None -> true | Some a -> a v) then begin
      let pv = positions.(v) in
      let dx = pv.Geom.Vec2.x -. pu.Geom.Vec2.x
      and dy = pv.Geom.Vec2.y -. pu.Geom.Vec2.y in
      let d2 = (dx *. dx) +. (dy *. dy) in
      if d2 <= pre2 then begin
        let dist = sqrt d2 in
        let link = pc *. (dist ** pe) in
        if link <= cap then begin
          let i = !m in
          if i >= s.cap then scratch_grow s (i + 1);
          s.cand.(i) <- v;
          fset s.link i link;
          m := i + 1
        end
      end
    end
  in
  (match grid with
  | Some grid ->
      Geom.Grid.iter_in_range grid positions.(u) ~dist:reach consider
  | None ->
      for v = 0 to Array.length positions - 1 do
        consider v
      done);
  !m

(* Env counterpart of [collect]: the probe radius is the env's inflated
   [max_reach] and the exact test is the env link power against the
   hoisted cap.  Kept separate from [collect] so the hot sigma = 0 path
   keeps its exact float spellings (and pays no per-candidate env
   dispatch). *)
let collect_env ?grid ?alive env positions s u =
  check_node positions u;
  let cap = Radio.Env.max_link_cap env in
  let reach = Radio.Env.max_reach env in
  let pre = (reach *. (1. +. 1e-9)) +. 1e-9 in
  let pre2 = pre *. pre in
  let pu = positions.(u) in
  let m = ref 0 in
  let consider v =
    if v <> u && (match alive with None -> true | Some a -> a v) then begin
      let pv = positions.(v) in
      let dx = pv.Geom.Vec2.x -. pu.Geom.Vec2.x
      and dy = pv.Geom.Vec2.y -. pu.Geom.Vec2.y in
      let d2 = (dx *. dx) +. (dy *. dy) in
      if d2 <= pre2 then begin
        let dist = sqrt d2 in
        let link = Radio.Env.link_power env ~u ~v ~pu ~pv ~dist in
        if link <= cap then begin
          let i = !m in
          if i >= s.cap then scratch_grow s (i + 1);
          s.cand.(i) <- v;
          fset s.link i link;
          m := i + 1
        end
      end
    end
  in
  (match grid with
  | Some grid ->
      Geom.Grid.iter_in_range grid positions.(u) ~dist:reach consider
  | None ->
      for v = 0 to Array.length positions - 1 do
        consider v
      done);
  !m

(* In-place heapsort of [perm.(0..m-1)] by (link power, id) — the
   [Neighbor.compare_by_link_power] order.  No per-node allocation. *)
let sort_perm s m =
  let a = s.perm in
  let link = s.link and cand = s.cand in
  for i = 0 to m - 1 do
    a.(i) <- i
  done;
  (* comparisons are inlined (not an [lt] closure) so the float loads
     stay unboxed and each of the ~m log m probes is branch + compare,
     not an indirect call *)
  let rec sift root count =
    let child = (2 * root) + 1 in
    if child < count then begin
      let child =
        if child + 1 < count then begin
          let i = a.(child) and j = a.(child + 1) in
          let li = fget link i and lj = fget link j in
          if li < lj || (li = lj && cand.(i) < cand.(j)) then child + 1
          else child
        end
        else child
      in
      let i = a.(root) and j = a.(child) in
      let li = fget link i and lj = fget link j in
      if li < lj || (li = lj && cand.(i) < cand.(j)) then begin
        a.(root) <- j;
        a.(child) <- i;
        sift child count
      end
    end
  in
  for i = (m / 2) - 1 downto 0 do
    sift i m
  done;
  for i = m - 1 downto 1 do
    let tmp = a.(0) in
    a.(0) <- a.(i);
    a.(i) <- tmp;
    sift 0 i
  done

(* Insert [d] into the sorted-unique prefix [sdirs.(0..len-1)],
   returning the new length (unchanged when already present) — the
   incremental counterpart of Dirset's sort_uniq. *)
let insert_dir s len d =
  let lo = ref 0 and hi = ref len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fget s.sdirs mid < d then lo := mid + 1 else hi := mid
  done;
  let pos = !lo in
  if pos < len && fget s.sdirs pos = d then len
  else begin
    for i = len - 1 downto pos do
      fset s.sdirs (i + 1) (fget s.sdirs i)
    done;
    fset s.sdirs pos d;
    len + 1
  end

(* [Vec2.direction] then [Angle.normalize], with identical float
   operations in identical order (the [2. *. Float.pi] constant is
   [angle_of]'s own spelling), so the result is bit-identical to the
   list path's [Angle.normalize (Vec2.direction ...)]. *)
let norm_dir_between pu pv =
  let dx = pv.Geom.Vec2.x -. pu.Geom.Vec2.x
  and dy = pv.Geom.Vec2.y -. pu.Geom.Vec2.y in
  let d =
    if dx = 0. && dy = 0. then 0.
    else begin
      let a = Float.atan2 dy dx in
      if a < 0. then a +. (2. *. Float.pi) else a
    end
  in
  let r = Float.rem d Geom.Angle.two_pi in
  let r = if r < 0. then r +. Geom.Angle.two_pi else r in
  if r >= Geom.Angle.two_pi then 0. else r

(* Flat counterpart of [grow_node]: sweep the (link, id)-sorted
   permutation along the power schedule.  [stepped] is the precomputed
   schedule for Double/Mult growth; [None] means Exact growth, whose
   steps are the distinct candidate link powers in increasing order.
   Returns (discovered count, final power, boundary, steps used); the
   discovered set is perm.(0..k-1) with tags in tag.(0..k-1) and
   directions filled into dir on absorption. *)
let grow_scratch s ~positions ~u ~alpha ~max_power ~stepped m =
  sort_perm s m;
  let pu = positions.(u) in
  let ptr = ref 0 and ndirs = ref 0 and nsteps = ref 0 in
  let absorb step ~drain =
    while !ptr < m && (drain || fget s.link s.perm.(!ptr) <= step) do
      let i = s.perm.(!ptr) in
      fset s.tag !ptr step;
      let d = norm_dir_between pu positions.(s.cand.(i)) in
      fset s.dir i d;
      ndirs := insert_dir s !ndirs d;
      incr ptr
    done
  in
  let result = ref (max_power, true) in
  (match stepped with
  | Some steps ->
      let rec walk = function
        | [] -> assert false
        | step :: rest ->
            let is_last = rest = [] in
            incr nsteps;
            (* the last step is >= P up to rounding: absorb everything *)
            absorb step ~drain:is_last;
            if not (Geom.Dirset.has_gap_ba ~alpha s.sdirs !ndirs) then
              result := (step, false)
            else if is_last then result := (max_power, true)
            else walk rest
      in
      walk steps
  | None ->
      if m = 0 then
        (* Config.power_steps gives [max_power] for no candidates: one
           step, still gapped, boundary *)
        nsteps := 1
      else begin
        let stop = ref false in
        while not !stop do
          let step = fget s.link s.perm.(!ptr) in
          incr nsteps;
          absorb step ~drain:false;
          if not (Geom.Dirset.has_gap_ba ~alpha s.sdirs !ndirs) then begin
            result := (step, false);
            stop := true
          end
          else if !ptr = m then begin
            result := (max_power, true);
            stop := true
          end
        done
      end);
  let power, boundary = !result in
  (!ptr, power, boundary, !nsteps)

(* The precomputed part of the power schedule: [None] for Exact growth
   (whose steps are each node's own candidate link powers), [Some steps]
   for the stepped Double/Mult schedules, which ignore link powers and
   so can be shared across every node of a run. *)
type schedule = float list option

let schedule_of config pathloss =
  match config.Config.growth with
  | Config.Exact -> None
  | Config.Double _ | Config.Mult _ ->
      Some (Config.power_steps config ~pathloss ~link_powers:[])

let schedule_final = function
  | None -> Float.infinity
  | Some steps -> List.fold_left (fun _ s -> s) Float.infinity steps

(* [grow_one] without the lists: collect + sort + power walk entirely in
   the scratch, bit-identical results (same candidate math, same
   (link, id) order, same gap test — pinned by the differential
   properties in test/test_csr.ml).  The discovered rows stay resident
   in the scratch for the caller to read through [row_id] & co, so an
   incremental engine can re-grow one node with zero list allocation. *)
let grow_into ?grid ?alive ?env ~schedule s config pathloss positions u =
  let m =
    match real_env env with
    | Some env -> collect_env ?grid ?alive env positions s u
    | None -> collect ?grid ?alive pathloss positions s u
  in
  let k, power, boundary, _nsteps =
    grow_scratch s ~positions ~u ~alpha:config.Config.alpha
      ~max_power:(Radio.Pathloss.max_power pathloss)
      ~stepped:schedule m
  in
  (k, power, boundary)

let row_id s r = s.cand.(s.perm.(r))
let row_link s r = fget s.link s.perm.(r)
let row_dir s r = fget s.dir s.perm.(r)
let row_tag s r = fget s.tag r

(* Growable per-chunk output rows, concatenated in chunk order into the
   final CSR arrays.  Each worker writes only its own buffer. *)
type rowbuf = {
  mutable len : int;
  mutable r_ids : int array;
  mutable r_dirs : float array;
  mutable r_links : float array;
  mutable r_tags : float array;
}

let rowbuf_create () =
  { len = 0; r_ids = [||]; r_dirs = [||]; r_links = [||]; r_tags = [||] }

let rowbuf_reserve b extra =
  let cap = Array.length b.r_ids in
  if b.len + extra > cap then begin
    let cap = Stdlib.max 64 (Stdlib.max (b.len + extra) (2 * cap)) in
    let grow_int a = let c = Array.make cap 0 in Array.blit a 0 c 0 b.len; c in
    let grow_f a = let c = Array.make cap 0. in Array.blit a 0 c 0 b.len; c in
    b.r_ids <- grow_int b.r_ids;
    b.r_dirs <- grow_f b.r_dirs;
    b.r_links <- grow_f b.r_links;
    b.r_tags <- grow_f b.r_tags
  end

let rowbuf_append b s k =
  rowbuf_reserve b k;
  for r = 0 to k - 1 do
    let i = s.perm.(r) in
    b.r_ids.(b.len + r) <- s.cand.(i);
    b.r_dirs.(b.len + r) <- fget s.dir i;
    b.r_links.(b.len + r) <- fget s.link i;
    b.r_tags.(b.len + r) <- fget s.tag r
  done;
  b.len <- b.len + k

let run_flat ?pool ?(obs = Obs.Recorder.nil) ?env config pathloss positions =
  let env = real_env env in
  let n = Array.length positions in
  let grid = make_grid pathloss positions in
  if Obs.Recorder.enabled obs then
    List.iter
      (fun occ ->
        Obs.Recorder.observe obs "grid.cell_occupancy"
          (Stdlib.float_of_int occ))
      (Geom.Grid.occupancy grid);
  Obs.Recorder.span obs "discovery" @@ fun () ->
  let alpha = config.Config.alpha in
  let max_power = Radio.Pathloss.max_power pathloss in
  let stepped =
    match config.Config.growth with
    | Config.Exact -> None
    | Config.Double _ | Config.Mult _ ->
        (* the stepped schedules ignore link powers entirely *)
        Some (Config.power_steps config ~pathloss ~link_powers:[])
  in
  let power = Array.make n max_power in
  let boundary = Array.make n false in
  let off = Array.make (n + 1) 0 in
  let recording = Obs.Recorder.enabled obs in
  let steps_used = if recording then Array.make n 0 else [||] in
  let cand_count = if recording then Array.make n 0 else [||] in
  (* fixed chunk size so a chunk's buffer index is lo / chunk; each
     chunk appends its rows to its own buffer and writes per-node slots
     only in its own range, so the merge below is scheduling-independent *)
  let chunk =
    match pool with
    | None -> Stdlib.max 1 n
    | Some pool ->
        let ways = 4 * Parallel.Pool.jobs pool in
        Stdlib.max 1 ((n + ways - 1) / ways)
  in
  let nchunks = if n = 0 then 0 else ((n + chunk - 1) / chunk) in
  let bufs = Array.init nchunks (fun _ -> rowbuf_create ()) in
  let collect_with s u =
    match env with
    | Some env -> collect_env ~grid env positions s u
    | None -> collect ~grid pathloss positions s u
  in
  (match pool with
  | Some pool ->
      Parallel.Pool.iter_chunks pool ~chunk n (fun lo hi ->
          let s = scratch_create () in
          let b = bufs.(lo / chunk) in
          for u = lo to hi - 1 do
            let m = collect_with s u in
            let k, pw, bd, ns = grow_scratch s ~positions ~u ~alpha ~max_power ~stepped m in
            off.(u + 1) <- k;
            power.(u) <- pw;
            boundary.(u) <- bd;
            if recording then begin
              steps_used.(u) <- ns;
              cand_count.(u) <- m
            end;
            rowbuf_append b s k
          done)
  | None ->
      if n > 0 then begin
        let s = scratch_create () in
        let b = bufs.(0) in
        for u = 0 to n - 1 do
          let m = collect_with s u in
          let k, pw, bd, ns = grow_scratch s ~positions ~u ~alpha ~max_power ~stepped m in
          off.(u + 1) <- k;
          power.(u) <- pw;
          boundary.(u) <- bd;
          if recording then begin
            steps_used.(u) <- ns;
            cand_count.(u) <- m
          end;
          rowbuf_append b s k
        done
      end);
  for u = 1 to n do
    off.(u) <- off.(u) + off.(u - 1)
  done;
  let total = off.(n) in
  let ids = Array.make total 0 in
  let dirs = Array.make total 0. in
  let links = Array.make total 0. in
  let tags = Array.make total 0. in
  let at = ref 0 in
  Array.iter
    (fun b ->
      Array.blit b.r_ids 0 ids !at b.len;
      Array.blit b.r_dirs 0 dirs !at b.len;
      Array.blit b.r_links 0 links !at b.len;
      Array.blit b.r_tags 0 tags !at b.len;
      at := !at + b.len)
    bufs;
  if recording then begin
    Obs.Recorder.incr ~by:n obs "discovery.nodes";
    for u = 0 to n - 1 do
      Obs.Recorder.incr ~by:steps_used.(u) obs "discovery.power_steps";
      if boundary.(u) then Obs.Recorder.incr obs "discovery.boundary_nodes";
      Obs.Recorder.observe obs "discovery.candidates"
        (Stdlib.float_of_int cand_count.(u));
      Obs.Recorder.observe obs "discovery.degree"
        (Stdlib.float_of_int (off.(u + 1) - off.(u)))
    done
  end;
  {
    Soa.config;
    pathloss;
    positions = Array.copy positions;
    off;
    ids;
    dirs;
    links;
    tags;
    power;
    boundary;
  }

let run ?pool ?obs ?env config pathloss positions =
  Soa.to_discovery (run_flat ?pool ?obs ?env config pathloss positions)

module Brute = struct
  let candidates pathloss positions u = candidates pathloss positions u

  let max_power_graph = brute_max_power_graph

  let run config pathloss positions =
    run_with config pathloss positions
      ~candidates:(fun u -> candidates pathloss positions u)
end
