(* Shared candidate test: [consider u v acc] conses v's Neighbor.t onto
   [acc] when v is a distinct node physically within range of u.  Both
   the brute-force scans and the grid probes funnel through this, so the
   two paths examine different pair sets but accept identical ones. *)
let consider pathloss positions u v acc =
  if v = u then acc
  else begin
    let dist = Geom.Vec2.dist positions.(u) positions.(v) in
    if Radio.Pathloss.in_range pathloss ~dist then begin
      let link_power = Radio.Pathloss.power_for_distance pathloss dist in
      let dir = Geom.Vec2.direction ~from:positions.(u) ~toward:positions.(v) in
      Neighbor.make ~id:v ~dir ~link_power ~tag:link_power :: acc
    end
    else acc
  end

let check_node positions u =
  if u < 0 || u >= Array.length positions then
    invalid_arg "Geo.candidates: node out of range"

let max_reach pathloss =
  Radio.Pathloss.reach_distance pathloss
    ~power:(Radio.Pathloss.max_power pathloss)

let candidates ?grid pathloss positions u =
  check_node positions u;
  let acc =
    match grid with
    | Some grid ->
        Geom.Grid.fold_in_range grid positions.(u) ~dist:(max_reach pathloss)
          ~init:[]
          ~f:(fun acc v -> consider pathloss positions u v acc)
    | None ->
        let acc = ref [] in
        for v = 0 to Array.length positions - 1 do
          acc := consider pathloss positions u v !acc
        done;
        !acc
  in
  List.sort Neighbor.compare_by_link_power acc

let make_grid pathloss positions =
  Geom.Grid.create ~range:(Radio.Pathloss.max_range pathloss) positions

(* Run [body lo hi] over [0, n) — chunked over the pool's domains when
   one is given, inline otherwise.  Bodies write only to slots of
   preallocated arrays inside their own range, so the merge is the
   arrays themselves and the result is independent of scheduling. *)
let for_nodes ?pool n body =
  match pool with
  | Some pool -> Parallel.Pool.iter_chunks pool n body
  | None -> body 0 n

let brute_max_power_graph pathloss positions =
  let n = Array.length positions in
  let g = Graphkit.Ugraph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let dist = Geom.Vec2.dist positions.(u) positions.(v) in
      if Radio.Pathloss.in_range pathloss ~dist then
        Graphkit.Ugraph.add_edge g u v
    done
  done;
  g

let max_power_graph ?pool ?(cutoff = Geom.Grid.default_brute_cutoff) pathloss
    positions =
  let n = Array.length positions in
  let inline = match pool with None -> true | Some _ -> false in
  if n < cutoff && inline then brute_max_power_graph pathloss positions
  else begin
    let grid = make_grid pathloss positions in
    let reach = max_reach pathloss in
    (* per-node upper adjacency, then a sequential merge: adjacency sets
       make insertion order irrelevant, and the per-u lists are written
       to disjoint slots, so grid, pool and brute paths all build equal
       graphs *)
    let nbrs = Array.make n [] in
    for_nodes ?pool n (fun lo hi ->
        for u = lo to hi - 1 do
          nbrs.(u) <-
            Geom.Grid.fold_in_range grid positions.(u) ~dist:reach ~init:[]
              ~f:(fun acc v ->
                if
                  v > u
                  && Radio.Pathloss.in_range pathloss
                       ~dist:(Geom.Vec2.dist positions.(u) positions.(v))
                then v :: acc
                else acc)
        done);
    let g = Graphkit.Ugraph.create n in
    Array.iteri
      (fun u vs -> List.iter (fun v -> Graphkit.Ugraph.add_edge g u v) vs)
      nbrs;
    g
  end

(* Walk the power schedule for one node: at each step, move the candidates
   now reachable from [remaining] to [discovered] (tagging them with the
   step power), and stop at the first gap-free step.  The last step always
   absorbs all remaining candidates (it is >= P up to rounding).
   Accumulation is by prepending — one final sort instead of a quadratic
   append per step. *)
let grow_node ~alpha ~max_power cands steps =
  let rec walk nsteps discovered dirs remaining = function
    | [] -> assert false
    | step :: rest ->
        let is_last = rest = [] in
        let reachable (nb : Neighbor.t) = is_last || nb.link_power <= step in
        let newly, remaining = List.partition reachable remaining in
        let discovered =
          List.fold_left
            (fun acc (nb : Neighbor.t) -> { nb with tag = step } :: acc)
            discovered newly
        in
        let dirs =
          List.fold_left (fun acc (nb : Neighbor.t) -> nb.dir :: acc) dirs newly
        in
        if not (Geom.Dirset.has_gap ~alpha dirs) then
          (discovered, step, false, nsteps)
        else if is_last then (discovered, max_power, true, nsteps)
        else walk (nsteps + 1) discovered dirs remaining rest
  in
  let discovered, power, boundary, nsteps = walk 1 [] [] cands steps in
  (List.sort Neighbor.compare_by_link_power discovered, power, boundary, nsteps)

let run_with ?pool ?(obs = Obs.Recorder.nil) ~candidates config pathloss
    positions =
  Obs.Recorder.span obs "discovery" @@ fun () ->
  let n = Array.length positions in
  let alpha = config.Config.alpha in
  let max_power = Radio.Pathloss.max_power pathloss in
  let neighbors = Array.make n [] in
  let power = Array.make n max_power in
  let boundary = Array.make n false in
  (* per-node observability slots, folded into the recorder sequentially
     after the parallel loop: worker domains never touch [obs], and the
     fold order is node order, so the recorded metrics are identical for
     every -j (chunking must not leak into them) *)
  let recording = Obs.Recorder.enabled obs in
  let steps_used = if recording then Array.make n 0 else [||] in
  let cand_count = if recording then Array.make n 0 else [||] in
  (* each node's discovery is independent: a pure function of the
     positions and the schedule, written to slot u only *)
  for_nodes ?pool n (fun lo hi ->
      for u = lo to hi - 1 do
        let cands = candidates u in
        let link_powers =
          List.map (fun (nb : Neighbor.t) -> nb.link_power) cands
        in
        let steps = Config.power_steps config ~pathloss ~link_powers in
        let discovered, final_power, is_boundary, nsteps =
          grow_node ~alpha ~max_power cands steps
        in
        neighbors.(u) <- discovered;
        power.(u) <- final_power;
        boundary.(u) <- is_boundary;
        if recording then begin
          steps_used.(u) <- nsteps;
          cand_count.(u) <- List.length cands
        end
      done);
  if recording then begin
    Obs.Recorder.incr ~by:n obs "discovery.nodes";
    for u = 0 to n - 1 do
      Obs.Recorder.incr ~by:steps_used.(u) obs "discovery.power_steps";
      if boundary.(u) then Obs.Recorder.incr obs "discovery.boundary_nodes";
      Obs.Recorder.observe obs "discovery.candidates"
        (Stdlib.float_of_int cand_count.(u));
      Obs.Recorder.observe obs "discovery.degree"
        (Stdlib.float_of_int (List.length neighbors.(u)))
    done
  end;
  { Discovery.config; pathloss; positions = Array.copy positions; neighbors;
    power; boundary }

let run ?pool ?(obs = Obs.Recorder.nil) config pathloss positions =
  let grid = make_grid pathloss positions in
  if Obs.Recorder.enabled obs then
    List.iter
      (fun occ ->
        Obs.Recorder.observe obs "grid.cell_occupancy"
          (Stdlib.float_of_int occ))
      (Geom.Grid.occupancy grid);
  run_with ?pool ~obs config pathloss positions
    ~candidates:(fun u -> candidates ~grid pathloss positions u)

module Brute = struct
  let candidates pathloss positions u = candidates pathloss positions u

  let max_power_graph = brute_max_power_graph

  let run config pathloss positions =
    run_with config pathloss positions
      ~candidates:(fun u -> candidates pathloss positions u)
end
