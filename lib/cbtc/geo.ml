let candidates pathloss positions u =
  let n = Array.length positions in
  if u < 0 || u >= n then invalid_arg "Geo.candidates: node out of range";
  let acc = ref [] in
  for v = 0 to n - 1 do
    if v <> u then begin
      let dist = Geom.Vec2.dist positions.(u) positions.(v) in
      if Radio.Pathloss.in_range pathloss ~dist then begin
        let link_power = Radio.Pathloss.power_for_distance pathloss dist in
        let dir = Geom.Vec2.direction ~from:positions.(u) ~toward:positions.(v) in
        acc := Neighbor.make ~id:v ~dir ~link_power ~tag:link_power :: !acc
      end
    end
  done;
  List.sort Neighbor.compare_by_link_power !acc

let max_power_graph pathloss positions =
  let n = Array.length positions in
  let g = Graphkit.Ugraph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let dist = Geom.Vec2.dist positions.(u) positions.(v) in
      if Radio.Pathloss.in_range pathloss ~dist then Graphkit.Ugraph.add_edge g u v
    done
  done;
  g

(* Walk the power schedule for one node: at each step, move the candidates
   now reachable from [remaining] to [discovered] (tagging them with the
   step power), and stop at the first gap-free step.  The last step always
   absorbs all remaining candidates (it is >= P up to rounding). *)
let grow_node ~alpha ~max_power cands steps =
  let rec walk discovered dirs remaining = function
    | [] -> assert false
    | step :: rest ->
        let is_last = rest = [] in
        let reachable (nb : Neighbor.t) = is_last || nb.link_power <= step in
        let newly, remaining = List.partition reachable remaining in
        let discovered =
          discovered
          @ List.map (fun (nb : Neighbor.t) -> { nb with tag = step }) newly
        in
        let dirs = dirs @ Neighbor.directions newly in
        if not (Geom.Dirset.has_gap ~alpha dirs) then (discovered, step, false)
        else if is_last then (discovered, max_power, true)
        else walk discovered dirs remaining rest
  in
  walk [] [] cands steps

let run config pathloss positions =
  let n = Array.length positions in
  let alpha = config.Config.alpha in
  let max_power = Radio.Pathloss.max_power pathloss in
  let neighbors = Array.make n [] in
  let power = Array.make n max_power in
  let boundary = Array.make n false in
  for u = 0 to n - 1 do
    let cands = candidates pathloss positions u in
    let link_powers = List.map (fun (nb : Neighbor.t) -> nb.link_power) cands in
    let steps = Config.power_steps config ~pathloss ~link_powers in
    let discovered, final_power, is_boundary =
      grow_node ~alpha ~max_power cands steps
    in
    neighbors.(u) <- List.sort Neighbor.compare_by_link_power discovered;
    power.(u) <- final_power;
    boundary.(u) <- is_boundary
  done;
  { Discovery.config; pathloss; positions = Array.copy positions; neighbors;
    power; boundary }
