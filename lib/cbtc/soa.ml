type t = {
  config : Config.t;
  pathloss : Radio.Pathloss.t;
  positions : Geom.Vec2.t array;
  off : int array;
  ids : int array;
  dirs : float array;
  links : float array;
  tags : float array;
  power : float array;
  boundary : bool array;
}

let nb_nodes t = Array.length t.off - 1

let degree t u = t.off.(u + 1) - t.off.(u)

let iter_neighbors t u f =
  for i = t.off.(u) to t.off.(u + 1) - 1 do
    f ~id:t.ids.(i) ~dir:t.dirs.(i) ~link_power:t.links.(i) ~tag:t.tags.(i)
  done

let to_discovery t =
  let n = nb_nodes t in
  let neighbors =
    Array.init n (fun u ->
        let lo = t.off.(u) in
        let rec build i acc =
          if i < lo then acc
          else
            build (i - 1)
              ({
                 Neighbor.id = t.ids.(i);
                 dir = t.dirs.(i);
                 link_power = t.links.(i);
                 tag = t.tags.(i);
               }
              :: acc)
        in
        build (t.off.(u + 1) - 1) [])
  in
  {
    Discovery.config = t.config;
    pathloss = t.pathloss;
    positions = Array.copy t.positions;
    neighbors;
    power = Array.copy t.power;
    boundary = Array.copy t.boundary;
  }
