(** The distributed CBTC(alpha) protocol (Figure 1 of the paper), run
    over the simulated radio network.

    Each node executes, independently and asynchronously:
    {v
    N_u <- {};  D_u <- {};  p_u <- p0;
    while (p_u < P and gap_alpha(D_u)) do
      p_u <- Increase(p_u);
      bcast(u, p_u, ("Hello", p_u)) and gather Acks;
      N_u <- N_u + {v : v discovered};
      D_u <- D_u + {dir_u(v) : v discovered}
    v}
    A node receiving a "Hello" always answers with an Ack sent at the
    estimated link power.  The initiator tags each neighbor with the
    broadcast power in use when it was first discovered (for
    shrink-back), estimates the neighbor's link power from the Ack's
    transmission/reception powers, and reads its direction from the
    angle of arrival.

    After global convergence, {!finalize}d runs send the Section 3.2
    "Remove" notifications: [u] tells every node it acked but did not
    select that [(v, u)] must not count toward [E-_alpha].

    The protocol requires a stepped growth schedule ([Double] or [Mult]);
    a distributed node cannot realize [Exact] growth because it does not
    know the next neighbor's distance in advance.

    Under a reliable channel the outcome is provably identical to the
    centralized oracle ({!Geo}) with the same schedule — the test suite
    checks this on random scenarios.  Under lossy/duplicating channels
    (Section 4's asynchronous model) handlers are idempotent and Hellos
    can be repeated; see {!Async} for the full reconfiguration story. *)

type stats = {
  transmissions : int;  (** radio transmissions (hellos + acks + removes) *)
  deliveries : int;  (** message receptions *)
  max_rounds : int;  (** largest number of power steps any node used *)
  duration : float;  (** simulated time to quiescence *)
}

type outcome = {
  discovery : Discovery.t;  (** converged per-node state *)
  core_neighbors : int list array;
      (** per-node [N_alpha(u)] after incoming Remove notifications — the
          distributed materialization of [E-_alpha].  Meaningful only for
          [alpha <= 2pi/3]; at larger angles the Remove phase does not run
          and this equals the plain neighbor sets. *)
  removals : int;
      (** Remove notifications sent (0 when [alpha > 2pi/3]) *)
  stats : stats;
}

(** [run ?channel ?hello_repeats ?seed ?start_spread config pathloss
    positions] executes the protocol to quiescence and, afterwards, the
    Remove phase.

    - [channel] (default reliable, unit delay) governs loss/duplication/
      delay.
    - [hello_repeats] (default 1) re-broadcasts each Hello to tolerate
      loss.
    - [start_spread] (default 0.) staggers node start times uniformly in
      [\[0, start_spread\]] — full asynchrony.
    @raise Invalid_argument if [config.growth] is [Exact]. *)
val run :
  ?channel:Dsim.Channel.t ->
  ?hello_repeats:int ->
  ?seed:int ->
  ?start_spread:float ->
  Config.t ->
  Radio.Pathloss.t ->
  Geom.Vec2.t array ->
  outcome
