(** The distributed CBTC(alpha) protocol (Figure 1 of the paper), run
    over the simulated radio network.

    Each node executes, independently and asynchronously:
    {v
    N_u <- {};  D_u <- {};  p_u <- p0;
    while (p_u < P and gap_alpha(D_u)) do
      p_u <- Increase(p_u);
      bcast(u, p_u, ("Hello", p_u)) and gather Acks;
      N_u <- N_u + {v : v discovered};
      D_u <- D_u + {dir_u(v) : v discovered}
    v}
    A node receiving a "Hello" always answers with an Ack sent at the
    estimated link power.  The initiator tags each neighbor with the
    broadcast power in use when it was first discovered (for
    shrink-back), estimates the neighbor's link power from the Ack's
    transmission/reception powers, and reads its direction from the
    angle of arrival.

    After global convergence, {!finalize}d runs send the Section 3.2
    "Remove" notifications: [u] tells every node it acked but did not
    select that [(v, u)] must not count toward [E-_alpha].

    The protocol requires a stepped growth schedule ([Double] or [Mult]);
    a distributed node cannot realize [Exact] growth because it does not
    know the next neighbor's distance in advance.

    Under a reliable channel the outcome is provably identical to the
    centralized oracle ({!Geo}) with the same schedule — the test suite
    checks this on random scenarios.  Under lossy/duplicating channels
    (Section 4's asynchronous model) handlers are idempotent and Hellos
    can be repeated; a {!reliability} profile additionally retries,
    settles and acknowledges (see below), and a {!Faults.Plan.t} injects
    crashes, recoveries and link loss mid-run. *)

(** Retransmission/robustness knobs.  {!legacy} reproduces the original
    fire-and-forget protocol bit-for-bit; {!hardened} is tuned for bursty
    loss and crash faults.

    - [hello_attempts]: broadcasts of the Hello at {e each} power step
      while the cone gap persists, before conceding the gap is real and
      growing the radius.  Retries are spaced by bounded exponential
      backoff ([backoff] round trips, multiplied by [backoff_factor]
      each retry, capped).
    - [settle_rounds]: confirming Hello re-broadcasts at the final power
      once the gap closes — under loss they harvest acks from in-range
      nodes whose earlier replies were dropped, so the symmetric closure
      sees the edge from both sides.  Acks only ever add neighbors, so
      settling cannot reopen the gap.
    - [remove_attempts]: transmissions of each Section 3.2 [Remove]
      notification; every [Remove] is acknowledged and retransmitted
      with the same backoff until acked (a silently lost [Remove] would
      leave a stale edge in [E-_alpha]). *)
type reliability = {
  hello_attempts : int;  (** >= 1; 1 = never retry *)
  settle_rounds : int;  (** >= 0; 0 = declare done immediately *)
  remove_attempts : int;  (** >= 1; 1 = fire-and-forget *)
  backoff : float;  (** > 0, first retry wait in channel round trips *)
  backoff_factor : float;  (** >= 1, growth per retry (capped) *)
}

(** The original protocol: no retries, no settling, unacknowledged
    Removes.  With no fault plan, [run ~reliability:legacy] is
    message-for-message identical to earlier releases. *)
val legacy : reliability

(** Tuned for Gilbert–Elliott burst loss around 0.3 mean and crash
    faults: 8 hello attempts, 6 settle rounds, 8 remove attempts,
    1.5x backoff. *)
val hardened : reliability

type stats = {
  transmissions : int;  (** radio transmissions (hellos + acks + removes) *)
  deliveries : int;  (** message receptions *)
  drops : int;  (** transmissions that delivered no copy *)
  retransmissions : int;  (** retries + settle probes beyond first sends *)
  max_rounds : int;  (** largest number of power steps any node used *)
  duration : float;  (** simulated time to quiescence *)
}

type outcome = {
  discovery : Discovery.t;
      (** converged per-node state; crashed nodes are reported with empty
          neighbor lists *)
  core_neighbors : int list array;
      (** per-node [N_alpha(u)] after incoming Remove notifications — the
          distributed materialization of [E-_alpha].  Meaningful only for
          [alpha <= 2pi/3]; at larger angles the Remove phase does not run
          and this equals the plain neighbor sets. *)
  removals : int;
      (** Remove notifications sent (0 when [alpha > 2pi/3]); retries are
          counted under [stats.retransmissions], not here *)
  alive : bool array;  (** liveness at quiescence, per node *)
  injected : Faults.Inject.stats;  (** faults that actually fired *)
  stats : stats;
  schedule_log : int array;
      (** the event queue's tie-break decision log (see
          {!Dsim.Eventq.log}): empty under the default [Fifo] policy,
          else one priority per scheduled event.  Re-running with
          [~policy:(Replay log)] reproduces the schedule exactly. *)
}

(** [run ?channel ?hello_repeats ?seed ?start_spread ?reliability ?faults
    config pathloss positions] executes the protocol to quiescence and,
    afterwards, the Remove phase.

    - [channel] (default reliable, unit delay) governs loss/duplication/
      delay.
    - [hello_repeats] (default 1) re-broadcasts each Hello blindly, even
      on a healthy step.
    - [start_spread] (default 0.) staggers node start times uniformly in
      [\[0, start_spread\]] — full asynchrony.
    - [reliability] (default {!legacy}) adds adaptive retries, settle
      rounds and acknowledged Removes.
    - [faults] (default {!Faults.Plan.empty}) is armed on the network
      before the first Hello.  Crash/recovery handling models the
      Section 4 failure detector abstractly: when a node crashes, every
      survivor forgets it and — if that reopened its cone — resumes
      power growth from the next scheduled step instead of stalling
      (the paper's "grow from p(rad-)" rule); nodes at maximum power
      become boundary nodes.  A recovered node restarts discovery from
      minimum power.  Messages already in flight from a node that then
      crashed are suppressed on receipt.

    - [policy] (default {!Dsim.Eventq.Fifo}) selects the simulator's
      same-timestamp tie-break rule.  [Fifo] is bit-identical to the
      historical engine; [Seeded _] explores a random permutation of
      every tie group and [Replay _] replays a recorded
      [outcome.schedule_log] — the machinery of {!Check.Explore}.
    - [mutant] (default [false]) arms a deliberately injected
      reordering bug for the harness's mutation smoke test: first-time
      Acks arriving out of ascending-src order are discarded.  Under
      [Fifo] and a reliable channel the discarded set is empty (each
      step's ack batch arrives ascending because broadcast audiences
      are sorted by id), so the mutant is invisible to every
      single-schedule test — only schedule exploration catches it.
      Never enable outside the harness.
    - [env] ({!Radio.Env}) switches the simulated radio to the
      per-link propagation environment: hello audiences and reception
      powers carry the realized excess loss, so nodes discover the
      {e env} link powers (reception-power estimation recovers exactly
      the realized link power, not the geometric one).  Trivial or
      omitted environments are bit-identical to the pure model.

    @raise Invalid_argument if [config.growth] is [Exact], if
    [hello_repeats < 1], if [start_spread < 0], or if [reliability] is
    malformed ([hello_attempts < 1], [settle_rounds < 0],
    [remove_attempts < 1], [backoff <= 0] or [backoff_factor < 1]). *)
val run :
  ?obs:Obs.Recorder.t ->
  ?channel:Dsim.Channel.t ->
  ?hello_repeats:int ->
  ?seed:int ->
  ?start_spread:float ->
  ?reliability:reliability ->
  ?faults:Faults.Plan.t ->
  ?policy:Dsim.Eventq.policy ->
  ?mutant:bool ->
  ?env:Radio.Env.t ->
  Config.t ->
  Radio.Pathloss.t ->
  Geom.Vec2.t array ->
  outcome

(** [result]-typed invariant adapters for the schedule-exploration
    harness live in {!Verify} ([Verify.check_guarantees],
    [Verify.check_oracle], [Verify.discovery_equal]). *)
