(** Independent verification of a converged CBTC state.

    Recomputes everything from node positions — deliberately not trusting
    the directions, link powers, or gap flags stored in the
    {!Discovery.t} — and checks the algorithm's defining guarantees.
    Used by the test suite for differential verification of both the
    oracle and the distributed protocol. *)

(** [run ?complete ?minimal d] raises [Failure] describing the first
    violated guarantee:

    - every discovered neighbor lies within radio range and within the
      node's converged power (tags never exceed the final power);
    - every non-boundary node's {e true geometric} neighbor directions
      leave no [alpha]-gap;
    - every boundary node converged at maximum power;
    - with [complete = true] (oracle / reliable-channel outcomes): every
      node physically reachable at the converged power was discovered;
    - with [minimal = true] (exact growth only): the converged power is
      minimal — the neighbors strictly below the final power do not by
      themselves cover the circle for non-boundary nodes. *)
val run : ?complete:bool -> ?minimal:bool -> Discovery.t -> unit
