(** Independent verification of a converged CBTC state.

    Recomputes everything from node positions — deliberately not trusting
    the directions, link powers, or gap flags stored in the
    {!Discovery.t} — and checks the algorithm's defining guarantees.
    Used by the test suite for differential verification of both the
    oracle and the distributed protocol, and by the stress harness to
    check runs degraded by injected faults. *)

(** [run ?obs ?complete ?minimal d] raises [Failure] describing the
    first violated guarantee (when [obs] is given the pass runs inside
    a [verify] span):

    - every discovered neighbor lies within radio range and within the
      node's converged power (tags never exceed the final power);
    - every non-boundary node's {e true geometric} neighbor directions
      leave no [alpha]-gap;
    - every boundary node converged at maximum power;
    - with [complete = true] (oracle / reliable-channel outcomes): every
      node physically reachable at the converged power was discovered;
    - with [minimal = true] (exact growth only): the converged power is
      minimal — the neighbors strictly below the final power do not by
      themselves cover the circle for non-boundary nodes.

    With a non-trivial [?env] ({!Radio.Env}) every range/reach/power
    predicate is judged by the environment's per-link power — the
    guarantees are restricted to the realized reachability graph
    [G_R^env].  Omitted or trivial, the pre-env predicates apply
    bit-identically. *)
val run :
  ?obs:Obs.Recorder.t -> ?complete:bool -> ?minimal:bool ->
  ?env:Radio.Env.t -> Discovery.t -> unit

(** [surviving ?complete ~alive d] is {!run} restricted to the surviving
    nodes: crashed nodes ([alive.(u) = false]) are skipped entirely, and
    it is additionally a failure for a surviving node to still list a
    crashed neighbor.  [complete] restricts the completeness check to
    reachable {e survivors}.
    @raise Failure on the first violated guarantee.
    @raise Invalid_argument if [alive] does not have one entry per node. *)
val surviving :
  ?complete:bool -> ?env:Radio.Env.t -> alive:bool array -> Discovery.t -> unit

(** Quantified post-fault degradation of a {!Distributed.run} outcome. *)
type degradation = {
  survivors : int;  (** nodes alive at quiescence *)
  crashed : int;  (** nodes dead at quiescence *)
  residual_gap_nodes : int list;
      (** surviving non-boundary nodes whose true geometric directions
          leave an [alpha]-gap — empty on a successful hardened run *)
  boundary_survivors : int;
      (** survivors that gave up with a gap at maximum power *)
  connectivity_preserved : bool;
      (** the symmetric closure, restricted to survivors, induces the
          same component partition on the survivors as their max-power
          reachability graph (the fair post-fault baseline: routes
          through crashed nodes are gone for any algorithm) *)
  delivery_ratio : float;
      (** deliveries / (deliveries + drops); 1. when nothing was sent *)
  extra_rounds : int;
      (** [max_rounds] beyond the [reference] outcome's (0 without one) *)
}

(** [degradation ?reference o] measures [o] without raising.  [reference]
    is typically the fault-free, reliable-channel run of the same
    scenario and only influences [extra_rounds]. *)
val degradation :
  ?reference:Distributed.outcome -> ?env:Radio.Env.t -> Distributed.outcome ->
  degradation

(** {1 Invariant adapters}

    [result]-typed wrappers around the verification passes, for the
    schedule-exploration harness ([Check.Explore]): a failing trial
    becomes an [Error] message instead of an exception, so sweeps
    aggregate failures cheaply. *)

(** [check_guarantees ?complete o] is {!surviving} on [o]'s surviving
    nodes, as a [result]. *)
val check_guarantees :
  ?complete:bool -> ?env:Radio.Env.t -> Distributed.outcome ->
  (unit, string) result

(** [check_surviving ?complete ~alive d] is {!surviving} on a bare
    (alive mask, discovery snapshot) pair, as a [result] — the adapter
    the topology daemon's continuous verification calls between event
    batches, where no [Distributed.outcome] exists. *)
val check_surviving :
  ?complete:bool -> ?env:Radio.Env.t -> alive:bool array -> Discovery.t ->
  (unit, string) result

(** [discovery_equal ~oracle d] checks [d] against the centralized
    oracle's converged state: same neighbor id sets, powers within
    [1e-6], same boundary flags.  [Error] describes the first
    mismatching node. *)
val discovery_equal :
  oracle:Discovery.t -> Discovery.t -> (unit, string) result

(** [check_oracle ~oracle o] is [discovery_equal ~oracle o.discovery]. *)
val check_oracle :
  oracle:Discovery.t -> Distributed.outcome -> (unit, string) result
