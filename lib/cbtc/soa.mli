(** Converged CBTC state in flat struct-of-arrays form.

    The same information as {!Discovery.t}, but with every node's
    discovered-neighbor row packed into shared CSR-style arrays instead
    of one [Neighbor.t list] per node: [off] (length [n+1]) delimits
    node [u]'s row inside the parallel [ids]/[dirs]/[links]/[tags]
    arrays, each row sorted by increasing link power (ties by id) —
    exactly the order of [Discovery.neighbors].

    At n = 10⁵–10⁶ this is the only representation that fits hot loops:
    an unboxed float array slot costs 8 bytes where each boxed
    [Neighbor.t] list element costs ~seven words plus pointer chasing.
    {!Geo.run_flat} produces this type; {!to_discovery} converts to the
    list-of-records form, and the conversion is pinned bit-identical to
    the list-based pipeline by the differential tests. *)

type t = {
  config : Config.t;
  pathloss : Radio.Pathloss.t;
  positions : Geom.Vec2.t array;
  off : int array;  (** length [n+1]; row [u] is indices [off.(u) .. off.(u+1)-1] *)
  ids : int array;  (** discovered neighbor ids *)
  dirs : float array;  (** normalized directions, as [Neighbor.dir] *)
  links : float array;  (** link powers *)
  tags : float array;  (** discovery-step powers, as [Neighbor.tag] *)
  power : float array;  (** final per-node power [p_{u,alpha}] *)
  boundary : bool array;
}

val nb_nodes : t -> int

(** [degree t u] is [|N_alpha(u)|]. *)
val degree : t -> int -> int

(** [iter_neighbors t u f] streams row [u] in increasing link-power
    order, allocation-free. *)
val iter_neighbors :
  t ->
  int ->
  (id:int -> dir:float -> link_power:float -> tag:float -> unit) ->
  unit

(** [to_discovery t] expands the rows into per-node [Neighbor.t] lists;
    the result is bit-identical to what the list-based oracle returns
    for the same inputs. *)
val to_discovery : t -> Discovery.t
