type t = { id : int; dir : float; link_power : float; tag : float }

let make ~id ~dir ~link_power ~tag =
  if link_power < 0. then invalid_arg "Neighbor.make: negative link power";
  { id; dir = Geom.Angle.normalize dir; link_power; tag }

let compare_by_link_power a b =
  match Float.compare a.link_power b.link_power with
  | 0 -> Int.compare a.id b.id
  | c -> c

let compare_by_tag a b =
  match Float.compare a.tag b.tag with
  | 0 -> compare_by_link_power a b
  | c -> c

let directions neighbors = List.map (fun n -> n.dir) neighbors

let pp ppf n =
  Fmt.pf ppf "#%d@%a (link=%g, tag=%g)" n.id Geom.Angle.pp n.dir n.link_power
    n.tag
