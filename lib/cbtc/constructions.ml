let ex_u0 = 0

let ex_u1 = 1

let ex_u2 = 2

let ex_u3 = 3

let ex_v = 4

type example_2_1 = {
  positions : Geom.Vec2.t array;
  alpha : float;
  epsilon : float;
  max_range : float;
}

let example_2_1 ?(r = 500.) ~alpha () =
  if r <= 0. then invalid_arg "Constructions.example_2_1: non-positive R";
  if
    alpha <= Geom.Angle.two_pi_three
    || alpha > Geom.Angle.five_pi_six +. 1e-12
  then
    invalid_arg "Constructions.example_2_1: needs 2pi/3 < alpha <= 5pi/6";
  (* eps = alpha/2 - pi/3, so that angle(v, u0, u1) = pi/3 + eps would sit
     exactly on the alpha/2 boundary.  Exactly on it, u0's gap facing v
     equals alpha — which correctly counts as a gap (Theorem 2.1), so u0
     would keep growing and discover v, destroying the example.  The
     example only needs strict inequalities, so place u1, u2 at
     pi/3 + 7eps/8, strictly inside the boundary; every distance claim
     (d(u0,u1) < R, d(u1,v) > R) stays strict. *)
  let epsilon = (alpha /. 2.) -. Geom.Angle.pi_three in
  let eps_in = epsilon *. 7. /. 8. in
  let u0 = Geom.Vec2.zero in
  let v = Geom.Vec2.make r 0. in
  (* Triangle u0-v-u1: angles pi/3+eps_in at u0, pi/3-eps_in at v, pi/3 at
     u1; law of sines gives d(u0,u1) = R sin(pi/3-eps_in)/sin(pi/3) < R. *)
  let d_u1 = r *. sin (Geom.Angle.pi_three -. eps_in) /. sin Geom.Angle.pi_three in
  let u1 = Geom.Vec2.of_polar ~r:d_u1 ~theta:(Geom.Angle.pi_three +. eps_in) in
  let u2 = Geom.Vec2.of_polar ~r:d_u1 ~theta:(-.(Geom.Angle.pi_three +. eps_in)) in
  let u3 = Geom.Vec2.make (-.r /. 2.) 0. in
  { positions = [| u0; u1; u2; u3; v |]; alpha; epsilon; max_range = r }

let th_u0 = 0

let th_u1 = 1

let th_u2 = 2

let th_u3 = 3

let th_v0 = 4

let th_v1 = 5

let th_v2 = 6

let th_v3 = 7

type theorem_2_4 = {
  positions : Geom.Vec2.t array;
  alpha : float;
  epsilon : float;
  max_range : float;
}

let theorem_2_4 ?(r = 500.) ~epsilon () =
  if r <= 0. then invalid_arg "Constructions.theorem_2_4: non-positive R";
  if epsilon <= 0. || epsilon >= Float.pi /. 6. then
    invalid_arg "Constructions.theorem_2_4: needs 0 < epsilon < pi/6";
  let alpha = Geom.Angle.five_pi_six +. epsilon in
  let u0 = Geom.Vec2.zero in
  let v0 = Geom.Vec2.make r 0. in
  (* u3 sits on the horizontal line through s' = (R/2, -sqrt(3)R/2),
     slightly left of s', at angle(u3,u0,u1) = 5pi/6 + eps/2 < alpha. *)
  let theta3 = -.Geom.Angle.pi_three -. (epsilon /. 2.) in
  let r3 = sqrt 3. *. r /. 2. /. sin (Geom.Angle.pi_three +. (epsilon /. 2.)) in
  let u3 = Geom.Vec2.of_polar ~r:r3 ~theta:theta3 in
  let delta = (r /. 2.) -. u3.Geom.Vec2.x in
  (* d(u0,u1) small enough that d(u3, v1) > R; delta/4 suffices. *)
  let h = delta /. 4. in
  let u1 = Geom.Vec2.make 0. h in
  (* u2 at exactly pi/2 + alpha would leave u0 a gap of exactly alpha
     between u1 and u2, which counts as a gap and would make u0 grow all
     the way to v0; pull it in by eps/4 so the gap is strictly below
     alpha while angle(u2,u0,u3) = pi/3 - 5eps/4 stays positive. *)
  let u2 =
    Geom.Vec2.of_polar ~r:(r /. 2.)
      ~theta:((Float.pi /. 2.) +. alpha -. (epsilon /. 4.))
  in
  (* The v-cluster is the u-cluster reflected through the midpoint of
     u0 v0 (central symmetry). *)
  let mirror (p : Geom.Vec2.t) = Geom.Vec2.make (r -. p.Geom.Vec2.x) (-.p.Geom.Vec2.y) in
  let positions = [| u0; u1; u2; u3; v0; mirror u1; mirror u2; mirror u3 |] in
  (* Re-verify the paper's distance claims. *)
  let dist i j = Geom.Vec2.dist positions.(i) positions.(j) in
  let fail fmt = Fmt.kstr failwith fmt in
  if Float.abs (dist th_u0 th_v0 -. r) > 1e-6 then
    fail "theorem_2_4: d(u0,v0) = %g, expected R = %g" (dist th_u0 th_v0) r;
  List.iter
    (fun i ->
      if dist th_u0 i >= r then
        fail "theorem_2_4: u-cluster node %d at distance %g >= R" i
          (dist th_u0 i);
      if dist th_v0 (i + 4) >= r then
        fail "theorem_2_4: v-cluster node %d at distance %g >= R" (i + 4)
          (dist th_v0 (i + 4)))
    [ th_u1; th_u2; th_u3 ];
  for i = 0 to 3 do
    for j = 4 to 7 do
      if i + j > 4 (* skip (u0, v0) *) && dist i j <= r then
        fail "theorem_2_4: cross pair (%d, %d) at distance %g <= R" i j
          (dist i j)
    done
  done;
  { positions; alpha; epsilon; max_range = r }
