(** Fault-tolerant CBTC — the follow-up result the paper's discussion
    anticipates (Bahramgiri, Hajiaghayi, Mirrokni 2002): running
    CBTC with cone degree [2pi/(3k)] preserves {e k-connectivity} — if
    the max-power graph [G_R] is k-vertex-connected, so is the resulting
    topology (no symmetric closure needed at that angle, but we keep the
    closure for uniformity; extra edges never hurt connectivity).

    This module packages the parameterization and the empirical check;
    it is an extension beyond the reproduced paper, flagged as such in
    DESIGN.md. *)

(** [alpha_for ~k] is [2pi/(3k)] — the cone degree preserving
    k-connectivity.
    @raise Invalid_argument for [k < 1]. *)
val alpha_for : k:int -> float

(** [config ?growth ~k ()] is a {!Config.t} at {!alpha_for}. *)
val config : ?growth:Config.growth -> k:int -> unit -> Config.t

(** [run ~k pathloss positions] runs the oracle at [alpha_for ~k] and
    returns the closure topology. *)
val run : k:int -> Radio.Pathloss.t -> Geom.Vec2.t array -> Graphkit.Ugraph.t

(** [check ~k pathloss positions] runs {!run} and reports whether the
    max-power graph was k-connected and whether the controlled topology
    still is ([k <= 3]). *)
val check :
  k:int ->
  Radio.Pathloss.t ->
  Geom.Vec2.t array ->
  (* (GR k-connected, topology k-connected) *)
  bool * bool
