module IMap = Map.Make (Int)

type params = {
  beacon_interval : float;
  miss_limit : int;
  dir_tolerance : float;
  hello_repeats : int;
}

let default_params =
  { beacon_interval = 10.; miss_limit = 3; dir_tolerance = 0.05;
    hello_repeats = 1 }

type event_kind = Join | Leave | Achange

type event = { time : float; node : int; about : int; kind : event_kind }

type msg = Hello | Ack | Beacon

type nstate = {
  id : int;
  mutable epoch : int;  (* bumped on recovery; invalidates old NDP timers *)
  mutable growing : bool;
  mutable power : float;  (* current data power (may shrink) *)
  mutable basic_power : float;  (* last completed basic-growth power: beacon floor *)
  mutable schedule : float list;
  mutable neighbors : Neighbor.t IMap.t;
  mutable last_heard : float IMap.t;
  mutable acked : float IMap.t;
  mutable boundary : bool;
}

type t = {
  config : Config.t;
  pathloss : Radio.Pathloss.t;
  params : params;
  channel : Dsim.Channel.t;
  sim : Dsim.Sim.t;
  net : msg Airnet.Net.t;
  nodes : nstate array;
  mutable events : event list;  (* newest first *)
  mutable last_activity : float;
  growth_factor : float;
  p0 : float;
  obs : Obs.Recorder.t;
}

let nb_nodes t = Array.length t.nodes

let now t = Dsim.Sim.now t.sim

let alive t u = Airnet.Net.is_alive t.net u

let positions t =
  Array.init (nb_nodes t) (fun u -> Airnet.Net.position t.net u)

let events t = List.rev t.events

let quiescent t ~for_ = now t -. t.last_activity >= for_

let touch t = t.last_activity <- now t

let log_event t node about kind =
  Obs.Recorder.incr t.obs
    (match kind with
    | Join -> "ndp.joins"
    | Leave -> "ndp.leaves"
    | Achange -> "ndp.achanges");
  t.events <- { time = now t; node; about; kind } :: t.events;
  touch t

let growth_params (config : Config.t) =
  match config.growth with
  | Config.Exact ->
      invalid_arg "Reconfig: Exact growth needs global knowledge; use Double \
                   or Mult"
  | Config.Double p0 -> (p0, 2.)
  | Config.Mult { p0; factor } -> (p0, factor)

let alpha t = t.config.Config.alpha

let directions node =
  IMap.fold (fun _ (nb : Neighbor.t) acc -> nb.dir :: acc) node.neighbors []

let has_gap t node = Geom.Dirset.has_gap ~alpha:(alpha t) (directions node)

let max_power t = Radio.Pathloss.max_power t.pathloss

(* p(rad-_{u,alpha}): power to reach the farthest current N_alpha member. *)
let out_reach_power node =
  IMap.fold
    (fun _ (nb : Neighbor.t) acc -> Float.max acc nb.link_power)
    node.neighbors 0.

(* Section 4: beacon with the basic-algorithm power joined with the power
   needed to reach everyone we acked (the incoming E_alpha edges). *)
let beacon_power t node =
  let incoming = IMap.fold (fun _ p acc -> Float.max acc p) node.acked 0. in
  Float.min (max_power t) (Float.max t.p0 (Float.max node.basic_power incoming))

let eval_delay t =
  (Stdlib.float_of_int t.params.hello_repeats
  *. t.channel.Dsim.Channel.max_delay)
  +. t.channel.Dsim.Channel.max_delay +. 0.5

(* Stepped schedule from [start] (exclusive of powers below it) up to P. *)
let schedule_from t ~start =
  let p = Float.max t.p0 start in
  let rec build acc power =
    if power >= max_power t then List.rev (max_power t :: acc)
    else build (power :: acc) (power *. t.growth_factor)
  in
  build [] p

(* Growth closures carry the epoch they were started in and go inert
   once the node is recovered into a later epoch: a crash/recover cycle
   quicker than [eval_delay] would otherwise leave the dead run's
   pending hello/evaluate callbacks firing into the fresh epoch's
   growth (same guard discipline as the NDP timers in [start_ndp]). *)
let rec growth_step t node ~epoch =
  if node.epoch = epoch then
    match node.schedule with
    | [] ->
        node.growing <- false;
        node.boundary <- true;
        node.basic_power <- node.power;
        touch t
    | power :: rest ->
        node.schedule <- rest;
        node.power <- power;
        for i = 0 to t.params.hello_repeats - 1 do
          ignore
            (Dsim.Sim.schedule t.sim
               ~delay:(Stdlib.float_of_int i *. t.channel.Dsim.Channel.max_delay)
               (fun () ->
                 if node.epoch = epoch then begin
                   Obs.Recorder.incr t.obs "msg.hello";
                   ignore (Airnet.Net.bcast t.net ~src:node.id ~power Hello)
                 end))
        done;
        ignore
          (Dsim.Sim.schedule t.sim ~delay:(eval_delay t) (fun () ->
               evaluate t node ~epoch))

and evaluate t node ~epoch =
  if node.epoch = epoch && node.growing then
    if not (has_gap t node) then begin
      node.growing <- false;
      node.boundary <- false;
      node.basic_power <- node.power;
      touch t
    end
    else if node.schedule = [] then begin
      node.growing <- false;
      node.boundary <- true;
      node.basic_power <- node.power;
      touch t
    end
    else growth_step t node ~epoch

let trigger_growth t node ~start =
  if (not node.growing) && alive t node.id then begin
    Obs.Recorder.incr t.obs "reconfig.growth_triggers";
    node.growing <- true;
    node.schedule <- schedule_from t ~start;
    touch t;
    growth_step t node ~epoch:node.epoch
  end

(* Shrink-back pass used by join / aChange handling: trim farthest tags
   while coverage is unchanged, and lower the data power accordingly. *)
let shrink t node =
  let listed = IMap.fold (fun _ nb acc -> nb :: acc) node.neighbors [] in
  match Optimize.shrink_neighbors ~alpha:(alpha t) listed with
  | kept, Some _ ->
      let needed =
        List.fold_left
          (fun acc (nb : Neighbor.t) -> Float.max acc nb.link_power)
          0. kept
      in
      (* Trimming preserves coverage, so the kept set has an alpha-gap
         iff the node currently does.  While the gap persists the node
         is a boundary node and must hold max power; a join that just
         closed the gap ends its boundary status and lets it shrink to
         the power reaching its farthest kept neighbor. *)
      let gap = has_gap t node in
      let power =
        if gap then max_power t
        else Float.max t.p0 (Float.min (max_power t) needed)
      in
      (* Every kept neighbor is reachable at the recomputed power, so its
         effective selection class is at most that power; without the
         clamp a growth-step tag can stay above the shrunk power. *)
      node.neighbors <-
        List.fold_left
          (fun m (nb : Neighbor.t) ->
            IMap.add nb.id { nb with Neighbor.tag = Float.min nb.tag power } m)
          IMap.empty kept;
      node.boundary <- gap;
      node.power <- power
  | _, None -> ()

let heard t node src = node.last_heard <- IMap.add src (now t) node.last_heard

let ndp_timeout t =
  Stdlib.float_of_int t.params.miss_limit *. t.params.beacon_interval

(* [v] is a join for [node] when nothing was heard from [v] during the
   previous timeout interval.  Any message carries liveness, so the check
   runs on hellos and acks too, not just beacons: a recovered node floods
   hellos while re-growing, and those refresh [last_heard] long before
   its first beacon — without this, the rejoin would never be logged. *)
let fresh_contact t node src =
  match IMap.find_opt src node.last_heard with
  | None -> true
  | Some when_ -> now t -. when_ > ndp_timeout t

let note_join t node src =
  if fresh_contact t node src then log_event t node.id src Join

let on_hello t (r : msg Airnet.Net.recv) =
  let me = t.nodes.(r.dst) in
  note_join t me r.src;
  heard t me r.src;
  let link_power =
    Radio.Pathloss.estimate_link_power t.pathloss ~tx_power:r.tx_power
      ~rx_power:r.rx_power
  in
  me.acked <- IMap.add r.src link_power me.acked;
  Obs.Recorder.incr t.obs "msg.ack";
  ignore (Airnet.Net.send t.net ~src:r.dst ~dst:r.src ~power:link_power Ack)

let on_ack t (r : msg Airnet.Net.recv) =
  let me = t.nodes.(r.dst) in
  note_join t me r.src;
  heard t me r.src;
  let link_power =
    Radio.Pathloss.estimate_link_power t.pathloss ~tx_power:r.tx_power
      ~rx_power:r.rx_power
  in
  let tag =
    match IMap.find_opt r.src me.neighbors with
    | Some old -> Float.min old.Neighbor.tag me.power
    | None -> me.power
  in
  me.neighbors <-
    IMap.add r.src
      (Neighbor.make ~id:r.src ~dir:r.rx_dir ~link_power ~tag)
      me.neighbors

(* NDP semantics (Section 4): a beacon from [v] is a join iff nothing was
   heard from [v] during the previous timeout interval — not merely "[v]
   is not currently a selected neighbor", which would make every beacon
   from a shrunk-away node a fresh join. *)
let on_beacon t (r : msg Airnet.Net.recv) =
  let me = t.nodes.(r.dst) in
  let is_join = fresh_contact t me r.src in
  heard t me r.src;
  let link_power =
    Radio.Pathloss.estimate_link_power t.pathloss ~tx_power:r.tx_power
      ~rx_power:r.rx_power
  in
  if is_join then begin
    log_event t r.dst r.src Join;
    me.neighbors <-
      IMap.add r.src
        (Neighbor.make ~id:r.src ~dir:r.rx_dir ~link_power ~tag:link_power)
        me.neighbors;
    shrink t me
  end
  else
    match IMap.find_opt r.src me.neighbors with
    | None -> ()
    | Some nb ->
        if link_power > Radio.Pathloss.reach_cap ~power:me.power then begin
          (* The neighbor slid beyond what [me] can reach at its current
             data power.  A purely radial move never trips the direction
             test below, and the neighbor's own beacons keep refreshing
             [last_heard], so the expire path never fires either: the
             stale link record would silently linger (and violate the
             "every neighbor within converged power" guarantee).  NDP
             semantics for a reachability-boundary crossing are
             leave-then-join: relog the neighbor from the fresh estimate
             and re-cover the cone. *)
          log_event t r.dst r.src Leave;
          log_event t r.dst r.src Join;
          me.neighbors <-
            IMap.add r.src
              (Neighbor.make ~id:r.src ~dir:r.rx_dir ~link_power
                 ~tag:link_power)
              me.neighbors;
          if has_gap t me then
            trigger_growth t me ~start:(out_reach_power me)
          else
            (* directions still cover: shrink recomputes the data power
               from the kept set, which *raises* it to the new link *)
            shrink t me
        end
        else if
          Geom.Angle.diff nb.Neighbor.dir r.rx_dir > t.params.dir_tolerance
        then begin
          log_event t r.dst r.src Achange;
          me.neighbors <-
            IMap.add r.src
              (Neighbor.make ~id:r.src ~dir:r.rx_dir ~link_power
                 ~tag:(Float.min nb.Neighbor.tag link_power))
              me.neighbors;
          if has_gap t me then
            trigger_growth t me ~start:(out_reach_power me)
          else shrink t me
        end

let on_recv t (r : msg Airnet.Net.recv) =
  match r.payload with
  | Hello -> on_hello t r
  | Ack -> on_ack t r
  | Beacon -> on_beacon t r

let expire t node =
  let timeout = ndp_timeout t in
  let stale src =
    match IMap.find_opt src node.last_heard with
    | Some when_ -> now t -. when_ > timeout
    | None -> true
  in
  let left = IMap.filter (fun src _ -> stale src) node.neighbors in
  if not (IMap.is_empty left) then begin
    IMap.iter (fun src _ -> log_event t node.id src Leave) left;
    node.neighbors <- IMap.filter (fun src _ -> not (stale src)) node.neighbors;
    if has_gap t node then trigger_growth t node ~start:(out_reach_power node)
  end;
  node.acked <- IMap.filter (fun src _ -> not (stale src)) node.acked;
  (* Drop stale liveness records so a re-appearing node counts as a join. *)
  node.last_heard <-
    IMap.filter (fun _ when_ -> now t -. when_ <= timeout) node.last_heard

(* A node's NDP timers: beacon every interval, expire-check offset by
   half an interval.  Both stop themselves when the node crashes or when
   the node has been recovered since they were started (the epoch guard:
   recovery starts fresh timers, and without the guard a crash/recover
   cycle quicker than one beacon interval would leave two live timer
   pairs beaconing at double rate). *)
let start_ndp t node =
  let epoch = node.epoch in
  let live () = alive t node.id && node.epoch = epoch in
  let rec beacon = lazy
    (Dsim.Periodic.start t.sim ~initial_delay:0.
       ~interval:t.params.beacon_interval (fun () ->
         if live () then begin
           Obs.Recorder.incr t.obs "msg.beacon";
           ignore
             (Airnet.Net.bcast t.net ~src:node.id
                ~power:(beacon_power t node) Beacon)
         end
         else Dsim.Periodic.stop (Lazy.force beacon)))
  in
  let rec expire_timer = lazy
    (Dsim.Periodic.start t.sim
       ~initial_delay:(t.params.beacon_interval /. 2.)
       ~interval:t.params.beacon_interval (fun () ->
         if live () then expire t node
         else Dsim.Periodic.stop (Lazy.force expire_timer)))
  in
  ignore (Lazy.force beacon);
  ignore (Lazy.force expire_timer)

let create ?(obs = Obs.Recorder.nil) ?(channel = Dsim.Channel.reliable)
    ?(seed = 1) ?(params = default_params) ?(policy = Dsim.Eventq.Fifo) config
    pathloss positions =
  let p0, growth_factor = growth_params config in
  if params.beacon_interval <= 0. || params.miss_limit < 1
     || params.hello_repeats < 1
  then invalid_arg "Reconfig.create: bad params";
  let sim = Dsim.Sim.create ~obs ~policy () in
  let prng = Prng.create ~seed in
  let net =
    Airnet.Net.create ~obs ~sim ~pathloss ~channel ~prng:(Prng.split prng)
      ~positions ()
  in
  let nodes =
    Array.init (Array.length positions) (fun id ->
        {
          id;
          epoch = 0;
          growing = false;
          power = p0;
          basic_power = p0;
          schedule = [];
          neighbors = IMap.empty;
          last_heard = IMap.empty;
          acked = IMap.empty;
          boundary = false;
        })
  in
  let t =
    {
      config;
      pathloss;
      params;
      channel;
      sim;
      net;
      nodes;
      events = [];
      last_activity = 0.;
      growth_factor;
      p0;
      obs;
    }
  in
  Array.iteri (fun u _ -> Airnet.Net.set_handler net u (on_recv t)) nodes;
  (* Initial CBTC(alpha) run to convergence, then start the NDP.  The
     bootstrap hellos all register as first contacts; those are initial
     discovery, not reconfiguration, so the event log starts empty. *)
  Array.iter (fun node -> trigger_growth t node ~start:t.p0) nodes;
  ignore (Dsim.Sim.run sim);
  t.events <- [];
  let t0 = now t in
  Array.iter
    (fun node ->
      node.last_heard <- IMap.map (fun _ -> t0) node.last_heard;
      start_ndp t node)
    nodes;
  t.last_activity <- t0;
  t

let run_for t ~duration =
  if duration < 0. then invalid_arg "Reconfig.run_for: negative duration";
  ignore (Dsim.Sim.run_until t.sim ~time:(now t +. duration))

let set_position t u p = Airnet.Net.set_position t.net u p

let crash t u = Airnet.Net.crash t.net u

let recover t u =
  if not (alive t u) then begin
    Airnet.Net.recover t.net u;
    let node = t.nodes.(u) in
    node.epoch <- node.epoch + 1;
    node.growing <- false;
    node.power <- t.p0;
    node.basic_power <- t.p0;
    node.schedule <- [];
    node.neighbors <- IMap.empty;
    node.last_heard <- IMap.empty;
    node.acked <- IMap.empty;
    node.boundary <- false;
    (* Rejoin like a fresh node: grow from p0, then resume beaconing —
       peers see the beacons as NDP joins. *)
    trigger_growth t node ~start:t.p0;
    start_ndp t node;
    touch t
  end

let neighbor_list t node =
  if not (alive t node.id) then []
  else
    IMap.fold
      (fun _ nb acc -> if alive t nb.Neighbor.id then nb :: acc else acc)
      node.neighbors []
    |> List.sort Neighbor.compare_by_link_power

let topology t =
  let g = Graphkit.Ugraph.create (nb_nodes t) in
  Array.iter
    (fun node ->
      List.iter
        (fun (nb : Neighbor.t) -> Graphkit.Ugraph.add_edge g node.id nb.id)
        (neighbor_list t node))
    t.nodes;
  g

let discovery t =
  {
    Discovery.config = t.config;
    pathloss = t.pathloss;
    positions = positions t;
    neighbors = Array.map (neighbor_list t) t.nodes;
    power = Array.map (fun node -> node.power) t.nodes;
    boundary = Array.map (fun node -> node.boundary) t.nodes;
  }

let schedule_log t = Dsim.Sim.schedule_log t.sim

(* Invariant adapter for the schedule-exploration harness: after the
   network has settled, the survivors' converged state must satisfy the
   CBTC guarantees whatever order the NDP/growth events interleaved in. *)
let check_stable t =
  let alive_arr = Array.init (nb_nodes t) (alive t) in
  match Verify.surviving ~alive:alive_arr (discovery t) with
  | () -> Ok ()
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error msg
