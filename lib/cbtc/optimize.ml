let shrink_neighbors ~alpha neighbors =
  match neighbors with
  | [] -> ([], None)
  | _ :: _ ->
      let full_cover =
        Geom.Dirset.cover ~alpha (Neighbor.directions neighbors)
      in
      (* Minimal tag prefix with unchanged coverage (Section 3.1: remove
         nodes tagged p_k, then p_{k-1}, ... while coverage persists).
         Walk the tag classes once from the lowest, extending the covered
         arcs by one class at a time, rather than rebuilding the whole
         prefix's coverage at every candidate tag. *)
      let by_tag = List.sort Neighbor.compare_by_tag neighbors in
      let half = alpha /. 2. in
      let add_arc cover (nb : Neighbor.t) =
        Geom.Arcset.add cover { Geom.Arcset.start = nb.dir -. half; len = alpha }
      in
      let rec first_sufficient cover = function
        | [] -> assert false
        | (nb : Neighbor.t) :: _ as nbs ->
            let tag = nb.tag in
            let cls, rest =
              List.partition (fun (nb : Neighbor.t) -> nb.tag <= tag) nbs
            in
            let cover = List.fold_left add_arc cover cls in
            if Geom.Arcset.equal cover full_cover then tag
            else first_sufficient cover rest
      in
      let tag = first_sufficient Geom.Arcset.empty by_tag in
      (List.filter (fun (nb : Neighbor.t) -> nb.tag <= tag) neighbors, Some tag)

let shrink_back ?(obs = Obs.Recorder.nil) (d : Discovery.t) =
  Obs.Recorder.span obs "shrink-back" @@ fun () ->
  let alpha = d.config.Config.alpha in
  let neighbors = Array.copy d.neighbors in
  let power = Array.copy d.power in
  for u = 0 to Discovery.nb_nodes d - 1 do
    match shrink_neighbors ~alpha neighbors.(u) with
    | kept, Some tag ->
        let dropped = List.length neighbors.(u) - List.length kept in
        if dropped > 0 then begin
          Obs.Recorder.incr obs "shrink.nodes_shrunk";
          Obs.Recorder.incr ~by:dropped obs "shrink.neighbors_dropped"
        end;
        neighbors.(u) <- kept;
        power.(u) <- Float.min power.(u) tag
    | _, None -> ()
  done;
  { d with neighbors; power }

type pairwise_mode = [ `All | `Practical ]

(* eid(u,v) = (d(u,v), max ID, min ID), compared lexicographically.
   The distance component is the exact squared distance: squares and
   their sum order edges the same way as d itself, but comparing after
   a sqrt can collapse distinct lengths onto the same rounded float and
   silently hand the decision to the ID tie-break.  Exact ties (the
   equidistant-neighbors case) fall through to (max ID, min ID), which
   is a strict total order, so a pair of edges can never each be
   smaller than the other — mutual removal is impossible. *)
let eid positions u v = (Geom.Vec2.dist2 positions.(u) positions.(v), Stdlib.max u v, Stdlib.min u v)

let eid_lt (d1, a1, b1) (d2, a2, b2) =
  d1 < d2 || (d1 = d2 && (a1 < a2 || (a1 = a2 && b1 < b2)))

(* Definition 3.5: (u,v) is redundant when some neighbor w of u satisfies
   angle(v,u,w) < pi/3 and eid(u,w) < eid(u,v).  The strict inequality is
   implemented with a small conservative margin: at exactly pi/3 (e.g. a
   perfect equilateral triangle, up to float rounding) the edge is kept,
   which is always safe. *)
let angle_margin = 1e-9

let redundant_from g positions u v =
  let dir_v = Geom.Vec2.direction ~from:positions.(u) ~toward:positions.(v) in
  let id_uv = eid positions u v in
  List.exists
    (fun w ->
      w <> v
      &&
      let id_uw = eid positions u w in
      let d2_uw, _, _ = id_uw in
      (* a witness coincident with u has no direction, and the triangle
         argument behind Theorem 3.6 needs d(w,v) < d(u,v), which fails
         at d(u,w) = 0: both (u,v) and (w,v) would count the other's
         endpoint as cover and v could lose every edge *)
      d2_uw > 0.
      &&
      let dir_w = Geom.Vec2.direction ~from:positions.(u) ~toward:positions.(w) in
      Geom.Angle.diff dir_v dir_w < Geom.Angle.pi_three -. angle_margin
      && eid_lt id_uw id_uv)
    (Graphkit.Ugraph.neighbors g u)

let redundant_edges ~positions g =
  List.filter
    (fun (u, v) ->
      redundant_from g positions u v || redundant_from g positions v u)
    (Graphkit.Ugraph.edges g)

let pairwise ~positions ?(obs = Obs.Recorder.nil) ?(mode = `Practical) g =
  Obs.Recorder.span obs "pairwise-removal" @@ fun () ->
  let redundant = redundant_edges ~positions g in
  let to_remove =
    match mode with
    | `All -> redundant
    | `Practical ->
        (* Longest non-redundant edge incident to each node; an edge is
           removed only by a node from whose perspective it is redundant,
           and only when doing so can lower that node's radius. *)
        let module ESet = Set.Make (struct
          type t = int * int

          let compare = Stdlib.compare
        end) in
        let red_set = ESet.of_list redundant in
        let n = Graphkit.Ugraph.nb_nodes g in
        let longest_nr = Array.make n 0. in
        Graphkit.Ugraph.iter_edges
          (fun u v ->
            if not (ESet.mem (u, v) red_set) then begin
              let d = Geom.Vec2.dist positions.(u) positions.(v) in
              if d > longest_nr.(u) then longest_nr.(u) <- d;
              if d > longest_nr.(v) then longest_nr.(v) <- d
            end)
          g;
        List.filter
          (fun (u, v) ->
            let d = Geom.Vec2.dist positions.(u) positions.(v) in
            (redundant_from g positions u v && d > longest_nr.(u))
            || (redundant_from g positions v u && d > longest_nr.(v)))
          redundant
  in
  Obs.Recorder.incr ~by:(List.length redundant) obs "pairwise.redundant_edges";
  Obs.Recorder.incr ~by:(List.length to_remove) obs "pairwise.removed_edges";
  let g' = Graphkit.Ugraph.copy g in
  List.iter (fun (u, v) -> Graphkit.Ugraph.remove_edge g' u v) to_remove;
  g'
